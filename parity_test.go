package repro_test

// Compiled/pointer parity: the flat-plan relayering (ISSUE 4) keeps the
// original pointer-walking implementations as references and demands
// bit-identical results from the compiled paths — same delays, same
// objective values, same assignments, same work counters — on random
// workload scenarios. The compiled kernels deliberately replay the
// pointer walks' floating-point operations in the same order, so the
// comparisons below use ==, not tolerances.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/assign"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// parityScenarios yields a mix of clustered (paper regime) and scattered
// random instances plus the paper tree itself.
func parityScenarios(tb testing.TB) []*model.Tree {
	trees := []*model.Tree{workload.PaperTree(), workload.PaperTreeSymbolic()}
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := workload.DefaultRandomSpec(6+int(seed)*3, 2+int(seed)%4)
		spec.Clustered = seed%2 == 0
		trees = append(trees, workload.Random(rng, spec))
	}
	return trees
}

func TestParityEval(t *testing.T) {
	for i, tree := range parityScenarios(t) {
		c := model.Compile(tree)
		fr := eval.GetFrame()
		loc := make([]model.Location, c.Len())
		asgs := []*model.Assignment{
			model.NewAssignment(tree),
			heuristics.MaxDistribution(tree).Assignment,
			heuristics.Greedy(tree, heuristics.FromHost).Assignment,
			heuristics.Anneal(tree, heuristics.AnnealConfig{Seed: int64(i), Steps: 200}).Assignment,
		}
		for j, asg := range asgs {
			want := eval.PointerDelay(tree, asg)
			if got := eval.AssignmentDelay(c, asg, fr); got != want {
				t.Fatalf("scenario %d assignment %d: AssignmentDelay %v != PointerDelay %v", i, j, got, want)
			}
			c.LoadLocations(loc, asg)
			if got := eval.FlatDelay(c, loc, fr); got != want {
				t.Fatalf("scenario %d assignment %d: FlatDelay %v != PointerDelay %v", i, j, got, want)
			}
			if got, err := eval.Delay(tree, asg); err != nil || got != want {
				t.Fatalf("scenario %d assignment %d: Delay (%v, %v), want (%v, nil)", i, j, got, err, want)
			}
		}
		eval.PutFrame(fr)
	}
}

func TestParityAdaptedSSB(t *testing.T) {
	for i, tree := range parityScenarios(t) {
		ptr, err1 := assign.BuildPointer(tree).SolveAdapted(assign.Options{})
		cmp, err2 := assign.Build(tree).SolveAdapted(assign.Options{})
		if err1 != nil || err2 != nil {
			t.Fatalf("scenario %d: pointer err %v, compiled err %v", i, err1, err2)
		}
		if ptr.S != cmp.S || ptr.B != cmp.B || ptr.Objective != cmp.Objective || ptr.Delay != cmp.Delay {
			t.Fatalf("scenario %d: measures diverge: pointer (S=%v B=%v obj=%v) compiled (S=%v B=%v obj=%v)",
				i, ptr.S, ptr.B, ptr.Objective, cmp.S, cmp.B, cmp.Objective)
		}
		if ptr.Assignment.Key() != cmp.Assignment.Key() {
			t.Fatalf("scenario %d: assignments diverge:\n%s\n%s", i, ptr.Assignment.Key(), cmp.Assignment.Key())
		}
		if ptr.Stats != cmp.Stats {
			t.Fatalf("scenario %d: search stats diverge: %+v vs %+v", i, ptr.Stats, cmp.Stats)
		}
	}
}

func TestParityLabelSearch(t *testing.T) {
	for i, tree := range parityScenarios(t) {
		if tree.SensorCount() > 14 {
			continue // the label sweep is exponential-ish; parity needs no giants
		}
		ptr, err1 := assign.BuildPointer(tree).SolveLabelSearch(assign.Options{})
		cmp, err2 := assign.Build(tree).SolveLabelSearch(assign.Options{})
		if err1 != nil || err2 != nil {
			t.Fatalf("scenario %d: pointer err %v, compiled err %v", i, err1, err2)
		}
		if ptr.Objective != cmp.Objective || ptr.Assignment.Key() != cmp.Assignment.Key() {
			t.Fatalf("scenario %d: label search diverges: %v vs %v", i, ptr.Objective, cmp.Objective)
		}
	}
}

func TestParityBranchAndBound(t *testing.T) {
	ctx := context.Background()
	for i, tree := range parityScenarios(t) {
		ptr, err1 := exact.BranchAndBoundPointer(ctx, tree, 0, nil)
		cmp, err2 := exact.BranchAndBound(tree, 0)
		if err1 != nil || err2 != nil {
			t.Fatalf("scenario %d: pointer err %v, compiled err %v", i, err1, err2)
		}
		if ptr.Delay != cmp.Delay {
			t.Fatalf("scenario %d: delays diverge: pointer %v, compiled %v", i, ptr.Delay, cmp.Delay)
		}
		if ptr.Explored != cmp.Explored {
			t.Fatalf("scenario %d: node counts diverge: pointer %d, compiled %d (pruning changed)",
				i, ptr.Explored, cmp.Explored)
		}
		if ptr.Assignment.Key() != cmp.Assignment.Key() {
			t.Fatalf("scenario %d: assignments diverge", i)
		}
	}
}

func TestParityBranchAndBoundWarm(t *testing.T) {
	ctx := context.Background()
	for i, tree := range parityScenarios(t) {
		warm := heuristics.Greedy(tree, heuristics.FromTopmost).Assignment
		ptr, err1 := exact.BranchAndBoundPointer(ctx, tree, 0, warm)
		cmp, err2 := exact.BranchAndBoundFrom(ctx, tree, 0, warm)
		if err1 != nil || err2 != nil {
			t.Fatalf("scenario %d: pointer err %v, compiled err %v", i, err1, err2)
		}
		if ptr.Delay != cmp.Delay || ptr.Explored != cmp.Explored {
			t.Fatalf("scenario %d: warm search diverges: (%v, %d) vs (%v, %d)",
				i, ptr.Delay, ptr.Explored, cmp.Delay, cmp.Explored)
		}
	}
}

func TestParityHeuristics(t *testing.T) {
	for i, tree := range parityScenarios(t) {
		for _, start := range []heuristics.Start{heuristics.FromHost, heuristics.FromTopmost} {
			ptr := heuristics.GreedyPointer(tree, start)
			cmp := heuristics.Greedy(tree, start)
			if ptr.Delay != cmp.Delay || ptr.Work != cmp.Work {
				t.Fatalf("scenario %d greedy(%d): (%v, %d moves) vs (%v, %d moves)",
					i, start, ptr.Delay, ptr.Work, cmp.Delay, cmp.Work)
			}
			if ptr.Assignment.Key() != cmp.Assignment.Key() {
				t.Fatalf("scenario %d greedy(%d): assignments diverge", i, start)
			}
		}
		for seed := int64(0); seed < 3; seed++ {
			cfg := heuristics.AnnealConfig{Seed: seed, Steps: 400}
			ptr := heuristics.AnnealPointer(tree, cfg)
			cmp := heuristics.Anneal(tree, cfg)
			if ptr.Delay != cmp.Delay {
				t.Fatalf("scenario %d anneal seed %d: %v vs %v (rng trajectories diverged)",
					i, seed, ptr.Delay, cmp.Delay)
			}
			if ptr.Assignment.Key() != cmp.Assignment.Key() {
				t.Fatalf("scenario %d anneal seed %d: assignments diverge", i, seed)
			}
		}
	}
}

// TestParityGenetic pins the compiled genetic algorithm to internal
// consistency: the reported delay must be exactly the pointer evaluator's
// delay of the returned assignment (the decode+flat-eval pipeline may not
// drift from the assignment it ultimately materialises).
func TestParityGenetic(t *testing.T) {
	for i, tree := range parityScenarios(t) {
		for seed := int64(0); seed < 2; seed++ {
			r := heuristics.Genetic(tree, heuristics.GeneticConfig{Seed: seed, Generations: 15, Population: 16})
			if want := eval.PointerDelay(tree, r.Assignment); r.Delay != want {
				t.Fatalf("scenario %d seed %d: genetic reports %v, pointer eval of its assignment is %v",
					i, seed, r.Delay, want)
			}
		}
	}
}

// TestParityParallelBnB anchors the work-stealing search against the
// sequential branch-and-bound on every parity scenario. This file is
// deliberately untagged, so the test runs in both the plain and the -race
// CI lanes without duplication: under -race it doubles as a concurrency
// check on the shared-incumbent protocol.
//
// Unlike the pointer/compiled pairs above, the two searches do not share
// a floating-point trajectory: frames snapshot accumulator state at fork
// points instead of replaying the +=/-= backtracking, so delays agree to
// tolerance, not bits. With a single worker the exploration *order* still
// replays the sequential DFS exactly, which pins the node count.
func TestParityParallelBnB(t *testing.T) {
	ctx := context.Background()
	for i, tree := range parityScenarios(t) {
		seq, err := exact.BranchAndBound(tree, 0)
		if err != nil {
			t.Fatalf("scenario %d: sequential err %v", i, err)
		}
		tol := 1e-9 * (1 + seq.Delay)
		for _, workers := range []int{1, 2} {
			par, err := parallel.BranchAndBound(ctx, tree, parallel.Options{Workers: workers})
			if err != nil {
				t.Fatalf("scenario %d workers %d: %v", i, workers, err)
			}
			if d := par.Delay - seq.Delay; d > tol || d < -tol {
				t.Fatalf("scenario %d workers %d: parallel %v != sequential %v",
					i, workers, par.Delay, seq.Delay)
			}
			want := eval.PointerDelay(tree, par.Assignment)
			if d := par.Delay - want; d > tol || d < -tol {
				t.Fatalf("scenario %d workers %d: reports %v, its assignment evaluates to %v",
					i, workers, par.Delay, want)
			}
			if workers == 1 && par.Explored != seq.Explored {
				t.Fatalf("scenario %d: single-worker node count %d != sequential %d (search order changed)",
					i, par.Explored, seq.Explored)
			}
		}
	}
}

// TestParityBruteForce anchors the compiled enumeration against the
// pointer branch-and-bound. The two are independent algorithms with
// different summation orders, so this one comparison is tolerance-based;
// the brute result itself must still re-evaluate exactly.
func TestParityBruteForce(t *testing.T) {
	ctx := context.Background()
	for i, tree := range parityScenarios(t) {
		if exact.CountAssignments(tree) > 1<<18 {
			continue // keep the exhaustive cases small
		}
		bf, err1 := exact.BruteForce(tree, 0)
		bb, err2 := exact.BranchAndBoundPointer(ctx, tree, 0, nil)
		if err1 != nil || err2 != nil {
			t.Fatalf("scenario %d: brute err %v, bnb err %v", i, err1, err2)
		}
		if d := bf.Delay - bb.Delay; d > 1e-9 || d < -1e-9 {
			t.Fatalf("scenario %d: brute %v != pointer bnb %v", i, bf.Delay, bb.Delay)
		}
		if want := eval.PointerDelay(tree, bf.Assignment); bf.Delay != want {
			t.Fatalf("scenario %d: brute reports %v, its assignment evaluates to %v", i, bf.Delay, want)
		}
	}
}

// TestParityIncrementalPlan drives a profile-drift stream through the
// Editor fast path and checks the patched plans keep solver parity on
// every revision.
func TestParityIncrementalPlan(t *testing.T) {
	tree := workload.PaperTree()
	rng := rand.New(rand.NewSource(99))
	cur := tree
	for step := 0; step < 8; step++ {
		e := cur.Edit()
		name := fmt.Sprintf("CRU%d", 2+rng.Intn(12))
		id, ok := e.NodeByName(name)
		if !ok {
			t.Fatalf("node %s missing", name)
		}
		if info, _ := e.NodeInfo(id); info.Kind == model.Processing {
			e.SetTimes(id, info.HostTime*(0.5+rng.Float64()), info.SatTime*(0.5+rng.Float64()))
		}
		next, err := e.Build()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ptr, err1 := assign.BuildPointer(next).SolveAdapted(assign.Options{})
		cmp, err2 := assign.Build(next).SolveAdapted(assign.Options{})
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: %v / %v", step, err1, err2)
		}
		if ptr.Objective != cmp.Objective || ptr.Assignment.Key() != cmp.Assignment.Key() {
			t.Fatalf("step %d: patched plan diverges from pointer path", step)
		}
		cur = next
	}
}
