window.BENCHMARK_DATA = {
  "lastUpdate": 1786178150000,
  "entries": {
    "crbench": [
      {
        "schema": "cr-perf-run/v1",
        "tool": "crbench",
        "commit": "2306d74c6065fab7ae16f4ec8c2660f26b1da08e",
        "timestamp": "2026-08-08T08:35:48Z",
        "benches": [
          {
            "name": "P1/eval/pointer/ns_op",
            "value": 1181.3752404767304,
            "unit": "ns/op"
          },
          {
            "name": "P1/eval/pointer/allocs_op",
            "value": 11,
            "unit": "allocs/op"
          },
          {
            "name": "P1/eval/compiled/ns_op",
            "value": 67.88206792174287,
            "unit": "ns/op"
          },
          {
            "name": "P1/eval/compiled/allocs_op",
            "value": 0,
            "unit": "allocs/op"
          },
          {
            "name": "P1/greedy-host/pointer/ns_op",
            "value": 96020.88721868365,
            "unit": "ns/op"
          },
          {
            "name": "P1/greedy-host/pointer/allocs_op",
            "value": 1005,
            "unit": "allocs/op"
          },
          {
            "name": "P1/greedy-host/compiled/ns_op",
            "value": 6348.021230385799,
            "unit": "ns/op"
          },
          {
            "name": "P1/greedy-host/compiled/allocs_op",
            "value": 5,
            "unit": "allocs/op"
          },
          {
            "name": "P1/branch-and-bound/pointer/ns_op",
            "value": 39146.72109322602,
            "unit": "ns/op"
          },
          {
            "name": "P1/branch-and-bound/pointer/allocs_op",
            "value": 82,
            "unit": "allocs/op"
          },
          {
            "name": "P1/branch-and-bound/compiled/ns_op",
            "value": 6661.701702085954,
            "unit": "ns/op"
          },
          {
            "name": "P1/branch-and-bound/compiled/allocs_op",
            "value": 3,
            "unit": "allocs/op"
          },
          {
            "name": "P1/adapted-ssb/pointer/ns_op",
            "value": 6312.375155050983,
            "unit": "ns/op"
          },
          {
            "name": "P1/adapted-ssb/pointer/allocs_op",
            "value": 69,
            "unit": "allocs/op"
          },
          {
            "name": "P1/adapted-ssb/compiled/ns_op",
            "value": 3177.0851145804068,
            "unit": "ns/op"
          },
          {
            "name": "P1/adapted-ssb/compiled/allocs_op",
            "value": 12,
            "unit": "allocs/op"
          },
          {
            "name": "P1/serve-warm/compiled/ns_op",
            "value": 312.9899612634165,
            "unit": "ns/op"
          },
          {
            "name": "P1/serve-warm/compiled/allocs_op",
            "value": 0,
            "unit": "allocs/op"
          }
        ],
        "detail": [
          {
            "id": "P1",
            "title": "compiled flat-tree plans vs pointer walks (paper tree)",
            "paper": "engineering extension: ISSUE 4 relayering, not a paper artefact",
            "columns": [
              "path",
              "impl",
              "ns/op",
              "allocs/op",
              "bytes/op"
            ],
            "rows": [
              [
                "eval",
                "pointer",
                "1181",
                "11",
                "896"
              ],
              [
                "eval",
                "compiled",
                "68",
                "0",
                "0"
              ],
              [
                "greedy-host",
                "pointer",
                "96021",
                "1005",
                "76608"
              ],
              [
                "greedy-host",
                "compiled",
                "6348",
                "5",
                "392"
              ],
              [
                "branch-and-bound",
                "pointer",
                "39147",
                "82",
                "4432"
              ],
              [
                "branch-and-bound",
                "compiled",
                "6662",
                "3",
                "208"
              ],
              [
                "adapted-ssb",
                "pointer",
                "6312",
                "69",
                "6432"
              ],
              [
                "adapted-ssb",
                "compiled",
                "3177",
                "12",
                "1760"
              ],
              [
                "serve-warm",
                "compiled",
                "313",
                "0",
                "0"
              ]
            ],
            "notes": [
              "eval: compiled is 17.4x the pointer path",
              "greedy-host: compiled is 15.1x the pointer path",
              "branch-and-bound: compiled is 5.9x the pointer path",
              "adapted-ssb: compiled is 2.0x the pointer path"
            ],
            "elapsed_ms": 13983
          }
        ]
      },
      {
        "schema": "cr-perf-run/v1",
        "tool": "crbench",
        "commit": "2306d74c6065fab7ae16f4ec8c2660f26b1da08e",
        "timestamp": "2026-08-08T08:35:50Z",
        "benches": [
          {
            "name": "P3/load/achieved_rps",
            "value": 199.9558318895978,
            "unit": "req/s",
            "extra": "target 200"
          },
          {
            "name": "P3/load/errors",
            "value": 0,
            "unit": "count"
          },
          {
            "name": "P3/load/timeouts",
            "value": 0,
            "unit": "count"
          },
          {
            "name": "P3/load/cache_hit_ratio",
            "value": 0.9478672985781991,
            "unit": "ratio"
          },
          {
            "name": "P3/load/solve/p50",
            "value": 327.679,
            "unit": "us"
          },
          {
            "name": "P3/load/solve/p95",
            "value": 622.591,
            "unit": "us"
          },
          {
            "name": "P3/load/solve/p99",
            "value": 1572.863,
            "unit": "us",
            "extra": "236 requests"
          },
          {
            "name": "P3/load/batch/p50",
            "value": 1703.935,
            "unit": "us"
          },
          {
            "name": "P3/load/batch/p95",
            "value": 4718.591,
            "unit": "us"
          },
          {
            "name": "P3/load/batch/p99",
            "value": 6412.17,
            "unit": "us",
            "extra": "30 requests"
          },
          {
            "name": "P3/load/session-open/p50",
            "value": 352.255,
            "unit": "us"
          },
          {
            "name": "P3/load/session-open/p95",
            "value": 483.327,
            "unit": "us"
          },
          {
            "name": "P3/load/session-open/p99",
            "value": 486.763,
            "unit": "us",
            "extra": "11 requests"
          },
          {
            "name": "P3/load/session-mutate/p50",
            "value": 303.103,
            "unit": "us"
          },
          {
            "name": "P3/load/session-mutate/p95",
            "value": 868.351,
            "unit": "us"
          },
          {
            "name": "P3/load/session-mutate/p99",
            "value": 1435.011,
            "unit": "us",
            "extra": "22 requests"
          },
          {
            "name": "P3/load/session-close/p50",
            "value": 229.12,
            "unit": "us"
          },
          {
            "name": "P3/load/session-close/p95",
            "value": 229.12,
            "unit": "us"
          },
          {
            "name": "P3/load/session-close/p99",
            "value": 229.12,
            "unit": "us",
            "extra": "1 requests"
          }
        ],
        "detail": [
          {
            "id": "P3",
            "title": "perf: open-loop load harness on a 2-node fleet",
            "paper": "engineering extension: continuous perf tracking, not a paper artefact",
            "columns": [
              "class",
              "count",
              "errors",
              "p50",
              "p95",
              "p99"
            ],
            "rows": [
              [
                "solve",
                "236",
                "0",
                "330µs",
                "620µs",
                "1.57ms"
              ],
              [
                "batch",
                "30",
                "0",
                "1.7ms",
                "4.72ms",
                "6.41ms"
              ],
              [
                "session-open",
                "11",
                "0",
                "350µs",
                "480µs",
                "490µs"
              ],
              [
                "session-mutate",
                "22",
                "0",
                "300µs",
                "870µs",
                "1.44ms"
              ],
              [
                "session-close",
                "1",
                "0",
                "230µs",
                "230µs",
                "230µs"
              ]
            ],
            "notes": [
              "achieved 200 of 200 req/s target over 1.5s measured (open loop, 0 dropped)",
              "fleet cache hit ratio 94.8% across 2 nodes; 0 errors, 0 timeouts"
            ],
            "elapsed_ms": 1801
          }
        ]
      }
    ],
    "crload": [
      {
        "schema": "cr-perf-run/v1",
        "tool": "crload",
        "commit": "2306d74c6065fab7ae16f4ec8c2660f26b1da08e",
        "timestamp": "2026-08-08T08:35:24Z",
        "benches": [
          {
            "name": "load/achieved_rps",
            "value": 299.5409093441918,
            "unit": "req/s",
            "extra": "target 300"
          },
          {
            "name": "load/errors",
            "value": 0,
            "unit": "count"
          },
          {
            "name": "load/timeouts",
            "value": 0,
            "unit": "count"
          },
          {
            "name": "load/cache_hit_ratio",
            "value": 0.9497005988023952,
            "unit": "ratio"
          },
          {
            "name": "load/solve/p50",
            "value": 458.751,
            "unit": "us"
          },
          {
            "name": "load/solve/p95",
            "value": 1540.095,
            "unit": "us"
          },
          {
            "name": "load/solve/p99",
            "value": 6553.599,
            "unit": "us",
            "extra": "2229 requests"
          },
          {
            "name": "load/batch/p50",
            "value": 2555.903,
            "unit": "us"
          },
          {
            "name": "load/batch/p95",
            "value": 7864.319,
            "unit": "us"
          },
          {
            "name": "load/batch/p99",
            "value": 13893.631,
            "unit": "us",
            "extra": "303 requests"
          },
          {
            "name": "load/simulate/p50",
            "value": 573.439,
            "unit": "us"
          },
          {
            "name": "load/simulate/p95",
            "value": 2162.687,
            "unit": "us"
          },
          {
            "name": "load/simulate/p99",
            "value": 5373.951,
            "unit": "us",
            "extra": "160 requests"
          },
          {
            "name": "load/session-open/p50",
            "value": 417.791,
            "unit": "us"
          },
          {
            "name": "load/session-open/p95",
            "value": 983.039,
            "unit": "us"
          },
          {
            "name": "load/session-open/p99",
            "value": 6306.488,
            "unit": "us",
            "extra": "48 requests"
          },
          {
            "name": "load/session-mutate/p50",
            "value": 352.255,
            "unit": "us"
          },
          {
            "name": "load/session-mutate/p95",
            "value": 1638.399,
            "unit": "us"
          },
          {
            "name": "load/session-mutate/p99",
            "value": 7208.959,
            "unit": "us",
            "extra": "210 requests"
          },
          {
            "name": "load/session-close/p50",
            "value": 208.895,
            "unit": "us"
          },
          {
            "name": "load/session-close/p95",
            "value": 606.207,
            "unit": "us"
          },
          {
            "name": "load/session-close/p99",
            "value": 3888.495,
            "unit": "us",
            "extra": "50 requests"
          }
        ],
        "detail": {
          "spec": {
            "name": "ci-smoke",
            "seed": 7,
            "rps": 300,
            "duration": "10s",
            "warmup": "2s",
            "workers": 32,
            "timeout": "5s",
            "scrape_interval": "1s",
            "corpus": {
              "instances": 32,
              "min_crus": 8,
              "max_crus": 20,
              "satellites": 3,
              "zipf_s": 1.2
            },
            "mix": {
              "classes": {
                "batch": 0.1,
                "session": 0.1,
                "simulate": 0.05,
                "solve": 0.75
              },
              "batch_min": 4,
              "batch_max": 12,
              "session_ops": 4,
              "mutations_per_op": 2,
              "drift_fraction": 0.1
            }
          },
          "targets": [
            "http://127.0.0.1:45193",
            "http://127.0.0.1:45441"
          ],
          "start_unix_ms": 1786178112466,
          "elapsed_sec": 10.015326476,
          "target_rps": 300,
          "achieved_rps": 299.5409093441918,
          "sent": 3000,
          "completed": 3000,
          "errors": 0,
          "timeouts": 0,
          "classes": {
            "batch": {
              "count": 303,
              "latency": {
                "count": 303,
                "mean_us": 3391.221663366337,
                "p50_us": 2555.903,
                "p95_us": 7864.319,
                "p99_us": 13893.631,
                "max_us": 18125.259
              }
            },
            "session-close": {
              "count": 50,
              "latency": {
                "count": 50,
                "mean_us": 359.81402,
                "p50_us": 208.895,
                "p95_us": 606.207,
                "p99_us": 3888.495,
                "max_us": 3888.495
              }
            },
            "session-mutate": {
              "count": 210,
              "latency": {
                "count": 210,
                "mean_us": 721.5622047619048,
                "p50_us": 352.255,
                "p95_us": 1638.399,
                "p99_us": 7208.959,
                "max_us": 22312.973
              }
            },
            "session-open": {
              "count": 48,
              "latency": {
                "count": 48,
                "mean_us": 620.7002916666667,
                "p50_us": 417.791,
                "p95_us": 983.039,
                "p99_us": 6306.488,
                "max_us": 6306.488
              }
            },
            "simulate": {
              "count": 160,
              "latency": {
                "count": 160,
                "mean_us": 934.27068125,
                "p50_us": 573.439,
                "p95_us": 2162.687,
                "p99_us": 5373.951,
                "max_us": 22109.224
              }
            },
            "solve": {
              "count": 2229,
              "latency": {
                "count": 2229,
                "mean_us": 727.3753571108119,
                "p50_us": 458.751,
                "p95_us": 1540.095,
                "p99_us": 6553.599,
                "max_us": 23653.647
              }
            }
          },
          "nodes": [
            {
              "url": "http://127.0.0.1:45193",
              "cache_hits": 1315,
              "cache_misses": 68,
              "cache_shared": 0,
              "forwards": 1070,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0,
              "mallocs": 2594638,
              "num_gc": 148,
              "heap_alloc_bytes": 10387848,
              "latency": {
                "batch": {
                  "count": 347,
                  "mean_us": 1877.238749279539,
                  "p50_us": 1179.647,
                  "p95_us": 5505.023,
                  "p99_us": 9437.183,
                  "max_us": 17455.201
                },
                "session_close": {
                  "count": 47,
                  "mean_us": 1661.0677234042553,
                  "p50_us": 102.399,
                  "p95_us": 9175.039,
                  "p99_us": 10790.691,
                  "max_us": 10790.691
                },
                "session_mutate": {
                  "count": 150,
                  "mean_us": 264.1857866666667,
                  "p50_us": 233.471,
                  "p95_us": 385.023,
                  "p99_us": 1900.543,
                  "max_us": 3328.43
                },
                "session_open": {
                  "count": 47,
                  "mean_us": 391.9433829787234,
                  "p50_us": 286.719,
                  "p95_us": 1048.575,
                  "p99_us": 2549.98,
                  "max_us": 2549.98
                },
                "simulate": {
                  "count": 131,
                  "mean_us": 604.8656488549618,
                  "p50_us": 401.407,
                  "p95_us": 1114.111,
                  "p99_us": 3342.335,
                  "max_us": 16084.987
                },
                "solve": {
                  "count": 1781,
                  "mean_us": 417.00713026389667,
                  "p50_us": 327.679,
                  "p95_us": 704.511,
                  "p99_us": 1900.543,
                  "max_us": 18699.284
                }
              }
            },
            {
              "url": "http://127.0.0.1:45441",
              "cache_hits": 2650,
              "cache_misses": 142,
              "cache_shared": 0,
              "forwards": 589,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0,
              "mallocs": 2593831,
              "num_gc": 148,
              "heap_alloc_bytes": 10462128,
              "latency": {
                "batch": {
                  "count": 357,
                  "mean_us": 1794.5697226890757,
                  "p50_us": 1409.023,
                  "p95_us": 5242.879,
                  "p99_us": 7864.319,
                  "max_us": 10459.363
                },
                "session_close": {
                  "count": 62,
                  "mean_us": 186.197,
                  "p50_us": 19.967,
                  "p95_us": 221.183,
                  "p99_us": 3145.727,
                  "max_us": 3333.963
                },
                "session_mutate": {
                  "count": 198,
                  "mean_us": 368.2219696969697,
                  "p50_us": 159.743,
                  "p95_us": 352.255,
                  "p99_us": 1867.775,
                  "max_us": 18044.136
                },
                "session_open": {
                  "count": 62,
                  "mean_us": 220.56735483870966,
                  "p50_us": 159.743,
                  "p95_us": 491.519,
                  "p99_us": 557.055,
                  "max_us": 1379.641
                },
                "simulate": {
                  "count": 167,
                  "mean_us": 346.6936347305389,
                  "p50_us": 278.527,
                  "p95_us": 770.047,
                  "p99_us": 1245.183,
                  "max_us": 1816.878
                },
                "solve": {
                  "count": 2243,
                  "mean_us": 279.39324788230044,
                  "p50_us": 192.511,
                  "p95_us": 540.671,
                  "p99_us": 1376.255,
                  "max_us": 17809.475
                }
              }
            }
          ],
          "samples": [
            {
              "t": 0.001223409,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 269,
              "cache_misses": 14,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 53,
              "heap_alloc_bytes": 3223896,
              "mallocs": 531142,
              "num_gc": 49,
              "forwards": 202,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 0.001223409,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 497,
              "cache_misses": 48,
              "cache_shared": 0,
              "inflight": 1,
              "goroutines": 59,
              "heap_alloc_bytes": 3352376,
              "mallocs": 532216,
              "num_gc": 49,
              "forwards": 105,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 1.003758419,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 410,
              "cache_misses": 19,
              "cache_shared": 0,
              "inflight": 1,
              "goroutines": 58,
              "heap_alloc_bytes": 4016992,
              "mallocs": 774238,
              "num_gc": 69,
              "forwards": 308,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 1.003758419,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 740,
              "cache_misses": 63,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 56,
              "heap_alloc_bytes": 4080048,
              "mallocs": 774541,
              "num_gc": 69,
              "forwards": 169,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 2.004235451,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 533,
              "cache_misses": 26,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 54,
              "heap_alloc_bytes": 5107920,
              "mallocs": 1007576,
              "num_gc": 86,
              "forwards": 406,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 2.004235451,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 980,
              "cache_misses": 79,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 53,
              "heap_alloc_bytes": 5185488,
              "mallocs": 1007866,
              "num_gc": 86,
              "forwards": 221,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 3.004088858,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 675,
              "cache_misses": 36,
              "cache_shared": 0,
              "inflight": 1,
              "goroutines": 57,
              "heap_alloc_bytes": 4813648,
              "mallocs": 1277670,
              "num_gc": 105,
              "forwards": 509,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 3.004088858,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 1254,
              "cache_misses": 92,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 56,
              "heap_alloc_bytes": 5340432,
              "mallocs": 1280766,
              "num_gc": 105,
              "forwards": 284,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 4.003867789,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 820,
              "cache_misses": 44,
              "cache_shared": 0,
              "inflight": 1,
              "goroutines": 55,
              "heap_alloc_bytes": 3654976,
              "mallocs": 1566398,
              "num_gc": 124,
              "forwards": 615,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 4.003867789,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 1549,
              "cache_misses": 103,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 55,
              "heap_alloc_bytes": 3799968,
              "mallocs": 1567610,
              "num_gc": 124,
              "forwards": 342,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 5.00398569,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 941,
              "cache_misses": 48,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 57,
              "heap_alloc_bytes": 4680416,
              "mallocs": 1817447,
              "num_gc": 138,
              "forwards": 720,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 5.00398569,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 1814,
              "cache_misses": 117,
              "cache_shared": 0,
              "inflight": 1,
              "goroutines": 56,
              "heap_alloc_bytes": 4809048,
              "mallocs": 1818081,
              "num_gc": 138,
              "forwards": 398,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 6.003760515,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 1089,
              "cache_misses": 55,
              "cache_shared": 0,
              "inflight": 1,
              "goroutines": 58,
              "heap_alloc_bytes": 6467464,
              "mallocs": 2089582,
              "num_gc": 152,
              "forwards": 826,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 6.003760515,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 2079,
              "cache_misses": 135,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 56,
              "heap_alloc_bytes": 6552696,
              "mallocs": 2089883,
              "num_gc": 152,
              "forwards": 462,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 7.004156524,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 1212,
              "cache_misses": 63,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 53,
              "heap_alloc_bytes": 7697136,
              "mallocs": 2334928,
              "num_gc": 164,
              "forwards": 931,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 7.004156524,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 2334,
              "cache_misses": 146,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 53,
              "heap_alloc_bytes": 7780000,
              "mallocs": 2335216,
              "num_gc": 164,
              "forwards": 514,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 8.003755982,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 1339,
              "cache_misses": 71,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 55,
              "heap_alloc_bytes": 5588352,
              "mallocs": 2605296,
              "num_gc": 177,
              "forwards": 1039,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 8.003755982,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 2609,
              "cache_misses": 161,
              "cache_shared": 0,
              "inflight": 1,
              "goroutines": 61,
              "heap_alloc_bytes": 5751304,
              "mallocs": 2606065,
              "num_gc": 177,
              "forwards": 572,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 9.003766497,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 1452,
              "cache_misses": 77,
              "cache_shared": 0,
              "inflight": 1,
              "goroutines": 64,
              "heap_alloc_bytes": 8728096,
              "mallocs": 2859027,
              "num_gc": 187,
              "forwards": 1147,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 9.003766497,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 2879,
              "cache_misses": 177,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 62,
              "heap_alloc_bytes": 5571784,
              "mallocs": 2860084,
              "num_gc": 188,
              "forwards": 628,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 10.004039453,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 1581,
              "cache_misses": 82,
              "cache_shared": 0,
              "inflight": 9,
              "goroutines": 145,
              "heap_alloc_bytes": 9891128,
              "mallocs": 3122878,
              "num_gc": 197,
              "forwards": 1262,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 10.004039453,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 3147,
              "cache_misses": 190,
              "cache_shared": 0,
              "inflight": 1,
              "goroutines": 123,
              "heap_alloc_bytes": 10144008,
              "mallocs": 3124310,
              "num_gc": 197,
              "forwards": 693,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 10.015327996,
              "node": "http://127.0.0.1:45193",
              "cache_hits": 1584,
              "cache_misses": 82,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 21,
              "heap_alloc_bytes": 10387848,
              "mallocs": 3125780,
              "num_gc": 197,
              "forwards": 1272,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            },
            {
              "t": 10.015327996,
              "node": "http://127.0.0.1:45441",
              "cache_hits": 3147,
              "cache_misses": 190,
              "cache_shared": 0,
              "inflight": 0,
              "goroutines": 21,
              "heap_alloc_bytes": 10462128,
              "mallocs": 3126047,
              "num_gc": 197,
              "forwards": 694,
              "hedges": 0,
              "local_fallbacks": 0,
              "failed_requests": 0
            }
          ]
        }
      }
    ]
  }
}
