// Anytime-correctness properties of the incumbent-streaming solvers:
// streams improve monotonically, observing a solve never changes its
// answer, best-effort partial results are feasible and bounded, and
// cancellation stops a search promptly.
package repro_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro"
	"repro/internal/workload"
)

// anytimeAlgorithms is every registered solver declaring Anytime.
func anytimeAlgorithms(t *testing.T) []repro.Algorithm {
	t.Helper()
	var out []repro.Algorithm
	for _, name := range repro.Algorithms() {
		caps, _ := repro.Capability(name)
		if caps.Anytime {
			out = append(out, name)
		}
	}
	if len(out) < 3 {
		t.Fatalf("want >= 3 anytime solvers (bnb, annealing, genetic), got %v", out)
	}
	return out
}

// TestAnytimeIncumbentStream: every anytime solver streams at least one
// incumbent, delays never increase along the stream, each streamed
// assignment is a feasible caller-owned clone evaluating to its reported
// delay, and the last incumbent is the returned result.
func TestAnytimeIncumbentStream(t *testing.T) {
	tree := workload.Random(rand.New(rand.NewSource(9)), workload.DefaultRandomSpec(24, 3))
	for _, alg := range anytimeAlgorithms(t) {
		var incs []repro.Incumbent
		out, err := repro.NewSolver().Solve(context.Background(), tree,
			repro.WithAlgorithm(alg), repro.WithSeed(3),
			repro.WithIncumbents(func(inc repro.Incumbent) { incs = append(incs, inc) }))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(incs) == 0 {
			t.Fatalf("%s: no incumbents streamed", alg)
		}
		prev := math.Inf(1)
		for i, inc := range incs {
			if inc.Delay > prev {
				t.Fatalf("%s: incumbent %d worsened: %v after %v", alg, i, inc.Delay, prev)
			}
			prev = inc.Delay
			if inc.Assignment == nil {
				t.Fatalf("%s: incumbent %d carries no assignment", alg, i)
			}
			bd, err := repro.Evaluate(tree, inc.Assignment)
			if err != nil {
				t.Fatalf("%s: incumbent %d infeasible: %v", alg, i, err)
			}
			if math.Abs(bd.Delay-inc.Delay) > 1e-9 {
				t.Fatalf("%s: incumbent %d reports %v but evaluates to %v", alg, i, inc.Delay, bd.Delay)
			}
			if inc.LowerBound > 0 && inc.Delay < inc.LowerBound-1e-9 {
				t.Fatalf("%s: incumbent %d beats its own lower bound: %v < %v", alg, i, inc.Delay, inc.LowerBound)
			}
		}
		if last := incs[len(incs)-1].Delay; math.Abs(last-out.Delay) > 1e-9 {
			t.Fatalf("%s: last incumbent %v != final result %v", alg, last, out.Delay)
		}
	}
}

// TestAnytimeObserverInvariance: attaching an incumbent callback must not
// change the result — callbacks consume no randomness and the stream is
// pure observation.
func TestAnytimeObserverInvariance(t *testing.T) {
	tree := workload.Random(rand.New(rand.NewSource(10)), workload.DefaultRandomSpec(26, 3))
	for _, alg := range anytimeAlgorithms(t) {
		opts := []repro.Option{repro.WithAlgorithm(alg), repro.WithSeed(42)}
		plain, err := repro.NewSolver().Solve(context.Background(), tree, opts...)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		n := 0
		observed, err := repro.NewSolver().Solve(context.Background(), tree,
			append(opts, repro.WithIncumbents(func(repro.Incumbent) { n++ }))...)
		if err != nil {
			t.Fatalf("%s observed: %v", alg, err)
		}
		if observed.Delay != plain.Delay {
			t.Fatalf("%s: observing changed the answer: %v vs %v (%d incumbents)",
				alg, observed.Delay, plain.Delay, n)
		}
	}
}

// TestBestEffortBudgetPartialVsExact is the deterministic half of the
// anytime acceptance: the same instance solved with a starved node budget
// returns a feasible best-so-far marked Partial with a valid bound gap,
// and solved unconstrained reaches the proven optimum — which the partial
// answer never beats.
func TestBestEffortBudgetPartialVsExact(t *testing.T) {
	tree := workload.Random(rand.New(rand.NewSource(1)), workload.DefaultRandomSpec(40, 3))
	solver := repro.NewSolver()

	exact, err := solver.Solve(context.Background(), tree,
		repro.WithAlgorithm(repro.BranchBound), repro.WithBudget(1<<28))
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	if !exact.Exact || exact.Partial {
		t.Fatalf("unconstrained solve not exact: exact=%v partial=%v", exact.Exact, exact.Partial)
	}
	if exact.LowerBound != exact.Delay {
		t.Fatalf("completed exact solve must prove its own delay: lb=%v delay=%v", exact.LowerBound, exact.Delay)
	}

	partial, err := solver.Solve(context.Background(), tree,
		repro.WithAlgorithm(repro.BranchBound), repro.WithBudget(2000), repro.WithBestEffort())
	if err != nil {
		t.Fatalf("best-effort: %v", err)
	}
	if !partial.Partial || partial.Exact {
		t.Fatalf("starved solve should be partial: partial=%v exact=%v", partial.Partial, partial.Exact)
	}
	if partial.Assignment == nil {
		t.Fatal("partial result carries no assignment")
	}
	if bd, err := repro.Evaluate(tree, partial.Assignment); err != nil || math.Abs(bd.Delay-partial.Delay) > 1e-9 {
		t.Fatalf("partial assignment infeasible or mispriced: %v / %v vs %v", err, bd, partial.Delay)
	}
	if partial.LowerBound <= 0 || partial.LowerBound > exact.Delay+1e-9 {
		t.Fatalf("partial lower bound %v must be a valid floor on the optimum %v", partial.LowerBound, exact.Delay)
	}
	if partial.Delay < exact.Delay-1e-9 {
		t.Fatalf("partial %v beats the proven optimum %v", partial.Delay, exact.Delay)
	}
	// Without best-effort the same starved search must keep failing loudly.
	if _, err := solver.Solve(context.Background(), tree,
		repro.WithAlgorithm(repro.BranchBound), repro.WithBudget(2000)); err == nil {
		t.Fatal("starved solve without best-effort should error")
	}
}

// TestBruteForceProvesItsOwnBound: a finished enumeration has checked
// every assignment, so the anytime contract requires it to close its own
// gap — LowerBound == Delay — exactly like a completed branch-and-bound.
// (It used to report the static root floor, leaving a phantom gap that
// made exhaustive answers look unproven to gap-driven clients.)
func TestBruteForceProvesItsOwnBound(t *testing.T) {
	tree := workload.Random(rand.New(rand.NewSource(2)), workload.DefaultRandomSpec(12, 3))
	out, err := repro.NewSolver().Solve(context.Background(), tree, repro.WithAlgorithm(repro.BruteForce))
	if err != nil {
		t.Fatalf("brute: %v", err)
	}
	if !out.Exact || out.Partial {
		t.Fatalf("finished enumeration not exact: exact=%v partial=%v", out.Exact, out.Partial)
	}
	if out.LowerBound != out.Delay {
		t.Fatalf("finished enumeration must prove its own delay: lb=%v delay=%v", out.LowerBound, out.Delay)
	}
}

// TestBestEffortDeadline: a wall-clock deadline far shorter than the
// exact solve returns a feasible partial answer instead of an error.
func TestBestEffortDeadline(t *testing.T) {
	tree := workload.Random(rand.New(rand.NewSource(1)), workload.DefaultRandomSpec(48, 3))
	start := time.Now()
	out, err := repro.NewSolver().Solve(context.Background(), tree,
		repro.WithAlgorithm(repro.BranchBound), repro.WithBudget(1<<30),
		repro.WithTimeout(30*time.Millisecond), repro.WithBestEffort())
	if err != nil {
		t.Fatalf("deadline solve: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("deadline ignored: solve ran %v", took)
	}
	if !out.Partial || out.Assignment == nil {
		t.Fatalf("want feasible partial result, got partial=%v assignment=%v", out.Partial, out.Assignment)
	}
	if _, err := repro.Evaluate(tree, out.Assignment); err != nil {
		t.Fatalf("partial assignment infeasible: %v", err)
	}
}

// TestAnytimeCancelStopsPromptly: cancelling mid-stream stops the search
// quickly and, without best-effort, surfaces ErrCanceled.
func TestAnytimeCancelStopsPromptly(t *testing.T) {
	tree := workload.Random(rand.New(rand.NewSource(1)), workload.DefaultRandomSpec(48, 3))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	_, err := repro.NewSolver().Solve(ctx, tree,
		repro.WithAlgorithm(repro.BranchBound), repro.WithBudget(1<<30),
		repro.WithIncumbents(func(repro.Incumbent) { cancel() }))
	if !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancellation took %v to stop the search", took)
	}
}
