// Ablation studies for the design choices documented in DESIGN.md: the
// candidate-tightened elimination rule, the expansion step, and the
// monotone-DAG shortest-path shortcut. Each variant is exact; the
// benchmarks quantify what each refinement buys.
package repro_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/assign"
	"repro/internal/graph"
	"repro/internal/workload"
)

// TestAblationVariantsExact: all ablation configurations must produce the
// same optimal delay.
func TestAblationVariantsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 25; trial++ {
		spec := workload.DefaultRandomSpec(1+rng.Intn(40), 1+rng.Intn(4))
		spec.Clustered = trial%2 == 0
		tree := workload.Random(rng, spec)
		g := assign.Build(tree)
		ref, err := g.SolveAdapted(assign.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for name, opt := range map[string]assign.Options{
			"conservative":  {ConservativeElimination: true},
			"no-expansion":  {DisableExpansion: true},
			"conserv+noexp": {ConservativeElimination: true, DisableExpansion: true},
		} {
			sol, err := g.SolveAdapted(opt)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if math.Abs(sol.Delay-ref.Delay) > 1e-9 {
				t.Fatalf("trial %d %s: delay %v != %v", trial, name, sol.Delay, ref.Delay)
			}
		}
	}
}

// TestTightenedEliminationReducesIterations: the DESIGN.md claim behind the
// tightened rule — fewer (or equal) iterations on every instance, strictly
// fewer somewhere.
func TestTightenedEliminationReducesIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	strictly := false
	for trial := 0; trial < 30; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(5+rng.Intn(60), 1+rng.Intn(4)))
		g := assign.Build(tree)
		tight, err := g.SolveAdapted(assign.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cons, err := g.SolveAdapted(assign.Options{ConservativeElimination: true})
		if err != nil {
			t.Fatal(err)
		}
		if tight.Stats.Iterations > cons.Stats.Iterations {
			t.Fatalf("trial %d: tightened rule used MORE iterations (%d > %d)",
				trial, tight.Stats.Iterations, cons.Stats.Iterations)
		}
		if tight.Stats.Iterations < cons.Stats.Iterations {
			strictly = true
		}
	}
	if !strictly {
		t.Error("tightened elimination never beat the conservative rule across 30 instances")
	}
}

// BenchmarkAblation_Elimination compares the elimination rules at a size
// where the iteration count dominates.
func BenchmarkAblation_Elimination(b *testing.B) {
	tree := workload.Random(rand.New(rand.NewSource(2)), workload.DefaultRandomSpec(255, 4))
	g := assign.Build(tree)
	b.Run("tightened", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.SolveAdapted(assign.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("paper-literal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.SolveAdapted(assign.Options{ConservativeElimination: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Expansion compares expansion against the label-search
// fallback on an instance that needs one of the two. The size is kept at
// 31 CRUs: with expansion disabled the fallback's label frontiers grow
// combinatorially (exactly why the paper's expansion step matters — the
// point this ablation makes).
func BenchmarkAblation_Expansion(b *testing.B) {
	tree := workload.Random(rand.New(rand.NewSource(8)), workload.DefaultRandomSpec(31, 3))
	g := assign.Build(tree)
	b.Run("expansion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.SolveAdapted(assign.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("label-fallback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.SolveAdapted(assign.Options{DisableExpansion: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("label-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.SolveLabelSearch(assign.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_DijkstraVariants compares the shortest-path kernels
// (heap Dijkstra, the dense-array variant Hansen & Lih discuss, and the
// monotone-DAG pass the adapted solver relies on) on a random layered DAG.
func BenchmarkAblation_DijkstraVariants(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const nodes, extra = 256, 1024
	mg := graph.NewMultigraph(nodes)
	for v := 0; v+1 < nodes; v++ {
		mg.AddEdge(v, v+1, float64(1+rng.Intn(20)))
	}
	for k := 0; k < extra; k++ {
		u := rng.Intn(nodes - 1)
		mg.AddEdge(u, u+1+rng.Intn(nodes-1-u), float64(1+rng.Intn(20)))
	}
	src, dst := 0, nodes-1
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mg.ShortestPath(src, dst)
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mg.ShortestPathDense(src, dst)
		}
	})
	b.Run("dag", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mg.ShortestPathDAGMonotone(src, dst)
		}
	})
}
