package repro_test

// BenchmarkCompiledVsPointer is the acceptance benchmark of the flat-plan
// relayering: every hot path timed through the compiled arrays next to
// the retained pointer-walking reference. Run with
//
//	go test -run='^$' -bench=BenchmarkCompiledVsPointer -benchmem .
//
// and read pointer/compiled pairs; the compiled rows must also hold the
// memory discipline (0 allocs/op for the evaluation kernel and the warm
// serve path). TestWarmServeZeroAlloc guards the latter in CI.

import (
	"context"
	"testing"

	"repro"
	"repro/internal/assign"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/workload"
)

func BenchmarkCompiledVsPointer(b *testing.B) {
	tree := workload.PaperTree()
	c := model.Compile(tree)
	asg := heuristics.MaxDistribution(tree).Assignment
	loc := make([]model.Location, c.Len())
	c.LoadLocations(loc, asg)
	ctx := context.Background()

	b.Run("eval/pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eval.PointerDelay(tree, asg)
		}
	})
	b.Run("eval/compiled", func(b *testing.B) {
		b.ReportAllocs()
		fr := eval.GetFrame()
		defer eval.PutFrame(fr)
		for i := 0; i < b.N; i++ {
			eval.FlatDelay(c, loc, fr)
		}
	})

	b.Run("greedy-host/pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			heuristics.GreedyPointer(tree, heuristics.FromHost)
		}
	})
	b.Run("greedy-host/compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			heuristics.Greedy(tree, heuristics.FromHost)
		}
	})

	b.Run("anneal/pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			heuristics.AnnealPointer(tree, heuristics.AnnealConfig{Seed: 7, Steps: 500})
		}
	})
	b.Run("anneal/compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			heuristics.Anneal(tree, heuristics.AnnealConfig{Seed: 7, Steps: 500})
		}
	})

	b.Run("bnb/pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exact.BranchAndBoundPointer(ctx, tree, 0, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bnb/compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exact.BranchAndBound(tree, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("adapted-ssb/pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := assign.BuildPointer(tree).SolveAdapted(assign.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adapted-ssb/compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := assign.Build(tree).SolveAdapted(assign.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompiledServeWarm times the steady-state serving regime the
// relayering targets: a Service answering a cached instance. Read the
// allocs/op column — the contract is 0.
func BenchmarkCompiledServeWarm(b *testing.B) {
	tree := workload.PaperTree()
	svc := repro.NewService(nil, 64)
	ctx := context.Background()
	if _, _, err := svc.Solve(ctx, tree); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svc.Solve(ctx, tree); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWarmServeZeroAlloc is the allocs/op regression guard on the warm
// Service.Solve hot path: a cache hit must not allocate. Key assembly
// runs in a pooled byte buffer, the store lookup reads through it without
// materialising a string, and the cached outcome is delivered as-is.
func TestWarmServeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs in the non-race CI job")
	}
	tree := workload.PaperTree()
	svc := repro.NewService(nil, 64)
	ctx := context.Background()
	if _, status, err := svc.Solve(ctx, tree); err != nil || status != repro.CacheMiss {
		t.Fatalf("prewarm: status %v, err %v", status, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		out, status, err := svc.Solve(ctx, tree)
		if err != nil || out == nil || status != repro.CacheHit {
			t.Fatalf("warm solve: status %v, err %v", status, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Service.Solve allocates %.1f objects/op, want 0", allocs)
	}
}

// TestBatchEvalZeroAlloc is the allocs/op regression guard on the batch
// delay kernel: once a BatchFrame's accumulator lanes are sized, repeated
// FlatDelayBatch calls over the same plan must not allocate — the genetic
// population and annealing restart pack ride this path every generation.
func TestBatchEvalZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs in the non-race CI job")
	}
	tree := workload.PaperTree()
	c := model.Compile(tree)
	const lanes = 8
	locs := make([][]model.Location, lanes)
	for i := range locs {
		locs[i] = make([]model.Location, c.Len())
		if i%2 == 0 {
			c.BaseLocations(locs[i])
		} else {
			c.TopmostLocations(locs[i])
		}
	}
	out := make([]float64, lanes)
	fr := eval.GetBatchFrame()
	defer eval.PutBatchFrame(fr)
	eval.FlatDelayBatch(c, locs, out, fr) // size the lanes
	allocs := testing.AllocsPerRun(200, func() {
		eval.FlatDelayBatch(c, locs, out, fr)
	})
	if allocs != 0 {
		t.Fatalf("FlatDelayBatch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestStripedArenaZeroAlloc guards the per-P scratch arenas: a steady
// Get/Put cycle must serve every checkout from a stripe, never the cold
// allocator — the property that keeps the parallel workers, batch
// evaluators and warm serve path allocation-free across GC cycles.
func TestStripedArenaZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs in the non-race CI job")
	}
	eval.PutBatchFrame(eval.GetBatchFrame()) // park one frame in this P's stripe
	allocs := testing.AllocsPerRun(200, func() {
		fr := eval.GetBatchFrame()
		eval.PutBatchFrame(fr)
	})
	if allocs != 0 {
		t.Fatalf("striped Get/Put cycle allocates %.1f objects/op, want 0", allocs)
	}
}
