// Benchmarks, one per reproduced paper artefact (see DESIGN.md §4 for the
// experiment index). Each BenchmarkEn_* times the computational core of
// experiment En; `go test -bench=. -benchmem` therefore sweeps the whole
// evaluation. cmd/crbench renders the corresponding tables.
package repro_test

import (
	"math/rand"
	"testing"

	"repro"
	"repro/internal/assign"
	"repro/internal/bench"
	"repro/internal/bokhari"
	"repro/internal/chain"
	"repro/internal/colouring"
	"repro/internal/dagcru"
	"repro/internal/dwg"
	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkE1_Figure4SSB times the SSB algorithm on the Figure-4 graph.
func BenchmarkE1_Figure4SSB(b *testing.B) {
	g, src, dst := workload.Figure4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dwg.SSB(g, src, dst, dwg.Default); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Colouring times the Figure-5 colour propagation.
func BenchmarkE2_Colouring(b *testing.B) {
	tree := workload.PaperTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		colouring.Analyse(tree)
	}
}

// BenchmarkE3_AssignmentGraph times the Figure-6 dual construction.
func BenchmarkE3_AssignmentGraph(b *testing.B) {
	tree := workload.PaperTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		assign.Build(tree)
	}
}

// BenchmarkE4_Labelling times the σ/β labelling on the symbolic tree.
func BenchmarkE4_Labelling(b *testing.B) {
	tree := workload.PaperTreeSymbolic()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		assign.Build(tree)
	}
}

// BenchmarkE5_AdaptedSSB times the full §5.4 solve of the paper tree.
func BenchmarkE5_AdaptedSSB(b *testing.B) {
	tree := workload.PaperTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := assign.Solve(tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_Epilepsy times the motivating scenario end to end.
func BenchmarkE6_Epilepsy(b *testing.B) {
	tree := workload.Epilepsy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Solve(tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_GenericSSBScaling sweeps the generic SSB algorithm over DWG
// sizes (the §4.2 complexity claim).
func BenchmarkE7_GenericSSBScaling(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		g, src, dst := workload.RandomDWG(rand.New(rand.NewSource(1)), n, 4*n)
		b.Run(size(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dwg.SSB(g, src, dst, dwg.Default); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8_AdaptedScaling sweeps the adapted solver over tree sizes
// (the §5.4 complexity claim).
func BenchmarkE8_AdaptedScaling(b *testing.B) {
	for _, n := range []int{15, 63, 255} {
		tree := workload.Random(rand.New(rand.NewSource(2)), workload.DefaultRandomSpec(n, 4))
		b.Run(size(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := assign.Solve(tree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9_SolverAgreement times the three agreeing exact solvers on the
// same instance (the cross-validation workload).
func BenchmarkE9_SolverAgreement(b *testing.B) {
	tree := workload.Random(rand.New(rand.NewSource(3)), workload.DefaultRandomSpec(12, 3))
	b.Run("adapted-ssb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := assign.Solve(tree); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pareto-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.Pareto(tree, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.BruteForce(tree, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10_FutureWork times the §6 future-work solvers.
func BenchmarkE10_FutureWork(b *testing.B) {
	tree := workload.Random(rand.New(rand.NewSource(4)), workload.DefaultRandomSpec(31, 4))
	b.Run("branch-and-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.BranchAndBound(tree, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("genetic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			heuristics.Genetic(tree, heuristics.GeneticConfig{Seed: int64(i)})
		}
	})
}

// BenchmarkE11_LambdaSweep times a full λ sweep on the paper tree.
func BenchmarkE11_LambdaSweep(b *testing.B) {
	g := assign.Build(workload.PaperTree())
	lambdas := []float64{0, 0.25, 0.5, 0.75, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, l := range lambdas {
			if _, err := g.SolveAdapted(assign.Options{Weights: dwg.Lambda(l)}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE12_SpeedRatio times the heterogeneity sweep on the epilepsy
// scenario.
func BenchmarkE12_SpeedRatio(b *testing.B) {
	base := workload.Epilepsy()
	ratios := []float64{0.25, 1, 4, 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range ratios {
			tree := base.ScaleProfiles(1, r, 1)
			if _, err := repro.Solve(tree); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE13_SimValidation times the discrete-event simulator in both
// modes on the paper tree's optimal assignment.
func BenchmarkE13_SimValidation(b *testing.B) {
	tree := workload.PaperTree()
	sol, err := assign.Solve(tree)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("barrier", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(tree, sol.Assignment, sim.Config{Mode: sim.PaperBarrier}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("overlapped-4frames", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := sim.Config{Mode: sim.Overlapped, Frames: 4, Interval: 1}
			if _, err := sim.Run(tree, sol.Assignment, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE14_BokhariBaseline times the §2 baseline (free satellites,
// bottleneck objective) on the paper tree: both baseline solvers.
func BenchmarkE14_BokhariBaseline(b *testing.B) {
	tree := workload.PaperTree()
	b.Run("sb-graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bokhari.SolveSB(tree); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("threshold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bokhari.SolveThreshold(tree); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE15_Throughput times a 16-frame pipelined simulation.
func BenchmarkE15_Throughput(b *testing.B) {
	tree := workload.Epilepsy()
	sol, err := assign.Solve(tree)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{Mode: sim.Overlapped, Frames: 16, Interval: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tree, sol.Assignment, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16_ChainPartitioning times the related-work chain solvers.
func BenchmarkE16_ChainPartitioning(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	p := &chain.Problem{Weights: make([]float64, 48), Comm: make([]float64, 47), K: 6}
	for i := range p.Weights {
		p.Weights[i] = float64(1 + rng.Intn(30))
	}
	for i := range p.Comm {
		p.Comm[i] = float64(rng.Intn(10))
	}
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chain.DP(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chain.Probe(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dwg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chain.DWG(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE17_DAGExtension times the §6 DAG model solvers on the
// epilepsy instance converted to a DAG.
func BenchmarkE17_DAGExtension(b *testing.B) {
	g, err := dagcru.FromTree(workload.Epilepsy())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := dagcru.BruteForce(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("genetic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dagcru.Genetic(g, int64(i), 40, 60)
		}
	})
}

// BenchmarkExperimentTables runs the fast experiment-table generators end
// to end (the slow scaling tables E7–E10 are covered by the dedicated
// benchmarks above).
func BenchmarkExperimentTables(b *testing.B) {
	fast := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E11", "E13", "E14", "E16"}
	for i := 0; i < b.N; i++ {
		for _, id := range fast {
			e, ok := bench.Find(id)
			if !ok {
				b.Fatalf("missing %s", id)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func size(n int) string {
	switch {
	case n < 10:
		return "n=00" + string('0'+byte(n))
	case n < 100:
		return "n=0" + itoa(n)
	default:
		return "n=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
