package repro

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/boundcache"
	"repro/internal/incremental"
)

// Mutations of a live Session tree, applied with Session.Mutate. The set
// is sealed; nodes and satellites are addressed by name, the stable
// handle across revisions.
type (
	// Mutation is one edit of a session's tree.
	Mutation = incremental.Mutation
	// WeightUpdate drifts one node's execution profile and/or uplink
	// cost; nil fields keep the current value.
	WeightUpdate = incremental.WeightUpdate
	// AttachSubtree grafts a Spec fragment under the named parent.
	AttachSubtree = incremental.AttachSubtree
	// DetachSubtree removes the subtree rooted at the named node.
	DetachSubtree = incremental.DetachSubtree
	// SatelliteChange re-homes a sensor onto another satellite by name.
	SatelliteChange = incremental.SatelliteChange
)

// ApplyMutations folds the mutations into a new validated revision of t,
// leaving t untouched. Most callers want a Session, which also carries
// the warm-start state; ApplyMutations is the stateless building block.
func ApplyMutations(t *Tree, muts ...Mutation) (*Tree, error) {
	return incremental.Apply(t, muts...)
}

// ProjectAssignment maps an assignment computed on one revision of a tree
// onto another revision by node and satellite name, repairing anything the
// mutations broke. The result is always feasible for to.
func ProjectAssignment(from *Tree, asg *Assignment, to *Tree) *Assignment {
	return incremental.Project(from, asg, to)
}

// Session is a long-lived, revisioned view of one mutating problem
// instance — the dynamic-workload entry point. A session holds the
// current tree, applies Mutate batches atomically (each success is a new
// revision; the previous revisions' trees are immutable and stay valid),
// and Resolve solves the current revision warm: the previous outcome's
// assignment is projected onto the mutated tree and offered to the solver
// as a warm start, while the Service's fingerprint-keyed cache is shared
// across revisions — a mutation stream that revisits an earlier shape
// turns those revisions into cache hits.
//
// A Session is safe for concurrent use; Mutate and Resolve serialise on
// the session's lock, but solves of different sessions proceed in
// parallel and share the Service cache.
type Session struct {
	svc *Service
	cfg settings

	mu       sync.Mutex
	tree     *Tree
	rev      int
	lastTree *Tree    // revision the last outcome was solved on
	lastOut  *Outcome // last resolved outcome (nil before the first Resolve)
}

// OpenSession starts a session on t. The options become the session's
// solve defaults, layered over the Service solver's own defaults and
// overridable per Resolve call.
//
// Every session carries its own bound-memoization cache (unless the
// options attach one explicitly): exact re-solves after a mutation then
// re-search only the subtrees the edit touched, replaying proven bounds
// for everything else. Pass a shared cache via WithBoundCache to pool
// proofs across sessions solving related instances.
func (s *Service) OpenSession(t *Tree, opts ...Option) (*Session, error) {
	if t == nil {
		return nil, fmt.Errorf("%w: nil tree", ErrInvalidTree)
	}
	cfg := s.solver.settingsFor(opts)
	if cfg.bounds == nil {
		cfg.bounds = boundcache.New(boundcache.Config{})
	}
	return &Session{svc: s, cfg: cfg, tree: t}, nil
}

// Tree returns the current revision's tree (immutable; a later Mutate
// replaces rather than modifies it).
func (sess *Session) Tree() *Tree {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.tree
}

// Revision returns the number of successful Mutate calls so far.
func (sess *Session) Revision() int {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.rev
}

// Fingerprint returns the current revision's canonical instance identity.
// After profile-only mutations this is a delta computation: only the
// root-to-edit path hashes are recomputed.
func (sess *Session) Fingerprint() string {
	tree, _ := sess.Snapshot()
	return Fingerprint(tree)
}

// Snapshot returns the current revision's tree and revision number as one
// consistent pair — Tree and Revision called separately can interleave
// with a concurrent Mutate.
func (sess *Session) Snapshot() (*Tree, int) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.tree, sess.rev
}

// Mutate applies the batch atomically: either every mutation applies and
// the session advances one revision, or the session is unchanged and the
// error says why. The warm-start state survives mutations — the next
// Resolve projects the last outcome onto the new revision.
func (sess *Session) Mutate(muts ...Mutation) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	next, err := incremental.Apply(sess.tree, muts...)
	if err != nil {
		return err
	}
	sess.tree = next
	sess.rev++
	return nil
}

// Resolve solves the current revision through the Service cache, warm:
// when a previous outcome exists and the algorithm can consume hints
// (Capabilities.WarmStart), its assignment is projected onto the current
// tree and offered to the solver via WithWarmStart. Options override the
// session's defaults for this call only. On success the outcome becomes
// the warm-start seed of the next Resolve.
func (sess *Session) Resolve(ctx context.Context, opts ...Option) (*Outcome, CacheStatus, error) {
	out, _, status, err := sess.ResolveRevision(ctx, opts...)
	return out, status, err
}

// ResolveRevision is Resolve returning also the exact tree the outcome
// was solved against. A concurrent Mutate can advance the session while
// a solve runs, so rendering an outcome against Tree() races; serving
// layers must render against the returned revision instead.
func (sess *Session) ResolveRevision(ctx context.Context, opts ...Option) (*Outcome, *Tree, CacheStatus, error) {
	sess.mu.Lock()
	tree := sess.tree
	cfg := sess.cfg
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.warm == nil && sess.lastOut != nil {
		// Projection is O(n); skip it when the chosen algorithm would
		// drop the hint anyway (the default adapted-ssb does).
		if caps, ok := Capability(cfg.algorithm); ok && caps.WarmStart {
			cfg.warm = incremental.Project(sess.lastTree, sess.lastOut.Assignment, tree)
		}
	}
	sess.mu.Unlock()

	out, status, err := sess.svc.solveCached(ctx, tree, cfg)
	if err != nil {
		return nil, tree, status, err
	}
	sess.mu.Lock()
	if sess.tree == tree {
		// Still the current revision: remember the outcome as the next
		// warm seed. (A concurrent Mutate raced ahead otherwise; its next
		// Resolve projects from whatever seed it kept, which stays sound —
		// warm hints are advisory.)
		sess.lastTree, sess.lastOut = tree, out
	}
	sess.mu.Unlock()
	return out, tree, status, nil
}
