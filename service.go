package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dwg"
	"repro/internal/model"
	"repro/internal/pool"
)

// CacheStatus classifies how a Service call obtained its Outcome.
type CacheStatus = cache.Result

// CacheStatus values.
const (
	// CacheMiss: the call ran the solver.
	CacheMiss = cache.Miss
	// CacheHit: the Outcome came from the result cache.
	CacheHit = cache.Hit
	// CacheShared: the call joined a concurrent identical solve.
	CacheShared = cache.Shared
)

// CacheStats is a snapshot of the Service's cache counters.
type CacheStats = cache.Stats

// Service is the serving-layer wrapper around a Solver: it keys every
// solve by the canonical instance identity — Fingerprint(tree) plus the
// resolved algorithm, objective weights, seed and budget — and backs the
// Solver with a sharded LRU of Outcomes and singleflight deduplication,
// so N concurrent identical solves run once and repeats are cache hits.
//
// Outcomes returned on hits are shared between callers: treat them as
// immutable (clone the Assignment before mutating it). Solve errors are
// never cached; a failed instance is retried by the next request. The
// per-call timeout (WithTimeout) shapes quality of service, not the
// answer, so it is deliberately excluded from the cache key.
//
// A Service is safe for concurrent use; cmd/crserve exposes one over
// HTTP with the wire DTOs of package api.
type Service struct {
	solver *Solver
	cache  *cache.Cache

	// solve runs one uncached solve; a test seam defaulting to solveOne.
	solve func(ctx context.Context, t *Tree, cfg settings) (*Outcome, error)
}

// NewService wraps solver (nil means NewSolver()) with a result cache
// holding up to cacheSize Outcomes. cacheSize <= 0 disables the store but
// keeps singleflight deduplication of concurrent identical solves.
func NewService(solver *Solver, cacheSize int) *Service {
	if solver == nil {
		solver = NewSolver()
	}
	return &Service{solver: solver, cache: cache.New(cacheSize), solve: solveOne}
}

// Solver returns the wrapped Solver.
func (s *Service) Solver() *Solver { return s.solver }

// Stats returns a snapshot of the cache's hit/miss/shared counters.
func (s *Service) Stats() CacheStats { return s.cache.Stats() }

// Solve is Solver.Solve behind the cache: identical instances (same
// fingerprint and solve parameters) are answered from the store or, when
// already being solved concurrently, from the shared in-flight result.
func (s *Service) Solve(ctx context.Context, t *Tree, opts ...Option) (*Outcome, CacheStatus, error) {
	return s.solveCached(ctx, t, s.solver.settingsFor(opts))
}

// cachedSolve is what the cache stores: the Outcome together with the
// tree it was computed against. Fingerprints are canonical — trees with
// different NodeID/SatelliteID numberings share one — so a hit served to
// a different (structurally identical) tree must remap the assignment
// onto the requester's numbering before it leaves the Service.
type cachedSolve struct {
	out  *Outcome
	tree *Tree
}

func (s *Service) solveCached(ctx context.Context, t *Tree, cfg settings) (*Outcome, CacheStatus, error) {
	if t == nil {
		return nil, CacheMiss, fmt.Errorf("%w: nil tree", ErrInvalidTree)
	}
	// Anytime requests bypass the cache entirely: a best-effort outcome is
	// deadline-shaped (Partial results must never be stored or served as
	// the instance's answer), and an incumbent callback is a side effect a
	// cache hit would silently skip.
	if cfg.bestEffort || cfg.onIncumbent != nil {
		s.cache.RecordMiss()
		out, err := s.solve(ctx, t, cfg)
		if err != nil {
			return nil, CacheMiss, err
		}
		return out, CacheMiss, nil
	}
	// The cache key is assembled into a pooled byte buffer and looked up
	// with the allocation-free byte path first: on a warm hit (the
	// steady-state serving regime) the whole call — fingerprint memo
	// read, key append, LRU lookup, delivery — allocates nothing. The
	// string key is materialised only when the request misses and has to
	// enter the singleflight/store machinery.
	kb := keyBufs.Get()
	kb.b = appendRequestKey(kb.b[:0], t, cfg)
	// A warm hint never changes an exact solver's answer, and solvers
	// without WarmStart capability drop it before searching, so both keep
	// the full cache path (the hint is excluded from the key: a hit is
	// correct either way, and a miss solves warm). A warm-started
	// non-exact solve is start-dependent: serving a stored result is fine
	// (the deterministic cold answer, same as every other caller gets),
	// but its own result must never enter the store, where it would leak
	// a warmed local optimum into cold requests under the same key — so
	// it looks up, and on a miss solves directly without storing.
	if v, ok := s.cache.GetBytes(kb.b); ok {
		keyBufs.Put(kb)
		return s.deliver(v.(*cachedSolve), t, CacheHit)
	}
	if cfg.warm != nil {
		if caps, ok := Capability(cfg.algorithm); ok && caps.WarmStart && !caps.Exact {
			keyBufs.Put(kb)
			s.cache.RecordMiss() // solved outside the store; keep the ratio honest
			out, err := s.solve(ctx, t, cfg)
			if err != nil {
				return nil, CacheMiss, err
			}
			return out, CacheMiss, nil
		}
	}
	key := string(kb.b)
	keyBufs.Put(kb)
	return s.solveMiss(ctx, t, cfg, key)
}

// solveMiss runs the singleflight/store path of solveCached. It is a
// separate method so the flight closure's captures live here: capturing
// cfg inside solveCached would force the settings onto the heap on every
// call, including warm hits that never reach the closure.
func (s *Service) solveMiss(ctx context.Context, t *Tree, cfg settings, key string) (*Outcome, CacheStatus, error) {
	// A shared flight can fail with the *leader's* cancellation — its
	// tight deadline or disconnect, nothing to do with this caller. As
	// long as our own context is alive, retry: the key is unclaimed
	// again, so the retry becomes leader and solves under our
	// constraints. Deterministic failures (unknown algorithm, budget
	// exhaustion) are shared as-is — retrying those would amplify the
	// very stampede singleflight absorbs — and the retry is bounded so
	// fast-failing leaders cannot spin a waiter forever.
	for attempt := 0; ; attempt++ {
		v, how, err := s.cache.Do(ctx, key, func() (any, error) {
			out, err := s.solve(ctx, t, cfg)
			if err != nil {
				return nil, err
			}
			return &cachedSolve{out: out, tree: t}, nil
		})
		if err != nil {
			if how == CacheShared && attempt < 2 && ctx.Err() == nil && canceledElsewhere(err) {
				continue
			}
			return nil, how, err
		}
		return s.deliver(v.(*cachedSolve), t, how)
	}
}

// deliver hands a cached solve to the caller, remapping the outcome when
// it was computed on a different (structurally identical) tree.
func (s *Service) deliver(cs *cachedSolve, t *Tree, how CacheStatus) (*Outcome, CacheStatus, error) {
	if cs.tree == t {
		return cs.out, how, nil
	}
	out, err := remapOutcome(cs.out, cs.tree, t)
	if err != nil {
		return nil, how, err
	}
	return out, how, nil
}

// canceledElsewhere reports whether err is a cancellation that may belong
// to another caller's context rather than to the request semantics.
func canceledElsewhere(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// remapOutcome translates an Outcome computed on from onto the
// structurally identical tree to: node i of from's pre-order corresponds
// to node i of to's pre-order, and satellites correspond by first
// appearance in that order — exactly the canonicalisation Fingerprint
// hashes, so fingerprint equality guarantees the correspondence is
// well-defined. The breakdown is re-evaluated on to, which also
// re-validates the translated assignment.
func remapOutcome(out *Outcome, from, to *Tree) (*Outcome, error) {
	fromPre, toPre := from.Preorder(), to.Preorder()
	if len(fromPre) != len(toPre) {
		return nil, fmt.Errorf("repro: cached outcome for a %d-node tree served a %d-node tree (fingerprint collision?)",
			len(fromPre), len(toPre))
	}
	// Satellite correspondence by pre-order first appearance.
	fromRank := make(map[SatelliteID]int)
	for _, id := range fromPre {
		n := from.Node(id)
		if n.Kind == model.SensorKind {
			if _, ok := fromRank[n.Satellite]; !ok {
				fromRank[n.Satellite] = len(fromRank)
			}
		}
	}
	toByRank := make([]SatelliteID, 0, len(fromRank))
	seen := make(map[SatelliteID]bool)
	for _, id := range toPre {
		n := to.Node(id)
		if n.Kind == model.SensorKind && !seen[n.Satellite] {
			seen[n.Satellite] = true
			toByRank = append(toByRank, n.Satellite)
		}
	}

	asg := NewAssignment(to)
	for i, fromID := range fromPre {
		if sat, onSat := out.Assignment.At(fromID).Satellite(); onSat {
			rank, ok := fromRank[sat]
			if !ok || rank >= len(toByRank) {
				return nil, fmt.Errorf("repro: cached assignment references unmapped satellite %d", sat)
			}
			asg.Set(toPre[i], OnSatellite(toByRank[rank]))
		} else {
			asg.Set(toPre[i], Host)
		}
	}
	bd, err := Evaluate(to, asg)
	if err != nil {
		return nil, fmt.Errorf("repro: remapping cached outcome: %w", err)
	}
	return &Outcome{
		Algorithm:  out.Algorithm,
		Assignment: asg,
		Breakdown:  bd,
		Delay:      bd.Delay,
		Exact:      out.Exact,
		Elapsed:    out.Elapsed,
		Work:       out.Work,
		Stats:      out.Stats,
		Partial:    out.Partial,
		LowerBound: out.LowerBound,
	}, nil
}

// ServiceBatchResult is one SolveBatch item's result: exactly one of
// Outcome and Err is non-nil, and Status records how the item was served.
type ServiceBatchResult struct {
	Outcome *Outcome
	Status  CacheStatus
	Err     error
}

// SolveBatch solves every tree on a bounded worker pool (WithParallelism
// workers) with each item routed through the cache, so duplicated
// instances inside one batch — and across concurrent batches — are
// computed once. Results arrive in input order with failures isolated per
// item; cancelling ctx stops the batch as in Solver.SolveBatch.
func (s *Service) SolveBatch(ctx context.Context, trees []*Tree, opts ...Option) ([]ServiceBatchResult, error) {
	cfg := s.solver.settingsFor(opts)
	results := make([]ServiceBatchResult, len(trees))
	pool.Run(ctx, len(trees), cfg.parallelism, func(i int) {
		out, how, err := s.solveCached(ctx, trees[i], cfg)
		results[i] = ServiceBatchResult{Outcome: out, Status: how, Err: err}
	})

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Outcome == nil && results[i].Err == nil {
				results[i].Err = &core.CanceledError{Algorithm: cfg.algorithm, Cause: err}
			}
		}
		return results, &core.CanceledError{Algorithm: cfg.algorithm, Cause: err}
	}
	return results, nil
}

// keyBuf is the pooled scratch the cache key is appended into; the warm
// serving path borrows one per call so key assembly never allocates.
type keyBuf struct{ b []byte }

var keyBufs = pool.NewArena(func() *keyBuf { return new(keyBuf) })

// appendRequestKey appends the cache identity of one solve to dst: the
// tree's structural fingerprint plus every parameter that changes the
// answer. The timeout is excluded (it bounds the work, not the result),
// warm-start hints are excluded (they are advisory and reach the cache
// only for exact solvers, whose answer they cannot change), solve
// parallelism is excluded (Parallel-capable solvers promise the worker
// count changes wall time, never the answer — which is why annealing-pack
// pins its restart width instead of consuming the hint), the bound cache
// is excluded (Bounds-capable solvers promise memoized bounds change the
// nodes explored, never the delay — property-tested by the parity
// suite), parameters
// the chosen algorithm declares it ignores are normalised away (a seed on
// the deterministic adapted-ssb must not fragment the cache), and zero
// weights collapse onto the default S+B objective so both spellings
// share a key.
func appendRequestKey(dst []byte, t *Tree, cfg settings) []byte {
	w, seed, budget := cfg.weights, cfg.seed, cfg.budget
	if caps, ok := Capability(cfg.algorithm); ok {
		if !caps.Weighted {
			w = dwg.Weights{}
		}
		if !caps.Seeded {
			seed = 0
		}
		if !caps.Budget {
			budget = 0
		}
	}
	if w == (dwg.Weights{}) {
		w = dwg.Default
	}
	dst = append(dst, model.Fingerprint(t)...)
	dst = append(dst, "|a="...)
	dst = append(dst, string(cfg.algorithm)...)
	dst = append(dst, "|ws="...)
	dst = strconv.AppendUint(dst, math.Float64bits(w.WS), 16)
	dst = append(dst, "|wb="...)
	dst = strconv.AppendUint(dst, math.Float64bits(w.WB), 16)
	dst = append(dst, "|s="...)
	dst = strconv.AppendInt(dst, seed, 10)
	dst = append(dst, "|b="...)
	dst = strconv.AppendInt(dst, int64(budget), 10)
	return dst
}

// requestKey is appendRequestKey materialised as a string (miss paths and
// tests; the hit path stays on the byte form).
func requestKey(t *Tree, cfg settings) string {
	return string(appendRequestKey(nil, t, cfg))
}
