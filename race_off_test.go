//go:build !race

package repro_test

// raceEnabled reports whether the race detector instruments this build.
// The zero-allocation guards skip under -race: the instrumentation itself
// allocates, which would fail the guard for reasons unrelated to the
// serving path.
const raceEnabled = false
