package repro

import (
	"fmt"
	"strings"
	"time"
)

// This file is the solver-side seam of the elastic cluster layer: how a
// node's warm state — result-cache entries and session warm seeds —
// leaves one process and is adopted by another. The wire format lives in
// package api; here live the typed export/adopt hooks the serving layer
// composes.

// WarmEntry is one result-cache entry prepared for migration: the
// node-independent cache key, the tree the outcome was solved on, and
// the outcome itself.
type WarmEntry struct {
	Key     string
	Tree    *Tree
	Outcome *Outcome
}

// FingerprintOfKey extracts the instance fingerprint from a Service
// cache key ("" when key is not a Service key). Keys are
// "<fingerprint>|a=<algorithm>|...", so this is the routing handle the
// migration planner maps onto ring ownership.
func FingerprintOfKey(key string) string {
	fp, _, ok := strings.Cut(key, "|a=")
	if !ok {
		return ""
	}
	return fp
}

// ExportWarm returns up to limit cached results that should move,
// grouped by destination node: dest maps an instance fingerprint to the
// node that should now hold it ("" = stays here). Ordering within each
// shard is most-recently-used first, so under a tight limit the hottest
// entries travel.
func (s *Service) ExportWarm(limit int, dest func(fingerprint string) string) map[string][]WarmEntry {
	if dest == nil || limit <= 0 {
		return nil
	}
	kvs := s.cache.Export(limit, func(key string) bool {
		fp := FingerprintOfKey(key)
		return fp != "" && dest(fp) != ""
	})
	if len(kvs) == 0 {
		return nil
	}
	out := make(map[string][]WarmEntry)
	for _, kv := range kvs {
		cs, ok := kv.Val.(*cachedSolve)
		if !ok || cs.out == nil || cs.tree == nil || cs.out.Partial {
			continue
		}
		node := dest(FingerprintOfKey(kv.Key))
		if node == "" {
			continue
		}
		out[node] = append(out[node], WarmEntry{Key: kv.Key, Tree: cs.tree, Outcome: cs.out})
	}
	return out
}

// AdoptWarm stores a migrated outcome under its original cache key, so
// the next identical request on this node is a warm hit. The entry goes
// through the same delivery machinery as locally computed ones — a hit
// against a structurally identical tree is remapped before it leaves
// the Service.
func (s *Service) AdoptWarm(key string, t *Tree, out *Outcome) error {
	if key == "" || FingerprintOfKey(key) == "" {
		return fmt.Errorf("repro: AdoptWarm: malformed cache key %q", key)
	}
	if t == nil || out == nil {
		return fmt.Errorf("repro: AdoptWarm: nil tree or outcome")
	}
	if out.Partial {
		return fmt.Errorf("repro: AdoptWarm: partial outcomes are never cached")
	}
	s.cache.Put(key, &cachedSolve{out: out, tree: t})
	return nil
}

// AdoptedOutcome rebuilds a full Outcome from its migrated wire parts:
// the assignment is evaluated on t (which also validates it), restoring
// the breakdown and delay the wire form does not carry. This mirrors the
// cross-tree cache-hit remap — an adopted entry sits in exactly the
// correctness envelope of every remapped hit.
func AdoptedOutcome(t *Tree, algorithm string, asg *Assignment, exact bool, lowerBound float64, work int, elapsed time.Duration) (*Outcome, error) {
	if t == nil || asg == nil {
		return nil, fmt.Errorf("repro: AdoptedOutcome: nil tree or assignment")
	}
	bd, err := Evaluate(t, asg)
	if err != nil {
		return nil, fmt.Errorf("repro: adopting migrated outcome: %w", err)
	}
	return &Outcome{
		Algorithm:  Algorithm(algorithm),
		Assignment: asg,
		Breakdown:  bd,
		Delay:      bd.Delay,
		Exact:      exact,
		Elapsed:    elapsed,
		Work:       work,
		LowerBound: lowerBound,
	}, nil
}

// WarmState returns the tree and assignment of the session's last
// resolved outcome (nil, nil before the first Resolve) — the migratable
// warm seed. The returned values are immutable snapshots.
func (sess *Session) WarmState() (*Tree, *Assignment) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.lastOut == nil {
		return nil, nil
	}
	return sess.lastTree, sess.lastOut.Assignment
}

// AdoptState seeds a freshly opened session with migrated state: the
// revision counter of the original session and, when warm is non-nil, a
// warm-start assignment for the current tree. An infeasible hint is
// dropped silently — warm hints are advisory and never change answers,
// so a hint that does not survive the trip costs only the warm speedup.
func (sess *Session) AdoptState(rev int, warm *Assignment) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if rev > sess.rev {
		sess.rev = rev
	}
	if warm == nil {
		return
	}
	bd, err := Evaluate(sess.tree, warm)
	if err != nil {
		return
	}
	sess.lastTree = sess.tree
	sess.lastOut = &Outcome{Assignment: warm, Breakdown: bd, Delay: bd.Delay}
}
