// Package repro is the public API of this reproduction of
//
//	Mei, Pawar, Widya — "Optimal Assignment of a Tree-Structured Context
//	Reasoning Procedure onto a Host-Satellites System", IPPS 2007.
//
// It finds the assignment of a tree of Context Reasoning Units (CRUs) onto
// a host–satellites star network that minimises the end-to-end processing
// and communication delay, using the paper's coloured doubly weighted
// assignment graph and adapted SSB path search, plus a collection of
// independent exact solvers, heuristics, a discrete-event simulator, and
// the workloads and experiments that regenerate every figure of the paper.
//
// # Quick start
//
//	b := repro.NewBuilder()
//	box := b.Satellite("sensor-box")
//	root := b.Root("fuse", 3, 0)       // h=3 on the host
//	f := b.Child(root, "features", 2, 6, 0.5)
//	b.Sensor(f, "probe", box, 4)       // raw frames cost 4 to uplink
//	tree, err := b.Build()
//	...
//	sol, err := repro.Solve(tree)
//	fmt.Println(sol.Delay, sol.Assignment.Describe(tree))
//
// Use SolveWith to select other algorithms (exact baselines, heuristics),
// Simulate to replay an assignment on the discrete-event testbed, and the
// cmd/ tools (crassign, crsim, crgen, crbench) for file-driven workflows.
package repro

import (
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/sim"
)

// Re-exported model types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Tree is a validated CRU tree with its satellite set.
	Tree = model.Tree
	// Builder assembles a Tree.
	Builder = model.Builder
	// NodeID identifies a node of a Tree.
	NodeID = model.NodeID
	// SatelliteID identifies a satellite.
	SatelliteID = model.SatelliteID
	// Location is the host or one satellite.
	Location = model.Location
	// Assignment places CRUs onto locations.
	Assignment = model.Assignment
	// Spec is the JSON interchange form of a problem instance.
	Spec = model.Spec
	// Breakdown itemises an assignment's delay.
	Breakdown = eval.Breakdown
	// Algorithm names a registered solver.
	Algorithm = core.Algorithm
	// Outcome is a uniform solver result.
	Outcome = core.Outcome
	// Request is a parameterised solve call.
	Request = core.Request
	// SimConfig parameterises the discrete-event simulator.
	SimConfig = sim.Config
	// SimResult is a simulation outcome.
	SimResult = sim.Result
)

// Algorithm names; see core for semantics. AdaptedSSB (the paper's
// algorithm) is the default.
const (
	AdaptedSSB      = core.AdaptedSSB
	LabelSearch     = core.LabelSearch
	ParetoDP        = core.ParetoDP
	BruteForce      = core.BruteForce
	BranchBound     = core.BranchBound
	AllHost         = core.AllHost
	MaxDistribution = core.MaxDistribution
	GreedyHost      = core.GreedyHost
	GreedyTop       = core.GreedyTop
	Annealing       = core.Annealing
	Genetic         = core.Genetic
)

// Simulator timing models.
const (
	// PaperBarrier reproduces the paper's analytic timing exactly.
	PaperBarrier = sim.PaperBarrier
	// Overlapped is the event-driven refinement.
	Overlapped = sim.Overlapped
)

// NewBuilder returns an empty tree builder.
func NewBuilder() *Builder { return model.NewBuilder() }

// FromSpec builds a validated tree from its JSON interchange form.
func FromSpec(s *Spec) (*Tree, error) { return model.FromSpec(s) }

// ToSpec converts a tree back to its interchange form.
func ToSpec(t *Tree, name string) *Spec { return model.ToSpec(t, name) }

// NewAssignment returns the everything-on-host assignment for t.
func NewAssignment(t *Tree) *Assignment { return model.NewAssignment(t) }

// OnSatellite returns the location of the given satellite.
func OnSatellite(id SatelliteID) Location { return model.OnSatellite(id) }

// Host is the host machine's location.
var Host = model.Host

// Solve finds the minimum end-to-end-delay assignment of t with the
// paper's adapted SSB algorithm.
func Solve(t *Tree) (*Outcome, error) {
	return core.Solve(core.Request{Tree: t})
}

// SolveWith dispatches a fully parameterised solve (algorithm choice,
// objective weights, seeds, budgets).
func SolveWith(req Request) (*Outcome, error) { return core.Solve(req) }

// Algorithms lists every registered solver, exact ones first.
func Algorithms() []Algorithm { return core.Algorithms() }

// Evaluate computes the delay breakdown of an assignment.
func Evaluate(t *Tree, a *Assignment) (*Breakdown, error) { return eval.Evaluate(t, a) }

// Simulate replays an assignment on the discrete-event testbed.
func Simulate(t *Tree, a *Assignment, cfg SimConfig) (*SimResult, error) {
	return sim.Run(t, a, cfg)
}
