// Package repro is the public API of this reproduction of
//
//	Mei, Pawar, Widya — "Optimal Assignment of a Tree-Structured Context
//	Reasoning Procedure onto a Host-Satellites System", IPPS 2007.
//
// It finds the assignment of a tree of Context Reasoning Units (CRUs) onto
// a host–satellites star network that minimises the end-to-end processing
// and communication delay, using the paper's coloured doubly weighted
// assignment graph and adapted SSB path search, plus a collection of
// independent exact solvers, heuristics, a discrete-event simulator, and
// the workloads and experiments that regenerate every figure of the paper.
//
// # Quick start
//
// The Solver service is the entry point: it is reusable, safe for
// concurrent use, honours context cancellation and deadlines, and is
// configured with functional options.
//
//	b := repro.NewBuilder()
//	box := b.Satellite("sensor-box")
//	root := b.Root("fuse", 3, 0)       // h=3 on the host
//	f := b.Child(root, "features", 2, 6, 0.5)
//	b.Sensor(f, "probe", box, 4)       // raw frames cost 4 to uplink
//	tree, err := b.Build()
//	...
//	solver := repro.NewSolver(repro.WithTimeout(5 * time.Second))
//	sol, err := solver.Solve(ctx, tree)
//	fmt.Println(sol.Delay, sol.Assignment.Describe(tree))
//
// Options select other algorithms and tune them per call:
//
//	sol, err = solver.Solve(ctx, tree,
//	    repro.WithAlgorithm(repro.BranchBound),
//	    repro.WithBudget(1<<20))
//
// Batches of instances are solved on a bounded worker pool, with one
// result per input tree in input order and errors isolated per item:
//
//	results, err := solver.SolveBatch(ctx, trees, repro.WithParallelism(8))
//	for i, r := range results {
//	    if r.Err != nil { ... } else { use(r.Outcome) }
//	}
//
// Failures are structured: match ErrUnknownAlgorithm, ErrBudgetExceeded,
// ErrCanceled and ErrInvalidTree with errors.Is, and recover the details
// (which algorithm, which cause) with errors.As on UnknownAlgorithmError
// and CanceledError.
//
// Algorithms are self-registering: the built-in set lives in the internal
// solver packages, and Algorithms and Capability expose the registered
// names with their capability metadata (exactness, budget/seed/weight
// support). Use Simulate to replay an assignment on the discrete-event
// testbed, and the cmd/ tools (crassign, crsim, crgen, crbench) for
// file-driven workflows.
//
// # Serving
//
// Service wraps a Solver for high-rate serving: solves are keyed by the
// canonical instance identity Fingerprint and backed by a sharded LRU of
// Outcomes with singleflight deduplication, so concurrent identical
// requests run one solve and repeats are cache hits:
//
//	svc := repro.NewService(solver, 4096)
//	out, status, err := svc.Solve(ctx, tree)   // status: miss, hit or shared
//
// Package api defines the versioned wire DTOs (SolveRequest,
// SolveResponse, structured error codes) and cmd/crserve exposes the
// Service over HTTP.
//
// # Dynamic workloads
//
// Long-lived trees under mutation traffic use a Session: mutations
// (WeightUpdate, AttachSubtree, DetachSubtree, SatelliteChange) apply as
// atomic revisions, and every Resolve is warm — the previous outcome is
// projected onto the mutated tree and offered to the solver as a seed,
// while delta-aware fingerprinting keeps cache identity cheap and lets
// revisited shapes hit the shared cache:
//
//	sess, err := svc.OpenSession(tree)
//	out, status, err := sess.Resolve(ctx)          // cold first solve
//	err = sess.Mutate(repro.WeightUpdate{Node: "filter", SatTime: &v})
//	out, status, err = sess.Resolve(ctx)           // warm re-solve
//
// cmd/crserve exposes sessions under /v1/session; examples/dynamic walks
// a complete drifting-weights scenario.
package repro

import (
	"io"

	_ "repro/internal/algorithms" // link every built-in solver into the registry
	"repro/internal/boundcache"
	"repro/internal/core"
	"repro/internal/dwg"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/sim"
)

// Re-exported model types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Tree is a validated CRU tree with its satellite set.
	Tree = model.Tree
	// Builder assembles a Tree.
	Builder = model.Builder
	// NodeID identifies a node of a Tree.
	NodeID = model.NodeID
	// SatelliteID identifies a satellite.
	SatelliteID = model.SatelliteID
	// Location is the host or one satellite.
	Location = model.Location
	// Assignment places CRUs onto locations.
	Assignment = model.Assignment
	// Spec is the JSON interchange form of a problem instance.
	Spec = model.Spec
	// SpecCRU is one processing-CRU row of a Spec.
	SpecCRU = model.SpecCRU
	// SpecSensor is one sensor row of a Spec.
	SpecSensor = model.SpecSensor
	// Breakdown itemises an assignment's delay.
	Breakdown = eval.Breakdown
	// Algorithm names a registered solver.
	Algorithm = core.Algorithm
	// Capabilities is a registered solver's metadata.
	Capabilities = core.Capabilities
	// Outcome is a uniform solver result.
	Outcome = core.Outcome
	// Incumbent is one improving solution streamed by an anytime solver
	// through WithIncumbents.
	Incumbent = core.Incumbent
	// SearchStats details a graph-based solver's run.
	SearchStats = core.SearchStats
	// Request is a parameterised solve call (see the deprecated SolveWith;
	// new code passes options to Solver.Solve instead).
	Request = core.Request
	// Weights are the WS·S + WB·B objective coefficients.
	Weights = dwg.Weights
	// SimConfig parameterises the discrete-event simulator.
	SimConfig = sim.Config
	// SimResult is a simulation outcome.
	SimResult = sim.Result
	// BoundCache memoizes proven subtree bounds across exact solves; attach
	// one with WithBoundCache.
	BoundCache = boundcache.Cache
	// BoundCacheConfig sizes a BoundCache.
	BoundCacheConfig = boundcache.Config
	// BoundCacheStats reports a BoundCache's hit/store/eviction counters.
	BoundCacheStats = boundcache.Stats
)

// Structured errors of the solve service, matched with errors.Is.
var (
	// ErrUnknownAlgorithm reports a solve naming no registered algorithm.
	ErrUnknownAlgorithm = core.ErrUnknownAlgorithm
	// ErrBudgetExceeded reports an exact search that hit its budget.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrCanceled reports a solve stopped by context cancellation or
	// deadline; the wrapped cause matches context.Canceled/DeadlineExceeded.
	ErrCanceled = core.ErrCanceled
	// ErrInvalidTree reports a nil or invalid problem tree.
	ErrInvalidTree = core.ErrInvalidTree
)

// Error types carrying the failure details, matched with errors.As.
type (
	// UnknownAlgorithmError lists the requested and the known names.
	UnknownAlgorithmError = core.UnknownAlgorithmError
	// CanceledError names the canceled algorithm and the context cause.
	CanceledError = core.CanceledError
)

// Algorithm names; see Capability for semantics. AdaptedSSB (the paper's
// algorithm) is the default.
const (
	AdaptedSSB      = core.AdaptedSSB
	LabelSearch     = core.LabelSearch
	ParetoDP        = core.ParetoDP
	BruteForce      = core.BruteForce
	BranchBound     = core.BranchBound
	AllHost         = core.AllHost
	MaxDistribution = core.MaxDistribution
	GreedyHost      = core.GreedyHost
	GreedyTop       = core.GreedyTop
	Annealing       = core.Annealing
	Genetic         = core.Genetic
	ParallelBnB     = core.ParallelBnB
	AnnealingPack   = core.AnnealingPack
)

// Simulator timing models.
const (
	// PaperBarrier reproduces the paper's analytic timing exactly.
	PaperBarrier = sim.PaperBarrier
	// Overlapped is the event-driven refinement.
	Overlapped = sim.Overlapped
)

// DefaultWeights is the paper's S + B end-to-end delay objective.
var DefaultWeights = dwg.Default

// Lambda returns the convex objective λ·S + (1−λ)·B.
func Lambda(l float64) Weights { return dwg.Lambda(l) }

// NewBuilder returns an empty tree builder.
func NewBuilder() *Builder { return model.NewBuilder() }

// FromSpec builds a validated tree from its JSON interchange form.
func FromSpec(s *Spec) (*Tree, error) { return model.FromSpec(s) }

// ToSpec converts a tree back to its interchange form.
func ToSpec(t *Tree, name string) *Spec { return model.ToSpec(t, name) }

// ReadSpec decodes a Spec from JSON and builds the tree.
func ReadSpec(r io.Reader) (*Tree, error) { return model.ReadSpec(r) }

// WriteSpec encodes t as indented JSON.
func WriteSpec(w io.Writer, t *Tree, name string) error { return model.WriteSpec(w, t, name) }

// DOT renders the tree in Graphviz DOT syntax.
func DOT(t *Tree, title string) string { return model.DOT(t, title) }

// Fingerprint returns the canonical, order-stable content hash of the
// problem instance: structurally identical trees (same shape, profiles,
// costs and satellite partition, regardless of names) share it. It is the
// instance identity the Service caches by.
func Fingerprint(t *Tree) string { return model.Fingerprint(t) }

// NewBoundCache returns a bound-memoization cache for the exact searches
// (see WithBoundCache). The zero BoundCacheConfig selects the default
// capacity and minimum memoized span.
func NewBoundCache(cfg BoundCacheConfig) *BoundCache { return boundcache.New(cfg) }

// NewAssignment returns the everything-on-host assignment for t.
func NewAssignment(t *Tree) *Assignment { return model.NewAssignment(t) }

// OnSatellite returns the location of the given satellite.
func OnSatellite(id SatelliteID) Location { return model.OnSatellite(id) }

// Host is the host machine's location.
var Host = model.Host

// Solve finds the minimum end-to-end-delay assignment of t with the
// paper's adapted SSB algorithm.
//
// Deprecated: use a Solver, which supports cancellation, options and
// batches: repro.NewSolver().Solve(ctx, t).
func Solve(t *Tree) (*Outcome, error) {
	return core.Solve(core.Request{Tree: t})
}

// SolveWith dispatches a fully parameterised solve (algorithm choice,
// objective weights, seeds, budgets).
//
// Deprecated: use a Solver with options:
// repro.NewSolver().Solve(ctx, t, repro.WithAlgorithm(...), ...).
func SolveWith(req Request) (*Outcome, error) { return core.Solve(req) }

// Algorithms lists every registered solver, exact ones first.
func Algorithms() []Algorithm { return core.Algorithms() }

// Capability returns the registered capability metadata of an algorithm.
func Capability(a Algorithm) (Capabilities, bool) { return core.Capability(a) }

// Evaluate computes the delay breakdown of an assignment.
func Evaluate(t *Tree, a *Assignment) (*Breakdown, error) { return eval.Evaluate(t, a) }

// Simulate replays an assignment on the discrete-event testbed.
func Simulate(t *Tree, a *Assignment, cfg SimConfig) (*SimResult, error) {
	return sim.Run(t, a, cfg)
}
