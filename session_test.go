package repro

import (
	"context"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/workload"
)

func fp(v float64) *float64 { return &v }

func sessionTree(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder()
	r := b.Satellite("R")
	bl := b.Satellite("B")
	root := b.Root("fuse", 4, 0)
	left := b.Child(root, "left", 2, 3, 1)
	right := b.Child(root, "right", 3, 2, 1.5)
	b.Sensor(left, "probe-l", r, 0.4)
	b.Sensor(right, "probe-r", bl, 0.4)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestSessionMutateResolve(t *testing.T) {
	svc := NewService(nil, 64)
	sess, err := svc.OpenSession(sessionTree(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	out0, status, err := sess.Resolve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheMiss {
		t.Fatalf("first resolve: status %v, want miss", status)
	}
	if err := sess.Mutate(WeightUpdate{Node: "left", HostTime: fp(9)}); err != nil {
		t.Fatal(err)
	}
	if sess.Revision() != 1 {
		t.Fatalf("revision %d, want 1", sess.Revision())
	}
	out1, _, err := sess.Resolve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Cold reference on the mutated tree.
	cold, err := NewSolver().Solve(ctx, sess.Tree())
	if err != nil {
		t.Fatal(err)
	}
	if out1.Delay != cold.Delay {
		t.Fatalf("incremental delay %v != cold delay %v", out1.Delay, cold.Delay)
	}
	if out0.Delay == out1.Delay && out0.Assignment.Key() == out1.Assignment.Key() {
		// Raising left's host time must change something about the solve.
		t.Log("note: mutation did not move the optimum (fine, but unexpected for this instance)")
	}

	// Reverting the mutation returns to revision 0's fingerprint, so the
	// shared cache answers without solving.
	if err := sess.Mutate(WeightUpdate{Node: "left", HostTime: fp(2)}); err != nil {
		t.Fatal(err)
	}
	out2, status, err := sess.Resolve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheHit {
		t.Fatalf("resolve after revert: status %v, want hit", status)
	}
	if out2.Delay != out0.Delay {
		t.Fatalf("reverted delay %v != original %v", out2.Delay, out0.Delay)
	}
}

func TestSessionMutateAtomic(t *testing.T) {
	svc := NewService(nil, 8)
	sess, err := svc.OpenSession(sessionTree(t))
	if err != nil {
		t.Fatal(err)
	}
	fpBefore := sess.Fingerprint()
	err = sess.Mutate(
		WeightUpdate{Node: "left", HostTime: fp(7)},
		WeightUpdate{Node: "no-such-node", HostTime: fp(1)},
	)
	if err == nil {
		t.Fatal("expected error")
	}
	if sess.Revision() != 0 || sess.Fingerprint() != fpBefore {
		t.Fatal("failed Mutate advanced the session")
	}
}

func TestOpenSessionNilTree(t *testing.T) {
	if _, err := NewService(nil, 0).OpenSession(nil); err == nil {
		t.Fatal("expected error")
	}
}

// randomSessionMutation yields a mutation applicable to most revisions;
// streams tolerate rejected rolls.
func randomSessionMutation(rng *rand.Rand, tree *Tree, serial int) Mutation {
	var crus, nonRoot, sensors []string
	for _, id := range tree.Preorder() {
		n := tree.Node(id)
		switch {
		case n.IsLeaf():
			sensors = append(sensors, n.Name)
		default:
			crus = append(crus, n.Name)
			if n.Parent >= 0 {
				nonRoot = append(nonRoot, n.Name)
			}
		}
	}
	switch rng.Intn(8) {
	case 0, 1, 2, 3: // dominant mode: weight drift
		name := crus[rng.Intn(len(crus))]
		return WeightUpdate{Node: name, HostTime: fp(rng.Float64() * 8), SatTime: fp(rng.Float64() * 8)}
	case 4:
		name := sensors[rng.Intn(len(sensors))]
		return WeightUpdate{Node: name, UpComm: fp(rng.Float64() * 3)}
	case 5:
		tag := strconv.Itoa(serial)
		return AttachSubtree{
			Parent: crus[rng.Intn(len(crus))],
			Subtree: &Spec{
				CRUs: []SpecCRU{{Name: "dyn-cru-" + tag, HostTime: rng.Float64() * 4, SatTime: rng.Float64() * 4, Comm: rng.Float64()}},
				Sensors: []SpecSensor{{
					Name: "dyn-probe-" + tag, Parent: "dyn-cru-" + tag,
					Satellite: tree.Satellites()[rng.Intn(len(tree.Satellites()))].Name,
					Comm:      rng.Float64(),
				}},
			},
		}
	case 6:
		if len(nonRoot) == 0 {
			return nil
		}
		return DetachSubtree{Node: nonRoot[rng.Intn(len(nonRoot))]}
	default:
		return SatelliteChange{
			Sensor:    sensors[rng.Intn(len(sensors))],
			Satellite: tree.Satellites()[rng.Intn(len(tree.Satellites()))].Name,
		}
	}
}

// TestSessionEquivalenceProperty is the acceptance property: for random
// mutation sequences, the warm incremental Resolve reports exactly the
// optimum a cold Solve finds on the mutated tree — for the default exact
// adapted SSB and for the warm-consuming exact branch-and-bound alike.
func TestSessionEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	cold := NewSolver()
	for trial := 0; trial < 8; trial++ {
		base := workload.Random(rng, workload.DefaultRandomSpec(14+rng.Intn(10), 3))
		for _, alg := range []Algorithm{AdaptedSSB, BranchBound} {
			svc := NewService(nil, 256)
			sess, err := svc.OpenSession(base, WithAlgorithm(alg))
			if err != nil {
				t.Fatal(err)
			}
			serial := 0
			for step := 0; step < 10; step++ {
				m := randomSessionMutation(rng, sess.Tree(), serial)
				if m == nil {
					continue
				}
				serial++
				if err := sess.Mutate(m); err != nil {
					continue // some rolls are legitimately rejected
				}
				warm, _, err := sess.Resolve(ctx)
				if err != nil {
					t.Fatalf("trial %d %s step %d: resolve: %v", trial, alg, step, err)
				}
				ref, err := cold.Solve(ctx, sess.Tree(), WithAlgorithm(alg))
				if err != nil {
					t.Fatalf("trial %d %s step %d: cold solve: %v", trial, alg, step, err)
				}
				if math.Abs(warm.Delay-ref.Delay) > 1e-9 {
					t.Fatalf("trial %d %s step %d: incremental delay %v != cold delay %v",
						trial, alg, step, warm.Delay, ref.Delay)
				}
				if err := warm.Assignment.Validate(sess.Tree()); err != nil {
					t.Fatalf("trial %d %s step %d: infeasible outcome: %v", trial, alg, step, err)
				}
			}
		}
	}
}

// TestSessionWarmHeuristicCacheRules pins the cache-correctness rule for
// warm-started non-exact solves: they may be SERVED from the shared
// store (the deterministic cold answer every caller gets) but their own
// start-dependent results never enter it, so a cold request for the same
// key cannot observe a warm local optimum.
func TestSessionWarmHeuristicCacheRules(t *testing.T) {
	svc := NewService(nil, 64)
	sess, err := svc.OpenSession(sessionTree(t), WithAlgorithm(GreedyHost))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := sess.Resolve(ctx); err != nil { // cold: no warm seed yet
		t.Fatal(err)
	}
	if err := sess.Mutate(WeightUpdate{Node: "left", HostTime: fp(5)}); err != nil {
		t.Fatal(err)
	}
	// This resolve is warm (previous outcome exists) and greedy is not
	// exact: a store lookup is allowed, but the miss must be solved
	// outside the store.
	if _, status, err := sess.Resolve(ctx); err != nil {
		t.Fatal(err)
	} else if status != CacheMiss {
		t.Fatalf("warm heuristic resolve: status %v, want miss", status)
	}
	// A direct cold solve of the same instance+algorithm is a genuine
	// store miss, proving the warm solve left nothing behind.
	if _, status, err := svc.Solve(ctx, sess.Tree(), WithAlgorithm(GreedyHost)); err != nil {
		t.Fatal(err)
	} else if status != CacheMiss {
		t.Fatalf("cold solve after warm: status %v, want miss", status)
	}
	// Reverting to the opening shape revisits a stored key: the warm
	// resolve is served from the store as a hit.
	if err := sess.Mutate(WeightUpdate{Node: "left", HostTime: fp(2)}); err != nil {
		t.Fatal(err)
	}
	if _, status, err := sess.Resolve(ctx); err != nil {
		t.Fatal(err)
	} else if status != CacheHit {
		t.Fatalf("warm resolve of revisited shape: status %v, want hit", status)
	}
}
