package repro

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// BenchmarkIncrementalResolve measures the dynamic-workload hot path: one
// CRU's host time drifts every iteration (a fresh fingerprint each time,
// so the result cache never answers) and the revision is re-solved with
// branch-and-bound. "warm" goes through a Session — delta fingerprinting
// plus the previous optimum projected in as the incumbent — while "cold"
// solves each mutated revision from scratch. Warm start must win: the
// projected incumbent makes the very first bound nearly tight.
func BenchmarkIncrementalResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	base := workload.Random(rng, workload.DefaultRandomSpec(44, 4))
	target := ""
	for _, id := range base.Preorder() {
		n := base.Node(id)
		if !n.IsLeaf() && n.Parent >= 0 {
			target = n.Name
			break
		}
	}
	drift := func(i int) Mutation {
		v := 1 + float64(i%17)*0.25
		return WeightUpdate{Node: target, HostTime: &v}
	}
	ctx := context.Background()

	b.Run("warm", func(b *testing.B) {
		svc := NewService(nil, 16)
		sess, err := svc.OpenSession(base, WithAlgorithm(BranchBound))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sess.Resolve(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sess.Mutate(drift(i)); err != nil {
				b.Fatal(err)
			}
			if _, _, err := sess.Resolve(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cold", func(b *testing.B) {
		solver := NewSolver(WithAlgorithm(BranchBound))
		tree := base
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next, err := ApplyMutations(tree, drift(i))
			if err != nil {
				b.Fatal(err)
			}
			tree = next
			if _, err := solver.Solve(ctx, tree.Clone()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
