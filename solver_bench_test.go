package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro"
	"repro/internal/workload"
)

// BenchmarkSolverBatch exercises SolveBatch's worker pool on a fixed fleet
// of random instances at parallelism 1, 4 and NumCPU. The sub-benchmark
// names are stable, so benchstat can compare runs across commits — this is
// the anchor for future batching/serving performance work.
func BenchmarkSolverBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	trees := make([]*repro.Tree, 32)
	for i := range trees {
		trees[i] = workload.Random(rng, workload.DefaultRandomSpec(63, 4))
	}
	ctx := context.Background()
	seen := map[int]bool{}
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		if seen[par] {
			continue // NumCPU may collide with 1 or 4; keep names benchstat-stable
		}
		seen[par] = true
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			solver := repro.NewSolver(repro.WithParallelism(par))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := solver.SolveBatch(ctx, trees)
				if err != nil {
					b.Fatal(err)
				}
				for j, r := range results {
					if r.Err != nil {
						b.Fatalf("item %d: %v", j, r.Err)
					}
				}
			}
		})
	}
}
