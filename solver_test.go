// Tests for the Solver service API: registry extension without core edits,
// context cancellation mid-search, batch ordering and error isolation, and
// the Spec round-trip.
package repro_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// denseTree builds a 20-CRU tree (root + width leaf CRUs, one sensor each)
// whose brute-force search space is 2^width — large enough that exhaustive
// enumeration reliably outlives a millisecond deadline.
func denseTree(t *testing.T, width int) *repro.Tree {
	t.Helper()
	b := repro.NewBuilder()
	sats := []repro.SatelliteID{b.Satellite("s0"), b.Satellite("s1"), b.Satellite("s2")}
	root := b.Root("fuse", 2, 0)
	for i := 0; i < width; i++ {
		c := b.Child(root, "cru", 1.5, 3, 0.5)
		b.Sensor(c, "probe", sats[i%len(sats)], 4)
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestSolverDefaultsAndOverrides(t *testing.T) {
	tree := workload.Epilepsy()
	solver := repro.NewSolver(repro.WithSeed(7))

	out, err := solver.Solve(context.Background(), tree)
	if err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != repro.AdaptedSSB || !out.Exact {
		t.Fatalf("default solve = %s exact=%v", out.Algorithm, out.Exact)
	}

	over, err := solver.Solve(context.Background(), tree, repro.WithAlgorithm(repro.ParetoDP))
	if err != nil {
		t.Fatal(err)
	}
	if over.Algorithm != repro.ParetoDP {
		t.Fatalf("override ignored: %s", over.Algorithm)
	}
	if over.Delay != out.Delay {
		t.Fatalf("exact solvers disagree: %v vs %v", over.Delay, out.Delay)
	}
	// Per-call options must not mutate the Solver's defaults.
	again, err := solver.Solve(context.Background(), tree)
	if err != nil {
		t.Fatal(err)
	}
	if again.Algorithm != repro.AdaptedSSB {
		t.Fatalf("per-call option leaked into defaults: %s", again.Algorithm)
	}
}

func TestSolverTimeoutCancelsBruteForceMidSearch(t *testing.T) {
	tree := denseTree(t, 19) // 2^19 assignments: far beyond 1ms of enumeration
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := repro.NewSolver().Solve(ctx, tree, repro.WithAlgorithm(repro.BruteForce))
	if !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, should also match context.DeadlineExceeded", err)
	}
	var ce *repro.CanceledError
	if !errors.As(err, &ce) || ce.Algorithm != repro.BruteForce {
		t.Fatalf("err = %v, want CanceledError naming brute-force", err)
	}
}

func TestWithTimeoutOptionCancels(t *testing.T) {
	tree := denseTree(t, 19)
	solver := repro.NewSolver(repro.WithTimeout(time.Millisecond))
	_, err := solver.Solve(context.Background(), tree, repro.WithAlgorithm(repro.BruteForce))
	if !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestSolverCancellationGraphSolver(t *testing.T) {
	// The graph solvers check the context per elimination round / label
	// batch; an already-expired deadline must stop them too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []repro.Algorithm{repro.AdaptedSSB, repro.LabelSearch, repro.Genetic} {
		_, err := repro.NewSolver().Solve(ctx, workload.Epilepsy(), repro.WithAlgorithm(alg))
		if !errors.Is(err, repro.ErrCanceled) {
			t.Fatalf("%s: err = %v, want ErrCanceled", alg, err)
		}
	}
}

func TestSolverBudgetExceeded(t *testing.T) {
	tree := denseTree(t, 19)
	_, err := repro.NewSolver(repro.WithBudget(64)).Solve(
		context.Background(), tree, repro.WithAlgorithm(repro.BruteForce))
	if !errors.Is(err, repro.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestSolveBatchOrderingAndIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trees := []*repro.Tree{
		workload.PaperTree(),
		nil, // isolated failure: must not disturb its neighbours
		workload.Epilepsy(),
		workload.Random(rng, workload.DefaultRandomSpec(25, 3)),
		workload.SNMP(),
	}
	solver := repro.NewSolver(repro.WithParallelism(3))
	results, err := solver.SolveBatch(context.Background(), trees)
	if err != nil {
		t.Fatalf("batch error: %v", err)
	}
	if len(results) != len(trees) {
		t.Fatalf("got %d results for %d trees", len(results), len(trees))
	}
	for i, r := range results {
		if trees[i] == nil {
			if !errors.Is(r.Err, repro.ErrInvalidTree) {
				t.Fatalf("item %d: err = %v, want ErrInvalidTree", i, r.Err)
			}
			if r.Outcome != nil {
				t.Fatalf("item %d: outcome and error both set", i)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		// Ordering: each slot must hold its own tree's optimum.
		want, err := repro.NewSolver().Solve(context.Background(), trees[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome.Delay != want.Delay {
			t.Fatalf("item %d out of order: delay %v, want %v", i, r.Outcome.Delay, want.Delay)
		}
	}
}

func TestSolveBatchPerItemTimeout(t *testing.T) {
	trees := []*repro.Tree{denseTree(t, 19), denseTree(t, 19)}
	results, err := repro.NewSolver().SolveBatch(context.Background(), trees,
		repro.WithAlgorithm(repro.BruteForce), repro.WithTimeout(time.Millisecond))
	if err != nil {
		t.Fatalf("per-item timeouts must not fail the batch: %v", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, repro.ErrCanceled) {
			t.Fatalf("item %d: err = %v, want ErrCanceled", i, r.Err)
		}
	}
}

func TestSolveBatchCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	trees := []*repro.Tree{workload.PaperTree(), workload.Epilepsy()}
	results, err := repro.NewSolver().SolveBatch(ctx, trees)
	if !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("batch err = %v, want ErrCanceled", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, repro.ErrCanceled) {
			t.Fatalf("item %d: err = %v, want ErrCanceled", i, r.Err)
		}
	}
}

func TestRegisterCustomAlgorithmNoCoreEdits(t *testing.T) {
	// A new algorithm plugs in through the registry alone: no edit to
	// internal/core dispatch code, immediately usable through the Solver.
	const name core.Algorithm = "test-everything-hosted"
	core.Register(name, core.Capabilities{Summary: "test stub"},
		func(ctx context.Context, req core.Request) (core.Finding, error) {
			return core.Finding{Assignment: model.NewAssignment(req.Tree)}, nil
		})
	out, err := repro.NewSolver().Solve(context.Background(), workload.Epilepsy(), repro.WithAlgorithm(name))
	if err != nil {
		t.Fatal(err)
	}
	allHost, err := repro.NewSolver().Solve(context.Background(), workload.Epilepsy(), repro.WithAlgorithm(repro.AllHost))
	if err != nil {
		t.Fatal(err)
	}
	if out.Delay != allHost.Delay {
		t.Fatalf("custom algorithm delay %v, want the all-host %v", out.Delay, allHost.Delay)
	}
	found := false
	for _, a := range repro.Algorithms() {
		if a == name {
			found = true
		}
	}
	if !found {
		t.Fatal("custom algorithm missing from Algorithms()")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tree := range []*repro.Tree{
		workload.PaperTree(),
		workload.Epilepsy(),
		workload.SNMP(),
		workload.Random(rng, workload.DefaultRandomSpec(40, 4)),
	} {
		spec := repro.ToSpec(tree, "round-trip")
		rebuilt, err := repro.FromSpec(spec)
		if err != nil {
			t.Fatalf("FromSpec: %v", err)
		}
		spec2 := repro.ToSpec(rebuilt, "round-trip")
		if !reflect.DeepEqual(spec, spec2) {
			t.Fatalf("Spec → Tree → Spec not stable:\nfirst  %+v\nsecond %+v", spec, spec2)
		}
		// The rebuilt tree must be the same problem: equal optimal delay.
		a, err := repro.NewSolver().Solve(context.Background(), tree)
		if err != nil {
			t.Fatal(err)
		}
		b, err := repro.NewSolver().Solve(context.Background(), rebuilt)
		if err != nil {
			t.Fatal(err)
		}
		if a.Delay != b.Delay {
			t.Fatalf("round-trip changed the optimum: %v vs %v", a.Delay, b.Delay)
		}
	}
}
