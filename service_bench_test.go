package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/workload"
)

// BenchmarkServiceCacheHit measures the serving hot path when the
// instance is already cached: fingerprint + key build + LRU lookup, no
// solver work. Read next to BenchmarkServiceCacheMiss, the ratio is the
// speedup the cache buys on repeated instances.
func BenchmarkServiceCacheHit(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tree := workload.Random(rng, workload.DefaultRandomSpec(63, 4))
	svc := repro.NewService(nil, 1024)
	ctx := context.Background()
	if _, _, err := svc.Solve(ctx, tree); err != nil { // prewarm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, status, err := svc.Solve(ctx, tree)
		if err != nil {
			b.Fatal(err)
		}
		if status != repro.CacheHit {
			b.Fatalf("iteration %d was a %v, want a hit", i, status)
		}
	}
}

// BenchmarkServiceCacheMiss measures the same path when every request
// misses: the store is disabled (capacity 0), so each iteration pays
// fingerprinting, key building, singleflight bookkeeping and the full
// solve. The delta to BenchmarkServiceCacheHit is the hit-path speedup
// tracked in BENCH output.
func BenchmarkServiceCacheMiss(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tree := workload.Random(rng, workload.DefaultRandomSpec(63, 4))
	svc := repro.NewService(nil, 0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, status, err := svc.Solve(ctx, tree)
		if err != nil {
			b.Fatal(err)
		}
		if status != repro.CacheMiss {
			b.Fatalf("iteration %d was a %v, want a miss", i, status)
		}
	}
}

// BenchmarkServiceBatchWarm exercises SolveBatch over a fleet that is
// fully cached, the serving regime where many users re-pose identical
// reasoning configurations.
func BenchmarkServiceBatchWarm(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	trees := make([]*repro.Tree, 32)
	for i := range trees {
		trees[i] = workload.Random(rng, workload.DefaultRandomSpec(63, 4))
	}
	svc := repro.NewService(nil, 1024)
	ctx := context.Background()
	if _, err := svc.SolveBatch(ctx, trees); err != nil { // prewarm
		b.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := svc.SolveBatch(ctx, trees, repro.WithParallelism(par))
				if err != nil {
					b.Fatal(err)
				}
				for j, r := range results {
					if r.Err != nil {
						b.Fatalf("item %d: %v", j, r.Err)
					}
				}
			}
		})
	}
}
