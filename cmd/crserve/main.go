// Command crserve serves the solver over HTTP with the versioned wire API
// of package api: canonical instance identity (fingerprints), a sharded
// LRU result cache with singleflight deduplication, a concurrency
// limiter, per-request timeouts and graceful shutdown on SIGINT/SIGTERM.
//
// Endpoints (see repro/internal/httpserve):
//
//	POST   /v1/solve                solve one instance
//	POST   /v1/batch                solve many instances
//	POST   /v1/simulate             solve + replay on the discrete-event testbed
//	POST   /v1/session              open a dynamic-tree session
//	GET    /v1/session/{id}         session state
//	POST   /v1/session/{id}/mutate  mutate a session's tree (optionally resolve)
//	POST   /v1/session/{id}/resolve warm re-solve of the current revision
//	DELETE /v1/session/{id}         close a session
//	POST   /v1/jobs                 submit an async anytime solve job
//	GET    /v1/jobs/{id}            job snapshot (?wait=ms long-polls for completion)
//	GET    /v1/jobs/{id}/events     Server-Sent Events stream of improving incumbents
//	DELETE /v1/jobs/{id}            cancel a job
//	GET    /v1/algorithms           list the registered solvers
//	GET    /v1/cluster              fleet membership, ring state, routing counters
//	POST   /v1/cluster/members      propose or relay a membership change (join/leave at runtime)
//	POST   /v1/migrate/cache        node-to-node push of warm result-cache entries
//	POST   /v1/migrate/sessions     node-to-node push of session snapshots
//	POST   /v1/migrate/bounds       node-to-node push of proven bound-cache entries
//	GET    /healthz                 liveness probe ("ok", or "draining" while shutting down)
//	GET    /debug/vars              cache/request/session/cluster counters + expvar
//
// Usage:
//
//	crserve -addr :8080 -cache 4096 -parallelism 8 \
//	        -request-timeout 10s -max-inflight 256 \
//	        -max-sessions 1024 -session-ttl 30m
//
// Clustered (every node lists every other node as a peer):
//
//	crserve -addr :8080 -advertise http://10.0.0.1:8080 \
//	        -peers http://10.0.0.2:8080,http://10.0.0.3:8080 \
//	        -virtual-nodes 64 -probe-interval 2s
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux, exposed only behind -pprof
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/elastic"
	"repro/internal/httpserve"
)

// readPeersFile reads a seed list: one peer base URL per line, blank
// lines and #-comments ignored.
func readPeersFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading peers file: %w", err)
	}
	var peers []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
			peers = append(peers, line)
		}
	}
	return peers, nil
}

// heapBallast pins a large dead allocation for the process lifetime so
// the collector's pacing target (live heap × GOGC%) sits far above the
// real working set: under a cache-hit-heavy load whose per-request
// allocations are already near zero, the remaining GC cycles are driven
// by slow background growth, and the ballast stretches the interval
// between them without touching any allocation path. A package-level
// variable (not a local) so no compiler analysis can prove it dead.
var heapBallast []byte

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 4096, "result cache capacity in outcomes (0 disables the store, keeping singleflight)")
	parallelism := flag.Int("parallelism", 0, "batch worker pool size (0 = NumCPU)")
	solveWorkers := flag.Int("solve-workers", 0, "worker count inside one solve for Parallel-capable solvers (0 = GOMAXPROCS)")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "server-side ceiling per request (0 = none)")
	maxInflight := flag.Int("max-inflight", 256, "max concurrently served requests; excess get HTTP 429 (0 = unbounded)")
	maxBatch := flag.Int("max-batch", 1024, "max items per batch request")
	maxSessions := flag.Int("max-sessions", 1024, "max live dynamic-tree sessions; excess opens evict the least recently used")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle expiry for dynamic-tree sessions (negative disables)")
	jobWorkers := flag.Int("job-workers", 0, "async job tier worker pool size (0 = batch parallelism)")
	jobQueue := flag.Int("job-queue", 256, "max queued async jobs; excess submits get HTTP 429")
	jobTTL := flag.Duration("job-ttl", 10*time.Minute, "retention of finished async job results")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	peers := flag.String("peers", "", "comma-separated peer base URLs; enables cluster routing (requires -advertise)")
	peersFile := flag.String("peers-file", "", "file with one peer base URL per line; SIGHUP re-reads it and proposes the new membership to the fleet (requires -advertise)")
	advertise := flag.String("advertise", "", "this node's base URL as peers reach it (e.g. http://10.0.0.1:8080)")
	virtualNodes := flag.Int("virtual-nodes", 64, "consistent-hash ring points per node")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "peer health-probe period")
	drainDelay := flag.Duration("drain-delay", -1, "pause between flipping /healthz to draining and closing the listener, so peers' probes notice (-1 = 2x probe-interval when clustered, 0 when not)")
	gcBallast := flag.Int64("gc-ballast", 0, "heap ballast in MiB pinned for the process lifetime to stretch GC pacing (0 disables)")
	gogc := flag.Int("gogc", 0, "GC target percentage, as runtime/debug.SetGCPercent (0 keeps the GOGC env / default 100)")
	flag.Parse()

	// GC hygiene first, before any serving allocation: the ballast and
	// target percentage shape every collection the process will run. Both
	// are published to expvar so /debug/vars records the configuration
	// next to the memstats they influence.
	if *gogc != 0 {
		debug.SetGCPercent(*gogc)
	}
	if *gcBallast > 0 {
		heapBallast = make([]byte, *gcBallast<<20)
	}
	gcVars := expvar.NewMap("crserve_gc")
	gcVars.Add("ballast_bytes", int64(len(heapBallast)))
	gcVars.Add("gogc_percent", int64(*gogc))

	var cl *cluster.Cluster
	if *peers != "" || *peersFile != "" || *advertise != "" {
		if *advertise == "" {
			fmt.Fprintln(os.Stderr, "crserve: -peers/-peers-file requires -advertise (this node's base URL)")
			os.Exit(2)
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *peersFile != "" {
			fromFile, err := readPeersFile(*peersFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "crserve: %v\n", err)
				os.Exit(2)
			}
			peerList = append(peerList, fromFile...)
		}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:          *advertise,
			Peers:         peerList,
			VirtualNodes:  *virtualNodes,
			ProbeInterval: *probeInterval,
			// Epoch 1 leaves room below every runtime view change (epochs
			// must strictly grow), so a static seed list can still be
			// superseded by an operator update or a SIGHUP reload.
			Epoch: 1,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "crserve: %v\n", err)
			os.Exit(2)
		}
	}

	solver := repro.NewSolver(
		repro.WithParallelism(*parallelism),
		repro.WithSolveParallelism(*solveWorkers),
	)
	service := repro.NewService(solver, *cacheSize)
	handler := httpserve.New(httpserve.Config{
		Service:          service,
		RequestTimeout:   *requestTimeout,
		MaxInflight:      *maxInflight,
		MaxBatchItems:    *maxBatch,
		BatchParallelism: *parallelism,
		MaxSessions:      *maxSessions,
		SessionTTL:       *sessionTTL,
		Cluster:          cl,
		JobWorkers:       *jobWorkers,
		JobQueueDepth:    *jobQueue,
		JobTTL:           *jobTTL,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cl != nil {
		// Elastic membership: peers can join and leave at runtime via
		// POST /v1/cluster/members or probe gossip, with warm state pushed
		// ahead of every routing flip.
		mgr := handler.AttachElastic(nil)
		cl.Start()
		defer cl.Stop()

		// SIGHUP re-reads the seed file and proposes the new view — the
		// operator path for growing or shrinking the fleet without
		// restarting any node.
		if *peersFile != "" {
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			go func() {
				for range hup {
					fromFile, err := readPeersFile(*peersFile)
					if err != nil {
						fmt.Fprintf(os.Stderr, "crserve: SIGHUP reload: %v\n", err)
						continue
					}
					members := elastic.NormalizeMembers(append([]string{*advertise}, fromFile...))
					epoch, err := mgr.Propose(members)
					if err != nil {
						fmt.Fprintf(os.Stderr, "crserve: SIGHUP membership proposal: %v\n", err)
						continue
					}
					fmt.Fprintf(os.Stderr, "crserve: SIGHUP applied membership epoch %d (%d members)\n",
						epoch, len(members))
				}
			}()
		}
	}

	errc := make(chan error, 1)
	go func() {
		if cl != nil {
			fmt.Fprintf(os.Stderr, "crserve: listening on %s as %s (cache=%d, max-inflight=%d, fleet=%d)\n",
				*addr, cl.Self(), *cacheSize, *maxInflight, cl.Size())
		} else {
			fmt.Fprintf(os.Stderr, "crserve: listening on %s (cache=%d, max-inflight=%d)\n",
				*addr, *cacheSize, *maxInflight)
		}
		errc <- srv.ListenAndServe()
	}()

	// The profiling listener is guarded by -pprof and bound separately
	// from the API server, so CPU/heap profiles of the flat-plan hot
	// paths are reachable in production without exposing them on the
	// serving address. It serves the DefaultServeMux: /debug/pprof/*.
	if *pprofAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "crserve: pprof on http://%s/debug/pprof\n", *pprofAddr)
			errc <- http.ListenAndServe(*pprofAddr, nil)
		}()
	}

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "crserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain, in cluster-safe order: first flip /healthz (and the
	// advertised membership state) to draining so peers stop routing new
	// work here, give their probes one beat to notice, and only then close
	// the listener and finish in-flight requests within the grace window.
	// Closing first would leave a probe interval during which peers keep
	// forwarding solves into a dead socket.
	stop()
	handler.Drain()
	if *drainDelay < 0 {
		if cl != nil {
			*drainDelay = 2 * *probeInterval
		} else {
			*drainDelay = 0
		}
	}
	if *drainDelay > 0 {
		fmt.Fprintf(os.Stderr, "crserve: draining for %v before closing the listener\n", *drainDelay)
		time.Sleep(*drainDelay)
	}
	fmt.Fprintln(os.Stderr, "crserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "crserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	// The listener is closed: cancel running jobs and stop the workers.
	handler.Close()
	st := service.Stats()
	fmt.Fprintf(os.Stderr, "crserve: bye (cache: %d hits, %d misses, %d shared, %d stored)\n",
		st.Hits, st.Misses, st.Shared, st.Size)
}
