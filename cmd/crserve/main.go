// Command crserve serves the solver over HTTP with the versioned wire API
// of package api: canonical instance identity (fingerprints), a sharded
// LRU result cache with singleflight deduplication, a concurrency
// limiter, per-request timeouts and graceful shutdown on SIGINT/SIGTERM.
//
// Endpoints (see repro/internal/httpserve):
//
//	POST   /v1/solve                solve one instance
//	POST   /v1/batch                solve many instances
//	POST   /v1/simulate             solve + replay on the discrete-event testbed
//	POST   /v1/session              open a dynamic-tree session
//	GET    /v1/session/{id}         session state
//	POST   /v1/session/{id}/mutate  mutate a session's tree (optionally resolve)
//	POST   /v1/session/{id}/resolve warm re-solve of the current revision
//	DELETE /v1/session/{id}         close a session
//	GET    /v1/algorithms           list the registered solvers
//	GET    /healthz                 liveness probe
//	GET    /debug/vars              cache/request/session counters + expvar
//
// Usage:
//
//	crserve -addr :8080 -cache 4096 -parallelism 8 \
//	        -request-timeout 10s -max-inflight 256 \
//	        -max-sessions 1024 -session-ttl 30m
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux, exposed only behind -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/httpserve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 4096, "result cache capacity in outcomes (0 disables the store, keeping singleflight)")
	parallelism := flag.Int("parallelism", 0, "batch worker pool size (0 = NumCPU)")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "server-side ceiling per request (0 = none)")
	maxInflight := flag.Int("max-inflight", 256, "max concurrently served requests; excess get HTTP 429 (0 = unbounded)")
	maxBatch := flag.Int("max-batch", 1024, "max items per batch request")
	maxSessions := flag.Int("max-sessions", 1024, "max live dynamic-tree sessions; excess opens evict the least recently used")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle expiry for dynamic-tree sessions (negative disables)")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	flag.Parse()

	solver := repro.NewSolver(repro.WithParallelism(*parallelism))
	service := repro.NewService(solver, *cacheSize)
	handler := httpserve.New(httpserve.Config{
		Service:          service,
		RequestTimeout:   *requestTimeout,
		MaxInflight:      *maxInflight,
		MaxBatchItems:    *maxBatch,
		BatchParallelism: *parallelism,
		MaxSessions:      *maxSessions,
		SessionTTL:       *sessionTTL,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "crserve: listening on %s (cache=%d, max-inflight=%d)\n",
			*addr, *cacheSize, *maxInflight)
		errc <- srv.ListenAndServe()
	}()

	// The profiling listener is guarded by -pprof and bound separately
	// from the API server, so CPU/heap profiles of the flat-plan hot
	// paths are reachable in production without exposing them on the
	// serving address. It serves the DefaultServeMux: /debug/pprof/*.
	if *pprofAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "crserve: pprof on http://%s/debug/pprof\n", *pprofAddr)
			errc <- http.ListenAndServe(*pprofAddr, nil)
		}()
	}

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "crserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish in-flight requests within
	// the grace window, then report the final cache effectiveness.
	stop()
	fmt.Fprintln(os.Stderr, "crserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "crserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	st := service.Stats()
	fmt.Fprintf(os.Stderr, "crserve: bye (cache: %d hits, %d misses, %d shared, %d stored)\n",
		st.Hits, st.Misses, st.Shared, st.Size)
}
