package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/api"
	"repro/internal/httpserve"
	"repro/internal/workload"
)

// newServer assembles the same stack main() serves.
func newServer(t *testing.T) (*httptest.Server, *repro.Service) {
	t.Helper()
	service := repro.NewService(repro.NewSolver(), 1024)
	srv := httptest.NewServer(httpserve.New(httpserve.Config{
		Service:        service,
		RequestTimeout: 15 * time.Second,
		MaxInflight:    64,
	}))
	t.Cleanup(srv.Close)
	return srv, service
}

func paperRequest(t *testing.T) api.SolveRequest {
	t.Helper()
	return api.SolveRequest{Spec: repro.ToSpec(workload.PaperTree(), "paper")}
}

func postJSON(t *testing.T, url string, body any, into any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestServeSolveAndBatch is the acceptance round trip: crserve answers
// /v1/solve and /v1/batch, a repeat of the same instance is a cache hit,
// and N concurrent identical requests run exactly one underlying solve.
func TestServeSolveAndBatch(t *testing.T) {
	srv, service := newServer(t)
	req := paperRequest(t)

	// --- /v1/solve ---
	var first api.SolveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", req, &first); code != http.StatusOK {
		t.Fatalf("solve: status %d", code)
	}
	if first.Cached || first.Delay <= 0 || first.Fingerprint == "" {
		t.Fatalf("first solve %+v", first)
	}

	// Repeat: a cache hit with the identical answer.
	var again api.SolveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", req, &again); code != http.StatusOK {
		t.Fatalf("repeat solve: status %d", code)
	}
	if !again.Cached {
		t.Fatal("repeat request was not a cache hit")
	}
	if again.Delay != first.Delay || again.Fingerprint != first.Fingerprint {
		t.Fatalf("cached answer diverged: %+v vs %+v", again, first)
	}

	// --- concurrent identical requests: one underlying solve ---
	fresh := api.SolveRequest{Spec: repro.ToSpec(workload.PaperTree().ScaleProfiles(2, 2, 2), "scaled")}
	before := service.Stats()
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out api.SolveResponse
			if code := postJSON(t, srv.URL+"/v1/solve", fresh, &out); code != http.StatusOK {
				t.Errorf("concurrent solve: status %d", code)
			}
		}()
	}
	wg.Wait()
	after := service.Stats()
	if misses := after.Misses - before.Misses; misses != 1 {
		t.Fatalf("%d concurrent identical requests ran %d solves, want 1", n, misses)
	}
	if served := (after.Hits - before.Hits) + (after.Shared - before.Shared); served != n-1 {
		t.Fatalf("hits+shared advanced by %d, want %d", served, n-1)
	}

	// --- /v1/batch ---
	batch := api.BatchRequest{Items: []api.SolveRequest{req, fresh, req}}
	var br api.BatchResponse
	if code := postJSON(t, srv.URL+"/v1/batch", batch, &br); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(br.Items) != 3 {
		t.Fatalf("batch returned %d items", len(br.Items))
	}
	for i, item := range br.Items {
		if item.Error != nil {
			t.Fatalf("batch item %d: %+v", i, item.Error)
		}
		if !item.Response.Cached {
			t.Errorf("batch item %d missed a warm cache", i)
		}
	}
	if br.Items[0].Response.Delay != first.Delay {
		t.Fatalf("batch answer %v != solve answer %v", br.Items[0].Response.Delay, first.Delay)
	}
}
