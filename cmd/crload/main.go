// Command crload drives a declarative workload against a crserve fleet
// and records the run in the shared perf-series schema. It either
// targets an external fleet (-targets) or self-hosts an in-process one
// (-fleet N), which makes single-binary perf smoke runs possible in CI.
//
// Usage:
//
//	crload -fleet 2                             # default workload, self-hosted
//	crload -spec docs/bench/ci-smoke.json -fleet 2 -out run.json
//	crload -targets http://a:8080,http://b:8080 -rps 500 -duration 30s
//	crload -fleet 2 -out run.json -series docs/bench/data.js   # append to the trend series
//	crload -fleet 2 -max-p95 250ms -min-rps-fraction 0.9       # CI gates (exit 1 on breach)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/bench/series"
	"repro/internal/load"
)

func main() {
	specPath := flag.String("spec", "", "JSON workload spec file (default: built-in default workload)")
	targets := flag.String("targets", "", "comma-separated fleet base URLs (e.g. http://a:8080,http://b:8080)")
	fleetN := flag.Int("fleet", 0, "self-host an in-process fleet of N nodes instead of -targets")

	name := flag.String("name", "", "override the workload name recorded in results")
	rps := flag.Float64("rps", 0, "override target requests/second")
	duration := flag.Duration("duration", 0, "override measured-phase length")
	warmup := flag.Duration("warmup", -1, "override warmup length (-1 = keep spec value)")
	seed := flag.Int64("seed", 0, "override the deterministic seed")
	workers := flag.Int("workers", 0, "override the worker-pool size")

	out := flag.String("out", "", "write the run record (cr-perf-run/v1 JSON) to this file")
	seriesPath := flag.String("series", "", "append the run to this data.js trend series (window.BENCHMARK_DATA)")
	commit := flag.String("commit", "", "commit hash recorded in the run (default: git rev-parse HEAD)")
	quiet := flag.Bool("q", false, "suppress per-interval progress lines")

	maxP95 := flag.Duration("max-p95", 0, "fail if any class's client p95 exceeds this (0 = no gate)")
	minRPSFrac := flag.Float64("min-rps-fraction", 0, "fail if achieved RPS < fraction*target (0 = no gate)")
	maxErrFrac := flag.Float64("max-error-fraction", 0, "fail if (errors+timeouts)/sent exceeds this (0 = no gate)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "crload: "+format+"\n", args...)
		os.Exit(2)
	}

	spec := load.DefaultSpec()
	if *specPath != "" {
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			fail("%v", err)
		}
		spec, err = load.ParseSpec(raw)
		if err != nil {
			fail("%s: %v", *specPath, err)
		}
	}
	if *name != "" {
		spec.Name = *name
	}
	if *rps > 0 {
		spec.RPS = *rps
	}
	if *duration > 0 {
		spec.Duration = load.Duration(*duration)
	}
	if *warmup >= 0 {
		spec.Warmup = load.Duration(*warmup)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *workers > 0 {
		spec.Workers = *workers
	}
	if err := spec.Validate(); err != nil {
		fail("%v", err)
	}

	var urls []string
	var onEvent func(action string) error
	switch {
	case *fleetN > 0 && *targets != "":
		fail("-fleet and -targets are mutually exclusive")
	case *fleetN > 0:
		fleet, err := load.SelfHostFleet(*fleetN)
		if err != nil {
			fail("starting fleet: %v", err)
		}
		defer fleet.Close()
		urls = fleet.URLs()
		onEvent = load.FleetEvent(fleet)
		fmt.Fprintf(os.Stderr, "crload: self-hosted %d-node fleet: %s\n", *fleetN, strings.Join(urls, ", "))
	case *targets != "":
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				urls = append(urls, strings.TrimRight(t, "/"))
			}
		}
	default:
		fail("need -targets or -fleet (see -h)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := load.RunOptions{Targets: urls, OnEvent: onEvent}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "crload: "+format+"\n", args...)
		}
	}

	fmt.Fprintf(os.Stderr, "crload: workload %q: %.0f req/s for %v (+%v warmup) over %d targets\n",
		spec.Name, spec.RPS, time.Duration(spec.Duration), time.Duration(spec.Warmup), len(urls))
	res, err := load.Run(ctx, spec, opts)
	if err != nil {
		fail("%v", err)
	}
	fmt.Print(res.Summary())

	// Persist before gating: a gate breach should still leave the record.
	if *out != "" || *seriesPath != "" {
		if *commit == "" {
			*commit = series.GitCommit(".")
		}
		run, err := series.New("crload", *commit, res.Benches(), res)
		if err != nil {
			fail("building run record: %v", err)
		}
		if *out != "" {
			if err := run.Write(*out); err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "crload: wrote %s\n", *out)
		}
		if *seriesPath != "" {
			if err := series.Append(*seriesPath, run); err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "crload: appended to %s\n", *seriesPath)
		}
	}

	if err := res.Check(load.Thresholds{
		MaxP95:           *maxP95,
		MinRPSFraction:   *minRPSFrac,
		MaxErrorFraction: *maxErrFrac,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "crload: %v\n", err)
		os.Exit(1)
	}
}
