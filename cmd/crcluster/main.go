// Command crcluster spins up an in-process fleet of crserve nodes —
// each with its own solver, caches and consistent-hash ring view, wired
// over real loopback HTTP — and drives a mixed solve workload through
// it. It is the zero-setup way to watch the cluster tier work: routing
// keeps repeat solves of one instance on one owner node (watch the
// per-node hit rates), scatter-gather splits batches by owner, and the
// summary prints the fleet's routing counters.
//
// The fleet is elastic: -join-after spawns an extra node mid-run (warm
// state for the ranges it takes over is pushed to it before routing
// flips), and -autoscale lets a load watcher sampling /debug/vars grow
// and shrink the fleet under sustained pressure.
//
// Usage:
//
//	crcluster                     # 3 nodes, 600 requests, 16 clients
//	crcluster -nodes 5 -requests 5000 -clients 64
//	crcluster -trees 100 -repeat 10 -seed 7
//	crcluster -requests 5000 -join-after 2s      # watch a warm join mid-load
//	crcluster -requests 20000 -autoscale -max-nodes 6
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/api"
	"repro/internal/cluster"
	"repro/internal/elastic"
	"repro/internal/httpserve"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 3, "fleet size")
	requests := flag.Int("requests", 600, "total solve requests")
	clients := flag.Int("clients", 16, "concurrent clients")
	trees := flag.Int("trees", 40, "distinct random instances in the workload (the paper tree is always added)")
	treeSize := flag.Int("tree-size", 24, "nodes per random instance")
	seed := flag.Int64("seed", 1, "workload seed")
	virtualNodes := flag.Int("virtual-nodes", 64, "ring points per node")
	batch := flag.Int("batch", 0, "send every <n> requests as one scatter-gathered batch (0 = single solves)")
	joinAfter := flag.Duration("join-after", 0, "spawn one extra node this long into the run (0 disables)")
	autoscale := flag.Bool("autoscale", false, "sample fleet pressure and spawn/drain nodes under sustained load")
	maxNodes := flag.Int("max-nodes", 8, "autoscaler ceiling on the fleet size")
	highInflight := flag.Int64("high-inflight", 0, "autoscaler fleet-wide in-flight threshold (0 = half the client count)")
	flag.Parse()

	opts := runOptions{
		joinAfter: *joinAfter, autoscale: *autoscale,
		maxNodes: *maxNodes, highInflight: *highInflight,
	}
	if err := run(*nodes, *requests, *clients, *trees, *treeSize, *seed, *virtualNodes, *batch, opts); err != nil {
		fmt.Fprintf(os.Stderr, "crcluster: %v\n", err)
		os.Exit(1)
	}
}

type runOptions struct {
	joinAfter    time.Duration
	autoscale    bool
	maxNodes     int
	highInflight int64
}

func run(nodes, requests, clients, trees, treeSize int, seed int64, virtualNodes, batch int, opts runOptions) error {
	fleet, err := httpserve.StartFleet(nodes, httpserve.FleetOptions{
		Cluster:     cluster.Config{VirtualNodes: virtualNodes, ProbeInterval: 500 * time.Millisecond},
		StartProbes: true,
	})
	if err != nil {
		return err
	}
	defer fleet.Close()
	fmt.Printf("fleet of %d nodes:\n", nodes)
	for i, u := range fleet.URLs() {
		fmt.Printf("  node %d: %s\n", i, u)
	}

	if opts.joinAfter > 0 {
		timer := time.AfterFunc(opts.joinAfter, func() {
			if n, err := fleet.Spawn(); err != nil {
				fmt.Fprintf(os.Stderr, "crcluster: mid-run join: %v\n", err)
			} else {
				fmt.Printf("  joined %s at %v into the run\n", n.URL, opts.joinAfter)
			}
		})
		defer timer.Stop()
	}
	if opts.autoscale {
		hi := opts.highInflight
		if hi <= 0 {
			hi = int64(clients)/2 + 1
		}
		watcher, err := elastic.NewWatcher(elastic.WatcherConfig{
			Sample:       elastic.VarsSampler(nil, fleet.URLs),
			Interval:     250 * time.Millisecond,
			HighInflight: hi,
			SustainUp:    4,
			SustainDown:  20,
			MinNodes:     nodes,
			MaxNodes:     opts.maxNodes,
			Nodes:        fleet.Alive,
			Spawn:        func() error { _, err := fleet.Spawn(); return err },
			Drain:        fleet.DrainNewest,
			Logf: func(format string, args ...any) {
				fmt.Printf("  "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		watcher.Start()
		defer watcher.Stop()
	}

	// Workload: the paper tree plus random instances, as wire specs.
	rng := rand.New(rand.NewSource(seed))
	specs := []*repro.Spec{repro.ToSpec(workload.PaperTree(), "paper")}
	for i := 0; i < trees; i++ {
		t := workload.Random(rng, workload.DefaultRandomSpec(treeSize, 3))
		specs = append(specs, repro.ToSpec(t, fmt.Sprintf("rand-%d", i)))
	}

	var (
		sent, failed atomic.Int64
		mu           sync.Mutex
		latencies    []time.Duration
	)
	urls := fleet.URLs()
	client := &http.Client{}
	work := make(chan int, requests)
	for i := 0; i < requests; i++ {
		work <- i
	}
	close(work)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range work {
				var body any
				path := "/v1/solve"
				if batch > 1 {
					items := make([]api.SolveRequest, batch)
					for k := range items {
						items[k] = api.SolveRequest{Spec: specs[(i+k)%len(specs)]}
					}
					body = &api.BatchRequest{Items: items}
					path = "/v1/batch"
				} else {
					body = &api.SolveRequest{Spec: specs[i%len(specs)]}
				}
				data, err := json.Marshal(body)
				if err != nil {
					failed.Add(1)
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(urls[i%len(urls)]+path, "application/json", bytes.NewReader(data))
				if err != nil {
					failed.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
					continue
				}
				d := time.Since(t0)
				sent.Add(1)
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("\n%d ok, %d failed in %v — %.0f req/s, p50 %v, p95 %v, p99 %v\n",
		sent.Load(), failed.Load(), elapsed.Round(time.Millisecond),
		float64(sent.Load())/elapsed.Seconds(),
		pct(0.50).Round(10*time.Microsecond), pct(0.95).Round(10*time.Microsecond), pct(0.99).Round(10*time.Microsecond))

	fmt.Println("\nper-node cache + routing:")
	for i, n := range fleet.Nodes {
		st := n.Service.Stats()
		cs := n.Cluster.Stats()
		total := st.Hits + st.Misses + st.Shared
		rate := 0.0
		if total > 0 {
			rate = float64(st.Hits) / float64(total)
		}
		fmt.Printf("  node %d: %5d hits %5d misses %4d shared (%.0f%% hit) | %5d forwarded %3d hedged %3d local-fallback %3d scatter\n",
			i, st.Hits, st.Misses, st.Shared, 100*rate,
			cs.Forwards, cs.Hedges, cs.LocalFallbacks, cs.ScatterBatches)
	}

	// Affinity check: every distinct fingerprint should have solved (it
	// missed) on exactly one node — its ring owner — no matter which node
	// the client hit.
	var misses int64
	for _, n := range fleet.Nodes {
		misses += n.Service.Stats().Misses
	}
	distinct := int64(len(specs))
	fmt.Printf("\n%d distinct instances, %d cold solves across the fleet (perfect affinity = equal)\n", distinct, misses)

	if len(fleet.Nodes) > nodes || opts.autoscale {
		fmt.Printf("\nelastic: fleet grew %d -> %d nodes (%d alive), epoch %d\n",
			nodes, len(fleet.Nodes), fleet.Alive(), fleet.Nodes[0].Cluster.Epoch())
		for i, n := range fleet.Nodes {
			ec := n.Elastic.Counters()
			if ec.Migrations == 0 && ec.EntriesAdopted == 0 {
				continue
			}
			fmt.Printf("  node %d: %d migrations, %d entries pushed, %d adopted\n",
				i, ec.Migrations, ec.EntriesPushed, ec.EntriesAdopted)
		}
	}
	return nil
}
