// Command crbench regenerates the paper's figures and the extension
// studies: every experiment registered in internal/bench is run and its
// table printed (plain text by default, markdown with -markdown, which is
// how EXPERIMENTS.md is produced).
//
// Usage:
//
//	crbench            # run all experiments
//	crbench -id E1     # one experiment
//	crbench -markdown > experiments.md
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/bench"
)

func main() {
	id := flag.String("id", "", "run a single experiment (E1..E13)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	timeout := flag.Duration("timeout", 0, "overall deadline; pending experiments are skipped once it expires (0 = none)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	experiments := bench.All()
	if *id != "" {
		e, ok := bench.Find(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "crbench: unknown experiment %q\n", *id)
			os.Exit(2)
		}
		experiments = []bench.Experiment{e}
	}

	failed := 0
	for _, e := range experiments {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "crbench: stopping before %s: %v\n", e.ID, err)
			failed++
			break
		}
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "crbench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		if *markdown {
			fmt.Print(tbl.Markdown())
		} else {
			fmt.Print(tbl.Render())
			fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
