// Command crbench regenerates the paper's figures and the extension
// studies: every experiment registered in internal/bench is run and its
// table printed (plain text by default, markdown with -markdown, which is
// how EXPERIMENTS.md is produced).
//
// Usage:
//
//	crbench            # run all experiments
//	crbench -id E1     # one experiment
//	crbench -markdown > experiments.md
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	id := flag.String("id", "", "run a single experiment (E1..E13)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	flag.Parse()

	experiments := bench.All()
	if *id != "" {
		e, ok := bench.Find(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "crbench: unknown experiment %q\n", *id)
			os.Exit(2)
		}
		experiments = []bench.Experiment{e}
	}

	failed := 0
	for _, e := range experiments {
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "crbench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		if *markdown {
			fmt.Print(tbl.Markdown())
		} else {
			fmt.Print(tbl.Render())
			fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
