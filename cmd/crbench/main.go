// Command crbench regenerates the paper's figures and the extension
// studies: every experiment registered in internal/bench is run and its
// table printed (plain text by default, markdown with -markdown, which is
// how EXPERIMENTS.md is produced, or machine-readable JSON with -json for
// dashboards and regression tracking).
//
// Usage:
//
//	crbench            # run all experiments
//	crbench -id E1     # one experiment
//	crbench -markdown > experiments.md
//	crbench -json > run.json            # cr-perf-run/v1 record (shared with crload)
//	crbench -json -id P1 -out BENCH_PR6.json
//	crbench -json -id P1 -series docs/bench/data.js   # append to the trend series
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/series"
)

// jsonResult is one experiment's record inside the run's Detail payload.
type jsonResult struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Paper     string     `json:"paper,omitempty"`
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS int64      `json:"elapsed_ms"`
}

func main() {
	id := flag.String("id", "", "run a single experiment (E1..E13)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	jsonOut := flag.Bool("json", false, "emit one cr-perf-run/v1 JSON record (tables in .detail, perf scalars in .benches)")
	timeout := flag.Duration("timeout", 0, "overall deadline; pending experiments are skipped once it expires (0 = none)")
	out := flag.String("out", "", "write the rendered output to this file instead of stdout (e.g. BENCH_PR6.json)")
	seriesPath := flag.String("series", "", "with -json: also append the run to this data.js trend series")
	commit := flag.String("commit", "", "commit hash recorded in the -json run (default: git rev-parse HEAD)")
	flag.Parse()
	if *markdown && *jsonOut {
		fmt.Fprintln(os.Stderr, "crbench: -markdown and -json are mutually exclusive")
		os.Exit(2)
	}

	dst := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crbench: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "crbench: closing %s: %v\n", *out, err)
				os.Exit(1)
			}
		}()
		dst = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	experiments := bench.All()
	if *id != "" {
		e, ok := bench.Find(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "crbench: unknown experiment %q\n", *id)
			os.Exit(2)
		}
		experiments = []bench.Experiment{e}
	}

	records := []jsonResult{} // non-nil: the Detail payload is an array, never null
	var benches []series.Bench
	failed := 0
	for _, e := range experiments {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "crbench: stopping before %s: %v\n", e.ID, err)
			failed++
			break
		}
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "crbench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start)
		switch {
		case *jsonOut:
			records = append(records, jsonResult{
				ID: tbl.ID, Title: tbl.Title, Paper: tbl.Paper,
				Columns: tbl.Columns, Rows: tbl.Rows, Notes: tbl.Notes,
				ElapsedMS: elapsed.Milliseconds(),
			})
			benches = append(benches, tbl.Metrics...)
		case *markdown:
			fmt.Fprint(dst, tbl.Markdown())
		default:
			fmt.Fprint(dst, tbl.Render())
			fmt.Fprintf(dst, "(%s in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		}
	}
	if *jsonOut {
		if *commit == "" {
			*commit = series.GitCommit(".")
		}
		run, err := series.New("crbench", *commit, benches, records)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crbench: building run record: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(dst)
		enc.SetIndent("", "  ")
		if err := enc.Encode(run); err != nil {
			fmt.Fprintf(os.Stderr, "crbench: encoding JSON: %v\n", err)
			failed++
		}
		if *seriesPath != "" {
			if err := series.Append(*seriesPath, run); err != nil {
				fmt.Fprintf(os.Stderr, "crbench: %v\n", err)
				failed++
			} else {
				fmt.Fprintf(os.Stderr, "crbench: appended to %s\n", *seriesPath)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
