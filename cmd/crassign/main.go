// Command crassign solves a problem instance: it reads a JSON spec (see
// repro.Spec), runs the selected algorithm through the repro.Solver service
// and prints the optimal assignment with its delay breakdown. Ctrl-C and
// -timeout cancel in-flight solves cleanly.
//
// Usage:
//
//	crassign -spec problem.json [-algorithm adapted-ssb] [-all] [-timeout 30s] [-dot out.dot]
//	crgen -crus 20 -satellites 3 | crassign -spec -
//
// With -all, every registered algorithm is run and tabulated with its
// capability metadata.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"text/tabwriter"

	"repro"
)

func main() {
	specPath := flag.String("spec", "", "problem spec JSON file ('-' for stdin)")
	algorithm := flag.String("algorithm", string(repro.AdaptedSSB), "solver to run")
	all := flag.Bool("all", false, "run every registered algorithm and compare")
	seed := flag.Int64("seed", 1, "seed for randomised heuristics")
	budget := flag.Int("budget", 0, "exploration budget for budgeted exact searches (0 = default)")
	timeout := flag.Duration("timeout", 0, "per-solve deadline (0 = none)")
	dot := flag.String("dot", "", "also write the tree as Graphviz DOT to this file")
	flag.Parse()

	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "crassign: -spec is required (use '-' for stdin)")
		flag.Usage()
		os.Exit(2)
	}
	tree, err := readTree(*specPath)
	if err != nil {
		fatal(err)
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(repro.DOT(tree, "problem")), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("problem: %v\n%s\n", tree, tree.Render())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	solver := repro.NewSolver(
		repro.WithSeed(*seed),
		repro.WithBudget(*budget),
		repro.WithTimeout(*timeout),
	)

	if *all {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "algorithm\texact\tdelay\thost\tmax sat\telapsed\tcapabilities")
		for _, alg := range repro.Algorithms() {
			// An interrupt cancels the whole comparison, not just the
			// in-flight algorithm: stop tabulating and fail the run.
			if ctx.Err() != nil {
				break
			}
			caps, _ := repro.Capability(alg)
			out, err := solver.Solve(ctx, tree, repro.WithAlgorithm(alg))
			if err != nil {
				fmt.Fprintf(w, "%s\t-\tERROR: %v\n", alg, err)
				continue
			}
			fmt.Fprintf(w, "%s\t%v\t%.6g\t%.6g\t%.6g\t%v\t%s\n",
				alg, out.Exact, out.Delay, out.Breakdown.HostTime, out.Breakdown.MaxSatLoad,
				out.Elapsed, capsString(caps))
		}
		w.Flush()
		if err := ctx.Err(); err != nil {
			fatal(fmt.Errorf("comparison interrupted: %w", err))
		}
		return
	}

	out, err := solver.Solve(ctx, tree, repro.WithAlgorithm(repro.Algorithm(*algorithm)))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algorithm: %s (exact=%v, %v)\n\n", out.Algorithm, out.Exact, out.Elapsed)
	fmt.Print(out.Assignment.Describe(tree))
	fmt.Println()
	fmt.Print(out.Breakdown.Report(tree))
}

func capsString(c repro.Capabilities) string {
	s := ""
	if c.Budget {
		s += "budget "
	}
	if c.Seeded {
		s += "seeded "
	}
	if c.Weighted {
		s += "weighted "
	}
	if c.WarmStart {
		s += "warm "
	}
	if s == "" {
		return "-"
	}
	return s[:len(s)-1]
}

func readTree(path string) (*repro.Tree, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return repro.ReadSpec(r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crassign:", err)
	os.Exit(1)
}
