// Command crassign solves a problem instance: it reads a JSON spec (see
// internal/model.Spec), runs the selected algorithm and prints the optimal
// assignment with its delay breakdown.
//
// Usage:
//
//	crassign -spec problem.json [-algorithm adapted-ssb] [-all] [-dot out.dot]
//	crgen -crus 20 -satellites 3 | crassign -spec -
//
// With -all, every registered algorithm is run and tabulated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	specPath := flag.String("spec", "", "problem spec JSON file ('-' for stdin)")
	algorithm := flag.String("algorithm", string(core.AdaptedSSB), "solver to run")
	all := flag.Bool("all", false, "run every registered algorithm and compare")
	seed := flag.Int64("seed", 1, "seed for randomised heuristics")
	dot := flag.String("dot", "", "also write the tree as Graphviz DOT to this file")
	flag.Parse()

	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "crassign: -spec is required (use '-' for stdin)")
		flag.Usage()
		os.Exit(2)
	}
	tree, err := readTree(*specPath)
	if err != nil {
		fatal(err)
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(model.DOT(tree, "problem")), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("problem: %v\n%s\n", tree, tree.Render())

	if *all {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "algorithm\texact\tdelay\thost\tmax sat\telapsed")
		for _, alg := range core.Algorithms() {
			out, err := core.Solve(core.Request{Tree: tree, Algorithm: alg, Seed: *seed})
			if err != nil {
				fmt.Fprintf(w, "%s\t-\tERROR: %v\n", alg, err)
				continue
			}
			fmt.Fprintf(w, "%s\t%v\t%.6g\t%.6g\t%.6g\t%v\n",
				alg, out.Exact, out.Delay, out.Breakdown.HostTime, out.Breakdown.MaxSatLoad, out.Elapsed)
		}
		w.Flush()
		return
	}

	out, err := core.Solve(core.Request{Tree: tree, Algorithm: core.Algorithm(*algorithm), Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algorithm: %s (exact=%v, %v)\n\n", out.Algorithm, out.Exact, out.Elapsed)
	fmt.Print(out.Assignment.Describe(tree))
	fmt.Println()
	fmt.Print(out.Breakdown.Report(tree))
}

func readTree(path string) (*model.Tree, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return model.ReadSpec(r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crassign:", err)
	os.Exit(1)
}
