// Command crgen generates random problem instances or dumps the built-in
// scenarios as JSON specs consumable by crassign and crsim.
//
// Usage:
//
//	crgen -crus 25 -satellites 3 -seed 7 > random.json
//	crgen -scenario epilepsy > epilepsy.json
//	crgen -scenario paper -dot tree.dot > paper.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "", "built-in scenario: paper | paper-symbolic | epilepsy | snmp (overrides random generation)")
	crus := flag.Int("crus", 20, "number of processing CRUs")
	sats := flag.Int("satellites", 3, "number of satellites")
	arity := flag.Int("arity", 3, "maximum children per CRU")
	seed := flag.Int64("seed", 1, "generator seed")
	scattered := flag.Bool("scattered", false, "scatter sensors across satellites (default: clustered bands)")
	satRatio := flag.Float64("sat-ratio", 3, "satellite/host slowdown factor")
	rawFactor := flag.Float64("raw-factor", 4, "raw-frame vs processed-frame size factor")
	dot := flag.String("dot", "", "also write Graphviz DOT to this file")
	flag.Parse()

	var tree *repro.Tree
	name := *scenario
	switch *scenario {
	case "paper":
		tree = workload.PaperTree()
	case "paper-symbolic":
		tree = workload.PaperTreeSymbolic()
	case "epilepsy":
		tree = workload.Epilepsy()
	case "snmp":
		tree = workload.SNMP()
	case "":
		spec := workload.DefaultRandomSpec(*crus, *sats)
		spec.MaxArity = *arity
		spec.Clustered = !*scattered
		spec.SatRatio = *satRatio
		spec.RawFactor = *rawFactor
		tree = workload.Random(rand.New(rand.NewSource(*seed)), spec)
		name = fmt.Sprintf("random-%d", *seed)
	default:
		fmt.Fprintf(os.Stderr, "crgen: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(repro.DOT(tree, name)), 0o644); err != nil {
			fatal(err)
		}
	}
	if err := repro.WriteSpec(os.Stdout, tree, name); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crgen:", err)
	os.Exit(1)
}
