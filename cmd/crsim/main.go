// Command crsim solves a problem instance through the repro.Solver service
// and replays the optimal assignment on the discrete-event simulator, in
// both timing models, with optional multi-frame pipelining. Ctrl-C and
// -timeout cancel an in-flight solve cleanly.
//
// Usage:
//
//	crsim -spec problem.json [-frames 10] [-interval 0.5] [-algorithm adapted-ssb] [-timeout 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"

	"repro"
)

func main() {
	specPath := flag.String("spec", "", "problem spec JSON file ('-' for stdin)")
	algorithm := flag.String("algorithm", string(repro.AdaptedSSB), "solver for the assignment")
	frames := flag.Int("frames", 1, "frames to push through the pipeline")
	interval := flag.Float64("interval", 0, "inter-frame arrival time")
	seed := flag.Int64("seed", 1, "seed for randomised heuristics")
	timeout := flag.Duration("timeout", 0, "solve deadline (0 = none)")
	flag.Parse()

	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "crsim: -spec is required ('-' for stdin)")
		flag.Usage()
		os.Exit(2)
	}
	tree, err := readTree(*specPath)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	solver := repro.NewSolver(repro.WithSeed(*seed), repro.WithTimeout(*timeout))
	out, err := solver.Solve(ctx, tree, repro.WithAlgorithm(repro.Algorithm(*algorithm)))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("assignment by %s (analytic delay %.6g):\n%s\n",
		out.Algorithm, out.Delay, out.Assignment.Describe(tree))

	for _, mode := range []repro.SimConfig{{Mode: repro.PaperBarrier}, {Mode: repro.Overlapped}} {
		cfg := mode
		cfg.Frames = *frames
		cfg.Interval = *interval
		res, err := repro.Simulate(tree, out.Assignment, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("[%s] makespan=%.6g throughput=%.4g fps tasks=%d\n",
			cfg.Mode, res.Makespan, res.Throughput, res.Tasks)
		fmt.Printf("  host busy %.6g", res.BusyHost)
		sats := make([]repro.SatelliteID, 0, len(res.BusySat))
		for s := range res.BusySat {
			sats = append(sats, s)
		}
		sort.Slice(sats, func(i, j int) bool { return sats[i] < sats[j] })
		for _, s := range sats {
			fmt.Printf("  %s busy %.6g", tree.SatelliteName(s), res.BusySat[s])
		}
		fmt.Println()
		for i, f := range res.Frames {
			fmt.Printf("  frame %d: release %.4g done %.6g latency %.6g\n",
				i, f.Release, f.Done, f.Latency())
		}
	}
}

func readTree(path string) (*repro.Tree, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return repro.ReadSpec(r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crsim:", err)
	os.Exit(1)
}
