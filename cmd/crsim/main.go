// Command crsim solves a problem instance and replays the optimal
// assignment on the discrete-event simulator, in both timing models, with
// optional multi-frame pipelining.
//
// Usage:
//
//	crsim -spec problem.json [-frames 10] [-interval 0.5] [-algorithm adapted-ssb]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	specPath := flag.String("spec", "", "problem spec JSON file ('-' for stdin)")
	algorithm := flag.String("algorithm", string(core.AdaptedSSB), "solver for the assignment")
	frames := flag.Int("frames", 1, "frames to push through the pipeline")
	interval := flag.Float64("interval", 0, "inter-frame arrival time")
	seed := flag.Int64("seed", 1, "seed for randomised heuristics")
	flag.Parse()

	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "crsim: -spec is required ('-' for stdin)")
		flag.Usage()
		os.Exit(2)
	}
	tree, err := readTree(*specPath)
	if err != nil {
		fatal(err)
	}
	out, err := core.Solve(core.Request{Tree: tree, Algorithm: core.Algorithm(*algorithm), Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("assignment by %s (analytic delay %.6g):\n%s\n",
		out.Algorithm, out.Delay, out.Assignment.Describe(tree))

	for _, mode := range []sim.Mode{sim.PaperBarrier, sim.Overlapped} {
		res, err := sim.Run(tree, out.Assignment, sim.Config{
			Mode: mode, Frames: *frames, Interval: *interval,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("[%s] makespan=%.6g throughput=%.4g fps tasks=%d\n",
			mode, res.Makespan, res.Throughput, res.Tasks)
		fmt.Printf("  host busy %.6g", res.BusyHost)
		sats := make([]model.SatelliteID, 0, len(res.BusySat))
		for s := range res.BusySat {
			sats = append(sats, s)
		}
		sort.Slice(sats, func(i, j int) bool { return sats[i] < sats[j] })
		for _, s := range sats {
			fmt.Printf("  %s busy %.6g", tree.SatelliteName(s), res.BusySat[s])
		}
		fmt.Println()
		for i, f := range res.Frames {
			fmt.Printf("  frame %d: release %.4g done %.6g latency %.6g\n",
				i, f.Release, f.Done, f.Latency())
		}
	}
}

func readTree(path string) (*model.Tree, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return model.ReadSpec(r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crsim:", err)
	os.Exit(1)
}
