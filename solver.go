package repro

import (
	"context"
	"runtime"
	"time"

	"repro/internal/boundcache"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/pool"
)

// Solver is the reusable solve service: a fixed set of default options
// (chosen at construction) applied to every call, overridable per call.
// The zero-cost construction makes it cheap to create one per configuration;
// a single Solver is safe for concurrent use by multiple goroutines.
type Solver struct {
	defaults settings
}

// settings is the resolved option set of one call.
type settings struct {
	algorithm   Algorithm
	weights     Weights
	seed        int64
	budget      int
	timeout     time.Duration
	parallelism int
	solveWork   int
	warm        *Assignment
	onIncumbent func(Incumbent)
	bestEffort  bool
	bounds      *boundcache.Cache
}

// Option configures a Solver (in NewSolver) or a single call (in Solve and
// SolveBatch, where it overrides the Solver's defaults).
type Option func(*settings)

// WithAlgorithm selects the algorithm (default AdaptedSSB, the paper's).
func WithAlgorithm(a Algorithm) Option { return func(s *settings) { s.algorithm = a } }

// WithWeights sets the WS·S + WB·B objective coefficients (default the
// paper's end-to-end delay, S + B). Only the graph-based solvers honour
// weights; see Capability.
func WithWeights(w Weights) Option { return func(s *settings) { s.weights = w } }

// WithSeed seeds the randomised heuristics (Annealing, Genetic).
func WithSeed(seed int64) Option { return func(s *settings) { s.seed = seed } }

// WithBudget caps the exploration of the budgeted exact searches
// (BruteForce, BranchBound, ParetoDP); exceeding it yields an error
// matching ErrBudgetExceeded. Zero keeps each solver's default cap.
func WithBudget(n int) Option { return func(s *settings) { s.budget = n } }

// WithTimeout bounds each solve (each batch item individually): the call's
// context is wrapped with the deadline, and on expiry the solve fails with
// an error matching ErrCanceled. Zero means no per-solve deadline.
func WithTimeout(d time.Duration) Option { return func(s *settings) { s.timeout = d } }

// WithParallelism bounds SolveBatch's worker pool (default runtime.NumCPU).
func WithParallelism(n int) Option { return func(s *settings) { s.parallelism = n } }

// WithSolveParallelism bounds the worker count inside one solve for
// solvers whose Capabilities declare Parallel (ParallelBnB's work-stealing
// search; default GOMAXPROCS). It is orthogonal to WithParallelism, which
// fans out across batch items: one saturates a node with a single large
// instance, the other with many independent ones. The hint is advisory —
// it never changes an exact solver's answer, so it is excluded from the
// Service's cache identity, and solvers without the capability ignore it.
func WithSolveParallelism(n int) Option { return func(s *settings) { s.solveWork = n } }

// WithIncumbents streams improving assignments from anytime solvers
// (BranchBound, Annealing, Genetic — see Capabilities.Anytime): each time
// the search improves its incumbent, fn receives a caller-owned clone with
// the current delay and bound. fn runs synchronously on the solving
// goroutine, so it must return quickly. Non-anytime solvers ignore it.
func WithIncumbents(fn func(Incumbent)) Option { return func(s *settings) { s.onIncumbent = fn } }

// WithBestEffort makes anytime solvers return their best-so-far assignment
// with Outcome.Partial set — instead of an error matching ErrBudgetExceeded
// or ErrCanceled — when the budget or WithTimeout deadline expires. A
// partial outcome from an exact solver is feasible but not proven optimal;
// Outcome.LowerBound carries whatever floor the solver established.
func WithBestEffort() Option { return func(s *settings) { s.bestEffort = true } }

// WithWarmStart offers a prior assignment as the starting point of the
// search — typically a previous revision's solution projected onto a
// mutated tree (Session does this automatically). The hint is advisory:
// solvers whose Capabilities declare WarmStart consume it — exact ones
// only to prune, so their answer is identical with or without it, and
// heuristics as the start of their walk — everyone else ignores it, and
// hints infeasible for the solved tree are dropped. Because it never
// changes an exact answer, the hint is excluded from the Service's cache
// identity.
func WithWarmStart(a *Assignment) Option { return func(s *settings) { s.warm = a } }

// WithBoundCache attaches a bound-memoization cache to the exact searches
// (BranchBound, ParallelBnB — see Capabilities.Bounds): proven per-subtree
// lower bounds, keyed by the subtrees' canonical content hashes, carry
// across solves, so re-solving a mutated instance re-searches only the
// subtrees the edit actually touched and re-solving an identical instance
// is a lookup. The hint is advisory and never changes an exact solver's
// answer — only the nodes it explores — so, like WithWarmStart and
// WithSolveParallelism, it is excluded from the Service's cache identity.
// The same cache may back any number of concurrent solves; Session
// attaches one per session automatically.
func WithBoundCache(bc *BoundCache) Option { return func(s *settings) { s.bounds = bc } }

// NewSolver returns a Solver whose defaults are the given options.
func NewSolver(opts ...Option) *Solver {
	s := &Solver{}
	for _, o := range opts {
		o(&s.defaults)
	}
	return s
}

// settingsFor merges the call options over the Solver's defaults and
// resolves the fallbacks — empty algorithm means AdaptedSSB, non-positive
// parallelism means runtime.NumCPU — so every downstream path (dispatch,
// batch pool sizing, cache keying) sees the same canonical settings.
//
// The no-options path never takes the settings' address: an Option call
// would leak &cfg to an arbitrary closure and force a heap allocation on
// every Solve, which the warm serving path must not pay.
func (s *Solver) settingsFor(opts []Option) settings {
	if len(opts) == 0 {
		return resolveSettings(s.defaults)
	}
	cfg := new(settings)
	*cfg = s.defaults
	for _, o := range opts {
		o(cfg)
	}
	return resolveSettings(*cfg)
}

func resolveSettings(cfg settings) settings {
	if cfg.algorithm == "" {
		cfg.algorithm = AdaptedSSB
	}
	if cfg.parallelism <= 0 {
		cfg.parallelism = runtime.NumCPU()
	}
	return cfg
}

// Solve finds the minimum-delay assignment of t under the Solver's
// defaults overridden by opts. The context cancels the solver's hot loops;
// cancellation and WithTimeout expiry yield an error matching ErrCanceled.
func (s *Solver) Solve(ctx context.Context, t *Tree, opts ...Option) (*Outcome, error) {
	return solveOne(ctx, t, s.settingsFor(opts))
}

func solveOne(ctx context.Context, t *Tree, cfg settings) (*Outcome, error) {
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	req := core.Request{
		Tree:        t,
		Algorithm:   cfg.algorithm,
		Weights:     cfg.weights,
		Seed:        cfg.seed,
		Budget:      cfg.budget,
		Parallelism: cfg.solveWork,
		Warm:        cfg.warm,
		OnIncumbent: cfg.onIncumbent,
		BestEffort:  cfg.bestEffort,
		Bounds:      cfg.bounds,
	}
	if t != nil {
		// Compile (or fetch) the flat plan here so every dispatch — batch
		// items, cache misses, session re-solves — reuses the revision's
		// memoised arrays explicitly rather than via the registry fallback.
		req.Plan = model.Compile(t)
	}
	return core.SolveContext(ctx, req)
}

// BatchResult is one SolveBatch item's result: exactly one of Outcome and
// Err is non-nil.
type BatchResult struct {
	Outcome *Outcome
	Err     error
}

// SolveBatch solves every tree on a bounded worker pool (WithParallelism
// workers, default runtime.NumCPU). The returned slice has one entry per
// input tree, in input order; failures are isolated per item, so one bad
// instance never disturbs its neighbours. WithTimeout bounds each item
// individually, while cancelling ctx stops the whole batch: items not yet
// finished fail with errors matching ErrCanceled, and the batch-level
// error (nil on an undisturbed run) reports the cancellation.
func (s *Solver) SolveBatch(ctx context.Context, trees []*Tree, opts ...Option) ([]BatchResult, error) {
	cfg := s.settingsFor(opts)
	results := make([]BatchResult, len(trees))
	pool.Run(ctx, len(trees), cfg.parallelism, func(i int) {
		out, err := solveOne(ctx, trees[i], cfg)
		results[i] = BatchResult{Outcome: out, Err: err}
	})

	if err := ctx.Err(); err != nil {
		// Items the feeder never dispatched carry no result yet; mark them
		// canceled so every entry is populated. settingsFor already
		// resolved cfg.algorithm, so the error names the real default.
		for i := range results {
			if results[i].Outcome == nil && results[i].Err == nil {
				results[i].Err = &core.CanceledError{Algorithm: cfg.algorithm, Cause: err}
			}
		}
		return results, &core.CanceledError{Algorithm: cfg.algorithm, Cause: err}
	}
	return results, nil
}
