package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/workload"
)

// TestSpecRoundTripPreservesIdentity is the interchange-format property
// test: for random instances across tree sizes and satellite counts,
// ToSpec → JSON → FromSpec yields a tree with the same fingerprint (the
// wire form is a faithful instance identity) and the same exact solve
// outcome (the wire form is a faithful problem statement).
func placementByName(t *repro.Tree, out *repro.Outcome) map[string]string {
	m := make(map[string]string)
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.IsLeaf() {
			continue
		}
		loc := "host"
		if sat, onSat := out.Assignment.At(id).Satellite(); onSat {
			loc = t.SatelliteName(sat)
		}
		m[n.Name] = loc
	}
	return m
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestSpecRoundTripPreservesIdentity(t *testing.T) {
	solver := repro.NewSolver()
	ctx := context.Background()

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		crus := 3 + rng.Intn(40)
		sats := 1 + rng.Intn(5)
		tree := workload.Random(rng, workload.DefaultRandomSpec(crus, sats))
		name := fmt.Sprintf("trial-%d", trial)

		var buf bytes.Buffer
		if err := repro.WriteSpec(&buf, tree, name); err != nil {
			t.Fatalf("%s: WriteSpec: %v", name, err)
		}
		back, err := repro.ReadSpec(&buf)
		if err != nil {
			t.Fatalf("%s (%d CRUs, %d sats): ReadSpec: %v", name, crus, sats, err)
		}

		if fp, fpBack := repro.Fingerprint(tree), repro.Fingerprint(back); fp != fpBack {
			t.Errorf("%s (%d CRUs, %d sats): fingerprint changed across the wire:\n  %s\n  %s",
				name, crus, sats, fp, fpBack)
			continue
		}

		want, err := solver.Solve(ctx, tree)
		if err != nil {
			t.Fatalf("%s: solving original: %v", name, err)
		}
		got, err := solver.Solve(ctx, back)
		if err != nil {
			t.Fatalf("%s: solving round-tripped twin: %v", name, err)
		}
		if want.Delay != got.Delay {
			t.Errorf("%s (%d CRUs, %d sats): delay %v != %v after round trip",
				name, crus, sats, want.Delay, got.Delay)
		}
		// The deterministic solver on an identical instance must place
		// identically. NodeIDs renumber across the wire (FromSpec lays
		// out CRUs before sensors), so compare by node name.
		if w, g := placementByName(tree, want), placementByName(back, got); !mapsEqual(w, g) {
			t.Errorf("%s: assignment diverged after round trip:\n  %v\n  %v", name, w, g)
		}
	}
}
