package repro_test

// Bound-memoization contract (ISSUE 9): attaching a bound cache to the
// exact searches must never change what they return — only how many
// nodes they explore. The property tests below drive random instances
// through random incremental mutation streams and demand that the
// memoized warm re-solve, the cold cache-less search, the work-stealing
// solver at several widths and the brute-force enumeration all agree on
// every revision, while the efficiency tests pin the point of it all:
// warm re-solves explore a fraction of the cold node count, and the
// cache's hot path allocates nothing.

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro"
	"repro/internal/boundcache"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/incremental"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// mutateRandomly applies one random profile-or-structure edit and
// returns the new revision. The edit mix matches the dynamic-workload
// scenarios: mostly weight drift, some uplink drift, an occasional
// sensor re-homing (which shifts satellite ranks, so every subtree hash
// moves — the cache must degrade to misses, never to wrong answers).
func mutateRandomly(t *testing.T, tree *model.Tree, rng *rand.Rand) *model.Tree {
	t.Helper()
	e := tree.Edit()
	var procs, sensors []model.NodeID
	for _, id := range tree.Postorder() {
		if tree.Node(id).Kind == model.Processing {
			procs = append(procs, id)
		} else {
			sensors = append(sensors, id)
		}
	}
	switch r := rng.Intn(10); {
	case r < 6: // weight drift on one CRU
		id := procs[rng.Intn(len(procs))]
		n := tree.Node(id)
		e.SetTimes(id, n.HostTime*(0.5+rng.Float64()), n.SatTime*(0.5+rng.Float64()))
	case r < 9: // uplink drift on one sensor
		id := sensors[rng.Intn(len(sensors))]
		e.SetUpComm(id, tree.Node(id).UpComm*(0.5+rng.Float64()))
	default: // re-home one sensor
		sats := tree.Satellites()
		id := sensors[rng.Intn(len(sensors))]
		e.SetSensorSatellite(id, sats[rng.Intn(len(sats))].ID)
	}
	next, err := e.Build()
	if err != nil {
		t.Fatalf("mutation failed: %v", err)
	}
	return next
}

// TestParityBoundCache is the exactness property test: random instances
// under random incremental mutation streams, solved warm through one
// persistent bound cache, must match the cold cache-less searches and
// the exhaustive enumeration on every revision, at every worker width.
func TestParityBoundCache(t *testing.T) {
	ctx := context.Background()
	widths := []int{1, 2, runtime.GOMAXPROCS(0)}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := workload.DefaultRandomSpec(8+int(seed)*4, 2+int(seed)%4)
		spec.Clustered = seed%2 == 0
		tree := workload.Random(rng, spec)
		bc := boundcache.New(boundcache.Config{})

		for step := 0; step < 6; step++ {
			cold, err := exact.BranchAndBound(tree, 0)
			if err != nil {
				t.Fatalf("seed %d step %d: cold bnb: %v", seed, step, err)
			}
			warm, err := exact.BranchAndBoundOpts(ctx, tree, exact.BnBOptions{Bounds: bc})
			if err != nil {
				t.Fatalf("seed %d step %d: memoized bnb: %v", seed, step, err)
			}
			tol := 1e-9 * (1 + cold.Delay)
			if d := warm.Delay - cold.Delay; d > tol || d < -tol {
				t.Fatalf("seed %d step %d: memoized %v != cold %v", seed, step, warm.Delay, cold.Delay)
			}
			if warm.LowerBound != warm.Delay {
				t.Fatalf("seed %d step %d: completed memoized search must close its gap: lb=%v delay=%v",
					seed, step, warm.LowerBound, warm.Delay)
			}
			if got := eval.PointerDelay(tree, warm.Assignment); math.Abs(got-warm.Delay) > tol {
				t.Fatalf("seed %d step %d: memoized reports %v, its assignment evaluates to %v",
					seed, step, warm.Delay, got)
			}
			for _, w := range widths {
				par, err := parallel.BranchAndBound(ctx, tree, parallel.Options{Workers: w, Bounds: bc})
				if err != nil {
					t.Fatalf("seed %d step %d workers %d: %v", seed, step, w, err)
				}
				if d := par.Delay - cold.Delay; d > tol || d < -tol {
					t.Fatalf("seed %d step %d workers %d: parallel memoized %v != cold %v",
						seed, step, w, par.Delay, cold.Delay)
				}
				if got := eval.PointerDelay(tree, par.Assignment); math.Abs(got-par.Delay) > tol {
					t.Fatalf("seed %d step %d workers %d: reports %v, assignment evaluates to %v",
						seed, step, w, par.Delay, got)
				}
			}
			if exact.CountAssignments(tree) <= 1<<16 {
				bf, err := exact.BruteForce(tree, 0)
				if err != nil {
					t.Fatalf("seed %d step %d: brute: %v", seed, step, err)
				}
				if d := bf.Delay - warm.Delay; d > tol || d < -tol {
					t.Fatalf("seed %d step %d: brute %v != memoized %v", seed, step, bf.Delay, warm.Delay)
				}
				if bf.LowerBound != bf.Delay {
					t.Fatalf("seed %d step %d: finished enumeration must pin LowerBound == Delay: %v != %v",
						seed, step, bf.LowerBound, bf.Delay)
				}
			}

			// An unmutated re-solve is a whole-instance hit: the recorded
			// optimal pattern replays with zero search nodes and the exact
			// recorded delay.
			replay, err := exact.BranchAndBoundOpts(ctx, tree, exact.BnBOptions{Bounds: bc})
			if err != nil {
				t.Fatalf("seed %d step %d: replay: %v", seed, step, err)
			}
			if replay.Explored != 0 {
				t.Fatalf("seed %d step %d: identical re-solve explored %d nodes, want 0 (root hit)",
					seed, step, replay.Explored)
			}
			if replay.Delay != warm.Delay || replay.BoundHits == 0 {
				t.Fatalf("seed %d step %d: replay (delay=%v hits=%d) != recorded %v",
					seed, step, replay.Delay, replay.BoundHits, warm.Delay)
			}

			tree = mutateRandomly(t, tree, rng)
		}
		if st := bc.Stats(); st.Hits == 0 || st.Stores == 0 {
			t.Fatalf("seed %d: cache never engaged: %+v", seed, st)
		}
	}
}

// TestBoundCacheConcurrentSolves stresses one shared cache under
// concurrent memoized solves of related revisions — sequential and
// work-stealing solvers mixed. Under -race this is the data-race check
// on the shard locks and the immutable-entry discipline; in the plain
// lane it still verifies cross-solve agreement.
func TestBoundCacheConcurrentSolves(t *testing.T) {
	base := workload.Random(rand.New(rand.NewSource(7)), workload.DefaultRandomSpec(24, 3))
	revs := []*model.Tree{base}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 3; i++ {
		revs = append(revs, mutateRandomly(t, revs[len(revs)-1], rng))
	}
	want := make([]float64, len(revs))
	for i, tree := range revs {
		cold, err := exact.BranchAndBound(tree, 0)
		if err != nil {
			t.Fatalf("rev %d: %v", i, err)
		}
		want[i] = cold.Delay
	}

	bc := repro.NewBoundCache(repro.BoundCacheConfig{})
	solver := repro.NewSolver(repro.WithBoundCache(bc))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			alg := repro.BranchBound
			if g%2 == 1 {
				alg = repro.ParallelBnB
			}
			for i, tree := range revs {
				out, err := solver.Solve(context.Background(), tree, repro.WithAlgorithm(alg))
				if err != nil {
					errs <- err
					return
				}
				tol := 1e-9 * (1 + want[i])
				if math.Abs(out.Delay-want[i]) > tol {
					t.Errorf("goroutine %d rev %d: %v != cold %v", g, i, out.Delay, want[i])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent solve: %v", err)
	}
	if st := bc.Stats(); st.Hits == 0 {
		t.Fatalf("shared cache never hit: %+v", st)
	}
}

// TestBoundCacheLookupZeroAlloc is the allocs/op regression guard on the
// search hot path: a cache hit — the operation the memoized searches
// perform once per candidate subtree — must not allocate. Runs in the
// CI allocs-guard step next to the warm-serve and batch-eval guards.
func TestBoundCacheLookupZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs in the non-race lane")
	}
	tree := workload.Random(rand.New(rand.NewSource(3)), workload.DefaultRandomSpec(30, 3))
	bc := boundcache.New(boundcache.Config{})
	if _, err := exact.BranchAndBoundOpts(context.Background(), tree, exact.BnBOptions{Bounds: bc}); err != nil {
		t.Fatalf("populating solve: %v", err)
	}
	hashes := model.SubtreeHashes(tree)
	c := model.Compile(tree)
	key := boundcache.Key{Hash: hashes[c.Post[c.RootPos]], Root: true}
	// Rebuild the root key's boundary context the way the pre-pass does.
	seen := map[model.SatelliteID]bool{}
	prev := model.NoSatellite
	for _, p := range c.Leaves {
		s := c.Sensor[p]
		if s != prev {
			key.Bands++
			prev = s
		}
		if !seen[s] {
			seen[s] = true
			key.Sats++
		}
	}
	if _, ok := bc.Lookup(key); !ok {
		t.Fatal("completed solve did not record the root entry")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := bc.Lookup(key); !ok {
			t.Fatal("lookup missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("bound-cache hit allocates %v per op, want 0", allocs)
	}
}

// TestWarmMemoizedResolveFewerNodes is the perf-smoke acceptance (ISSUE
// 9): after a single-weight mutation, a warm re-solve — the session
// workflow: previous optimum projected as the incumbent, plus the bound
// cache populated by the previous solve — must re-search only the dirty
// Merkle spine, at least 5x fewer nodes than the cold cache-less search
// of the same revision, while returning the identical optimum.
// Deterministic pinned workload, asserted in CI.
func TestWarmMemoizedResolveFewerNodes(t *testing.T) {
	ctx := context.Background()
	tree := workload.Random(rand.New(rand.NewSource(5)), workload.DefaultRandomSpec(40, 4))
	bc := boundcache.New(boundcache.Config{})

	// Cold memoized solve: populates the cache and yields the incumbent
	// the next revision warm-starts from.
	prev, err := exact.BranchAndBoundOpts(ctx, tree, exact.BnBOptions{Bounds: bc})
	if err != nil {
		t.Fatalf("cold memoized solve: %v", err)
	}

	// One weight mutation: the root-to-edit spine's hashes move, every
	// other subtree still hits.
	var target model.NodeID
	found := false
	for _, id := range tree.Postorder() {
		if tree.Node(id).Kind == model.Processing && id != tree.Root() {
			target, found = id, true
			break
		}
	}
	if !found {
		t.Fatal("no mutable CRU")
	}
	e := tree.Edit()
	n := tree.Node(target)
	e.SetTimes(target, n.HostTime*1.02, n.SatTime*0.99)
	mutated, err := e.Build()
	if err != nil {
		t.Fatalf("mutation: %v", err)
	}

	cold, err := exact.BranchAndBound(mutated, 0)
	if err != nil {
		t.Fatalf("cold re-solve: %v", err)
	}
	warm, err := exact.BranchAndBoundOpts(ctx, mutated, exact.BnBOptions{
		Bounds: bc,
		Warm:   incremental.Project(tree, prev.Assignment, mutated),
	})
	if err != nil {
		t.Fatalf("warm re-solve: %v", err)
	}
	tol := 1e-9 * (1 + cold.Delay)
	if math.Abs(warm.Delay-cold.Delay) > tol {
		t.Fatalf("warm re-solve %v != cold %v", warm.Delay, cold.Delay)
	}
	if warm.Explored*5 > cold.Explored {
		t.Fatalf("warm memoized re-solve explored %d nodes, cold %d: want at least 5x reduction",
			warm.Explored, cold.Explored)
	}
	if warm.BoundHits == 0 {
		t.Fatal("warm re-solve hit nothing in the cache")
	}
}
