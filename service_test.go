package repro

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func serviceTree(t *testing.T, scale float64) *Tree {
	t.Helper()
	b := NewBuilder()
	r := b.Satellite("R")
	g := b.Satellite("G")
	root := b.Root("root", 3*scale, 9*scale)
	l := b.Child(root, "left", 2*scale, 6*scale, 0.5*scale)
	rr := b.Child(root, "right", 1*scale, 3*scale, 0.25*scale)
	b.Sensor(l, "sL", r, 4*scale)
	b.Sensor(rr, "sR", g, 2*scale)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestServiceCachesByInstanceIdentity(t *testing.T) {
	svc := NewService(nil, 64)
	ctx := context.Background()
	tree := serviceTree(t, 1)

	out, status, err := svc.Solve(ctx, tree)
	if err != nil || status != CacheMiss {
		t.Fatalf("first solve: %v %v", status, err)
	}
	out2, status2, err := svc.Solve(ctx, tree)
	if err != nil || status2 != CacheHit {
		t.Fatalf("repeat solve: %v %v", status2, err)
	}
	if out2 != out {
		t.Fatal("cache hit returned a different Outcome pointer")
	}

	// A structurally identical twin (different names, same content) hits
	// the same entry: identity is the fingerprint, not the pointer.
	twinBuilder := NewBuilder()
	tr := twinBuilder.Satellite("red")
	tg := twinBuilder.Satellite("green")
	troot := twinBuilder.Root("fuse", 3, 9)
	tl := twinBuilder.Child(troot, "a", 2, 6, 0.5)
	trr := twinBuilder.Child(troot, "b", 1, 3, 0.25)
	twinBuilder.Sensor(tl, "pa", tr, 4)
	twinBuilder.Sensor(trr, "pb", tg, 2)
	twin, err := twinBuilder.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, status, err := svc.Solve(ctx, twin); err != nil || status != CacheHit {
		t.Fatalf("structural twin: %v %v, want a cache hit", status, err)
	}

	// Different parameters are different cache entries.
	if _, status, err := svc.Solve(ctx, tree, WithAlgorithm(BruteForce)); err != nil || status != CacheMiss {
		t.Fatalf("different algorithm: %v %v, want a miss", status, err)
	}
	if _, status, err := svc.Solve(ctx, tree, WithWeights(Lambda(0.3))); err != nil || status != CacheMiss {
		t.Fatalf("different weights: %v %v, want a miss", status, err)
	}
	// The explicit default algorithm and weights share the default key.
	if _, status, err := svc.Solve(ctx, tree, WithAlgorithm(AdaptedSSB), WithWeights(DefaultWeights)); err != nil || status != CacheHit {
		t.Fatalf("explicit defaults: %v %v, want a hit", status, err)
	}
	// A different instance misses.
	if _, status, err := svc.Solve(ctx, serviceTree(t, 2)); err != nil || status != CacheMiss {
		t.Fatalf("different instance: %v %v, want a miss", status, err)
	}

	// Parameters the algorithm ignores are normalised out of the key: a
	// seed on the deterministic default must not fragment the cache,
	// while on a seeded heuristic it must.
	if _, status, err := svc.Solve(ctx, tree, WithSeed(99)); err != nil || status != CacheHit {
		t.Fatalf("seed on unseeded algorithm: %v %v, want a hit", status, err)
	}
	if _, status, err := svc.Solve(ctx, tree, WithAlgorithm(Annealing), WithSeed(1)); err != nil || status != CacheMiss {
		t.Fatalf("annealing seed 1: %v %v, want a miss", status, err)
	}
	if _, status, err := svc.Solve(ctx, tree, WithAlgorithm(Annealing), WithSeed(2)); err != nil || status != CacheMiss {
		t.Fatalf("annealing seed 2: %v %v, want a miss (seeds are semantic there)", status, err)
	}
}

// TestServiceRemapsCachedOutcomes: fingerprints are canonical, so two
// specs listing the same structure in different orders (and with
// permuted satellite declarations) share a cache entry — but their
// NodeID/SatelliteID numberings differ, so the served Outcome must be
// remapped onto the requester's tree, never returned raw.
func TestServiceRemapsCachedOutcomes(t *testing.T) {
	crus := map[string]SpecCRU{
		"root": {Name: "root", HostTime: 1, SatTime: 4},
		"a":    {Name: "a", Parent: "root", HostTime: 5, SatTime: 1.2, Comm: 0.2},
		"b":    {Name: "b", Parent: "root", HostTime: 5, SatTime: 1.1, Comm: 0.15},
		"c":    {Name: "c", Parent: "a", HostTime: 5, SatTime: 1.0, Comm: 0.1},
	}
	sensors := []SpecSensor{
		{Name: "s1", Parent: "c", Satellite: "R", Comm: 8},
		{Name: "s2", Parent: "b", Satellite: "G", Comm: 7},
	}
	specA := &Spec{
		Satellites: []string{"R", "G"},
		CRUs:       []SpecCRU{crus["root"], crus["a"], crus["b"], crus["c"]},
		Sensors:    sensors,
	}
	// Same structure: CRU listing order permuted (b and c swap NodeIDs)
	// and the satellite declarations reversed (R and G swap
	// SatelliteIDs).
	specB := &Spec{
		Satellites: []string{"G", "R"},
		CRUs:       []SpecCRU{crus["root"], crus["a"], crus["c"], crus["b"]},
		Sensors:    sensors,
	}
	treeA, err := FromSpec(specA)
	if err != nil {
		t.Fatal(err)
	}
	treeB, err := FromSpec(specB)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(treeA) != Fingerprint(treeB) {
		t.Fatal("permuted spec listings must share a fingerprint")
	}

	placement := func(tr *Tree, out *Outcome) map[string]string {
		m := map[string]string{}
		for _, id := range tr.Preorder() {
			n := tr.Node(id)
			if n.IsLeaf() {
				continue
			}
			loc := "host"
			if sat, onSat := out.Assignment.At(id).Satellite(); onSat {
				loc = tr.SatelliteName(sat)
			}
			m[n.Name] = loc
		}
		return m
	}

	svc := NewService(nil, 64)
	ctx := context.Background()
	outA, status, err := svc.Solve(ctx, treeA)
	if err != nil || status != CacheMiss {
		t.Fatalf("solve A: %v %v", status, err)
	}
	outB, status, err := svc.Solve(ctx, treeB)
	if err != nil {
		t.Fatalf("solve B: %v", err)
	}
	if status != CacheHit {
		t.Fatalf("solve B classified %v, want a hit", status)
	}
	if outB.Delay != outA.Delay {
		t.Fatalf("remapped delay %v != %v", outB.Delay, outA.Delay)
	}
	// The remapped assignment must be valid *for B's numbering* and must
	// agree, name by name, with solving B from scratch.
	if _, err := Evaluate(treeB, outB.Assignment); err != nil {
		t.Fatalf("remapped assignment invalid on B: %v", err)
	}
	fresh, err := NewSolver().Solve(ctx, treeB)
	if err != nil {
		t.Fatal(err)
	}
	want, got := placement(treeB, fresh), placement(treeB, outB)
	for name, loc := range want {
		if got[name] != loc {
			t.Fatalf("remapped placement of %q = %q, want %q (full: got %v want %v)",
				name, got[name], loc, got, want)
		}
	}
	// Sanity: the instance is non-trivial — something sits off-host.
	offHost := false
	for _, loc := range want {
		offHost = offHost || loc != "host"
	}
	if !offHost {
		t.Fatal("test instance degenerated to all-host; remap untested")
	}
}

// TestServiceSharedDeterministicErrorNotRetried: waiters only retry
// cancellation-flavoured shared failures; a deterministic error (budget
// exhaustion) is shared as-is, or singleflight would amplify the load.
func TestServiceSharedDeterministicErrorNotRetried(t *testing.T) {
	svc := NewService(nil, 64)
	tree := serviceTree(t, 1)
	ctx := context.Background()

	gate := make(chan struct{})
	var calls atomic.Int64
	svc.solve = func(ctx context.Context, t *Tree, cfg settings) (*Outcome, error) {
		calls.Add(1)
		<-gate
		return nil, ErrBudgetExceeded
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := svc.Solve(ctx, tree)
		leaderErr <- err
	}()
	for calls.Load() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	followerErr := make(chan error, 1)
	go func() {
		_, _, err := svc.Solve(ctx, tree)
		followerErr <- err
	}()
	for svc.Stats().Shared < 1 {
		time.Sleep(50 * time.Microsecond)
	}
	close(gate)

	if err := <-leaderErr; !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("leader: %v", err)
	}
	if err := <-followerErr; !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("follower: %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("deterministic failure ran the solver %d times, want 1 (no retry amplification)", n)
	}
}

// TestServiceSharedFailureRetries: a waiter that inherits the leader's
// failure (the leader's private timeout or disconnect) retries under its
// own constraints instead of surfacing an error it never caused.
func TestServiceSharedFailureRetries(t *testing.T) {
	svc := NewService(nil, 64)
	tree := serviceTree(t, 1)
	ctx := context.Background()

	gate := make(chan struct{})
	var calls atomic.Int64
	real := svc.solve
	svc.solve = func(ctx context.Context, t *Tree, cfg settings) (*Outcome, error) {
		if calls.Add(1) == 1 {
			<-gate
			// The leader's own deadline expired — a failure that says
			// nothing about the instance.
			return nil, &CanceledError{Algorithm: cfg.algorithm, Cause: context.DeadlineExceeded}
		}
		return real(ctx, t, cfg)
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := svc.Solve(ctx, tree)
		leaderErr <- err
	}()
	for calls.Load() == 0 {
		time.Sleep(50 * time.Microsecond)
	}

	followerDone := make(chan error, 1)
	go func() {
		out, _, err := svc.Solve(ctx, tree)
		if err == nil && out == nil {
			err = errors.New("nil outcome without error")
		}
		followerDone <- err
	}()
	for svc.Stats().Shared < 1 {
		time.Sleep(50 * time.Microsecond)
	}
	close(gate)

	if err := <-leaderErr; err == nil {
		t.Fatal("leader must see its own failure")
	}
	if err := <-followerDone; err != nil {
		t.Fatalf("follower inherited the leader's failure instead of retrying: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("solver ran %d times, want 2 (failed leader + retrying follower)", n)
	}
}

// TestServiceSingleflight proves, deterministically, that N concurrent
// identical solves run the solver once: the solve seam blocks the leader
// on a gate until every other caller has parked on the flight.
func TestServiceSingleflight(t *testing.T) {
	svc := NewService(nil, 64)
	tree := serviceTree(t, 1)
	ctx := context.Background()
	const followers = 7

	gate := make(chan struct{})
	var solves atomic.Int64
	real := svc.solve
	svc.solve = func(ctx context.Context, t *Tree, cfg settings) (*Outcome, error) {
		solves.Add(1)
		<-gate
		return real(ctx, t, cfg)
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := svc.Solve(ctx, tree)
		leaderErr <- err
	}()
	// The leader is inside the flight once it has counted its solve.
	for solves.Load() == 0 {
		time.Sleep(50 * time.Microsecond)
	}

	var wg sync.WaitGroup
	statuses := make([]CacheStatus, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, status, err := svc.Solve(ctx, tree)
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			statuses[i] = status
		}(i)
	}
	// Wait until every follower has joined the in-flight solve, then
	// open the gate: nothing after this point can start a second solve.
	for svc.Stats().Shared < followers {
		time.Sleep(50 * time.Microsecond)
	}
	close(gate)
	wg.Wait()
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader: %v", err)
	}

	if n := solves.Load(); n != 1 {
		t.Fatalf("%d concurrent identical solves ran the solver %d times, want 1", followers+1, n)
	}
	for i, status := range statuses {
		if status != CacheShared {
			t.Fatalf("follower %d classified %v, want shared", i, status)
		}
	}
	// And the next request is a plain cache hit.
	if _, status, err := svc.Solve(ctx, tree); err != nil || status != CacheHit {
		t.Fatalf("post-flight solve: %v %v", status, err)
	}
}

func TestServiceBatchDeduplicates(t *testing.T) {
	svc := NewService(nil, 64)
	var solves atomic.Int64
	real := svc.solve
	svc.solve = func(ctx context.Context, t *Tree, cfg settings) (*Outcome, error) {
		solves.Add(1)
		return real(ctx, t, cfg)
	}

	a, b := serviceTree(t, 1), serviceTree(t, 3)
	trees := []*Tree{a, b, a, a, b, a} // 2 unique instances, 6 items
	results, err := svc.SolveBatch(context.Background(), trees, WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(trees) {
		t.Fatalf("%d results for %d trees", len(results), len(trees))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if n := solves.Load(); n != 2 {
		t.Fatalf("batch with 2 unique instances ran %d solves", n)
	}
	// Input order is preserved: identical inputs agree, distinct differ.
	if results[0].Outcome.Delay != results[2].Outcome.Delay {
		t.Fatal("duplicate items disagree")
	}
	if results[0].Outcome.Delay == results[1].Outcome.Delay {
		t.Fatal("distinct items agree")
	}
}

func TestServiceErrorsNotCached(t *testing.T) {
	svc := NewService(nil, 64)
	ctx := context.Background()
	tree := serviceTree(t, 1)

	boom := errors.New("transient")
	real := svc.solve
	var calls atomic.Int64
	svc.solve = func(ctx context.Context, t *Tree, cfg settings) (*Outcome, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return real(ctx, t, cfg)
	}

	if _, _, err := svc.Solve(ctx, tree); !errors.Is(err, boom) {
		t.Fatalf("first solve: %v", err)
	}
	out, status, err := svc.Solve(ctx, tree)
	if err != nil || status != CacheMiss || out == nil {
		t.Fatalf("retry after error: %v %v %v", out, status, err)
	}

	// Nil trees fail fast without touching the cache.
	if _, _, err := svc.Solve(ctx, nil); !errors.Is(err, ErrInvalidTree) {
		t.Fatalf("nil tree: %v", err)
	}
}

func TestServiceBatchCancellation(t *testing.T) {
	svc := NewService(nil, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	trees := []*Tree{serviceTree(t, 1), serviceTree(t, 2)}
	results, err := svc.SolveBatch(ctx, trees)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("batch error %v, want ErrCanceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) || ce.Algorithm != AdaptedSSB {
		t.Fatalf("batch error names %v, want the resolved default", err)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("item %d not marked canceled", i)
		}
	}
}

// TestSolverSettingsResolution pins the satellite fix: defaults resolve
// once in settingsFor, so the cancellation path and the cache key both
// see the real algorithm, and per-call options still override defaults.
func TestSolverSettingsResolution(t *testing.T) {
	s := NewSolver()
	cfg := s.settingsFor(nil)
	if cfg.algorithm != AdaptedSSB {
		t.Fatalf("empty algorithm resolved to %q", cfg.algorithm)
	}
	if cfg.parallelism <= 0 {
		t.Fatalf("parallelism not resolved: %d", cfg.parallelism)
	}
	cfg = s.settingsFor([]Option{WithAlgorithm(Genetic), WithParallelism(3)})
	if cfg.algorithm != Genetic || cfg.parallelism != 3 {
		t.Fatalf("options lost: %+v", cfg)
	}
	s2 := NewSolver(WithAlgorithm(BruteForce))
	if cfg := s2.settingsFor(nil); cfg.algorithm != BruteForce {
		t.Fatalf("constructor default lost: %q", cfg.algorithm)
	}
}
