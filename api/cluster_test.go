package api

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestClusterResponseRoundTrip(t *testing.T) {
	in := &ClusterResponse{
		APIVersion: Version, Enabled: true, Self: "http://n1", VirtualNodes: 64,
		Nodes: []ClusterNode{
			{ID: "http://n1", Tag: "aabbccdd", Self: true, State: "ready"},
			{ID: "http://n2", Tag: "11223344", State: "dead", Failures: 3, LastSeenMS: 1500},
		},
		Stats: map[string]int64{"forwards": 7},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ClusterResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Self != in.Self || len(out.Nodes) != 2 || out.Nodes[1].State != "dead" || out.Stats["forwards"] != 7 {
		t.Fatalf("round trip drift: %+v", out)
	}
}

func TestUnavailableStatus(t *testing.T) {
	if got := CodeUnavailable.HTTPStatus(); got != http.StatusServiceUnavailable {
		t.Fatalf("unavailable maps to %d", got)
	}
}

// The hop-guard header name is wire contract: peers of mixed versions
// must agree on it, so a rename is a breaking change.
func TestForwardHeadersStable(t *testing.T) {
	if ForwardedHeader != "X-CR-Forwarded" || ServedByHeader != "X-CR-Served-By" {
		t.Fatalf("cluster headers renamed: %q %q", ForwardedHeader, ServedByHeader)
	}
}
