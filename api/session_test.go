package api

import (
	"errors"
	"testing"

	"repro"
)

func f(v float64) *float64 { return &v }

func TestMutationCompile(t *testing.T) {
	good := []Mutation{
		{Op: OpWeightUpdate, Node: "a", HostTime: f(1)},
		{Op: OpWeightUpdate, Node: "a", UpComm: f(0.5)},
		{Op: OpAttachSubtree, Parent: "a", Subtree: &repro.Spec{CRUs: []repro.SpecCRU{{Name: "x", HostTime: 1}}}},
		{Op: OpDetachSubtree, Node: "a"},
		{Op: OpSatelliteChange, Node: "s", Satellite: "R"},
	}
	for i, m := range good {
		if _, err := m.Compile(); err != nil {
			t.Errorf("good case %d: %v", i, err)
		}
	}
	bad := []Mutation{
		{},                              // no op
		{Op: "teleport", Node: "a"},     // unknown op
		{Op: OpWeightUpdate},            // no node
		{Op: OpWeightUpdate, Node: "a"}, // changes nothing
		{Op: OpAttachSubtree, Parent: "a"},
		{Op: OpAttachSubtree, Subtree: &repro.Spec{}},
		{Op: OpDetachSubtree},
		{Op: OpSatelliteChange, Node: "s"},
		{Op: OpSatelliteChange, Satellite: "R"},
	}
	for i, m := range bad {
		_, err := m.Compile()
		if err == nil {
			t.Errorf("bad case %d: expected error", i)
			continue
		}
		var wire *Error
		if !errors.As(err, &wire) || wire.Code != CodeInvalidRequest {
			t.Errorf("bad case %d: error %v is not CodeInvalidRequest", i, err)
		}
	}
	if _, err := CompileMutations(nil); err == nil {
		t.Error("empty batch: expected error")
	}
	if ms, err := CompileMutations(good); err != nil || len(ms) != len(good) {
		t.Errorf("batch: %v (%d mutations)", err, len(ms))
	}
}

func TestNotFoundStatus(t *testing.T) {
	if got := CodeNotFound.HTTPStatus(); got != 404 {
		t.Fatalf("CodeNotFound -> %d, want 404", got)
	}
}
