package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
)

func twoSatSpec() *repro.Spec {
	return &repro.Spec{
		Name:       "wire-test",
		Satellites: []string{"R", "G"},
		CRUs: []repro.SpecCRU{
			{Name: "root", HostTime: 3, SatTime: 9},
			{Name: "left", Parent: "root", HostTime: 2, SatTime: 6, Comm: 0.5},
			{Name: "right", Parent: "root", HostTime: 1, SatTime: 3, Comm: 0.25},
		},
		Sensors: []repro.SpecSensor{
			{Name: "sL", Parent: "left", Satellite: "R", Comm: 4},
			{Name: "sR", Parent: "right", Satellite: "G", Comm: 2},
		},
	}
}

func TestSolveRequestRoundTrip(t *testing.T) {
	req := &SolveRequest{
		Spec:      twoSatSpec(),
		Algorithm: string(repro.BranchBound),
		Weights:   &Weights{WS: 0.75, WB: 0.25},
		Seed:      7,
		Budget:    1 << 16,
		TimeoutMS: 1500,
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back SolveRequest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Algorithm != req.Algorithm || back.Seed != 7 || back.Budget != 1<<16 ||
		back.TimeoutMS != 1500 || back.Weights == nil || back.Weights.WS != 0.75 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if len(back.Options()) != 5 {
		t.Fatalf("Options() built %d options, want 5", len(back.Options()))
	}
	tree, err := back.Tree()
	if err != nil {
		t.Fatalf("Tree: %v", err)
	}
	if tree.ProcessingCount() != 3 || tree.SensorCount() != 2 {
		t.Fatalf("decoded tree %v", tree)
	}
}

func TestSolveRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  *SolveRequest
	}{
		{"nil spec", &SolveRequest{}},
		{"negative timeout", &SolveRequest{Spec: twoSatSpec(), TimeoutMS: -1}},
		{"negative budget", &SolveRequest{Spec: twoSatSpec(), Budget: -1}},
	}
	for _, tc := range cases {
		err := tc.req.Validate()
		var wire *Error
		if !errors.As(err, &wire) || wire.Code != CodeInvalidRequest {
			t.Errorf("%s: got %v, want CodeInvalidRequest", tc.name, err)
		}
	}

	bad := &SolveRequest{Spec: &repro.Spec{Satellites: []string{"R"}}}
	if _, err := bad.Tree(); FromError(err).Code != CodeInvalidRequest {
		t.Errorf("empty spec: got %v, want CodeInvalidRequest", err)
	}
}

func TestNewSolveResponse(t *testing.T) {
	tree, err := repro.FromSpec(twoSatSpec())
	if err != nil {
		t.Fatal(err)
	}
	out, err := repro.NewSolver().Solve(context.Background(), tree)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewSolveResponse(tree, out, repro.CacheHit)
	if resp.APIVersion != Version {
		t.Fatalf("api_version %q", resp.APIVersion)
	}
	if resp.Fingerprint != repro.Fingerprint(tree) {
		t.Fatal("fingerprint mismatch")
	}
	if !resp.Cached {
		t.Fatal("CacheHit must mark the response cached")
	}
	if resp.Delay != out.Delay || !resp.Exact {
		t.Fatalf("delay/exact mismatch: %+v", resp)
	}
	// Every processing CRU is placed; sensors are omitted.
	for _, name := range []string{"root", "left", "right"} {
		if _, ok := resp.Assignment[name]; !ok {
			t.Fatalf("assignment missing %q: %v", name, resp.Assignment)
		}
	}
	if _, ok := resp.Assignment["sL"]; ok {
		t.Fatal("sensor leaked into the assignment map")
	}
	if resp.Assignment["root"] != "host" {
		t.Fatalf("root placed on %q, want host", resp.Assignment["root"])
	}
	if resp.Breakdown == nil || resp.Breakdown.HostTime+resp.Breakdown.MaxSatLoad != resp.Delay {
		t.Fatalf("breakdown inconsistent: %+v", resp.Breakdown)
	}
	if NewSolveResponse(tree, out, repro.CacheShared).Cached {
		t.Fatal("shared in-flight result must not be marked cached")
	}
}

func TestErrorMapping(t *testing.T) {
	tree, err := repro.FromSpec(twoSatSpec())
	if err != nil {
		t.Fatal(err)
	}
	solver := repro.NewSolver()
	ctx := context.Background()

	_, uaErr := solver.Solve(ctx, tree, repro.WithAlgorithm("no-such"))
	ua := FromError(uaErr)
	if ua.Code != CodeUnknownAlgorithm || ua.Code.HTTPStatus() != http.StatusBadRequest {
		t.Fatalf("unknown algorithm mapped to %+v", ua)
	}
	if !strings.Contains(ua.Details["known"], string(repro.AdaptedSSB)) {
		t.Fatalf("details lack known algorithms: %v", ua.Details)
	}

	canceledCtx, cancel := context.WithCancel(ctx)
	cancel()
	_, cErr := solver.Solve(canceledCtx, tree)
	ce := FromError(cErr)
	if ce.Code != CodeCanceled || ce.Code.HTTPStatus() != http.StatusGatewayTimeout {
		t.Fatalf("canceled mapped to %+v", ce)
	}
	if ce.Details["cause"] != "canceled" {
		t.Fatalf("canceled cause %v", ce.Details)
	}

	_, dErr := solver.Solve(ctx, tree, repro.WithTimeout(time.Nanosecond))
	if de := FromError(dErr); de.Code != CodeCanceled || de.Details["cause"] != "deadline_exceeded" {
		t.Fatalf("deadline mapped to %+v", de)
	}

	_, nilErr := solver.Solve(ctx, nil)
	if it := FromError(nilErr); it.Code != CodeInvalidTree || it.Code.HTTPStatus() != http.StatusUnprocessableEntity {
		t.Fatalf("invalid tree mapped to %+v", it)
	}

	// Raw context errors (a waiter's own deadline while parked on a
	// shared flight) must classify as canceled, not internal.
	if e := FromError(context.DeadlineExceeded); e.Code != CodeCanceled || e.Details["cause"] != "deadline_exceeded" {
		t.Fatalf("raw DeadlineExceeded mapped to %+v", e)
	}
	if e := FromError(context.Canceled); e.Code != CodeCanceled || e.Details["cause"] != "canceled" {
		t.Fatalf("raw Canceled mapped to %+v", e)
	}

	if FromError(nil) != nil {
		t.Fatal("FromError(nil) must be nil")
	}
	if in := FromError(errors.New("weird")); in.Code != CodeInternal {
		t.Fatalf("unclassified error mapped to %+v", in)
	}
	orig := &Error{Code: CodeOverloaded, Message: "busy"}
	if FromError(orig) != orig {
		t.Fatal("*Error must pass through FromError unchanged")
	}
}

func TestSimConfigParsing(t *testing.T) {
	r := &SimulateRequest{Mode: "overlapped", Frames: 3, Interval: 0.5}
	cfg, mode, err := r.SimConfig()
	if err != nil || cfg.Mode != repro.Overlapped || cfg.Frames != 3 || mode != "overlapped" {
		t.Fatalf("overlapped: %+v %q %v", cfg, mode, err)
	}
	// The default resolves to a canonical name clients can rely on.
	if cfg, mode, err := (&SimulateRequest{}).SimConfig(); err != nil || cfg.Mode != repro.PaperBarrier || mode != "paper-barrier" {
		t.Fatalf("default mode: %+v %q %v", cfg, mode, err)
	}
	if _, _, err := (&SimulateRequest{Mode: "warp"}).SimConfig(); FromError(err).Code != CodeInvalidRequest {
		t.Fatalf("unknown mode: %v", err)
	}
	if _, _, err := (&SimulateRequest{Frames: -1}).SimConfig(); FromError(err).Code != CodeInvalidRequest {
		t.Fatalf("negative frames: %v", err)
	}
}

func TestListAlgorithms(t *testing.T) {
	resp := ListAlgorithms()
	if resp.APIVersion != Version || len(resp.Algorithms) == 0 {
		t.Fatalf("algorithms response %+v", resp)
	}
	found := false
	for _, a := range resp.Algorithms {
		if a.Name == string(repro.AdaptedSSB) {
			found = true
			if !a.Exact {
				t.Fatal("adapted-ssb must be exact")
			}
		}
	}
	if !found {
		t.Fatal("adapted-ssb missing from the listing")
	}
}
