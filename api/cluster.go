package api

// Cluster routing headers. They are part of the wire contract: peers of
// any version must agree on the hop guard or a ring disagreement could
// bounce a request between nodes forever.
const (
	// ForwardedHeader is the hop guard. A node forwarding a request to a
	// peer sets it to its own ID; a node receiving a request that carries
	// it must serve the request locally and never forward again, so one
	// client request crosses at most one intra-cluster hop.
	ForwardedHeader = "X-CR-Forwarded"
	// ServedByHeader names the node whose solver (or cache) actually
	// produced the response — observability for routing and cache
	// affinity, never consulted for routing decisions.
	ServedByHeader = "X-CR-Served-By"
	// EpochHeader carries a membership-view epoch. Health-probe responses
	// advertise the responder's current epoch on it (the gossip path that
	// lets a node missing a broadcast catch up), and migration pushes
	// stamp the epoch that justified them so a receiver on a newer view
	// can reject stale state.
	EpochHeader = "X-CR-Epoch"
)

// ClusterNode is one fleet member's introspection record.
type ClusterNode struct {
	// ID is the node's advertised base URL.
	ID string `json:"id"`
	// Tag is the short stable identifier session IDs are pinned with.
	Tag string `json:"tag"`
	// Self marks the node answering this request.
	Self bool `json:"self,omitempty"`
	// State: ready | draining | dead.
	State string `json:"state"`
	// StateSinceMS is milliseconds since the node last changed state
	// (how long it has been ready/draining/dead).
	StateSinceMS int64 `json:"state_since_ms,omitempty"`
	// Failures is the node's consecutive health-probe failure count.
	Failures int `json:"failures,omitempty"`
	// LastSeenMS is milliseconds since the node last answered a probe
	// (-1 until the first successful probe; omitted for self).
	LastSeenMS int64 `json:"last_seen_ms,omitempty"`
}

// ClusterResponse is the GET /v1/cluster introspection document. On a
// node running without a cluster it reports Enabled=false and nothing
// else, so dashboards can poll the endpoint unconditionally.
type ClusterResponse struct {
	APIVersion   string           `json:"api_version"`
	Enabled      bool             `json:"enabled"`
	Self         string           `json:"self,omitempty"`
	Epoch        uint64           `json:"epoch,omitempty"`
	Members      []string         `json:"members,omitempty"`
	VirtualNodes int              `json:"virtual_nodes,omitempty"`
	Nodes        []ClusterNode    `json:"nodes,omitempty"`
	Stats        map[string]int64 `json:"stats,omitempty"`
}
