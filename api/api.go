// Package api defines the versioned, transport-agnostic wire form of the
// solve service: JSON DTOs for requests and responses, a stable error
// model, and the conversions between the wire types and the in-process
// repro API. The tree travels as the existing Spec interchange form; the
// response carries the instance Fingerprint so clients can correlate,
// de-duplicate and cache results themselves.
//
// cmd/crserve serves these DTOs over HTTP under the /v1 prefix; any other
// transport (queue consumer, RPC layer) can embed the same types. The
// wire format is versioned by Version: breaking changes bump the path
// prefix and the constant together, and requests are decoded strictly
// (unknown fields are rejected) so client typos surface as
// ErrInvalidRequest rather than silently-ignored options.
package api

import (
	"fmt"
	"time"

	"repro"
)

// Version is the wire-format version implemented by this package. HTTP
// servers mount it as the path prefix (POST /v1/solve).
const Version = "v1"

// Weights is the wire form of the WS·S + WB·B objective coefficients.
type Weights struct {
	WS float64 `json:"ws"`
	WB float64 `json:"wb"`
}

// SolveRequest asks for the minimum-delay assignment of one instance.
// Spec is the tree in its JSON interchange form; every other field is
// optional and defaults to the server's solver configuration.
type SolveRequest struct {
	// Spec is the problem instance (required).
	Spec *repro.Spec `json:"spec"`
	// Algorithm names a registered solver; empty selects the server
	// default (the paper's adapted SSB).
	Algorithm string `json:"algorithm,omitempty"`
	// Weights overrides the objective coefficients (graph solvers only).
	Weights *Weights `json:"weights,omitempty"`
	// Seed seeds the randomised heuristics.
	Seed int64 `json:"seed,omitempty"`
	// Budget caps the exploration of the budgeted exact searches.
	Budget int `json:"budget,omitempty"`
	// TimeoutMS bounds this solve in milliseconds; the server may clamp
	// it to its own ceiling.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Validate reports whether the request is well-formed at the wire level
// (tree validity is checked separately when the Spec is built).
func (r *SolveRequest) Validate() error {
	if r == nil || r.Spec == nil {
		return &Error{Code: CodeInvalidRequest, Message: "missing spec"}
	}
	if r.TimeoutMS < 0 {
		return &Error{Code: CodeInvalidRequest, Message: "negative timeout_ms"}
	}
	if r.Budget < 0 {
		return &Error{Code: CodeInvalidRequest, Message: "negative budget"}
	}
	return nil
}

// Options converts the request's parameters into solver options, to be
// applied over the serving Solver's defaults.
func (r *SolveRequest) Options() []repro.Option {
	var opts []repro.Option
	if r.Algorithm != "" {
		opts = append(opts, repro.WithAlgorithm(repro.Algorithm(r.Algorithm)))
	}
	if r.Weights != nil {
		opts = append(opts, repro.WithWeights(repro.Weights{WS: r.Weights.WS, WB: r.Weights.WB}))
	}
	if r.Seed != 0 {
		opts = append(opts, repro.WithSeed(r.Seed))
	}
	if r.Budget != 0 {
		opts = append(opts, repro.WithBudget(r.Budget))
	}
	if r.TimeoutMS != 0 {
		opts = append(opts, repro.WithTimeout(time.Duration(r.TimeoutMS)*time.Millisecond))
	}
	return opts
}

// Tree builds and validates the instance. Failures are returned as
// *Error with CodeInvalidRequest (malformed spec) so transports can
// serialise them directly.
func (r *SolveRequest) Tree() (*repro.Tree, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	t, err := repro.FromSpec(r.Spec)
	if err != nil {
		return nil, &Error{Code: CodeInvalidRequest, Message: err.Error()}
	}
	return t, nil
}

// Breakdown is the wire form of the delay breakdown, with satellites
// reported by name.
type Breakdown struct {
	HostTime   float64            `json:"host_time"`
	MaxSatLoad float64            `json:"max_sat_load"`
	Bottleneck string             `json:"bottleneck,omitempty"`
	SatLoads   map[string]float64 `json:"sat_loads,omitempty"`
}

// SearchStats is the wire form of a graph-based solver's run report.
type SearchStats struct {
	Iterations int  `json:"iterations"`
	Expansions int  `json:"expansions"`
	SuperEdges int  `json:"super_edges"`
	FinalEdges int  `json:"final_edges"`
	FellBack   bool `json:"fell_back,omitempty"`
	Labels     int  `json:"labels,omitempty"`
}

// SolveResponse is the result of one solve. Assignment maps each
// processing CRU's name to "host" or the satellite name it executes on
// (sensors are omitted: they are pinned to their satellites).
type SolveResponse struct {
	APIVersion  string            `json:"api_version"`
	Fingerprint string            `json:"fingerprint"`
	Algorithm   string            `json:"algorithm"`
	Delay       float64           `json:"delay"`
	Exact       bool              `json:"exact"`
	Cached      bool              `json:"cached"`
	Assignment  map[string]string `json:"assignment"`
	Breakdown   *Breakdown        `json:"breakdown,omitempty"`
	Stats       *SearchStats      `json:"stats,omitempty"`
	Work        int               `json:"work,omitempty"`
	ElapsedUS   int64             `json:"elapsed_us"`
	// Partial marks a best-effort anytime result: feasible, not proven
	// optimal (the deadline or budget expired first).
	Partial bool `json:"partial,omitempty"`
	// LowerBound is the solver's proof floor on the optimal delay, when
	// one exists; a completed exact solve reports its own delay.
	LowerBound float64 `json:"lower_bound,omitempty"`
}

// NewSolveResponse converts an Outcome into its wire form. status is the
// serving layer's cache classification: hits report Cached=true, while a
// shared in-flight result reports false (the solve did run, just once for
// several callers).
func NewSolveResponse(t *repro.Tree, out *repro.Outcome, status repro.CacheStatus) *SolveResponse {
	resp := &SolveResponse{
		APIVersion:  Version,
		Fingerprint: repro.Fingerprint(t),
		Algorithm:   string(out.Algorithm),
		Delay:       out.Delay,
		Exact:       out.Exact,
		Cached:      status == repro.CacheHit,
		Assignment:  assignmentNames(t, out.Assignment),
		Work:        out.Work,
		ElapsedUS:   out.Elapsed.Microseconds(),
		Partial:     out.Partial,
		LowerBound:  out.LowerBound,
	}
	if bd := out.Breakdown; bd != nil {
		wire := &Breakdown{HostTime: bd.HostTime, MaxSatLoad: bd.MaxSatLoad}
		if len(bd.SatLoad) > 0 {
			wire.SatLoads = make(map[string]float64, len(bd.SatLoad))
			for sat, load := range bd.SatLoad {
				wire.SatLoads[t.SatelliteName(sat)] = load
			}
		}
		if bd.Bottleneck >= 0 {
			wire.Bottleneck = t.SatelliteName(bd.Bottleneck)
		}
		resp.Breakdown = wire
	}
	if st := out.Stats; st != nil {
		resp.Stats = &SearchStats{
			Iterations: st.Iterations, Expansions: st.Expansions,
			SuperEdges: st.SuperEdges, FinalEdges: st.FinalEdges,
			FellBack: st.FellBack, Labels: st.Labels,
		}
	}
	return resp
}

func assignmentNames(t *repro.Tree, a *repro.Assignment) map[string]string {
	if a == nil {
		return nil
	}
	placed := make(map[string]string)
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.IsLeaf() {
			continue // sensors are pinned; not part of the decision
		}
		loc := "host"
		if sat, onSat := a.At(id).Satellite(); onSat {
			loc = t.SatelliteName(sat)
		}
		placed[n.Name] = loc
	}
	return placed
}

// BatchRequest solves many instances in one round trip. Items are
// independent: each carries its own spec and parameters, and failures are
// isolated per item in the response.
type BatchRequest struct {
	Items []SolveRequest `json:"items"`
}

// BatchItem is one BatchRequest item's result: exactly one of Response
// and Error is set.
type BatchItem struct {
	Response *SolveResponse `json:"response,omitempty"`
	Error    *Error         `json:"error,omitempty"`
}

// BatchResponse carries one BatchItem per request item, in input order.
type BatchResponse struct {
	APIVersion string      `json:"api_version"`
	Items      []BatchItem `json:"items"`
}

// SimulateRequest solves an instance and replays the winning assignment
// on the discrete-event testbed.
type SimulateRequest struct {
	SolveRequest
	// Mode selects the timing model: "paper-barrier" (default) or
	// "overlapped".
	Mode string `json:"mode,omitempty"`
	// Frames is the number of frames to push through (default 1).
	Frames int `json:"frames,omitempty"`
	// Interval is the inter-arrival time between frames (0 = all at t=0).
	Interval float64 `json:"interval,omitempty"`
}

// SimConfig converts the wire fields into a simulator configuration and
// returns the canonical mode name that will run — responses echo it, so
// a client that relied on the default still learns which timing model
// produced its numbers.
func (r *SimulateRequest) SimConfig() (repro.SimConfig, string, error) {
	cfg := repro.SimConfig{Frames: r.Frames, Interval: r.Interval}
	mode := r.Mode
	switch mode {
	case "", "paper-barrier":
		cfg.Mode = repro.PaperBarrier
		mode = "paper-barrier"
	case "overlapped":
		cfg.Mode = repro.Overlapped
	default:
		return cfg, "", &Error{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("unknown simulation mode %q", r.Mode),
			Details: map[string]string{"known": "paper-barrier, overlapped"}}
	}
	if r.Frames < 0 || r.Interval < 0 {
		return cfg, "", &Error{Code: CodeInvalidRequest, Message: "negative frames or interval"}
	}
	return cfg, mode, nil
}

// SimulateResponse reports the simulated replay next to the analytic
// solve it was derived from.
type SimulateResponse struct {
	APIVersion  string  `json:"api_version"`
	Fingerprint string  `json:"fingerprint"`
	Algorithm   string  `json:"algorithm"`
	Delay       float64 `json:"delay"` // analytic objective of the assignment
	Cached      bool    `json:"cached"`
	Mode        string  `json:"mode"`
	Frames      int     `json:"frames"`
	Makespan    float64 `json:"makespan"`
	Throughput  float64 `json:"throughput"`
	BusyHost    float64 `json:"busy_host"`
}

// AlgorithmInfo is the wire form of one registry entry.
type AlgorithmInfo struct {
	Name      string `json:"name"`
	Exact     bool   `json:"exact"`
	Budget    bool   `json:"budget"`
	Seeded    bool   `json:"seeded"`
	Weighted  bool   `json:"weighted"`
	WarmStart bool   `json:"warm_start"`
	Anytime   bool   `json:"anytime"`
	Summary   string `json:"summary,omitempty"`
}

// AlgorithmsResponse lists the registered solvers, exact ones first.
type AlgorithmsResponse struct {
	APIVersion string          `json:"api_version"`
	Algorithms []AlgorithmInfo `json:"algorithms"`
}

// ListAlgorithms snapshots the registry into its wire form.
func ListAlgorithms() *AlgorithmsResponse {
	resp := &AlgorithmsResponse{APIVersion: Version}
	for _, name := range repro.Algorithms() {
		caps, _ := repro.Capability(name)
		resp.Algorithms = append(resp.Algorithms, AlgorithmInfo{
			Name: string(name), Exact: caps.Exact, Budget: caps.Budget,
			Seeded: caps.Seeded, Weighted: caps.Weighted,
			WarmStart: caps.WarmStart, Anytime: caps.Anytime, Summary: caps.Summary,
		})
	}
	return resp
}
