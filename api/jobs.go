package api

import (
	"time"

	"repro"
	"repro/internal/jobs"
)

// JobRequest submits an asynchronous solve. The embedded SolveRequest
// carries the instance and solver parameters; an empty algorithm lets the
// server's metareasoning planner choose from instance features.
type JobRequest struct {
	SolveRequest
	// DeadlineMS bounds the whole job — queue wait plus solve — from
	// submission. Anytime solvers return their best-so-far (partial=true,
	// with a bound gap) when it expires; 0 means run to completion.
	// When absent, a timeout_ms is adopted as the deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Portfolio races the exact solver against a heuristic, first
	// acceptable bound gap wins. The planner may also enable it.
	Portfolio bool `json:"portfolio,omitempty"`
}

// Validate extends SolveRequest.Validate with the job fields.
func (r *JobRequest) Validate() error {
	if err := r.SolveRequest.Validate(); err != nil {
		return err
	}
	if r.DeadlineMS < 0 {
		return &Error{Code: CodeInvalidRequest, Message: "negative deadline_ms"}
	}
	return nil
}

// JobSpec converts the wire request into the manager's form. The tree is
// passed in (already built and validated by Tree()).
func (r *JobRequest) JobSpec(tree *repro.Tree) jobs.Request {
	deadline := time.Duration(r.DeadlineMS) * time.Millisecond
	if deadline == 0 && r.TimeoutMS > 0 {
		deadline = time.Duration(r.TimeoutMS) * time.Millisecond
	}
	req := jobs.Request{
		Tree:      tree,
		Algorithm: repro.Algorithm(r.Algorithm),
		Seed:      r.Seed,
		Budget:    r.Budget,
		Deadline:  deadline,
		Portfolio: r.Portfolio,
	}
	if r.Weights != nil {
		req.Weights = repro.Weights{WS: r.Weights.WS, WB: r.Weights.WB}
	}
	return req
}

// JobIncumbent is the wire form of one streamed improvement.
type JobIncumbent struct {
	Seq        int     `json:"seq"`
	Algorithm  string  `json:"algorithm"`
	Delay      float64 `json:"delay"`
	LowerBound float64 `json:"lower_bound,omitempty"`
	// Gap is the relative bound gap (delay-bound)/bound, -1 without a
	// bound (heuristic incumbents carry none).
	Gap       float64 `json:"gap"`
	Work      int     `json:"work,omitempty"`
	ElapsedMS int64   `json:"elapsed_ms"`
}

// NewJobIncumbent converts one ring entry.
func NewJobIncumbent(inc jobs.Incumbent) JobIncumbent {
	return JobIncumbent{
		Seq:        inc.Seq,
		Algorithm:  string(inc.Algorithm),
		Delay:      inc.Delay,
		LowerBound: inc.LowerBound,
		Gap:        inc.Gap(),
		Work:       inc.Work,
		ElapsedMS:  inc.Elapsed.Milliseconds(),
	}
}

// JobResponse is a job's wire snapshot: lifecycle state, the planner's
// decision, the retained incumbent tail and — once done — the final
// solve result with its bound gap.
type JobResponse struct {
	APIVersion  string `json:"api_version"`
	JobID       string `json:"job_id"`
	State       string `json:"state"`
	Fingerprint string `json:"fingerprint"`
	// Algorithm is the planned primary solver (empty while queued without
	// a pinned algorithm).
	Algorithm string `json:"algorithm,omitempty"`
	// Portfolio and Heuristic describe the race when portfolio mode ran.
	Portfolio bool   `json:"portfolio,omitempty"`
	Heuristic string `json:"heuristic,omitempty"`
	// PlanReason is the planner's one-line explanation.
	PlanReason string `json:"plan_reason,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	ElapsedMS  int64  `json:"elapsed_ms"`
	// Incumbents is the retained tail of the progress ring, oldest first.
	Incumbents []JobIncumbent `json:"incumbents,omitempty"`
	// NextSeq resumes an incumbent stream: pass it as from_seq.
	NextSeq int `json:"next_seq"`
	// Result is present once the job is done; result.partial marks a
	// best-effort answer with Gap reporting its proven distance.
	Result *SolveResponse `json:"result,omitempty"`
	// Gap is the result's relative bound gap: 0 for a proven optimum, -1
	// when unknown.
	Gap float64 `json:"gap"`
	// Error is present for failed jobs.
	Error *Error `json:"error,omitempty"`
}

// NewJobResponse converts a job snapshot into its wire form.
func NewJobResponse(st jobs.Status) *JobResponse {
	resp := &JobResponse{
		APIVersion:  Version,
		JobID:       st.ID,
		State:       string(st.State),
		Fingerprint: repro.Fingerprint(st.Request.Tree),
		DeadlineMS:  st.Request.Deadline.Milliseconds(),
		NextSeq:     st.NextSeq,
		Gap:         st.Gap(),
	}
	if st.Planned {
		resp.Algorithm = string(st.Plan.Algorithm)
		resp.Portfolio = st.Plan.Portfolio
		resp.Heuristic = string(st.Plan.Heuristic)
		resp.PlanReason = st.Plan.Reason
	} else if st.Request.Algorithm != "" {
		resp.Algorithm = string(st.Request.Algorithm)
	}
	end := time.Now()
	if st.State.Terminal() {
		end = st.Finished
	}
	resp.ElapsedMS = end.Sub(st.Submitted).Milliseconds()
	for _, inc := range st.Incumbents {
		resp.Incumbents = append(resp.Incumbents, NewJobIncumbent(inc))
	}
	if st.Result != nil {
		resp.Result = NewSolveResponse(st.Request.Tree, st.Result, repro.CacheMiss)
	}
	if st.State == jobs.StateFailed && st.Err != nil {
		resp.Error = FromError(st.Err)
	}
	return resp
}
