package api

import (
	"fmt"

	"repro"
)

// This file is the wire contract of the elastic membership layer: the
// member-admin request and the three migration push payloads. Pushes are
// internal node-to-node traffic, but they share the public DTO style so
// operators can replay or inspect them with curl.

// MembersUpdateRequest drives POST /v1/cluster/members. With Epoch 0 the
// receiver treats the list as a proposal and mints the next epoch itself
// (the operator path: curl a new seed list at any one node); a non-zero
// Epoch is an already-numbered view being relayed between nodes, adopted
// only if it is newer than the receiver's.
type MembersUpdateRequest struct {
	Epoch   uint64   `json:"epoch,omitempty"`
	Members []string `json:"members"`
}

// MembersUpdateResponse reports the view after the update.
type MembersUpdateResponse struct {
	APIVersion string   `json:"api_version"`
	Applied    bool     `json:"applied"` // false: the view was stale or duplicate
	Epoch      uint64   `json:"epoch"`
	Members    []string `json:"members"`
}

// MigratedResult is one warm result-cache entry in flight between nodes.
// The cache key is node-independent (fingerprint + normalized solve
// parameters), so it travels verbatim; the outcome travels as the spec
// plus the assignment by node/satellite *names*, and the adopter rebuilds
// the in-memory form against its own decoded tree — the same re-anchoring
// the cross-tree cache hit path performs locally.
type MigratedResult struct {
	Key        string            `json:"key"`
	Spec       *repro.Spec       `json:"spec"`
	Algorithm  string            `json:"algorithm"`
	Assignment map[string]string `json:"assignment"`
	Exact      bool              `json:"exact,omitempty"`
	LowerBound float64           `json:"lower_bound,omitempty"`
	Work       int               `json:"work,omitempty"`
	ElapsedUS  int64             `json:"elapsed_us,omitempty"`
}

// MigrateResultsRequest is the POST /v1/migrate/cache payload.
type MigrateResultsRequest struct {
	Entries []MigratedResult `json:"entries"`
}

// MigratedSession is one session snapshot in flight: the current tree,
// its revision counter, the solve defaults captured at open, and the
// last solved assignment as a warm hint. The adopter re-opens the
// session under the same ID; compiled plans and bound caches are rebuilt
// locally (they are derived state).
type MigratedSession struct {
	ID       string            `json:"id"`
	Spec     *repro.Spec       `json:"spec"`
	Revision int               `json:"revision"`
	Defaults SolveRequest      `json:"defaults"`
	Warm     map[string]string `json:"warm,omitempty"`
}

// MigrateSessionsRequest is the POST /v1/migrate/sessions payload.
type MigrateSessionsRequest struct {
	Sessions []MigratedSession `json:"sessions"`
}

// MigratedBound is one proven bound-cache entry: a subtree Merkle hash
// with its proven lower bound (and, when complete, the optimal pattern).
// Entries are never wrong — at worst they never match a hash again — so
// they migrate to any node that might re-solve overlapping instances.
type MigratedBound struct {
	Hash     string  `json:"hash"` // hex-encoded subtree Merkle hash
	Root     bool    `json:"root,omitempty"`
	Sats     int32   `json:"sats"`
	Bands    int32   `json:"bands"`
	LB       float64 `json:"lb"`
	Complete bool    `json:"complete,omitempty"`
	Pattern  []bool  `json:"pattern,omitempty"`
}

// MigrateBoundsRequest is the POST /v1/migrate/bounds payload.
type MigrateBoundsRequest struct {
	Entries []MigratedBound `json:"entries"`
}

// MigrateResponse acknowledges a migration push.
type MigrateResponse struct {
	APIVersion string `json:"api_version"`
	Adopted    int    `json:"adopted"`
}

// AssignmentNames renders an assignment as the wire map of processing
// node name → "host" | satellite name (the SolveResponse form).
func AssignmentNames(t *repro.Tree, a *repro.Assignment) map[string]string {
	return assignmentNames(t, a)
}

// AssignmentFromNames is the inverse of AssignmentNames: it rebuilds an
// in-memory assignment on t from the wire map. Every processing node of
// t must be placed on "host" or a satellite name t knows.
func AssignmentFromNames(t *repro.Tree, placed map[string]string) (*repro.Assignment, error) {
	byName := make(map[string]repro.Location)
	byName["host"] = repro.Host
	for _, sat := range t.Satellites() {
		byName[sat.Name] = repro.OnSatellite(sat.ID)
	}
	a := repro.NewAssignment(t)
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.IsLeaf() {
			continue // sensors are pinned; not part of the decision
		}
		where, ok := placed[n.Name]
		if !ok {
			return nil, fmt.Errorf("api: assignment misses node %q", n.Name)
		}
		loc, ok := byName[where]
		if !ok {
			return nil, fmt.Errorf("api: assignment places %q on unknown location %q", n.Name, where)
		}
		a.Set(id, loc)
	}
	return a, nil
}
