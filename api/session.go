package api

import (
	"fmt"

	"repro"
)

// Mutation op names of the session wire API. Each op maps onto one
// repro.Mutation type; Compile performs the translation.
const (
	OpWeightUpdate    = "weight-update"
	OpAttachSubtree   = "attach"
	OpDetachSubtree   = "detach"
	OpSatelliteChange = "satellite-change"
)

// Mutation is the wire form of one tree edit. Op selects the kind; the
// other fields are op-specific and addressed by name (names are the
// stable node handle across revisions — numeric IDs are renumbered when
// subtrees detach).
type Mutation struct {
	// Op: weight-update | attach | detach | satellite-change.
	Op string `json:"op"`
	// Node names the edited node (weight-update, detach) or the sensor
	// (satellite-change).
	Node string `json:"node,omitempty"`
	// HostTime/SatTime/UpComm drift the named node's profile
	// (weight-update); absent fields keep their current value.
	HostTime *float64 `json:"host_time,omitempty"`
	SatTime  *float64 `json:"sat_time,omitempty"`
	UpComm   *float64 `json:"comm,omitempty"`
	// Parent and Subtree describe an attach: the fragment (in Spec form;
	// rows with an empty parent attach under Parent) grafts as Parent's
	// new rightmost subtree.
	Parent  string      `json:"parent,omitempty"`
	Subtree *repro.Spec `json:"subtree,omitempty"`
	// Satellite names the destination satellite (satellite-change);
	// unknown names register a new satellite.
	Satellite string `json:"satellite,omitempty"`
}

// Compile translates the wire mutation into its in-process form,
// rejecting unknown ops and op/field mismatches as CodeInvalidRequest.
func (m *Mutation) Compile() (repro.Mutation, error) {
	bad := func(format string, args ...any) (repro.Mutation, error) {
		return nil, &Error{Code: CodeInvalidRequest, Message: fmt.Sprintf(format, args...)}
	}
	switch m.Op {
	case OpWeightUpdate:
		if m.Node == "" {
			return bad("weight-update: missing node")
		}
		if m.HostTime == nil && m.SatTime == nil && m.UpComm == nil {
			return bad("weight-update on %q changes nothing", m.Node)
		}
		return repro.WeightUpdate{Node: m.Node, HostTime: m.HostTime, SatTime: m.SatTime, UpComm: m.UpComm}, nil
	case OpAttachSubtree:
		if m.Parent == "" || m.Subtree == nil {
			return bad("attach: missing parent or subtree")
		}
		return repro.AttachSubtree{Parent: m.Parent, Subtree: m.Subtree}, nil
	case OpDetachSubtree:
		if m.Node == "" {
			return bad("detach: missing node")
		}
		return repro.DetachSubtree{Node: m.Node}, nil
	case OpSatelliteChange:
		if m.Node == "" || m.Satellite == "" {
			return bad("satellite-change: missing node or satellite")
		}
		return repro.SatelliteChange{Sensor: m.Node, Satellite: m.Satellite}, nil
	case "":
		return bad("mutation: missing op")
	default:
		return nil, &Error{
			Code:    CodeInvalidRequest,
			Message: fmt.Sprintf("unknown mutation op %q", m.Op),
			Details: map[string]string{"known": OpWeightUpdate + ", " + OpAttachSubtree + ", " + OpDetachSubtree + ", " + OpSatelliteChange},
		}
	}
}

// CompileMutations translates a batch, failing on the first bad entry.
func CompileMutations(wire []Mutation) ([]repro.Mutation, error) {
	if len(wire) == 0 {
		return nil, &Error{Code: CodeInvalidRequest, Message: "empty mutation list"}
	}
	out := make([]repro.Mutation, len(wire))
	for i := range wire {
		m, err := wire[i].Compile()
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// OpenSessionRequest opens a revisioned session on one instance. The
// embedded SolveRequest's spec is the initial tree and its parameters
// become the session's solve defaults.
type OpenSessionRequest struct {
	SolveRequest
}

// SessionState is the wire snapshot of a session: its server-assigned ID,
// how many mutation batches have been applied, and the current revision's
// identity and size.
type SessionState struct {
	SessionID   string `json:"session_id"`
	Revision    int    `json:"revision"`
	Fingerprint string `json:"fingerprint"`
	Nodes       int    `json:"nodes"`
	Satellites  int    `json:"satellites"`
}

// SessionResponse reports a session's state, plus the solve result for
// calls that resolved (mutate with resolve=true, and resolve itself).
type SessionResponse struct {
	APIVersion string         `json:"api_version"`
	Session    SessionState   `json:"session"`
	Response   *SolveResponse `json:"response,omitempty"`
}

// NewSessionState snapshots a live session into its wire form. Tree and
// revision are read as one consistent pair, so a concurrent mutate can
// never pair revision N with revision N-1's fingerprint.
func NewSessionState(id string, sess *repro.Session) SessionState {
	t, rev := sess.Snapshot()
	return SessionState{
		SessionID:   id,
		Revision:    rev,
		Fingerprint: repro.Fingerprint(t),
		Nodes:       t.Len(),
		Satellites:  len(t.Satellites()),
	}
}

// MutateRequest advances a session by one revision. With Resolve set the
// server also solves the new revision (warm, through the shared cache)
// and the response carries the outcome — one round trip for the common
// drift-then-ask loop.
type MutateRequest struct {
	Mutations []Mutation `json:"mutations"`
	Resolve   bool       `json:"resolve,omitempty"`
}
