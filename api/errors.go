package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro"
)

// ErrorCode is a stable, machine-readable failure class. Codes are part
// of the wire contract: clients branch on them, so existing values never
// change meaning and new failure classes get new codes.
type ErrorCode string

const (
	// CodeInvalidRequest: the request body is malformed — undecodable
	// JSON, a missing or inconsistent spec, negative parameters.
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeInvalidTree: the spec decoded but the tree violates the
	// model's structural invariants (repro.ErrInvalidTree).
	CodeInvalidTree ErrorCode = "invalid_tree"
	// CodeUnknownAlgorithm: the request names no registered solver
	// (repro.ErrUnknownAlgorithm). Details list the known names.
	CodeUnknownAlgorithm ErrorCode = "unknown_algorithm"
	// CodeBudgetExceeded: an exact search hit its exploration budget
	// before proving optimality (repro.ErrBudgetExceeded).
	CodeBudgetExceeded ErrorCode = "budget_exceeded"
	// CodeCanceled: the solve was stopped by deadline or cancellation
	// (repro.ErrCanceled).
	CodeCanceled ErrorCode = "canceled"
	// CodeNotFound: the request addressed a session ID that does not
	// exist, has expired, or was evicted — re-open to continue. (Unknown
	// node or satellite names inside a mutation are CodeInvalidRequest:
	// they fail the mutation batch, not the session lookup.)
	CodeNotFound ErrorCode = "not_found"
	// CodeOverloaded: the server's concurrency limiter rejected the
	// request; retry with backoff.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeUnavailable: the request is pinned to a cluster peer (a
	// session's owner) that cannot be reached right now; retry with
	// backoff — if the owner is gone for good the retry turns into
	// not_found once its membership state settles.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeStaleEpoch: a migration push or membership update carried an
	// epoch below the receiver's current view — the sender acted on an
	// outdated ring and its state must not be adopted.
	CodeStaleEpoch ErrorCode = "stale_epoch"
	// CodeInternal: an unclassified server-side failure.
	CodeInternal ErrorCode = "internal"
)

// HTTPStatus maps the code onto the HTTP status the /v1 endpoints use.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeInvalidRequest, CodeUnknownAlgorithm:
		return http.StatusBadRequest
	case CodeInvalidTree, CodeBudgetExceeded:
		return http.StatusUnprocessableEntity
	case CodeNotFound:
		return http.StatusNotFound
	case CodeCanceled:
		return http.StatusGatewayTimeout
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeStaleEpoch:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// Error is the structured wire form of a failure. It implements error so
// conversion helpers can return it directly.
type Error struct {
	Code    ErrorCode         `json:"code"`
	Message string            `json:"message"`
	Details map[string]string `json:"details,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// FromError classifies err into its wire form using the structured error
// taxonomy of the repro package: the sentinel matched with errors.Is
// picks the code, and the detail types recovered with errors.As populate
// Details. Unrecognised errors become CodeInternal. A nil err returns
// nil; an err that already is an *Error passes through unchanged.
func FromError(err error) *Error {
	if err == nil {
		return nil
	}
	var wire *Error
	if errors.As(err, &wire) {
		return wire
	}
	e := &Error{Message: err.Error()}
	switch {
	case errors.Is(err, repro.ErrUnknownAlgorithm):
		e.Code = CodeUnknownAlgorithm
		var ua *repro.UnknownAlgorithmError
		if errors.As(err, &ua) {
			known := make([]string, len(ua.Known))
			for i, k := range ua.Known {
				known[i] = string(k)
			}
			e.Details = map[string]string{
				"algorithm": string(ua.Name),
				"known":     strings.Join(known, ", "),
			}
		}
	case errors.Is(err, repro.ErrBudgetExceeded):
		e.Code = CodeBudgetExceeded
	case errors.Is(err, repro.ErrCanceled):
		e.Code = CodeCanceled
		var ce *repro.CanceledError
		if errors.As(err, &ce) {
			e.Details = map[string]string{"algorithm": string(ce.Algorithm)}
			if errors.Is(ce.Cause, context.DeadlineExceeded) {
				e.Details["cause"] = "deadline_exceeded"
			} else {
				e.Details["cause"] = "canceled"
			}
		}
	case errors.Is(err, repro.ErrInvalidTree):
		e.Code = CodeInvalidTree
	case errors.Is(err, context.DeadlineExceeded):
		// Raw context errors reach here when the request's own context
		// expires outside a solver hot loop (e.g. while parked on a
		// shared in-flight solve, or a batch item never dispatched).
		e.Code = CodeCanceled
		e.Details = map[string]string{"cause": "deadline_exceeded"}
	case errors.Is(err, context.Canceled):
		e.Code = CodeCanceled
		e.Details = map[string]string{"cause": "canceled"}
	default:
		e.Code = CodeInternal
	}
	return e
}
