package repro_test

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// exampleTree is the wearable scenario of the README: a gateway host,
// one sensor box, and a three-stage reasoning chain over a raw stream.
func exampleTree() *repro.Tree {
	b := repro.NewBuilder()
	box := b.Satellite("wrist-box")
	fuse := b.Root("fuse", 2, 0)
	feat := b.Child(fuse, "features", 1.5, 4.5, 0.25)
	filt := b.Child(feat, "filter", 1, 3, 0.5)
	b.Sensor(filt, "ppg-probe", box, 6)
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}

// ExampleSolver_Solve finds the optimal assignment with the paper's
// adapted SSB algorithm (exact, the default).
func ExampleSolver_Solve() {
	solver := repro.NewSolver()
	out, err := solver.Solve(context.Background(), exampleTree())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delay=%.2f exact=%v\n", out.Delay, out.Exact)
	fmt.Print(out.Assignment.Describe(exampleTree()))
	// Output:
	// delay=7.00 exact=true
	// host:          fuse features
	// satellite wrist-box: filter
}

// ExampleService_Solve shows the serving layer: identical instances are
// answered from the fingerprint-keyed cache.
func ExampleService_Solve() {
	svc := repro.NewService(nil, 128)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		out, status, err := svc.Solve(ctx, exampleTree())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("solve %d: delay=%.2f cache=%v\n", i, out.Delay, status)
	}
	// Output:
	// solve 0: delay=7.00 cache=miss
	// solve 1: delay=7.00 cache=hit
}

// ExampleService_OpenSession walks a dynamic workload: a session applies
// mutations as atomic revisions and re-solves warm, and a revision that
// returns to an earlier shape is a cache hit.
func ExampleService_OpenSession() {
	svc := repro.NewService(nil, 128)
	sess, err := svc.OpenSession(exampleTree())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	resolve := func(tag string) {
		out, status, err := sess.Resolve(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: rev=%d delay=%.2f cache=%v\n", tag, sess.Revision(), out.Delay, status)
	}
	resolve("baseline")

	slow := 9.0
	if err := sess.Mutate(repro.WeightUpdate{Node: "filter", SatTime: &slow}); err != nil {
		log.Fatal(err)
	}
	resolve("throttled")

	fast := 3.0
	if err := sess.Mutate(repro.WeightUpdate{Node: "filter", SatTime: &fast}); err != nil {
		log.Fatal(err)
	}
	resolve("recovered")
	// Output:
	// baseline: rev=0 delay=7.00 cache=miss
	// throttled: rev=1 delay=10.50 cache=miss
	// recovered: rev=2 delay=7.00 cache=hit
}
