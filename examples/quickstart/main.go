// Quickstart: build a small context reasoning tree by hand, solve it with
// the paper's algorithm through the Solver service, and inspect the
// assignment — the five-minute tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A wearable gateway (host) with one sensor box (satellite). The box
	// is slower than the gateway (s > h) but shipping raw samples is far
	// costlier than shipping extracted features.
	b := repro.NewBuilder()
	box := b.Satellite("wrist-box")

	fuse := b.Root("fuse", 2, 0)                      // final fusion on the gateway
	feat := b.Child(fuse, "features", 1.5, 4.5, 0.25) // h=1.5, s=4.5, feature frame 0.25
	filt := b.Child(feat, "filter", 1.0, 3.0, 0.5)    // band-pass filter
	b.Sensor(filt, "ppg-probe", box, 6)               // raw PPG stream: 6 per frame

	tree, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree.Render())

	// The Solver service is reusable and concurrency-safe; its defaults
	// (here: a guard deadline) apply to every call and can be overridden
	// per call with the same functional options.
	ctx := context.Background()
	solver := repro.NewSolver(repro.WithTimeout(5 * time.Second))

	// Solve with the paper's adapted SSB algorithm (exact, the default).
	sol, err := solver.Solve(ctx, tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal end-to-end delay: %.4g\n\n", sol.Delay)
	fmt.Println(sol.Assignment.Describe(tree))
	fmt.Println(sol.Breakdown.Report(tree))

	// Compare against the two trivial placements.
	for _, alg := range []repro.Algorithm{repro.AllHost, repro.MaxDistribution} {
		out, err := solver.Solve(ctx, tree, repro.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s delay %.4g (%.2fx optimal)\n", out.Algorithm, out.Delay, out.Delay/sol.Delay)
	}

	// Replay the optimum on the discrete-event testbed: the paper-barrier
	// makespan equals the analytic delay exactly.
	res, err := repro.Simulate(tree, sol.Assignment, repro.SimConfig{Mode: repro.PaperBarrier})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated makespan (paper model): %.4g\n", res.Makespan)
}
