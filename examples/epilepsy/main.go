// Epilepsy tele-monitoring: the paper's Figure-1 motivating application.
// A patient's mobile terminal fuses ECG features from sensor box 1 with an
// activity classification from the accelerometers on sensor box 2 to
// forecast seizures; the earlier the warning, the better. This example
// finds the delay-optimal split of the reasoning chain across the terminal
// and the boxes, shows how it beats both trivial placements and the
// bottleneck (Bokhari SB) objective, and streams multiple frames through
// the simulator to measure the monitoring pipeline's sustained rate.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/workload"
)

func main() {
	tree := workload.Epilepsy()
	fmt.Println("Epilepsy tele-monitoring reasoning procedure (paper Figure 1):")
	fmt.Println(tree.Render())

	ctx := context.Background()
	solver := repro.NewSolver(repro.WithSeed(7))

	// The paper's algorithm: minimise end-to-end delay.
	opt, err := solver.Solve(ctx, tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal delay %.4g — the terminal learns of a seizure risk %.4g time units after capture\n\n", opt.Delay, opt.Delay)
	fmt.Println(opt.Assignment.Describe(tree))

	// Baselines, including Bokhari's bottleneck objective: minimising the
	// busiest resource is NOT the same as minimising the time to the alarm.
	fmt.Println("policy comparison:")
	fmt.Printf("  %-28s %8s %10s\n", "policy", "delay", "vs optimal")
	show := func(name string, delay float64) {
		fmt.Printf("  %-28s %8.4g %9.2fx\n", name, delay, delay/opt.Delay)
	}
	show("adapted-ssb (paper)", opt.Delay)
	for _, alg := range []repro.Algorithm{repro.AllHost, repro.MaxDistribution, repro.GreedyHost, repro.Genetic} {
		out, err := solver.Solve(ctx, tree, repro.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		show(string(alg), out.Delay)
	}
	sb, err := exact.BruteForceObjective(tree, exact.BottleneckObjective, 0)
	if err != nil {
		log.Fatal(err)
	}
	bd, err := eval.Evaluate(tree, sb.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	show("bokhari-sb (minimax)", bd.Delay)

	// Sustained monitoring: 10 frames arriving every 2 time units.
	res, err := repro.Simulate(tree, opt.Assignment, repro.SimConfig{
		Mode: repro.Overlapped, Frames: 10, Interval: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipelined monitoring (10 frames, every 2u): throughput %.3g fps\n", res.Throughput)
	worst := 0.0
	for _, f := range res.Frames {
		if l := f.Latency(); l > worst {
			worst = l
		}
	}
	fmt.Printf("worst frame latency %.4g (single-frame analytic delay %.4g)\n", worst, opt.Delay)
}
