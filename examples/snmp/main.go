// SNMP network monitoring: the second application domain the paper's §3
// names. A management station (host) reasons over counters smoothed on
// three router agents (satellites). This example shows how the optimal cut
// moves as the routers' spare CPU shrinks: with idle routers the smoothing
// runs on the agents; once the routers are loaded (their effective speed
// drops), the optimum pulls work back to the station — the heterogeneity
// trade-off the paper motivates. The whole slowdown sweep is one
// SolveBatch call per policy: every variant solves concurrently on the
// Solver service's worker pool, with results in sweep order.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	base := workload.SNMP()
	fmt.Println("SNMP monitoring reasoning procedure:")
	fmt.Println(base.Render())

	slowdowns := []float64{0.5, 1, 2, 4, 8}
	trees := make([]*repro.Tree, len(slowdowns))
	for i, s := range slowdowns {
		trees[i] = base.ScaleProfiles(1, s, 1)
	}

	ctx := context.Background()
	solver := repro.NewSolver(repro.WithParallelism(len(trees)))
	batch := func(alg repro.Algorithm) []repro.BatchResult {
		results, err := solver.SolveBatch(ctx, trees, repro.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				log.Fatalf("%s at x%.2g: %v", alg, slowdowns[i], r.Err)
			}
		}
		return results
	}
	optimal := batch(repro.AdaptedSSB)
	allHost := batch(repro.AllHost)
	maxDist := batch(repro.MaxDistribution)

	fmt.Printf("%-22s %10s %10s %10s %12s\n",
		"router slowdown", "optimal", "all-host", "max-dist", "CRUs offloaded")
	for i, slowdown := range slowdowns {
		opt := optimal[i].Outcome
		offloaded := 0
		for _, id := range trees[i].Preorder() {
			if trees[i].Node(id).Kind == model.Processing && !opt.Assignment.At(id).IsHost() {
				offloaded++
			}
		}
		fmt.Printf("%-22s %10.4g %10.4g %10.4g %12d\n",
			fmt.Sprintf("x%.2g", slowdown),
			opt.Delay, allHost[i].Outcome.Delay, maxDist[i].Outcome.Delay, offloaded)
	}

	// Detail view at the default profile.
	opt, err := solver.Solve(ctx, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimal assignment at x1:")
	fmt.Println(opt.Assignment.Describe(base))
	fmt.Println(opt.Breakdown.Report(base))
}
