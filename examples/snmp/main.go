// SNMP network monitoring: the second application domain the paper's §3
// names. A management station (host) reasons over counters smoothed on
// three router agents (satellites). This example shows how the optimal cut
// moves as the routers' spare CPU shrinks: with idle routers the smoothing
// runs on the agents; once the routers are loaded (their effective speed
// drops), the optimum pulls work back to the station — the heterogeneity
// trade-off the paper motivates.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	base := workload.SNMP()
	fmt.Println("SNMP monitoring reasoning procedure:")
	fmt.Println(base.Render())

	fmt.Printf("%-22s %10s %10s %10s %12s\n",
		"router slowdown", "optimal", "all-host", "max-dist", "CRUs offloaded")
	for _, slowdown := range []float64{0.5, 1, 2, 4, 8} {
		tree := base.ScaleProfiles(1, slowdown, 1)
		opt, err := repro.Solve(tree)
		if err != nil {
			log.Fatal(err)
		}
		allHost, err := repro.SolveWith(repro.Request{Tree: tree, Algorithm: repro.AllHost})
		if err != nil {
			log.Fatal(err)
		}
		maxDist, err := repro.SolveWith(repro.Request{Tree: tree, Algorithm: repro.MaxDistribution})
		if err != nil {
			log.Fatal(err)
		}
		offloaded := 0
		for _, id := range tree.Preorder() {
			if tree.Node(id).Kind == model.Processing && !opt.Assignment.At(id).IsHost() {
				offloaded++
			}
		}
		fmt.Printf("%-22s %10.4g %10.4g %10.4g %12d\n",
			fmt.Sprintf("x%.2g", slowdown), opt.Delay, allHost.Delay, maxDist.Delay, offloaded)
	}

	// Detail view at the default profile.
	opt, err := repro.Solve(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimal assignment at x1:")
	fmt.Println(opt.Assignment.Describe(base))
	fmt.Println(opt.Breakdown.Report(base))
}
