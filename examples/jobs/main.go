// Anytime jobs: start the crserve HTTP stack in-process, put a hard
// instance under a deadline it cannot meet exactly and inspect the
// returned partial result — feasible, with a proven lower bound — then
// submit it unconstrained and watch the incumbent stream close its
// bound gap live over Server-Sent Events. A final rushed resubmit shows
// the job tier's bound memoization: once a search has proven the
// instance, the recorded optimum replays instantly, deadline or not.
// The same calls work against a standalone `crserve -addr :8080` with
// curl (see the README's "Anytime jobs").
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/api"
	"repro/internal/httpserve"
	"repro/internal/workload"
)

func main() {
	// --- the server side: what `crserve` assembles from its flags ---
	service := repro.NewService(repro.NewSolver(), 1024)
	handler := httpserve.New(httpserve.Config{
		Service:        service,
		RequestTimeout: 10 * time.Second,
		MaxInflight:    64,
		JobWorkers:     2,
	})
	defer handler.Close()
	srv := &http.Server{Handler: handler}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// A 40-CRU tree: hundreds of milliseconds of branch-and-bound, far
	// too long to sit on a synchronous request, short enough to watch.
	rng := rand.New(rand.NewSource(1))
	spec := repro.ToSpec(workload.Random(rng, workload.DefaultRandomSpec(40, 3)), "hard-40")

	// --- 1. under a deadline it cannot meet exactly (cold cache) ---
	var rushed api.JobResponse
	mustPost(base+"/v1/jobs", api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: spec, Algorithm: string(repro.BranchBound), Budget: 1 << 28},
		DeadlineMS:   50,
	}, &rushed)
	partial := pollDone(base, rushed.JobID)
	fmt.Printf("deadline 50ms: state=%s partial=%v delay=%.4g lower_bound=%.4g gap=%.1f%%\n\n",
		partial.State, partial.Result.Partial, partial.Result.Delay,
		partial.Result.LowerBound, 100*partial.Gap)

	// --- 2. unconstrained: watch the incumbent stream close the gap ---
	var job api.JobResponse
	mustPost(base+"/v1/jobs", api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: spec, Algorithm: string(repro.BranchBound), Budget: 1 << 28},
	}, &job)
	fmt.Printf("submitted job %s  state=%s\n\n", job.JobID, job.State)

	final := streamEvents(base, job.JobID)
	fmt.Printf("\njob finished: state=%s exact=%v delay=%.4g in %dms (plan: %s)\n\n",
		final.State, final.Result.Exact, final.Result.Delay, final.ElapsedMS, final.PlanReason)
	fmt.Printf("exact optimum %.4g — the 50ms deadline cost %.2f%% delay\n",
		final.Result.Delay,
		100*(partial.Result.Delay-final.Result.Delay)/final.Result.Delay)

	// --- 3. rushed again: the bound cache replays the recorded proof ---
	var again api.JobResponse
	mustPost(base+"/v1/jobs", api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: spec, Algorithm: string(repro.BranchBound), Budget: 1 << 28},
		DeadlineMS:   50,
	}, &again)
	replay := pollDone(base, again.JobID)
	fmt.Printf("same deadline, resubmitted: state=%s exact=%v delay=%.4g in %dms — memoized proof, no search\n",
		replay.State, replay.Result.Exact, replay.Result.Delay, replay.ElapsedMS)
}

// streamEvents consumes the job's SSE feed, printing each improving
// incumbent, and returns the terminal response from the "done" event.
func streamEvents(base, id string) *api.JobResponse {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	var event string
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "incumbent":
				var inc api.JobIncumbent
				if err := json.Unmarshal([]byte(data), &inc); err != nil {
					log.Fatal(err)
				}
				gap := "no bound yet"
				if inc.LowerBound > 0 {
					gap = fmt.Sprintf("gap %.1f%%", 100*inc.Gap)
				}
				fmt.Printf("  incumbent #%d  delay=%.4g  %-12s  after %d nodes, %dms\n",
					inc.Seq, inc.Delay, gap, inc.Work, inc.ElapsedMS)
			case "done":
				var final api.JobResponse
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					log.Fatal(err)
				}
				return &final
			}
		}
	}
	log.Fatalf("stream for %s ended without a done event: %v", id, scanner.Err())
	return nil
}

// pollDone long-polls GET /v1/jobs/{id}?wait= until the job is terminal.
func pollDone(base, id string) *api.JobResponse {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?wait=1000")
		if err != nil {
			log.Fatal(err)
		}
		var out api.JobResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		switch out.State {
		case "done", "failed", "canceled", "expired":
			return &out
		}
	}
}

func mustPost(url string, req, resp any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var apiErr api.Error
		json.NewDecoder(r.Body).Decode(&apiErr)
		log.Fatalf("POST %s: %d %s %s", url, r.StatusCode, apiErr.Code, apiErr.Message)
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		log.Fatal(err)
	}
}
