// Scaling study: how the paper's exact algorithm behaves as the reasoning
// tree grows, next to the brute-force search space it avoids. Run with no
// arguments; sizes are fixed so the output is comparable across machines.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/exact"
	"repro/internal/workload"
)

func main() {
	fmt.Printf("%-8s %-12s %-14s %-12s %-12s %-12s\n",
		"CRUs", "sensors", "search space", "adapted-ssb", "pareto-dp", "genetic")
	ctx := context.Background()
	// One service for the whole sweep: the seed and the guard deadline are
	// defaults; the algorithm varies per call.
	solver := repro.NewSolver(repro.WithSeed(5), repro.WithTimeout(time.Minute))
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{15, 31, 63, 127, 255} {
		tree := workload.Random(rng, workload.DefaultRandomSpec(n, 4))
		space := exact.CountAssignments(tree)

		timeIt := func(alg repro.Algorithm) (time.Duration, float64) {
			out, err := solver.Solve(ctx, tree, repro.WithAlgorithm(alg))
			if err != nil {
				log.Fatalf("%s at n=%d: %v", alg, n, err)
			}
			return out.Elapsed.Round(time.Microsecond), out.Delay
		}
		tSSB, dSSB := timeIt(repro.AdaptedSSB)
		tPar, dPar := timeIt(repro.ParetoDP)
		tGA, dGA := timeIt(repro.Genetic)

		if dPar != dSSB {
			log.Fatalf("exact solvers disagree at n=%d: %v vs %v", n, dSSB, dPar)
		}
		gap := 100 * (dGA - dSSB) / dSSB
		fmt.Printf("%-8d %-12d %-14.3g %-12v %-12v %v (gap %.1f%%)\n",
			n, tree.SensorCount(), space, tSSB, tPar, tGA, gap)
	}
	fmt.Println("\nThe exact graph algorithm stays polynomial while the assignment space explodes;")
	fmt.Println("the genetic heuristic trades optimality for a fixed evaluation budget.")
}
