// Dynamic workloads: open a Session on a live context-reasoning tree and
// walk a drifting-weights scenario — the sensor box heats up, its
// processing slows, the optimal cut migrates — re-solving every revision
// warm instead of from scratch. Along the way the example shows the three
// mechanisms the incremental engine stacks: mutation batches as atomic
// revisions, delta fingerprinting (revisit an old shape, hit the cache),
// and warm-started solves seeded with the previous optimum.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A roadside gateway (host) fusing two camera boxes (satellites).
	b := repro.NewBuilder()
	north := b.Satellite("cam-north")
	south := b.Satellite("cam-south")

	fuse := b.Root("fuse", 3, 0)
	trackN := b.Child(fuse, "track-north", 2, 5, 0.6)
	trackS := b.Child(fuse, "track-south", 2, 5, 0.6)
	b.Sensor(trackN, "lens-north", north, 4)
	b.Sensor(trackS, "lens-south", south, 4)

	tree, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	svc := repro.NewService(nil, 1024)
	sess, err := svc.OpenSession(tree)
	if err != nil {
		log.Fatal(err)
	}

	report := func(tag string) {
		out, status, err := sess.Resolve(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s rev=%d delay=%.3f cache=%-6s fp=%.12s…\n",
			tag, sess.Revision(), out.Delay, status, sess.Fingerprint())
	}
	report("baseline")

	// The north box's tracker slows as the unit throttles: drift its
	// satellite time upward across several revisions. Each Mutate is one
	// atomic revision; each Resolve is warm-started with the previous
	// optimum projected onto the new revision.
	for _, satTime := range []float64{6.5, 8, 9.5, 11} {
		err := sess.Mutate(repro.WeightUpdate{Node: "track-north", SatTime: &satTime})
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("throttle s=%.1f", satTime))
	}

	// The heat wave passes: return to the original profile. The revision
	// has the baseline's fingerprint again, so the shared cache answers
	// without running a solver at all.
	cool := 5.0
	if err := sess.Mutate(repro.WeightUpdate{Node: "track-north", SatTime: &cool}); err != nil {
		log.Fatal(err)
	}
	report("cooled (cache hit)")

	// Topology drift: a third camera box joins, bringing its own subtree,
	// then an old one is decommissioned.
	err = sess.Mutate(repro.AttachSubtree{
		Parent: "fuse",
		Subtree: &repro.Spec{
			Satellites: []string{"cam-east"},
			CRUs:       []repro.SpecCRU{{Name: "track-east", HostTime: 2, SatTime: 5, Comm: 0.6}},
			Sensors:    []repro.SpecSensor{{Name: "lens-east", Parent: "track-east", Satellite: "cam-east", Comm: 4}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	report("cam-east joins")

	if err := sess.Mutate(repro.DetachSubtree{Node: "track-south"}); err != nil {
		log.Fatal(err)
	}
	report("cam-south retires")

	st := svc.Stats()
	fmt.Printf("\ncache after the run: %d misses, %d hits (capacity %d)\n",
		st.Misses, st.Hits, st.Capacity)
}
