// Server round trip: start the crserve HTTP stack in-process, then act as
// a wire-API client — solve the paper's tree, watch the repeat request
// come back as a cache hit, solve a batch, simulate the winning
// assignment, and list the algorithm registry. Everything on the wire is
// the versioned JSON of package api; the same calls work against a
// standalone `crserve -addr :8080` with curl.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro"
	"repro/api"
	"repro/internal/httpserve"
	"repro/internal/workload"
)

func main() {
	// --- the server side: what `crserve` assembles from its flags ---
	service := repro.NewService(repro.NewSolver(), 1024)
	srv := &http.Server{Handler: httpserve.New(httpserve.Config{
		Service:        service,
		RequestTimeout: 10 * time.Second,
		MaxInflight:    64,
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// --- the client side: JSON DTOs over POST /v1/... ---
	spec := repro.ToSpec(workload.PaperTree(), "paper-fig9")

	var first api.SolveResponse
	mustPost(base+"/v1/solve", api.SolveRequest{Spec: spec}, &first)
	fmt.Printf("solve     %-22s delay=%-8.4g cached=%-5v fingerprint=%s\n",
		first.Algorithm, first.Delay, first.Cached, first.Fingerprint)

	// The identical instance again: answered from the result cache.
	var again api.SolveResponse
	mustPost(base+"/v1/solve", api.SolveRequest{Spec: spec}, &again)
	fmt.Printf("repeat    %-22s delay=%-8.4g cached=%-5v\n", again.Algorithm, again.Delay, again.Cached)

	// A batch mixes instances and per-item parameters; failures stay
	// per-item. The duplicate of the paper tree is another cache hit.
	batch := api.BatchRequest{Items: []api.SolveRequest{
		{Spec: spec},
		{Spec: repro.ToSpec(workload.PaperTree().ScaleProfiles(1, 0.5, 2), "comm-heavy")},
		{Spec: spec, Algorithm: string(repro.GreedyHost)},
	}}
	var br api.BatchResponse
	mustPost(base+"/v1/batch", batch, &br)
	for i, item := range br.Items {
		if item.Error != nil {
			fmt.Printf("batch[%d]  error %s: %s\n", i, item.Error.Code, item.Error.Message)
			continue
		}
		fmt.Printf("batch[%d]  %-22s delay=%-8.4g cached=%v\n",
			i, item.Response.Algorithm, item.Response.Delay, item.Response.Cached)
	}

	// Solve + replay on the discrete-event testbed in one call.
	var sim api.SimulateResponse
	mustPost(base+"/v1/simulate", api.SimulateRequest{
		SolveRequest: api.SolveRequest{Spec: spec},
		Mode:         "overlapped",
		Frames:       8,
		Interval:     2,
	}, &sim)
	fmt.Printf("simulate  mode=%s frames=%d makespan=%.4g throughput=%.4g\n\n",
		sim.Mode, sim.Frames, sim.Makespan, sim.Throughput)

	// The registry, as clients discover it.
	resp, err := http.Get(base + "/v1/algorithms")
	if err != nil {
		log.Fatal(err)
	}
	var algs api.AlgorithmsResponse
	if err := json.NewDecoder(resp.Body).Decode(&algs); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("%d registered algorithms:\n", len(algs.Algorithms))
	for _, a := range algs.Algorithms {
		kind := "heuristic"
		if a.Exact {
			kind = "exact"
		}
		fmt.Printf("  %-18s %-9s %s\n", a.Name, kind, a.Summary)
	}

	st := service.Stats()
	fmt.Printf("\ncache: %d hits, %d misses, %d shared, %d stored\n",
		st.Hits, st.Misses, st.Shared, st.Size)
}

func mustPost(url string, body, into any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e api.Error
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %d %s: %s", url, resp.StatusCode, e.Code, e.Message)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatalf("POST %s: decoding response: %v", url, err)
	}
}
