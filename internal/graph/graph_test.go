package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func diamond() *Multigraph {
	// 0 -> 1 -> 3 (cost 1+1) and 0 -> 2 -> 3 (cost 5+1), plus direct 0->3 (cost 10).
	g := NewMultigraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)
	return g
}

func TestShortestPathBasic(t *testing.T) {
	g := diamond()
	p, ok := g.ShortestPath(0, 3)
	if !ok || p.Weight != 2 {
		t.Fatalf("ShortestPath = %+v ok=%v, want weight 2", p, ok)
	}
	if len(p.Edges) != 2 || g.Edge(p.Edges[0]).To != 1 {
		t.Errorf("path edges = %v", p.Edges)
	}
}

func TestShortestPathAfterDisable(t *testing.T) {
	g := diamond()
	g.Disable(0) // kill 0->1
	p, ok := g.ShortestPath(0, 3)
	if !ok || p.Weight != 6 {
		t.Fatalf("after disable, weight = %v, want 6", p.Weight)
	}
	g.Disable(2) // kill 0->2
	p, ok = g.ShortestPath(0, 3)
	if !ok || p.Weight != 10 {
		t.Fatalf("after two disables, weight = %v, want 10", p.Weight)
	}
	g.Disable(4)
	if _, ok = g.ShortestPath(0, 3); ok {
		t.Fatal("expected unreachable")
	}
	if g.Connected(0, 3) {
		t.Fatal("Connected should be false")
	}
	g.Enable(4)
	if !g.Connected(0, 3) {
		t.Fatal("Connected should be true after Enable")
	}
}

func TestParallelEdges(t *testing.T) {
	g := NewMultigraph(2)
	e1 := g.AddEdge(0, 1, 5)
	e2 := g.AddEdge(0, 1, 3)
	p, ok := g.ShortestPath(0, 1)
	if !ok || p.Weight != 3 || p.Edges[0] != e2 {
		t.Fatalf("parallel edge selection wrong: %+v", p)
	}
	g.Disable(e2)
	p, ok = g.ShortestPath(0, 1)
	if !ok || p.Edges[0] != e1 {
		t.Fatalf("should fall back to e1: %+v", p)
	}
}

func TestSelfPath(t *testing.T) {
	g := NewMultigraph(3)
	p, ok := g.ShortestPath(1, 1)
	if !ok || p.Weight != 0 || len(p.Edges) != 0 {
		t.Fatalf("self path = %+v ok=%v", p, ok)
	}
	if !g.Connected(1, 1) {
		t.Fatal("node must be connected to itself")
	}
}

func TestZeroWeightEdges(t *testing.T) {
	g := NewMultigraph(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	p, ok := g.ShortestPath(0, 2)
	if !ok || p.Weight != 0 || len(p.Edges) != 2 {
		t.Fatalf("zero-weight path = %+v", p)
	}
}

func TestDAGMonotone(t *testing.T) {
	g := diamond()
	p1, ok1 := g.ShortestPath(0, 3)
	p2, ok2 := g.ShortestPathDAGMonotone(0, 3)
	if ok1 != ok2 || p1.Weight != p2.Weight {
		t.Fatalf("DAG pass disagrees: %v vs %v", p1, p2)
	}
}

func TestDAGMonotonePanicsOnBackEdge(t *testing.T) {
	g := NewMultigraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1) // back edge inside the swept range
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on back edge")
		}
	}()
	g.ShortestPathDAGMonotone(0, 2)
}

func TestNegativeWeightPanics(t *testing.T) {
	g := NewMultigraph(2)
	g.AddEdge(0, 1, -1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	g.ShortestPath(0, 1)
}

func TestClone(t *testing.T) {
	g := diamond()
	cp := g.Clone()
	cp.Disable(0)
	if g.Disabled(0) {
		t.Fatal("Clone shares disabled state")
	}
	cp.AddEdge(3, 0, 1)
	if g.NumEdges() == cp.NumEdges() {
		t.Fatal("Clone shares edge storage")
	}
	if g.NumEnabled() != 5 {
		t.Fatalf("NumEnabled = %d, want 5", g.NumEnabled())
	}
}

// randomDAG builds a random monotone DAG for cross-validation.
func randomDAG(rng *rand.Rand, n, extra int) *Multigraph {
	g := NewMultigraph(n)
	// Spine so dst is reachable.
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, float64(rng.Intn(20)))
	}
	for k := 0; k < extra; k++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		g.AddEdge(u, v, float64(rng.Intn(20)))
	}
	return g
}

func TestDijkstraVariantsAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%30
		extra := int(extraRaw) % 60
		g := randomDAG(r, n, extra)
		// Randomly disable some edges but keep reachability optional.
		for i := 0; i < g.NumEdges(); i++ {
			if r.Intn(5) == 0 {
				g.Disable(i)
			}
		}
		pHeap, okHeap := g.ShortestPath(0, n-1)
		pDense, okDense := g.ShortestPathDense(0, n-1)
		if okHeap != okDense {
			return false
		}
		if okHeap && pHeap.Weight != pDense.Weight {
			return false
		}
		pDAG, okDAG := g.ShortestPathDAGMonotone(0, n-1)
		if okHeap != okDAG {
			return false
		}
		if okHeap && pHeap.Weight != pDAG.Weight {
			return false
		}
		// Path weights must equal the sum of their edges.
		sum := 0.0
		for _, id := range pHeap.Edges {
			sum += g.Edge(id).Weight
		}
		return !okHeap || sum == pHeap.Weight
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPathEdgeChainProperty(t *testing.T) {
	// The returned edge list must be a contiguous chain from src to dst.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(80))
		p, ok := g.ShortestPath(0, n-1)
		if !ok {
			t.Fatal("spine guarantees reachability")
		}
		at := 0
		for _, id := range p.Edges {
			e := g.Edge(id)
			if e.From != at {
				t.Fatalf("broken chain at edge %d: from %d, at %d", id, e.From, at)
			}
			at = e.To
		}
		if at != n-1 {
			t.Fatalf("chain ends at %d, want %d", at, n-1)
		}
	}
}

func TestEnabledOut(t *testing.T) {
	g := diamond()
	g.Disable(0)
	var seen []int
	g.EnabledOut(0, func(e Edge) { seen = append(seen, e.ID) })
	if len(seen) != 2 {
		t.Fatalf("EnabledOut saw %v, want 2 edges", seen)
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	g := NewMultigraph(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddEdge(0, 5, 1)
}

func TestHeapOrderProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := newHeap(len(vals))
		for i, v := range vals {
			if v < 0 {
				v = -v
			}
			if v != v { // NaN would poison ordering; skip
				v = 0
			}
			h.push(i, v)
		}
		prev := -1.0
		for h.len() > 0 {
			_, p := h.pop()
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
