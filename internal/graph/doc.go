// Package graph provides the small graph toolkit the assignment algorithms
// are built on: a weighted directed multigraph with stable edge identities
// (needed because doubly weighted assignment graphs contain parallel edges
// that must be eliminated individually), shortest-path searches (binary-heap
// Dijkstra, the array-scan Dijkstra variant discussed by Hansen & Lih for
// dense graphs, and a linear-time pass for DAGs with monotone node order),
// and reachability helpers.
//
// Everything uses the standard library only; the heap is hand-rolled rather
// than container/heap to keep the inner loop allocation-free.
package graph
