package graph

import (
	"fmt"
	"math"
)

// Edge is one directed edge of a Multigraph. Weight is the cost used by the
// shortest-path searches; callers attach any extra payload by edge ID.
type Edge struct {
	ID     int
	From   int
	To     int
	Weight float64
}

// Multigraph is a directed multigraph over nodes 0..N-1. Parallel edges and
// self-loops are allowed; edges can be disabled (soft-deleted) individually,
// which is how the SSB elimination loop shrinks the graph without rebuilding
// adjacency.
type Multigraph struct {
	n        int
	edges    []Edge
	disabled []bool
	adj      [][]int // node -> edge IDs leaving it
}

// NewMultigraph returns an empty multigraph with n nodes.
func NewMultigraph(n int) *Multigraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Multigraph{n: n, adj: make([][]int, n)}
}

// NumNodes returns the node count.
func (g *Multigraph) NumNodes() int { return g.n }

// NumEdges returns the total edge count, including disabled edges.
func (g *Multigraph) NumEdges() int { return len(g.edges) }

// NumEnabled returns the count of enabled edges.
func (g *Multigraph) NumEnabled() int {
	c := 0
	for _, d := range g.disabled {
		if !d {
			c++
		}
	}
	return c
}

// AddEdge inserts a directed edge and returns its ID.
func (g *Multigraph) AddEdge(from, to int, weight float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) outside [0,%d)", from, to, g.n))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Weight: weight})
	g.disabled = append(g.disabled, false)
	g.adj[from] = append(g.adj[from], id)
	return id
}

// Edge returns the edge with the given ID.
func (g *Multigraph) Edge(id int) Edge { return g.edges[id] }

// SetWeight updates the weight of edge id.
func (g *Multigraph) SetWeight(id int, w float64) { g.edges[id].Weight = w }

// Disable soft-deletes edge id; searches skip it.
func (g *Multigraph) Disable(id int) { g.disabled[id] = true }

// Enable restores a disabled edge.
func (g *Multigraph) Enable(id int) { g.disabled[id] = false }

// Disabled reports whether edge id is disabled.
func (g *Multigraph) Disabled(id int) bool { return g.disabled[id] }

// EnabledOut calls fn for every enabled edge leaving node u.
func (g *Multigraph) EnabledOut(u int, fn func(Edge)) {
	for _, id := range g.adj[u] {
		if !g.disabled[id] {
			fn(g.edges[id])
		}
	}
}

// Clone returns an independent copy (edge enable/disable state included).
func (g *Multigraph) Clone() *Multigraph {
	cp := &Multigraph{
		n:        g.n,
		edges:    append([]Edge(nil), g.edges...),
		disabled: append([]bool(nil), g.disabled...),
		adj:      make([][]int, g.n),
	}
	for i, a := range g.adj {
		cp.adj[i] = append([]int(nil), a...)
	}
	return cp
}

// Path is a directed walk described by its edge IDs plus the accumulated
// weight. An empty path (Edges == nil, Weight == 0) is the trivial path from
// a node to itself.
type Path struct {
	Edges  []int
	Weight float64
}

// Inf is the weight reported for unreachable targets.
var Inf = math.Inf(1)

// ShortestPath runs binary-heap Dijkstra from src to dst over enabled edges
// and returns the path and true, or a zero Path and false when dst is
// unreachable. Weights must be non-negative (panics otherwise: the callers
// construct weights from times, so a negative weight is a programming error).
func (g *Multigraph) ShortestPath(src, dst int) (Path, bool) {
	dist, via := g.dijkstra(src, dst)
	return g.assemble(src, dst, dist, via)
}

// ShortestPathDense is the array-scan Dijkstra variant: O(V^2 + E) without a
// heap, which wins on the dense assignment graphs the paper's §4.2
// complexity analysis assumes (it cites the Edmonds–Karp O(|V|^2) bound).
// Results are identical to ShortestPath.
func (g *Multigraph) ShortestPathDense(src, dst int) (Path, bool) {
	dist := make([]float64, g.n)
	via := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = Inf
		via[i] = -1
	}
	dist[src] = 0
	for {
		u, best := -1, Inf
		for i := 0; i < g.n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u == -1 || u == dst {
			break
		}
		done[u] = true
		for _, id := range g.adj[u] {
			if g.disabled[id] {
				continue
			}
			e := g.edges[id]
			if e.Weight < 0 {
				panic("graph: negative edge weight")
			}
			if nd := dist[u] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				via[e.To] = id
			}
		}
	}
	return g.assemble(src, dst, dist, via)
}

func (g *Multigraph) dijkstra(src, dst int) (dist []float64, via []int) {
	dist = make([]float64, g.n)
	via = make([]int, g.n)
	for i := range dist {
		dist[i] = Inf
		via[i] = -1
	}
	dist[src] = 0
	pq := newHeap(g.n)
	pq.push(src, 0)
	for pq.len() > 0 {
		u, du := pq.pop()
		if du > dist[u] {
			continue // stale entry
		}
		if u == dst {
			return dist, via
		}
		for _, id := range g.adj[u] {
			if g.disabled[id] {
				continue
			}
			e := g.edges[id]
			if e.Weight < 0 {
				panic("graph: negative edge weight")
			}
			if nd := du + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				via[e.To] = id
				pq.push(e.To, nd)
			}
		}
	}
	return dist, via
}

// ShortestPathDAGMonotone computes the shortest src->dst path assuming every
// enabled edge satisfies From < To, i.e. the natural node order is a
// topological order. This is the case for directed assignment graphs (faces
// are numbered left to right), so one O(V+E) sweep replaces Dijkstra — the
// "skip the shortest-path search" optimisation of §5.4.
func (g *Multigraph) ShortestPathDAGMonotone(src, dst int) (Path, bool) {
	dist := make([]float64, g.n)
	via := make([]int, g.n)
	for i := range dist {
		dist[i] = Inf
		via[i] = -1
	}
	dist[src] = 0
	for u := src; u <= dst && u < g.n; u++ {
		if dist[u] == Inf {
			continue
		}
		for _, id := range g.adj[u] {
			if g.disabled[id] {
				continue
			}
			e := g.edges[id]
			if e.To <= u {
				panic(fmt.Sprintf("graph: edge %d->%d violates monotone DAG order", e.From, e.To))
			}
			if nd := dist[u] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				via[e.To] = id
			}
		}
	}
	return g.assemble(src, dst, dist, via)
}

func (g *Multigraph) assemble(src, dst int, dist []float64, via []int) (Path, bool) {
	if dist[dst] == Inf {
		return Path{}, false
	}
	var ids []int
	for v := dst; v != src; {
		id := via[v]
		if id < 0 {
			return Path{}, false
		}
		ids = append(ids, id)
		v = g.edges[id].From
	}
	// Reverse into forward order.
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
	return Path{Edges: ids, Weight: dist[dst]}, true
}

// Connected reports whether dst is reachable from src over enabled edges.
func (g *Multigraph) Connected(src, dst int) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.adj[u] {
			if g.disabled[id] {
				continue
			}
			v := g.edges[id].To
			if v == dst {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// nodeHeap is a minimal binary min-heap of (node, priority) pairs with lazy
// deletion (duplicates allowed; stale entries skipped by the caller).
type nodeHeap struct {
	node []int
	prio []float64
}

func newHeap(capacity int) *nodeHeap {
	return &nodeHeap{node: make([]int, 0, capacity), prio: make([]float64, 0, capacity)}
}

func (h *nodeHeap) len() int { return len(h.node) }

func (h *nodeHeap) push(n int, p float64) {
	h.node = append(h.node, n)
	h.prio = append(h.prio, p)
	i := len(h.node) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *nodeHeap) pop() (int, float64) {
	n, p := h.node[0], h.prio[0]
	last := len(h.node) - 1
	h.swap(0, last)
	h.node = h.node[:last]
	h.prio = h.prio[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.prio[l] < h.prio[small] {
			small = l
		}
		if r < last && h.prio[r] < h.prio[small] {
			small = r
		}
		if small == i {
			break
		}
		h.swap(i, small)
		i = small
	}
	return n, p
}

func (h *nodeHeap) swap(i, j int) {
	h.node[i], h.node[j] = h.node[j], h.node[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
}
