// Package sim is the discrete-event simulator of the host–satellites
// execution platform — the synthetic testbed substituting for the paper's
// physical sensor boxes and mobile terminal (see DESIGN.md). Given a CRU
// tree and an assignment it simulates frames of context flowing bottom-up:
// satellite CPUs execute their CRUs, uplinks ship cut-edge traffic to the
// host, and the host CPU performs the final reasoning.
//
// Two timing models are provided:
//
//   - PaperBarrier reproduces the paper's §3 analytic model exactly: each
//     satellite serialises its processing and transmissions on one resource,
//     and the host only starts once every satellite-side activity of the
//     frame has finished. The simulated makespan of a single frame equals
//     eval.Delay to the last bit — the integration test of the whole model.
//   - Overlapped is the event-driven refinement: a CRU starts as soon as
//     its inputs are available and its resource is free, and uplinks are
//     separate resources from satellite CPUs. Its makespan never exceeds
//     the PaperBarrier one; the gap measures how conservative the paper's
//     objective is (experiment E13).
//
// Multiple frames can be pushed through with a configurable inter-arrival
// interval to study pipelining/throughput, an extension beyond the paper.
package sim
