package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/model"
)

// Mode selects the timing model.
type Mode int

const (
	// PaperBarrier is the paper's analytic model (see package comment).
	PaperBarrier Mode = iota
	// Overlapped is the event-driven refinement.
	Overlapped
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case PaperBarrier:
		return "paper-barrier"
	case Overlapped:
		return "overlapped"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterises a simulation run.
type Config struct {
	Mode     Mode
	Frames   int     // number of frames; 0 means 1
	Interval float64 // inter-arrival time between frames (0 = all at t=0)
}

// FrameStat records one frame's release and completion times.
type FrameStat struct {
	Release float64
	Done    float64
}

// Latency returns the frame's end-to-end latency.
func (f FrameStat) Latency() float64 { return f.Done - f.Release }

// Result summarises a simulation.
type Result struct {
	Makespan   float64
	Frames     []FrameStat
	BusyHost   float64
	BusySat    map[model.SatelliteID]float64 // CPU + uplink busy time per satellite
	Tasks      int
	Throughput float64 // frames per unit time over the makespan
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("sim: invalid configuration")

// task is one schedulable unit (CRU execution or uplink transmission).
type task struct {
	id    int
	res   int // resource index
	dur   float64
	deps  int
	nexts []int
	frame int
	ready float64
}

// Run simulates cfg.Frames frames of the reasoning procedure under the
// given assignment. The assignment is validated first.
func Run(t *model.Tree, asg *model.Assignment, cfg Config) (*Result, error) {
	if err := asg.Validate(t); err != nil {
		return nil, err
	}
	frames := cfg.Frames
	if frames <= 0 {
		frames = 1
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("%w: negative interval", ErrConfig)
	}

	// Resource layout: 0 = host CPU; per satellite i: 1+2i = CPU,
	// 2+2i = uplink. In PaperBarrier mode the uplink maps onto the CPU
	// resource (the paper serialises them).
	numSats := len(t.Satellites())
	numRes := 1 + 2*numSats
	hostRes := 0
	cpuRes := func(s model.SatelliteID) int { return 1 + 2*int(s) }
	linkRes := func(s model.SatelliteID) int {
		if cfg.Mode == PaperBarrier {
			return cpuRes(s)
		}
		return 2 + 2*int(s)
	}

	var tasks []*task
	addTask := func(res int, dur float64, frame int) *task {
		tk := &task{id: len(tasks), res: res, dur: dur, frame: frame}
		tasks = append(tasks, tk)
		return tk
	}
	dep := func(before, after *task) {
		before.nexts = append(before.nexts, after.id)
		after.deps++
	}

	frameDone := make([]*task, frames)
	for f := 0; f < frames; f++ {
		release := float64(f) * cfg.Interval

		// Execution task per processing CRU; uplink task per cut edge.
		exec := make(map[model.NodeID]*task, t.Len())
		uplink := make(map[model.NodeID]*task)
		var satSide []*task // all satellite-side tasks of this frame (for the barrier)

		for _, id := range t.Preorder() {
			n := t.Node(id)
			if n.Kind != model.Processing {
				continue
			}
			if asg.At(id).IsHost() {
				exec[id] = addTask(hostRes, n.HostTime, f)
			} else {
				sat, _ := asg.At(id).Satellite()
				tk := addTask(cpuRes(sat), n.SatTime, f)
				exec[id] = tk
				satSide = append(satSide, tk)
			}
		}
		// Wire dependencies child -> parent, inserting uplink tasks on cut
		// edges (including sensor raw-frame uplinks).
		for _, id := range t.Preorder() {
			n := t.Node(id)
			if n.Parent == model.None {
				continue
			}
			parentTask := exec[n.Parent]
			if parentTask == nil {
				continue // parent on satellite with child on same satellite handled below
			}
			// Parent is either hosted or satellite-resident with a task.
			if n.Kind == model.SensorKind {
				if asg.At(n.Parent).IsHost() {
					// Raw frame crosses the uplink of the sensor's satellite.
					up := addTask(linkRes(n.Satellite), n.UpComm, f)
					up.ready = release
					uplink[id] = up
					satSide = append(satSide, up)
					dep(up, parentTask)
				}
				// Sensor feeding a satellite-resident CRU: data is local at
				// release time; no task needed.
				continue
			}
			childTask := exec[id]
			if asg.At(n.Parent).IsHost() && !asg.At(id).IsHost() {
				sat, _ := asg.At(id).Satellite()
				up := addTask(linkRes(sat), n.UpComm, f)
				uplink[id] = up
				satSide = append(satSide, up)
				dep(childTask, up)
				dep(up, parentTask)
			} else {
				dep(childTask, parentTask)
			}
		}
		if cfg.Mode == PaperBarrier {
			// The host may not start before every satellite-side activity
			// of the frame has completed (§3's assumption).
			for _, id := range t.Preorder() {
				if t.Node(id).Kind != model.Processing || !asg.At(id).IsHost() {
					continue
				}
				for _, st := range satSide {
					dep(st, exec[id])
				}
			}
			// Host CRUs serialise in post-order (children before parents is
			// already implied; pre-order list order pins ties).
			var prev *task
			for _, id := range t.Postorder() {
				if t.Node(id).Kind != model.Processing || !asg.At(id).IsHost() {
					continue
				}
				if prev != nil {
					dep(prev, exec[id])
				}
				prev = exec[id]
			}
		}
		// Source readiness: tasks with no dependencies start at the
		// frame's release time.
		for _, tk := range exec {
			tk.ready = release
		}
		for _, tk := range uplink {
			if tk.ready < release {
				tk.ready = release
			}
		}
		frameDone[f] = exec[t.Root()]
	}

	res := engine(tasks, numRes)
	out := &Result{
		Makespan: res.makespan,
		BusyHost: res.busy[hostRes],
		BusySat:  map[model.SatelliteID]float64{},
		Tasks:    len(tasks),
	}
	for _, s := range t.Satellites() {
		out.BusySat[s.ID] = res.busy[cpuRes(s.ID)]
		if cfg.Mode == Overlapped {
			out.BusySat[s.ID] += res.busy[linkRes(s.ID)]
		}
	}
	for f := 0; f < frames; f++ {
		out.Frames = append(out.Frames, FrameStat{
			Release: float64(f) * cfg.Interval,
			Done:    res.done[frameDone[f].id],
		})
	}
	if out.Makespan > 0 {
		out.Throughput = float64(frames) / out.Makespan
	}
	return out, nil
}

type engineResult struct {
	makespan float64
	busy     []float64
	done     []float64
}

// engine runs deterministic list scheduling: each resource serves ready
// tasks FIFO by (ready time, task id).
func engine(tasks []*task, numRes int) engineResult {
	res := engineResult{
		busy: make([]float64, numRes),
		done: make([]float64, len(tasks)),
	}
	freeAt := make([]float64, numRes)
	queues := make([]taskQueue, numRes)
	remaining := 0

	var events eventQueue
	enqueueReady := func(tk *task, now float64) {
		if tk.ready < now {
			tk.ready = now
		}
		heap.Push(&queues[tk.res], queued{ready: tk.ready, id: tk.id})
	}
	// Seed: all zero-dep tasks.
	for _, tk := range tasks {
		remaining++
		if tk.deps == 0 {
			enqueueReady(tk, tk.ready)
		}
	}
	// tryStart launches the front task of a resource if it is free.
	tryStart := func(r int, now float64) {
		for queues[r].Len() > 0 {
			front := queues[r].peek()
			start := front.ready
			if freeAt[r] > start {
				start = freeAt[r]
			}
			if start > now {
				// Not startable yet: schedule a wake-up at its start time.
				heap.Push(&events, event{time: start, res: r})
				return
			}
			heap.Pop(&queues[r])
			tk := tasks[front.id]
			end := start + tk.dur
			freeAt[r] = end
			res.busy[r] += tk.dur
			heap.Push(&events, event{time: end, res: r, taskID: tk.id, completion: true})
			if end > res.makespan {
				res.makespan = end
			}
			res.done[tk.id] = end
			return // resource busy until end; the completion event resumes it
		}
	}
	for r := 0; r < numRes; r++ {
		tryStart(r, 0)
	}
	for events.Len() > 0 {
		ev := heap.Pop(&events).(event)
		if ev.completion {
			tk := tasks[ev.taskID]
			remaining--
			for _, nid := range tk.nexts {
				nt := tasks[nid]
				nt.deps--
				if nt.deps == 0 {
					enqueueReady(nt, ev.time)
					tryStart(nt.res, ev.time)
				}
			}
		}
		tryStart(ev.res, ev.time)
	}
	return res
}

// queued is a ready task waiting for its resource.
type queued struct {
	ready float64
	id    int
}

type taskQueue []queued

func (q taskQueue) Len() int { return len(q) }
func (q taskQueue) Less(i, j int) bool {
	if q[i].ready != q[j].ready {
		return q[i].ready < q[j].ready
	}
	return q[i].id < q[j].id
}
func (q taskQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *taskQueue) Push(x any)   { *q = append(*q, x.(queued)) }
func (q *taskQueue) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
func (q taskQueue) peek() queued  { return q[0] }

type event struct {
	time       float64
	res        int
	taskID     int
	completion bool
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].completion != q[j].completion {
		return q[i].completion // completions first at equal times
	}
	return q[i].taskID < q[j].taskID
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
