package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/assign"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/workload"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestBarrierMatchesAnalyticDelayProperty is the central model-validation
// property (experiment E13): under the paper's timing assumptions the
// simulated single-frame makespan equals the analytic objective exactly,
// for random trees and random feasible assignments.
func TestBarrierMatchesAnalyticDelayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 60; trial++ {
		spec := workload.DefaultRandomSpec(1+rng.Intn(20), 1+rng.Intn(5))
		spec.Clustered = trial%2 == 0
		tree := workload.Random(rng, spec)

		asgs := []*model.Assignment{model.NewAssignment(tree)}
		if sol, err := assign.Solve(tree); err == nil {
			asgs = append(asgs, sol.Assignment)
		}
		for _, asg := range asgs {
			want, err := eval.Delay(tree, asg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(tree, asg, Config{Mode: PaperBarrier})
			if err != nil {
				t.Fatal(err)
			}
			if !almost(res.Makespan, want) {
				t.Fatalf("trial %d: simulated %v != analytic %v\n%s",
					trial, res.Makespan, want, tree.Render())
			}
		}
	}
}

func TestOverlappedNoWorseOnScenarios(t *testing.T) {
	for _, tc := range []struct {
		name string
		tree *model.Tree
	}{
		{"paper", workload.PaperTree()},
		{"epilepsy", workload.Epilepsy()},
		{"snmp", workload.SNMP()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := assign.Solve(tc.tree)
			if err != nil {
				t.Fatal(err)
			}
			barrier, err := Run(tc.tree, sol.Assignment, Config{Mode: PaperBarrier})
			if err != nil {
				t.Fatal(err)
			}
			over, err := Run(tc.tree, sol.Assignment, Config{Mode: Overlapped})
			if err != nil {
				t.Fatal(err)
			}
			if over.Makespan > barrier.Makespan+1e-9 {
				t.Errorf("overlapped %v > barrier %v", over.Makespan, barrier.Makespan)
			}
			if over.Makespan <= 0 {
				t.Errorf("overlapped makespan %v", over.Makespan)
			}
		})
	}
}

func TestMakespanAtLeastResourceBusy(t *testing.T) {
	tree := workload.PaperTree()
	sol, err := assign.Solve(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{PaperBarrier, Overlapped} {
		res, err := Run(tree, sol.Assignment, Config{Mode: mode, Frames: 3, Interval: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < res.BusyHost-1e-9 {
			t.Errorf("%v: makespan %v < host busy %v", mode, res.Makespan, res.BusyHost)
		}
		for sat, busy := range res.BusySat {
			if res.Makespan < busy-1e-9 {
				t.Errorf("%v: makespan %v < sat %d busy %v", mode, res.Makespan, sat, busy)
			}
		}
	}
}

func TestMultiFrameLatencyMonotone(t *testing.T) {
	tree := workload.Epilepsy()
	sol, err := assign.Solve(tree)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tree, sol.Assignment, Config{Mode: Overlapped, Frames: 5, Interval: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 5 {
		t.Fatalf("frames = %d", len(res.Frames))
	}
	prevDone := -1.0
	for i, f := range res.Frames {
		if f.Done < f.Release {
			t.Errorf("frame %d done %v before release %v", i, f.Done, f.Release)
		}
		if f.Done < prevDone {
			t.Errorf("frame %d completes before frame %d (FIFO resources)", i, i-1)
		}
		prevDone = f.Done
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
}

func TestBackToBackFramesQueue(t *testing.T) {
	// All frames released at t=0: makespan grows with frame count, and with
	// a saturated bottleneck it grows at least linearly in the bottleneck's
	// per-frame busy time.
	tree := workload.SNMP()
	asg := model.NewAssignment(tree) // all host: host CPU is the bottleneck
	r1, err := Run(tree, asg, Config{Mode: Overlapped, Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(tree, asg, Config{Mode: Overlapped, Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	perFrameHost := r1.BusyHost
	if r4.Makespan < 4*perFrameHost-1e-9 {
		t.Errorf("4-frame makespan %v < 4×host busy %v", r4.Makespan, 4*perFrameHost)
	}
}

func TestInvalidConfigAndAssignment(t *testing.T) {
	tree := workload.PaperTree()
	asg := model.NewAssignment(tree)
	if _, err := Run(tree, asg, Config{Interval: -1}); err == nil {
		t.Error("negative interval accepted")
	}
	bad := asg.Clone()
	cru2, _ := tree.NodeByName("CRU2")
	bad.Set(cru2, model.OnSatellite(0))
	if _, err := Run(tree, bad, Config{}); err == nil {
		t.Error("invalid assignment accepted")
	}
}

func TestBarrierHostStartsAfterAllSatellites(t *testing.T) {
	// Handmade check: host time 2, two satellites with loads 3 and 7
	// (raw uplinks only) → makespan 2+7 = 9 in barrier mode.
	b := model.NewBuilder()
	s0 := b.Satellite("s0")
	s1 := b.Satellite("s1")
	root := b.Root("root", 2, 0)
	c0 := b.Child(root, "c0", 0, 0, 0)
	b.Sensor(c0, "x0", s0, 3)
	c1 := b.Child(root, "c1", 0, 0, 0)
	b.Sensor(c1, "x1", s1, 7)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tree, model.NewAssignment(tree), Config{Mode: PaperBarrier})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 9) {
		t.Fatalf("makespan = %v, want 9", res.Makespan)
	}
	// Overlapped mode can do no better here (same critical path).
	over, err := Run(tree, model.NewAssignment(tree), Config{Mode: Overlapped})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(over.Makespan, 9) {
		t.Fatalf("overlapped makespan = %v, want 9", over.Makespan)
	}
}

func TestModeString(t *testing.T) {
	if PaperBarrier.String() != "paper-barrier" || Overlapped.String() != "overlapped" {
		t.Error("mode strings")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}
