package elastic

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/cluster"
)

// Exports are the serving layer's state-export hooks: how the manager
// reaches the warm state it must push on a view change. All are
// optional; a nil hook exports nothing of that kind.
type Exports struct {
	// Results returns the warm result-cache entries to push, grouped by
	// destination node (dest maps fingerprint → new owner, "" = keep).
	Results func(dest func(fingerprint string) string, limit int) map[string][]api.MigratedResult
	// Sessions returns the session snapshots to push, grouped by
	// destination — called only when this node is leaving the view
	// (sessions are ID-pinned to their creator otherwise).
	Sessions func(dest func(fingerprint string) string) map[string][]api.MigratedSession
	// Bounds returns the proven bound-cache entries worth shipping to a
	// newly joined node.
	Bounds func(limit int) []api.MigratedBound
	// SessionsPushed is called once per session after its destination
	// acknowledged the push — the serving layer's cue to drop the local
	// copy and leave a relocation tombstone.
	SessionsPushed func(id, node string)
}

// Config parameterises a Manager.
type Config struct {
	// Cluster is the node's routing view (required).
	Cluster *cluster.Cluster
	// Client issues migration pushes, broadcasts and gossip pulls
	// (default: 10s timeout).
	Client *http.Client
	// CacheLimit caps result-cache entries pushed per view change
	// (default 256).
	CacheLimit int
	// BoundsLimit caps bound-cache entries pushed per joining node
	// (default 1024).
	BoundsLimit int
	// Exports supply the state to push.
	Exports Exports
	// OnSelfRemoved fires when an applied view no longer contains this
	// node (the serving layer starts draining).
	OnSelfRemoved func()
	// Logf, when set, receives human-readable progress lines.
	Logf func(format string, args ...any)
}

// Counters is a snapshot of the manager's /debug/vars counters.
type Counters struct {
	Joins             int64 `json:"joins"`
	Leaves            int64 `json:"leaves"`
	Migrations        int64 `json:"migrations"`
	EntriesPushed     int64 `json:"entries_pushed"`
	EntriesAdopted    int64 `json:"entries_adopted"`
	StaleEpochRejects int64 `json:"stale_epoch_rejects"`
}

// Manager drives one node's elastic membership: it applies and proposes
// epoch-numbered views, pushes moved warm state before flipping routing,
// and guards the migration endpoints against stale pushes.
type Manager struct {
	cfg    Config
	client *http.Client

	mu sync.Mutex // serialises view transitions (propose/adopt)

	joins, leaves, migrations     atomic.Int64
	entriesPushed, entriesAdopted atomic.Int64
	staleRejects                  atomic.Int64
	fetching                      atomic.Bool
}

// New builds a Manager over cl's cluster view.
func New(cfg Config) *Manager {
	if cfg.Cluster == nil {
		panic("elastic: Config.Cluster is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = 256
	}
	if cfg.BoundsLimit <= 0 {
		cfg.BoundsLimit = 1024
	}
	return &Manager{cfg: cfg, client: cfg.Client}
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Epoch returns the current view's epoch.
func (m *Manager) Epoch() uint64 { return m.cfg.Cluster.Epoch() }

// Counters snapshots the migration counters.
func (m *Manager) Counters() Counters {
	return Counters{
		Joins:             m.joins.Load(),
		Leaves:            m.leaves.Load(),
		Migrations:        m.migrations.Load(),
		EntriesPushed:     m.entriesPushed.Load(),
		EntriesAdopted:    m.entriesAdopted.Load(),
		StaleEpochRejects: m.staleRejects.Load(),
	}
}

// CountAdopted records entries adopted from a migration push (called by
// the serving layer's migrate handlers).
func (m *Manager) CountAdopted(n int) {
	if n > 0 {
		m.entriesAdopted.Add(int64(n))
	}
}

// Propose mints the next epoch for members, applies the view locally
// (pushing moved warm state before routing flips) and broadcasts the
// numbered view, best-effort, to every node involved. The entry point of
// operator updates, seed-list reloads and the autoscaler.
func (m *Manager) Propose(members []string) (uint64, error) {
	members = NormalizeMembers(members)
	if len(members) == 0 {
		return 0, fmt.Errorf("elastic: proposing an empty member list")
	}
	m.mu.Lock()
	old := m.cfg.Cluster.Members()
	epoch := m.cfg.Cluster.Epoch() + 1
	applied := m.applyLocked(epoch, members)
	m.mu.Unlock()
	if !applied {
		// Only a concurrent transition can beat current+1; the caller can
		// re-propose against the newer view.
		return 0, fmt.Errorf("elastic: view superseded while proposing epoch %d", epoch)
	}
	m.broadcast(epoch, members, old)
	return epoch, nil
}

// Adopt applies an already-numbered view learned from a peer (an
// operator relay, a broadcast, or a gossip pull). Stale or duplicate
// epochs are ignored (applied=false, nil error).
func (m *Manager) Adopt(epoch uint64, members []string) (applied bool, err error) {
	members = NormalizeMembers(members)
	if len(members) == 0 {
		return false, fmt.Errorf("elastic: adopting an empty member list")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applyLocked(epoch, members), nil
}

// applyLocked pushes moved state and flips the view. Caller holds m.mu,
// which makes the epoch check race-free: only this method stores views.
func (m *Manager) applyLocked(epoch uint64, members []string) bool {
	cl := m.cfg.Cluster
	if epoch <= cl.Epoch() {
		return false
	}
	old := cl.Members()
	joined, left := diffMembers(old, members)
	m.pushState(epoch, members, cl.Ring(), cl.BuildRing(members), joined)
	if _, ok := cl.ApplyView(epoch, members); !ok {
		return false
	}
	m.joins.Add(int64(len(joined)))
	m.leaves.Add(int64(len(left)))
	m.logf("elastic: applied epoch %d (%d members, +%d/-%d)", epoch, len(members), len(joined), len(left))
	if !contains(members, cl.Self()) && m.cfg.OnSelfRemoved != nil {
		m.cfg.OnSelfRemoved()
	}
	return true
}

func contains(list []string, m string) bool {
	for _, x := range list {
		if x == m {
			return true
		}
	}
	return false
}

// pushState pushes this node's moved warm state under the new epoch,
// before the routing flip: result-cache entries whose fingerprint
// changed owner, proven bounds to every joining node, and — when this
// node is leaving the view — its sessions to their fingerprints' new
// owners. Push failures are logged and dropped: the state is a
// performance asset, not correctness, and the receiver re-proves
// anything that did not arrive. Sessions are the exception — a session
// is only forgotten locally after its destination acknowledged it.
func (m *Manager) pushState(epoch uint64, members []string, oldRing, newRing *cluster.Ring, joined []string) {
	self := m.cfg.Cluster.Self()
	dest := MovedDest(oldRing, newRing, self)
	pushed := false

	if ex := m.cfg.Exports.Results; ex != nil {
		for node, entries := range ex(dest, m.cfg.CacheLimit) {
			if len(entries) == 0 {
				continue
			}
			if m.post(node, "/v1/migrate/cache", epoch, api.MigrateResultsRequest{Entries: entries}) {
				m.entriesPushed.Add(int64(len(entries)))
				pushed = true
				m.logf("elastic: pushed %d warm results to %s", len(entries), node)
			}
		}
	}
	if ex := m.cfg.Exports.Bounds; ex != nil && len(joined) > 0 {
		entries := ex(m.cfg.BoundsLimit)
		for _, node := range joined {
			if node == self || len(entries) == 0 {
				continue
			}
			if m.post(node, "/v1/migrate/bounds", epoch, api.MigrateBoundsRequest{Entries: entries}) {
				m.entriesPushed.Add(int64(len(entries)))
				pushed = true
				m.logf("elastic: pushed %d proven bounds to %s", len(entries), node)
			}
		}
	}
	if ex := m.cfg.Exports.Sessions; ex != nil && !contains(members, self) {
		for node, sessions := range ex(dest) {
			if len(sessions) == 0 {
				continue
			}
			if m.post(node, "/v1/migrate/sessions", epoch, api.MigrateSessionsRequest{Sessions: sessions}) {
				m.entriesPushed.Add(int64(len(sessions)))
				pushed = true
				m.logf("elastic: relocated %d sessions to %s", len(sessions), node)
				if cb := m.cfg.Exports.SessionsPushed; cb != nil {
					for i := range sessions {
						cb(sessions[i].ID, node)
					}
				}
			}
		}
	}
	if pushed {
		m.migrations.Add(1)
	}
}

// post sends one epoch-stamped JSON POST, reporting acceptance.
func (m *Manager) post(node, path string, epoch uint64, payload any) bool {
	body, err := json.Marshal(payload)
	if err != nil {
		m.logf("elastic: encoding %s push: %v", path, err)
		return false
	}
	req, err := http.NewRequest(http.MethodPost, node+path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.EpochHeader, strconv.FormatUint(epoch, 10))
	resp, err := m.client.Do(req)
	if err != nil {
		m.logf("elastic: push %s to %s failed: %v", path, node, err)
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		m.logf("elastic: push %s to %s rejected: %d", path, node, resp.StatusCode)
		return false
	}
	return true
}

// broadcast relays a numbered view, concurrently and best-effort, to
// the union of old and new members (minus self): leavers must learn
// they are out, joiners must learn they are in, and nodes unreachable
// right now catch up through probe gossip.
func (m *Manager) broadcast(epoch uint64, members, old []string) {
	targets := map[string]bool{}
	for _, n := range members {
		targets[n] = true
	}
	for _, n := range old {
		targets[n] = true
	}
	delete(targets, m.cfg.Cluster.Self())
	var wg sync.WaitGroup
	for node := range targets {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			m.post(node, "/v1/cluster/members", epoch, api.MembersUpdateRequest{Epoch: epoch, Members: members})
		}(node)
	}
	wg.Wait()
}

// ObserveEpoch is the probe-gossip sink (wired to cluster.OnEpoch): a
// peer's /healthz advertised a view newer than ours, so pull it. One
// pull runs at a time; repeats while it is in flight are dropped.
func (m *Manager) ObserveEpoch(peer string, epoch uint64) {
	if epoch <= m.cfg.Cluster.Epoch() {
		return
	}
	if !m.fetching.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer m.fetching.Store(false)
		m.fetchFrom(peer)
	}()
}

// fetchFrom pulls a peer's current view (GET /v1/cluster) and adopts it.
func (m *Manager) fetchFrom(peer string) {
	resp, err := m.client.Get(peer + "/v1/cluster")
	if err != nil {
		m.logf("elastic: gossip pull from %s failed: %v", peer, err)
		return
	}
	defer resp.Body.Close()
	var doc api.ClusterResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		m.logf("elastic: gossip pull from %s undecodable: %v", peer, err)
		return
	}
	if doc.Epoch == 0 || len(doc.Members) == 0 {
		return
	}
	if applied, _ := m.Adopt(doc.Epoch, doc.Members); applied {
		m.logf("elastic: adopted epoch %d via gossip from %s", doc.Epoch, peer)
	}
}

// CheckEpoch guards a migration push: the request must carry
// api.EpochHeader, and an epoch below the receiver's current view is a
// stale push from a superseded ring — rejected and counted.
func (m *Manager) CheckEpoch(r *http.Request) error {
	h := r.Header.Get(api.EpochHeader)
	if h == "" {
		return &api.Error{Code: api.CodeInvalidRequest,
			Message: fmt.Sprintf("migration push missing %s header", api.EpochHeader)}
	}
	epoch, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return &api.Error{Code: api.CodeInvalidRequest,
			Message: fmt.Sprintf("malformed %s header %q", api.EpochHeader, h)}
	}
	if cur := m.cfg.Cluster.Epoch(); epoch < cur {
		m.staleRejects.Add(1)
		return &api.Error{Code: api.CodeStaleEpoch,
			Message: fmt.Sprintf("push at epoch %d below current view %d", epoch, cur)}
	}
	return nil
}
