// Package elastic is the dynamic-membership and state-migration layer of
// the cluster tier. It turns the static seed-list ring into an
// epoch-numbered view that can grow and shrink at runtime, and makes
// membership changes *warm*: before routing flips to a new view, the
// warm state whose ownership moves — result-cache entries, session
// snapshots, proven bound-cache facts — is pushed to its new owner.
//
// # Epoch lifecycle
//
// A view is (epoch, member list). Epochs only move forward; a node
// applies a view iff its epoch is strictly higher than the current one,
// so duplicate broadcasts and late gossip are idempotent no-ops. A new
// view enters the fleet through one node — an operator POST to
// /v1/cluster/members, a SIGHUP seed-list reload, or the fleet
// autoscaler — which mints current+1 as the epoch (Propose), applies it
// locally, and broadcasts the numbered view to every node involved
// (union of old and new members). Nodes that miss the broadcast learn of
// the newer epoch through the health-probe gossip path (every /healthz
// response advertises the responder's epoch on api.EpochHeader) and pull
// the view from the advertising peer.
//
// # Migration protocol
//
// Applying a view is push-then-flip: the applying node first diffs the
// old and new rings, computes the fingerprints it holds whose owner
// moved, and pushes that state over POST /v1/migrate/{cache,sessions,
// bounds} — each push stamped with the new epoch on api.EpochHeader —
// and only then swaps its routing view. A receiver on a newer view
// rejects the stale push (409, counted), so state from a superseded
// ring can never overwrite fresher placement. A node voted out of the
// view keeps serving while draining: the new ring routes everything
// away from it, but hop-guarded forwards and session-tombstone
// redirects it answers stay correct until the operator kills it.
//
// What moves and what is recomputed: result-cache entries and session
// snapshots move (they are expensive — a solve, or a mutation history);
// proven bound-cache facts move to joining nodes (valid anywhere, they
// cannot be mapped to ring ranges because they are keyed by subtree
// hash, not instance fingerprint); compiled plans, fingerprint memos and
// per-session bound caches are derived state and are rebuilt by the
// adopter.
package elastic

import (
	"sort"

	"repro/internal/cluster"
)

// NormalizeMembers sorts and dedups a member list, dropping empties —
// the canonical wire form of a view (NewRing applies the same rules, so
// a normalized list round-trips through a ring unchanged).
func NormalizeMembers(members []string) []string {
	out := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// diffMembers returns the members joining and leaving between two
// normalized-or-not lists.
func diffMembers(old, next []string) (joined, left []string) {
	in := func(list []string, m string) bool {
		for _, x := range list {
			if x == m {
				return true
			}
		}
		return false
	}
	for _, m := range next {
		if !in(old, m) {
			joined = append(joined, m)
		}
	}
	for _, m := range old {
		if !in(next, m) {
			left = append(left, m)
		}
	}
	return joined, left
}

// MovedDest returns the migration predicate for a ring transition as
// seen from self: for a fingerprint this node holds state for, it
// returns the node that should receive that state — the new owner, when
// ownership actually moved and the new owner is someone else — or ""
// when the state stays put. Consistent hashing keeps most ownership
// stable across a transition, so the moved set is proportional to the
// membership change, not the keyspace.
func MovedDest(old, next *cluster.Ring, self string) func(fingerprint string) string {
	return func(fp string) string {
		if fp == "" {
			return ""
		}
		now := next.Owner(fp)
		if now == "" || now == self {
			return ""
		}
		if old != nil && old.Owner(fp) == now {
			return "" // owner unchanged: the holder keeps (or never had) it
		}
		return now
	}
}
