package elastic

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// LoadSample is one fleet pressure reading.
type LoadSample struct {
	// Inflight is the fleet-wide sum of requests currently being served.
	Inflight int64
	// P95 is the worst per-node solve p95.
	P95 time.Duration
	// QueueDepth is the fleet-wide sum of queued async jobs.
	QueueDepth int64
}

// WatcherConfig parameterises a Watcher. A threshold left zero is not
// consulted; with no thresholds configured the watcher only samples.
type WatcherConfig struct {
	// Sample reads the current fleet pressure (required).
	Sample func() (LoadSample, error)
	// Interval between samples (default 1s).
	Interval time.Duration
	// HighInflight / HighP95 / HighQueueDepth mark a sample overloaded
	// when any configured one is exceeded. A sample is underloaded when
	// every configured metric sits below half its threshold — the
	// hysteresis band keeps the fleet from flapping.
	HighInflight   int64
	HighP95        time.Duration
	HighQueueDepth int64
	// SustainUp is the consecutive overloaded samples before spawning
	// (default 3); SustainDown the consecutive underloaded samples
	// before draining (default 10 — growing is cheap, shrinking throws
	// away warm state).
	SustainUp   int
	SustainDown int
	// MinNodes/MaxNodes bound the fleet size the watcher will steer to
	// (defaults 1 / 8).
	MinNodes int
	MaxNodes int
	// Nodes reports the current fleet size; Spawn adds a node; Drain
	// removes one. All required for the watcher to act.
	Nodes func() int
	Spawn func() error
	Drain func() error
	// Logf, when set, receives scale decisions.
	Logf func(format string, args ...any)
}

// Watcher samples fleet pressure and spawns or drains nodes under
// sustained load — the local-fleet autoscaler of cmd/crcluster and
// httpserve.StartFleet.
type Watcher struct {
	cfg WatcherConfig

	hi, lo         int
	spawns, drains atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewWatcher validates cfg and builds a Watcher.
func NewWatcher(cfg WatcherConfig) (*Watcher, error) {
	if cfg.Sample == nil {
		return nil, fmt.Errorf("elastic: WatcherConfig.Sample is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.SustainUp <= 0 {
		cfg.SustainUp = 3
	}
	if cfg.SustainDown <= 0 {
		cfg.SustainDown = 10
	}
	if cfg.MinNodes <= 0 {
		cfg.MinNodes = 1
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 8
	}
	return &Watcher{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}, nil
}

// Start launches the sampling loop; Stop ends it.
func (w *Watcher) Start() {
	if !w.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.tick()
			}
		}
	}()
}

// Stop ends the sampling loop and waits for it.
func (w *Watcher) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	if w.started.Load() {
		<-w.done
	}
}

// Scales reports (spawns, drains) performed so far.
func (w *Watcher) Scales() (spawns, drains int64) {
	return w.spawns.Load(), w.drains.Load()
}

// tick takes one sample and acts when a sustained trend crosses the
// configured thresholds.
func (w *Watcher) tick() {
	s, err := w.cfg.Sample()
	if err != nil {
		w.hi, w.lo = 0, 0 // an unreadable fleet is no evidence either way
		return
	}
	switch w.classify(s) {
	case 1:
		w.hi++
		w.lo = 0
	case -1:
		w.lo++
		w.hi = 0
	default:
		w.hi, w.lo = 0, 0
	}
	if w.cfg.Nodes == nil {
		return
	}
	if w.hi >= w.cfg.SustainUp && w.cfg.Spawn != nil && w.cfg.Nodes() < w.cfg.MaxNodes {
		w.hi = 0
		if err := w.cfg.Spawn(); err != nil {
			w.logf("elastic: watcher spawn failed: %v", err)
			return
		}
		w.spawns.Add(1)
		w.logf("elastic: watcher spawned a node (inflight=%d p95=%v queue=%d)", s.Inflight, s.P95, s.QueueDepth)
	}
	if w.lo >= w.cfg.SustainDown && w.cfg.Drain != nil && w.cfg.Nodes() > w.cfg.MinNodes {
		w.lo = 0
		if err := w.cfg.Drain(); err != nil {
			w.logf("elastic: watcher drain failed: %v", err)
			return
		}
		w.drains.Add(1)
		w.logf("elastic: watcher drained a node (inflight=%d p95=%v queue=%d)", s.Inflight, s.P95, s.QueueDepth)
	}
}

// classify buckets a sample: 1 overloaded, -1 underloaded, 0 neutral.
func (w *Watcher) classify(s LoadSample) int {
	configured := false
	under := true
	if w.cfg.HighInflight > 0 {
		configured = true
		if s.Inflight > w.cfg.HighInflight {
			return 1
		}
		under = under && s.Inflight*2 < w.cfg.HighInflight
	}
	if w.cfg.HighP95 > 0 {
		configured = true
		if s.P95 > w.cfg.HighP95 {
			return 1
		}
		under = under && s.P95*2 < w.cfg.HighP95
	}
	if w.cfg.HighQueueDepth > 0 {
		configured = true
		if s.QueueDepth > w.cfg.HighQueueDepth {
			return 1
		}
		under = under && s.QueueDepth*2 < w.cfg.HighQueueDepth
	}
	if !configured {
		return 0
	}
	if under {
		return -1
	}
	return 0
}

func (w *Watcher) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// varsSample is the slice of /debug/vars the sampler reads.
type varsSample struct {
	CRServe struct {
		Inflight int64 `json:"inflight"`
		Jobs     struct {
			QueueDepth int64 `json:"queue_depth"`
		} `json:"jobs"`
		Latency map[string]struct {
			P95US float64 `json:"p95_us"`
		} `json:"latency"`
	} `json:"crserve"`
}

// VarsSampler builds a Sample func that scrapes each target's
// /debug/vars and aggregates fleet pressure: inflight and job queue
// depth sum across nodes, p95 takes the worst node's solve endpoint. A
// partially unreachable fleet reports what it can; only a fully
// unreachable one errors.
func VarsSampler(client *http.Client, targets func() []string) func() (LoadSample, error) {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	return func() (LoadSample, error) {
		var s LoadSample
		ok := 0
		for _, t := range targets() {
			resp, err := client.Get(t + "/debug/vars")
			if err != nil {
				continue
			}
			var doc varsSample
			err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&doc)
			resp.Body.Close()
			if err != nil {
				continue
			}
			ok++
			s.Inflight += doc.CRServe.Inflight
			s.QueueDepth += doc.CRServe.Jobs.QueueDepth
			if solve, found := doc.CRServe.Latency["solve"]; found {
				if p := time.Duration(solve.P95US * float64(time.Microsecond)); p > s.P95 {
					s.P95 = p
				}
			}
		}
		if ok == 0 {
			return s, fmt.Errorf("elastic: no /debug/vars target reachable")
		}
		return s, nil
	}
}
