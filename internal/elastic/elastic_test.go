package elastic

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/api"
	"repro/internal/cluster"
)

func TestElasticNormalizeMembers(t *testing.T) {
	got := NormalizeMembers([]string{"http://b", "", "http://a", "http://b", "http://a"})
	want := []string{"http://a", "http://b"}
	if len(got) != len(want) {
		t.Fatalf("NormalizeMembers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeMembers = %v, want %v", got, want)
		}
	}
}

func TestElasticDiffMembers(t *testing.T) {
	joined, left := diffMembers(
		[]string{"http://a", "http://b", "http://c"},
		[]string{"http://b", "http://c", "http://d"},
	)
	if len(joined) != 1 || joined[0] != "http://d" {
		t.Errorf("joined = %v, want [http://d]", joined)
	}
	if len(left) != 1 || left[0] != "http://a" {
		t.Errorf("left = %v, want [http://a]", left)
	}
}

// TestElasticMovedDest checks the migration predicate: only keys whose
// ownership actually changed to someone else are pushed, and the moved
// set of a single join is a strict minority of the keyspace.
func TestElasticMovedDest(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	old := cluster.NewRing(members, 64)
	next := cluster.NewRing(append(members, "http://d"), 64)
	dest := MovedDest(old, next, "http://a")

	if got := dest(""); got != "" {
		t.Errorf("dest(\"\") = %q, want \"\"", got)
	}
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		fp := fmt.Sprintf("fingerprint-%d", i)
		got := dest(fp)
		switch {
		case got == "":
			// Either unchanged ownership or owned by self — both keep.
			if next.Owner(fp) != old.Owner(fp) && next.Owner(fp) != "http://a" {
				t.Fatalf("dest(%q) = \"\" but owner moved %s -> %s", fp, old.Owner(fp), next.Owner(fp))
			}
		default:
			if got != next.Owner(fp) {
				t.Fatalf("dest(%q) = %q, want new owner %q", fp, got, next.Owner(fp))
			}
			if old.Owner(fp) == got {
				t.Fatalf("dest(%q) = %q but ownership did not change", fp, got)
			}
			moved++
		}
	}
	// Consistent hashing: one join over four nodes should move roughly a
	// quarter of the keyspace, never the majority.
	if moved == 0 || moved > total/2 {
		t.Errorf("moved %d/%d keys on a single join; want a proportional minority", moved, total)
	}
}

// fakeFleet counts watcher actions behind adjustable pressure.
type fakeFleet struct {
	nodes          int
	spawns, drains int
}

func testWatcher(t *testing.T, f *fakeFleet, sample *LoadSample) *Watcher {
	t.Helper()
	w, err := NewWatcher(WatcherConfig{
		Sample:       func() (LoadSample, error) { return *sample, nil },
		HighInflight: 100,
		SustainUp:    2,
		SustainDown:  3,
		MinNodes:     2,
		MaxNodes:     4,
		Nodes:        func() int { return f.nodes },
		Spawn:        func() error { f.nodes++; f.spawns++; return nil },
		Drain:        func() error { f.nodes--; f.drains++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestElasticWatcherScales drives the autoscaler tick by tick: sustained
// overload spawns (respecting MaxNodes), sustained underload drains
// (respecting MinNodes), and one non-sustained spike does nothing.
func TestElasticWatcherScales(t *testing.T) {
	f := &fakeFleet{nodes: 2}
	sample := LoadSample{Inflight: 500} // overloaded: > HighInflight
	w := testWatcher(t, f, &sample)

	w.tick()
	if f.spawns != 0 {
		t.Fatalf("spawned after 1 overloaded tick; SustainUp=2")
	}
	w.tick()
	if f.spawns != 1 || f.nodes != 3 {
		t.Fatalf("after sustained overload: spawns=%d nodes=%d, want 1/3", f.spawns, f.nodes)
	}

	// One spike, then calm (inside the hysteresis band): no action ever.
	sample = LoadSample{Inflight: 70} // neither overloaded nor < half
	for i := 0; i < 10; i++ {
		w.tick()
	}
	if f.spawns != 1 || f.drains != 0 {
		t.Fatalf("hysteresis band acted: spawns=%d drains=%d", f.spawns, f.drains)
	}

	// Sustained idle: drain down to MinNodes and stop.
	sample = LoadSample{Inflight: 0}
	for i := 0; i < 12; i++ {
		w.tick()
	}
	if f.nodes != 2 {
		t.Fatalf("drained to %d nodes, want MinNodes=2", f.nodes)
	}
	if f.drains != 1 {
		t.Fatalf("drains = %d, want 1 (3 -> MinNodes=2)", f.drains)
	}

	// Back under pressure: grow to MaxNodes and stop.
	sample = LoadSample{Inflight: 500}
	for i := 0; i < 12; i++ {
		w.tick()
	}
	if f.nodes != 4 {
		t.Fatalf("grew to %d nodes, want MaxNodes=4", f.nodes)
	}

	spawns, drains := w.Scales()
	if spawns != int64(f.spawns) || drains != int64(f.drains) {
		t.Errorf("Scales() = %d/%d, fleet saw %d/%d", spawns, drains, f.spawns, f.drains)
	}
}

// TestElasticCheckEpoch exercises the migration-push guard: missing and
// malformed headers are invalid requests, an epoch below the receiver's
// view is a counted stale rejection, and current/future epochs pass.
func TestElasticCheckEpoch(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Self:  "http://self",
		Peers: []string{"http://self", "http://peer"},
		Epoch: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	m := New(Config{Cluster: cl})

	mk := func(header string) error {
		r := httptest.NewRequest("POST", "/v1/migrate/cache", nil)
		if header != "" {
			r.Header.Set(api.EpochHeader, header)
		}
		return m.CheckEpoch(r)
	}

	if err := mk(""); err == nil {
		t.Error("missing epoch header accepted")
	}
	if err := mk("not-a-number"); err == nil {
		t.Error("malformed epoch header accepted")
	}
	if err := mk("4"); err == nil {
		t.Error("stale epoch accepted")
	} else if ae, ok := err.(*api.Error); !ok || ae.Code != api.CodeStaleEpoch {
		t.Errorf("stale epoch error = %v, want code %q", err, api.CodeStaleEpoch)
	}
	if err := mk("5"); err != nil {
		t.Errorf("current epoch rejected: %v", err)
	}
	if err := mk("6"); err != nil {
		t.Errorf("future epoch rejected: %v", err)
	}
	if got := m.Counters().StaleEpochRejects; got != 1 {
		t.Errorf("StaleEpochRejects = %d, want 1", got)
	}
}

// TestElasticAdoptEpochOrdering verifies strictly-higher-wins: duplicate
// and stale views are ignored, higher ones apply and re-derive the ring.
func TestElasticAdoptEpochOrdering(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Self:  "http://a",
		Peers: []string{"http://a", "http://b"},
		Epoch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	m := New(Config{Cluster: cl})

	applied, err := m.Adopt(3, []string{"http://a", "http://b", "http://c"})
	if err != nil || !applied {
		t.Fatalf("Adopt(3) = %v, %v; want applied", applied, err)
	}
	if got := cl.Epoch(); got != 3 {
		t.Fatalf("epoch = %d, want 3", got)
	}
	if applied, _ := m.Adopt(3, []string{"http://a"}); applied {
		t.Error("duplicate epoch applied")
	}
	if applied, _ := m.Adopt(2, []string{"http://a"}); applied {
		t.Error("stale epoch applied")
	}
	if got := len(cl.Members()); got != 3 {
		t.Fatalf("members = %d, want 3 (stale adopts must not touch the view)", got)
	}
	if m.Counters().Joins != 1 {
		t.Errorf("Joins = %d, want 1", m.Counters().Joins)
	}
}

func TestElasticWatcherInterval(t *testing.T) {
	f := &fakeFleet{nodes: 1}
	sample := LoadSample{}
	w := testWatcher(t, f, &sample)
	w.Start()
	time.Sleep(10 * time.Millisecond)
	w.Stop()
	w.Stop() // idempotent
}
