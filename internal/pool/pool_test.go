package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunVisitsEveryIndexOnce(t *testing.T) {
	const n = 100
	var counts [n]atomic.Int64
	Run(context.Background(), n, 7, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	// Degenerate shapes are no-ops or single-worker runs, never hangs.
	Run(context.Background(), 0, 4, func(int) { t.Fatal("ran on n=0") })
	ran := 0
	Run(context.Background(), 3, 0, func(int) { ran++ }) // workers<=0 -> 1, serial
	if ran != 3 {
		t.Fatalf("workers=0 ran %d of 3", ran)
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	Run(context.Background(), 50, workers, func(int) {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestRunStopsDispatchingOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var dispatched atomic.Int64
	started := make(chan struct{}, 1)
	Run(ctx, 1000, 1, func(i int) {
		dispatched.Add(1)
		select {
		case started <- struct{}{}:
			cancel() // cancel while the first item is in flight
		default:
		}
	})
	// The first item ran; the feeder stopped promptly afterwards. The
	// single worker may already have been handed one more item that was
	// queued before cancellation won the select.
	if d := dispatched.Load(); d < 1 || d > 2 {
		t.Fatalf("%d items dispatched after immediate cancel, want 1-2", d)
	}
}
