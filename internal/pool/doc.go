// Package pool provides the one bounded worker pool every batch path
// shares: Solver.SolveBatch, Service.SolveBatch and the HTTP batch
// handler all dispatch per-item work through Run, so the pool semantics
// (worker clamping, cancellation of undispatched items) live in exactly
// one place.
package pool
