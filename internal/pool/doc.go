// Package pool provides the two sharing primitives every hot path rides
// on:
//
// Run is the one bounded worker pool of the batch paths —
// Solver.SolveBatch, Service.SolveBatch and the HTTP batch handler all
// dispatch per-item work through it, so the pool semantics (worker
// clamping, cancellation of undispatched items) live in exactly one
// place.
//
// Arena (with the Slice/Keep resize primitives) is the typed scratch
// free list of the solvers: evaluation frames, work graphs, DP tables
// and location vectors are checked out per solve and resized in place,
// which is what lets steady-state serving run without hot-path
// allocation.
package pool
