package pool

import "sync"

// Arena is a typed free list of reusable scratch objects (DP tables,
// candidate buffers, load vectors, visited bitsets). Solvers check one
// object out per solve and return it when done, so steady-state serving
// performs no hot-path allocation: after a short warm-up every Get is
// satisfied from the free list and the slices inside the object are
// resized in place with Slice/Keep.
//
// An Arena is safe for concurrent use. Objects must not be used after
// Put; the arena may hand them to another goroutine immediately.
type Arena[T any] struct {
	pool sync.Pool
}

// NewArena returns an arena backed by alloc for cold Gets.
func NewArena[T any](alloc func() *T) *Arena[T] {
	a := &Arena[T]{}
	a.pool.New = func() any { return alloc() }
	return a
}

// Get checks an object out of the arena.
func (a *Arena[T]) Get() *T { return a.pool.Get().(*T) }

// Put returns an object to the arena. Nil is ignored so deferred Puts
// stay safe on early-error paths.
func (a *Arena[T]) Put(x *T) {
	if x != nil {
		a.pool.Put(x)
	}
}

// Slice returns s with length n and every element zeroed, reusing the
// backing array when its capacity allows. It is the resize primitive of
// pooled scratch: after warm-up it never allocates.
func Slice[E any](s []E, n int) []E {
	if cap(s) < n {
		return make([]E, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Keep returns s with length n without zeroing the elements, reusing the
// backing array when possible. For buffers the caller overwrites fully.
func Keep[E any](s []E, n int) []E {
	if cap(s) < n {
		return make([]E, n)
	}
	return s[:n]
}
