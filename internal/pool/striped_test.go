package pool

import (
	"sync"
	"testing"
)

type blob struct{ buf []byte }

func TestStripedReuse(t *testing.T) {
	allocs := 0
	s := NewStriped(func() *blob { allocs++; return &blob{buf: make([]byte, 64)} })
	a := s.Get()
	s.Put(a)
	b := s.Get()
	if a != b {
		t.Fatal("striped pool did not reuse the parked object")
	}
	if allocs != 1 {
		t.Fatalf("allocs = %d, want 1", allocs)
	}
	s.Put(nil) // must be a no-op
	s.Put(b)
}

func TestStripedConcurrent(t *testing.T) {
	s := NewStriped(func() *blob { return new(blob) })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				x := s.Get()
				if x == nil {
					t.Error("Get returned nil")
					return
				}
				x.buf = append(x.buf[:0], byte(seed))
				s.Put(x)
			}
		}(w)
	}
	wg.Wait()
}

// TestStripedSteadyStateAllocs: once a stripe is primed, a Get/Put cycle
// performs no allocation — the contract the parallel kernels rely on.
func TestStripedSteadyStateAllocs(t *testing.T) {
	s := NewStriped(func() *blob { return &blob{buf: make([]byte, 1024)} })
	s.Put(s.Get()) // prime one stripe
	if n := testing.AllocsPerRun(200, func() { s.Put(s.Get()) }); n != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f/op, want 0", n)
	}
}
