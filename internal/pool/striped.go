package pool

import (
	"runtime"
	"sync/atomic"
)

// Striped is a fixed-width, per-P-approximating free list for scratch
// objects on parallel hot paths. Where Arena delegates to sync.Pool —
// whose victim caches are cleared by the garbage collector, re-paying the
// allocation after every GC cycle — a Striped keeps exactly GOMAXPROCS
// slots alive forever, so once every stripe is primed the parallel
// kernels (work-stealing branch-and-bound frames, batch evaluation
// lanes) run at zero steady-state allocations regardless of GC pressure.
//
// Each stripe is a single atomic slot. Get prefers the goroutine's
// current stripe (a round-robin hint; Go does not expose the P id, but
// under steady load the hint distributes checkouts evenly) and falls back
// to scanning the other stripes before allocating cold. Put parks the
// object back on the preferred stripe and walks on if it is occupied;
// an object that finds no free slot is dropped for the collector, which
// bounds the retained set at one object per stripe.
//
// A Striped is safe for concurrent use. Objects must not be touched
// after Put. Use it for bounded-size scratch only: the slots are never
// released, so anything parked here lives for the process.
type Striped[T any] struct {
	alloc func() *T
	slots []atomic.Pointer[T]
	next  atomic.Uint32
}

// NewStriped returns a striped free list of GOMAXPROCS slots backed by
// alloc for cold Gets.
func NewStriped[T any](alloc func() *T) *Striped[T] {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return &Striped[T]{alloc: alloc, slots: make([]atomic.Pointer[T], n)}
}

// Get checks an object out, scanning from the caller's stripe hint and
// allocating only when every stripe is empty.
func (s *Striped[T]) Get() *T {
	h := int(s.next.Add(1)) % len(s.slots)
	for i := 0; i < len(s.slots); i++ {
		if x := s.slots[(h+i)%len(s.slots)].Swap(nil); x != nil {
			return x
		}
	}
	return s.alloc()
}

// Put parks the object on the first free stripe from the caller's hint;
// with every stripe occupied the object is left to the collector.
func (s *Striped[T]) Put(x *T) {
	if x == nil {
		return
	}
	h := int(s.next.Load()) % len(s.slots)
	for i := 0; i < len(s.slots); i++ {
		if s.slots[(h+i)%len(s.slots)].CompareAndSwap(nil, x) {
			return
		}
	}
}
