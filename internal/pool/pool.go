package pool

import (
	"context"
	"sync"
)

// Run calls fn(i) for i in [0, n) on at most workers goroutines and
// returns when every dispatched call has finished. Cancelling ctx stops
// the feeder: items not yet handed to a worker are never dispatched
// (callers detect them by their untouched result slots and mark them
// cancelled), while in-flight calls run to completion under their own
// handling of ctx. Non-positive workers means one.
func Run(ctx context.Context, n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 0 {
		workers = 1
	}

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
