package dwg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// figure4 reconstructs the DWG of the paper's Figure 4: three nodes S→M→T
// with four parallel edges on each side. See DESIGN.md for the
// reconstruction argument; this graph reproduces every number printed in
// the figure.
func figure4() (*Graph, int, int) {
	g := New(3)
	const s, m, t = 0, 1, 2
	g.AddEdge(s, m, 5, 10)
	g.AddEdge(s, m, 6, 8)
	g.AddEdge(s, m, 15, 10)
	g.AddEdge(s, m, 20, 9)
	g.AddEdge(m, t, 4, 20)
	g.AddEdge(m, t, 5, 10)
	g.AddEdge(m, t, 6, 12)
	g.AddEdge(m, t, 27, 8)
	return g, s, t
}

func TestFigure4Trace(t *testing.T) {
	g, src, dst := figure4()
	res, err := SSB(g, src, dst, Default)
	if err != nil {
		t.Fatalf("SSB: %v", err)
	}
	if res.Objective != 20 {
		t.Fatalf("optimal SSB = %v, want 20 (paper Figure 4)", res.Objective)
	}
	if res.S != 10 || res.B != 10 {
		t.Fatalf("optimal path S=%v B=%v, want 10/10 (path ⟨5,10⟩-⟨5,10⟩)", res.S, res.B)
	}
	if len(res.Iterations) != 3 {
		t.Fatalf("iterations = %d, want 3 (as printed in Figure 4)", len(res.Iterations))
	}
	it1, it2, it3 := res.Iterations[0], res.Iterations[1], res.Iterations[2]
	// Iteration 1: min-S path ⟨5,10⟩-⟨4,20⟩, SSB = 9+20 = 29, becomes candidate.
	if it1.S != 9 || it1.B != 20 || it1.Objective != 29 || !it1.Improved || it1.Candidate != 29 {
		t.Errorf("iteration 1 = %+v, want S=9 B=20 SSB=29", it1)
	}
	// Iteration 2: ⟨5,10⟩-⟨5,10⟩, SSB = 20, replaces candidate.
	if it2.S != 10 || it2.B != 10 || it2.Objective != 20 || !it2.Improved || it2.Candidate != 20 {
		t.Errorf("iteration 2 = %+v, want S=10 B=10 SSB=20", it2)
	}
	// Iteration 3: remaining min-S path has S = 6+27 = 33 > 20 ⇒ terminate.
	if it3.S != 33 || it3.Stopped != "bound" || it3.Improved {
		t.Errorf("iteration 3 = %+v, want S=33 stop=bound", it3)
	}
}

func TestFigure4MatchesExhaustive(t *testing.T) {
	g, src, dst := figure4()
	res, err := SSB(g, src, dst, Default)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := ExhaustiveBest(g, src, dst, Default.Value)
	if !ok || res.Objective != want {
		t.Fatalf("SSB = %v, exhaustive = %v (ok=%v)", res.Objective, want, ok)
	}
}

func TestSBOnFigure4(t *testing.T) {
	g, src, dst := figure4()
	res, err := SB(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := ExhaustiveBest(g, src, dst, func(s, b float64) float64 { return math.Max(s, b) })
	if !ok || res.Objective != want {
		t.Fatalf("SB = %v, exhaustive = %v", res.Objective, want)
	}
	// The SB and SSB objectives disagree on this graph: the minimax optimum
	// is the ⟨5,10⟩-⟨5,10⟩ path with max(10,10)=10.
	if res.Objective != 10 {
		t.Fatalf("SB objective = %v, want 10", res.Objective)
	}
}

func TestLambdaWeights(t *testing.T) {
	g, src, dst := figure4()
	// λ=1: pure min-S. Optimal is the ⟨5,10⟩+⟨4,20⟩ path with S=9.
	res, err := SSB(g, src, dst, Lambda(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 9 || res.S != 9 {
		t.Fatalf("λ=1: obj=%v S=%v, want 9", res.Objective, res.S)
	}
	// λ=0: pure bottleneck. Best achievable max β: pick β=10 and β=8 → B=10?
	// S-side minimum β is 8 (⟨6,8⟩), T-side minimum β is 8 (⟨27,8⟩) → B=8.
	res, err = SSB(g, src, dst, Lambda(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 8 {
		t.Fatalf("λ=0: obj=%v, want 8", res.Objective)
	}
	for _, l := range []float64{0.25, 0.5, 0.75} {
		res, err := SSB(g, src, dst, Lambda(l))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ExhaustiveBest(g, src, dst, Lambda(l).Value)
		if res.Objective != want {
			t.Errorf("λ=%v: SSB=%v exhaustive=%v", l, res.Objective, want)
		}
	}
}

func TestInvalidWeights(t *testing.T) {
	g, src, dst := figure4()
	for _, w := range []Weights{{-1, 1}, {0, 0}, {math.NaN(), 1}} {
		if _, err := SSB(g, src, dst, w); err == nil {
			t.Errorf("weights %+v accepted", w)
		}
	}
}

func TestNoPath(t *testing.T) {
	g := New(2)
	if _, err := SSB(g, 0, 1, Default); err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
	if _, err := SB(g, 0, 1); err != ErrNoPath {
		t.Fatalf("SB err = %v, want ErrNoPath", err)
	}
}

func TestSingleEdge(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 3, 7)
	res, err := SSB(g, 0, 1, Default)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 10 || len(res.Iterations) != 1 {
		t.Fatalf("single edge: obj=%v iters=%d", res.Objective, len(res.Iterations))
	}
}

func TestZeroBetaPathTerminatesImmediately(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 2, 1, 0)
	g.AddEdge(0, 2, 10, 0)
	res, err := SSB(g, 0, 2, Default)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 2 {
		t.Fatalf("obj = %v, want 2", res.Objective)
	}
	// B = 0 means the first min-S path is provably optimal: one iteration.
	if len(res.Iterations) != 1 || res.Iterations[0].Stopped != "bound" {
		t.Fatalf("iterations = %+v", res.Iterations)
	}
}

func TestInputGraphNotModified(t *testing.T) {
	g, src, dst := figure4()
	before := g.NumEdges()
	if _, err := SSB(g, src, dst, Default); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != before {
		t.Fatal("edge count changed")
	}
	// All edges still enabled: SSB again must give the same answer.
	res2, err := SSB(g, src, dst, Default)
	if err != nil || res2.Objective != 20 {
		t.Fatalf("second run: %v obj=%v", err, res2.Objective)
	}
}

func TestAddEdgePanicsOnNegative(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddEdge(0, 1, -1, 0)
}

// randomDWG builds a layered random DWG with guaranteed connectivity.
func randomDWG(rng *rand.Rand, layers, width, extra int) (*Graph, int, int) {
	n := layers*width + 2
	g := New(n)
	src, dst := n-2, n-1
	node := func(l, w int) int { return l*width + w }
	for w := 0; w < width; w++ {
		g.AddEdge(src, node(0, w), float64(rng.Intn(10)), float64(rng.Intn(15)))
		g.AddEdge(node(layers-1, w), dst, float64(rng.Intn(10)), float64(rng.Intn(15)))
	}
	for l := 0; l+1 < layers; l++ {
		for w := 0; w < width; w++ {
			// at least one forward edge per node
			g.AddEdge(node(l, w), node(l+1, rng.Intn(width)), float64(rng.Intn(10)), float64(rng.Intn(15)))
		}
	}
	for k := 0; layers > 1 && k < extra; k++ {
		l := rng.Intn(layers - 1)
		g.AddEdge(node(l, rng.Intn(width)), node(l+1, rng.Intn(width)),
			float64(rng.Intn(10)), float64(rng.Intn(15)))
	}
	return g, src, dst
}

func TestSSBMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed int64, layersRaw, widthRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := 1 + int(layersRaw)%4
		width := 1 + int(widthRaw)%4
		extra := int(extraRaw) % 8
		g, src, dst := randomDWG(rng, layers, width, extra)
		res, err := SSB(g, src, dst, Default)
		if err != nil {
			return false
		}
		want, ok := ExhaustiveBest(g, src, dst, Default.Value)
		if !ok || res.Objective != want {
			return false
		}
		// Result path must be consistent with its reported measures.
		return g.S(res.PathEdges) == res.S && g.B(res.PathEdges) == res.B &&
			res.S+res.B == res.Objective
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSBMatchesExhaustiveProperty(t *testing.T) {
	obj := func(s, b float64) float64 { return math.Max(s, b) }
	f := func(seed int64, layersRaw, widthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := 1 + int(layersRaw)%4
		width := 1 + int(widthRaw)%4
		g, src, dst := randomDWG(rng, layers, width, 4)
		res, err := SB(g, src, dst)
		if err != nil {
			return false
		}
		want, ok := ExhaustiveBest(g, src, dst, obj)
		return ok && res.Objective == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestEliminationSoundnessProperty(t *testing.T) {
	// Every removed edge must genuinely be unable to improve on the final
	// optimum: re-running exhaustive search restricted to paths through a
	// removed edge can never beat the optimum.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g, src, dst := randomDWG(rng, 1+rng.Intn(3), 1+rng.Intn(3), rng.Intn(6))
		res, err := SSB(g, src, dst, Default)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range res.Iterations {
			for _, removed := range it.Removed {
				// Any path through `removed` has B ≥ β(removed); a lower
				// bound on its SSB is σ-shortest-path + β(removed). Verify
				// the bound does not beat the optimum.
				lb := g.Beta(removed)
				if lb+0 > 0 && res.Objective < lb && false {
					t.Fatal("unreachable")
				}
				// Direct check: exhaustive over paths containing the edge.
				best := math.Inf(1)
				onPath := make([]bool, g.NumNodes())
				var edges []int
				used := false
				var dfs func(u int)
				dfs = func(u int) {
					if u == dst {
						if used {
							if v := g.S(edges) + g.B(edges); v < best {
								best = v
							}
						}
						return
					}
					onPath[u] = true
					for id := 0; id < g.NumEdges(); id++ {
						from, to := g.Endpoints(id)
						if from != u || onPath[to] {
							continue
						}
						wasUsed := used
						if id == removed {
							used = true
						}
						edges = append(edges, id)
						dfs(to)
						edges = edges[:len(edges)-1]
						used = wasUsed
					}
					onPath[u] = false
				}
				dfs(src)
				if best < res.Objective {
					t.Fatalf("removed edge %d admits a better path: %v < %v", removed, best, res.Objective)
				}
			}
		}
	}
}

func TestFormatTrace(t *testing.T) {
	g, src, dst := figure4()
	res, err := SSB(g, src, dst, Default)
	if err != nil {
		t.Fatal(err)
	}
	names := map[int]string{0: "S", 1: "M", 2: "T"}
	out := FormatTrace(g, res, func(v int) string { return names[v] })
	for _, want := range []string{"Iteration 1", "Iteration 3", "S=33", "optimal objective = 20", "[stop: bound]"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if out2 := FormatTrace(g, res, nil); !strings.Contains(out2, "0-<") {
		t.Error("nil nodeName should fall back to IDs")
	}
}
