package dwg

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/graph"
)

// Graph is a doubly weighted directed multigraph. The underlying
// graph.Multigraph stores σ as the search weight; β lives alongside.
type Graph struct {
	mg   *graph.Multigraph
	beta []float64
}

// New returns an empty DWG with n nodes.
func New(n int) *Graph {
	return &Graph{mg: graph.NewMultigraph(n)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.mg.NumNodes() }

// NumEdges returns the edge count (including disabled edges).
func (g *Graph) NumEdges() int { return g.mg.NumEdges() }

// AddEdge inserts a directed edge with weights ⟨σ, β⟩ and returns its ID.
func (g *Graph) AddEdge(from, to int, sigma, beta float64) int {
	if sigma < 0 || beta < 0 || math.IsNaN(sigma) || math.IsNaN(beta) {
		panic(fmt.Sprintf("dwg: invalid weights σ=%v β=%v", sigma, beta))
	}
	id := g.mg.AddEdge(from, to, sigma)
	g.beta = append(g.beta, beta)
	return id
}

// Sigma returns σ of edge id.
func (g *Graph) Sigma(id int) float64 { return g.mg.Edge(id).Weight }

// Beta returns β of edge id.
func (g *Graph) Beta(id int) float64 { return g.beta[id] }

// Endpoints returns the endpoints of edge id.
func (g *Graph) Endpoints(id int) (from, to int) {
	e := g.mg.Edge(id)
	return e.From, e.To
}

// Clone returns an independent deep copy.
func (g *Graph) Clone() *Graph {
	return &Graph{mg: g.mg.Clone(), beta: append([]float64(nil), g.beta...)}
}

// S returns the sum weight of a path given by edge IDs.
func (g *Graph) S(edges []int) float64 {
	var s float64
	for _, id := range edges {
		s += g.Sigma(id)
	}
	return s
}

// B returns the bottleneck weight (max β) of a path given by edge IDs.
func (g *Graph) B(edges []int) float64 {
	var b float64
	for _, id := range edges {
		if g.beta[id] > b {
			b = g.beta[id]
		}
	}
	return b
}

// Weights are the coefficients of the SSB measure: SSB(P) = WS·S(P) +
// WB·B(P). The paper's §4 uses (λ, 1−λ); its §5 end-to-end delay objective
// is the plain sum, i.e. Default = (1, 1).
type Weights struct {
	WS, WB float64
}

// Default is the end-to-end-delay weighting SSB = S + B used throughout §5.
var Default = Weights{WS: 1, WB: 1}

// Lambda returns the §4 weighting SSB = λ·S + (1−λ)·B.
func Lambda(l float64) Weights { return Weights{WS: l, WB: 1 - l} }

// Valid reports whether the weights are usable (non-negative, not both 0).
func (w Weights) Valid() bool {
	return w.WS >= 0 && w.WB >= 0 && (w.WS > 0 || w.WB > 0) &&
		!math.IsNaN(w.WS) && !math.IsNaN(w.WB)
}

// Value computes WS·s + WB·b.
func (w Weights) Value(s, b float64) float64 { return w.WS*s + w.WB*b }

// Iteration records one round of the elimination loop, mirroring the rows of
// the paper's Figure 4.
type Iteration struct {
	Index     int     // 1-based iteration number
	PathEdges []int   // min-S path found this round
	S, B      float64 // its measures
	Objective float64 // SSB or SB value of the path
	Improved  bool    // whether it replaced the candidate
	Candidate float64 // candidate objective after this round
	Removed   []int   // edge IDs eliminated this round
	Stopped   string  // non-empty when this round terminated the loop ("bound", "disconnected")
}

// Result is the outcome of SSB or SB.
type Result struct {
	PathEdges  []int   // optimal path (edge IDs into the input graph)
	S, B       float64 // measures of the optimal path
	Objective  float64 // optimal objective value
	Iterations []Iteration
	Expansions int // always 0 here; the coloured solver reuses Result
}

// ErrNoPath is returned when the terminals are not connected.
var ErrNoPath = errors.New("dwg: no path between the terminals")

// ErrBadWeights is returned for invalid objective weights.
var ErrBadWeights = errors.New("dwg: invalid SSB weights")

// SSB finds a path from src to dst minimising w.WS·S(P) + w.WB·B(P) using
// the paper's iterative algorithm (Figure 3): repeat { find min-S path;
// update candidate; eliminate edges with β ≥ B(path) } until the graph
// disconnects or the min-S weight alone proves no better path remains.
// The input graph is not modified. Complexity O(|V|²·|E|) as per §4.2.
func SSB(g *Graph, src, dst int, w Weights) (*Result, error) {
	if !w.Valid() {
		return nil, ErrBadWeights
	}
	return eliminate(g, src, dst, w.Value, func(s float64) float64 { return w.WS * s })
}

// SB is Bokhari's algorithm: it finds a path minimising max(S(P), B(P)),
// the bottleneck processing time objective the paper contrasts with SSB.
func SB(g *Graph, src, dst int) (*Result, error) {
	return eliminate(g, src, dst, func(s, b float64) float64 { return math.Max(s, b) },
		func(s float64) float64 { return s })
}

// eliminate is the shared skeleton. objective(s, b) must be non-decreasing
// in both arguments; lower(s) must be a lower bound for objective(s', b')
// over any path with s' ≥ s and b' ≥ 0 (used for the termination test).
func eliminate(g *Graph, src, dst int, objective func(s, b float64) float64, lower func(s float64) float64) (*Result, error) {
	work := g.Clone()
	res := &Result{Objective: math.Inf(1)}
	for iter := 1; ; iter++ {
		path, ok := work.mg.ShortestPath(src, dst)
		if !ok {
			if len(res.Iterations) > 0 {
				res.Iterations[len(res.Iterations)-1].Stopped = "disconnected"
			}
			break
		}
		s := path.Weight
		b := work.B(path.Edges)
		val := objective(s, b)
		it := Iteration{Index: iter, PathEdges: path.Edges, S: s, B: b, Objective: val}
		if val < res.Objective {
			res.Objective = val
			res.PathEdges = append([]int(nil), path.Edges...)
			res.S, res.B = s, b
			it.Improved = true
		}
		it.Candidate = res.Objective
		if lower(s) >= res.Objective {
			// Every remaining path has S ≥ s, so its objective is at least
			// lower(s) ≥ candidate: the candidate is optimal.
			it.Stopped = "bound"
			res.Iterations = append(res.Iterations, it)
			break
		}
		// Eliminate every enabled edge whose β reaches the bottleneck of the
		// round's path. At least one edge (the path's bottleneck) goes, so
		// the loop makes progress every round.
		for id := 0; id < work.NumEdges(); id++ {
			if !work.mg.Disabled(id) && work.beta[id] >= b {
				work.mg.Disable(id)
				it.Removed = append(it.Removed, id)
			}
		}
		res.Iterations = append(res.Iterations, it)
	}
	if math.IsInf(res.Objective, 1) {
		return nil, ErrNoPath
	}
	return res, nil
}

// ExhaustiveBest enumerates every simple src→dst path (exponential; testing
// and small baselines only) and returns the minimum objective value.
func ExhaustiveBest(g *Graph, src, dst int, objective func(s, b float64) float64) (float64, bool) {
	best := math.Inf(1)
	found := false
	onPath := make([]bool, g.NumNodes())
	var edges []int
	var dfs func(u int)
	dfs = func(u int) {
		if u == dst {
			if v := objective(g.S(edges), g.B(edges)); v < best {
				best = v
			}
			found = true
			return
		}
		onPath[u] = true
		g.mg.EnabledOut(u, func(e graph.Edge) {
			if onPath[e.To] {
				return
			}
			edges = append(edges, e.ID)
			dfs(e.To)
			edges = edges[:len(edges)-1]
		})
		onPath[u] = false
	}
	dfs(src)
	return best, found
}

// FormatTrace renders the iteration log in the style of Figure 4, with node
// names supplied by the caller (nil uses numeric IDs).
func FormatTrace(g *Graph, res *Result, nodeName func(int) string) string {
	if nodeName == nil {
		nodeName = func(v int) string { return fmt.Sprintf("%d", v) }
	}
	var sb strings.Builder
	for _, it := range res.Iterations {
		fmt.Fprintf(&sb, "Iteration %d: path", it.Index)
		for _, id := range it.PathEdges {
			from, to := g.Endpoints(id)
			fmt.Fprintf(&sb, " %s-<%g,%g>->%s", nodeName(from), g.Sigma(id), g.Beta(id), nodeName(to))
		}
		fmt.Fprintf(&sb, "  S=%g B=%g obj=%g", it.S, it.B, it.Objective)
		if it.Improved {
			fmt.Fprintf(&sb, "  (new candidate %g)", it.Candidate)
		}
		if len(it.Removed) > 0 {
			fmt.Fprintf(&sb, "  removed=%d", len(it.Removed))
		}
		if it.Stopped != "" {
			fmt.Fprintf(&sb, "  [stop: %s]", it.Stopped)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "optimal objective = %g (S=%g, B=%g)\n", res.Objective, res.S, res.B)
	return sb.String()
}
