// Package dwg implements doubly weighted graphs (DWGs) and the path-search
// algorithms of the paper's §4: every edge carries an ordered pair of
// non-negative weights ⟨σ, β⟩ (a sum weight and a bottleneck weight); a path
// P has S(P) = Σ σ(e) and B(P) = max β(e); the paper's SSB measure is the
// weighted sum of the two, and its SSB algorithm finds a path minimising it
// by alternating min-S searches with the elimination of high-β edges.
//
// The same elimination skeleton also yields Bokhari's original SB algorithm
// (minimise max(S(P), B(P)), IEEE ToC 1988), which this package provides as
// the baseline the paper compares its objective against.
//
// One deliberate deviation from the paper's prose, documented in DESIGN.md:
// edges with β ≥ B(P) are eliminated, not only β > B(P). The strict rule can
// stall (no edge removed when the min-S path is its own bottleneck), while
// the inclusive rule is equally sound — any path through a removed edge has
// S ≥ S(P) and B ≥ B(P), so it cannot beat the recorded candidate — and it
// reproduces the published Figure 4 trace exactly.
package dwg
