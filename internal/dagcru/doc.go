// Package dagcru implements the generalisation the paper's §6 announces as
// future work: context reasoning procedures whose structure is a DAG
// rather than a tree (a processed context may feed several higher-level
// CRUs), assigned onto the same host–satellites star network.
//
// The tree machinery does not transfer: a DAG has no Bokhari-style dual
// graph, and §6 expects no polynomial exact algorithm. Following the
// paper's own plan, the package provides an exact branch-and-bound for
// small instances and a genetic algorithm for large ones, plus the direct
// objective evaluation both are checked against. A tree-shaped DAG must
// reproduce exactly the optimum of the tree solvers — the package's
// anchoring property test.
//
// Model: nodes are processing CRUs or pinned sensors; edges point from
// producer to consumer (context flows towards the single root consumer,
// which runs on the host). A CRU may execute on satellite c only if every
// sensor in its input cone is wired to c and every producer feeding it
// runs on c too (satellites cannot talk to each other). The delay keeps
// the paper's shape:
//
//	delay = Σ_{host CRUs} h + max_c ( Σ_{CRUs on c} s + Σ_{cross edges into the host} comm )
//
// with each producer-on-satellite → consumer-on-host edge paying its comm
// once on the producer's uplink. A producer consumed by several host CRUs
// uplinks its frame once.
package dagcru
