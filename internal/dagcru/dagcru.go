package dagcru

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// NodeID indexes a node of a Graph.
type NodeID int

// Node is one vertex. Semantics of the profile fields match the tree model
// (h, s, per-edge comm is stored on the producer: one frame costs UpComm to
// uplink regardless of how many host consumers read it).
type Node struct {
	ID        NodeID
	Name      string
	Kind      model.Kind
	HostTime  float64
	SatTime   float64
	UpComm    float64
	Satellite model.SatelliteID // sensors only
	Consumers []NodeID
	Producers []NodeID
}

// Graph is a validated DAG instance.
type Graph struct {
	nodes      []Node
	satellites []model.Satellite
	root       NodeID
	topo       []NodeID                       // producers before consumers
	cone       [][]model.SatelliteID          // per node: sorted satellites in its input cone
	coneSat    []model.SatelliteID            // unique satellite or NoSatellite
	sensorsOf  map[model.SatelliteID][]NodeID // pinned sensors per satellite
}

// Builder assembles a Graph.
type Builder struct {
	nodes      []Node
	satellites []model.Satellite
	err        error
}

// NewBuilder returns an empty DAG builder.
func NewBuilder() *Builder { return &Builder{} }

// Satellite registers a satellite.
func (b *Builder) Satellite(name string) model.SatelliteID {
	id := model.SatelliteID(len(b.satellites))
	b.satellites = append(b.satellites, model.Satellite{ID: id, Name: name})
	return id
}

// CRU adds a processing node.
func (b *Builder) CRU(name string, hostTime, satTime, upComm float64) NodeID {
	return b.add(Node{
		Name: name, Kind: model.Processing,
		HostTime: hostTime, SatTime: satTime, UpComm: upComm,
		Satellite: model.NoSatellite,
	})
}

// Sensor adds a pinned sensor node.
func (b *Builder) Sensor(name string, sat model.SatelliteID, rawComm float64) NodeID {
	return b.add(Node{
		Name: name, Kind: model.SensorKind, UpComm: rawComm, Satellite: sat,
	})
}

// Feed declares that producer's output is consumed by consumer.
func (b *Builder) Feed(producer, consumer NodeID) {
	if b.err != nil {
		return
	}
	if int(producer) >= len(b.nodes) || int(consumer) >= len(b.nodes) || producer < 0 || consumer < 0 {
		b.err = fmt.Errorf("dagcru: Feed(%d, %d) out of range", producer, consumer)
		return
	}
	if b.nodes[consumer].Kind == model.SensorKind {
		b.err = fmt.Errorf("dagcru: sensor %q cannot consume", b.nodes[consumer].Name)
		return
	}
	b.nodes[producer].Consumers = append(b.nodes[producer].Consumers, consumer)
	b.nodes[consumer].Producers = append(b.nodes[consumer].Producers, producer)
}

func (b *Builder) add(n Node) NodeID {
	n.ID = NodeID(len(b.nodes))
	b.nodes = append(b.nodes, n)
	return n.ID
}

// Build validates: a single root consumer (a unique node without
// consumers), acyclicity, sensors as sources only, every CRU reachable
// from some sensor and reaching the root, non-negative profiles.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes) == 0 {
		return nil, errors.New("dagcru: empty graph")
	}
	g := &Graph{nodes: b.nodes, satellites: b.satellites, sensorsOf: map[model.SatelliteID][]NodeID{}}

	root := NodeID(-1)
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.HostTime < 0 || n.SatTime < 0 || n.UpComm < 0 ||
			n.HostTime != n.HostTime || n.SatTime != n.SatTime || n.UpComm != n.UpComm {
			return nil, fmt.Errorf("dagcru: node %q has invalid profile", n.Name)
		}
		switch n.Kind {
		case model.SensorKind:
			if len(n.Producers) > 0 {
				return nil, fmt.Errorf("dagcru: sensor %q has producers", n.Name)
			}
			if int(n.Satellite) < 0 || int(n.Satellite) >= len(g.satellites) {
				return nil, fmt.Errorf("dagcru: sensor %q pinned to unknown satellite", n.Name)
			}
			g.sensorsOf[n.Satellite] = append(g.sensorsOf[n.Satellite], n.ID)
			if len(n.Consumers) == 0 {
				return nil, fmt.Errorf("dagcru: sensor %q feeds nothing", n.Name)
			}
		default:
			if len(n.Producers) == 0 {
				return nil, fmt.Errorf("dagcru: CRU %q has no inputs", n.Name)
			}
			if len(n.Consumers) == 0 {
				if root != -1 {
					return nil, fmt.Errorf("dagcru: two roots: %q and %q", g.nodes[root].Name, n.Name)
				}
				root = n.ID
			}
		}
	}
	if root == -1 {
		return nil, errors.New("dagcru: no root (every CRU has consumers: cycle?)")
	}
	g.root = root

	// Kahn topological sort (also detects cycles).
	indeg := make([]int, len(g.nodes))
	for i := range g.nodes {
		indeg[i] = len(g.nodes[i].Producers)
	}
	var queue []NodeID
	for i := range g.nodes {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		g.topo = append(g.topo, id)
		for _, c := range g.nodes[id].Consumers {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(g.topo) != len(g.nodes) {
		return nil, errors.New("dagcru: cycle detected")
	}

	// Input cones: satellites feeding each node, in topo order.
	g.cone = make([][]model.SatelliteID, len(g.nodes))
	g.coneSat = make([]model.SatelliteID, len(g.nodes))
	for _, id := range g.topo {
		n := &g.nodes[id]
		set := map[model.SatelliteID]bool{}
		if n.Kind == model.SensorKind {
			set[n.Satellite] = true
		}
		for _, p := range n.Producers {
			for _, s := range g.cone[p] {
				set[s] = true
			}
		}
		if len(set) == 0 {
			return nil, fmt.Errorf("dagcru: CRU %q has no sensor in its input cone", n.Name)
		}
		cone := make([]model.SatelliteID, 0, len(set))
		for s := range set {
			cone = append(cone, s)
		}
		sort.Slice(cone, func(i, j int) bool { return cone[i] < cone[j] })
		g.cone[id] = cone
		g.coneSat[id] = model.NoSatellite
		if len(cone) == 1 {
			g.coneSat[id] = cone[0]
		}
	}
	return g, nil
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Root returns the final consumer.
func (g *Graph) Root() NodeID { return g.root }

// Node returns node id.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Topo returns the topological order (shared slice).
func (g *Graph) Topo() []NodeID { return g.topo }

// Satellites returns the satellite set.
func (g *Graph) Satellites() []model.Satellite { return g.satellites }

// ConeSatellite returns the unique satellite that can host node id off the
// host, or NoSatellite when its input cone spans several satellites.
func (g *Graph) ConeSatellite(id NodeID) model.SatelliteID { return g.coneSat[id] }

// Assignment places each node: Host or OnSatellite.
type Assignment struct {
	Loc []model.Location
}

// NewAssignment returns the all-host assignment (sensors pinned).
func NewAssignment(g *Graph) *Assignment {
	a := &Assignment{Loc: make([]model.Location, g.Len())}
	for i := range g.nodes {
		if g.nodes[i].Kind == model.SensorKind {
			a.Loc[i] = model.OnSatellite(g.nodes[i].Satellite)
		}
	}
	return a
}

// Clone deep-copies.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{Loc: append([]model.Location(nil), a.Loc...)}
}

// Validate checks feasibility: sensors pinned, root hosted, a
// satellite-resident CRU has a monochromatic cone matching its satellite
// and all its producers on the same satellite.
func (a *Assignment) Validate(g *Graph) error {
	if len(a.Loc) != g.Len() {
		return fmt.Errorf("dagcru: assignment covers %d of %d nodes", len(a.Loc), g.Len())
	}
	if !a.Loc[g.root].IsHost() {
		return errors.New("dagcru: root must stay on the host")
	}
	for _, id := range g.topo {
		n := &g.nodes[id]
		loc := a.Loc[id]
		if n.Kind == model.SensorKind {
			if s, ok := loc.Satellite(); !ok || s != n.Satellite {
				return fmt.Errorf("dagcru: sensor %q moved off its satellite", n.Name)
			}
			continue
		}
		sat, onSat := loc.Satellite()
		if !onSat {
			continue
		}
		if g.coneSat[id] != sat {
			return fmt.Errorf("dagcru: CRU %q on satellite %d but its cone is %v", n.Name, sat, g.cone[id])
		}
		for _, p := range n.Producers {
			if ps, ok := a.Loc[p].Satellite(); !ok || ps != sat {
				return fmt.Errorf("dagcru: CRU %q on satellite %d consumes %q at %v",
					n.Name, sat, g.nodes[p].Name, a.Loc[p])
			}
		}
	}
	return nil
}

// Delay evaluates the end-to-end objective (validating first).
func Delay(g *Graph, a *Assignment) (float64, error) {
	if err := a.Validate(g); err != nil {
		return 0, err
	}
	var host float64
	loads := map[model.SatelliteID]float64{}
	for _, id := range g.topo {
		n := &g.nodes[id]
		loc := a.Loc[id]
		if n.Kind == model.Processing {
			if loc.IsHost() {
				host += n.HostTime
			} else if s, ok := loc.Satellite(); ok {
				loads[s] += n.SatTime
			}
		}
		// Uplink: a satellite-resident producer with at least one hosted
		// consumer ships its frame once.
		if s, onSat := loc.Satellite(); onSat {
			for _, c := range n.Consumers {
				if a.Loc[c].IsHost() {
					loads[s] += n.UpComm
					break
				}
			}
		}
	}
	maxLoad := 0.0
	for _, v := range loads {
		if v > maxLoad {
			maxLoad = v
		}
	}
	return host + maxLoad, nil
}

// BruteForce enumerates every feasible assignment (processing nodes in
// topological order: host, or the cone satellite if all producers sit
// there). maxExplored caps the search (0 means 1<<22).
func BruteForce(g *Graph, maxExplored int) (*Assignment, float64, error) {
	if maxExplored <= 0 {
		maxExplored = 1 << 22
	}
	asg := NewAssignment(g)
	best := math.Inf(1)
	var bestAsg *Assignment
	explored := 0

	var procs []NodeID
	for _, id := range g.topo {
		if g.nodes[id].Kind == model.Processing {
			procs = append(procs, id)
		}
	}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(procs) {
			explored++
			if explored > maxExplored {
				return errors.New("dagcru: exploration budget exceeded")
			}
			d, err := Delay(g, asg)
			if err != nil {
				return fmt.Errorf("dagcru: enumeration built an invalid assignment: %w", err)
			}
			if d < best {
				best = d
				bestAsg = asg.Clone()
			}
			return nil
		}
		id := procs[i]
		// Option host.
		asg.Loc[id] = model.Host
		if err := rec(i + 1); err != nil {
			return err
		}
		// Option satellite, when feasible.
		if sat := g.coneSat[id]; sat != model.NoSatellite && id != g.root {
			ok := true
			for _, p := range g.nodes[id].Producers {
				if s, onSat := asg.Loc[p].Satellite(); !onSat || s != sat {
					ok = false
					break
				}
			}
			if ok {
				asg.Loc[id] = model.OnSatellite(sat)
				if err := rec(i + 1); err != nil {
					return err
				}
				asg.Loc[id] = model.Host
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, 0, err
	}
	return bestAsg, best, nil
}

// Genetic is the §6 heuristic for the DAG model: one gene per processing
// node ("wants its satellite"), decoded in topological order with repair
// (a node goes to its cone satellite only when its producers did).
// Deterministic for a fixed seed.
func Genetic(g *Graph, seed int64, population, generations int) (*Assignment, float64) {
	if population <= 1 {
		population = 40
	}
	if generations <= 0 {
		generations = 60
	}
	rng := rand.New(rand.NewSource(seed))

	var procs []NodeID
	for _, id := range g.topo {
		if g.nodes[id].Kind == model.Processing {
			procs = append(procs, id)
		}
	}
	decode := func(genome []bool) *Assignment {
		asg := NewAssignment(g)
		for gi, id := range procs {
			if !genome[gi] || id == g.root {
				continue
			}
			sat := g.coneSat[id]
			if sat == model.NoSatellite {
				continue
			}
			ok := true
			for _, p := range g.nodes[id].Producers {
				if s, onSat := asg.Loc[p].Satellite(); !onSat || s != sat {
					ok = false
					break
				}
			}
			if ok {
				asg.Loc[id] = model.OnSatellite(sat)
			}
		}
		return asg
	}
	type indiv struct {
		genome []bool
		delay  float64
	}
	evalG := func(genome []bool) indiv {
		asg := decode(genome)
		d, err := Delay(g, asg)
		if err != nil {
			panic(fmt.Sprintf("dagcru: repair failed: %v", err))
		}
		return indiv{genome: genome, delay: d}
	}
	pop := make([]indiv, population)
	for i := range pop {
		genome := make([]bool, len(procs))
		for j := range genome {
			genome[j] = rng.Intn(2) == 0
		}
		pop[i] = evalG(genome)
	}
	pop[0] = evalG(make([]bool, len(procs))) // all-host seed
	for gen := 0; gen < generations; gen++ {
		sort.Slice(pop, func(i, j int) bool { return pop[i].delay < pop[j].delay })
		next := pop[:2:2] // elitism
		next = append([]indiv(nil), next...)
		for len(next) < population {
			pick := func() indiv {
				best := pop[rng.Intn(len(pop))]
				for k := 0; k < 2; k++ {
					if c := pop[rng.Intn(len(pop))]; c.delay < best.delay {
						best = c
					}
				}
				return best
			}
			a, b := pick(), pick()
			child := make([]bool, len(procs))
			for j := range child {
				if rng.Intn(2) == 0 {
					child[j] = a.genome[j]
				} else {
					child[j] = b.genome[j]
				}
				if rng.Float64() < 0.05 {
					child[j] = !child[j]
				}
			}
			next = append(next, evalG(child))
		}
		pop = next
	}
	sort.Slice(pop, func(i, j int) bool { return pop[i].delay < pop[j].delay })
	return decode(pop[0].genome), pop[0].delay
}

// FromTree converts a tree instance into the DAG model (the anchoring
// cross-check: the DAG solvers must reproduce the tree optimum).
func FromTree(t *model.Tree) (*Graph, error) {
	b := NewBuilder()
	for _, s := range t.Satellites() {
		b.Satellite(s.Name)
	}
	ids := make([]NodeID, t.Len())
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.Kind == model.SensorKind {
			ids[id] = b.Sensor(n.Name, n.Satellite, n.UpComm)
		} else {
			ids[id] = b.CRU(n.Name, n.HostTime, n.SatTime, n.UpComm)
		}
	}
	for _, id := range t.Preorder() {
		if p := t.Node(id).Parent; p != model.None {
			b.Feed(ids[id], ids[p])
		}
	}
	return b.Build()
}
