package dagcru

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/workload"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// diamond builds the canonical shared-subresult DAG:
//
//	sensorA(sat0) -> filter -> {featX, featY} -> fuse(root)
//
// filter's output feeds two CRUs — impossible to express as a tree.
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	s0 := b.Satellite("s0")
	filter := b.CRU("filter", 2, 5, 1)
	fx := b.CRU("featX", 1.5, 4, 0.5)
	fy := b.CRU("featY", 1.5, 4, 0.5)
	fuse := b.CRU("fuse", 1, 3, 0)
	sn := b.Sensor("probe", s0, 6)
	b.Feed(sn, filter)
	b.Feed(filter, fx)
	b.Feed(filter, fy)
	b.Feed(fx, fuse)
	b.Feed(fy, fuse)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildDiamond(t *testing.T) {
	g := diamond(t)
	if g.Len() != 5 {
		t.Fatalf("len = %d", g.Len())
	}
	root := g.Root()
	if g.Node(root).Name != "fuse" {
		t.Fatalf("root = %s", g.Node(root).Name)
	}
	// Every node's cone is {s0}.
	for _, id := range g.Topo() {
		if g.Node(id).Kind == model.Processing && g.ConeSatellite(id) != 0 {
			t.Errorf("cone of %s = %d", g.Node(id).Name, g.ConeSatellite(id))
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("cycle", func(t *testing.T) {
		b := NewBuilder()
		s := b.Satellite("s")
		x := b.CRU("x", 1, 1, 1)
		y := b.CRU("y", 1, 1, 1)
		sn := b.Sensor("sn", s, 1)
		b.Feed(sn, x)
		b.Feed(x, y)
		b.Feed(y, x)
		if _, err := b.Build(); err == nil {
			t.Fatal("cycle accepted")
		}
	})
	t.Run("two roots", func(t *testing.T) {
		b := NewBuilder()
		s := b.Satellite("s")
		sn := b.Sensor("sn", s, 1)
		x := b.CRU("x", 1, 1, 1)
		y := b.CRU("y", 1, 1, 1)
		b.Feed(sn, x)
		b.Feed(sn, y)
		if _, err := b.Build(); err == nil {
			t.Fatal("two roots accepted")
		}
	})
	t.Run("sensor consumes", func(t *testing.T) {
		b := NewBuilder()
		s := b.Satellite("s")
		sn := b.Sensor("sn", s, 1)
		x := b.CRU("x", 1, 1, 1)
		b.Feed(x, sn)
		b.Feed(sn, x)
		if _, err := b.Build(); err == nil {
			t.Fatal("sensor consumer accepted")
		}
	})
	t.Run("cru without inputs", func(t *testing.T) {
		b := NewBuilder()
		b.Satellite("s")
		b.CRU("x", 1, 1, 1)
		if _, err := b.Build(); err == nil {
			t.Fatal("input-less CRU accepted")
		}
	})
}

func TestDiamondDelayHandComputed(t *testing.T) {
	g := diamond(t)
	// All host: host = 2+1.5+1.5+1 = 6; s0 uplinks the raw probe: 6 → 12.
	all := NewAssignment(g)
	d, err := Delay(g, all)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 12) {
		t.Fatalf("all-host delay %v, want 12", d)
	}
	// filter on s0: host 4, s0 = 5 (s) + 1 (uplink once, two consumers) = 6 → 10.
	a2 := all.Clone()
	filterID := NodeID(0)
	a2.Loc[filterID] = model.OnSatellite(0)
	d, err = Delay(g, a2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 10) {
		t.Fatalf("filter-offloaded delay %v, want 10 (uplink paid once)", d)
	}
}

func TestValidateRejectsBrokenProducerChain(t *testing.T) {
	g := diamond(t)
	a := NewAssignment(g)
	// featX on satellite while filter stays hosted: infeasible.
	var fx NodeID
	for _, id := range g.Topo() {
		if g.Node(id).Name == "featX" {
			fx = id
		}
	}
	a.Loc[fx] = model.OnSatellite(0)
	if err := a.Validate(g); err == nil {
		t.Fatal("broken producer chain accepted")
	}
}

func TestBruteForceDiamond(t *testing.T) {
	g := diamond(t)
	asg, d, err := BruteForce(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := asg.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Optimum: filter+featX+featY on s0: host 1, s0 = 5+4+4 + 0.5+0.5 = 14 → 15?
	// vs filter only: 10. vs all-host 12. Exhaustive must be ≤ all options.
	if d > 10+1e-9 {
		t.Fatalf("optimum %v worse than known assignment 10", d)
	}
}

// TestTreeShapedDAGMatchesTreeSolver anchors the DAG model to the paper's:
// converting a tree instance must reproduce the tree optimum exactly.
func TestTreeShapedDAGMatchesTreeSolver(t *testing.T) {
	for _, tc := range []struct {
		name string
		tree *model.Tree
	}{
		{"paper", workload.PaperTree()},
		{"epilepsy", workload.Epilepsy()},
		{"snmp", workload.SNMP()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := FromTree(tc.tree)
			if err != nil {
				t.Fatal(err)
			}
			_, d, err := BruteForce(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			want, err := exact.Pareto(tc.tree, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(d, want.Delay) {
				t.Fatalf("DAG optimum %v != tree optimum %v", d, want.Delay)
			}
		})
	}
}

func TestTreeShapedRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		spec := workload.DefaultRandomSpec(1+rng.Intn(9), 1+rng.Intn(3))
		spec.Clustered = trial%2 == 0
		tree := workload.Random(rng, spec)
		g, err := FromTree(tree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, d, err := BruteForce(g, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := exact.BruteForce(tree, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !almost(d, want.Delay) {
			t.Fatalf("trial %d: DAG %v != tree %v\n%s", trial, d, want.Delay, tree.Render())
		}
	}
}

func TestGeneticOnDAGs(t *testing.T) {
	g := diamond(t)
	asg, d := Genetic(g, 11, 30, 40)
	if err := asg.Validate(g); err != nil {
		t.Fatal(err)
	}
	_, opt, err := BruteForce(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d < opt-1e-9 {
		t.Fatalf("GA %v beats exact %v", d, opt)
	}
	if !almost(d, opt) {
		t.Errorf("GA missed the optimum on the diamond: %v vs %v", d, opt)
	}
	// Determinism.
	_, d2 := Genetic(g, 11, 30, 40)
	if d != d2 {
		t.Fatal("same seed, different GA results")
	}
}

func TestGeneticNearOptimalOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	hits := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		g := randomDAG(rng, 3+rng.Intn(8), 1+rng.Intn(3))
		gaAsg, gaDelay := Genetic(g, int64(trial), 40, 60)
		if err := gaAsg.Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, opt, err := BruteForce(g, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if gaDelay < opt-1e-9 {
			t.Fatalf("trial %d: GA %v beats exact %v", trial, gaDelay, opt)
		}
		if almost(gaDelay, opt) {
			hits++
		}
	}
	if hits < trials*2/3 {
		t.Errorf("GA found the optimum on only %d/%d small DAGs", hits, trials)
	}
}

// randomDAG builds a layered random DAG with one root.
func randomDAG(rng *rand.Rand, crus, sats int) *Graph {
	b := NewBuilder()
	satIDs := make([]model.SatelliteID, sats)
	for i := range satIDs {
		satIDs[i] = b.Satellite("s" + string('0'+byte(i)))
	}
	// Sensors.
	nSensors := 1 + rng.Intn(3)
	sensors := make([]NodeID, nSensors)
	for i := range sensors {
		sensors[i] = b.Sensor("sn"+string('0'+byte(i)), satIDs[rng.Intn(sats)], 1+4*rng.Float64())
	}
	// CRUs in layers; each consumes 1-2 previous nodes.
	prev := append([]NodeID(nil), sensors...)
	var all []NodeID
	for i := 0; i < crus; i++ {
		h := 0.5 + 3*rng.Float64()
		id := b.CRU("c"+string('0'+byte(i)), h, h*(1+2*rng.Float64()), 0.2+rng.Float64())
		ins := 1 + rng.Intn(2)
		seen := map[NodeID]bool{}
		for k := 0; k < ins; k++ {
			p := prev[rng.Intn(len(prev))]
			if !seen[p] {
				b.Feed(p, id)
				seen[p] = true
			}
		}
		prev = append(prev, id)
		all = append(all, id)
	}
	// Everything sinkless feeds the root.
	root := b.CRU("root", 1, 2, 0)
	consumed := map[NodeID]bool{}
	for _, id := range all {
		for range b.nodes[id].Consumers {
			consumed[id] = true
		}
	}
	for _, id := range append(sensors, all...) {
		if len(b.nodes[id].Consumers) == 0 {
			b.Feed(id, root)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
