// Package cache provides the serving layer's result cache: a sharded LRU
// keyed by canonical request identity, with singleflight deduplication so
// that N concurrent requests for the same key run the underlying
// computation exactly once. The package is value-agnostic (entries are
// any); repro.Service stores solver Outcomes keyed by tree fingerprint
// plus request parameters.
//
// Concurrency model: each shard guards its LRU list and its in-flight
// table with one mutex held only for map/list manipulation — never across
// the computation. The first caller of a missing key becomes the leader
// and runs the function on its own goroutine and context; later callers
// of the same key park on the leader's done channel (or their own
// context's cancellation) and share the leader's result. Errors are
// shared with the waiters of the flight but never stored, so a failed
// computation is retried by the next request.
package cache
