package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Result classifies how a Do call obtained its value.
type Result int

const (
	// Miss: this call ran the computation (it was the flight leader).
	Miss Result = iota
	// Hit: the value came from the LRU store.
	Hit
	// Shared: the value came from another caller's in-flight computation.
	Shared
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return fmt.Sprintf("result(%d)", int(r))
	}
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits      int64 // Do calls served from the store
	Misses    int64 // Do calls that ran the computation
	Shared    int64 // Do calls that joined another call's flight
	Errors    int64 // leader computations that returned an error
	Evictions int64 // entries displaced by capacity pressure
	Size      int   // entries currently stored
	Capacity  int   // configured capacity (0 = store disabled)
}

const numShards = 16

// Cache is a sharded LRU with singleflight deduplication. The zero value
// is not usable; construct with New. A Cache is safe for concurrent use.
type Cache struct {
	shards   [numShards]shard
	capacity int // total, distributed over the shards

	hits, misses, shared, errors, evictions atomic.Int64
}

type shard struct {
	mu       sync.Mutex
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element whose Value is *entry
	inflight map[string]*flight
	capacity int
}

type entry struct {
	key string
	val any
}

type flight struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
}

// New returns a Cache holding up to capacity entries. Capacity <= 0
// disables the store — every Do recomputes unless it can join a flight —
// which keeps singleflight deduplication available with caching off.
// Positive capacities are rounded up so every shard holds at least one
// entry (otherwise part of the keyspace would silently never cache);
// tiny requested capacities therefore admit up to numShards entries.
func New(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	c := &Cache{capacity: capacity}
	per := capacity / numShards
	rem := capacity % numShards
	for i := range c.shards {
		s := &c.shards[i]
		s.ll = list.New()
		s.items = make(map[string]*list.Element)
		s.inflight = make(map[string]*flight)
		s.capacity = per
		if i < rem {
			s.capacity++
		}
		if capacity > 0 && s.capacity == 0 {
			s.capacity = 1
		}
	}
	return c
}

// FNV-1a, inlined over the key instead of hash/fnv so neither the string
// nor the byte-buffer shard lookup allocates (hash.Hash32 would force a
// []byte conversion on the hot path).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func (c *Cache) shardFor(key string) *shard {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * fnvPrime32
	}
	return &c.shards[h%numShards]
}

func (c *Cache) shardForBytes(key []byte) *shard {
	h := uint32(fnvOffset32)
	for _, b := range key {
		h = (h ^ uint32(b)) * fnvPrime32
	}
	return &c.shards[h%numShards]
}

// Do returns the cached value for key, or computes it with fn. Concurrent
// calls for the same key are deduplicated: one leader runs fn, the rest
// wait and share its value (or its error). A waiting caller whose ctx is
// cancelled unblocks with the ctx error while the leader keeps running;
// the leader itself is bounded only by whatever ctx fn captures.
//
// Successful values are stored (evicting LRU entries past capacity);
// errors are returned to the leader and the waiters of that one flight
// and then forgotten.
func (c *Cache) Do(ctx context.Context, key string, fn func() (any, error)) (any, Result, error) {
	s := c.shardFor(key)

	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		s.mu.Unlock()
		c.hits.Add(1)
		return val, Hit, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.shared.Add(1)
		select {
		case <-f.done:
			return f.val, Shared, f.err
		case <-ctx.Done():
			return nil, Shared, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	c.misses.Add(1)
	settled := false
	defer func() {
		if !settled { // fn panicked: fail the flight so waiters unblock
			f.err = fmt.Errorf("cache: computation for %q panicked", key)
			c.settle(s, key, f, false)
		}
	}()
	val, err := fn()
	f.val, f.err = val, err
	c.settle(s, key, f, err == nil)
	settled = true
	if err != nil {
		c.errors.Add(1)
	}
	return val, Miss, err
}

// Get returns the stored value for key without joining or starting a
// flight — the lookup-only path for callers that must compute misses
// outside the cache (e.g. warm-started non-exact solves, whose results
// are start-dependent and must not be stored). A found entry counts as a
// hit and refreshes its recency; a missing one counts as a miss.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		s.mu.Unlock()
		c.hits.Add(1)
		return val, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// GetBytes is the peek path for keys assembled in a reusable byte buffer:
// the map is read through string(key), which the compiler evaluates
// without materialising a string, so a warm lookup allocates nothing. A
// found entry counts as a hit and refreshes its recency; unlike Get, a
// missing entry is NOT counted as a miss — callers either fall through
// to Do, which classifies the outcome exactly once, or compute outside
// the cache and record the miss themselves with RecordMiss.
func (c *Cache) GetBytes(key []byte) (any, bool) {
	s := c.shardForBytes(key)
	s.mu.Lock()
	if el, ok := s.items[string(key)]; ok {
		s.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		s.mu.Unlock()
		c.hits.Add(1)
		return val, true
	}
	s.mu.Unlock()
	return nil, false
}

// RecordMiss counts a store miss observed through GetBytes by a caller
// that computes the result outside the cache (the warm-started non-exact
// solve path), keeping the hit/miss ratio faithful to the lookups served.
func (c *Cache) RecordMiss() { c.misses.Add(1) }

// settle publishes the flight's result: stores the value when wanted and
// capacity allows, removes the in-flight marker, and wakes the waiters.
func (c *Cache) settle(s *shard, key string, f *flight, store bool) {
	s.mu.Lock()
	if store {
		c.storeLocked(s, key, f.val)
	}
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
}

// storeLocked inserts or refreshes key and enforces the shard capacity.
// The caller holds s.mu.
func (c *Cache) storeLocked(s *shard, key string, val any) {
	if s.capacity <= 0 {
		return
	}
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, val: val})
	for s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
		c.evictions.Add(1)
	}
}

// KV is one exported cache entry.
type KV struct {
	Key string
	Val any
}

// Export returns up to limit stored entries whose key passes keep (nil
// keeps everything), most recently used first within each shard — the
// top-K selection of the warm-state migration path. Exporting does not
// disturb recency.
func (c *Cache) Export(limit int, keep func(key string) bool) []KV {
	if limit <= 0 {
		return nil
	}
	out := make([]KV, 0, min(limit, 64))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			if keep != nil && !keep(e.key) {
				continue
			}
			out = append(out, KV{Key: e.key, Val: e.val})
			if len(out) >= limit {
				s.mu.Unlock()
				return out
			}
		}
		s.mu.Unlock()
	}
	return out
}

// Put stores val under key directly, bypassing the flight machinery —
// the adoption path for entries migrated from another node. Counted as
// neither hit nor miss: no lookup was served.
func (c *Cache) Put(key string, val any) {
	s := c.shardFor(key)
	s.mu.Lock()
	c.storeLocked(s, key, val)
	s.mu.Unlock()
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Shared:    c.shared.Load(),
		Errors:    c.errors.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.Len(),
		Capacity:  c.capacity,
	}
}
