package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHitMissAndLRU(t *testing.T) {
	// One shard's worth of capacity routed to a single key space: use
	// keys that land anywhere — the per-shard split still enforces the
	// global bound, which is all this test asserts.
	c := New(numShards) // one entry per shard
	ctx := context.Background()

	calls := 0
	get := func(key string) (any, Result) {
		v, how, err := c.Do(ctx, key, func() (any, error) {
			calls++
			return "val-" + key, nil
		})
		if err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
		return v, how
	}

	if v, how := get("a"); how != Miss || v != "val-a" {
		t.Fatalf("first get: %v %v", v, how)
	}
	if v, how := get("a"); how != Hit || v != "val-a" {
		t.Fatalf("second get: %v %v", v, how)
	}
	if calls != 1 {
		t.Fatalf("computation ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Shared != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	ctx := context.Background()
	// lookup runs a Do that would store v on a miss and reports how the
	// call was served — the only mutation path the cache exposes.
	lookup := func(c *Cache, key string, v any) Result {
		_, how, err := c.Do(ctx, key, func() (any, error) { return v, nil })
		if err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
		return how
	}

	// Capacity 0 disables the store entirely: the same key misses twice.
	c := New(0)
	lookup(c, "x", 1)
	if how := lookup(c, "x", 1); how != Miss {
		t.Fatalf("capacity-0 cache served a %v", how)
	}
	if c.Len() != 0 {
		t.Fatalf("capacity-0 cache stored %d entries", c.Len())
	}

	// A tiny capacity still caches every shard: with the per-shard floor
	// of one entry, any key must hit on repeat.
	tiny := New(1)
	lookup(tiny, "anywhere", 1)
	if how := lookup(tiny, "anywhere", 1); how != Hit {
		t.Fatalf("tiny cache served a %v, want a hit", how)
	}

	// Overflow one shard: find three keys that collide and watch the
	// least-recently-used one go.
	c2 := New(2 * numShards) // 2 per shard
	target := c2.shardFor("seed")
	var same []string
	for i := 0; len(same) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c2.shardFor(k) == target {
			same = append(same, k)
		}
	}
	lookup(c2, same[0], 0)
	lookup(c2, same[1], 1)
	lookup(c2, same[0], 0) // refresh: same[1] is now the LRU entry
	lookup(c2, same[2], 2)
	if how := lookup(c2, same[1], 1); how != Miss {
		t.Fatalf("LRU entry survived eviction (%v)", how)
	}
	if ev := c2.Stats().Evictions; ev < 1 {
		t.Fatalf("evictions = %d, want >= 1", ev)
	}
}

// TestSingleflightDeduplicates is the deterministic dedup proof: a leader
// blocks inside the computation while N waiters join the flight, then the
// gate opens and everyone must observe the single computed value.
func TestSingleflightDeduplicates(t *testing.T) {
	c := New(16)
	ctx := context.Background()
	const waiters = 8

	gate := make(chan struct{})
	var computations atomic.Int64

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func() (any, error) {
			computations.Add(1)
			<-gate
			return 42, nil
		})
		leaderDone <- err
	}()

	// Wait until the leader's flight is registered before spawning
	// joiners, so every one of them is genuinely concurrent.
	s := c.shardFor("k")
	for {
		s.mu.Lock()
		_, inflight := s.inflight["k"]
		s.mu.Unlock()
		if inflight {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	var wg sync.WaitGroup
	results := make([]Result, waiters)
	values := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, how, err := c.Do(ctx, "k", func() (any, error) {
				computations.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i], values[i] = how, v
		}(i)
	}

	// Let the joiners reach the flight, then open the gate. Shared
	// counts how many parked; grow the wait until all did (bounded).
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Shared < waiters && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	close(gate)
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}

	if n := computations.Load(); n != 1 {
		t.Fatalf("computation ran %d times for %d concurrent callers, want 1", n, waiters+1)
	}
	for i := range results {
		if values[i] != 42 {
			t.Fatalf("waiter %d got %v, want 42", i, values[i])
		}
		if results[i] != Shared && results[i] != Hit {
			t.Fatalf("waiter %d classified %v, want shared or hit", i, results[i])
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Shared != waiters {
		t.Fatalf("hits(%d)+shared(%d) != %d waiters", st.Hits, st.Shared, waiters)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(16)
	ctx := context.Background()
	boom := errors.New("boom")

	_, how, err := c.Do(ctx, "k", func() (any, error) { return nil, boom })
	if how != Miss || !errors.Is(err, boom) {
		t.Fatalf("first call: %v %v", how, err)
	}
	v, how, err := c.Do(ctx, "k", func() (any, error) { return "ok", nil })
	if err != nil || how != Miss || v != "ok" {
		t.Fatalf("retry after error: %v %v %v — errors must not be cached", v, how, err)
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}
}

func TestWaiterHonoursContext(t *testing.T) {
	c := New(16)
	gate := make(chan struct{})
	defer close(gate)

	go c.Do(context.Background(), "k", func() (any, error) {
		<-gate
		return 1, nil
	})
	s := c.shardFor("k")
	for {
		s.mu.Lock()
		_, inflight := s.inflight["k"]
		s.mu.Unlock()
		if inflight {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() (any, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
}

func TestPanicFailsFlight(t *testing.T) {
	c := New(16)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Do(context.Background(), "k", func() (any, error) { panic("kaboom") })
	}()
	// The flight must be cleared so the key stays usable.
	v, how, err := c.Do(context.Background(), "k", func() (any, error) { return "fine", nil })
	if err != nil || how != Miss || v != "fine" {
		t.Fatalf("key unusable after panic: %v %v %v", v, how, err)
	}
}

func TestGetLookupOnly(t *testing.T) {
	c := New(8)
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get on empty cache returned a value")
	}
	if _, _, err := c.Do(context.Background(), "k", func() (any, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get("k")
	if !ok || v != 7 {
		t.Fatalf("Get = %v, %v; want 7, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats %+v; want 1 hit (Get), 2 misses (Get on empty + Do)", st)
	}
}
