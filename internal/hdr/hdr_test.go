package hdr

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Every representable value must land in a bucket whose upper bound is
// >= the value and within the promised ~3% relative width.
func TestBucketRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 5, 31, 32, 33, 100, 999, 1_000, 65_535, 1 << 20, 123_456_789, maxValue}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		values = append(values, uint64(rng.Int63n(int64(maxValue))))
	}
	for _, v := range values {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		up := bucketValue(i)
		if up < v {
			t.Fatalf("bucketValue(bucketIndex(%d)) = %d < value", v, up)
		}
		if v >= subCount && float64(up-v) > 0.04*float64(v) {
			t.Fatalf("bucket width too coarse at %d: upper %d (+%.1f%%)", v, up, 100*float64(up-v)/float64(v))
		}
		if i > 0 && bucketValue(i-1) >= v {
			t.Fatalf("value %d belongs in bucket %d but bucket %d already covers it", v, i, i-1)
		}
	}
}

func TestQuantiles(t *testing.T) {
	var h Histogram
	for v := 1; v <= 1000; v++ {
		h.RecordValue(uint64(v) * 1000) // 1µs .. 1ms in 1µs steps
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	check := func(q float64, want time.Duration) {
		got := h.Quantile(q)
		lo, hi := float64(want)*0.95, float64(want)*1.05
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("q%.2f = %v, want within 5%% of %v", q, got, want)
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.95, 950*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	if h.Max() != 1_000_000 {
		t.Errorf("max = %d, want 1000000", h.Max())
	}
	if h.Min() != 1000 {
		t.Errorf("min = %d, want 1000", h.Min())
	}
	if m := h.Mean(); m < 495_000 || m > 506_000 {
		t.Errorf("mean = %f, want ~500500", m)
	}
	if q := h.Quantile(1.0); q != time.Duration(h.Max()) {
		t.Errorf("q1.0 = %v, want max %d", q, h.Max())
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read as all zeros")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P99US != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
}

func TestMerge(t *testing.T) {
	var a, b, whole Histogram
	for v := 1; v <= 100; v++ {
		a.RecordValue(uint64(v))
		whole.RecordValue(uint64(v))
	}
	for v := 101; v <= 200; v++ {
		b.RecordValue(uint64(v))
		whole.RecordValue(uint64(v))
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Min() != whole.Min() {
		t.Fatalf("merge drifted: count %d/%d max %d/%d min %d/%d",
			a.Count(), whole.Count(), a.Max(), whole.Max(), a.Min(), whole.Min())
	}
	if a.Quantile(0.5) != whole.Quantile(0.5) {
		t.Fatalf("merged p50 %v != recorded-together p50 %v", a.Quantile(0.5), whole.Quantile(0.5))
	}
	a.Merge(nil) // must not panic
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.RecordValue(uint64(rng.Int63n(1_000_000)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}
