// Package hdr provides a compact log-linear latency histogram in the
// spirit of HDR histograms: constant memory, lock-free concurrent
// recording, and quantile reads with bounded relative error (~3%). It is
// the one histogram implementation shared by the serving layer (per
// endpoint latency gauges in /debug/vars, internal/httpserve) and the
// load harness (per request-class client latencies, internal/load), so
// server-side and client-side numbers are bucketed identically and can
// be compared directly.
package hdr
