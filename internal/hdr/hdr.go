package hdr

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucketing: values (nanoseconds) below subCount index directly; larger
// values split each power-of-two range into subCount linear sub-buckets,
// so the relative bucket width is 1/subCount (~3%) everywhere. maxValue
// caps the representable range at ~2.4 hours — anything slower saturates
// into the top bucket, which is already a dead request by any SLO.
const (
	subBits    = 5
	subCount   = 1 << subBits // 32 sub-buckets per power of two
	maxExp     = 43
	maxValue   = uint64(1)<<maxExp - 1
	numBuckets = (maxExp-subBits)*subCount + subCount
)

// Histogram records non-negative durations and answers quantiles over
// them. The zero value is ready to use; all methods are safe for
// concurrent callers. Memory is fixed (~10 KiB) regardless of count.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	max    atomic.Uint64
	min    atomic.Uint64 // offset by +1 so zero means "unset"
}

// bucketIndex maps a value to its bucket. Inverse (up to bucket width)
// of bucketValue.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	e := bits.Len64(v) - 1 // >= subBits
	base := (e - subBits + 1) * subCount
	sub := int(v>>uint(e-subBits)) - subCount // in [0, subCount)
	return base + sub
}

// bucketValue returns the upper bound of bucket i — quantiles round up,
// never flattering the tail.
func bucketValue(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	block := i/subCount - 1 // 0-based block of 2^e ranges past the linear head
	e := block + subBits
	sub := uint64(i%subCount) + subCount // restore the implicit high bit
	return (sub+1)<<uint(e-subBits) - 1
}

// RecordValue adds one observation of v nanoseconds.
func (h *Histogram) RecordValue(v uint64) {
	if v > maxValue {
		v = maxValue
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.min.Load()
		if old != 0 && v+1 >= old {
			break
		}
		if h.min.CompareAndSwap(old, v+1) {
			break
		}
	}
}

// Record adds one observed duration.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.RecordValue(uint64(d))
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max reports the largest recorded value in nanoseconds (exact, not
// bucket-rounded).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Min reports the smallest recorded value in nanoseconds (0 if empty).
func (h *Histogram) Min() uint64 {
	if m := h.min.Load(); m > 0 {
		return m - 1
	}
	return 0
}

// Mean reports the arithmetic mean in nanoseconds (0 if empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile q in [0,1] as a duration,
// rounded up to its bucket bound. Concurrent recording skews the answer
// by at most the in-flight records — fine for monitoring reads.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q*float64(n) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= target {
			v := bucketValue(i)
			if m := h.max.Load(); v > m {
				v = m // never report past the true maximum
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max.Load())
}

// Merge adds other's observations into h (other keeps its contents).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	var added, sum uint64
	for i := range other.counts {
		if c := other.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
			added += c
		}
	}
	if added == 0 {
		return
	}
	sum = other.sum.Load()
	h.count.Add(added)
	h.sum.Add(sum)
	for {
		old := h.max.Load()
		v := other.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.min.Load()
		v := other.min.Load()
		if v == 0 || (old != 0 && v >= old) {
			break
		}
		if h.min.CompareAndSwap(old, v) {
			break
		}
	}
}

// Summary is the JSON snapshot of a histogram, in microseconds — the
// natural unit for serving latencies (sub-µs buckets still render as
// fractions). It is what /debug/vars publishes per endpoint and what
// load results persist per request class.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// Snapshot captures the histogram's current summary.
func (h *Histogram) Snapshot() Summary {
	us := func(ns float64) float64 { return ns / 1e3 }
	return Summary{
		Count:  h.Count(),
		MeanUS: us(h.Mean()),
		P50US:  us(float64(h.Quantile(0.50))),
		P95US:  us(float64(h.Quantile(0.95))),
		P99US:  us(float64(h.Quantile(0.99))),
		MaxUS:  us(float64(h.Max())),
	}
}
