package exact

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/workload"
)

func TestBruteForcePaperTree(t *testing.T) {
	tree := workload.PaperTree()
	res, err := BruteForce(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(tree); err != nil {
		t.Fatalf("invalid optimum: %v", err)
	}
	// Optimum can never beat the trivial lower bound (must-host time) nor
	// lose to the all-on-host assignment.
	allHost, _ := eval.Delay(tree, model.NewAssignment(tree))
	if res.Delay > allHost {
		t.Errorf("optimum %v worse than all-host %v", res.Delay, allHost)
	}
	if res.Delay <= 0 {
		t.Errorf("optimum %v not positive", res.Delay)
	}
	// Search space size matches the enumeration count.
	if want := CountAssignments(tree); float64(res.Explored) != want {
		t.Errorf("explored %d assignments, CountAssignments says %v", res.Explored, want)
	}
}

func TestCountAssignmentsSmall(t *testing.T) {
	// root with two mono subtrees a (1 sensor) and b (1 sensor):
	// a: sink or host (sensor cut) = 2; same for b; total = 2*2 = 4.
	b := model.NewBuilder()
	s0 := b.Satellite("s0")
	s1 := b.Satellite("s1")
	root := b.Root("root", 1, 1)
	a := b.Child(root, "a", 1, 1, 1)
	b.Sensor(a, "sa", s0, 1)
	bb := b.Child(root, "b", 1, 1, 1)
	b.Sensor(bb, "sb", s1, 1)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := CountAssignments(tree); got != 4 {
		t.Fatalf("CountAssignments = %v, want 4", got)
	}
	res, err := BruteForce(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored != 4 {
		t.Fatalf("explored = %d, want 4", res.Explored)
	}
}

func TestBruteForceBudget(t *testing.T) {
	tree := workload.PaperTree()
	if _, err := BruteForce(tree, 3); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestParetoPaperTree(t *testing.T) {
	tree := workload.PaperTree()
	bf, err := BruteForce(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := Pareto(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bf.Delay-pa.Delay) > 1e-9 {
		t.Fatalf("Pareto %v != BruteForce %v", pa.Delay, bf.Delay)
	}
	if err := pa.Assignment.Validate(tree); err != nil {
		t.Fatalf("pareto assignment invalid: %v", err)
	}
}

func TestBranchAndBoundPaperTree(t *testing.T) {
	tree := workload.PaperTree()
	bf, err := BruteForce(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := BranchAndBound(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bf.Delay-bb.Delay) > 1e-9 {
		t.Fatalf("B&B %v != BruteForce %v", bb.Delay, bf.Delay)
	}
	if bb.Explored > bf.Explored*3 {
		t.Errorf("B&B explored %d nodes vs %d brute-force assignments: pruning ineffective", bb.Explored, bf.Explored)
	}
}

func TestBranchAndBoundBudget(t *testing.T) {
	tree := workload.PaperTree()
	if _, err := BranchAndBound(tree, 2); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestSolversAgreeOnScenarios(t *testing.T) {
	for _, tc := range []struct {
		name string
		tree *model.Tree
	}{
		{"epilepsy", workload.Epilepsy()},
		{"snmp", workload.SNMP()},
		{"paper-symbolic", workload.PaperTreeSymbolic()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bf, err := BruteForce(tc.tree, 0)
			if err != nil {
				t.Fatal(err)
			}
			pa, err := Pareto(tc.tree, 0)
			if err != nil {
				t.Fatal(err)
			}
			bb, err := BranchAndBound(tc.tree, 0)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(bf.Delay-pa.Delay) > 1e-9 || math.Abs(bf.Delay-bb.Delay) > 1e-9 {
				t.Fatalf("disagreement: brute=%v pareto=%v bnb=%v", bf.Delay, pa.Delay, bb.Delay)
			}
		})
	}
}

// TestThreeSolversAgreeProperty is the heart of experiment E9: on random
// instances (clustered and scattered), all three independent exact solvers
// must return identical optima.
func TestThreeSolversAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		spec := workload.RandomSpec{
			CRUs:       1 + rng.Intn(10),
			MaxArity:   1 + rng.Intn(3),
			Satellites: 1 + rng.Intn(4),
			Clustered:  trial%2 == 0,
			HostScale:  0.5 + rng.Float64(),
			SatRatio:   0.5 + 3*rng.Float64(), // includes satellites faster than host
			CommScale:  rng.Float64() * 2,
			RawFactor:  0.5 + 4*rng.Float64(),
		}
		tree := workload.Random(rng, spec)
		bf, err := BruteForce(tree, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pa, err := Pareto(tree, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bb, err := BranchAndBound(tree, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(bf.Delay-pa.Delay) > 1e-9 {
			t.Fatalf("trial %d: pareto %v != brute %v\n%s", trial, pa.Delay, bf.Delay, tree.Render())
		}
		if math.Abs(bf.Delay-bb.Delay) > 1e-9 {
			t.Fatalf("trial %d: bnb %v != brute %v\n%s", trial, bb.Delay, bf.Delay, tree.Render())
		}
	}
}

func TestDegenerateSingleSensor(t *testing.T) {
	b := model.NewBuilder()
	s := b.Satellite("s")
	root := b.Root("root", 2, 0)
	b.Sensor(root, "x", s, 3)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Only one assignment exists: root hosted, sensor uplinks raw frames.
	for name, solve := range map[string]func() (*Result, error){
		"brute":  func() (*Result, error) { return BruteForce(tree, 0) },
		"pareto": func() (*Result, error) { return Pareto(tree, 0) },
		"bnb":    func() (*Result, error) { return BranchAndBound(tree, 0) },
	} {
		res, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(res.Delay-5) > 1e-9 {
			t.Errorf("%s: delay = %v, want 2+3", name, res.Delay)
		}
	}
}

func TestZeroCostProfiles(t *testing.T) {
	// All-zero times: every assignment has delay 0; solvers must not crash.
	b := model.NewBuilder()
	s := b.Satellite("s")
	root := b.Root("root", 0, 0)
	c := b.Child(root, "c", 0, 0, 0)
	b.Sensor(c, "x", s, 0)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for name, solve := range map[string]func() (*Result, error){
		"brute":  func() (*Result, error) { return BruteForce(tree, 0) },
		"pareto": func() (*Result, error) { return Pareto(tree, 0) },
		"bnb":    func() (*Result, error) { return BranchAndBound(tree, 0) },
	} {
		res, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Delay != 0 {
			t.Errorf("%s: delay = %v, want 0", name, res.Delay)
		}
	}
}
