package exact

import (
	"context"
	"math"

	"repro/internal/boundcache"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/pool"
)

// BranchAndBound is the branch-and-bound search the paper's §6 proposes as
// future work, implemented over the same decision tree as BruteForce (host
// vs. sink-whole-subtree per monochromatic CRU) with four prunings:
//
//   - bound: partial host time + the largest committed satellite load +
//     the host time of undecided CRUs that can never leave the host is a
//     lower bound on any completion, so branches at or above the incumbent
//     are cut;
//   - seeding: the incumbent starts at the better of all-host and maximal
//     distribution rather than +∞;
//   - ordering: at each CRU the branch with the smaller immediate
//     objective increase is explored first, so good incumbents appear
//     early.
//
// The search runs entirely against the tree's compiled plan: the
// must-host bounds table (Compiled.Forced) is indexed by post-order
// position and precomputed per revision, subtree sinks are span fills
// over the flat location vector, satellite loads live in a dense pooled
// array, and incumbents are evaluated with the flat kernel — the hot loop
// performs no allocation and no pointer chasing. BranchAndBoundPointer is
// the original node-walking implementation, retained for parity tests.
//
// A fourth, optional pruning is bound memoization (BnBOptions.Bounds):
// proven standalone lower bounds of whole subtrees, keyed by their
// Merkle hashes, join the bound as per-stack-entry extras, and subtrees
// whose hashes were proven in a previous solve are not searched at all.
// Without a cache handle the search is bit-identical to the
// pre-memoization solver — same traversal, same explored count — which
// is what the pointer/compiled parity tests pin.
//
// maxNodes caps the number of search nodes (0 means 1<<22).
func BranchAndBound(t *model.Tree, maxNodes int) (*Result, error) {
	return BranchAndBoundContext(context.Background(), t, maxNodes)
}

// BranchAndBoundContext is BranchAndBound with cancellation: the context is
// checked every few hundred search nodes. On cancellation the returned
// error is the context's.
func BranchAndBoundContext(ctx context.Context, t *model.Tree, maxNodes int) (*Result, error) {
	return BranchAndBoundFrom(ctx, t, maxNodes, nil)
}

// bnbScratch is the pooled working set of one branch-and-bound (or
// brute-force) run: the partial and incumbent location vectors, the dense
// per-satellite load table, the DFS stack and its extras prefix-maximum.
type bnbScratch struct {
	loc, best, seed []model.Location
	loads           []float64
	stack           []int32
	exm             []float64
}

var bnbScratches = pool.NewArena(func() *bnbScratch { return new(bnbScratch) })

// BranchAndBoundFrom is BranchAndBoundContext with a warm incumbent: warm,
// when non-nil and feasible, joins the baseline seeds, so a near-optimal
// prior solution (the incremental engine projects the previous revision's
// outcome onto the mutated tree) makes the very first bound nearly tight
// and prunes most of the search. The result is still exact — seeding only
// ever tightens the incumbent, and ties keep the seed itself.
func BranchAndBoundFrom(ctx context.Context, t *model.Tree, maxNodes int, warm *model.Assignment) (*Result, error) {
	return BranchAndBoundOpts(ctx, t, BnBOptions{MaxNodes: maxNodes, Warm: warm})
}

// BnBOptions parameterises one anytime branch-and-bound run.
type BnBOptions struct {
	// MaxNodes caps the number of search nodes (0 means 1<<22).
	MaxNodes int
	// Warm optionally seeds the incumbent (see BranchAndBoundFrom).
	Warm *model.Assignment
	// OnIncumbent, when set, receives every incumbent improvement with a
	// freshly cloned assignment and the global lower bound. It runs on the
	// search goroutine between branches.
	OnIncumbent func(core.Incumbent)
	// BestEffort returns the incumbent with Result.Partial set — instead
	// of ErrBudget or the context error — when the node budget or the
	// deadline expires. The incumbent is always feasible (the baselines
	// seed it before the search starts).
	BestEffort bool
	// Bounds attaches the bound-memoization cache: proven standalone
	// subtree bounds tighten the pruning bound, proven whole instances
	// return without searching, and the solve's own proofs are recorded
	// for the next one. Purely advisory — the returned delay is unchanged
	// (property-tested), only the explored node count shrinks — so the
	// serving layers exclude it from cache identity. Nil disables
	// memoization and the search is bit-identical to the plain solver.
	Bounds *boundcache.Cache
}

// bnbRun is one depth-first branch-and-bound over one subtree span: the
// whole tree for a top-level solve, a single subtree for the
// memoization pre-pass's standalone sub-solves. Runs belonging to one
// solve share the explored/pruned counters, the node budget and the
// pooled scratch vectors.
type bnbRun struct {
	ctx       context.Context
	c         *model.Compiled
	res       *Result // Explored/Pruned accumulate here across sub-solves
	maxNodes  int
	budgetHit bool
	ctxErr    error

	loc, best []model.Location
	loads     []float64
	stack     []int32

	// extra[p] is subtree p's proven standalone lower bound minus
	// Forced[p] — the part of its future cost the forced-host term
	// cannot see — and exm is the running prefix maximum of extra over
	// the stack, maintained push-for-push with it. Both nil when bound
	// memoization is off, leaving the bound exactly hostTime + forced +
	// maxLoad as before.
	extra []float64
	exm   []float64

	hostTime        float64
	forcedRemaining float64
	bestDelay       float64
	spanStart       int32
	spanEnd         int32
	onBetter        func() // top level only: publish res.Delay + stream
}

// pushExtra appends extra e to the prefix-maximum stack exm.
func pushExtra(exm []float64, e float64) []float64 {
	if n := len(exm); n > 0 && exm[n-1] > e {
		e = exm[n-1]
	}
	return append(exm, e)
}

func maxLoadOf(loads []float64) float64 {
	m := 0.0
	for _, v := range loads {
		if v > m {
			m = v
		}
	}
	return m
}

// dfs is the search recursion, identical to the historical closure-based
// solver when extra == nil (the parity tests pin its traversal), with
// the memoized extras folded into the bound otherwise. The stack uses
// explicit push/pop discipline (see BruteForce for why re-sliced
// frontier arguments would alias).
func (r *bnbRun) dfs() {
	if r.budgetHit || r.ctxErr != nil {
		return
	}
	r.res.Explored++
	if r.res.Explored > r.maxNodes {
		r.budgetHit = true
		return
	}
	if r.res.Explored&0xff == 0 {
		if err := r.ctx.Err(); err != nil {
			r.ctxErr = err
			return
		}
	}
	c := r.c
	load := maxLoadOf(r.loads)
	lower := load
	if n := len(r.exm); n > 0 && r.exm[n-1] > lower {
		// Some pending subtree is proven to add more delay than any
		// committed satellite carries yet.
		lower = r.exm[n-1]
	}
	if bound := r.hostTime + r.forcedRemaining + lower; bound >= r.bestDelay {
		r.res.Pruned++
		return // cannot beat the incumbent
	}
	if len(r.stack) == 0 {
		// Complete assignment; the committed terms are now exact.
		if d := r.hostTime + load; d < r.bestDelay {
			r.bestDelay = d
			copy(r.best[r.spanStart:r.spanEnd], r.loc[r.spanStart:r.spanEnd])
			if r.onBetter != nil {
				r.onBetter()
			}
		}
		return
	}
	p := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	if r.exm != nil {
		r.exm = r.exm[:len(r.exm)-1]
	}
	r.forcedRemaining -= c.Forced[p]
	defer func() { // restore for the caller
		r.stack = append(r.stack, p)
		if r.exm != nil {
			r.exm = pushExtra(r.exm, r.extra[p])
		}
		r.forcedRemaining += c.Forced[p]
	}()

	if !c.Proc[p] {
		// Sensor whose parent is hosted (sensors under sunk subtrees
		// are never on the stack): the raw frame crosses the uplink.
		r.loads[c.Sensor[p]] += c.UpComm[p]
		r.dfs()
		r.loads[c.Sensor[p]] -= c.UpComm[p]
		return
	}

	sat := c.Colour[p]
	sinkable := sat != model.NoSatellite && p != c.RootPos
	kids := c.Children(p)
	sink := func() {
		delta := c.SubSat[p] + c.UpComm[p]
		r.loads[sat] += delta
		c.FillSpan(r.loc, p, model.OnSatellite(sat))
		r.dfs()
		c.FillSpan(r.loc, p, model.Host)
		r.loads[sat] -= delta
	}
	host := func() {
		r.hostTime += c.HostTime[p]
		r.loc[p] = model.Host
		r.stack = append(r.stack, kids...)
		// Children re-enter the forced estimate individually.
		for _, ch := range kids {
			r.forcedRemaining += c.Forced[ch]
		}
		if r.exm != nil {
			for _, ch := range kids {
				r.exm = pushExtra(r.exm, r.extra[ch])
			}
		}
		r.dfs()
		for _, ch := range kids {
			r.forcedRemaining -= c.Forced[ch]
		}
		r.stack = r.stack[:len(r.stack)-len(kids)]
		if r.exm != nil {
			r.exm = r.exm[:len(r.exm)-len(kids)]
		}
		r.hostTime -= c.HostTime[p]
	}
	if !sinkable {
		host()
		return
	}
	// Explore the branch with the smaller immediate objective increase
	// first so strong incumbents appear early.
	sinkDelta := math.Max(load, r.loads[sat]+c.SubSat[p]+c.UpComm[p]) - load
	if sinkDelta <= c.HostTime[p] {
		sink()
		host()
	} else {
		host()
		sink()
	}
}

// BranchAndBoundOpts is the anytime entry point: BranchAndBoundFrom plus
// incumbent streaming, best-effort deadline handling and bound
// memoization.
func BranchAndBoundOpts(ctx context.Context, t *model.Tree, opts BnBOptions) (*Result, error) {
	maxNodes := core.IntOr(opts.MaxNodes, 1<<22)
	warm := opts.Warm
	c := model.Compile(t)
	n := c.Len()
	res := &Result{Delay: math.Inf(1)}

	// The memoization pre-pass runs first: a complete entry for the whole
	// instance short-circuits the solve, and the per-subtree extras it
	// proves (or replays from previous solves) arm the bound below.
	var seed *BoundSeed
	if opts.Bounds != nil {
		seed = PrepareBounds(ctx, t, opts.Bounds, maxNodes)
		res.Explored = seed.Explored
		res.Pruned = seed.Pruned
		res.BoundHits, res.BoundMisses = seed.Hits, seed.Misses
		if e := seed.RootEntry; e != nil {
			return RootHitResult(t, c, e, res, opts.OnIncumbent), nil
		}
	}

	sc := bnbScratches.Get()
	defer bnbScratches.Put(sc)
	fr := eval.GetFrame()
	defer eval.PutFrame(fr)
	sc.loc = pool.Keep(sc.loc, n)
	sc.best = pool.Keep(sc.best, n)
	sc.seed = pool.Keep(sc.seed, n)
	sc.loads = pool.Slice(sc.loads, c.NumSats)

	run := &bnbRun{
		ctx: ctx, c: c, res: res, maxNodes: maxNodes,
		loc: sc.loc, best: sc.best, loads: sc.loads,
		bestDelay: math.Inf(1), spanStart: 0, spanEnd: int32(n),
	}

	// The forced-host table at the root — processing no assignment can
	// move off the host — is a cheap valid lower bound on every completion,
	// which is what anytime consumers need to report a gap. It is weak
	// (it ignores communication and satellite load) but never wrong; the
	// memoized pre-pass tightens it, and a completed search replaces it
	// with the proven optimum.
	globalLB := c.Forced[c.RootPos]
	if seed != nil {
		run.extra = seed.Extra
		if seed.RootLB > globalLB {
			globalLB = seed.RootLB
		}
		run.budgetHit = seed.BudgetHit
		run.ctxErr = seed.Err
	}
	res.LowerBound = globalLB
	// stream clones the incumbent out to the callback. sc.best is pooled
	// scratch, so the callback gets a fresh Assignment it may keep.
	stream := func() {
		if opts.OnIncumbent == nil {
			return
		}
		asg := model.NewAssignment(t)
		c.StoreAssignment(asg, sc.best)
		opts.OnIncumbent(core.Incumbent{
			Assignment: asg,
			Delay:      res.Delay,
			LowerBound: globalLB,
			Work:       res.Explored,
		})
	}

	// Seed the incumbent with the better of the two trivial baselines —
	// and the warm hint, when one is offered — so pruning bites from the
	// first branches.
	improve := func(loc []model.Location) {
		if d := eval.FlatDelay(c, loc, fr); d < run.bestDelay {
			run.bestDelay = d
			res.Delay = d
			copy(sc.best, loc)
			stream()
		}
	}
	c.TopmostLocations(sc.seed)
	improve(sc.seed)
	c.BaseLocations(sc.seed)
	improve(sc.seed)
	if warm != nil && warm.Validate(t) == nil {
		c.LoadLocations(sc.seed, warm)
		improve(sc.seed)
	}

	c.BaseLocations(sc.loc)
	run.forcedRemaining = c.Forced[c.RootPos]
	run.stack = append(sc.stack[:0], c.RootPos)
	if run.extra != nil {
		run.exm = append(sc.exm[:0], run.extra[c.RootPos])
	}
	run.onBetter = func() {
		res.Delay = run.bestDelay
		stream()
	}
	run.dfs()
	sc.stack = run.stack[:0]
	if run.exm != nil {
		sc.exm = run.exm[:0]
	}
	if math.IsInf(res.Delay, 1) {
		// Cannot happen for valid trees (all-host is always feasible).
		if run.ctxErr != nil {
			return nil, run.ctxErr
		}
		return nil, ErrBudget
	}
	switch {
	case run.ctxErr != nil:
		if !opts.BestEffort {
			return nil, run.ctxErr
		}
		res.Partial = true
	case run.budgetHit:
		if !opts.BestEffort {
			return nil, ErrBudget
		}
		res.Partial = true
	default:
		// The search completed: the incumbent is the proven optimum.
		// Record it so the next solve of this exact instance — any
		// session revision or corpus member with the same Merkle root —
		// is a lookup instead of a search.
		res.LowerBound = res.Delay
		if seed != nil {
			seed.RecordRoot(opts.Bounds, c, sc.best, res.Delay)
		}
	}
	asg := model.NewAssignment(t)
	c.StoreAssignment(asg, sc.best)
	res.Assignment = asg
	return res, nil
}

// RootHitResult materialises a solve whose whole instance was already
// proven: the cached optimal pattern is replayed onto a fresh
// assignment, no search node is explored, and anytime consumers still
// observe one (final) incumbent. Shared with the work-stealing solver,
// whose pre-pass can hit the same root entry.
func RootHitResult(t *model.Tree, c *model.Compiled, e *boundcache.Entry, res *Result, onInc func(core.Incumbent)) *Result {
	res.Delay = e.LB
	res.LowerBound = e.LB
	loc := make([]model.Location, c.Len())
	c.BaseLocations(loc)
	applyPattern(c, loc, c.RootPos, e.Pattern)
	asg := model.NewAssignment(t)
	c.StoreAssignment(asg, loc)
	res.Assignment = asg
	if onInc != nil {
		inc := model.NewAssignment(t)
		c.StoreAssignment(inc, loc)
		onInc(core.Incumbent{
			Assignment: inc,
			Delay:      res.Delay,
			LowerBound: res.LowerBound,
			Work:       res.Explored,
		})
	}
	return res
}
