package exact

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/pool"
)

// BranchAndBound is the branch-and-bound search the paper's §6 proposes as
// future work, implemented over the same decision tree as BruteForce (host
// vs. sink-whole-subtree per monochromatic CRU) with four prunings:
//
//   - bound: partial host time + the largest committed satellite load +
//     the host time of undecided CRUs that can never leave the host is a
//     lower bound on any completion, so branches at or above the incumbent
//     are cut;
//   - seeding: the incumbent starts at the better of all-host and maximal
//     distribution rather than +∞;
//   - ordering: at each CRU the branch with the smaller immediate
//     objective increase is explored first, so good incumbents appear
//     early.
//
// The search runs entirely against the tree's compiled plan: the
// must-host bounds table (Compiled.Forced) is indexed by post-order
// position and precomputed per revision, subtree sinks are span fills
// over the flat location vector, satellite loads live in a dense pooled
// array, and incumbents are evaluated with the flat kernel — the hot loop
// performs no allocation and no pointer chasing. BranchAndBoundPointer is
// the original node-walking implementation, retained for parity tests.
//
// maxNodes caps the number of search nodes (0 means 1<<22).
func BranchAndBound(t *model.Tree, maxNodes int) (*Result, error) {
	return BranchAndBoundContext(context.Background(), t, maxNodes)
}

// BranchAndBoundContext is BranchAndBound with cancellation: the context is
// checked every few hundred search nodes. On cancellation the returned
// error is the context's.
func BranchAndBoundContext(ctx context.Context, t *model.Tree, maxNodes int) (*Result, error) {
	return BranchAndBoundFrom(ctx, t, maxNodes, nil)
}

// bnbScratch is the pooled working set of one branch-and-bound (or
// brute-force) run: the partial and incumbent location vectors, the dense
// per-satellite load table and the DFS stack.
type bnbScratch struct {
	loc, best, seed []model.Location
	loads           []float64
	stack           []int32
}

var bnbScratches = pool.NewArena(func() *bnbScratch { return new(bnbScratch) })

// BranchAndBoundFrom is BranchAndBoundContext with a warm incumbent: warm,
// when non-nil and feasible, joins the baseline seeds, so a near-optimal
// prior solution (the incremental engine projects the previous revision's
// outcome onto the mutated tree) makes the very first bound nearly tight
// and prunes most of the search. The result is still exact — seeding only
// ever tightens the incumbent, and ties keep the seed itself.
func BranchAndBoundFrom(ctx context.Context, t *model.Tree, maxNodes int, warm *model.Assignment) (*Result, error) {
	return BranchAndBoundOpts(ctx, t, BnBOptions{MaxNodes: maxNodes, Warm: warm})
}

// BnBOptions parameterises one anytime branch-and-bound run.
type BnBOptions struct {
	// MaxNodes caps the number of search nodes (0 means 1<<22).
	MaxNodes int
	// Warm optionally seeds the incumbent (see BranchAndBoundFrom).
	Warm *model.Assignment
	// OnIncumbent, when set, receives every incumbent improvement with a
	// freshly cloned assignment and the global lower bound. It runs on the
	// search goroutine between branches.
	OnIncumbent func(core.Incumbent)
	// BestEffort returns the incumbent with Result.Partial set — instead
	// of ErrBudget or the context error — when the node budget or the
	// deadline expires. The incumbent is always feasible (the baselines
	// seed it before the search starts).
	BestEffort bool
}

// BranchAndBoundOpts is the anytime entry point: BranchAndBoundFrom plus
// incumbent streaming and best-effort deadline handling.
func BranchAndBoundOpts(ctx context.Context, t *model.Tree, opts BnBOptions) (*Result, error) {
	maxNodes := core.IntOr(opts.MaxNodes, 1<<22)
	warm := opts.Warm
	c := model.Compile(t)
	n := c.Len()
	res := &Result{Delay: math.Inf(1)}

	sc := bnbScratches.Get()
	defer bnbScratches.Put(sc)
	fr := eval.GetFrame()
	defer eval.PutFrame(fr)
	sc.loc = pool.Keep(sc.loc, n)
	sc.best = pool.Keep(sc.best, n)
	sc.seed = pool.Keep(sc.seed, n)
	sc.loads = pool.Slice(sc.loads, c.NumSats)

	// The forced-host table at the root — processing no assignment can
	// move off the host — is a cheap valid lower bound on every completion,
	// which is what anytime consumers need to report a gap. It is weak
	// (it ignores communication and satellite load) but never wrong; a
	// completed search replaces it with the proven optimum.
	globalLB := c.Forced[c.RootPos]
	res.LowerBound = globalLB
	// stream clones the incumbent out to the callback. sc.best is pooled
	// scratch, so the callback gets a fresh Assignment it may keep.
	stream := func() {
		if opts.OnIncumbent == nil {
			return
		}
		asg := model.NewAssignment(t)
		c.StoreAssignment(asg, sc.best)
		opts.OnIncumbent(core.Incumbent{
			Assignment: asg,
			Delay:      res.Delay,
			LowerBound: globalLB,
			Work:       res.Explored,
		})
	}

	// Seed the incumbent with the better of the two trivial baselines —
	// and the warm hint, when one is offered — so pruning bites from the
	// first branches.
	improve := func(loc []model.Location) {
		if d := eval.FlatDelay(c, loc, fr); d < res.Delay {
			res.Delay = d
			copy(sc.best, loc)
			stream()
		}
	}
	c.TopmostLocations(sc.seed)
	improve(sc.seed)
	c.BaseLocations(sc.seed)
	improve(sc.seed)
	if warm != nil && warm.Validate(t) == nil {
		c.LoadLocations(sc.seed, warm)
		improve(sc.seed)
	}

	loc, loads := sc.loc, sc.loads
	c.BaseLocations(loc)
	var hostTime float64
	forcedRemaining := c.Forced[c.RootPos]
	budgetHit := false
	var ctxErr error

	maxLoad := func() float64 {
		m := 0.0
		for _, v := range loads {
			if v > m {
				m = v
			}
		}
		return m
	}

	// Explicit shared stack with push/pop discipline (see BruteForce for
	// why re-sliced frontier arguments would alias).
	stack := append(sc.stack[:0], c.RootPos)
	var rec func()
	rec = func() {
		if budgetHit || ctxErr != nil {
			return
		}
		res.Explored++
		if res.Explored > maxNodes {
			budgetHit = true
			return
		}
		if res.Explored&0xff == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return
			}
		}
		bound := hostTime + forcedRemaining + maxLoad()
		if bound >= res.Delay {
			return // cannot beat the incumbent
		}
		if len(stack) == 0 {
			// Complete assignment; the committed terms are now exact.
			if d := hostTime + maxLoad(); d < res.Delay {
				res.Delay = d
				copy(sc.best, loc)
				stream()
			}
			return
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		forcedRemaining -= c.Forced[p]
		defer func() { // restore for the caller
			stack = append(stack, p)
			forcedRemaining += c.Forced[p]
		}()

		if !c.Proc[p] {
			// Sensor whose parent is hosted (sensors under sunk subtrees
			// are never on the stack): the raw frame crosses the uplink.
			loads[c.Sensor[p]] += c.UpComm[p]
			rec()
			loads[c.Sensor[p]] -= c.UpComm[p]
			return
		}

		sat := c.Colour[p]
		sinkable := sat != model.NoSatellite && p != c.RootPos
		kids := c.Children(p)
		sink := func() {
			delta := c.SubSat[p] + c.UpComm[p]
			loads[sat] += delta
			c.FillSpan(loc, p, model.OnSatellite(sat))
			rec()
			c.FillSpan(loc, p, model.Host)
			loads[sat] -= delta
		}
		host := func() {
			hostTime += c.HostTime[p]
			loc[p] = model.Host
			stack = append(stack, kids...)
			// Children re-enter the forced estimate individually.
			for _, ch := range kids {
				forcedRemaining += c.Forced[ch]
			}
			rec()
			for _, ch := range kids {
				forcedRemaining -= c.Forced[ch]
			}
			stack = stack[:len(stack)-len(kids)]
			hostTime -= c.HostTime[p]
		}
		if !sinkable {
			host()
			return
		}
		// Explore the branch with the smaller immediate objective increase
		// first so strong incumbents appear early.
		cur := maxLoad()
		sinkDelta := math.Max(cur, loads[sat]+c.SubSat[p]+c.UpComm[p]) - cur
		if sinkDelta <= c.HostTime[p] {
			sink()
			host()
		} else {
			host()
			sink()
		}
	}
	rec()
	sc.stack = stack[:0]
	if math.IsInf(res.Delay, 1) {
		// Cannot happen for valid trees (all-host is always feasible).
		if ctxErr != nil {
			return nil, ctxErr
		}
		return nil, ErrBudget
	}
	switch {
	case ctxErr != nil:
		if !opts.BestEffort {
			return nil, ctxErr
		}
		res.Partial = true
	case budgetHit:
		if !opts.BestEffort {
			return nil, ErrBudget
		}
		res.Partial = true
	default:
		// The search completed: the incumbent is the proven optimum.
		res.LowerBound = res.Delay
	}
	asg := model.NewAssignment(t)
	c.StoreAssignment(asg, sc.best)
	res.Assignment = asg
	return res, nil
}
