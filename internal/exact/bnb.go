package exact

import (
	"context"
	"math"

	"repro/internal/colouring"
	"repro/internal/eval"
	"repro/internal/model"
)

// BranchAndBound is the branch-and-bound search the paper's §6 proposes as
// future work, implemented over the same decision tree as BruteForce (host
// vs. sink-whole-subtree per monochromatic CRU) with four prunings:
//
//   - bound: partial host time + the largest committed satellite load +
//     the host time of undecided CRUs that can never leave the host is a
//     lower bound on any completion, so branches at or above the incumbent
//     are cut;
//   - seeding: the incumbent starts at the better of all-host and maximal
//     distribution rather than +∞;
//   - ordering: at each CRU the branch with the smaller immediate
//     objective increase is explored first, so good incumbents appear
//     early.
//
// maxNodes caps the number of search nodes (0 means 1<<22).
func BranchAndBound(t *model.Tree, maxNodes int) (*Result, error) {
	return BranchAndBoundContext(context.Background(), t, maxNodes)
}

// BranchAndBoundContext is BranchAndBound with cancellation: the context is
// checked every few hundred search nodes. On cancellation the returned
// error is the context's.
func BranchAndBoundContext(ctx context.Context, t *model.Tree, maxNodes int) (*Result, error) {
	return BranchAndBoundFrom(ctx, t, maxNodes, nil)
}

// BranchAndBoundFrom is BranchAndBoundContext with a warm incumbent: warm,
// when non-nil and feasible, joins the baseline seeds, so a near-optimal
// prior solution (the incremental engine projects the previous revision's
// outcome onto the mutated tree) makes the very first bound nearly tight
// and prunes most of the search. The result is still exact — seeding only
// ever tightens the incumbent, and ties keep the seed itself.
func BranchAndBoundFrom(ctx context.Context, t *model.Tree, maxNodes int, warm *model.Assignment) (*Result, error) {
	if maxNodes <= 0 {
		maxNodes = 1 << 22
	}
	an := colouring.Analyse(t)
	res := &Result{Delay: math.Inf(1)}

	// forcedSub[v] = Σ h over the multi-colour CRUs in v's subtree: they
	// can never leave the host, so their host time is a certain future
	// cost as long as v is undecided.
	forcedSub := make([]float64, t.Len())
	for _, id := range t.Postorder() {
		n := t.Node(id)
		if n.Kind != model.Processing {
			continue
		}
		if _, mono := t.CorrespondentSatellite(id); !mono || id == t.Root() {
			forcedSub[id] = n.HostTime
		}
		for _, c := range n.Children {
			forcedSub[id] += forcedSub[c]
		}
	}

	// Seed the incumbent with the better of the two trivial baselines —
	// and the warm hint, when one is offered — so pruning bites from the
	// first branches.
	seeds := []*model.Assignment{an.FeasibleTopmost(), model.NewAssignment(t)}
	if warm != nil {
		seeds = append(seeds, warm.Clone())
	}
	for _, seed := range seeds {
		if d, err := eval.Delay(t, seed); err == nil && d < res.Delay {
			res.Delay = d
			res.Assignment = seed
		}
	}

	asg := model.NewAssignment(t)
	loads := map[model.SatelliteID]float64{}
	// Raw-frame uplinks of sensors below hosted leaf CRUs accrue when the
	// sensor's parent is decided; track incrementally.
	var hostTime float64
	var forcedRemaining = forcedSub[t.Root()]
	budgetHit := false
	var ctxErr error

	maxLoad := func() float64 {
		m := 0.0
		for _, v := range loads {
			if v > m {
				m = v
			}
		}
		return m
	}

	// Explicit shared stack with push/pop discipline (see BruteForce for
	// why re-sliced frontier arguments would alias).
	stack := []model.NodeID{t.Root()}
	var rec func()
	rec = func() {
		if budgetHit || ctxErr != nil {
			return
		}
		res.Explored++
		if res.Explored > maxNodes {
			budgetHit = true
			return
		}
		if res.Explored&0xff == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return
			}
		}
		bound := hostTime + forcedRemaining + maxLoad()
		if bound >= res.Delay {
			return // cannot beat the incumbent
		}
		if len(stack) == 0 {
			// Complete assignment; the committed terms are now exact.
			if d := hostTime + maxLoad(); d < res.Delay {
				res.Delay = d
				res.Assignment = asg.Clone()
			}
			return
		}
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		forcedRemaining -= forcedSub[id]
		defer func() { // restore for the caller
			stack = append(stack, id)
			forcedRemaining += forcedSub[id]
		}()
		n := t.Node(id)

		if n.Kind == model.SensorKind {
			// Parent is hosted (sensors under sunk subtrees are never on
			// the stack): the raw frame crosses the uplink.
			loads[n.Satellite] += n.UpComm
			rec()
			loads[n.Satellite] -= n.UpComm
			return
		}

		sat, sinkable := t.CorrespondentSatellite(id)
		if id == t.Root() {
			sinkable = false
		}
		sink := func() {
			delta := t.SubtreeSatTime(id) + n.UpComm
			loads[sat] += delta
			placeSubtree(t, asg, id, model.OnSatellite(sat))
			rec()
			resetSubtree(t, asg, id)
			loads[sat] -= delta
		}
		host := func() {
			hostTime += n.HostTime
			asg.Set(id, model.Host)
			stack = append(stack, n.Children...)
			// Children re-enter the forced estimate individually.
			for _, c := range n.Children {
				forcedRemaining += forcedSub[c]
			}
			rec()
			for _, c := range n.Children {
				forcedRemaining -= forcedSub[c]
			}
			stack = stack[:len(stack)-len(n.Children)]
			hostTime -= n.HostTime
		}
		if !sinkable {
			host()
			return
		}
		// Explore the branch with the smaller immediate objective increase
		// first so strong incumbents appear early.
		cur := maxLoad()
		sinkDelta := math.Max(cur, loads[sat]+t.SubtreeSatTime(id)+n.UpComm) - cur
		if sinkDelta <= n.HostTime {
			sink()
			host()
		} else {
			host()
			sink()
		}
	}
	rec()
	if ctxErr != nil {
		return nil, ctxErr
	}
	if budgetHit {
		return nil, ErrBudget
	}
	if math.IsInf(res.Delay, 1) {
		// Cannot happen for valid trees (all-host is always feasible).
		return nil, ErrBudget
	}
	return res, nil
}
