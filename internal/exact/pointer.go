package exact

import (
	"context"
	"math"

	"repro/internal/colouring"
	"repro/internal/eval"
	"repro/internal/model"
)

// BranchAndBoundPointer is the original pointer-walking branch-and-bound:
// per-solve bounds tables built by tree traversal, satellite loads in a
// map, subtree placement by stack walks and incumbents evaluated through
// the pointer evaluator. It is retained as the reference implementation
// the compiled search is parity-tested against (identical incumbents,
// identical node counts) and as the baseline of
// BenchmarkCompiledVsPointer. Semantics match BranchAndBoundFrom exactly.
func BranchAndBoundPointer(ctx context.Context, t *model.Tree, maxNodes int, warm *model.Assignment) (*Result, error) {
	if maxNodes <= 0 {
		maxNodes = 1 << 22
	}
	an := colouring.Analyse(t)
	res := &Result{Delay: math.Inf(1)}

	// forcedSub[v] = Σ h over the multi-colour CRUs in v's subtree: they
	// can never leave the host, so their host time is a certain future
	// cost as long as v is undecided.
	forcedSub := make([]float64, t.Len())
	for _, id := range t.Postorder() {
		n := t.Node(id)
		if n.Kind != model.Processing {
			continue
		}
		if _, mono := t.CorrespondentSatellite(id); !mono || id == t.Root() {
			forcedSub[id] = n.HostTime
		}
		for _, c := range n.Children {
			forcedSub[id] += forcedSub[c]
		}
	}

	seeds := []*model.Assignment{an.FeasibleTopmost(), model.NewAssignment(t)}
	if warm != nil {
		seeds = append(seeds, warm.Clone())
	}
	for _, seed := range seeds {
		if seed.Validate(t) != nil {
			continue
		}
		if d := eval.PointerDelay(t, seed); d < res.Delay {
			res.Delay = d
			res.Assignment = seed
		}
	}

	asg := model.NewAssignment(t)
	loads := map[model.SatelliteID]float64{}
	var hostTime float64
	var forcedRemaining = forcedSub[t.Root()]
	budgetHit := false
	var ctxErr error

	maxLoad := func() float64 {
		m := 0.0
		for _, v := range loads {
			if v > m {
				m = v
			}
		}
		return m
	}

	stack := []model.NodeID{t.Root()}
	var rec func()
	rec = func() {
		if budgetHit || ctxErr != nil {
			return
		}
		res.Explored++
		if res.Explored > maxNodes {
			budgetHit = true
			return
		}
		if res.Explored&0xff == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return
			}
		}
		bound := hostTime + forcedRemaining + maxLoad()
		if bound >= res.Delay {
			return
		}
		if len(stack) == 0 {
			if d := hostTime + maxLoad(); d < res.Delay {
				res.Delay = d
				res.Assignment = asg.Clone()
			}
			return
		}
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		forcedRemaining -= forcedSub[id]
		defer func() {
			stack = append(stack, id)
			forcedRemaining += forcedSub[id]
		}()
		n := t.Node(id)

		if n.Kind == model.SensorKind {
			loads[n.Satellite] += n.UpComm
			rec()
			loads[n.Satellite] -= n.UpComm
			return
		}

		sat, sinkable := t.CorrespondentSatellite(id)
		if id == t.Root() {
			sinkable = false
		}
		sink := func() {
			delta := t.SubtreeSatTime(id) + n.UpComm
			loads[sat] += delta
			placeSubtree(t, asg, id, model.OnSatellite(sat))
			rec()
			resetSubtree(t, asg, id)
			loads[sat] -= delta
		}
		host := func() {
			hostTime += n.HostTime
			asg.Set(id, model.Host)
			stack = append(stack, n.Children...)
			for _, c := range n.Children {
				forcedRemaining += forcedSub[c]
			}
			rec()
			for _, c := range n.Children {
				forcedRemaining -= forcedSub[c]
			}
			stack = stack[:len(stack)-len(n.Children)]
			hostTime -= n.HostTime
		}
		if !sinkable {
			host()
			return
		}
		cur := maxLoad()
		sinkDelta := math.Max(cur, loads[sat]+t.SubtreeSatTime(id)+n.UpComm) - cur
		if sinkDelta <= n.HostTime {
			sink()
			host()
		} else {
			host()
			sink()
		}
	}
	rec()
	if ctxErr != nil {
		return nil, ctxErr
	}
	if budgetHit {
		return nil, ErrBudget
	}
	if math.IsInf(res.Delay, 1) {
		return nil, ErrBudget
	}
	return res, nil
}
