package exact

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/workload"
)

func TestBruteForceObjectiveDelayMatchesBruteForce(t *testing.T) {
	tree := workload.PaperTree()
	plain, err := BruteForce(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	viaObj, err := BruteForceObjective(tree, DelayObjective, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Delay-viaObj.Delay) > 1e-9 {
		t.Fatalf("delay objective %v != plain brute force %v", viaObj.Delay, plain.Delay)
	}
}

func TestBottleneckObjectiveDiffersFromDelay(t *testing.T) {
	// On the epilepsy scenario the two objectives select different optima;
	// the bottleneck optimum's delay must be >= the delay optimum (it
	// optimises the wrong thing) and its bottleneck <= the delay optimum's
	// bottleneck (it optimises its own thing).
	tree := workload.Epilepsy()
	delayOpt, err := BruteForceObjective(tree, DelayObjective, 0)
	if err != nil {
		t.Fatal(err)
	}
	sbOpt, err := BruteForceObjective(tree, BottleneckObjective, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sbOpt.Delay+1e-9 < delayOpt.Delay {
		t.Fatalf("bottleneck optimum has smaller delay (%v < %v)", sbOpt.Delay, delayOpt.Delay)
	}
	bdDelay, err := eval.Evaluate(tree, delayOpt.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	bdSB, err := eval.Evaluate(tree, sbOpt.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if BottleneckObjective(bdSB) > BottleneckObjective(bdDelay)+1e-9 {
		t.Fatalf("bottleneck optimum %v worse than delay optimum's bottleneck %v",
			BottleneckObjective(bdSB), BottleneckObjective(bdDelay))
	}
}

func TestBruteForceObjectiveBudget(t *testing.T) {
	tree := workload.PaperTree()
	if _, err := BruteForceObjective(tree, DelayObjective, 2); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestBottleneckObjectiveConsistencyProperty(t *testing.T) {
	// The bottleneck optimum can never beat Bokhari-style lower bounds on
	// random instances: max(host, maxSat) of ANY assignment >= the optimum.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(1+rng.Intn(8), 1+rng.Intn(3)))
		opt, err := BruteForceObjective(tree, BottleneckObjective, 0)
		if err != nil {
			t.Fatal(err)
		}
		bdOpt, err := eval.Evaluate(tree, opt.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		allHost := model.NewAssignment(tree)
		bdAll, err := eval.Evaluate(tree, allHost)
		if err != nil {
			t.Fatal(err)
		}
		if BottleneckObjective(bdOpt) > BottleneckObjective(bdAll)+1e-9 {
			t.Fatalf("trial %d: optimum %v beaten by all-host %v",
				trial, BottleneckObjective(bdOpt), BottleneckObjective(bdAll))
		}
	}
}
