package exact

import (
	"context"

	"repro/internal/core"
	"repro/internal/model"
)

// The three independent exact solvers register themselves with the core
// registry; importing this package (directly or via
// repro/internal/algorithms) makes them dispatchable by name.
func init() {
	core.Register(core.ParetoDP, core.Capabilities{
		Exact:   true,
		Budget:  true,
		Summary: "exact per-region Pareto dynamic programming (frontier budget)",
	}, exactSolver(ParetoContext))
	core.Register(core.BruteForce, core.Capabilities{
		Exact:   true,
		Budget:  true,
		Summary: "exhaustive enumeration of feasible assignments (node budget)",
	}, exactSolver(BruteForceContext))
	core.Register(core.BranchBound, core.Capabilities{
		Exact:     true,
		Budget:    true,
		WarmStart: true,
		Anytime:   true,
		Bounds:    true,
		Summary:   "branch-and-bound over the cut decision tree (node budget, bound memoization)",
	}, func(ctx context.Context, req core.Request) (core.Finding, error) {
		res, err := BranchAndBoundOpts(ctx, req.Tree, BnBOptions{
			MaxNodes:    req.Budget,
			Warm:        req.Warm,
			OnIncumbent: req.OnIncumbent,
			BestEffort:  req.BestEffort,
			Bounds:      req.Bounds,
		})
		if err != nil {
			return core.Finding{}, err
		}
		return core.Finding{
			Assignment:  res.Assignment,
			Work:        res.Explored,
			Partial:     res.Partial,
			LowerBound:  res.LowerBound,
			Pruned:      res.Pruned,
			BoundHits:   res.BoundHits,
			BoundMisses: res.BoundMisses,
		}, nil
	})
}

// exactSolver adapts one of the exact entry points to the registry's
// SolveFunc shape; Request.Budget maps onto the solver's exploration cap.
func exactSolver(solve func(context.Context, *model.Tree, int) (*Result, error)) core.SolveFunc {
	return func(ctx context.Context, req core.Request) (core.Finding, error) {
		res, err := solve(ctx, req.Tree, req.Budget)
		if err != nil {
			return core.Finding{}, err
		}
		return core.Finding{Assignment: res.Assignment, Work: res.Explored}, nil
	}
}
