package exact

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/colouring"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
)

// paretoOption is one way to cut a (sub)region: hosting the top part costs
// host extra h; the satellite receives load (processing + uplink of the cut
// edges); cut lists the tree-edge children crossed.
type paretoOption struct {
	h    float64
	load float64
	cut  []model.NodeID
}

// Pareto solves the problem exactly by per-region dynamic programming,
// completely independent of the assignment graph:
//
//  1. colour the tree; the must-host closure contributes a fixed host time;
//  2. for every maximal monochromatic region compute the Pareto frontier of
//     (extra host time, satellite load) over all cuts of that region;
//  3. merge frontiers of regions sharing a colour (Minkowski sum, pruned);
//  4. the optimum is min over candidate bottleneck values B of
//     coreHost + Σ_colours minHost(load ≤ B) + B.
//
// maxFrontier caps each frontier's size (0 means 1<<20) — exceeded only on
// adversarially profiled instances; ErrBudget is returned then.
func Pareto(t *model.Tree, maxFrontier int) (*Result, error) {
	return ParetoContext(context.Background(), t, maxFrontier)
}

// ParetoContext is Pareto with cancellation: the context is checked per
// region, per frontier merge, and per bottleneck candidate, so deadlines
// stop adversarially large instances. On cancellation the returned error is
// the context's.
func ParetoContext(ctx context.Context, t *model.Tree, maxFrontier int) (*Result, error) {
	maxFrontier = core.IntOr(maxFrontier, 1<<20)
	an := colouring.Analyse(t)

	coreHost := 0.0
	for _, id := range an.MustHostSet() {
		coreHost += t.Node(id).HostTime
	}

	// Per-colour merged frontiers.
	byColour := map[model.SatelliteID][]paretoOption{}
	for _, region := range an.Regions() {
		opts, err := regionFrontier(ctx, t, region.Root, maxFrontier)
		if err != nil {
			return nil, err
		}
		if existing, ok := byColour[region.Colour]; ok {
			merged, err := minkowski(ctx, existing, opts, maxFrontier)
			if err != nil {
				return nil, err
			}
			byColour[region.Colour] = merged
		} else {
			byColour[region.Colour] = opts
		}
	}

	colours := make([]model.SatelliteID, 0, len(byColour))
	for c := range byColour {
		colours = append(colours, c)
	}
	sort.Slice(colours, func(i, j int) bool { return colours[i] < colours[j] })

	if len(colours) == 0 {
		// Degenerate: no regions (tree is all must-host — impossible since
		// sensor edges always form regions, but handle defensively).
		asg := model.NewAssignment(t)
		d, err := eval.Delay(t, asg)
		if err != nil {
			return nil, err
		}
		return &Result{Assignment: asg, Delay: d}, nil
	}

	// Candidate bottleneck values: every achievable per-colour load.
	candidates := map[float64]bool{}
	for _, opts := range byColour {
		for _, o := range opts {
			candidates[o.load] = true
		}
	}

	best := math.Inf(1)
	var bestChoice map[model.SatelliteID]*paretoOption
	checked := 0
	for b := range candidates {
		checked++
		if checked&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		total := coreHost + b
		choice := map[model.SatelliteID]*paretoOption{}
		feasible := true
		for _, c := range colours {
			var pick *paretoOption
			opts := byColour[c]
			for i := range opts {
				if opts[i].load <= b && (pick == nil || opts[i].h < pick.h) {
					pick = &opts[i]
				}
			}
			if pick == nil {
				feasible = false
				break
			}
			total += pick.h
			choice[c] = pick
		}
		if feasible && total < best {
			best = total
			bestChoice = choice
		}
	}
	if bestChoice == nil {
		return nil, fmt.Errorf("exact: no feasible bottleneck candidate (tree has %d colours)", len(colours))
	}

	// Materialise the assignment from the chosen cuts.
	asg := model.NewAssignment(t)
	for c, pick := range bestChoice {
		for _, child := range pick.cut {
			placeSubtree(t, asg, child, model.OnSatellite(c))
		}
	}
	d, err := eval.Delay(t, asg)
	if err != nil {
		return nil, fmt.Errorf("exact: pareto assignment invalid: %w", err)
	}
	// The enumeration bound equals the achieved delay (see DESIGN.md): the
	// chosen B is the max load candidate; the realised max load may be
	// smaller, making the realised delay ≤ bound; both are optimal.
	if d > best+1e-9 {
		return nil, fmt.Errorf("exact: pareto bound %v < realised delay %v", best, d)
	}
	return &Result{Assignment: asg, Delay: d}, nil
}

// regionFrontier computes the Pareto frontier of cuts of the monochromatic
// subtree rooted at v (v's parent is in the must-host closure).
func regionFrontier(ctx context.Context, t *model.Tree, v model.NodeID, maxFrontier int) ([]paretoOption, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := t.Node(v)
	// Option A: cut the edge above v — the whole subtree goes to the
	// satellite: no extra host time, load = subtree satellite time + uplink.
	cutHere := paretoOption{
		h:    0,
		load: t.SubtreeSatTime(v) + n.UpComm,
		cut:  []model.NodeID{v},
	}
	if n.Kind == model.SensorKind {
		// A sensor cannot be hosted: cutting is the only option.
		return []paretoOption{cutHere}, nil
	}

	// Option B: host v; combine children frontiers (Minkowski sum).
	combined := []paretoOption{{h: n.HostTime}}
	for _, c := range n.Children {
		childOpts, err := regionFrontier(ctx, t, c, maxFrontier)
		if err != nil {
			return nil, err
		}
		merged, err := minkowski(ctx, combined, childOpts, maxFrontier)
		if err != nil {
			return nil, err
		}
		combined = merged
	}
	return prune(append(combined, cutHere), maxFrontier)
}

// minkowski combines two frontiers by pairwise addition and prunes. The
// product can reach the frontier cap squared on adversarial instances, so
// the context is checked every few thousand pair-sums regardless of how
// the work is distributed across rows.
func minkowski(ctx context.Context, a, b []paretoOption, maxFrontier int) ([]paretoOption, error) {
	out := make([]paretoOption, 0, len(a)*len(b))
	sinceCheck := 0
	for i := range a {
		sinceCheck += len(b)
		if sinceCheck >= 1<<14 {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for j := range b {
			cut := make([]model.NodeID, 0, len(a[i].cut)+len(b[j].cut))
			cut = append(cut, a[i].cut...)
			cut = append(cut, b[j].cut...)
			out = append(out, paretoOption{
				h:    a[i].h + b[j].h,
				load: a[i].load + b[j].load,
				cut:  cut,
			})
		}
	}
	return prune(out, maxFrontier)
}

// prune removes dominated options ((h,load) both ≥ another's) and sorts by
// load ascending / h descending.
func prune(opts []paretoOption, maxFrontier int) ([]paretoOption, error) {
	sort.Slice(opts, func(i, j int) bool {
		if opts[i].load != opts[j].load {
			return opts[i].load < opts[j].load
		}
		return opts[i].h < opts[j].h
	})
	kept := opts[:0]
	bestH := math.Inf(1)
	for _, o := range opts {
		if o.h < bestH {
			kept = append(kept, o)
			bestH = o.h
		}
	}
	if len(kept) > maxFrontier {
		return nil, ErrBudget
	}
	return kept, nil
}
