package exact

import (
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
)

// Objective maps a delay breakdown to the scalar being minimised.
// DelayObjective is the paper's end-to-end delay; BottleneckObjective is
// Bokhari's original minimax criterion, used as the baseline the paper
// argues against (experiment E6).
type Objective func(*eval.Breakdown) float64

// DelayObjective returns the end-to-end delay S + B.
func DelayObjective(b *eval.Breakdown) float64 { return b.Delay }

// BottleneckObjective returns max(host time, max satellite load) — the
// "bottleneck processing time" minimised by Bokhari's SB algorithm.
func BottleneckObjective(b *eval.Breakdown) float64 {
	return math.Max(b.HostTime, b.MaxSatLoad)
}

// BruteForceObjective enumerates every feasible assignment minimising an
// arbitrary objective. Same enumeration and budget semantics as BruteForce.
func BruteForceObjective(t *model.Tree, obj Objective, maxExplored int) (*Result, error) {
	maxExplored = core.IntOr(maxExplored, 1<<22)
	res := &Result{Delay: math.Inf(1)}
	best := math.Inf(1)
	asg := model.NewAssignment(t)
	root := t.Root()
	stack := []model.NodeID{root}
	var rec func() error
	rec = func() error {
		if len(stack) == 0 {
			res.Explored++
			if res.Explored > maxExplored {
				return ErrBudget
			}
			bd, err := eval.Evaluate(t, asg)
			if err != nil {
				return err
			}
			if v := obj(bd); v < best {
				best = v
				res.Delay = bd.Delay // reported delay stays the E2E delay
				res.Assignment = asg.Clone()
			}
			return nil
		}
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		defer func() { stack = append(stack, id) }()
		n := t.Node(id)
		if n.Kind == model.SensorKind {
			return rec()
		}
		asg.Set(id, model.Host)
		stack = append(stack, n.Children...)
		err := rec()
		stack = stack[:len(stack)-len(n.Children)]
		if err != nil {
			return err
		}
		if id != root {
			if sat, ok := t.CorrespondentSatellite(id); ok {
				placeSubtree(t, asg, id, model.OnSatellite(sat))
				if err := rec(); err != nil {
					return err
				}
				resetSubtree(t, asg, id)
			}
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	return res, nil
}
