package exact

import (
	"context"
	"math"

	"repro/internal/boundcache"
	"repro/internal/model"
	"repro/internal/pool"
)

// BoundSeed is the product of the bound-memoization pre-pass shared by
// the sequential and the work-stealing branch-and-bound: per-subtree
// pruning extras, a tightened root lower bound, and — when the whole
// instance was proven by an earlier solve — the complete answer.
type BoundSeed struct {
	// Extra[p] is a proven lower bound on subtree p's standalone delay
	// (host time it adds plus satellite load it adds, parent hosted)
	// minus Forced[p]: the part of p's future cost the forced-host bound
	// cannot see. The searches keep a prefix maximum of Extra over their
	// decision stack and fold it into the pruning bound.
	Extra []float64
	// RootLB is a proven floor on the instance's optimal delay, at least
	// Forced[RootPos] and usually far tighter: LowerBound starts here.
	RootLB float64
	// RootKey is the instance's own cache key (Merkle root, Root
	// context); a completed search inserts its proof under it.
	RootKey boundcache.Key
	// RootEntry, when non-nil, is a complete entry for the whole
	// instance: the optimum is RootEntry.LB and RootEntry.Pattern
	// reconstructs it — no search is needed.
	RootEntry *boundcache.Entry

	Explored  int // nodes spent proving uncached subtrees
	Pruned    int // branches cut during those sub-solves
	Hits      int // cache lookups that found a proven entry
	Misses    int // cache lookups that found none
	BudgetHit bool
	Err       error
}

// PrepareBounds consults and populates the bound cache for one solve of
// t. It walks the subtrees in post order (children before parents):
// each memoizable subtree — processing, non-root, span at least the
// cache's MinSpan — either replays its proven standalone bound from the
// cache or is solved standalone right here (a bounded branch-and-bound
// of just that span, itself pruned by the extras already proven for its
// descendants) and the proof inserted. Smaller subtrees get a static
// closed-form floor: for a sensor its uplink cost; for a CRU the better
// of sinking whole (SubSat + UpComm) and hosting it above its
// children's recursive floors.
//
// On a warm re-solve after a mutation only the dirty Merkle spine
// misses, so the pre-pass re-proves exactly the subtrees the edit
// touched and the main search starts with every clean region's exact
// cost already in its bound.
//
// The node budget is shared with the main search via BoundSeed.Explored;
// on budget or context expiry the remaining subtrees degrade to their
// static floors and the caller sees BudgetHit/Err.
func PrepareBounds(ctx context.Context, t *model.Tree, bc *boundcache.Cache, maxNodes int) *BoundSeed {
	if ctx == nil {
		ctx = context.Background()
	}
	c := model.Compile(t)
	n := c.Len()
	hashes := model.SubtreeHashes(t)
	seed := &BoundSeed{}

	// Boundary-context scratch for key construction (see spanKey).
	epoch := make([]int32, c.NumSats)
	gen := int32(0)

	seed.RootKey = spanKey(c, hashes, epoch, &gen, c.RootPos, true)
	cachedRoot := 0.0
	if e, ok := bc.Lookup(seed.RootKey); ok {
		seed.Hits++
		if e.Complete && len(e.Pattern) == n {
			seed.RootEntry = e
			seed.RootLB = e.LB
			return seed
		}
		cachedRoot = e.LB
	} else {
		seed.Misses++
	}

	lbc := make([]float64, n)
	extra := make([]float64, n)
	res := &Result{Delay: math.Inf(1)} // counter sink for the sub-solves

	sc := bnbScratches.Get()
	defer bnbScratches.Put(sc)
	sc.loc = pool.Keep(sc.loc, n)
	sc.best = pool.Keep(sc.best, n)
	sc.loads = pool.Slice(sc.loads, c.NumSats)
	run := &bnbRun{
		ctx: ctx, c: c, res: res, maxNodes: maxNodes,
		loc: sc.loc, best: sc.best, loads: sc.loads,
		stack: sc.stack[:0], exm: sc.exm[:0], extra: extra,
	}
	c.BaseLocations(sc.loc)
	minSpan := int32(bc.MinSpan())

	// One ascending pass: positions are post-ordered, so every child's
	// static floor and extra are ready before its parent needs them, and
	// a standalone sub-solve of p reuses the exact bounds just proven
	// for p's own descendants.
	for p := int32(0); p < int32(n); p++ {
		if !c.Proc[p] {
			// A sensor with a hosted parent puts its raw frame on the
			// uplink; nothing forced offsets it.
			lbc[p] = c.UpComm[p]
			extra[p] = c.UpComm[p]
			continue
		}
		sum, mx := 0.0, 0.0
		for _, ch := range c.Children(p) {
			sum += c.Forced[ch]
			if e := lbc[ch] - c.Forced[ch]; e > mx {
				mx = e
			}
		}
		// Host option: p's own time, every child's forced floor, and the
		// largest child excess — any completion hosting p pays at least
		// this. Sink option (monochromatic non-root only): the whole
		// subtree's satellite time plus its uplink, exactly.
		v := c.HostTime[p] + sum + mx
		if sat := c.Colour[p]; sat != model.NoSatellite && p != c.RootPos {
			if s := c.SubSat[p] + c.UpComm[p]; s < v {
				v = s
			}
		}
		lbc[p] = v
		tb := v
		if p != c.RootPos && p+1-c.Start[p] >= minSpan {
			k := spanKey(c, hashes, epoch, &gen, p, false)
			if e, ok := bc.Lookup(k); ok {
				seed.Hits++
				if e.LB > tb {
					tb = e.LB
				}
			} else {
				seed.Misses++
				if d, ok := run.solveSpan(p, v-c.Forced[p]); ok {
					bc.Insert(k, completedEntry(c, sc.best, p, d))
					if d > tb {
						tb = d
					}
				}
			}
		}
		if e := tb - c.Forced[p]; e > 0 {
			extra[p] = e
		}
	}
	sc.stack = run.stack[:0]
	sc.exm = run.exm[:0]

	rootLB := lbc[c.RootPos]
	if cachedRoot > rootLB {
		rootLB = cachedRoot
	}
	seed.RootLB = rootLB
	if e := rootLB - c.Forced[c.RootPos]; e > 0 {
		extra[c.RootPos] = e
	}
	seed.Extra = extra
	seed.Explored = res.Explored
	seed.Pruned = res.Pruned
	seed.BudgetHit = run.budgetHit
	seed.Err = run.ctxErr
	return seed
}

// RecordRoot inserts a completed search's whole-instance proof — the
// optimal locations and their delay — under the pre-pass's root key, so
// the next solve of the same instance is a cache hit.
func (seed *BoundSeed) RecordRoot(bc *boundcache.Cache, c *model.Compiled, best []model.Location, d float64) {
	bc.Insert(seed.RootKey, completedEntry(c, best, c.RootPos, d))
}

// solveSpan runs the standalone branch-and-bound of the subtree at p —
// parent hosted, sinking allowed (p is never the global root here) —
// and returns its exact optimal delay, leaving the optimal locations in
// best's span. rootExtra seeds the stack's prefix maximum with p's own
// static floor so a tight baseline can prune the root node itself. ok
// is false when the budget or deadline expired first; nothing is then
// proven and the caller falls back to the static floor.
func (r *bnbRun) solveSpan(p int32, rootExtra float64) (float64, bool) {
	if r.budgetHit || r.ctxErr != nil {
		return 0, false
	}
	c := r.c
	start, end := c.Start[p], p+1

	// Closed-form baselines: everything hosted (the span's sensors load
	// their satellites, every CRU's time lands on the host) and the
	// whole subtree sunk. loads is all-zero between sub-solves, so the
	// per-satellite sums are exact; they are re-zeroed explicitly
	// because float backtracking does not cancel bit-exactly.
	hostAdd := 0.0
	for q := start; q < end; q++ {
		if c.Proc[q] {
			hostAdd += c.HostTime[q]
		} else {
			r.loads[c.Sensor[q]] += c.UpComm[q]
		}
	}
	r.bestDelay = hostAdd + maxLoadOf(r.loads)
	for q := start; q < end; q++ {
		if !c.Proc[q] {
			r.loads[c.Sensor[q]] = 0
		}
	}
	r.spanStart, r.spanEnd = start, end
	copy(r.best[start:end], r.loc[start:end]) // all-host baseline
	if s := c.SubSat[p] + c.UpComm[p]; s < r.bestDelay {
		r.bestDelay = s
		c.FillSpan(r.best, p, model.OnSatellite(c.Colour[p]))
	}

	r.hostTime = 0
	r.forcedRemaining = c.Forced[p]
	r.stack = append(r.stack[:0], p)
	if rootExtra < 0 {
		rootExtra = 0
	}
	r.exm = append(r.exm[:0], rootExtra)
	r.onBetter = nil
	r.dfs()
	r.stack = r.stack[:0]
	r.exm = r.exm[:0]
	// The unwinding restored loc's span to all-host; zero the span's
	// satellites exactly for the next sub-solve.
	for q := start; q < end; q++ {
		if !c.Proc[q] {
			r.loads[c.Sensor[q]] = 0
		}
	}
	if r.budgetHit || r.ctxErr != nil {
		return 0, false
	}
	return r.bestDelay, true
}

// spanKey builds subtree p's cache key: its Merkle hash, the root
// context bit, and the boundary context — how many distinct satellites
// and maximal same-satellite leaf runs sit under p. epoch/gen implement
// an O(leaves) distinct count without clearing between calls.
func spanKey(c *model.Compiled, hashes [][32]byte, epoch []int32, gen *int32, p int32, root bool) boundcache.Key {
	k := boundcache.Key{Hash: hashes[c.Post[p]], Root: root}
	lo, hi := c.LeafLo[p], c.LeafHi[p]
	if lo < 0 || hi < lo || int(hi) >= len(c.Leaves) {
		return k
	}
	*gen++
	g := *gen
	prev := model.NoSatellite
	for i := lo; i <= hi; i++ {
		s := c.Sensor[c.Leaves[i]]
		if s != prev {
			k.Bands++
			prev = s
		}
		if epoch[s] != g {
			epoch[s] = g
			k.Sats++
		}
	}
	return k
}

// completedEntry packages the optimal sub-assignment of the subtree at
// p (read from best's span) as a complete cache entry of delay d. The
// pattern is colour-relative — one sunk bit per span offset — so it
// replays onto any structurally identical subtree.
func completedEntry(c *model.Compiled, best []model.Location, p int32, d float64) *boundcache.Entry {
	start := c.Start[p]
	pat := make([]bool, p+1-start)
	for i := range pat {
		q := start + int32(i)
		pat[i] = !c.Proc[q] || best[q] != model.Host
	}
	return &boundcache.Entry{LB: d, Complete: true, Pattern: pat}
}

// applyPattern replays a complete entry's pattern onto loc's span
// (pre-filled with BaseLocations): sunk CRUs go to their own subtree
// colour, which is uniform over a sunk monochromatic region, so the
// pattern is position-local and valid across structurally identical
// trees.
func applyPattern(c *model.Compiled, loc []model.Location, p int32, pat []bool) {
	start := c.Start[p]
	for i, sunk := range pat {
		q := start + int32(i)
		if sunk && c.Proc[q] {
			loc[q] = model.OnSatellite(c.Colour[q])
		}
	}
}
