package exact

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/pool"
)

// Result is an exact optimum with search statistics.
type Result struct {
	Assignment *model.Assignment
	Delay      float64
	Explored   int // assignments (BruteForce) or search nodes (BranchAndBound) visited

	// Partial marks a best-effort branch-and-bound result: the budget or
	// deadline expired and BnBOptions.BestEffort asked for the incumbent
	// instead of an error. Optimality is not proven.
	Partial bool
	// LowerBound is a valid floor on the optimal delay: the forced-host
	// bound while the search runs, and the proven optimum (== Delay) once
	// an exact search completes. Zero when the solver computes none.
	LowerBound float64

	// Node accounting of the memoized branch-and-bound searches: branches
	// cut by the pruning bound, and bound-cache lookups that hit or
	// missed (a miss is re-proven and inserted). All zero when bound
	// memoization is off.
	Pruned      int
	BoundHits   int
	BoundMisses int
}

// ErrBudget is returned when a solver exceeds its exploration budget. It
// is the core registry's structured sentinel, so errors.Is matches it under
// either name.
var ErrBudget = core.ErrBudgetExceeded

// BruteForce enumerates all feasible assignments: walking the tree top-down,
// every CRU whose subtree is monochromatic may either take its whole subtree
// to the correspondent satellite or stay on the host and let each child
// decide. The enumeration runs on the compiled plan — positions on the
// stack, span fills for subtree sinks, and the flat zero-allocation
// kernel for each complete assignment (enumerated assignments are
// feasible by construction, so no per-leaf validation walk is needed).
// maxExplored caps the enumeration (0 means 2^22).
func BruteForce(t *model.Tree, maxExplored int) (*Result, error) {
	return BruteForceContext(context.Background(), t, maxExplored)
}

// BruteForceContext is BruteForce with cancellation: the context is checked
// every few hundred enumerated assignments, so deadlines stop the
// exponential search promptly. On cancellation the returned error is the
// context's.
func BruteForceContext(ctx context.Context, t *model.Tree, maxExplored int) (*Result, error) {
	maxExplored = core.IntOr(maxExplored, 1<<22)
	c := model.Compile(t)
	n := c.Len()
	res := &Result{Delay: math.Inf(1)}

	sc := bnbScratches.Get()
	defer bnbScratches.Put(sc)
	fr := eval.GetFrame()
	defer eval.PutFrame(fr)
	sc.loc = pool.Keep(sc.loc, n)
	sc.best = pool.Keep(sc.best, n)
	loc := sc.loc
	c.BaseLocations(loc)
	found := false

	// Explicit shared stack with push/pop discipline: passing re-sliced
	// frontiers into the recursion would let a deeper append clobber the
	// caller's pending entries through the shared backing array.
	stack := append(sc.stack[:0], c.RootPos)
	var rec func() error
	rec = func() error {
		if len(stack) == 0 {
			res.Explored++
			if res.Explored > maxExplored {
				return ErrBudget
			}
			if res.Explored&0xff == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if d := eval.FlatDelay(c, loc, fr); d < res.Delay {
				res.Delay = d
				copy(sc.best, loc)
				found = true
			}
			return nil
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		defer func() { stack = append(stack, p) }() // restore for the caller

		if !c.Proc[p] {
			// Sensors are pinned; nothing to decide.
			return rec()
		}

		// Choice 1: p stays on the host, children decide independently.
		kids := c.Children(p)
		loc[p] = model.Host
		stack = append(stack, kids...)
		err := rec()
		stack = stack[:len(stack)-len(kids)]
		if err != nil {
			return err
		}

		// Choice 2: p (and its whole subtree) moves to its correspondent
		// satellite — only feasible for monochromatic non-root subtrees.
		if p != c.RootPos {
			if sat := c.Colour[p]; sat != model.NoSatellite {
				c.FillSpan(loc, p, model.OnSatellite(sat))
				if err := rec(); err != nil {
					return err
				}
				// Restore: host for CRUs (the next branch will overwrite).
				c.FillSpan(loc, p, model.Host)
			}
		}
		return nil
	}
	err := rec()
	sc.stack = stack[:0]
	if err != nil {
		return nil, err
	}
	if found {
		asg := model.NewAssignment(t)
		c.StoreAssignment(asg, sc.best)
		res.Assignment = asg
		// A finished enumeration proves its own answer, exactly like a
		// completed branch-and-bound: pin the floor to the optimum so
		// anytime consumers see a closed gap from the Result itself.
		res.LowerBound = res.Delay
	}
	return res, nil
}

func placeSubtree(t *model.Tree, asg *model.Assignment, root model.NodeID, loc model.Location) {
	stack := []model.NodeID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.Node(id).Kind == model.Processing {
			asg.Set(id, loc)
		}
		stack = append(stack, t.Node(id).Children...)
	}
}

func resetSubtree(t *model.Tree, asg *model.Assignment, root model.NodeID) {
	placeSubtree(t, asg, root, model.Host)
}

// CountAssignments returns the number of feasible assignments of t without
// materialising them — the search-space size reported in EXPERIMENTS.md.
func CountAssignments(t *model.Tree) float64 {
	// ways(v) = number of cuts of the subtree at v, counting "v goes to its
	// satellite" (if monochromatic) plus the product of children's ways
	// when v stays hosted. Sensors contribute 1.
	var ways func(id model.NodeID) float64
	ways = func(id model.NodeID) float64 {
		n := t.Node(id)
		if n.Kind == model.SensorKind {
			return 1
		}
		prod := 1.0
		for _, c := range n.Children {
			prod *= ways(c)
		}
		if _, mono := t.CorrespondentSatellite(id); mono && id != t.Root() {
			prod++
		}
		return prod
	}
	return ways(t.Root())
}
