package exact

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
)

// Result is an exact optimum with search statistics.
type Result struct {
	Assignment *model.Assignment
	Delay      float64
	Explored   int // assignments (BruteForce) or search nodes (BranchAndBound) visited
}

// ErrBudget is returned when a solver exceeds its exploration budget. It
// is the core registry's structured sentinel, so errors.Is matches it under
// either name.
var ErrBudget = core.ErrBudgetExceeded

// BruteForce enumerates all feasible assignments: walking the tree top-down,
// every CRU whose subtree is monochromatic may either take its whole subtree
// to the correspondent satellite or stay on the host and let each child
// decide. maxExplored caps the enumeration (0 means 2^22).
func BruteForce(t *model.Tree, maxExplored int) (*Result, error) {
	return BruteForceContext(context.Background(), t, maxExplored)
}

// BruteForceContext is BruteForce with cancellation: the context is checked
// every few hundred enumerated assignments, so deadlines stop the
// exponential search promptly. On cancellation the returned error is the
// context's.
func BruteForceContext(ctx context.Context, t *model.Tree, maxExplored int) (*Result, error) {
	if maxExplored <= 0 {
		maxExplored = 1 << 22
	}
	res := &Result{Delay: math.Inf(1)}
	asg := model.NewAssignment(t)

	root := t.Root()
	// Explicit shared stack with push/pop discipline: passing re-sliced
	// frontiers into the recursion would let a deeper append clobber the
	// caller's pending entries through the shared backing array.
	stack := []model.NodeID{root}
	var rec func() error
	rec = func() error {
		if len(stack) == 0 {
			res.Explored++
			if res.Explored > maxExplored {
				return ErrBudget
			}
			if res.Explored&0xff == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			d, err := eval.Delay(t, asg)
			if err != nil {
				return fmt.Errorf("exact: enumeration produced invalid assignment: %w", err)
			}
			if d < res.Delay {
				res.Delay = d
				res.Assignment = asg.Clone()
			}
			return nil
		}
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		defer func() { stack = append(stack, id) }() // restore for the caller
		n := t.Node(id)

		if n.Kind == model.SensorKind {
			// Sensors are pinned; nothing to decide.
			return rec()
		}

		// Choice 1: id stays on the host, children decide independently.
		asg.Set(id, model.Host)
		stack = append(stack, n.Children...)
		err := rec()
		stack = stack[:len(stack)-len(n.Children)]
		if err != nil {
			return err
		}

		// Choice 2: id (and its whole subtree) moves to its correspondent
		// satellite — only feasible for monochromatic non-root subtrees.
		if id != root {
			if sat, ok := t.CorrespondentSatellite(id); ok {
				placeSubtree(t, asg, id, model.OnSatellite(sat))
				if err := rec(); err != nil {
					return err
				}
				// Restore: host for CRUs (the next branch will overwrite).
				resetSubtree(t, asg, id)
			}
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	return res, nil
}

func placeSubtree(t *model.Tree, asg *model.Assignment, root model.NodeID, loc model.Location) {
	stack := []model.NodeID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.Node(id).Kind == model.Processing {
			asg.Set(id, loc)
		}
		stack = append(stack, t.Node(id).Children...)
	}
}

func resetSubtree(t *model.Tree, asg *model.Assignment, root model.NodeID) {
	placeSubtree(t, asg, root, model.Host)
}

// CountAssignments returns the number of feasible assignments of t without
// materialising them — the search-space size reported in EXPERIMENTS.md.
func CountAssignments(t *model.Tree) float64 {
	// ways(v) = number of cuts of the subtree at v, counting "v goes to its
	// satellite" (if monochromatic) plus the product of children's ways
	// when v stays hosted. Sensors contribute 1.
	var ways func(id model.NodeID) float64
	ways = func(id model.NodeID) float64 {
		n := t.Node(id)
		if n.Kind == model.SensorKind {
			return 1
		}
		prod := 1.0
		for _, c := range n.Children {
			prod *= ways(c)
		}
		if _, mono := t.CorrespondentSatellite(id); mono && id != t.Root() {
			prod++
		}
		return prod
	}
	return ways(t.Root())
}
