// Package exact provides three independent exact solvers for the
// tree-to-host-satellites assignment problem, used as ground truth for the
// paper's graph-based algorithm and as the baselines of experiments E9/E10:
//
//   - BruteForce enumerates every feasible assignment (exponential; small
//     instances only);
//   - Pareto solves by dynamic programming over per-region Pareto frontiers
//     of (host-time, satellite-load) pairs — polynomial for bounded
//     frontier sizes and fully independent of the dual-graph machinery;
//   - BranchAndBound prunes the brute-force tree with delay lower bounds —
//     one of the two heuristic directions the paper's §6 names for future
//     work (here made exact because the objective admits a monotone bound).
package exact
