// Package colouring implements the paper's colouring scheme (§5.1): every
// satellite is painted a distinguishable colour, and colours are propagated
// from the sensors towards the root. A tree edge whose subtree contains
// sensors of exactly one satellite inherits that colour; an edge whose
// subtree spans several satellites is a *conflict* — the CRU below it must
// merge context from multiple satellites and therefore has to be deployed
// on the host.
//
// The analysis also derives everything downstream construction needs: the
// must-host closure (the upward-closed set of CRUs pinned to the host), the
// colour regions (maximal monochromatic subtrees hanging off the closure,
// which are the independent units of the Pareto/branch-and-bound solvers),
// and the per-colour leaf bands (runs of consecutive sensors, which decide
// whether the paper's §5.4 expansion step applies directly).
//
// Since the flat-plan relayering, the heavy lifting happens once per
// tree revision inside model.Compile; Analyse is a thin view exposing
// the plan's folded results under the paper's vocabulary.
package colouring
