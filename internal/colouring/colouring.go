package colouring

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Analysis is the colouring of one tree. Construct with Analyse.
//
// Since the flat-plan relayering, Analyse is a thin view over
// model.Compile: the monochromatic-colour results, must-host closure and
// leaf bands are computed once per tree revision inside the compiled plan
// and re-exposed here under the paper's vocabulary.
type Analysis struct {
	tree *model.Tree
	plan *model.Compiled

	edgeColour []model.SatelliteID // per child node: colour of edge (parent,child); NoSatellite = conflict
	conflict   []bool              // per child node: edge (parent,child) conflicts
	mustHost   []bool              // per node: CRU is pinned to the host
	regions    []Region
	bands      map[model.SatelliteID][]Band
}

// Region is a maximal monochromatic subtree: its root's parent is in the
// must-host closure, and every sensor below attaches to Colour. Regions are
// the independent decision units of an assignment — each is cut somewhere
// between "entirely on the satellite" and "entirely on the host".
type Region struct {
	Root   model.NodeID
	Colour model.SatelliteID
}

// Band is a maximal run of consecutive leaf positions (inclusive) whose
// sensors all attach to one satellite.
type Band struct {
	Lo, Hi int
}

// Analyse colours the tree. The tree must be valid (model.Builder output).
func Analyse(t *model.Tree) *Analysis {
	c := model.Compile(t)
	a := &Analysis{
		tree:       t,
		plan:       c,
		edgeColour: make([]model.SatelliteID, t.Len()),
		conflict:   make([]bool, t.Len()),
		mustHost:   make([]bool, t.Len()),
		bands:      map[model.SatelliteID][]Band{},
	}
	for _, id := range t.Preorder() {
		p := c.Pos[id]
		a.edgeColour[id] = model.NoSatellite
		if c.Parent[p] >= 0 {
			if col := c.Colour[p]; col != model.NoSatellite {
				a.edgeColour[id] = col
			} else {
				a.conflict[id] = true
			}
		}
		a.mustHost[id] = c.MustHost[p]
	}
	// Regions: monochromatic subtrees hanging directly off the closure.
	for _, id := range t.Preorder() {
		node := t.Node(id)
		if node.Parent == model.None || a.mustHost[id] || !a.mustHost[node.Parent] {
			continue // not a topmost non-pinned node
		}
		a.regions = append(a.regions, Region{Root: id, Colour: a.edgeColour[id]})
	}
	// Bands: re-expose the plan's per-satellite leaf runs.
	for _, sat := range t.Satellites() {
		for _, span := range c.Bands(sat.ID) {
			a.bands[sat.ID] = append(a.bands[sat.ID], Band{Lo: int(span.Lo), Hi: int(span.Hi)})
		}
	}
	return a
}

// Tree returns the analysed tree.
func (a *Analysis) Tree() *model.Tree { return a.tree }

// Plan returns the compiled plan the analysis was derived from.
func (a *Analysis) Plan() *model.Compiled { return a.plan }

// EdgeColour returns the colour of the edge above child, and whether that
// edge conflicts (spans several satellites). For the root (no edge above),
// it returns (NoSatellite, false).
func (a *Analysis) EdgeColour(child model.NodeID) (model.SatelliteID, bool) {
	return a.edgeColour[child], a.conflict[child]
}

// Conflicts returns the children of all conflicting edges, in pre-order.
func (a *Analysis) Conflicts() []model.NodeID {
	var out []model.NodeID
	for _, id := range a.tree.Preorder() {
		if a.conflict[id] {
			out = append(out, id)
		}
	}
	return out
}

// MustHost reports whether node id is pinned to the host (root, or a CRU
// whose subtree spans several satellites).
func (a *Analysis) MustHost(id model.NodeID) bool { return a.mustHost[id] }

// MustHostSet returns the must-host CRUs in pre-order.
func (a *Analysis) MustHostSet() []model.NodeID {
	var out []model.NodeID
	for _, id := range a.tree.Preorder() {
		if a.mustHost[id] {
			out = append(out, id)
		}
	}
	return out
}

// Regions returns the maximal monochromatic subtrees in pre-order of their
// roots.
func (a *Analysis) Regions() []Region { return a.regions }

// Bands returns the leaf bands of satellite sat, in left-to-right order.
func (a *Analysis) Bands(sat model.SatelliteID) []Band { return a.bands[sat] }

// Contiguous reports whether satellite sat's sensors occupy one contiguous
// run of leaves — the implicit precondition of the paper's expansion step.
func (a *Analysis) Contiguous(sat model.SatelliteID) bool { return len(a.bands[sat]) <= 1 }

// AllContiguous reports whether every satellite is contiguous.
func (a *Analysis) AllContiguous() bool {
	for _, sat := range a.tree.Satellites() {
		if !a.Contiguous(sat.ID) {
			return false
		}
	}
	return true
}

// FeasibleTopmost returns the "topmost" feasible assignment: exactly the
// must-host closure on the host and every region entirely on its satellite.
// This is the minimal-host-set assignment — the cut the §5.4 adapted
// algorithm starts from — and doubles as the "maximal distribution"
// heuristic baseline. Placement is a span fill over the compiled plan.
func (a *Analysis) FeasibleTopmost() *model.Assignment {
	asg := model.NewAssignment(a.tree)
	c := a.plan
	for _, r := range a.regions {
		p := c.Pos[r.Root]
		loc := model.OnSatellite(r.Colour)
		for q := c.Start[p]; q <= p; q++ {
			if c.Proc[q] {
				asg.Set(c.Post[q], loc)
			}
		}
	}
	return asg
}

// Report renders the colouring in the style of the paper's Figure 5: one
// line per edge with its colour, then the conflict list and must-host set.
func (a *Analysis) Report() string {
	t := a.tree
	var b strings.Builder
	b.WriteString("edge colouring (parent -> child: colour):\n")
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.Parent == model.None {
			continue
		}
		colour := "CONFLICT"
		if !a.conflict[id] {
			colour = t.SatelliteName(a.edgeColour[id])
		}
		fmt.Fprintf(&b, "  %s -> %s: %s\n", t.Node(n.Parent).Name, n.Name, colour)
	}
	var conflictNames, hostNames []string
	for _, id := range a.Conflicts() {
		conflictNames = append(conflictNames, t.Node(id).Name)
	}
	for _, id := range a.MustHostSet() {
		hostNames = append(hostNames, t.Node(id).Name)
	}
	fmt.Fprintf(&b, "conflicting edges into: %s\n", strings.Join(conflictNames, " "))
	fmt.Fprintf(&b, "must-host CRUs: %s\n", strings.Join(hostNames, " "))
	var regionNames []string
	for _, r := range a.regions {
		regionNames = append(regionNames, fmt.Sprintf("%s@%s", t.Node(r.Root).Name, t.SatelliteName(r.Colour)))
	}
	sort.Strings(regionNames)
	fmt.Fprintf(&b, "colour regions: %s\n", strings.Join(regionNames, " "))
	return b.String()
}
