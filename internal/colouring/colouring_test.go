package colouring

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// TestPaperTreeColouring is experiment E2: the colouring of the paper tree
// must reproduce Figure 5 — conflicts exactly on ⟨CRU1,CRU2⟩ and
// ⟨CRU1,CRU3⟩, must-host set exactly {CRU1, CRU2, CRU3}.
func TestPaperTreeColouring(t *testing.T) {
	tree := workload.PaperTree()
	a := Analyse(tree)

	var conflicts []string
	for _, id := range a.Conflicts() {
		conflicts = append(conflicts, tree.Node(id).Name)
	}
	if got := strings.Join(conflicts, " "); got != "CRU2 CRU3" {
		t.Errorf("conflict edges into %q, want CRU2 CRU3 (Figure 5)", got)
	}

	var hosts []string
	for _, id := range a.MustHostSet() {
		hosts = append(hosts, tree.Node(id).Name)
	}
	if got := strings.Join(hosts, " "); got != "CRU1 CRU2 CRU3" {
		t.Errorf("must-host = %q, want CRU1 CRU2 CRU3 (paper §5.1)", got)
	}

	// Edge colours per Figure 5.
	wantColours := map[string]string{
		"CRU4": "R", "CRU9": "R", "CRU10": "R", "CRU11": "R",
		"CRU5": "B", "CRU6": "B", "CRU13": "B",
		"CRU7": "Y",
		"CRU8": "G", "CRU12": "G",
	}
	for name, want := range wantColours {
		id, ok := tree.NodeByName(name)
		if !ok {
			t.Fatalf("missing node %s", name)
		}
		sat, conflict := a.EdgeColour(id)
		if conflict {
			t.Errorf("edge into %s conflicts, want colour %s", name, want)
			continue
		}
		if got := tree.SatelliteName(sat); got != want {
			t.Errorf("edge into %s coloured %s, want %s", name, got, want)
		}
	}
}

func TestPaperTreeRegions(t *testing.T) {
	tree := workload.PaperTree()
	a := Analyse(tree)
	want := map[string]string{"CRU4": "R", "CRU5": "B", "CRU6": "B", "CRU7": "Y", "CRU8": "G"}
	if len(a.Regions()) != len(want) {
		t.Fatalf("regions = %d, want %d", len(a.Regions()), len(want))
	}
	for _, r := range a.Regions() {
		name := tree.Node(r.Root).Name
		if got := tree.SatelliteName(r.Colour); want[name] != got {
			t.Errorf("region %s coloured %s, want %s", name, got, want[name])
		}
	}
}

func TestPaperTreeBandsContiguous(t *testing.T) {
	tree := workload.PaperTree()
	a := Analyse(tree)
	if !a.AllContiguous() {
		t.Fatal("paper tree colour bands must be contiguous (leaf order R R R B B Y G)")
	}
	// Colour B covers leaf positions 3..4 (sensor5, sensor13).
	bID := model.SatelliteID(-1)
	for _, s := range tree.Satellites() {
		if s.Name == "B" {
			bID = s.ID
		}
	}
	bands := a.Bands(bID)
	if len(bands) != 1 || bands[0].Lo != 3 || bands[0].Hi != 4 {
		t.Errorf("B bands = %+v, want [{3 4}]", bands)
	}
}

func TestScatteredColoursNotContiguous(t *testing.T) {
	// Leaf order sat0, sat1, sat0: sat0 has two bands.
	b := model.NewBuilder()
	s0 := b.Satellite("s0")
	s1 := b.Satellite("s1")
	root := b.Root("root", 1, 1)
	for i, sat := range []model.SatelliteID{s0, s1, s0} {
		c := b.Child(root, "c"+string('0'+byte(i)), 1, 1, 1)
		b.Sensor(c, "x"+string('0'+byte(i)), sat, 1)
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyse(tree)
	if a.Contiguous(s0) {
		t.Error("s0 should not be contiguous")
	}
	if !a.Contiguous(s1) {
		t.Error("s1 should be contiguous")
	}
	if a.AllContiguous() {
		t.Error("AllContiguous should be false")
	}
}

func TestSingleSatelliteTree(t *testing.T) {
	b := model.NewBuilder()
	s0 := b.Satellite("only")
	root := b.Root("root", 1, 1)
	c := b.Child(root, "c", 1, 1, 1)
	b.Sensor(c, "x", s0, 1)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyse(tree)
	// No conflicts; only the root is pinned (application convention).
	if len(a.Conflicts()) != 0 {
		t.Errorf("conflicts = %v, want none", a.Conflicts())
	}
	hosts := a.MustHostSet()
	if len(hosts) != 1 || hosts[0] != tree.Root() {
		t.Errorf("must-host = %v, want root only", hosts)
	}
	if len(a.Regions()) != 1 || a.Regions()[0].Root != c {
		t.Errorf("regions = %+v, want just c", a.Regions())
	}
}

func TestSensorDirectlyUnderConflictNode(t *testing.T) {
	// A sensor hanging directly off a must-host CRU forms a degenerate
	// region (its edge is always cut).
	b := model.NewBuilder()
	s0 := b.Satellite("s0")
	s1 := b.Satellite("s1")
	root := b.Root("root", 1, 1)
	b.Sensor(root, "direct", s0, 1)
	c := b.Child(root, "c", 1, 1, 1)
	b.Sensor(c, "x", s1, 1)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyse(tree)
	direct, _ := tree.NodeByName("direct")
	found := false
	for _, r := range a.Regions() {
		if r.Root == direct {
			found = true
			if r.Colour != s0 {
				t.Errorf("direct sensor region coloured %v", r.Colour)
			}
		}
	}
	if !found {
		t.Error("sensor under must-host CRU should be its own region")
	}
}

func TestMustHostUpwardClosedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		spec := workload.DefaultRandomSpec(2+rng.Intn(30), 1+rng.Intn(5))
		spec.Clustered = trial%2 == 0
		tree := workload.Random(rng, spec)
		a := Analyse(tree)
		for _, id := range tree.Preorder() {
			n := tree.Node(id)
			if n.Kind != model.Processing || n.Parent == model.None {
				continue
			}
			if a.MustHost(id) && !a.MustHost(n.Parent) {
				t.Fatalf("must-host not upward closed at %s", n.Name)
			}
			// Edge colour consistency: conflict iff subtree spans >= 2 satellites.
			_, conflict := a.EdgeColour(id)
			if conflict != (len(tree.SubtreeSatellites(id)) >= 2) {
				t.Fatalf("conflict flag inconsistent at %s", n.Name)
			}
		}
	}
}

func TestRegionsPartitionNonHostNodesProperty(t *testing.T) {
	// Every processing CRU is either must-host or inside exactly one region;
	// every sensor is inside exactly one region or a child of a must-host CRU.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(2+rng.Intn(25), 1+rng.Intn(4)))
		a := Analyse(tree)
		covered := map[model.NodeID]int{}
		for _, r := range a.Regions() {
			stack := []model.NodeID{r.Root}
			for len(stack) > 0 {
				id := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				covered[id]++
				stack = append(stack, tree.Node(id).Children...)
			}
		}
		for _, id := range tree.Preorder() {
			n := tree.Node(id)
			switch {
			case n.Kind == model.Processing && a.MustHost(id):
				if covered[id] != 0 {
					t.Fatalf("must-host %s inside a region", n.Name)
				}
			default:
				if covered[id] != 1 {
					t.Fatalf("node %s covered %d times, want 1", n.Name, covered[id])
				}
			}
		}
	}
}

func TestFeasibleTopmost(t *testing.T) {
	tree := workload.PaperTree()
	a := Analyse(tree)
	asg := a.FeasibleTopmost()
	if err := asg.Validate(tree); err != nil {
		t.Fatalf("topmost assignment invalid: %v", err)
	}
	if got := len(asg.HostSet(tree)); got != 3 {
		t.Errorf("topmost host set size = %d, want 3 (CRU1..3)", got)
	}
	// Property: topmost is valid on random instances too.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		spec := workload.DefaultRandomSpec(2+rng.Intn(30), 1+rng.Intn(5))
		spec.Clustered = trial%2 == 0
		tr := workload.Random(rng, spec)
		an := Analyse(tr)
		if err := an.FeasibleTopmost().Validate(tr); err != nil {
			t.Fatalf("trial %d: invalid topmost: %v", trial, err)
		}
	}
}

func TestReport(t *testing.T) {
	a := Analyse(workload.PaperTree())
	r := a.Report()
	for _, want := range []string{"CONFLICT", "must-host CRUs: CRU1 CRU2 CRU3", "CRU4@R", "colour regions"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
	if a.Tree() == nil {
		t.Error("Tree() returned nil")
	}
}
