package assign

import (
	"context"

	"repro/internal/core"
)

// The graph-based solvers register themselves with the core registry;
// importing this package (directly or via repro/internal/algorithms) makes
// them dispatchable by name without any edit to core.
func init() {
	core.Register(core.AdaptedSSB, core.Capabilities{
		Exact:    true,
		Weighted: true,
		Summary:  "paper §5.4: coloured assignment graph + adapted SSB search with expansion",
	}, graphSolver((*Graph).SolveAdaptedContext))
	core.Register(core.LabelSearch, core.Capabilities{
		Exact:    true,
		Weighted: true,
		Summary:  "exact dominance-pruned coloured label search over the assignment graph",
	}, graphSolver((*Graph).SolveLabelSearchContext))
}

// graphSolver adapts one of the Graph solve methods to the registry's
// SolveFunc shape.
func graphSolver(solve func(*Graph, context.Context, Options) (*Solution, error)) core.SolveFunc {
	return func(ctx context.Context, req core.Request) (core.Finding, error) {
		sol, err := solve(BuildPlan(req.Plan), ctx, Options{Weights: req.Weights})
		if err != nil {
			return core.Finding{}, err
		}
		return core.Finding{
			Assignment: sol.Assignment,
			Work:       sol.Stats.Iterations + sol.Stats.Labels,
			Stats:      &sol.Stats,
		}, nil
	}
}
