package assign

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/workload"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestFigure6GraphShape is experiment E3: the coloured assignment graph of
// the paper tree has 8 faces (7 sensors + 1) and 17 coloured dual edges
// (19 tree edges minus the 2 conflicting ones).
func TestFigure6GraphShape(t *testing.T) {
	g := Build(workload.PaperTree())
	if g.Faces() != 8 {
		t.Errorf("faces = %d, want 8", g.Faces())
	}
	if g.NumEdges() != 17 {
		t.Errorf("dual edges = %d, want 17", g.NumEdges())
	}
	if g.Source() != 0 || g.Sink() != 7 {
		t.Errorf("terminals = %d,%d, want 0,7", g.Source(), g.Sink())
	}
	// No dual edge may cross a conflicting tree edge.
	tree := g.Tree()
	for _, e := range g.Edges() {
		for _, child := range e.CutChildren {
			if _, conflict := g.Analysis().EdgeColour(child); conflict {
				t.Errorf("dual edge %d crosses conflicting tree edge into %s",
					e.ID, tree.Node(child).Name)
			}
		}
		if e.From >= e.To {
			t.Errorf("edge %d not monotone: %d -> %d", e.ID, e.From, e.To)
		}
	}
}

// TestFigure8SigmaLabels is experiment E4: the σ labelling must reproduce
// every label printed in the paper's Figure 8, using the symbolic profiles
// (h_i = 2^i makes sums uniquely decodable).
func TestFigure8SigmaLabels(t *testing.T) {
	tree := workload.PaperTreeSymbolic()
	g := Build(tree)
	h := workload.SymbolicH

	sigmaOf := func(child string) float64 {
		id, ok := tree.NodeByName(child)
		if !ok {
			t.Fatalf("no node %s", child)
		}
		return g.TreeSigma(id)
	}
	cases := []struct {
		child string
		want  float64
		label string
	}{
		{"CRU2", h(1), "h1 (left-most edge leaving the root)"},
		{"CRU3", 0, "0 (second child of the root)"},
		{"CRU4", h(1) + h(2), "h1+h2 (printed on S-B crossing <CRU2,CRU4>)"},
		{"CRU5", 0, "0"},
		{"CRU9", h(1) + h(2) + h(4), "h1+h2+h4"},
		{"sensor9", h(1) + h(2) + h(4) + h(9), "h1+h2+h4+h9 (printed)"},
		{"sensor10", h(10), "h10 (printed)"},
		{"sensor11", h(11), "h11 (printed)"},
		{"CRU6", h(3), "h3"},
		{"CRU13", h(3) + h(6), "h3+h6"},
		{"sensor13", h(3) + h(6) + h(13), "h3+h6+h13 (printed)"},
		{"sensor7", h(7), "h7 (printed)"},
		{"CRU12", h(8), "h8 (printed)"},
		{"sensor12", h(8) + h(12), "h8+h12 (printed)"},
		{"sensor5", h(5), "h5"},
	}
	for _, tc := range cases {
		if got := sigmaOf(tc.child); !almost(got, tc.want) {
			t.Errorf("σ(edge into %s) = %v, want %v = %s", tc.child, got, tc.want, tc.label)
		}
	}
}

// TestSection53BetaExamples checks the two β examples spelled out in §5.3:
// the edge crossing ⟨CRU3,CRU6⟩ carries s6+s13+c63, and the edge crossing
// the sensor edge of CRU10 carries c_{s,10}.
func TestSection53BetaExamples(t *testing.T) {
	tree := workload.PaperTreeSymbolic()
	g := Build(tree)

	cru6, _ := tree.NodeByName("CRU6")
	e, ok := g.EdgeCrossing(cru6)
	if !ok {
		t.Fatal("no dual edge crosses <CRU3,CRU6>")
	}
	want := workload.SymbolicS(6) + workload.SymbolicS(13) + workload.SymbolicC(6)
	if !almost(e.Beta, want) {
		t.Errorf("β(<CRU3,CRU6>) = %v, want s6+s13+c63 = %v", e.Beta, want)
	}
	if got := tree.SatelliteName(e.Colour); got != "B" {
		t.Errorf("colour = %s, want B", got)
	}

	sensor10, _ := tree.NodeByName("sensor10")
	e, ok = g.EdgeCrossing(sensor10)
	if !ok {
		t.Fatal("no dual edge crosses the sensor edge of CRU10")
	}
	if !almost(e.Beta, workload.SymbolicRaw(10)) {
		t.Errorf("β(sensor edge of CRU10) = %v, want c_s10 = %v", e.Beta, workload.SymbolicRaw(10))
	}
}

// TestConflictEdgesHaveNoDual verifies ⟨CRU1,CRU2⟩ and ⟨CRU1,CRU3⟩ are
// excluded from the assignment graph.
func TestConflictEdgesHaveNoDual(t *testing.T) {
	tree := workload.PaperTree()
	g := Build(tree)
	for _, name := range []string{"CRU2", "CRU3"} {
		id, _ := tree.NodeByName(name)
		if _, ok := g.EdgeCrossing(id); ok {
			t.Errorf("conflicting edge into %s has a dual edge", name)
		}
	}
}

// TestDecodeEncodeBijection: for random feasible assignments, Encode then
// Decode must round-trip, and the path's S + coloured-B must equal the
// assignment's delay — the core semantic guarantee of the construction.
func TestDecodeEncodeBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		spec := workload.DefaultRandomSpec(1+rng.Intn(15), 1+rng.Intn(4))
		spec.Clustered = trial%2 == 0
		tree := workload.Random(rng, spec)
		g := Build(tree)

		asg := randomFeasible(rng, tree)
		ids, err := g.Encode(asg)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		back, err := g.Decode(ids)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if back.Key() != asg.Key() {
			t.Fatalf("trial %d: decode(encode(a)) != a:\n%s\nvs\n%s",
				trial, back.Describe(tree), asg.Describe(tree))
		}
		s, _, b := g.Measures(ids)
		breakdown, err := eval.Evaluate(tree, asg)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(s, breakdown.HostTime) {
			t.Fatalf("trial %d: S(path) = %v, host time = %v", trial, s, breakdown.HostTime)
		}
		if !almost(b, breakdown.MaxSatLoad) {
			t.Fatalf("trial %d: B(path) = %v, max sat load = %v", trial, b, breakdown.MaxSatLoad)
		}
		if !almost(s+b, breakdown.Delay) {
			t.Fatalf("trial %d: S+B = %v, delay = %v", trial, s+b, breakdown.Delay)
		}
	}
}

// randomFeasible samples a random feasible assignment by walking the tree
// top-down and sinking monochromatic subtrees with probability 1/2.
func randomFeasible(rng *rand.Rand, tree *model.Tree) *model.Assignment {
	asg := model.NewAssignment(tree)
	var walk func(id model.NodeID)
	walk = func(id model.NodeID) {
		n := tree.Node(id)
		if n.Kind == model.SensorKind {
			return
		}
		if id != tree.Root() {
			if sat, ok := tree.CorrespondentSatellite(id); ok && rng.Intn(2) == 0 {
				stack := []model.NodeID{id}
				for len(stack) > 0 {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if tree.Node(v).Kind == model.Processing {
						asg.Set(v, model.OnSatellite(sat))
					}
					stack = append(stack, tree.Node(v).Children...)
				}
				return
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root())
	return asg
}

// TestPathsTileLeaves: every monotone S→T path decodes to a cut whose leaf
// intervals tile [0, L-1]; Decode rejects edge sets that do not.
func TestPathsTileLeaves(t *testing.T) {
	tree := workload.PaperTree()
	g := Build(tree)
	// A single dual edge that does not reach T's face cannot decode.
	for _, e := range g.Edges() {
		if e.From == 0 && e.To < g.Sink() {
			if _, err := g.Decode([]int{e.ID}); err == nil {
				t.Fatalf("partial path decoded without error")
			}
			break
		}
	}
}

func TestReportFigure6(t *testing.T) {
	g := Build(workload.PaperTree())
	r := g.Report()
	for _, want := range []string{"8 faces", "17 coloured edges", "crossing <CRU3,CRU6>", "F0"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestSigmaSumEqualsHostTimeProperty(t *testing.T) {
	// Σσ over the encoded path of ANY feasible assignment equals the host
	// execution time — the Figure-8 labelling invariant, on random trees.
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 40; trial++ {
		spec := workload.DefaultRandomSpec(1+rng.Intn(20), 1+rng.Intn(5))
		spec.Clustered = trial%2 == 1
		tree := workload.Random(rng, spec)
		g := Build(tree)
		for k := 0; k < 5; k++ {
			asg := randomFeasible(rng, tree)
			ids, err := g.Encode(asg)
			if err != nil {
				t.Fatal(err)
			}
			s, _, _ := g.Measures(ids)
			bd, err := eval.Evaluate(tree, asg)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(s, bd.HostTime) {
				t.Fatalf("trial %d.%d: Σσ = %v, host time = %v", trial, k, s, bd.HostTime)
			}
		}
	}
}
