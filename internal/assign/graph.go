package assign

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/colouring"
	"repro/internal/model"
)

// Edge is one dual edge of the assignment graph. CutChildren usually holds
// the single tree-edge child the dual edge crosses; super-edges created by
// the §5.4 expansion step list every crossed child in left-to-right order.
type Edge struct {
	ID          int
	From, To    int // faces, From < To
	Sigma, Beta float64
	Colour      model.SatelliteID
	CutChildren []model.NodeID
	Expanded    bool // true for §5.4 super-edges
}

// Graph is the coloured doubly weighted assignment graph of one tree.
type Graph struct {
	tree     *model.Tree
	plan     *model.Compiled     // flat plan; nil only for BuildPointer graphs
	analysis *colouring.Analysis // nil until Analysis() on plan-built graphs
	faces    int                 // L+1: terminal S is face 0, terminal T is face L
	edges    []Edge
	out      [][]int // face -> edge IDs (enabled and disabled alike)

	treeSigma []float64 // pointer-built graphs only; plan graphs read plan.Sigma
}

// ErrUnsolvable is returned when no S→T path exists, i.e. some root-to-
// sensor path consists solely of conflicting edges. With sensors as leaves
// this cannot happen (a sensor edge is never conflicting), so hitting it
// indicates a corrupted graph.
var ErrUnsolvable = errors.New("assign: assignment graph has no S→T path")

// Build constructs the assignment graph from the tree's compiled plan:
// one pass over the flat arrays — σ labels, subtree β aggregates, leaf
// spans and edge colours are all precomputed — instead of the recursive
// pointer walks BuildPointer performs. Edge order (pre-order of the
// crossed child) matches BuildPointer exactly, so the two graphs are
// interchangeable tie-break for tie-break.
func Build(t *model.Tree) *Graph {
	return BuildPlan(model.Compile(t))
}

// BuildPlan returns the assignment graph of a compiled plan, memoised on
// the plan: the graph is immutable (solvers work on pooled workGraph
// copies), so every solve of the same tree revision shares one build.
func BuildPlan(c *model.Compiled) *Graph {
	if g, ok := c.Dual().(*Graph); ok {
		return g
	}
	t := c.Tree()
	g := &Graph{
		tree:  t,
		plan:  c,
		faces: t.SensorCount() + 1,
	}
	g.out = make([][]int, g.faces)
	g.edges = make([]Edge, 0, c.Len()-1)
	// One arena for every edge's single-element CutChildren slice.
	children := make([]model.NodeID, 0, c.Len()-1)
	for _, p := range c.Pre {
		if c.Parent[p] < 0 {
			continue
		}
		colour := c.Colour[p]
		if colour == model.NoSatellite {
			continue // the cut may never pass through a conflicting edge
		}
		children = append(children, c.Post[p])
		g.addEdge(Edge{
			From:        int(c.LeafLo[p]),
			To:          int(c.LeafHi[p]) + 1,
			Sigma:       c.Sigma[p],
			Beta:        c.SubSat[p] + c.UpComm[p],
			Colour:      colour,
			CutChildren: children[len(children)-1 : len(children) : len(children)],
		})
	}
	c.StoreDual(g)
	return g
}

// BuildWithAnalysis constructs the assignment graph for a pre-computed
// colouring. The analysis and the graph share one compiled plan, so the
// graph build costs the same flat pass either way; the memoised graph is
// never mutated (it may be shared with concurrent solves).
func BuildWithAnalysis(an *colouring.Analysis) *Graph {
	return BuildPlan(an.Plan())
}

// BuildPointer is the original pointer-walking construction: Figure-8 σ
// labelling by recursive pre-order propagation and per-edge subtree
// lookups through the tree's node structs. It is retained as the
// reference implementation the plan-built graph is parity-tested against
// and as the baseline of BenchmarkCompiledVsPointer.
func BuildPointer(t *model.Tree) *Graph {
	an := colouring.Analyse(t)
	g := &Graph{
		tree:      t,
		analysis:  an,
		faces:     t.SensorCount() + 1,
		treeSigma: make([]float64, t.Len()),
	}
	g.out = make([][]int, g.faces)

	// Figure-8 σ labelling: pre-order; the edge to a node's leftmost child
	// carries (label of the edge into the node) + h(node); other child
	// edges carry 0. The leftmost edge out of the root carries h(root).
	wIn := make([]float64, t.Len())
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.Kind != model.Processing {
			continue
		}
		for k, c := range n.Children {
			label := 0.0
			if k == 0 {
				label = wIn[id] + n.HostTime
			}
			g.treeSigma[c] = label
			wIn[c] = label
		}
	}

	// One dual edge per non-conflicting tree edge.
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.Parent == model.None {
			continue
		}
		colour, conflict := an.EdgeColour(id)
		if conflict {
			continue
		}
		lo, hi := t.LeafRange(id)
		g.addEdge(Edge{
			From:        lo,
			To:          hi + 1,
			Sigma:       g.treeSigma[id],
			Beta:        t.SubtreeSatTime(id) + n.UpComm,
			Colour:      colour,
			CutChildren: []model.NodeID{id},
		})
	}
	return g
}

func (g *Graph) addEdge(e Edge) int {
	e.ID = len(g.edges)
	g.edges = append(g.edges, e)
	g.out[e.From] = append(g.out[e.From], e.ID)
	return e.ID
}

// Tree returns the underlying tree.
func (g *Graph) Tree() *model.Tree { return g.tree }

// Analysis returns the graph's colouring view. Pointer-built graphs
// carry theirs; plan-built graphs derive one on demand (cheap — the
// heavy results live in the shared compiled plan) instead of caching it,
// because a memoised graph may be shared across concurrent solves.
func (g *Graph) Analysis() *colouring.Analysis {
	if g.analysis != nil {
		return g.analysis
	}
	return colouring.Analyse(g.tree)
}

// contiguous reports whether the colour's sensors occupy one leaf band.
func (g *Graph) contiguous(sat model.SatelliteID) bool {
	if g.plan != nil {
		return g.plan.Contiguous(sat)
	}
	return g.analysis.Contiguous(sat)
}

// bandRange returns the colour's single leaf band; ok is false when the
// colour's sensors split into several bands (or none).
func (g *Graph) bandRange(sat model.SatelliteID) (lo, hi int, ok bool) {
	if g.plan != nil {
		b := g.plan.Bands(sat)
		if len(b) != 1 {
			return 0, 0, false
		}
		return int(b[0].Lo), int(b[0].Hi), true
	}
	b := g.analysis.Bands(sat)
	if len(b) != 1 {
		return 0, 0, false
	}
	return b[0].Lo, b[0].Hi, true
}

// Faces returns the number of dual nodes (faces), terminals included.
func (g *Graph) Faces() int { return g.faces }

// Source returns the S terminal's face index (always 0).
func (g *Graph) Source() int { return 0 }

// Sink returns the T terminal's face index (always Faces()-1).
func (g *Graph) Sink() int { return g.faces - 1 }

// NumEdges returns the dual edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns dual edge id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns all dual edges. The slice is shared; do not modify.
func (g *Graph) Edges() []Edge { return g.edges }

// TreeSigma returns the Figure-8 σ label of the tree edge above child.
func (g *Graph) TreeSigma(child model.NodeID) float64 {
	if g.plan != nil {
		return g.plan.Sigma[g.plan.Pos[child]]
	}
	return g.treeSigma[child]
}

// EdgeCrossing returns the dual edge crossing the tree edge above child, or
// false when that edge conflicts (has no dual edge).
func (g *Graph) EdgeCrossing(child model.NodeID) (Edge, bool) {
	for _, e := range g.edges {
		if !e.Expanded && len(e.CutChildren) == 1 && e.CutChildren[0] == child {
			return e, true
		}
	}
	return Edge{}, false
}

// Measures computes the coloured path measures of a set of dual edges:
// S = Σ σ, per-colour β sums, and B = max over colours (§5.3's
// "maximum among the summations of the bottleneck weights per colour").
func (g *Graph) Measures(edgeIDs []int) (s float64, perColour map[model.SatelliteID]float64, b float64) {
	perColour = map[model.SatelliteID]float64{}
	for _, id := range edgeIDs {
		e := &g.edges[id]
		s += e.Sigma
		perColour[e.Colour] += e.Beta
	}
	for _, v := range perColour {
		if v > b {
			b = v
		}
	}
	return s, perColour, b
}

// Decode converts an S→T path (dual edge IDs) into the assignment it
// represents: the subtree under every crossed tree edge runs on the edge's
// colour satellite; everything above the cut runs on the host. The result
// is validated; an error indicates a path that is not a proper cut.
func (g *Graph) Decode(edgeIDs []int) (*model.Assignment, error) {
	asg := model.NewAssignment(g.tree)
	covered := 0
	for _, id := range edgeIDs {
		e := &g.edges[id]
		for _, child := range e.CutChildren {
			lo, hi := g.tree.LeafRange(child)
			covered += hi - lo + 1
			g.placeSubtree(asg, child, model.OnSatellite(e.Colour))
		}
	}
	if covered != g.tree.SensorCount() {
		return nil, fmt.Errorf("assign: path covers %d of %d leaves", covered, g.tree.SensorCount())
	}
	if err := asg.Validate(g.tree); err != nil {
		return nil, fmt.Errorf("assign: decoded path is infeasible: %w", err)
	}
	return asg, nil
}

// placeSubtree sinks the processing CRUs under root onto loc: a span fill
// over the compiled plan when one is attached, a stack walk otherwise.
func (g *Graph) placeSubtree(asg *model.Assignment, root model.NodeID, loc model.Location) {
	if c := g.plan; c != nil {
		p := c.Pos[root]
		for q := c.Start[p]; q <= p; q++ {
			if c.Proc[q] {
				asg.Set(c.Post[q], loc)
			}
		}
		return
	}
	stack := []model.NodeID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := g.tree.Node(id)
		if n.Kind == model.Processing {
			asg.Set(id, loc)
		}
		stack = append(stack, n.Children...)
	}
}

// Encode is the inverse of Decode: it maps a feasible assignment to the
// dual-edge IDs of the S→T path representing it. Used by tests to show the
// path↔assignment correspondence is a bijection.
func (g *Graph) Encode(asg *model.Assignment) ([]int, error) {
	if err := asg.Validate(g.tree); err != nil {
		return nil, err
	}
	byChild := map[model.NodeID]int{}
	for _, e := range g.edges {
		if !e.Expanded && len(e.CutChildren) == 1 {
			byChild[e.CutChildren[0]] = e.ID
		}
	}
	var ids []int
	for _, pair := range asg.CutEdges(g.tree) {
		id, ok := byChild[pair[1]]
		if !ok {
			return nil, fmt.Errorf("assign: cut edge into %s has no dual edge", g.tree.Node(pair[1]).Name)
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return g.edges[ids[i]].From < g.edges[ids[j]].From })
	return ids, nil
}

// Report renders the graph in the style of Figure 6: the face count and one
// line per dual edge with its faces, crossed tree edge, colour and weights.
func (g *Graph) Report() string {
	t := g.tree
	var sb strings.Builder
	fmt.Fprintf(&sb, "assignment graph: %d faces (S=F0 ... T=F%d), %d coloured edges\n",
		g.faces, g.faces-1, len(g.edges))
	for _, e := range g.edges {
		names := make([]string, len(e.CutChildren))
		for i, c := range e.CutChildren {
			parent := t.Node(c).Parent
			names[i] = fmt.Sprintf("<%s,%s>", t.Node(parent).Name, t.Node(c).Name)
		}
		fmt.Fprintf(&sb, "  F%d -> F%-3d %-8s σ=%-8.4g β=%-8.4g crossing %s\n",
			e.From, e.To, t.SatelliteName(e.Colour), e.Sigma, e.Beta, strings.Join(names, "+"))
	}
	return sb.String()
}
