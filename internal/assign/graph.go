package assign

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/colouring"
	"repro/internal/model"
)

// Edge is one dual edge of the assignment graph. CutChildren usually holds
// the single tree-edge child the dual edge crosses; super-edges created by
// the §5.4 expansion step list every crossed child in left-to-right order.
type Edge struct {
	ID          int
	From, To    int // faces, From < To
	Sigma, Beta float64
	Colour      model.SatelliteID
	CutChildren []model.NodeID
	Expanded    bool // true for §5.4 super-edges
}

// Graph is the coloured doubly weighted assignment graph of one tree.
type Graph struct {
	tree     *model.Tree
	analysis *colouring.Analysis
	faces    int // L+1: terminal S is face 0, terminal T is face L
	edges    []Edge
	out      [][]int // face -> edge IDs (enabled and disabled alike)

	treeSigma []float64 // per child node: Figure-8 σ label of its tree edge
}

// ErrUnsolvable is returned when no S→T path exists, i.e. some root-to-
// sensor path consists solely of conflicting edges. With sensors as leaves
// this cannot happen (a sensor edge is never conflicting), so hitting it
// indicates a corrupted graph.
var ErrUnsolvable = errors.New("assign: assignment graph has no S→T path")

// Build colours the tree and constructs its assignment graph.
func Build(t *model.Tree) *Graph {
	return BuildWithAnalysis(colouring.Analyse(t))
}

// BuildWithAnalysis constructs the assignment graph for a pre-computed
// colouring.
func BuildWithAnalysis(an *colouring.Analysis) *Graph {
	t := an.Tree()
	g := &Graph{
		tree:      t,
		analysis:  an,
		faces:     t.SensorCount() + 1,
		treeSigma: make([]float64, t.Len()),
	}
	g.out = make([][]int, g.faces)

	// Figure-8 σ labelling: pre-order; the edge to a node's leftmost child
	// carries (label of the edge into the node) + h(node); other child
	// edges carry 0. The leftmost edge out of the root carries h(root).
	wIn := make([]float64, t.Len())
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.Kind != model.Processing {
			continue
		}
		for k, c := range n.Children {
			label := 0.0
			if k == 0 {
				label = wIn[id] + n.HostTime
			}
			g.treeSigma[c] = label
			wIn[c] = label
		}
	}

	// One dual edge per non-conflicting tree edge.
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.Parent == model.None {
			continue
		}
		colour, conflict := an.EdgeColour(id)
		if conflict {
			continue // the cut may never pass through a conflicting edge
		}
		lo, hi := t.LeafRange(id)
		g.addEdge(Edge{
			From:        lo,
			To:          hi + 1,
			Sigma:       g.treeSigma[id],
			Beta:        t.SubtreeSatTime(id) + n.UpComm,
			Colour:      colour,
			CutChildren: []model.NodeID{id},
		})
	}
	return g
}

func (g *Graph) addEdge(e Edge) int {
	e.ID = len(g.edges)
	g.edges = append(g.edges, e)
	g.out[e.From] = append(g.out[e.From], e.ID)
	return e.ID
}

// Tree returns the underlying tree.
func (g *Graph) Tree() *model.Tree { return g.tree }

// Analysis returns the colouring the graph was built from.
func (g *Graph) Analysis() *colouring.Analysis { return g.analysis }

// Faces returns the number of dual nodes (faces), terminals included.
func (g *Graph) Faces() int { return g.faces }

// Source returns the S terminal's face index (always 0).
func (g *Graph) Source() int { return 0 }

// Sink returns the T terminal's face index (always Faces()-1).
func (g *Graph) Sink() int { return g.faces - 1 }

// NumEdges returns the dual edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns dual edge id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns all dual edges. The slice is shared; do not modify.
func (g *Graph) Edges() []Edge { return g.edges }

// TreeSigma returns the Figure-8 σ label of the tree edge above child.
func (g *Graph) TreeSigma(child model.NodeID) float64 { return g.treeSigma[child] }

// EdgeCrossing returns the dual edge crossing the tree edge above child, or
// false when that edge conflicts (has no dual edge).
func (g *Graph) EdgeCrossing(child model.NodeID) (Edge, bool) {
	for _, e := range g.edges {
		if !e.Expanded && len(e.CutChildren) == 1 && e.CutChildren[0] == child {
			return e, true
		}
	}
	return Edge{}, false
}

// Measures computes the coloured path measures of a set of dual edges:
// S = Σ σ, per-colour β sums, and B = max over colours (§5.3's
// "maximum among the summations of the bottleneck weights per colour").
func (g *Graph) Measures(edgeIDs []int) (s float64, perColour map[model.SatelliteID]float64, b float64) {
	perColour = map[model.SatelliteID]float64{}
	for _, id := range edgeIDs {
		e := &g.edges[id]
		s += e.Sigma
		perColour[e.Colour] += e.Beta
	}
	for _, v := range perColour {
		if v > b {
			b = v
		}
	}
	return s, perColour, b
}

// Decode converts an S→T path (dual edge IDs) into the assignment it
// represents: the subtree under every crossed tree edge runs on the edge's
// colour satellite; everything above the cut runs on the host. The result
// is validated; an error indicates a path that is not a proper cut.
func (g *Graph) Decode(edgeIDs []int) (*model.Assignment, error) {
	asg := model.NewAssignment(g.tree)
	covered := 0
	for _, id := range edgeIDs {
		e := &g.edges[id]
		for _, child := range e.CutChildren {
			lo, hi := g.tree.LeafRange(child)
			covered += hi - lo + 1
			g.placeSubtree(asg, child, model.OnSatellite(e.Colour))
		}
	}
	if covered != g.tree.SensorCount() {
		return nil, fmt.Errorf("assign: path covers %d of %d leaves", covered, g.tree.SensorCount())
	}
	if err := asg.Validate(g.tree); err != nil {
		return nil, fmt.Errorf("assign: decoded path is infeasible: %w", err)
	}
	return asg, nil
}

func (g *Graph) placeSubtree(asg *model.Assignment, root model.NodeID, loc model.Location) {
	stack := []model.NodeID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := g.tree.Node(id)
		if n.Kind == model.Processing {
			asg.Set(id, loc)
		}
		stack = append(stack, n.Children...)
	}
}

// Encode is the inverse of Decode: it maps a feasible assignment to the
// dual-edge IDs of the S→T path representing it. Used by tests to show the
// path↔assignment correspondence is a bijection.
func (g *Graph) Encode(asg *model.Assignment) ([]int, error) {
	if err := asg.Validate(g.tree); err != nil {
		return nil, err
	}
	byChild := map[model.NodeID]int{}
	for _, e := range g.edges {
		if !e.Expanded && len(e.CutChildren) == 1 {
			byChild[e.CutChildren[0]] = e.ID
		}
	}
	var ids []int
	for _, pair := range asg.CutEdges(g.tree) {
		id, ok := byChild[pair[1]]
		if !ok {
			return nil, fmt.Errorf("assign: cut edge into %s has no dual edge", g.tree.Node(pair[1]).Name)
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return g.edges[ids[i]].From < g.edges[ids[j]].From })
	return ids, nil
}

// Report renders the graph in the style of Figure 6: the face count and one
// line per dual edge with its faces, crossed tree edge, colour and weights.
func (g *Graph) Report() string {
	t := g.tree
	var sb strings.Builder
	fmt.Fprintf(&sb, "assignment graph: %d faces (S=F0 ... T=F%d), %d coloured edges\n",
		g.faces, g.faces-1, len(g.edges))
	for _, e := range g.edges {
		names := make([]string, len(e.CutChildren))
		for i, c := range e.CutChildren {
			parent := t.Node(c).Parent
			names[i] = fmt.Sprintf("<%s,%s>", t.Node(parent).Name, t.Node(c).Name)
		}
		fmt.Fprintf(&sb, "  F%d -> F%-3d %-8s σ=%-8.4g β=%-8.4g crossing %s\n",
			e.From, e.To, t.SatelliteName(e.Colour), e.Sigma, e.Beta, strings.Join(names, "+"))
	}
	return sb.String()
}
