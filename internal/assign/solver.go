package assign

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/colouring"
	"repro/internal/core"
	"repro/internal/dwg"
	"repro/internal/model"
	"repro/internal/pool"
)

// Options tunes the solvers. The zero value selects the paper's defaults:
// the end-to-end delay objective S + B and a generous expansion budget.
type Options struct {
	// Weights of the objective WS·S(P) + WB·B(P). Zero value means
	// dwg.Default (1, 1), the §5 end-to-end delay.
	Weights dwg.Weights

	// MaxExpandedEdges caps the number of super-edges one band expansion
	// may create before the solver falls back to the exact label search.
	// 0 means the default of 200000.
	MaxExpandedEdges int

	// DisableExpansion forces the solver to fall back to the label search
	// as soon as per-edge elimination stalls (used to exercise the
	// fallback path in tests and ablation benches).
	DisableExpansion bool

	// ConservativeElimination restricts edge elimination to the paper's
	// literal rule (β ≥ B of the round's path) instead of additionally
	// removing edges that provably cannot beat the incumbent candidate.
	// Ablation knob: both variants are exact, the tightened rule converges
	// in far fewer iterations (see BenchmarkAblation_Elimination).
	ConservativeElimination bool
}

func (o Options) weights() dwg.Weights { return core.WeightsOr(o.Weights) }

func (o Options) maxExpanded() int { return core.IntOr(o.MaxExpandedEdges, 200000) }

// Stats reports how the solve went. It is an alias of core.SearchStats so
// the registry's uniform Outcome can carry it without core depending on
// this package.
type Stats = core.SearchStats

// TraceEntry records one iteration of the adapted SSB loop (experiment E5).
type TraceEntry struct {
	Iteration        int
	S, B             float64
	Objective        float64
	Candidate        float64
	BottleneckColour model.SatelliteID
	Removed          int
	ExpandedColour   model.SatelliteID // NoSatellite when no expansion happened
	Note             string            // "", "stop: bound", "stop: disconnected", "fallback"
}

// Solution is an optimal (or heuristic) assignment with its measures.
type Solution struct {
	Assignment  *model.Assignment
	CutChildren []model.NodeID // tree-edge children crossed by the optimal cut
	S, B        float64        // host time and bottleneck-satellite load
	Delay       float64        // S + B: the end-to-end delay (§3 objective)
	Objective   float64        // WS·S + WB·B under the options' weights
	Stats       Stats
	Trace       []TraceEntry
}

// workEdge is a mutable copy of Edge inside the solver's shrinking graph.
type workEdge struct {
	from, to    int
	sigma, beta float64
	colour      model.SatelliteID
	cutChildren []model.NodeID
	disabled    bool
}

type workGraph struct {
	faces int
	edges []workEdge
	out   [][]int

	// Reusable buffers for minSigmaPath: the adapted loop calls it once per
	// iteration, and iteration counts scale with the expanded edge count.
	dist []float64
	via  []int

	// expanded marks colours already band-expanded this solve.
	expanded []bool

	// Scratch of expandColour's Pareto DP: the prefix arena and the
	// per-face frontiers, reused across expansions and solves.
	arena    []prefixNode
	frontier [][]int

	// path is minSigmaPath's result buffer (callers copy what they keep);
	// rev and cutArena back the super-edges' reconstruction and crossed-
	// children lists; loads is measures' dense per-colour accumulator.
	path     []int
	rev      []int
	cutArena []model.NodeID
	loads    []float64
}

// workGraphs is the pooled scratch arena of the path solvers: one
// workGraph (mutable edge set, adjacency, DP buffers, expansion bitset)
// is checked out per solve and returned on every exit path, so the
// steady-state adapted-SSB loop allocates only its Solution.
var workGraphs = pool.NewArena(func() *workGraph { return new(workGraph) })

func newWorkGraph(g *Graph) *workGraph {
	w := workGraphs.Get()
	w.faces = g.faces
	w.dist = pool.Keep(w.dist, g.faces)
	w.via = pool.Keep(w.via, g.faces)
	w.expanded = pool.Slice(w.expanded, len(g.tree.Satellites()))
	w.loads = pool.Slice(w.loads, len(g.tree.Satellites()))
	if cap(w.out) < g.faces {
		w.out = make([][]int, g.faces)
	} else {
		w.out = w.out[:g.faces]
		for i := range w.out {
			w.out[i] = w.out[i][:0]
		}
	}
	w.edges = w.edges[:0]
	w.cutArena = w.cutArena[:0]
	for _, e := range g.edges {
		w.add(workEdge{
			from: e.From, to: e.To, sigma: e.Sigma, beta: e.Beta,
			colour: e.Colour, cutChildren: e.CutChildren,
		})
	}
	return w
}

// release returns the workGraph to the arena. Super-edge cutChildren
// slices are dropped with the edge list truncation; the backing arrays
// stay for the next solve.
func (w *workGraph) release() { workGraphs.Put(w) }

func (w *workGraph) add(e workEdge) int {
	id := len(w.edges)
	w.edges = append(w.edges, e)
	w.out[e.from] = append(w.out[e.from], id)
	return id
}

func (w *workGraph) enabledCount() int {
	n := 0
	for i := range w.edges {
		if !w.edges[i].disabled {
			n++
		}
	}
	return n
}

// minSigmaPath runs the O(V+E) monotone-DAG pass — the §5.4 observation
// that the min-S path needs no general shortest-path search.
func (w *workGraph) minSigmaPath() ([]int, bool) {
	dist, via := w.dist, w.via
	for i := range dist {
		dist[i] = math.Inf(1)
		via[i] = -1
	}
	dist[0] = 0
	for f := 0; f < w.faces; f++ {
		if math.IsInf(dist[f], 1) {
			continue
		}
		for _, id := range w.out[f] {
			e := &w.edges[id]
			if e.disabled {
				continue
			}
			if nd := dist[f] + e.sigma; nd < dist[e.to] {
				dist[e.to] = nd
				via[e.to] = id
			}
		}
	}
	if math.IsInf(dist[w.faces-1], 1) {
		return nil, false
	}
	// The result lives in the workGraph's path buffer: the adapted loop
	// calls this once per iteration and copies what it keeps.
	ids := w.path[:0]
	for f := w.faces - 1; f != 0; {
		id := via[f]
		ids = append(ids, id)
		f = w.edges[id].from
	}
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
	w.path = ids
	return ids, true
}

// measures computes a path's S, its coloured bottleneck B and the colour
// attaining it (smallest colour id on ties, NoSatellite for an empty
// path). Per-colour sums accumulate in the pooled dense table; only
// colours on the path compete for the bottleneck, matching the sparse
// map semantics this replaced.
func (w *workGraph) measures(ids []int) (s, b float64, bottleneck model.SatelliteID) {
	loads := w.loads
	for i := range loads {
		loads[i] = 0
	}
	for _, id := range ids {
		e := &w.edges[id]
		s += e.sigma
		loads[e.colour] += e.beta
	}
	bottleneck = model.NoSatellite
	for _, id := range ids {
		c := w.edges[id].colour
		if v := loads[c]; v > b || (v == b && (bottleneck == model.NoSatellite || c < bottleneck)) {
			b = v
			bottleneck = c
		}
	}
	return s, b, bottleneck
}

// SolveAdapted runs the paper's §5.4 adapted SSB algorithm: iterate the
// min-σ (topmost) path; update the candidate; eliminate every edge whose β
// alone reaches the path's coloured B weight; when no single edge reaches
// it (the bottleneck colour contributes through several edges), expand that
// colour's contiguous bands into super-edges, exactly the Figure-9/10
// procedure. If a colour's sensors are split into several bands — a case
// the paper's construction does not cover — the solver falls back to the
// exact coloured label search on the already-reduced graph, which is sound
// because eliminated edges cannot carry a path beating the candidate.
func (g *Graph) SolveAdapted(opt Options) (*Solution, error) {
	return g.SolveAdaptedContext(context.Background(), opt)
}

// SolveAdaptedContext is SolveAdapted with cancellation: the context is
// checked once per elimination round and inside the label-search fallback,
// so deadlines stop the solve promptly. On cancellation the returned error
// is the context's.
func (g *Graph) SolveAdaptedContext(ctx context.Context, opt Options) (*Solution, error) {
	wts := opt.weights()
	if !wts.Valid() {
		return nil, dwg.ErrBadWeights
	}
	w := newWorkGraph(g)
	defer w.release()
	sol := &Solution{Objective: math.Inf(1)}
	var bestEdges []int

	for iter := 1; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sol.Stats.Iterations = iter
		path, ok := w.minSigmaPath()
		if !ok {
			if n := len(sol.Trace); n > 0 {
				sol.Trace[n-1].Note = "stop: disconnected"
			}
			break
		}
		s, b, bottleneck := w.measures(path)
		obj := wts.Value(s, b)
		entry := TraceEntry{
			Iteration: iter, S: s, B: b, Objective: obj,
			BottleneckColour: bottleneck, ExpandedColour: model.NoSatellite,
		}
		if obj < sol.Objective {
			sol.Objective = obj
			sol.S, sol.B = s, b
			bestEdges = append(bestEdges[:0], path...)
		}
		entry.Candidate = sol.Objective
		if wts.WS*s >= sol.Objective {
			// Any remaining path has S ≥ s, so WS·S alone meets the
			// candidate: optimal.
			entry.Note = "stop: bound"
			sol.Trace = append(sol.Trace, entry)
			break
		}
		// Eliminate edges whose single β reaches the coloured bottleneck: a
		// path through such an edge has that colour's sum ≥ B already.
		// A second, usually tighter bound applies once a candidate exists:
		// any path through edge e has S ≥ s (the global min-S) and B ≥
		// β(e), so WS·s + WB·β(e) ≥ candidate proves e useless. Take the
		// lower of the two thresholds.
		threshold := b
		if wts.WB > 0 && !opt.ConservativeElimination {
			if byCand := (sol.Objective - wts.WS*s) / wts.WB; byCand < threshold {
				threshold = byCand
			}
		}
		removed := 0
		for id := range w.edges {
			e := &w.edges[id]
			if !e.disabled && e.beta >= threshold {
				e.disabled = true
				removed++
			}
		}
		entry.Removed = removed
		if removed == 0 {
			// The bottleneck colour's B is spread over several of its
			// edges: Figure 9's situation. Expand that colour, or fall
			// back when expansion cannot help (multi-band colour, budget
			// exceeded, or expansion disabled).
			if opt.DisableExpansion || bottleneck == model.NoSatellite ||
				w.expanded[bottleneck] || !g.contiguous(bottleneck) {
				entry.Note = "fallback"
				sol.Trace = append(sol.Trace, entry)
				sol.Stats.FellBack = true
				return g.finishWithLabelSearch(ctx, w, sol, bestEdges, wts, opt)
			}
			created, ok := w.expandColour(g, bottleneck, opt.maxExpanded())
			if !ok {
				entry.Note = "fallback"
				sol.Trace = append(sol.Trace, entry)
				sol.Stats.FellBack = true
				return g.finishWithLabelSearch(ctx, w, sol, bestEdges, wts, opt)
			}
			w.expanded[bottleneck] = true
			sol.Stats.Expansions++
			sol.Stats.SuperEdges += created
			entry.ExpandedColour = bottleneck
		}
		sol.Trace = append(sol.Trace, entry)
	}
	sol.Stats.FinalEdges = w.enabledCount()
	if math.IsInf(sol.Objective, 1) {
		return nil, ErrUnsolvable
	}
	return g.packageSolution(w, sol, bestEdges)
}

// expandColour replaces every enabled edge of the (contiguous) colour with
// super-edges representing complete traversals of the colour's face band —
// the Figure-9 expansion. Only Pareto-optimal traversals are materialised:
// a band path whose σ-sum and β-sum are both no better than another's can
// never improve any S+B path through the band, so dominated traversals are
// pruned during a left-to-right dynamic program over the band's faces.
// Returns the number of super-edges created and false when the per-face
// frontier budget is exceeded.
func (w *workGraph) expandColour(g *Graph, colour model.SatelliteID, budget int) (int, bool) {
	lo, hi, ok := g.bandRange(colour)
	if !ok {
		return 0, false
	}
	entry, exit := lo, hi+1

	// frontier[face-entry] = Pareto-minimal (σ, β) prefix traversals
	// entry→face. Prefixes live in an append-only arena and reference
	// their predecessor by index, so the DP never copies edge lists; the
	// final frontier's traversals are reconstructed by walking parent
	// chains. Arena and frontiers are workGraph scratch, reused across
	// expansions.
	span := exit - entry + 1
	if cap(w.frontier) < span {
		w.frontier = make([][]int, span)
	} else {
		w.frontier = w.frontier[:span]
		for i := range w.frontier {
			w.frontier[i] = w.frontier[i][:0]
		}
	}
	arena := append(w.arena[:0], prefixNode{edge: -1, parent: -1})
	w.frontier[0] = append(w.frontier[0], 0)
	for face := entry; face < exit; face++ {
		cur := w.frontier[face-entry]
		if len(cur) == 0 {
			continue
		}
		for _, id := range w.out[face] {
			e := &w.edges[id]
			if e.disabled || e.colour != colour || e.to > exit {
				continue
			}
			for _, pi := range cur {
				p := arena[pi]
				cand := prefixNode{
					sigma:  p.sigma + e.sigma,
					beta:   p.beta + e.beta,
					edge:   id,
					parent: pi,
				}
				candIdx := len(arena)
				kept, added := paretoInsert(arena, w.frontier[e.to-entry], cand, candIdx)
				if added {
					arena = append(arena, cand) // unused when !added; harmless
				}
				w.frontier[e.to-entry] = kept
				if len(kept) > budget {
					w.arena = arena
					return 0, false
				}
			}
		}
	}
	w.arena = arena
	paths := w.frontier[exit-entry]
	if len(paths) == 0 {
		// Band disconnected (all its edges eliminated): expanding cannot
		// help; signal the caller to fall back.
		return 0, false
	}
	// Disable the band's edges, then add one super-edge per traversal.
	for id := range w.edges {
		e := &w.edges[id]
		if !e.disabled && e.colour == colour {
			e.disabled = true
		}
	}
	for _, pi := range paths {
		var se workEdge
		se.from, se.to = entry, exit
		se.colour = colour
		se.sigma, se.beta = arena[pi].sigma, arena[pi].beta
		rev := w.rev[:0]
		for i := pi; arena[i].edge >= 0; i = arena[i].parent {
			rev = append(rev, arena[i].edge)
		}
		w.rev = rev
		// The crossed children live in the workGraph's arena; the slice
		// header pins its own backing even if the arena later grows.
		start := len(w.cutArena)
		for i := len(rev) - 1; i >= 0; i-- {
			w.cutArena = append(w.cutArena, w.edges[rev[i]].cutChildren...)
		}
		se.cutChildren = w.cutArena[start:len(w.cutArena):len(w.cutArena)]
		w.add(se)
	}
	return len(paths), true
}

// finishWithLabelSearch completes a stalled adapted solve exactly: the best
// path in the reduced graph is compared against the candidate found so far
// (sound because eliminated edges cannot be on a better path).
func (g *Graph) finishWithLabelSearch(ctx context.Context, w *workGraph, sol *Solution, bestEdges []int, wts dwg.Weights, opt Options) (*Solution, error) {
	res, labels, err := labelSearch(ctx, w, len(g.tree.Satellites()), wts, sol.Objective)
	sol.Stats.Labels = labels
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return nil, err
	}
	sol.Stats.FinalEdges = w.enabledCount()
	if err == nil && res.objective < sol.Objective {
		sol.Objective = res.objective
		sol.S, sol.B = res.s, res.b
		bestEdges = res.edges
	}
	if math.IsInf(sol.Objective, 1) {
		return nil, ErrUnsolvable
	}
	return g.packageSolution(w, sol, bestEdges)
}

func (g *Graph) packageSolution(w *workGraph, sol *Solution, bestEdges []int) (*Solution, error) {
	// Gather the crossed tree edges and decode through the primary graph's
	// machinery by rebuilding the assignment directly.
	asg := model.NewAssignment(g.tree)
	covered := 0
	for _, id := range bestEdges {
		e := &w.edges[id]
		for _, child := range e.cutChildren {
			lo, hi := g.tree.LeafRange(child)
			covered += hi - lo + 1
			g.placeSubtree(asg, child, model.OnSatellite(e.colour))
			sol.CutChildren = append(sol.CutChildren, child)
		}
	}
	if covered != g.tree.SensorCount() {
		return nil, fmt.Errorf("assign: optimal path covers %d of %d leaves", covered, g.tree.SensorCount())
	}
	if err := asg.Validate(g.tree); err != nil {
		return nil, fmt.Errorf("assign: optimal path decodes to infeasible assignment: %w", err)
	}
	slices.Sort(sol.CutChildren)
	sol.Assignment = asg
	sol.Delay = sol.S + sol.B
	return sol, nil
}

// SolveLabelSearch solves the coloured path problem exactly with a
// dominance-pruned label-correcting sweep over the monotone face order.
// It handles arbitrary (including non-contiguous) colour layouts and is the
// independent reference the adapted solver is validated against.
//
// The search is seeded with the topmost (min-σ) path as the incumbent:
// labels that already reach its objective are pruned, which keeps the
// multi-dimensional Pareto frontiers from exploding on larger instances
// while remaining exact (the incumbent itself is returned when nothing
// beats it).
func (g *Graph) SolveLabelSearch(opt Options) (*Solution, error) {
	return g.SolveLabelSearchContext(context.Background(), opt)
}

// SolveLabelSearchContext is SolveLabelSearch with cancellation: the
// context is checked periodically inside the label sweep. On cancellation
// the returned error is the context's.
func (g *Graph) SolveLabelSearchContext(ctx context.Context, opt Options) (*Solution, error) {
	wts := opt.weights()
	if !wts.Valid() {
		return nil, dwg.ErrBadWeights
	}
	w := newWorkGraph(g)
	defer w.release()
	sol := &Solution{Objective: math.Inf(1)}
	var seedEdges []int
	if path, ok := w.minSigmaPath(); ok {
		s, b, _ := w.measures(path)
		sol.Objective = wts.Value(s, b)
		sol.S, sol.B = s, b
		seedEdges = append(seedEdges, path...)
	}
	res, labels, err := labelSearch(ctx, w, len(g.tree.Satellites()), wts, sol.Objective)
	sol.Stats.Labels = labels
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return nil, err
	}
	sol.Stats.FinalEdges = w.enabledCount()
	switch {
	case err == nil && res.objective < sol.Objective:
		sol.Objective = res.objective
		sol.S, sol.B = res.s, res.b
		seedEdges = res.edges
	case err != nil && seedEdges == nil:
		return nil, err // no incumbent and no path: genuinely unsolvable
	}
	return g.packageSolution(w, sol, seedEdges)
}

type labelResult struct {
	edges     []int
	s, b      float64
	objective float64
}

type label struct {
	s     float64
	loads []float64
	via   int // edge id taken to reach this label
	prev  int // index of predecessor label in the per-face list of the from-face
}

// labelSearch sweeps faces left to right maintaining Pareto-minimal labels
// (S, per-colour loads). upperBound prunes labels that already cannot beat
// the incumbent candidate. The context is checked every checkEvery explored
// labels so runaway sweeps stop at deadlines.
func labelSearch(ctx context.Context, w *workGraph, numColours int, wts dwg.Weights, upperBound float64) (labelResult, int, error) {
	const checkEvery = 1024
	perFace := make([][]label, w.faces)
	perFace[0] = []label{{loads: make([]float64, numColours), via: -1, prev: -1}}
	explored := 0

	dominated := func(ls []label, cand label) bool {
		for i := range ls {
			l := &ls[i]
			if l.s > cand.s {
				continue
			}
			ok := true
			for c := range l.loads {
				if l.loads[c] > cand.loads[c] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}

	for f := 0; f < w.faces-1; f++ {
		for li := 0; li < len(perFace[f]); li++ {
			explored++
			if explored%checkEvery == 0 {
				if err := ctx.Err(); err != nil {
					return labelResult{}, explored, err
				}
			}
			// Copy the label: perFace[f] may grow while iterating (it
			// cannot — edges go strictly forward — but keep index safety).
			src := perFace[f][li]
			for _, id := range w.out[f] {
				e := &w.edges[id]
				if e.disabled {
					continue
				}
				next := label{
					s:     src.s + e.sigma,
					loads: append([]float64(nil), src.loads...),
					via:   id,
					prev:  li,
				}
				if int(e.colour) >= 0 && int(e.colour) < numColours {
					next.loads[e.colour] += e.beta
				}
				maxLoad := 0.0
				for _, v := range next.loads {
					if v > maxLoad {
						maxLoad = v
					}
				}
				if wts.Value(next.s, maxLoad) >= upperBound {
					continue // cannot beat the incumbent
				}
				if dominated(perFace[e.to], next) {
					continue
				}
				// Drop labels the newcomer dominates.
				kept := perFace[e.to][:0]
				for _, old := range perFace[e.to] {
					if next.s <= old.s && allLE(next.loads, old.loads) {
						continue
					}
					kept = append(kept, old)
				}
				perFace[e.to] = append(kept, next)
			}
		}
	}

	best := labelResult{objective: math.Inf(1)}
	bestIdx := -1
	final := perFace[w.faces-1]
	for i := range final {
		maxLoad := 0.0
		for _, v := range final[i].loads {
			if v > maxLoad {
				maxLoad = v
			}
		}
		if obj := wts.Value(final[i].s, maxLoad); obj < best.objective {
			best.objective = obj
			best.s = final[i].s
			best.b = maxLoad
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return best, explored, ErrUnsolvable
	}
	// Reconstruct the edge list by walking prev links.
	var edges []int
	cur := final[bestIdx]
	for cur.via >= 0 {
		edges = append(edges, cur.via)
		from := w.edges[cur.via].from
		cur = perFace[from][cur.prev]
	}
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	best.edges = edges
	return best, explored, nil
}

// paretoInsert maintains a Pareto frontier as an index list sorted by
// strictly increasing σ and strictly decreasing β. A dominated candidate
// (ties included) is rejected in O(log n); otherwise the (contiguous) run
// of entries the candidate dominates is replaced by candIdx.
func paretoInsert(arena []prefixNode, list []int, cand prefixNode, candIdx int) (kept []int, added bool) {
	// First position whose σ exceeds the candidate's.
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if arena[list[mid]].sigma <= cand.sigma {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := lo
	start := pos
	if pos > 0 {
		prev := arena[list[pos-1]]
		if prev.beta <= cand.beta {
			return list, false // dominated (σ ≤, β ≤), possibly an exact tie
		}
		if prev.sigma == cand.sigma {
			start = pos - 1 // equal σ with worse β: replaced by the candidate
		}
	}
	end := pos
	for end < len(list) && arena[list[end]].beta >= cand.beta {
		end++ // σ ≥ and β ≥: dominated by the candidate
	}
	if removed := end - start; removed > 0 {
		list[start] = candIdx
		n := copy(list[start+1:], list[end:])
		return list[: start+1+n : cap(list)], true
	}
	list = append(list, 0)
	copy(list[start+1:], list[start:len(list)-1])
	list[start] = candIdx
	return list, true
}

// prefixNode is an arena entry of expandColour's Pareto DP: a traversal
// prefix ending with `edge`, extending the prefix at `parent`.
type prefixNode struct {
	sigma, beta float64
	edge        int
	parent      int
}

func allLE(a, b []float64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// Solve builds the graph for t and runs the adapted SSB solver with default
// options — the package-level convenience entry point.
func Solve(t *model.Tree) (*Solution, error) {
	return Build(t).SolveAdapted(Options{})
}

// SolveWithAnalysis is Solve for a pre-computed colouring.
func SolveWithAnalysis(an *colouring.Analysis) (*Solution, error) {
	return BuildWithAnalysis(an).SolveAdapted(Options{})
}
