// Package assign implements the paper's core contribution: the coloured
// doubly weighted assignment graph (§5.2–5.3) and the adapted SSB search
// that finds the minimum end-to-end-delay assignment of a CRU tree onto a
// host–satellites system (§5.4).
//
// Construction (following Bokhari's dual-graph idea, refined as documented
// in DESIGN.md): all sensors are merged into a dummy node A; with L sensors
// the closed tree has L+1 faces, numbered 0 (the "S" terminal, left of the
// tree) through L (the "T" terminal, right of the tree). Every
// non-conflicting tree edge whose child subtree covers leaf positions
// [a, b] contributes one *directed* dual edge from face a to face b+1. A
// monotone S→T path therefore crosses a set of tree edges whose leaf
// intervals tile [0, L-1] exactly — precisely the minimal antichain cuts,
// i.e. the feasible assignments.
//
// Labels: the dual edge crossing tree edge ⟨i,j⟩ carries
//
//	β = Σ_{k ∈ subtree(j)} s_k + c_{j,i}   (satellite work + uplink, §5.3)
//	σ = the Figure-8 pre-order label: each CRU j charges h_j to the edge
//	    towards its leftmost child, accumulated from the root, so that the
//	    σ-sum over any cut equals the host execution time of the part above
//	    the cut.
//
// and inherits the tree edge's colour. The coloured B weight of a path is
// max over colours of the per-colour β sums, and the end-to-end delay of
// the decoded assignment is exactly S(P) + B(P).
package assign
