package assign

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/colouring"
	"repro/internal/dwg"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/workload"
)

func TestSolveAdaptedPaperTree(t *testing.T) {
	tree := workload.PaperTree()
	sol, err := Solve(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Assignment.Validate(tree); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	// The reported measures must match the evaluated assignment.
	bd, err := eval.Evaluate(tree, sol.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Delay, bd.Delay) || !almost(sol.S, bd.HostTime) || !almost(sol.B, bd.MaxSatLoad) {
		t.Fatalf("solution measures S=%v B=%v delay=%v vs evaluated %v/%v/%v",
			sol.S, sol.B, sol.Delay, bd.HostTime, bd.MaxSatLoad, bd.Delay)
	}
	// Ground truth from the independent exact solver.
	bf, err := exact.BruteForce(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Delay, bf.Delay) {
		t.Fatalf("adapted SSB delay %v != brute force %v", sol.Delay, bf.Delay)
	}
}

func TestSolveLabelSearchPaperTree(t *testing.T) {
	tree := workload.PaperTree()
	sol, err := Build(tree).SolveLabelSearch(Options{})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := exact.BruteForce(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Delay, bf.Delay) {
		t.Fatalf("label search delay %v != brute force %v", sol.Delay, bf.Delay)
	}
	if sol.Stats.Labels == 0 {
		t.Error("label search reported zero explored labels")
	}
}

func TestSolversAgreeOnScenarios(t *testing.T) {
	for _, tc := range []struct {
		name string
		tree *model.Tree
	}{
		{"epilepsy", workload.Epilepsy()},
		{"snmp", workload.SNMP()},
		{"paper", workload.PaperTree()},
		{"paper-symbolic", workload.PaperTreeSymbolic()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := Build(tc.tree)
			adapted, err := g.SolveAdapted(Options{})
			if err != nil {
				t.Fatal(err)
			}
			labels, err := g.SolveLabelSearch(Options{})
			if err != nil {
				t.Fatal(err)
			}
			pareto, err := exact.Pareto(tc.tree, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(adapted.Delay, labels.Delay) || !almost(adapted.Delay, pareto.Delay) {
				t.Fatalf("disagreement: adapted=%v labels=%v pareto=%v",
					adapted.Delay, labels.Delay, pareto.Delay)
			}
		})
	}
}

// TestAllSolversAgreeProperty is the core of experiment E9: the paper's
// adapted SSB algorithm, the label search, and the three independent exact
// solvers agree on random instances, clustered and scattered alike.
func TestAllSolversAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	for trial := 0; trial < 80; trial++ {
		spec := workload.RandomSpec{
			CRUs:       1 + rng.Intn(12),
			MaxArity:   1 + rng.Intn(3),
			Satellites: 1 + rng.Intn(4),
			Clustered:  trial%2 == 0,
			HostScale:  0.5 + rng.Float64(),
			SatRatio:   0.5 + 3*rng.Float64(),
			CommScale:  rng.Float64() * 2,
			RawFactor:  0.5 + 4*rng.Float64(),
		}
		tree := workload.Random(rng, spec)
		g := Build(tree)

		adapted, err := g.SolveAdapted(Options{})
		if err != nil {
			t.Fatalf("trial %d: adapted: %v\n%s", trial, err, tree.Render())
		}
		labels, err := g.SolveLabelSearch(Options{})
		if err != nil {
			t.Fatalf("trial %d: labels: %v", trial, err)
		}
		bf, err := exact.BruteForce(tree, 0)
		if err != nil {
			t.Fatalf("trial %d: brute: %v", trial, err)
		}
		if !almost(adapted.Delay, bf.Delay) {
			t.Fatalf("trial %d: adapted %v != brute %v (fellback=%v)\n%s",
				trial, adapted.Delay, bf.Delay, adapted.Stats.FellBack, tree.Render())
		}
		if !almost(labels.Delay, bf.Delay) {
			t.Fatalf("trial %d: labels %v != brute %v\n%s", trial, labels.Delay, bf.Delay, tree.Render())
		}
		// Decoded assignments must evaluate to the reported delay.
		if d := eval.MustDelay(tree, adapted.Assignment); !almost(d, adapted.Delay) {
			t.Fatalf("trial %d: adapted assignment evaluates to %v, reported %v", trial, d, adapted.Delay)
		}
	}
}

func TestScatteredColoursFallBack(t *testing.T) {
	// Build a tree whose colour is split into two bands and whose profiles
	// force a multi-edge bottleneck, exercising the fallback path. Colour
	// s0 appears at leaves 0 and 2; s1 at leaf 1.
	b := model.NewBuilder()
	s0 := b.Satellite("s0")
	s1 := b.Satellite("s1")
	root := b.Root("root", 1, 0)
	a := b.Child(root, "a", 5, 10, 1)
	b.Sensor(a, "xa", s0, 8)
	c := b.Child(root, "c", 5, 10, 1)
	b.Sensor(c, "xc", s1, 8)
	d := b.Child(root, "d", 5, 10, 1)
	b.Sensor(d, "xd", s0, 8)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tree)
	sol, err := g.SolveAdapted(Options{})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := exact.BruteForce(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Delay, bf.Delay) {
		t.Fatalf("adapted %v != brute %v", sol.Delay, bf.Delay)
	}
}

func TestDisableExpansionStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(1+rng.Intn(10), 1+rng.Intn(3)))
		g := Build(tree)
		sol, err := g.SolveAdapted(Options{DisableExpansion: true})
		if err != nil {
			t.Fatal(err)
		}
		bf, err := exact.BruteForce(tree, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(sol.Delay, bf.Delay) {
			t.Fatalf("trial %d: %v != %v", trial, sol.Delay, bf.Delay)
		}
	}
}

func TestTinyExpansionBudgetStillExact(t *testing.T) {
	tree := workload.PaperTree()
	sol, err := Build(tree).SolveAdapted(Options{MaxExpandedEdges: 1})
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := exact.BruteForce(tree, 0)
	if !almost(sol.Delay, bf.Delay) {
		t.Fatalf("budget-1 solve %v != %v", sol.Delay, bf.Delay)
	}
}

func TestExpansionHappensOnEngineeredInstance(t *testing.T) {
	// Colour s0 owns a two-sensor chain with balanced β so the bottleneck
	// colour's weight is spread over two edges of the topmost path —
	// Figure 9's situation, requiring an expansion.
	b := model.NewBuilder()
	s0 := b.Satellite("s0")
	s1 := b.Satellite("s1")
	root := b.Root("root", 1, 0)
	u := b.Child(root, "u", 4, 6, 1)
	b.Sensor(u, "xu", s0, 6)
	v := b.Child(root, "v", 4, 6, 1)
	b.Sensor(v, "xv", s0, 6)
	w := b.Child(root, "w", 1, 1, 0.2)
	b.Sensor(w, "xw", s1, 0.2)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tree)
	sol, err := g.SolveAdapted(Options{})
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := exact.BruteForce(tree, 0)
	if !almost(sol.Delay, bf.Delay) {
		t.Fatalf("delay %v != %v", sol.Delay, bf.Delay)
	}
	if sol.Stats.Expansions == 0 && !sol.Stats.FellBack {
		t.Error("engineered instance should trigger an expansion (or fallback)")
	}
}

func TestWeightedObjectives(t *testing.T) {
	// λ sweep (E11): for every λ the adapted solver must agree with the
	// label search; λ=1 minimises host time alone (the topmost cut).
	tree := workload.PaperTree()
	g := Build(tree)
	for _, l := range []float64{0, 0.25, 0.5, 0.75, 1} {
		opt := Options{Weights: dwg.Lambda(l)}
		adapted, err := g.SolveAdapted(opt)
		if err != nil {
			t.Fatalf("λ=%v: %v", l, err)
		}
		labels, err := g.SolveLabelSearch(opt)
		if err != nil {
			t.Fatalf("λ=%v: %v", l, err)
		}
		if !almost(adapted.Objective, labels.Objective) {
			t.Errorf("λ=%v: adapted %v != labels %v", l, adapted.Objective, labels.Objective)
		}
	}
	// λ=1: the optimum host time is the must-host closure h1+h2+h3 = 10.
	sol, err := g.SolveAdapted(Options{Weights: dwg.Lambda(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.S, 10) {
		t.Errorf("λ=1 host time = %v, want 10", sol.S)
	}
}

func TestBadWeightsRejected(t *testing.T) {
	g := Build(workload.PaperTree())
	if _, err := g.SolveAdapted(Options{Weights: dwg.Weights{WS: -1, WB: 1}}); err == nil {
		t.Error("negative weights accepted by SolveAdapted")
	}
	if _, err := g.SolveLabelSearch(Options{Weights: dwg.Weights{WS: math.NaN(), WB: 1}}); err == nil {
		t.Error("NaN weights accepted by SolveLabelSearch")
	}
}

func TestTraceIsPopulated(t *testing.T) {
	sol, err := Solve(workload.PaperTree())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Trace) == 0 {
		t.Fatal("no trace entries")
	}
	last := sol.Trace[len(sol.Trace)-1]
	if last.Note == "" {
		t.Errorf("last trace entry should record the stop reason, got %+v", last)
	}
	if sol.Stats.Iterations != len(sol.Trace) && sol.Stats.Iterations != len(sol.Trace)+1 {
		t.Errorf("iterations %d inconsistent with %d trace entries", sol.Stats.Iterations, len(sol.Trace))
	}
	if sol.Stats.FinalEdges <= 0 {
		t.Errorf("FinalEdges = %d", sol.Stats.FinalEdges)
	}
}

func TestSolveWithAnalysis(t *testing.T) {
	tree := workload.PaperTree()
	an := colouring.Analyse(tree)
	sol, err := SolveWithAnalysis(an)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Solve(tree)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Delay, direct.Delay) {
		t.Fatalf("%v != %v", sol.Delay, direct.Delay)
	}
}

func TestCutChildrenConsistent(t *testing.T) {
	tree := workload.PaperTree()
	sol, err := Solve(tree)
	if err != nil {
		t.Fatal(err)
	}
	// CutChildren must match the assignment's cut edges.
	want := map[model.NodeID]bool{}
	for _, e := range sol.Assignment.CutEdges(tree) {
		want[e[1]] = true
	}
	if len(want) != len(sol.CutChildren) {
		t.Fatalf("cut children %v vs cut edges %v", sol.CutChildren, want)
	}
	for _, c := range sol.CutChildren {
		if !want[c] {
			t.Errorf("cut child %d not a cut edge", c)
		}
	}
}

func TestMinSigmaPathMatchesTopmost(t *testing.T) {
	// With strictly positive h, the first min-σ path is the topmost cut:
	// its decode equals colouring.FeasibleTopmost.
	tree := workload.PaperTree()
	g := Build(tree)
	w := newWorkGraph(g)
	path, ok := w.minSigmaPath()
	if !ok {
		t.Fatal("no min-σ path")
	}
	var ids []int
	ids = append(ids, path...)
	asg, err := g.Decode(ids)
	if err != nil {
		t.Fatal(err)
	}
	want := colouring.Analyse(tree).FeasibleTopmost()
	if asg.Key() != want.Key() {
		t.Fatalf("min-σ decode:\n%s\nwant topmost:\n%s", asg.Describe(tree), want.Describe(tree))
	}
}
