// Package boundcache is the bound-memoization store of the exact
// searches: a sharded, bounded, concurrency-safe map from a subtree's
// identity — its Merkle (cr2) hash plus the boundary context the search
// sees — to a proven lower bound on that subtree's standalone delay and,
// for exhausted subtrees, the optimal sub-assignment pattern itself.
//
// # Key semantics
//
// A subtree's Merkle hash (model.SubtreeHashes) pins everything a solver
// reads: the shape and planar embedding, every h/s/c profile as exact
// float bits, and the satellite partition renumbered structurally. Two
// positions — in the same tree, across revisions of a session, or across
// different instances of a corpus — with equal hashes are
// indistinguishable to the search, so a bound proven under one is valid
// under the other. The only solver-relevant fact the hash cannot see is
// *where the subtree sits*: the global root may never sink to a
// satellite while every other monochromatic subtree may, so Key.Root
// records that one bit of boundary context. Sats and Bands (the distinct
// satellites and maximal same-satellite leaf runs under the subtree) are
// derivable from the hashed content and ride along as belt-and-braces
// context: if the hash scheme ever changes what it covers, entries keyed
// by an older notion of identity miss instead of corrupting a search.
//
// Parallelism, warm hints, budgets and deadlines stay out of the key for
// the same reason they stay out of the serving layers' cache identity:
// they are advisory and never change an exact answer, only how fast it
// is proven.
//
// # Invalidation
//
// There is none — entries are never wrong, only unreachable. A mutation
// changes the Merkle hashes along the root-to-edit spine, so the next
// solve misses exactly on the dirty spine and re-proves it, while every
// untouched subtree still hits. Capacity pressure recycles entries with
// a second-chance sweep.
//
// # Concurrency
//
// Lookup takes a shard read-lock and allocates nothing (CI-guarded);
// Insert takes the shard write-lock, keeps the more proven of the old
// and new entry, and evicts unused entries when the shard is full.
// Entries are immutable after insertion, so readers never observe a
// partially built value. Concurrent solves of the same uncached subtree
// race benignly: both prove the same bound and the second Insert is a
// no-op.
package boundcache

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Key identifies one memoizable subtree: its Merkle hash plus the
// boundary context the search sees (see the package comment).
type Key struct {
	// Hash is the subtree's cr2 Merkle hash (model.SubtreeHashes).
	Hash [32]byte
	// Root marks the global-root context, where sinking is forbidden.
	Root bool
	// Sats is the number of distinct satellites under the subtree.
	Sats int32
	// Bands is the number of maximal same-satellite leaf runs.
	Bands int32
}

// Entry is one proven fact about a subtree, immutable after Insert.
type Entry struct {
	// LB is a proven lower bound on the subtree's standalone delay (the
	// host time it adds plus the satellite load it adds, with its parent
	// hosted). When Complete, LB is the exact optimum.
	LB float64
	// Complete marks an exhausted search: LB is the optimal standalone
	// delay and Pattern reconstructs the optimal sub-assignment.
	Complete bool
	// Pattern is the optimal sub-assignment, one flag per post-order
	// offset into the subtree's span: true = the processing CRU is sunk
	// to its subtree colour, false = it stays on the host. Sensor
	// offsets are ignored (sensors are pinned). Nil unless Complete.
	Pattern []bool

	used atomic.Bool // second-chance bit, set on hit
}

const numShards = 64

// Config sizes a Cache. Zero values select the defaults.
type Config struct {
	// Capacity bounds the total entries held (default 1 << 14).
	Capacity int
	// MinSpan is the smallest subtree span worth memoizing; solvers fall
	// back to their static bound below it (default 8).
	MinSpan int
}

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits      int64 // lookups that found an entry
	Misses    int64 // lookups that found none
	Stores    int64 // inserts that added or strengthened an entry
	Evictions int64 // entries recycled under capacity pressure
	Entries   int64 // entries currently held
}

type shard struct {
	mu sync.RWMutex
	m  map[Key]*Entry
}

// Cache is a sharded, bounded store of proven subtree bounds. The zero
// value is not usable; call New.
type Cache struct {
	shards  [numShards]shard
	perShrd int
	minSpan int

	hits      atomic.Int64
	misses    atomic.Int64
	stores    atomic.Int64
	evictions atomic.Int64
}

// New returns an empty cache sized by cfg.
func New(cfg Config) *Cache {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 1 << 14
	}
	per := (capacity + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	minSpan := cfg.MinSpan
	if minSpan <= 0 {
		minSpan = 8
	}
	c := &Cache{perShrd: per, minSpan: minSpan}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*Entry)
	}
	return c
}

// MinSpan is the smallest subtree span worth memoizing.
func (c *Cache) MinSpan() int { return c.minSpan }

func (c *Cache) shardFor(k *Key) *shard {
	return &c.shards[k.Hash[0]&(numShards-1)]
}

// Lookup returns the entry proven for k, if any. The hot path of the
// exact searches: it allocates nothing (CI-guarded) and takes only a
// shard read-lock.
func (c *Cache) Lookup(k Key) (*Entry, bool) {
	s := c.shardFor(&k)
	s.mu.RLock()
	e := s.m[k]
	s.mu.RUnlock()
	if e == nil {
		c.misses.Add(1)
		return nil, false
	}
	e.used.Store(true)
	c.hits.Add(1)
	return e, true
}

// Insert records e as proven for k, reporting whether the store changed.
// When an entry already exists the more proven one is kept: Complete
// beats incomplete, and a higher LB beats a lower one — bounds only ever
// tighten, so racing solvers of the same subtree cannot weaken the
// store. e must not be modified by the caller after Insert.
func (c *Cache) Insert(k Key, e *Entry) bool {
	if e == nil {
		return false
	}
	s := c.shardFor(&k)
	s.mu.Lock()
	if old := s.m[k]; old != nil {
		if old.Complete || (!e.Complete && old.LB >= e.LB) {
			s.mu.Unlock()
			return false
		}
	} else if len(s.m) >= c.perShrd {
		c.evictLocked(s)
	}
	s.m[k] = e
	s.mu.Unlock()
	c.stores.Add(1)
	return true
}

// evictLocked recycles one entry by second chance: the sweep clears
// used bits as it passes and removes the first entry found cold; if
// every entry was hot, the first one swept is removed (its bit was
// just cleared). Map iteration order randomises the sweep start, which
// is what keeps one hot key from pinning its shard forever.
func (c *Cache) evictLocked(s *shard) {
	var fallback Key
	first := true
	for k, e := range s.m {
		if !e.used.Swap(false) {
			delete(s.m, k)
			c.evictions.Add(1)
			return
		}
		if first {
			fallback, first = k, false
		}
	}
	if !first {
		delete(s.m, fallback)
		c.evictions.Add(1)
	}
}

// Exported is one serialisable entry: the key plus the proven fact,
// detached from the in-store Entry (whose second-chance bit must not
// travel).
type Exported struct {
	Key      Key
	LB       float64
	Complete bool
	Pattern  []bool
}

// Export returns up to limit entries, most valuable first: complete
// entries (which short-circuit whole subtrees) before bound-only ones,
// root-context entries (which short-circuit whole instances) before
// interior ones, then tighter bounds first. The migration path ships
// these to nodes that may re-solve overlapping instances.
func (c *Cache) Export(limit int) []Exported {
	if limit <= 0 {
		return nil
	}
	var all []Exported
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, e := range s.m {
			all = append(all, Exported{Key: k, LB: e.LB, Complete: e.Complete, Pattern: e.Pattern})
		}
		s.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.Complete != b.Complete {
			return a.Complete
		}
		if a.Key.Root != b.Key.Root {
			return a.Key.Root
		}
		return a.LB > b.LB
	})
	if len(all) > limit {
		all = all[:limit]
	}
	return all
}

// Import adopts exported entries, returning how many were stored. The
// keeps-more-proven Insert semantics make adoption idempotent and safe
// against concurrent local proving: a weaker migrated fact never
// overwrites a stronger local one.
func (c *Cache) Import(entries []Exported) int {
	adopted := 0
	for i := range entries {
		ex := &entries[i]
		e := &Entry{LB: ex.LB, Complete: ex.Complete}
		if ex.Complete && len(ex.Pattern) > 0 {
			e.Pattern = append([]bool(nil), ex.Pattern...)
		}
		if c.Insert(ex.Key, e) {
			adopted++
		}
	}
	return adopted
}

// Len returns the number of entries currently held.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int64(c.Len()),
	}
}
