package boundcache

import (
	"fmt"
	"sync"
	"testing"
)

func keyN(n int) Key {
	var k Key
	k.Hash[0] = byte(n)
	k.Hash[1] = byte(n >> 8)
	k.Hash[2] = byte(n >> 16)
	return k
}

func TestLookupInsertRoundTrip(t *testing.T) {
	c := New(Config{})
	k := keyN(1)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("empty cache claims a hit")
	}
	c.Insert(k, &Entry{LB: 7.5})
	e, ok := c.Lookup(k)
	if !ok || e.LB != 7.5 || e.Complete {
		t.Fatalf("got (%+v, %v), want LB=7.5 incomplete", e, ok)
	}
	// Distinct boundary context is a distinct key, even with one hash.
	k2 := k
	k2.Root = true
	if _, ok := c.Lookup(k2); ok {
		t.Fatal("root-context key aliased the non-root entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Stores != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestInsertKeepsMoreProven: Complete beats incomplete regardless of LB
// order, and among incomplete entries the higher (tighter) bound wins —
// racing solvers of one subtree can only strengthen the store.
func TestInsertKeepsMoreProven(t *testing.T) {
	c := New(Config{})
	k := keyN(2)
	c.Insert(k, &Entry{LB: 10})
	c.Insert(k, &Entry{LB: 5}) // weaker bound: ignored
	if e, _ := c.Lookup(k); e.LB != 10 {
		t.Fatalf("weaker bound replaced a tighter one: LB=%v", e.LB)
	}
	c.Insert(k, &Entry{LB: 12}) // tighter bound: replaces
	if e, _ := c.Lookup(k); e.LB != 12 {
		t.Fatalf("tighter bound did not replace: LB=%v", e.LB)
	}
	c.Insert(k, &Entry{LB: 11, Complete: true, Pattern: []bool{true}})
	if e, _ := c.Lookup(k); !e.Complete {
		t.Fatal("complete entry did not replace the incomplete bound")
	}
	c.Insert(k, &Entry{LB: 99}) // incomplete never demotes a proof
	if e, _ := c.Lookup(k); !e.Complete || e.LB != 11 {
		t.Fatalf("incomplete insert demoted a complete entry: %+v", e)
	}
}

func TestEvictionBoundsCapacity(t *testing.T) {
	cap := 128
	c := New(Config{Capacity: cap})
	n := 4 * cap
	for i := 0; i < n; i++ {
		c.Insert(keyN(i), &Entry{LB: float64(i)})
	}
	if got := c.Len(); got > cap+numShards {
		t.Fatalf("cache holds %d entries, capacity %d", got, cap)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("over-capacity insert stream evicted nothing")
	}
	if st.Stores != int64(n) {
		t.Fatalf("stores = %d, want %d", st.Stores, n)
	}
}

// TestEvictionSecondChance: a recently hit entry survives the sweep that
// recycles cold ones.
func TestEvictionSecondChance(t *testing.T) {
	c := New(Config{Capacity: 2 * numShards}) // two entries per shard
	hot := keyN(0)
	c.Insert(hot, &Entry{LB: 1})
	for round := 0; round < 8; round++ {
		if _, ok := c.Lookup(hot); !ok {
			t.Fatalf("round %d: hot entry evicted despite second chance", round)
		}
		// A colliding insert lands in the hot key's shard; once the shard
		// is full the sweep must recycle the cold previous newcomer, not
		// the just-used entry.
		k := keyN(0)
		k.Sats = int32(round + 1)
		c.Insert(k, &Entry{LB: 2})
	}
	if _, ok := c.Lookup(hot); !ok {
		t.Fatal("hot entry evicted")
	}
}

func TestConcurrentInsertLookup(t *testing.T) {
	c := New(Config{Capacity: 256})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keyN(i % 97)
				c.Insert(k, &Entry{LB: float64(i)})
				if e, ok := c.Lookup(k); ok && e == nil {
					t.Error("hit returned nil entry")
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("cache empty after concurrent inserts")
	}
}

// TestLookupZeroAlloc is the allocs/op contract of the search hot path:
// a hit must not allocate. (The CI allocs guard runs the root package's
// TestBoundCacheLookupZeroAlloc, which exercises this same path through
// the public API; this is the unit-level pin.)
func TestLookupZeroAlloc(t *testing.T) {
	c := New(Config{})
	k := keyN(3)
	c.Insert(k, &Entry{LB: 1})
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := c.Lookup(k); !ok {
			t.Fatal("lookup missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocates %v per hit, want 0", allocs)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(Config{})
	keys := make([]Key, 256)
	for i := range keys {
		keys[i] = keyN(i)
		c.Insert(keys[i], &Entry{LB: float64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i&255])
	}
}

func ExampleCache() {
	c := New(Config{Capacity: 1024})
	k := Key{Sats: 2, Bands: 3}
	c.Insert(k, &Entry{LB: 41.5, Complete: true, Pattern: []bool{true, false, true}})
	if e, ok := c.Lookup(k); ok && e.Complete {
		fmt.Println(e.LB)
	}
	// Output: 41.5
}
