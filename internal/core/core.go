// Package core is the solver facade: a single entry point dispatching to
// every algorithm in the repository — the paper's adapted coloured SSB
// (default), the exact coloured label search, the three independent exact
// solvers, and the heuristic/extension solvers — with uniform timing and
// optimality metadata. The public package repro re-exports this API.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/assign"
	"repro/internal/dwg"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/model"
)

// Algorithm names a solver.
type Algorithm string

// The registered algorithms.
const (
	// AdaptedSSB is the paper's §5.4 algorithm: coloured assignment graph +
	// SSB path search with expansion. Exact; the default.
	AdaptedSSB Algorithm = "adapted-ssb"
	// LabelSearch is the exact dominance-pruned coloured path search.
	LabelSearch Algorithm = "label-search"
	// ParetoDP is the exact per-region Pareto dynamic program.
	ParetoDP Algorithm = "pareto-dp"
	// BruteForce enumerates every feasible assignment. Exact, exponential.
	BruteForce Algorithm = "brute-force"
	// BranchBound is the §6 future-work branch-and-bound, made exact.
	BranchBound Algorithm = "branch-and-bound"
	// AllHost keeps every CRU on the host (baseline).
	AllHost Algorithm = "all-host"
	// MaxDistribution sinks every region to its satellite (baseline).
	MaxDistribution Algorithm = "max-distribution"
	// GreedyHost hill-climbs from the all-host assignment.
	GreedyHost Algorithm = "greedy-host"
	// GreedyTop hill-climbs from the maximal distribution.
	GreedyTop Algorithm = "greedy-top"
	// Annealing is simulated annealing over the cut-move neighbourhood.
	Annealing Algorithm = "annealing"
	// Genetic is the §6 future-work genetic algorithm.
	Genetic Algorithm = "genetic"
)

// Exactness reports whether an algorithm guarantees optimal delay.
func (a Algorithm) Exact() bool {
	switch a {
	case AdaptedSSB, LabelSearch, ParetoDP, BruteForce, BranchBound:
		return true
	}
	return false
}

// Algorithms returns all registered algorithm names, exact solvers first.
func Algorithms() []Algorithm {
	all := []Algorithm{
		AdaptedSSB, LabelSearch, ParetoDP, BruteForce, BranchBound,
		AllHost, MaxDistribution, GreedyHost, GreedyTop, Annealing, Genetic,
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Exact() && !all[j].Exact() })
	return all
}

// Request describes one solve.
type Request struct {
	Tree      *model.Tree
	Algorithm Algorithm   // empty selects AdaptedSSB
	Weights   dwg.Weights // zero selects the S+B delay objective
	Seed      int64       // randomised heuristics only
	Budget    int         // node/frontier budget for exact searches (0 = default)
}

// Outcome is a uniform solver result.
type Outcome struct {
	Algorithm  Algorithm
	Assignment *model.Assignment
	Breakdown  *eval.Breakdown
	Delay      float64
	Exact      bool
	Elapsed    time.Duration
	Work       int           // algorithm-specific effort counter
	Stats      *assign.Stats // populated by the graph-based solvers
}

// Solve dispatches the request.
func Solve(req Request) (*Outcome, error) {
	if req.Tree == nil {
		return nil, fmt.Errorf("core: nil tree")
	}
	alg := req.Algorithm
	if alg == "" {
		alg = AdaptedSSB
	}
	start := time.Now()
	out := &Outcome{Algorithm: alg, Exact: alg.Exact()}

	switch alg {
	case AdaptedSSB, LabelSearch:
		g := assign.Build(req.Tree)
		opt := assign.Options{Weights: req.Weights}
		var sol *assign.Solution
		var err error
		if alg == AdaptedSSB {
			sol, err = g.SolveAdapted(opt)
		} else {
			sol, err = g.SolveLabelSearch(opt)
		}
		if err != nil {
			return nil, err
		}
		out.Assignment = sol.Assignment
		out.Stats = &sol.Stats
		out.Work = sol.Stats.Iterations + sol.Stats.Labels
	case ParetoDP:
		res, err := exact.Pareto(req.Tree, req.Budget)
		if err != nil {
			return nil, err
		}
		out.Assignment = res.Assignment
		out.Work = res.Explored
	case BruteForce:
		res, err := exact.BruteForce(req.Tree, req.Budget)
		if err != nil {
			return nil, err
		}
		out.Assignment = res.Assignment
		out.Work = res.Explored
	case BranchBound:
		res, err := exact.BranchAndBound(req.Tree, req.Budget)
		if err != nil {
			return nil, err
		}
		out.Assignment = res.Assignment
		out.Work = res.Explored
	case AllHost:
		out.Assignment = heuristics.AllHost(req.Tree).Assignment
	case MaxDistribution:
		out.Assignment = heuristics.MaxDistribution(req.Tree).Assignment
	case GreedyHost:
		r := heuristics.Greedy(req.Tree, heuristics.FromHost)
		out.Assignment, out.Work = r.Assignment, r.Work
	case GreedyTop:
		r := heuristics.Greedy(req.Tree, heuristics.FromTopmost)
		out.Assignment, out.Work = r.Assignment, r.Work
	case Annealing:
		r := heuristics.Anneal(req.Tree, heuristics.AnnealConfig{Seed: req.Seed})
		out.Assignment, out.Work = r.Assignment, r.Work
	case Genetic:
		r := heuristics.Genetic(req.Tree, heuristics.GeneticConfig{Seed: req.Seed})
		out.Assignment, out.Work = r.Assignment, r.Work
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q (known: %v)", alg, Algorithms())
	}
	out.Elapsed = time.Since(start)

	bd, err := eval.Evaluate(req.Tree, out.Assignment)
	if err != nil {
		return nil, fmt.Errorf("core: %s produced an invalid assignment: %w", alg, err)
	}
	out.Breakdown = bd
	out.Delay = bd.Delay
	return out, nil
}
