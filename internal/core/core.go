package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/boundcache"
	"repro/internal/dwg"
	"repro/internal/eval"
	"repro/internal/model"
)

// Algorithm names a solver.
type Algorithm string

// Names of the built-in algorithms. The constants are only names: dispatch
// is by registry lookup, and external packages may Register further
// algorithms under new names without touching this package.
const (
	// AdaptedSSB is the paper's §5.4 algorithm: coloured assignment graph +
	// SSB path search with expansion. Exact; the default.
	AdaptedSSB Algorithm = "adapted-ssb"
	// LabelSearch is the exact dominance-pruned coloured path search.
	LabelSearch Algorithm = "label-search"
	// ParetoDP is the exact per-region Pareto dynamic program.
	ParetoDP Algorithm = "pareto-dp"
	// BruteForce enumerates every feasible assignment. Exact, exponential.
	BruteForce Algorithm = "brute-force"
	// BranchBound is the §6 future-work branch-and-bound, made exact.
	BranchBound Algorithm = "branch-and-bound"
	// AllHost keeps every CRU on the host (baseline).
	AllHost Algorithm = "all-host"
	// MaxDistribution sinks every region to its satellite (baseline).
	MaxDistribution Algorithm = "max-distribution"
	// GreedyHost hill-climbs from the all-host assignment.
	GreedyHost Algorithm = "greedy-host"
	// GreedyTop hill-climbs from the maximal distribution.
	GreedyTop Algorithm = "greedy-top"
	// Annealing is simulated annealing over the cut-move neighbourhood.
	Annealing Algorithm = "annealing"
	// Genetic is the §6 future-work genetic algorithm.
	Genetic Algorithm = "genetic"
	// ParallelBnB is the work-stealing parallel branch-and-bound: exact,
	// and saturating Request.Parallelism cores on one solve.
	ParallelBnB Algorithm = "parallel-bnb"
	// AnnealingPack runs a pack of independent annealing walks in lockstep
	// over the batch evaluation kernel. The pack width is pinned in its
	// config, not taken from Request.Parallelism: width changes the answer,
	// and the parallelism hint is excluded from cache identity on the
	// promise it never does.
	AnnealingPack Algorithm = "annealing-pack"
)

// Request describes one solve.
type Request struct {
	Tree      *model.Tree
	Algorithm Algorithm   // empty selects AdaptedSSB
	Weights   dwg.Weights // zero selects the S+B delay objective
	Seed      int64       // randomised heuristics only
	Budget    int         // node/frontier budget for exact searches (0 = default)

	// Parallelism bounds the intra-solve worker count (or lane width) of
	// solvers whose capabilities declare Parallel: 0 selects the solver's
	// default (GOMAXPROCS for the work-stealing branch-and-bound). It is
	// advisory and never changes an exact solver's answer — only how many
	// cores the search saturates — so the serving layers exclude it from
	// the cache identity; solvers without the capability ignore it.
	Parallelism int

	// Plan is the compiled flat-tree plan of Tree. Leave nil to have
	// SolveContext resolve it (Compile memoises the plan on the tree, so
	// the serving layers — Solver, Service, Session — compile each
	// revision once and every dispatch across the cache, batch and
	// session paths reuses the same arrays).
	Plan *model.Compiled

	// Warm is an optional prior assignment to seed the search from —
	// typically the previous revision's outcome projected onto a mutated
	// tree by the incremental engine. It is advisory: solvers whose
	// capabilities declare WarmStart use it (exact ones only to prune, so
	// their answer is unchanged; heuristics as the starting point of
	// their walk), all others ignore it, and hints that are not feasible
	// for Tree are dropped before dispatch.
	Warm *model.Assignment

	// OnIncumbent, when set, is invoked by anytime solvers (capability
	// Anytime) each time they improve their incumbent. The callback runs
	// synchronously on the solver goroutine, so it must be fast and must
	// not retain Incumbent.Assignment beyond the call unless the solver
	// documents it as caller-owned (all built-in anytime solvers pass a
	// fresh clone). Non-anytime solvers ignore it.
	OnIncumbent func(Incumbent)

	// BestEffort asks anytime solvers to return their best-so-far
	// assignment with Finding.Partial set instead of failing with
	// ErrBudgetExceeded / a context error when the budget or deadline
	// expires after at least one feasible incumbent exists. Solvers
	// without the Anytime capability ignore it.
	BestEffort bool

	// Bounds is an optional bound-memoization cache for the exact
	// searches (capability Bounds): proven subtree lower bounds, keyed
	// by Merkle hash, tighten pruning across solves — session revisions
	// re-search only the dirty spine, corpus siblings share proofs. It
	// is advisory and never changes an exact solver's answer (property-
	// tested), only the nodes explored, so the serving layers exclude it
	// from cache identity exactly like Warm and Parallelism; solvers
	// without the capability ignore it.
	Bounds *boundcache.Cache
}

// Incumbent is one improving solution streamed by an anytime solver.
type Incumbent struct {
	// Assignment is a caller-owned clone of the incumbent assignment.
	Assignment *model.Assignment
	// Delay is the incumbent's objective value.
	Delay float64
	// LowerBound is the solver's current proof floor on the optimum
	// (0 when the solver has none — heuristics stream 0).
	LowerBound float64
	// Work is the solver's effort counter at the time of the improvement.
	Work int
}

// Gap reports the relative bound gap (Delay-LowerBound)/LowerBound, or
// -1 when no lower bound is available.
func (inc Incumbent) Gap() float64 {
	if inc.LowerBound <= 0 {
		return -1
	}
	return (inc.Delay - inc.LowerBound) / inc.LowerBound
}

// SearchStats reports how a graph-based solve went.
type SearchStats struct {
	Iterations int  // elimination rounds (adapted SSB)
	Expansions int  // band expansions performed
	SuperEdges int  // super-edges created by expansions
	FinalEdges int  // enabled edges at termination — the |E'| of §5.4
	FellBack   bool // adapted SSB handed over to the label search
	Labels     int  // labels explored by the label search (0 if unused)
}

// Outcome is a uniform solver result.
type Outcome struct {
	Algorithm  Algorithm
	Assignment *model.Assignment
	Breakdown  *eval.Breakdown
	Delay      float64
	Exact      bool
	Elapsed    time.Duration // solve plus evaluation wall time
	Work       int           // algorithm-specific effort counter
	Stats      *SearchStats  // populated by the graph-based solvers

	// Partial marks a best-effort result cut short by budget or deadline;
	// Exact is false for partial results even from exact solvers.
	Partial bool
	// LowerBound is the solver's proof floor on the optimal delay
	// (0 = none). A completed exact solve reports LowerBound == Delay.
	LowerBound float64

	// Node accounting of the memoized exact searches (zero elsewhere):
	// branches cut by the pruning bound and bound-cache hits/misses.
	// With Work (nodes explored) these make the memoization speedup
	// measurable per solve; /debug/vars aggregates them fleet-wide.
	Pruned      int
	BoundHits   int
	BoundMisses int
}

// Solve dispatches the request without cancellation support.
//
// Deprecated: use SolveContext (or the public repro.Solver service), which
// honours deadlines and cancellation.
func Solve(req Request) (*Outcome, error) {
	return SolveContext(context.Background(), req)
}

// SolveContext dispatches the request through the algorithm registry. The
// context cancels the solver's hot loops: on cancellation the returned
// error matches ErrCanceled as well as the context cause.
func SolveContext(ctx context.Context, req Request) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Tree == nil {
		return nil, fmt.Errorf("%w: nil tree", ErrInvalidTree)
	}
	alg := req.Algorithm
	if alg == "" {
		alg = AdaptedSSB
	}
	caps, fn, ok := Lookup(alg)
	if !ok {
		return nil, &UnknownAlgorithmError{Name: alg, Known: Algorithms()}
	}
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Algorithm: alg, Cause: err}
	}
	if req.Plan == nil || req.Plan.Tree() != req.Tree {
		req.Plan = model.Compile(req.Tree)
	}
	// Warm hints are advisory: drop them for solvers that cannot consume
	// them and for hints that are not feasible on this tree (a projection
	// bug or a caller passing an assignment of another revision must
	// degrade to a cold solve, never corrupt the search).
	if req.Warm != nil && (!caps.WarmStart || req.Warm.Validate(req.Tree) != nil) {
		req.Warm = nil
	}
	// Parallelism is likewise advisory: zero it for solvers that do not
	// declare the capability so their SolveFuncs never see a stray hint.
	if !caps.Parallel {
		req.Parallelism = 0
	}
	// So is the bound cache: only solvers declaring the capability may
	// consult or populate it.
	if !caps.Bounds {
		req.Bounds = nil
	}

	start := time.Now()
	finding, err := fn(ctx, req)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, &CanceledError{Algorithm: alg, Cause: err}
		}
		return nil, err
	}

	out := &Outcome{
		Algorithm:   alg,
		Assignment:  finding.Assignment,
		Exact:       caps.Exact && !finding.Partial,
		Work:        finding.Work,
		Stats:       finding.Stats,
		Partial:     finding.Partial,
		LowerBound:  finding.LowerBound,
		Pruned:      finding.Pruned,
		BoundHits:   finding.BoundHits,
		BoundMisses: finding.BoundMisses,
	}
	bd, err := eval.Evaluate(req.Tree, out.Assignment)
	if err != nil {
		return nil, fmt.Errorf("core: %s produced an invalid assignment: %w", alg, err)
	}
	out.Breakdown = bd
	out.Delay = bd.Delay
	// A completed exact search proves its own answer: the delay is a
	// tight lower bound even when the solver reported none (or reported
	// one off by float noise from its incremental bookkeeping).
	if out.Exact {
		out.LowerBound = out.Delay
	}
	// Stamp after evaluation: the reported solve time covers the full
	// request, not just the search.
	out.Elapsed = time.Since(start)
	return out, nil
}
