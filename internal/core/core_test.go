// The tests live in an external package: they need the registered solvers,
// and the solver packages import core, so an in-package test would cycle.
package core_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	_ "repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestAllAlgorithmsRunOnPaperTree(t *testing.T) {
	tree := workload.PaperTree()
	var exactDelay float64
	first := true
	for _, alg := range core.Algorithms() {
		out, err := core.Solve(core.Request{Tree: tree, Algorithm: alg, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := out.Assignment.Validate(tree); err != nil {
			t.Fatalf("%s: invalid assignment: %v", alg, err)
		}
		if out.Breakdown == nil || out.Delay != out.Breakdown.Delay {
			t.Fatalf("%s: inconsistent breakdown", alg)
		}
		if out.Elapsed <= 0 {
			t.Fatalf("%s: Elapsed not stamped (%v)", alg, out.Elapsed)
		}
		if out.Exact {
			if first {
				exactDelay = out.Delay
				first = false
			} else if math.Abs(out.Delay-exactDelay) > 1e-9 {
				t.Fatalf("%s: exact solver disagreement %v vs %v", alg, out.Delay, exactDelay)
			}
		} else if out.Delay < exactDelay-1e-9 {
			t.Fatalf("%s: heuristic %v beats exact optimum %v", alg, out.Delay, exactDelay)
		}
	}
}

func TestDefaultAlgorithm(t *testing.T) {
	out, err := core.Solve(core.Request{Tree: workload.Epilepsy()})
	if err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != core.AdaptedSSB || !out.Exact {
		t.Fatalf("default = %s exact=%v", out.Algorithm, out.Exact)
	}
	if out.Stats == nil {
		t.Fatal("graph solver should report stats")
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	_, err := core.Solve(core.Request{Tree: workload.Epilepsy(), Algorithm: "nope"})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if !errors.Is(err, core.ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	var uae *core.UnknownAlgorithmError
	if !errors.As(err, &uae) {
		t.Fatalf("err = %T, want *UnknownAlgorithmError", err)
	}
	if uae.Name != "nope" || len(uae.Known) == 0 {
		t.Fatalf("UnknownAlgorithmError = %+v", uae)
	}
}

func TestNilTree(t *testing.T) {
	_, err := core.Solve(core.Request{})
	if err == nil {
		t.Fatal("nil tree accepted")
	}
	if !errors.Is(err, core.ErrInvalidTree) {
		t.Fatalf("err = %v, want ErrInvalidTree", err)
	}
}

func TestAlgorithmsOrderedExactFirst(t *testing.T) {
	algs := core.Algorithms()
	seenHeuristic := false
	for _, a := range algs {
		if !a.Exact() {
			seenHeuristic = true
		} else if seenHeuristic {
			t.Fatalf("exact algorithm %s after heuristics", a)
		}
	}
	// The 11 built-ins must all be registered (other tests may add more).
	for _, want := range []core.Algorithm{
		core.AdaptedSSB, core.LabelSearch, core.ParetoDP, core.BruteForce,
		core.BranchBound, core.AllHost, core.MaxDistribution, core.GreedyHost,
		core.GreedyTop, core.Annealing, core.Genetic,
	} {
		if _, ok := core.Capability(want); !ok {
			t.Fatalf("built-in algorithm %s not registered", want)
		}
	}
}

func TestCapabilityMetadata(t *testing.T) {
	caps, ok := core.Capability(core.BruteForce)
	if !ok || !caps.Exact || !caps.Budget || caps.Seeded {
		t.Fatalf("brute-force capabilities = %+v ok=%v", caps, ok)
	}
	caps, ok = core.Capability(core.Annealing)
	if !ok || caps.Exact || !caps.Seeded {
		t.Fatalf("annealing capabilities = %+v ok=%v", caps, ok)
	}
	if caps, _ := core.Capability(core.AdaptedSSB); !caps.Weighted {
		t.Fatalf("adapted-ssb should honour weights: %+v", caps)
	}
}

func TestRegisterCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	core.Register(core.AdaptedSSB, core.Capabilities{}, func(context.Context, core.Request) (core.Finding, error) {
		return core.Finding{}, nil
	})
}

func TestRegisterRejectsNilFunc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil SolveFunc accepted")
		}
	}()
	core.Register("test-nil-func", core.Capabilities{}, nil)
}

func TestCanceledBeforeDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := core.SolveContext(ctx, core.Request{Tree: workload.Epilepsy()})
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, should also match context.Canceled", err)
	}
	var ce *core.CanceledError
	if !errors.As(err, &ce) || ce.Algorithm != core.AdaptedSSB {
		t.Fatalf("err = %v, want CanceledError for adapted-ssb", err)
	}
}

func TestElapsedCoversEvaluation(t *testing.T) {
	// The stamp must come after eval.Evaluate: a solve that is instant
	// still reports a positive, monotone elapsed time.
	out, err := core.Solve(core.Request{Tree: workload.PaperTree(), Algorithm: core.AllHost})
	if err != nil {
		t.Fatal(err)
	}
	if out.Elapsed <= 0 || out.Elapsed > time.Minute {
		t.Fatalf("Elapsed = %v, want a positive solve+evaluation time", out.Elapsed)
	}
}
