package core

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestAllAlgorithmsRunOnPaperTree(t *testing.T) {
	tree := workload.PaperTree()
	var exactDelay float64
	first := true
	for _, alg := range Algorithms() {
		out, err := Solve(Request{Tree: tree, Algorithm: alg, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := out.Assignment.Validate(tree); err != nil {
			t.Fatalf("%s: invalid assignment: %v", alg, err)
		}
		if out.Breakdown == nil || out.Delay != out.Breakdown.Delay {
			t.Fatalf("%s: inconsistent breakdown", alg)
		}
		if out.Exact {
			if first {
				exactDelay = out.Delay
				first = false
			} else if math.Abs(out.Delay-exactDelay) > 1e-9 {
				t.Fatalf("%s: exact solver disagreement %v vs %v", alg, out.Delay, exactDelay)
			}
		} else if out.Delay < exactDelay-1e-9 {
			t.Fatalf("%s: heuristic %v beats exact optimum %v", alg, out.Delay, exactDelay)
		}
	}
}

func TestDefaultAlgorithm(t *testing.T) {
	out, err := Solve(Request{Tree: workload.Epilepsy()})
	if err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != AdaptedSSB || !out.Exact {
		t.Fatalf("default = %s exact=%v", out.Algorithm, out.Exact)
	}
	if out.Stats == nil {
		t.Fatal("graph solver should report stats")
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := Solve(Request{Tree: workload.Epilepsy(), Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestNilTree(t *testing.T) {
	if _, err := Solve(Request{}); err == nil {
		t.Fatal("nil tree accepted")
	}
}

func TestAlgorithmsOrderedExactFirst(t *testing.T) {
	algs := Algorithms()
	seenHeuristic := false
	for _, a := range algs {
		if !a.Exact() {
			seenHeuristic = true
		} else if seenHeuristic {
			t.Fatalf("exact algorithm %s after heuristics", a)
		}
	}
	if len(algs) != 11 {
		t.Fatalf("registered algorithms = %d, want 11", len(algs))
	}
}
