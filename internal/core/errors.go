package core

import (
	"errors"
	"fmt"
)

// Structured sentinel errors of the solver service. Callers classify
// failures with errors.Is; the wrapping error types below carry the richer
// context (which algorithm, which cause) and are matched with errors.As.
var (
	// ErrUnknownAlgorithm reports a Request naming no registered solver.
	ErrUnknownAlgorithm = errors.New("core: unknown algorithm")

	// ErrBudgetExceeded reports an exact search that hit its exploration
	// budget (Request.Budget) before proving optimality.
	ErrBudgetExceeded = errors.New("core: exploration budget exceeded")

	// ErrCanceled reports a solve stopped by its context — cancellation or
	// deadline. The wrapping CanceledError preserves the context cause, so
	// errors.Is also matches context.Canceled / context.DeadlineExceeded.
	ErrCanceled = errors.New("core: solve canceled")

	// ErrInvalidTree reports a nil or structurally invalid problem tree.
	ErrInvalidTree = errors.New("core: invalid tree")
)

// UnknownAlgorithmError is the error returned when a Request names an
// algorithm absent from the registry. It matches ErrUnknownAlgorithm.
type UnknownAlgorithmError struct {
	Name  Algorithm   // the requested name
	Known []Algorithm // the registered names, exact solvers first
}

func (e *UnknownAlgorithmError) Error() string {
	return fmt.Sprintf("core: unknown algorithm %q (known: %v)", e.Name, e.Known)
}

func (e *UnknownAlgorithmError) Unwrap() error { return ErrUnknownAlgorithm }

// CanceledError is the error returned when a solve is stopped by its
// context. It matches both ErrCanceled and the context cause
// (context.Canceled or context.DeadlineExceeded).
type CanceledError struct {
	Algorithm Algorithm
	Cause     error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: %s canceled: %v", e.Algorithm, e.Cause)
}

func (e *CanceledError) Unwrap() []error { return []error{ErrCanceled, e.Cause} }
