package core

import "repro/internal/dwg"

// The solver packages (assign, exact, heuristics) share one
// default-resolution idiom for their tuning knobs: a zero value selects
// the documented default. These helpers are that idiom in one place, so
// every Options.weights()/maxExpanded()-style accessor resolves the same
// way instead of re-implementing the pattern per package.

// IntOr returns n when positive, fallback otherwise. It resolves budget
// and size knobs (exploration caps, step counts, population sizes).
func IntOr(n, fallback int) int {
	if n <= 0 {
		return fallback
	}
	return n
}

// FloatOr returns v when positive, fallback otherwise. It resolves rate
// and scale knobs (crossover probability, starting temperature).
func FloatOr(v, fallback float64) float64 {
	if v <= 0 {
		return fallback
	}
	return v
}

// WeightsOr returns w unless it is the zero value, in which case the
// paper's S + B end-to-end delay weighting is selected.
func WeightsOr(w dwg.Weights) dwg.Weights {
	if w == (dwg.Weights{}) {
		return dwg.Default
	}
	return w
}
