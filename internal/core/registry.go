package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// Capabilities is the metadata a solver declares when it registers.
type Capabilities struct {
	Exact     bool   // guarantees the minimum-delay assignment
	Budget    bool   // honours Request.Budget (exploration caps)
	Seeded    bool   // randomised; Request.Seed selects the run
	Weighted  bool   // honours Request.Weights (weighted S/B objectives)
	WarmStart bool   // honours Request.Warm (seeds the search from a prior assignment)
	Anytime   bool   // streams incumbents via Request.OnIncumbent and honours Request.BestEffort
	Parallel  bool   // honours Request.Parallelism (intra-solve workers or lanes)
	Bounds    bool   // honours Request.Bounds (memoized subtree bound cache)
	Summary   string // one-line human description
}

// Finding is a registered solver's raw result: the assignment it found plus
// its effort counters. Solve wraps it into an Outcome with evaluation,
// timing and capability metadata.
type Finding struct {
	Assignment *model.Assignment
	Work       int          // algorithm-specific effort counter
	Stats      *SearchStats // populated by the graph-based solvers

	// Partial marks a best-effort result: the budget or deadline expired
	// before the search completed, so an exact solver's assignment is the
	// incumbent, not a proven optimum.
	Partial bool
	// LowerBound is a proof floor on the optimal delay, when the solver
	// can supply one (0 means "no bound"). For a completed exact search it
	// equals the returned delay.
	LowerBound float64

	// Node accounting of the memoized exact searches; zero elsewhere.
	Pruned      int
	BoundHits   int
	BoundMisses int
}

// SolveFunc runs one algorithm on a request. Implementations must honour
// ctx in their hot loops, returning ctx.Err() (possibly wrapped) promptly
// after cancellation; Solve translates that into a CanceledError.
type SolveFunc func(ctx context.Context, req Request) (Finding, error)

type registration struct {
	caps Capabilities
	fn   SolveFunc
}

var registry = struct {
	sync.RWMutex
	m map[Algorithm]registration
}{m: map[Algorithm]registration{}}

// Register adds a solver to the registry under name. The solver packages
// call it from init (importing repro/internal/algorithms, or any of them,
// for side effects populates the registry), so dispatch is registry-only:
// adding an algorithm requires no edit to this package. Empty names, nil
// funcs and duplicate registrations are programming errors and panic.
func Register(name Algorithm, caps Capabilities, fn SolveFunc) {
	if name == "" {
		panic("core: Register with empty algorithm name")
	}
	if fn == nil {
		panic(fmt.Sprintf("core: Register(%q) with nil SolveFunc", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("core: Register(%q) called twice", name))
	}
	registry.m[name] = registration{caps: caps, fn: fn}
}

// Lookup returns the registration of name.
func Lookup(name Algorithm) (Capabilities, SolveFunc, bool) {
	registry.RLock()
	defer registry.RUnlock()
	r, ok := registry.m[name]
	return r.caps, r.fn, ok
}

// Capability returns the declared capabilities of name.
func Capability(name Algorithm) (Capabilities, bool) {
	caps, _, ok := Lookup(name)
	return caps, ok
}

// Algorithms returns all registered algorithm names, exact solvers first,
// alphabetical within each group.
func Algorithms() []Algorithm {
	registry.RLock()
	all := make([]Algorithm, 0, len(registry.m))
	for name := range registry.m {
		all = append(all, name)
	}
	registry.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		ei, ej := all[i].Exact(), all[j].Exact()
		if ei != ej {
			return ei
		}
		return all[i] < all[j]
	})
	return all
}

// Exact reports whether the algorithm is registered and guarantees the
// optimal delay.
func (a Algorithm) Exact() bool {
	caps, ok := Capability(a)
	return ok && caps.Exact
}
