// Package core is the solver facade: a single context-aware entry point
// dispatching through a self-registering algorithm registry — the paper's
// adapted coloured SSB (default), the exact coloured label search, the
// three independent exact solvers, and the heuristic/extension solvers —
// with uniform timing and optimality metadata. The solver packages
// (internal/assign, internal/exact, internal/heuristics) register
// themselves via Register; importing repro/internal/algorithms for side
// effects links the full built-in set. The public package repro re-exports
// this API.
package core
