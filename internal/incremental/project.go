package incremental

import (
	"repro/internal/model"
)

// Project maps an assignment computed on one revision of a tree onto
// another revision, matching processing CRUs and satellites by name, and
// returns a feasible warm-start assignment for the target tree — always:
// anything the mutations invalidated is repaired toward the host, which
// is feasible for every CRU.
//
// The repair walks the target in pre-order, so parents are decided before
// children, and enforces the placement rules directly:
//
//   - a CRU under a satellite-resident parent must follow it (the model
//     forbids host CRUs below satellite CRUs, and feasibility of the
//     parent guarantees the child shares its correspondent satellite);
//   - a CRU under a hosted parent keeps its prior satellite only if that
//     satellite still exists by name and is still the CRU's correspondent
//     satellite in the target revision; otherwise it returns to the host.
//
// Projecting onto the same tree reproduces the assignment exactly, so a
// warm hint never degrades an unchanged instance.
func Project(from *model.Tree, asg *model.Assignment, to *model.Tree) *model.Assignment {
	out := model.NewAssignment(to)
	if from == nil || asg == nil {
		return out
	}

	// Prior placement by CRU name, satellite identity by satellite name.
	prior := make(map[string]model.SatelliteID, from.Len())
	for _, id := range from.Preorder() {
		n := from.Node(id)
		if n.Kind != model.Processing {
			continue
		}
		if sat, onSat := asg.At(id).Satellite(); onSat {
			prior[n.Name] = sat
		}
	}
	toSat := make(map[string]model.SatelliteID, len(to.Satellites()))
	for _, s := range to.Satellites() {
		if _, dup := toSat[s.Name]; !dup {
			toSat[s.Name] = s.ID
		}
	}

	for _, id := range to.Preorder() {
		n := to.Node(id)
		if n.Kind != model.Processing || id == to.Root() {
			continue
		}
		if psat, onSat := out.At(n.Parent).Satellite(); onSat {
			// The subtree above already sank; feasibility of the parent
			// guarantees this CRU's correspondent satellite is psat.
			out.Set(id, model.OnSatellite(psat))
			continue
		}
		priorSat, had := prior[n.Name]
		if !had {
			continue // new node, or was hosted: stays on the host
		}
		want, ok := toSat[from.SatelliteName(priorSat)]
		if !ok {
			continue // satellite no longer exists by name
		}
		if corr, mono := to.CorrespondentSatellite(id); mono && corr == want {
			out.Set(id, model.OnSatellite(want))
		}
	}
	return out
}
