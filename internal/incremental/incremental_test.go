package incremental

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/workload"
)

func f(v float64) *float64 { return &v }

func paperish(t *testing.T) *model.Tree {
	t.Helper()
	b := model.NewBuilder()
	r := b.Satellite("R")
	bl := b.Satellite("B")
	root := b.Root("c9", 4, 0)
	c7 := b.Child(root, "c7", 2, 3, 1)
	c8 := b.Child(root, "c8", 3, 2, 1.5)
	c1 := b.Child(c7, "c1", 1, 2, 0.5)
	c2 := b.Child(c7, "c2", 1, 2, 0.5)
	b.Sensor(c1, "s1", r, 0.4)
	b.Sensor(c2, "s2", r, 0.4)
	c3 := b.Child(c8, "c3", 1, 2, 0.5)
	b.Sensor(c3, "s3", bl, 0.4)
	b.Sensor(c8, "s4", bl, 0.4)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// freshFingerprint recomputes the fingerprint with no memo to reuse:
// Clone re-derives every cache, so its Fingerprint is a cold, full
// computation — the reference value every delta path must match.
func freshFingerprint(t *testing.T, tree *model.Tree) string {
	t.Helper()
	return model.Fingerprint(tree.Clone())
}

func TestWeightUpdateSemantics(t *testing.T) {
	base := paperish(t)
	next, err := Apply(base, WeightUpdate{Node: "c7", HostTime: f(9), UpComm: f(2.5)})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := next.NodeByName("c7")
	if n := next.Node(id); n.HostTime != 9 || n.SatTime != 3 || n.UpComm != 2.5 {
		t.Fatalf("c7 profile = (%v,%v,%v), want (9,3,2.5)", n.HostTime, n.SatTime, n.UpComm)
	}
	// The base revision is untouched.
	bid, _ := base.NodeByName("c7")
	if n := base.Node(bid); n.HostTime != 2 || n.UpComm != 1 {
		t.Fatalf("base mutated: %+v", n)
	}
	if model.Fingerprint(base) == model.Fingerprint(next) {
		t.Fatal("fingerprint unchanged by weight update")
	}
	if got, want := model.Fingerprint(next), freshFingerprint(t, next); got != want {
		t.Fatalf("delta fingerprint %s != fresh %s", got, want)
	}
	// Reverting the drift returns to the base identity.
	back, err := Apply(next, WeightUpdate{Node: "c7", HostTime: f(2), UpComm: f(1)})
	if err != nil {
		t.Fatal(err)
	}
	if model.Fingerprint(back) != model.Fingerprint(base) {
		t.Fatal("reverted revision does not share the base fingerprint")
	}
}

func TestWeightUpdateErrors(t *testing.T) {
	base := paperish(t)
	cases := []Mutation{
		WeightUpdate{Node: "nope", HostTime: f(1)},
		WeightUpdate{Node: "s1", HostTime: f(1)},  // sensors perform no work
		WeightUpdate{Node: "c9", UpComm: f(1)},    // root has no uplink
		WeightUpdate{Node: "c7", HostTime: f(-1)}, // negative time
		DetachSubtree{Node: "c9"},                 // cannot remove the root
		DetachSubtree{Node: "s3"},                 // leaves c3 childless
		AttachSubtree{Parent: "s1", Subtree: &model.Spec{CRUs: []model.SpecCRU{{Name: "x", HostTime: 1}}}},
		SatelliteChange{Sensor: "c7", Satellite: "R"}, // not a sensor
	}
	for i, m := range cases {
		if _, err := Apply(base, m); err == nil {
			t.Errorf("case %d (%#v): expected error", i, m)
		}
	}
}

func TestAttachDetachRoundTrip(t *testing.T) {
	base := paperish(t)
	frag := &model.Spec{
		Satellites: []string{"G"},
		CRUs:       []model.SpecCRU{{Name: "c10", HostTime: 2, SatTime: 1, Comm: 0.3}},
		Sensors:    []model.SpecSensor{{Name: "s5", Parent: "c10", Satellite: "G", Comm: 0.2}},
	}
	grown, err := Apply(base, AttachSubtree{Parent: "c9", Subtree: frag})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Len() != base.Len()+2 || len(grown.Satellites()) != 3 {
		t.Fatalf("grown: %v", grown)
	}
	if got, want := model.Fingerprint(grown), freshFingerprint(t, grown); got != want {
		t.Fatalf("fingerprint after attach %s != fresh %s", got, want)
	}
	// Detaching the graft does NOT return to the base identity: the
	// satellite set is part of the instance and never garbage-collected.
	shrunk, err := Apply(grown, DetachSubtree{Node: "c10"})
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Len() != base.Len() {
		t.Fatalf("shrunk to %d nodes, want %d", shrunk.Len(), base.Len())
	}
	if len(shrunk.Satellites()) != 3 {
		t.Fatal("satellite set should survive the detach")
	}
	if got, want := model.Fingerprint(shrunk), freshFingerprint(t, shrunk); got != want {
		t.Fatalf("fingerprint after detach %s != fresh %s", got, want)
	}
}

func TestSatelliteChangeRehomesSensor(t *testing.T) {
	base := paperish(t)
	next, err := Apply(base, SatelliteChange{Sensor: "s3", Satellite: "R"})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := next.NodeByName("s3")
	if name := next.SatelliteName(next.Node(id).Satellite); name != "R" {
		t.Fatalf("s3 on %s, want R", name)
	}
	if got, want := model.Fingerprint(next), freshFingerprint(t, next); got != want {
		t.Fatalf("fingerprint after satellite change %s != fresh %s", got, want)
	}
}

func TestApplyAtomicity(t *testing.T) {
	base := paperish(t)
	fp := model.Fingerprint(base)
	_, err := Apply(base,
		WeightUpdate{Node: "c7", HostTime: f(42)},
		WeightUpdate{Node: "nope", HostTime: f(1)})
	if err == nil {
		t.Fatal("expected error")
	}
	if model.Fingerprint(base) != fp {
		t.Fatal("failed Apply disturbed the base revision")
	}
}

func TestProjectIdentity(t *testing.T) {
	base := paperish(t)
	asg := model.NewAssignment(base)
	// Sink c8's region onto B.
	for _, name := range []string{"c8", "c3"} {
		id, _ := base.NodeByName(name)
		sat, _ := base.CorrespondentSatellite(id)
		asg.Set(id, model.OnSatellite(sat))
	}
	if err := asg.Validate(base); err != nil {
		t.Fatal(err)
	}
	got := Project(base, asg, base)
	if got.Key() != asg.Key() {
		t.Fatalf("identity projection changed the assignment:\n%s\n%s", asg.Key(), got.Key())
	}
}

// randomMutation builds one applicable mutation for the given revision,
// or returns nil when the dice pick an inapplicable op.
func randomMutation(rng *rand.Rand, t *model.Tree, serial int) Mutation {
	names := func(filter func(*model.Node) bool) []string {
		var out []string
		for _, id := range t.Preorder() {
			if n := t.Node(id); filter(n) {
				out = append(out, n.Name)
			}
		}
		return out
	}
	switch rng.Intn(6) {
	case 0, 1, 2: // weight drift on a processing CRU
		crus := names(func(n *model.Node) bool { return n.Kind == model.Processing })
		name := crus[rng.Intn(len(crus))]
		m := WeightUpdate{Node: name, HostTime: f(rng.Float64() * 10), SatTime: f(rng.Float64() * 10)}
		id, _ := t.NodeByName(name)
		if t.Node(id).Parent != model.None {
			m.UpComm = f(rng.Float64() * 5)
		}
		return m
	case 3: // attach a tiny context under a random CRU
		crus := names(func(n *model.Node) bool { return n.Kind == model.Processing })
		tag := strconv.Itoa(serial)
		return AttachSubtree{
			Parent: crus[rng.Intn(len(crus))],
			Subtree: &model.Spec{
				CRUs: []model.SpecCRU{{Name: "cru-" + tag, HostTime: rng.Float64() * 4, SatTime: rng.Float64() * 4, Comm: rng.Float64()}},
				Sensors: []model.SpecSensor{{
					Name: "probe-" + tag, Parent: "cru-" + tag,
					Satellite: t.Satellites()[rng.Intn(len(t.Satellites()))].Name,
					Comm:      rng.Float64(),
				}},
			},
		}
	case 4: // detach a subtree whose parent keeps another child
		var candidates []string
		for _, id := range t.Preorder() {
			n := t.Node(id)
			if n.Parent == model.None {
				continue
			}
			if len(t.Node(n.Parent).Children) >= 2 {
				candidates = append(candidates, n.Name)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
		return DetachSubtree{Node: candidates[rng.Intn(len(candidates))]}
	default: // re-home a sensor
		sensors := names(func(n *model.Node) bool { return n.Kind == model.SensorKind })
		return SatelliteChange{
			Sensor:    sensors[rng.Intn(len(sensors))],
			Satellite: t.Satellites()[rng.Intn(len(t.Satellites()))].Name,
		}
	}
}

// TestRandomMutationStreams drives random mutation sequences over random
// trees and checks, at every applied revision, that (1) the delta-computed
// fingerprint equals a cold rebuild's, and (2) the projected warm start is
// feasible and evaluates — the properties Resolve relies on.
func TestRandomMutationStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(16+rng.Intn(12), 3))
		prevAsg := model.NewAssignment(tree)
		serial := 0
		for step := 0; step < 12; step++ {
			m := randomMutation(rng, tree, serial)
			if m == nil {
				continue
			}
			serial++
			next, err := Apply(tree, m)
			if err != nil {
				// Some rolls are legitimately rejected (e.g. a detach
				// leaving a childless CRU); the stream just moves on.
				continue
			}
			if got, want := model.Fingerprint(next), freshFingerprint(t, next); got != want {
				t.Fatalf("trial %d step %d (%T): delta fingerprint %s != fresh %s", trial, step, m, got, want)
			}
			warm := Project(tree, prevAsg, next)
			if err := warm.Validate(next); err != nil {
				t.Fatalf("trial %d step %d (%T): projected warm start infeasible: %v", trial, step, m, err)
			}
			if _, err := eval.Evaluate(next, warm); err != nil {
				t.Fatalf("trial %d step %d: evaluating warm start: %v", trial, step, err)
			}
			tree, prevAsg = next, warm
		}
	}
}

// TestMutationTransfersCompiledPlan pins the incremental engine's
// memory-discipline contract: a profile-only mutation hands the new
// revision a patched compiled plan that shares the base revision's
// structural arrays (only the float arrays are recompiled, spine-first),
// while a structural mutation drops the plan so the next solve
// recompiles from the new shape.
func TestMutationTransfersCompiledPlan(t *testing.T) {
	tree := workload.PaperTree()
	base := model.Compile(tree)

	drifted, err := Apply(tree, WeightUpdate{Node: "CRU4", SatTime: f(9.5)})
	if err != nil {
		t.Fatalf("WeightUpdate: %v", err)
	}
	plan := model.Compile(drifted)
	if &plan.Post[0] != &base.Post[0] {
		t.Fatalf("profile mutation recompiled the structural arrays instead of transferring them")
	}
	if plan.SubSat[plan.Pos[mustID(t, drifted, "CRU4")]] == base.SubSat[base.Pos[mustID(t, tree, "CRU4")]] {
		t.Fatalf("patched plan kept the stale subtree satellite load")
	}

	grown, err := Apply(tree, AttachSubtree{Parent: "CRU7", Subtree: &model.Spec{
		CRUs:    []model.SpecCRU{{Name: "x1", Parent: "", HostTime: 1, SatTime: 2}},
		Sensors: []model.SpecSensor{{Name: "xs1", Parent: "x1", Satellite: "Y", Comm: 0.5}},
	}})
	if err != nil {
		t.Fatalf("AttachSubtree: %v", err)
	}
	if model.Compile(grown).Len() != tree.Len()+2 {
		t.Fatalf("structural mutation produced a plan of the wrong size")
	}
}

func mustID(t *testing.T, tree *model.Tree, name string) model.NodeID {
	t.Helper()
	id, ok := tree.NodeByName(name)
	if !ok {
		t.Fatalf("node %s missing", name)
	}
	return id
}
