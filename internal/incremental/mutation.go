package incremental

import (
	"fmt"

	"repro/internal/model"
)

// Mutation is one edit of a live tree. Implementations address nodes by
// name — the stable handle across revisions (NodeIDs are renumbered when
// subtrees detach). The set is sealed: the four concrete types below
// cover the drift modes of context-reasoning workloads, and the wire
// layer enumerates them.
type Mutation interface {
	// apply stages the mutation on the editor. Failures are reported via
	// the editor's sticky error as well as the return value.
	apply(e *model.Editor) error
}

// Apply folds the mutations, in order, into a new validated revision of
// t. The input tree is never modified; on any failure the returned tree
// is nil and no partial revision escapes. An empty mutation list yields
// t itself (revision identity is by content, not by pointer).
func Apply(t *model.Tree, muts ...Mutation) (*model.Tree, error) {
	if t == nil {
		return nil, fmt.Errorf("incremental: nil tree")
	}
	if len(muts) == 0 {
		return t, nil
	}
	e := t.Edit()
	for _, m := range muts {
		if m == nil {
			return nil, fmt.Errorf("incremental: nil mutation")
		}
		if err := m.apply(e); err != nil {
			return nil, err
		}
	}
	return e.Build()
}

// WeightUpdate drifts one node's execution profile and/or uplink cost.
// Nil fields keep the current value. HostTime and SatTime apply only to
// processing CRUs (sensors perform no work); UpComm applies to any
// non-root node.
type WeightUpdate struct {
	Node     string
	HostTime *float64
	SatTime  *float64
	UpComm   *float64
}

func (m WeightUpdate) apply(e *model.Editor) error {
	id, ok := e.NodeByName(m.Node)
	if !ok {
		return fmt.Errorf("incremental: weight-update: unknown node %q", m.Node)
	}
	if m.HostTime != nil || m.SatTime != nil {
		n, _ := e.NodeInfo(id)
		h, s := n.HostTime, n.SatTime
		if m.HostTime != nil {
			h = *m.HostTime
		}
		if m.SatTime != nil {
			s = *m.SatTime
		}
		e.SetTimes(id, h, s)
	}
	if m.UpComm != nil {
		e.SetUpComm(id, *m.UpComm)
	}
	return e.Err()
}

// AttachSubtree grafts a Spec fragment under the named parent as its new
// rightmost subtree. Fragment rows with an empty parent attach directly
// to Parent; satellite names resolve against the existing set (new names
// register new satellites); fragment node names must be fresh.
type AttachSubtree struct {
	Parent  string
	Subtree *model.Spec
}

func (m AttachSubtree) apply(e *model.Editor) error {
	id, ok := e.NodeByName(m.Parent)
	if !ok {
		return fmt.Errorf("incremental: attach: unknown parent %q", m.Parent)
	}
	e.Attach(id, m.Subtree)
	return e.Err()
}

// DetachSubtree removes the subtree rooted at the named node — a context
// (and its sensors) disappearing from the workload. The root cannot be
// detached, and removing the last child of a CRU is rejected at
// validation (every leaf must be a sensor).
type DetachSubtree struct {
	Node string
}

func (m DetachSubtree) apply(e *model.Editor) error {
	id, ok := e.NodeByName(m.Node)
	if !ok {
		return fmt.Errorf("incremental: detach: unknown node %q", m.Node)
	}
	e.Detach(id)
	return e.Err()
}

// SatelliteChange re-homes a sensor onto another satellite, identified by
// name; an unknown name registers a new satellite. This changes the
// colour partition, so the revision is fully re-validated (a subtree that
// was monochromatic may stop being sinkable and vice versa).
type SatelliteChange struct {
	Sensor    string
	Satellite string
}

func (m SatelliteChange) apply(e *model.Editor) error {
	id, ok := e.NodeByName(m.Sensor)
	if !ok {
		return fmt.Errorf("incremental: satellite-change: unknown sensor %q", m.Sensor)
	}
	e.SetSensorSatellite(id, e.EnsureSatellite(m.Satellite))
	return e.Err()
}
