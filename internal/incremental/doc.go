// Package incremental is the delta-solving engine for long-lived trees
// under mutation traffic: instead of treating every change to a context
// reasoning procedure as a brand-new instance, it models the change
// itself and carries as much prior work as possible across it.
//
// Three pieces cooperate:
//
//   - A mutation vocabulary — WeightUpdate, AttachSubtree, DetachSubtree,
//     SatelliteChange — describing how real workloads drift: execution
//     profiles and link costs move as sensor duty cycles change, whole
//     context subtrees appear and disappear, sensors re-home to other
//     satellites. Apply folds a batch of mutations through a
//     model.Editor into a new validated revision of the tree; the prior
//     revision is untouched.
//
//   - Delta-aware identity. Profile-only mutations take model.Editor's
//     fast path, which transfers the base revision's Merkle fingerprint
//     memo with only the root-to-edit paths invalidated, so the mutated
//     revision's cache identity costs O(depth) hashes instead of O(n).
//     A mutation sequence that returns to an earlier shape returns to
//     that shape's fingerprint, and the serving cache hits.
//
//   - Warm-start projection. Project maps the previous revision's
//     assignment onto the mutated tree by node name, repairing anything
//     the mutations broke, and always returns a feasible assignment.
//     Fed through core.Request.Warm, it lets the branch-and-bound prune
//     against a near-optimal incumbent and the heuristics climb from the
//     previous solution instead of a cold baseline.
//
// repro.Session stitches these into the revisioned OpenSession / Mutate /
// Resolve API that cmd/crserve exposes over HTTP.
package incremental
