// Package load is the trace-driven load harness: it turns a declarative
// workload spec into sustained open-loop traffic against a crserve
// fleet and measures both sides of the wire.
//
// The pieces:
//
//   - Spec (spec.go): the JSON/flag-driven workload description — target
//     RPS, duration and warmup, a generated instance corpus (tree-size
//     distribution, Zipfian popularity), and the request mix (solve /
//     batch / simulate / session-churn classes, algorithm mix, batch
//     sizes, mutation rates).
//   - Generator (gen.go): deterministic request sampling over the spec.
//     The same seed always produces the same corpus and the same request
//     stream, so a run is reproducible end to end.
//   - Run (run.go): the open-loop driver — a pacer emits ticks at the
//     target rate regardless of how the fleet is coping (the open-loop
//     property that exposes queueing collapse, which closed-loop
//     clients hide), workers execute them, and per-class HDR histograms
//     record client-observed latency split into warmup and measure
//     phases.
//   - collector (collect.go): a per-interval scraper of every target's
//     /debug/vars — cache hit counters, cluster forward/hedge/fallback
//     counters, allocator and GC gauges, server-side latency quantiles
//     — persisted as timestamped samples next to the client numbers.
//   - Result (result.go): the run record — per-class quantiles and
//     error/timeout counts, achieved vs target RPS, per-node counter
//     deltas and the sample series — plus the conversion to the
//     versioned perf-run schema (internal/bench/series) that CI and the
//     BENCH_PRn.json trajectory consume, and the threshold checks the
//     perf-smoke CI step gates on.
//
// cmd/crload is the CLI front end; it can aim at an external -targets
// list or self-host an in-process fleet (SelfHostFleet) for
// single-binary smoke runs.
package load
