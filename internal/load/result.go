package load

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/bench/series"
	"repro/internal/hdr"
)

// ClassStats is one request class's client-observed record.
type ClassStats struct {
	Count    uint64      `json:"count"` // completed OK in the measured phase
	Errors   uint64      `json:"errors,omitempty"`
	Timeouts uint64      `json:"timeouts,omitempty"`
	Latency  hdr.Summary `json:"latency"`
}

// NodeStats is one fleet member's server-side record over the measured
// phase: counter deltas (final minus baseline scrape) plus its final
// per-endpoint latency quantiles.
type NodeStats struct {
	URL            string                 `json:"url"`
	CacheHits      int64                  `json:"cache_hits"`
	CacheMisses    int64                  `json:"cache_misses"`
	CacheShared    int64                  `json:"cache_shared"`
	Forwards       int64                  `json:"forwards"`
	Hedges         int64                  `json:"hedges"`
	LocalFallbacks int64                  `json:"local_fallbacks"`
	FailedRequests int64                  `json:"failed_requests"`
	Mallocs        uint64                 `json:"mallocs"`
	NumGC          uint64                 `json:"num_gc"`
	HeapAllocBytes uint64                 `json:"heap_alloc_bytes"` // final, not delta
	Latency        map[string]hdr.Summary `json:"latency,omitempty"`
}

// Result is one run's complete record: the spec that produced it, the
// client-observed per-class stats, the server-side per-node deltas, and
// the per-interval sample series. It is the Detail payload of a crload
// series.Run.
type Result struct {
	Spec       *Spec    `json:"spec"`
	Targets    []string `json:"targets"`
	StartMS    int64    `json:"start_unix_ms"`
	ElapsedSec float64  `json:"elapsed_sec"` // measured phase wall time

	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Sent        uint64  `json:"sent"`
	Completed   uint64  `json:"completed"`
	Errors      uint64  `json:"errors"`
	Timeouts    uint64  `json:"timeouts"`
	Dropped     uint64  `json:"dropped,omitempty"` // pacer ticks shed at full backlog

	Classes map[string]*ClassStats `json:"classes"`
	Nodes   []NodeStats            `json:"nodes,omitempty"`
	Samples []Sample               `json:"samples,omitempty"`

	ScrapeFailures int `json:"scrape_failures,omitempty"`
}

// assemble folds the runner and collector state into the Result.
func (r *runner) assemble(start time.Time, elapsed time.Duration, col *collector) *Result {
	res := &Result{
		Spec:       r.spec,
		Targets:    r.targets,
		StartMS:    start.UnixMilli(),
		ElapsedSec: elapsed.Seconds(),
		TargetRPS:  r.spec.RPS,
		Sent:       r.sent.Load(),
		Dropped:    r.dropped.Load(),
		Classes:    map[string]*ClassStats{},
	}
	for _, class := range resultClasses {
		st := r.classes[class]
		n := st.hist.Count()
		errs, tos := st.errors.Load(), st.timeouts.Load()
		if n == 0 && errs == 0 && tos == 0 {
			continue // class not in the mix
		}
		res.Classes[class] = &ClassStats{
			Count:    n,
			Errors:   errs,
			Timeouts: tos,
			Latency:  st.hist.Snapshot(),
		}
		res.Completed += n
		res.Errors += errs
		res.Timeouts += tos
	}
	if res.ElapsedSec > 0 {
		res.AchievedRPS = float64(res.Completed) / res.ElapsedSec
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	res.Samples = col.samples
	res.ScrapeFailures = col.failures
	for _, target := range r.targets {
		fin := col.final[target]
		if fin == nil {
			continue // unreachable at the end: its samples still tell the story
		}
		node := NodeStats{
			URL:            target,
			HeapAllocBytes: fin.Runtime.HeapAllocBytes,
			Latency:        fin.Latency,
		}
		base := col.baseline[target]
		if base == nil {
			base = &serverVars{}
		}
		node.CacheHits = fin.Cache.Hits - base.Cache.Hits
		node.CacheMisses = fin.Cache.Misses - base.Cache.Misses
		node.CacheShared = fin.Cache.Shared - base.Cache.Shared
		node.Forwards = fin.Cluster.Stats.Forwards - base.Cluster.Stats.Forwards
		node.Hedges = fin.Cluster.Stats.Hedges - base.Cluster.Stats.Hedges
		node.LocalFallbacks = fin.Cluster.Stats.LocalFallbacks - base.Cluster.Stats.LocalFallbacks
		node.FailedRequests = fin.Requests["failed"] - base.Requests["failed"]
		node.Mallocs = fin.Runtime.Mallocs - base.Runtime.Mallocs
		node.NumGC = fin.Runtime.NumGC - base.Runtime.NumGC
		res.Nodes = append(res.Nodes, node)
	}
	return res
}

// CacheHitRatio is the fleet-wide hit fraction over the measured phase
// (hits / (hits+misses)); 0 when nothing was cached-checked.
func (r *Result) CacheHitRatio() float64 {
	var hits, misses int64
	for _, n := range r.Nodes {
		hits += n.CacheHits
		misses += n.CacheMisses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Benches flattens the run into the versioned perf-series scalars: the
// rate, each class's p50/p95/p99, and the fleet counters CI trends.
func (r *Result) Benches() []series.Bench {
	b := []series.Bench{
		{Name: "load/achieved_rps", Value: r.AchievedRPS, Unit: "req/s",
			Extra: fmt.Sprintf("target %.0f", r.TargetRPS)},
		{Name: "load/errors", Value: float64(r.Errors), Unit: "count"},
		{Name: "load/timeouts", Value: float64(r.Timeouts), Unit: "count"},
		{Name: "load/cache_hit_ratio", Value: r.CacheHitRatio(), Unit: "ratio"},
	}
	for _, class := range resultClasses {
		st, ok := r.Classes[class]
		if !ok || st.Count == 0 {
			continue
		}
		b = append(b,
			series.Bench{Name: "load/" + class + "/p50", Value: st.Latency.P50US, Unit: "us"},
			series.Bench{Name: "load/" + class + "/p95", Value: st.Latency.P95US, Unit: "us"},
			series.Bench{Name: "load/" + class + "/p99", Value: st.Latency.P99US, Unit: "us",
				Extra: fmt.Sprintf("%d requests", st.Count)},
		)
	}
	return b
}

// Summary renders the human-readable run report.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload %q: %.0f/%.0f req/s achieved/target over %.1fs",
		r.Spec.Name, r.AchievedRPS, r.TargetRPS, r.ElapsedSec)
	fmt.Fprintf(&sb, " — %d ok, %d errors, %d timeouts", r.Completed, r.Errors, r.Timeouts)
	if r.Dropped > 0 {
		fmt.Fprintf(&sb, ", %d dropped (backlog full: fleet saturated)", r.Dropped)
	}
	sb.WriteByte('\n')

	fmt.Fprintf(&sb, "%-16s %10s %8s %9s %9s %9s %9s\n",
		"class", "count", "errors", "p50", "p95", "p99", "max")
	us := func(v float64) string {
		return time.Duration(v * float64(time.Microsecond)).Round(10 * time.Microsecond).String()
	}
	for _, class := range resultClasses {
		st, ok := r.Classes[class]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "%-16s %10d %8d %9s %9s %9s %9s\n",
			class, st.Count, st.Errors+st.Timeouts,
			us(st.Latency.P50US), us(st.Latency.P95US), us(st.Latency.P99US), us(st.Latency.MaxUS))
	}

	if len(r.Nodes) > 0 {
		fmt.Fprintf(&sb, "fleet: cache hit ratio %.1f%%", 100*r.CacheHitRatio())
		var fwd, hedge, fall int64
		for _, n := range r.Nodes {
			fwd += n.Forwards
			hedge += n.Hedges
			fall += n.LocalFallbacks
		}
		fmt.Fprintf(&sb, ", %d forwards, %d hedges, %d local fallbacks over %d nodes\n",
			fwd, hedge, fall, len(r.Nodes))
	}
	if r.ScrapeFailures > 0 {
		fmt.Fprintf(&sb, "warning: %d /debug/vars scrapes failed\n", r.ScrapeFailures)
	}
	return sb.String()
}

// Thresholds are the perf-smoke gates CI applies to a run. Zero-valued
// fields are not checked.
type Thresholds struct {
	// MaxP95 bounds every class's client-observed p95.
	MaxP95 time.Duration
	// MinRPSFraction requires achieved >= fraction * target.
	MinRPSFraction float64
	// MaxErrorFraction bounds (errors+timeouts)/sent. Use a tiny
	// positive value (not 0) to mean "none allowed" — 0 disables.
	MaxErrorFraction float64
}

// Check applies the thresholds, returning one error naming every
// violated gate.
func (r *Result) Check(th Thresholds) error {
	var probs []string
	if th.MaxP95 > 0 {
		classes := make([]string, 0, len(r.Classes))
		for class := range r.Classes {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			st := r.Classes[class]
			if p95 := time.Duration(st.Latency.P95US * float64(time.Microsecond)); p95 > th.MaxP95 {
				probs = append(probs, fmt.Sprintf("%s p95 %v exceeds %v", class, p95, th.MaxP95))
			}
		}
	}
	if th.MinRPSFraction > 0 && r.AchievedRPS < th.MinRPSFraction*r.TargetRPS {
		probs = append(probs, fmt.Sprintf("achieved %.0f req/s below %.0f%% of target %.0f",
			r.AchievedRPS, 100*th.MinRPSFraction, r.TargetRPS))
	}
	if th.MaxErrorFraction > 0 && r.Sent > 0 {
		frac := float64(r.Errors+r.Timeouts) / float64(r.Sent)
		if frac > th.MaxErrorFraction {
			probs = append(probs, fmt.Sprintf("error fraction %.3f exceeds %.3f (%d errors + %d timeouts / %d sent)",
				frac, th.MaxErrorFraction, r.Errors, r.Timeouts, r.Sent))
		}
	}
	if len(probs) > 0 {
		return fmt.Errorf("load: thresholds violated:\n  - %s", strings.Join(probs, "\n  - "))
	}
	return nil
}
