package load

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestDefaultSpecValidates(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("DefaultSpec().Validate() = %v", err)
	}
}

func TestParseSpecFile(t *testing.T) {
	raw := []byte(`{
		"name": "ci-smoke",
		"seed": 7,
		"rps": 250,
		"duration": "3s",
		"warmup": 0.5,
		"corpus": {"instances": 16, "min_crus": 6, "max_crus": 10, "zipf_s": 1.3},
		"mix": {
			"classes": {"solve": 0.7, "batch": 0.2, "session": 0.1},
			"algorithms": {"adapted-ssb": 0.9, "": 0.1},
			"batch_min": 2, "batch_max": 8
		}
	}`)
	s, err := ParseSpec(raw)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Name != "ci-smoke" || s.Seed != 7 || s.RPS != 250 {
		t.Errorf("header fields wrong: %+v", s)
	}
	if time.Duration(s.Duration) != 3*time.Second {
		t.Errorf("duration = %v, want 3s", time.Duration(s.Duration))
	}
	if time.Duration(s.Warmup) != 500*time.Millisecond {
		t.Errorf("numeric warmup = %v, want 500ms (seconds)", time.Duration(s.Warmup))
	}
	// Defaults filled where the file was silent.
	if s.Workers != 32 || time.Duration(s.Timeout) != 5*time.Second {
		t.Errorf("defaults not applied: workers=%d timeout=%v", s.Workers, time.Duration(s.Timeout))
	}
	if s.Mix.SessionOps != 4 {
		t.Errorf("session_ops default not applied: %d", s.Mix.SessionOps)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"rps": 10, "duration": "1s", "rsp": 20}`))
	if err == nil {
		t.Fatal("want error for unknown field, got nil")
	}
}

func TestParseSpecRejectsBadDuration(t *testing.T) {
	_, err := ParseSpec([]byte(`{"rps": 10, "duration": "fast"}`))
	if err == nil || !strings.Contains(err.Error(), "bad duration") {
		t.Fatalf("want bad-duration error, got %v", err)
	}
}

// TestValidateCollectsEveryViolation feeds one thoroughly broken spec
// and asserts the error names each problem class, all in one round.
func TestValidateCollectsEveryViolation(t *testing.T) {
	s := &Spec{
		RPS:      0,
		Duration: Duration(-time.Second),
		Workers:  1,
		Timeout:  Duration(time.Second),
		Corpus: CorpusSpec{
			Instances: 4, MinCRUs: 10, MaxCRUs: 5, Satellites: 2,
			ZipfS: 0.5, // in (0,1]: rand.Zipf cannot represent it
		},
		Mix: MixSpec{
			Classes:        map[string]float64{"solve": 1, "teleport": 2},
			Algorithms:     map[string]float64{"quantum-annealing-9000": 1},
			BatchMin:       4,
			BatchMax:       2,
			SessionOps:     1,
			MutationsPerOp: 1,
			DriftFraction:  0.1,
		},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("want validation error, got nil")
	}
	for _, want := range []string{
		"rps must be > 0",
		"duration must be > 0",
		"max_crus (5) must be >= corpus.min_crus (10)",
		"zipf_s",
		`unknown class "teleport"`,
		`unknown algorithm "quantum-annealing-9000"`,
		"batch_max (2) must be >= mix.batch_min (4)",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

func TestValidateRejectsNonPositiveWeights(t *testing.T) {
	s := DefaultSpec()
	s.Mix.Classes = map[string]float64{"solve": -1}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "weight must be > 0") {
		t.Fatalf("want weight error, got %v", err)
	}
}

func TestValidateAcceptsUniformZipf(t *testing.T) {
	s := DefaultSpec()
	s.Corpus.ZipfS = -1 // explicit uniform popularity
	if err := s.Validate(); err != nil {
		t.Fatalf("negative zipf_s (uniform) should validate: %v", err)
	}
}

func TestDurationRoundTrip(t *testing.T) {
	s := DefaultSpec()
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := ParseSpec(raw)
	if err != nil {
		t.Fatalf("re-parse marshaled spec: %v", err)
	}
	if time.Duration(back.Duration) != time.Duration(s.Duration) ||
		time.Duration(back.Warmup) != time.Duration(s.Warmup) {
		t.Errorf("durations did not round-trip: %+v vs %+v", back, s)
	}
}
