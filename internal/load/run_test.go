package load

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench/series"
)

// TestRunSmoke is the e2e smoke: a short low-rate run against a
// self-hosted 2-node fleet must complete requests across the classes
// with zero errors, carry per-node server stats, and survive the
// series.Run round trip that crload persists.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a fleet")
	}
	fleet, err := SelfHostFleet(2)
	if err != nil {
		t.Fatalf("SelfHostFleet: %v", err)
	}
	defer fleet.Close()

	spec := &Spec{
		Name:     "smoke",
		Seed:     11,
		RPS:      150,
		Duration: Duration(1200 * time.Millisecond),
		Warmup:   Duration(200 * time.Millisecond),
		Workers:  16,
		Corpus:   CorpusSpec{Instances: 8, MinCRUs: 5, MaxCRUs: 9, Satellites: 3, ZipfS: 1.5},
		Mix: MixSpec{
			Classes:       map[string]float64{ClassSolve: 0.6, ClassBatch: 0.15, ClassSession: 0.15, ClassJobs: 0.1},
			SessionOps:    2,
			JobDeadlineMS: 200,
		},
		ScrapeInterval: Duration(300 * time.Millisecond),
	}
	spec.ApplyDefaults()

	res, err := Run(context.Background(), spec, RunOptions{Targets: fleet.URLs(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("\n%s", res.Summary())

	if res.Completed == 0 || res.AchievedRPS <= 0 {
		t.Fatalf("no throughput: completed=%d rps=%.1f", res.Completed, res.AchievedRPS)
	}
	if res.Errors != 0 {
		t.Errorf("want zero errors, got %d", res.Errors)
	}
	if res.Timeouts != 0 {
		t.Errorf("want zero timeouts, got %d", res.Timeouts)
	}
	for _, class := range []string{ClassSolve, ClassBatch, ClassSessionOpen, ClassJobSubmit, ClassJobPoll} {
		st, ok := res.Classes[class]
		if !ok || st.Count == 0 {
			t.Errorf("class %q saw no completed requests", class)
			continue
		}
		if st.Latency.P95US <= 0 || st.Latency.P50US > st.Latency.P95US {
			t.Errorf("class %q quantiles incoherent: %+v", class, st.Latency)
		}
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("want 2 node stats, got %d", len(res.Nodes))
	}
	var served int64
	for _, n := range res.Nodes {
		served += n.CacheHits + n.CacheMisses
		if len(n.Latency) == 0 {
			t.Errorf("node %s reported no server-side latency", n.URL)
		}
	}
	if served == 0 {
		t.Error("fleet cache counters never moved: collector deltas broken")
	}
	if len(res.Samples) == 0 {
		t.Error("collector recorded no samples")
	}
	if res.ScrapeFailures != 0 {
		t.Errorf("scrape failures against a live fleet: %d", res.ScrapeFailures)
	}

	// Thresholds: a healthy loopback fleet clears generous gates.
	if err := res.Check(Thresholds{MaxP95: 3 * time.Second, MinRPSFraction: 0.5, MaxErrorFraction: 1e-9}); err != nil {
		t.Errorf("Check: %v", err)
	}
	// And a hostile gate trips with a named violation.
	if err := res.Check(Thresholds{MaxP95: time.Nanosecond}); err == nil {
		t.Error("nanosecond p95 gate should have tripped")
	}

	// Persist exactly the way crload does and read it back.
	run, err := series.New("crload", "testcommit", res.Benches(), res)
	if err != nil {
		t.Fatalf("series.New: %v", err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := run.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := series.ReadRun(path)
	if err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	if back.Tool != "crload" || len(back.Benches) == 0 {
		t.Fatalf("round-tripped run malformed: %+v", back)
	}
	var detail Result
	if err := json.Unmarshal(back.Detail, &detail); err != nil {
		t.Fatalf("decoding Detail: %v", err)
	}
	if detail.Completed != res.Completed || detail.Spec.Name != "smoke" {
		t.Errorf("Detail did not round-trip: %d vs %d", detail.Completed, res.Completed)
	}
}

// TestRunRequiresTargets covers the only hard-error path.
func TestRunRequiresTargets(t *testing.T) {
	_, err := Run(context.Background(), DefaultSpec(), RunOptions{})
	if err == nil {
		t.Fatal("want error with no targets")
	}
}
