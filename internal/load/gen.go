package load

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"repro"
	"repro/api"
	"repro/internal/workload"
)

// corpusEntry is one generated problem instance. Index order is
// popularity order: entry 0 is the Zipf head.
type corpusEntry struct {
	spec        *repro.Spec
	fingerprint string
	cruNames    []string
	hostTimes   []float64 // base profile the mutation drift wanders around
	satTimes    []float64
}

// Draw is one drawn request descriptor: which class, against which
// corpus instance, with which algorithm override, and (batch class) how
// many items. Drawing is separated from execution so the request mix
// is testable without a fleet.
type Draw struct {
	Class     string
	Instance  int
	Algorithm string // "" = server default
	BatchSize int
}

// weighted is one cumulative-weight table entry for O(log n) sampling.
type weighted struct {
	cum   float64
	value string
}

// Generator derives the corpus and the sampling tables from a validated
// spec. It is immutable after construction and shared by every worker;
// per-worker randomness lives in Samplers.
type Generator struct {
	spec       *Spec
	corpus     []*corpusEntry
	classes    []weighted
	algorithms []weighted // empty = always server default
	classTotal float64
	algTotal   float64
}

// NewGenerator builds the instance corpus deterministically from
// spec.Seed. The same spec always yields byte-identical request bodies.
func NewGenerator(spec *Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{spec: spec}

	rng := rand.New(rand.NewSource(spec.Seed))
	c := spec.Corpus
	g.corpus = make([]*corpusEntry, c.Instances)
	for i := range g.corpus {
		n := c.MinCRUs + rng.Intn(c.MaxCRUs-c.MinCRUs+1)
		tree := workload.Random(rng, workload.DefaultRandomSpec(n, c.Satellites))
		spec := repro.ToSpec(tree, fmt.Sprintf("load-%d", i))
		entry := &corpusEntry{spec: spec, fingerprint: repro.Fingerprint(tree)}
		for _, cru := range spec.CRUs {
			entry.cruNames = append(entry.cruNames, cru.Name)
			entry.hostTimes = append(entry.hostTimes, cru.HostTime)
			entry.satTimes = append(entry.satTimes, cru.SatTime)
		}
		g.corpus[i] = entry
	}

	g.classes, g.classTotal = cumulate(spec.Mix.Classes)
	g.algorithms, g.algTotal = cumulate(spec.Mix.Algorithms)
	return g, nil
}

// cumulate flattens a weight map into a sorted cumulative table. Map
// iteration order is random, so the keys are sorted first — determinism
// across runs is the whole point.
func cumulate(weights map[string]float64) ([]weighted, float64) {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	table := make([]weighted, 0, len(keys))
	var cum float64
	for _, k := range keys {
		cum += weights[k]
		table = append(table, weighted{cum: cum, value: k})
	}
	return table, cum
}

func pick(table []weighted, total float64, rng *rand.Rand) string {
	if len(table) == 0 {
		return ""
	}
	x := rng.Float64() * total
	i := sort.Search(len(table), func(i int) bool { return table[i].cum > x })
	if i >= len(table) {
		i = len(table) - 1
	}
	return table[i].value
}

// Instances reports the corpus size.
func (g *Generator) Instances() int { return len(g.corpus) }

// Fingerprint returns instance i's canonical identity (for affinity
// assertions in tests and results).
func (g *Generator) Fingerprint(i int) string { return g.corpus[i].fingerprint }

// Sampler draws a deterministic request stream from the generator.
// Each worker owns one (seeded distinctly), so the combined stream is
// stable regardless of scheduling.
type Sampler struct {
	g    *Generator
	rng  *rand.Rand
	zipf *rand.Zipf // nil = uniform popularity
}

// NewSampler returns a sampler seeded with the spec seed xor'd with id.
func (g *Generator) NewSampler(id int64) *Sampler {
	rng := rand.New(rand.NewSource(g.spec.Seed*1_000_003 + id))
	s := &Sampler{g: g, rng: rng}
	if zs := g.spec.Corpus.ZipfS; zs > 1 && len(g.corpus) > 1 {
		s.zipf = rand.NewZipf(rng, zs, 1, uint64(len(g.corpus)-1))
	}
	return s
}

// instance draws a corpus index by popularity.
func (s *Sampler) instance() int {
	if s.zipf == nil {
		return s.rng.Intn(len(s.g.corpus))
	}
	return int(s.zipf.Uint64())
}

// Draw samples the next request descriptor.
func (s *Sampler) Draw() Draw {
	smp := Draw{
		Class:     pick(s.g.classes, s.g.classTotal, s.rng),
		Instance:  s.instance(),
		Algorithm: pick(s.g.algorithms, s.g.algTotal, s.rng),
	}
	if smp.Class == ClassBatch {
		m := s.g.spec.Mix
		smp.BatchSize = m.BatchMin + s.rng.Intn(m.BatchMax-m.BatchMin+1)
	}
	return smp
}

// SolveBody renders a solve request for the sample.
func (g *Generator) SolveBody(smp Draw) ([]byte, error) {
	return json.Marshal(&api.SolveRequest{
		Spec:      g.corpus[smp.Instance].spec,
		Algorithm: smp.Algorithm,
	})
}

// SimulateBody renders a simulate request: solve plus a short replay on
// the discrete-event testbed (the heavier read path).
func (g *Generator) SimulateBody(smp Draw) ([]byte, error) {
	return json.Marshal(&api.SimulateRequest{
		SolveRequest: api.SolveRequest{Spec: g.corpus[smp.Instance].spec, Algorithm: smp.Algorithm},
		Frames:       2,
	})
}

// BatchBody renders a batch of smp.BatchSize items whose instances are
// drawn from the same popularity distribution — repeats within a batch
// are intentional (they exercise the server's per-batch dedup).
func (g *Generator) BatchBody(s *Sampler, smp Draw) ([]byte, error) {
	items := make([]api.SolveRequest, smp.BatchSize)
	for i := range items {
		items[i] = api.SolveRequest{Spec: g.corpus[s.instance()].spec, Algorithm: smp.Algorithm}
	}
	return json.Marshal(&api.BatchRequest{Items: items})
}

// JobBody renders an async job submit for the sample's instance,
// carrying the mix's deadline and portfolio knobs.
func (g *Generator) JobBody(smp Draw) ([]byte, error) {
	m := g.spec.Mix
	return json.Marshal(&api.JobRequest{
		SolveRequest: api.SolveRequest{Spec: g.corpus[smp.Instance].spec, Algorithm: smp.Algorithm},
		DeadlineMS:   m.JobDeadlineMS,
		Portfolio:    m.JobPortfolio,
	})
}

// OpenBody renders a session-open request for the sample's instance.
func (g *Generator) OpenBody(smp Draw) ([]byte, error) {
	return json.Marshal(&api.OpenSessionRequest{
		SolveRequest: api.SolveRequest{Spec: g.corpus[smp.Instance].spec, Algorithm: smp.Algorithm},
	})
}

// MutateBody renders one mutate+resolve call: MutationsPerOp
// weight-updates that drift random CRUs of the instance around their
// base profile by ±DriftFraction. Drifting from the base (not the
// current value) keeps long sessions' weights bounded.
func (g *Generator) MutateBody(s *Sampler, instance int) ([]byte, error) {
	entry := g.corpus[instance]
	m := g.spec.Mix
	muts := make([]api.Mutation, m.MutationsPerOp)
	for i := range muts {
		j := s.rng.Intn(len(entry.cruNames))
		drift := 1 + m.DriftFraction*(2*s.rng.Float64()-1)
		host := entry.hostTimes[j] * drift
		sat := entry.satTimes[j] * drift
		muts[i] = api.Mutation{
			Op:       api.OpWeightUpdate,
			Node:     entry.cruNames[j],
			HostTime: &host,
			SatTime:  &sat,
		}
	}
	return json.Marshal(&api.MutateRequest{Mutations: muts, Resolve: true})
}
