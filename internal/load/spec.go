package load

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro"
)

// Request classes a workload mixes. "session" is churn: each sampled
// session tick advances one worker-held session through its
// open → mutate+resolve… → close lifecycle, so one spec knob drives all
// three session endpoints.
const (
	ClassSolve    = "solve"
	ClassBatch    = "batch"
	ClassSimulate = "simulate"
	ClassSession  = "session"
	ClassJobs     = "jobs"
)

// knownClasses guards Validate against typos in spec files.
var knownClasses = map[string]bool{
	ClassSolve: true, ClassBatch: true, ClassSimulate: true, ClassSession: true,
	ClassJobs: true,
}

// Duration is a time.Duration that travels as a human-readable string
// ("10s", "1m30s") in JSON spec files.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "10s"-style strings or bare numbers (seconds).
func (d *Duration) UnmarshalJSON(raw []byte) error {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("load: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(raw, &secs); err != nil {
		return fmt.Errorf("load: duration must be a string like \"10s\" or a number of seconds: %s", raw)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// CorpusSpec describes the generated instance population the workload
// draws from: how many distinct trees, their size distribution, and how
// skewed their popularity is.
type CorpusSpec struct {
	// Instances is the number of distinct problem instances (default 64).
	Instances int `json:"instances,omitempty"`
	// MinCRUs/MaxCRUs bound the uniform tree-size distribution
	// (processing CRUs per instance; defaults 8 and 24).
	MinCRUs int `json:"min_crus,omitempty"`
	MaxCRUs int `json:"max_crus,omitempty"`
	// Satellites per instance (default 3).
	Satellites int `json:"satellites,omitempty"`
	// ZipfS is the Zipfian popularity skew over the corpus: values > 1
	// (rand.Zipf's requirement) skew towards instance 0 — 1.1 is mild
	// web-like skew, 2 is a hot-key workload. 0 means the default (1.1);
	// any negative value selects uniform popularity.
	ZipfS float64 `json:"zipf_s,omitempty"`
}

// MixSpec describes what the generated requests look like.
type MixSpec struct {
	// Classes weights the request classes (solve, batch, simulate,
	// session). Weights are relative; absent means the default
	// 80/10/0/10 solve/batch/simulate/session blend.
	Classes map[string]float64 `json:"classes,omitempty"`
	// Algorithms weights the per-request algorithm choice by registered
	// name; an extra empty-string key means "server default". Absent
	// means every request uses the server default (the paper's adapted
	// SSB).
	Algorithms map[string]float64 `json:"algorithms,omitempty"`
	// BatchMin/BatchMax bound the uniform batch-size distribution for
	// the batch class (defaults 4 and 16).
	BatchMin int `json:"batch_min,omitempty"`
	BatchMax int `json:"batch_max,omitempty"`
	// SessionOps is how many mutate+resolve round trips a session serves
	// before it closes (default 4) — the session-churn rate knob.
	SessionOps int `json:"session_ops,omitempty"`
	// MutationsPerOp is the number of weight-update mutations bundled
	// into each mutate call (default 1) — the mutation-rate knob.
	MutationsPerOp int `json:"mutations_per_op,omitempty"`
	// DriftFraction is the relative amplitude of each weight drift
	// (default 0.1: weights wander ±10% per mutation).
	DriftFraction float64 `json:"drift_fraction,omitempty"`
	// JobDeadlineMS is the deadline submitted with each jobs-class
	// request (0 = none: jobs run to completion). A deadline makes the
	// anytime tier return best-effort partial results under load.
	JobDeadlineMS int64 `json:"job_deadline_ms,omitempty"`
	// JobPortfolio submits jobs-class requests in portfolio mode (exact
	// vs heuristic race).
	JobPortfolio bool `json:"job_portfolio,omitempty"`
}

// Fleet event actions a spec may schedule mid-run.
const (
	EventJoin  = "join"
	EventLeave = "leave"
)

// EventSpec schedules one fleet-membership change during the measured
// phase — the declarative form of "a node joins 5s into the run". The
// harness fires it through RunOptions.OnEvent; runs without an OnEvent
// hook (external -targets fleets) log and skip it.
type EventSpec struct {
	// At is the offset from the start of the measured phase.
	At Duration `json:"at"`
	// Action is "join" (spawn one node) or "leave" (drain the newest).
	Action string `json:"action"`
}

// Spec is the declarative workload: everything a run needs besides the
// target list. The zero value is not runnable — start from DefaultSpec
// or a parsed file; Validate reports every problem at once.
type Spec struct {
	// Name labels the run in results files.
	Name string `json:"name,omitempty"`
	// Seed makes the corpus and the request stream deterministic
	// (default 1).
	Seed int64 `json:"seed,omitempty"`
	// RPS is the open-loop target request rate (required, > 0).
	RPS float64 `json:"rps"`
	// Duration is the measured phase length (required, > 0).
	Duration Duration `json:"duration"`
	// Warmup precedes the measured phase: traffic flows (filling caches
	// and JITting the fleet warm) but lands in discarded histograms.
	Warmup Duration `json:"warmup,omitempty"`
	// Workers bounds concurrent in-flight requests (default 32). In an
	// open-loop run the pacer never slows down for saturated workers;
	// the backlog it builds is itself a measurement (see Result).
	Workers int `json:"workers,omitempty"`
	// Timeout is the per-request client timeout (default 5s); expiries
	// count as timeouts, not errors.
	Timeout Duration `json:"timeout,omitempty"`
	// ScrapeInterval paces the /debug/vars collector (default 1s;
	// negative disables scraping).
	ScrapeInterval Duration `json:"scrape_interval,omitempty"`

	Corpus CorpusSpec `json:"corpus"`
	Mix    MixSpec    `json:"mix"`

	// Events are fleet-membership changes fired at fixed offsets into the
	// measured phase (self-hosted fleets only).
	Events []EventSpec `json:"events,omitempty"`
}

// DefaultSpec is the baseline workload: 100 RPS of 80/10/10
// solve/batch/session traffic over 64 mildly Zipfian instances for 10s
// after a 2s warmup. Flags and spec files override from here.
func DefaultSpec() *Spec {
	s := &Spec{
		Name:     "default",
		Seed:     1,
		RPS:      100,
		Duration: Duration(10 * time.Second),
		Warmup:   Duration(2 * time.Second),
	}
	s.ApplyDefaults()
	return s
}

// ApplyDefaults fills every optional zero field with its documented
// default. Parse and ParseSpec call it; hand-built specs should too.
func (s *Spec) ApplyDefaults() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Workers == 0 {
		s.Workers = 32
	}
	if s.Timeout == 0 {
		s.Timeout = Duration(5 * time.Second)
	}
	if s.ScrapeInterval == 0 {
		s.ScrapeInterval = Duration(time.Second)
	}
	c := &s.Corpus
	if c.Instances == 0 {
		c.Instances = 64
	}
	if c.MinCRUs == 0 {
		c.MinCRUs = 8
	}
	if c.MaxCRUs == 0 {
		c.MaxCRUs = 24
	}
	if c.Satellites == 0 {
		c.Satellites = 3
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	m := &s.Mix
	if len(m.Classes) == 0 {
		m.Classes = map[string]float64{ClassSolve: 0.8, ClassBatch: 0.1, ClassSession: 0.1}
	}
	if m.BatchMin == 0 {
		m.BatchMin = 4
	}
	if m.BatchMax == 0 {
		m.BatchMax = 16
	}
	if m.SessionOps == 0 {
		m.SessionOps = 4
	}
	if m.MutationsPerOp == 0 {
		m.MutationsPerOp = 1
	}
	if m.DriftFraction == 0 {
		m.DriftFraction = 0.1
	}
}

// ParseSpec decodes a JSON workload spec strictly (unknown fields are
// typos), applies defaults, and validates.
func ParseSpec(raw []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("load: decoding spec: %w", err)
	}
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the whole spec and reports every violation in one
// error — a spec file author fixes one round, not one field per round.
func (s *Spec) Validate() error {
	var probs []string
	bad := func(format string, args ...any) { probs = append(probs, fmt.Sprintf(format, args...)) }

	if s.RPS <= 0 {
		bad("rps must be > 0 (got %g)", s.RPS)
	}
	if s.Duration <= 0 {
		bad("duration must be > 0 (got %v)", time.Duration(s.Duration))
	}
	if s.Warmup < 0 {
		bad("warmup must be >= 0 (got %v)", time.Duration(s.Warmup))
	}
	if s.Workers < 1 {
		bad("workers must be >= 1 (got %d)", s.Workers)
	}
	if s.Timeout <= 0 {
		bad("timeout must be > 0 (got %v)", time.Duration(s.Timeout))
	}

	c := s.Corpus
	if c.Instances < 1 {
		bad("corpus.instances must be >= 1 (got %d)", c.Instances)
	}
	if c.MinCRUs < 1 {
		bad("corpus.min_crus must be >= 1 (got %d)", c.MinCRUs)
	}
	if c.MaxCRUs < c.MinCRUs {
		bad("corpus.max_crus (%d) must be >= corpus.min_crus (%d)", c.MaxCRUs, c.MinCRUs)
	}
	if c.Satellites < 1 {
		bad("corpus.satellites must be >= 1 (got %d)", c.Satellites)
	}
	if c.ZipfS > 0 && c.ZipfS <= 1 {
		bad("corpus.zipf_s must be negative (uniform) or > 1 (got %g)", c.ZipfS)
	}

	m := s.Mix
	var total float64
	for class, w := range m.Classes {
		if !knownClasses[class] {
			bad("mix.classes: unknown class %q (known: solve, batch, simulate, session, jobs)", class)
		}
		if w <= 0 {
			bad("mix.classes[%q] weight must be > 0 (got %g)", class, w)
		}
		total += w
	}
	if len(m.Classes) > 0 && total <= 0 {
		bad("mix.classes weights sum to nothing")
	}
	for alg, w := range m.Algorithms {
		if w <= 0 {
			bad("mix.algorithms[%q] weight must be > 0 (got %g)", alg, w)
		}
		if alg == "" {
			continue // "" = server default, always valid
		}
		if _, ok := repro.Capability(repro.Algorithm(alg)); !ok {
			bad("mix.algorithms: unknown algorithm %q (known: %s)", alg, algorithmNames())
		}
	}
	if m.BatchMin < 1 {
		bad("mix.batch_min must be >= 1 (got %d)", m.BatchMin)
	}
	if m.BatchMax < m.BatchMin {
		bad("mix.batch_max (%d) must be >= mix.batch_min (%d)", m.BatchMax, m.BatchMin)
	}
	if m.SessionOps < 1 {
		bad("mix.session_ops must be >= 1 (got %d)", m.SessionOps)
	}
	if m.MutationsPerOp < 1 {
		bad("mix.mutations_per_op must be >= 1 (got %d)", m.MutationsPerOp)
	}
	if m.DriftFraction <= 0 || m.DriftFraction >= 1 {
		bad("mix.drift_fraction must be in (0,1) (got %g)", m.DriftFraction)
	}
	if m.JobDeadlineMS < 0 {
		bad("mix.job_deadline_ms must be >= 0 (got %d)", m.JobDeadlineMS)
	}

	for i, ev := range s.Events {
		if ev.Action != EventJoin && ev.Action != EventLeave {
			bad("events[%d].action must be %q or %q (got %q)", i, EventJoin, EventLeave, ev.Action)
		}
		if ev.At < 0 {
			bad("events[%d].at must be >= 0 (got %v)", i, time.Duration(ev.At))
		}
		if time.Duration(ev.At) >= time.Duration(s.Duration) && s.Duration > 0 {
			bad("events[%d].at (%v) must fall inside the measured phase (< %v)", i, time.Duration(ev.At), time.Duration(s.Duration))
		}
	}

	if len(probs) > 0 {
		return fmt.Errorf("load: invalid spec:\n  - %s", strings.Join(probs, "\n  - "))
	}
	return nil
}

func algorithmNames() string {
	names := repro.Algorithms()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = string(n)
	}
	return strings.Join(parts, ", ")
}
