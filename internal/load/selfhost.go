package load

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/httpserve"
)

// SelfHostFleet starts an n-node in-process crserve fleet for
// single-binary load runs (crload -fleet, the e2e smoke test and the P3
// experiment): real loopback HTTP, consistent-hash routing, health
// probes on. Callers own Close.
func SelfHostFleet(n int) (*httpserve.Fleet, error) {
	return httpserve.StartFleet(n, httpserve.FleetOptions{
		Cluster:     cluster.Config{VirtualNodes: 64, ProbeInterval: 500 * time.Millisecond},
		StartProbes: true,
	})
}
