package load

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpserve"
)

// SelfHostFleet starts an n-node in-process crserve fleet for
// single-binary load runs (crload -fleet, the e2e smoke test and the P3
// experiment): real loopback HTTP, consistent-hash routing, health
// probes on. Callers own Close.
func SelfHostFleet(n int) (*httpserve.Fleet, error) {
	return httpserve.StartFleet(n, httpserve.FleetOptions{
		Cluster:     cluster.Config{VirtualNodes: 64, ProbeInterval: 500 * time.Millisecond},
		StartProbes: true,
	})
}

// FleetEvent adapts a self-hosted fleet into a RunOptions.OnEvent hook:
// "join" spawns one warm node, "leave" drains the newest. The original
// targets keep receiving client traffic — the fleet's routing is what
// moves work onto (or off) the changed node, as with a real deployment
// behind a fixed load-balancer list.
func FleetEvent(fleet *httpserve.Fleet) func(action string) error {
	return func(action string) error {
		switch action {
		case EventJoin:
			_, err := fleet.Spawn()
			return err
		case EventLeave:
			return fleet.DrainNewest()
		default:
			return fmt.Errorf("load: unknown fleet event %q", action)
		}
	}
}
