package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/hdr"
)

// serverVars is the typed slice of one node's /debug/vars "crserve"
// block — exactly the counters the harness correlates with client-side
// latency. The cache block has no JSON tags server-side (Go field
// names); decoding is case-insensitive so untagged fields match.
type serverVars struct {
	Cache struct {
		Hits, Misses, Shared, Errors, Evictions int64
	} `json:"cache"`
	Requests map[string]int64       `json:"requests"`
	Sessions map[string]int64       `json:"sessions"`
	Latency  map[string]hdr.Summary `json:"latency"`
	Inflight int64                  `json:"inflight"`
	Runtime  struct {
		HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
		Mallocs        uint64  `json:"mallocs"`
		NumGC          uint64  `json:"num_gc"`
		GCCPUFraction  float64 `json:"gc_cpu_fraction"`
	} `json:"runtime"`
	Goroutines int64 `json:"goroutines"`
	Cluster    struct {
		Stats struct {
			Forwards        int64 `json:"forwards"`
			ForwardFailures int64 `json:"forward_failures"`
			Hedges          int64 `json:"hedges"`
			LocalFallbacks  int64 `json:"local_fallbacks"`
			ScatterBatches  int64 `json:"scatter_batches"`
			ProxiedSessions int64 `json:"proxied_sessions"`
		} `json:"stats"`
	} `json:"cluster"`
}

// Sample is one node's counters at one collector tick, cumulative since
// node start (consumers diff consecutive samples for per-second rates).
type Sample struct {
	OffsetSec      float64 `json:"t"` // seconds since the measured phase began
	Node           string  `json:"node"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheShared    int64   `json:"cache_shared"`
	Inflight       int64   `json:"inflight"`
	Goroutines     int64   `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	Mallocs        uint64  `json:"mallocs"`
	NumGC          uint64  `json:"num_gc"`
	Forwards       int64   `json:"forwards"`
	Hedges         int64   `json:"hedges"`
	LocalFallbacks int64   `json:"local_fallbacks"`
	FailedRequests int64   `json:"failed_requests"`
}

func (v *serverVars) sample(node string, offset time.Duration) Sample {
	return Sample{
		OffsetSec:      offset.Seconds(),
		Node:           node,
		CacheHits:      v.Cache.Hits,
		CacheMisses:    v.Cache.Misses,
		CacheShared:    v.Cache.Shared,
		Inflight:       v.Inflight,
		Goroutines:     v.Goroutines,
		HeapAllocBytes: v.Runtime.HeapAllocBytes,
		Mallocs:        v.Runtime.Mallocs,
		NumGC:          v.Runtime.NumGC,
		Forwards:       v.Cluster.Stats.Forwards,
		Hedges:         v.Cluster.Stats.Hedges,
		LocalFallbacks: v.Cluster.Stats.LocalFallbacks,
		FailedRequests: v.Requests["failed"],
	}
}

// collector periodically scrapes every target's /debug/vars during the
// measured phase. The first scrape (at measure start) is the baseline
// the per-node deltas subtract; the last is the final state carrying
// the server-side latency quantiles.
type collector struct {
	targets      []string
	interval     time.Duration
	measureStart time.Time
	logf         func(string, ...any)
	client       *http.Client

	mu       sync.Mutex
	samples  []Sample
	baseline map[string]*serverVars
	final    map[string]*serverVars
	failures int
}

func newCollector(spec *Spec, targets []string, measureStart time.Time, logf func(string, ...any)) *collector {
	return &collector{
		targets:      targets,
		interval:     time.Duration(spec.ScrapeInterval),
		measureStart: measureStart,
		logf:         logf,
		// Scrapes use their own short-deadline client: a fleet too busy
		// to answer introspection in 2s is itself a finding (counted in
		// failures), and run cancellation must not kill the final scrape.
		client: &http.Client{Timeout: 2 * time.Second},
	}
}

// run scrapes from measure start until ctx is cancelled, then takes the
// final scrape. It is the collector goroutine's body.
func (c *collector) run(ctx context.Context) {
	select {
	case <-time.After(time.Until(c.measureStart)):
	case <-ctx.Done():
		return
	}
	c.mu.Lock()
	c.baseline = c.scrapeAll(true)
	c.mu.Unlock()

	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.final = c.scrapeAll(true)
			c.mu.Unlock()
			return
		case <-ticker.C:
			c.mu.Lock()
			c.scrapeAll(true)
			c.mu.Unlock()
			c.progress()
		}
	}
}

// scrapeAll scrapes every target once, appending one sample per
// reachable node. Callers hold c.mu.
func (c *collector) scrapeAll(record bool) map[string]*serverVars {
	offset := time.Since(c.measureStart)
	out := make(map[string]*serverVars, len(c.targets))
	for _, target := range c.targets {
		vars, err := c.scrape(target)
		if err != nil {
			c.failures++
			continue
		}
		out[target] = vars
		if record {
			c.samples = append(c.samples, vars.sample(target, offset))
		}
	}
	return out
}

func (c *collector) scrape(target string) (*serverVars, error) {
	resp, err := c.client.Get(target + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: %s/debug/vars: HTTP %d", target, resp.StatusCode)
	}
	var wrapper struct {
		Crserve *serverVars `json:"crserve"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wrapper); err != nil {
		return nil, fmt.Errorf("load: parsing %s/debug/vars: %w", target, err)
	}
	if wrapper.Crserve == nil {
		return nil, fmt.Errorf("load: %s/debug/vars has no crserve block", target)
	}
	return wrapper.Crserve, nil
}

// progress emits one fleet-wide summary line per tick.
func (c *collector) progress() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.samples) == 0 {
		return
	}
	offset := c.samples[len(c.samples)-1].OffsetSec
	var hits, misses, inflight int64
	n := 0
	for i := len(c.samples) - 1; i >= 0 && c.samples[i].OffsetSec == offset; i-- {
		hits += c.samples[i].CacheHits
		misses += c.samples[i].CacheMisses
		inflight += c.samples[i].Inflight
		n++
	}
	c.logf("t=%.0fs fleet: %d nodes, cache %d/%d hit/miss, %d in flight",
		offset, n, hits, misses, inflight)
}
