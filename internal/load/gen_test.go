package load

import (
	"bytes"
	"math"
	"testing"
	"time"

	"encoding/json"
	"repro/api"
)

func testSpec() *Spec {
	s := &Spec{
		Name:     "gen-test",
		Seed:     42,
		RPS:      100,
		Duration: Duration(time.Second),
		Corpus:   CorpusSpec{Instances: 32, MinCRUs: 6, MaxCRUs: 12, Satellites: 3, ZipfS: 1.2},
		Mix: MixSpec{
			Classes:    map[string]float64{ClassSolve: 0.6, ClassBatch: 0.2, ClassSimulate: 0.1, ClassSession: 0.1},
			Algorithms: map[string]float64{"adapted-ssb": 0.5, "greedy-host": 0.3, "": 0.2},
		},
	}
	s.ApplyDefaults()
	return s
}

// TestGeneratorDeterministic: identical specs must yield byte-identical
// request bodies and identical draw sequences — that is what makes load
// runs comparable across commits.
func TestGeneratorDeterministic(t *testing.T) {
	a, err := NewGenerator(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Instances() != b.Instances() {
		t.Fatalf("corpus sizes differ: %d vs %d", a.Instances(), b.Instances())
	}
	for i := 0; i < a.Instances(); i++ {
		if a.Fingerprint(i) != b.Fingerprint(i) {
			t.Fatalf("instance %d fingerprints differ", i)
		}
	}
	sa, sb := a.NewSampler(3), b.NewSampler(3)
	for i := 0; i < 1000; i++ {
		da, db := sa.Draw(), sb.Draw()
		if da != db {
			t.Fatalf("draw %d differs: %+v vs %+v", i, da, db)
		}
		ba, err := a.SolveBody(da)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.SolveBody(db)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("draw %d solve bodies differ", i)
		}
	}
}

// TestSamplerMixTolerance draws a large sample and asserts the class and
// algorithm mixes land within 3 points of the spec weights, and batch
// sizes stay in bounds.
func TestSamplerMixTolerance(t *testing.T) {
	spec := testSpec()
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	classes := map[string]int{}
	algs := map[string]int{}
	smp := g.NewSampler(0)
	for i := 0; i < n; i++ {
		d := smp.Draw()
		classes[d.Class]++
		algs[d.Algorithm]++
		if d.Class == ClassBatch {
			if d.BatchSize < spec.Mix.BatchMin || d.BatchSize > spec.Mix.BatchMax {
				t.Fatalf("batch size %d outside [%d,%d]", d.BatchSize, spec.Mix.BatchMin, spec.Mix.BatchMax)
			}
		} else if d.BatchSize != 0 {
			t.Fatalf("non-batch draw carries batch size %d", d.BatchSize)
		}
		if d.Instance < 0 || d.Instance >= g.Instances() {
			t.Fatalf("instance %d outside corpus [0,%d)", d.Instance, g.Instances())
		}
	}
	const tolerance = 0.03
	for class, weight := range spec.Mix.Classes {
		got := float64(classes[class]) / n
		if math.Abs(got-weight) > tolerance {
			t.Errorf("class %q fraction %.3f, want %.2f±%.2f", class, got, weight, tolerance)
		}
	}
	for alg, weight := range spec.Mix.Algorithms {
		got := float64(algs[alg]) / n
		if math.Abs(got-weight) > tolerance {
			t.Errorf("algorithm %q fraction %.3f, want %.2f±%.2f", alg, got, weight, tolerance)
		}
	}
}

// TestZipfHeadSkew: with s=1.2 over 32 instances, instance 0 must be
// sampled far above the uniform share; with uniform popularity it must
// not be.
func TestZipfHeadSkew(t *testing.T) {
	const n = 20000
	head := func(zipfS float64) float64 {
		spec := testSpec()
		spec.Corpus.ZipfS = zipfS
		g, err := NewGenerator(spec)
		if err != nil {
			t.Fatal(err)
		}
		smp := g.NewSampler(0)
		hits := 0
		for i := 0; i < n; i++ {
			if smp.Draw().Instance == 0 {
				hits++
			}
		}
		return float64(hits) / n
	}
	uniform := 1.0 / 32
	if got := head(1.2); got < 3*uniform {
		t.Errorf("zipf 1.2 head fraction %.3f, want well above uniform %.3f", got, uniform)
	}
	if got := head(-1); math.Abs(got-uniform) > 0.02 {
		t.Errorf("uniform head fraction %.3f, want about %.3f", got, uniform)
	}
}

// TestBodiesDecode exercises every body builder once and checks the
// wire shapes decode back into the API DTOs.
func TestBodiesDecode(t *testing.T) {
	g, err := NewGenerator(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	smp := g.NewSampler(1)
	d := Draw{Class: ClassBatch, Instance: 2, Algorithm: "adapted-ssb", BatchSize: 5}

	raw, err := g.SolveBody(d)
	if err != nil {
		t.Fatal(err)
	}
	var solve api.SolveRequest
	if err := json.Unmarshal(raw, &solve); err != nil || solve.Spec == nil || len(solve.Spec.CRUs) == 0 {
		t.Fatalf("solve body bad: err=%v spec=%+v", err, solve.Spec)
	}

	raw, err = g.BatchBody(smp, d)
	if err != nil {
		t.Fatal(err)
	}
	var batch api.BatchRequest
	if err := json.Unmarshal(raw, &batch); err != nil || len(batch.Items) != 5 {
		t.Fatalf("batch body bad: err=%v items=%d", err, len(batch.Items))
	}

	raw, err = g.MutateBody(smp, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mut api.MutateRequest
	if err := json.Unmarshal(raw, &mut); err != nil || len(mut.Mutations) != 1 || !mut.Resolve {
		t.Fatalf("mutate body bad: err=%v %+v", err, mut)
	}
	if mut.Mutations[0].Op != api.OpWeightUpdate || mut.Mutations[0].HostTime == nil {
		t.Fatalf("mutation shape bad: %+v", mut.Mutations[0])
	}
}
