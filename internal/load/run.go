package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/hdr"
)

// Client-side histogram classes. The session class fans out into its
// three wire operations so open/mutate/close tails are visible apart.
const (
	ClassSessionOpen   = "session-open"
	ClassSessionMutate = "session-mutate"
	ClassSessionClose  = "session-close"
	ClassJobSubmit     = "job-submit"
	ClassJobPoll       = "job-poll"
)

// resultClasses is every class a run may report, in display order.
var resultClasses = []string{
	ClassSolve, ClassBatch, ClassSimulate,
	ClassSessionOpen, ClassSessionMutate, ClassSessionClose,
	ClassJobSubmit, ClassJobPoll,
}

// RunOptions carries the non-spec run inputs.
type RunOptions struct {
	// Targets are the fleet base URLs (required). Plain requests
	// round-robin across them; session calls stick to the node that
	// opened the session.
	Targets []string
	// Client overrides the HTTP client (default: fresh client with the
	// spec's per-request timeout).
	Client *http.Client
	// Logf, when set, receives one progress line per scrape interval.
	Logf func(format string, args ...any)
	// OnEvent executes one scheduled fleet event (spec.Events): "join"
	// spawns a node, "leave" drains one. Nil means events are logged and
	// skipped — an external fleet's membership is not the harness's to
	// change.
	OnEvent func(action string) error
}

// classState accumulates one request class's client-side measurements.
type classState struct {
	hist     hdr.Histogram
	errors   atomic.Uint64
	timeouts atomic.Uint64
}

// runner is the shared state of one Run call.
type runner struct {
	spec    *Spec
	gen     *Generator
	client  *http.Client
	targets []string
	rr      atomic.Uint64 // round-robin target cursor

	measureStart time.Time
	end          time.Time

	classes map[string]*classState
	sent    atomic.Uint64 // measured-phase issues (incl. failures)
	dropped atomic.Uint64 // pacer ticks shed because the backlog was full
}

// tick is one paced request slot; sched is its intended start time and
// decides warmup-vs-measure membership, so the measured request count
// is exactly RPS x duration regardless of queueing.
type tick struct{ sched time.Time }

// sessionState is a worker's one live session (sticky to its opener).
type sessionState struct {
	id       string
	target   string
	instance int
	opsLeft  int
}

// Run executes the spec against the targets: warmup, then the measured
// open-loop phase, with the collector scraping /debug/vars throughout
// the measured window. It returns the assembled Result; an error means
// the run could not execute at all (bad spec, no targets) — individual
// request failures are data, not errors.
func Run(ctx context.Context, spec *Spec, opts RunOptions) (*Result, error) {
	if len(opts.Targets) == 0 {
		return nil, fmt.Errorf("load: no targets")
	}
	gen, err := NewGenerator(spec)
	if err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: time.Duration(spec.Timeout)}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	r := &runner{
		spec:    spec,
		gen:     gen,
		client:  client,
		targets: opts.Targets,
		classes: map[string]*classState{},
	}
	for _, c := range resultClasses {
		r.classes[c] = &classState{}
	}

	warmup := time.Duration(spec.Warmup)
	duration := time.Duration(spec.Duration)
	start := time.Now()
	r.measureStart = start.Add(warmup)
	r.end = r.measureStart.Add(duration)

	col := newCollector(spec, opts.Targets, r.measureStart, logf)
	colCtx, colStop := context.WithCancel(ctx)
	var colWG sync.WaitGroup
	if time.Duration(spec.ScrapeInterval) > 0 {
		colWG.Add(1)
		go func() {
			defer colWG.Done()
			col.run(colCtx)
		}()
	}

	// Scheduled fleet events fire at their measured-phase offsets on
	// timers: the pacer never blocks on a membership change, so the event
	// lands mid-traffic exactly as a production join/leave would.
	var eventTimers []*time.Timer
	for _, ev := range spec.Events {
		ev := ev
		at := r.measureStart.Add(time.Duration(ev.At))
		eventTimers = append(eventTimers, time.AfterFunc(time.Until(at), func() {
			if opts.OnEvent == nil {
				logf("event %q at +%v skipped: no fleet hook", ev.Action, time.Duration(ev.At))
				return
			}
			logf("event: %s at +%v", ev.Action, time.Duration(ev.At))
			if err := opts.OnEvent(ev.Action); err != nil {
				logf("event %q failed: %v", ev.Action, err)
			}
		}))
	}
	defer func() {
		for _, t := range eventTimers {
			t.Stop()
		}
	}()

	// Backlog of about two seconds at target rate: an open-loop pacer
	// never slows down, so when the fleet falls further behind than
	// this, ticks are shed and counted — saturation stays measured
	// instead of silently turning the run closed-loop.
	backlog := int(2 * spec.RPS)
	if backlog < 64 {
		backlog = 64
	}
	ticks := make(chan tick, backlog)

	var workers sync.WaitGroup
	for w := 0; w < spec.Workers; w++ {
		workers.Add(1)
		go func(id int64) {
			defer workers.Done()
			r.worker(ctx, gen.NewSampler(id), ticks)
		}(int64(w))
	}

	r.pace(ctx, start, ticks)
	close(ticks)
	workers.Wait()
	// Draining queued ticks may run past the nominal end; achieved RPS
	// divides by true wall time, so a backlog shows up as a shortfall.
	elapsed := time.Since(r.measureStart)

	colStop()
	colWG.Wait()

	return r.assemble(start, elapsed, col), nil
}

// pace emits one tick per 1/RPS interval from start until the end of
// the measured window (or ctx cancellation). When the loop falls behind
// wall clock it emits immediately until caught up — the open-loop
// contract is "n-th request at start + n/RPS", not "RPS on average".
func (r *runner) pace(ctx context.Context, start time.Time, ticks chan<- tick) {
	interval := time.Duration(float64(time.Second) / r.spec.RPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	for n := int64(0); ; n++ {
		sched := start.Add(time.Duration(n) * interval)
		if !sched.Before(r.end) {
			return
		}
		if wait := time.Until(sched); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return
			}
		} else if ctx.Err() != nil {
			return
		}
		select {
		case ticks <- tick{sched: sched}:
		default:
			if !sched.Before(r.measureStart) {
				r.dropped.Add(1)
			}
		}
	}
}

// worker executes ticks until the channel closes.
func (r *runner) worker(ctx context.Context, smp *Sampler, ticks <-chan tick) {
	var sess *sessionState
	for t := range ticks {
		if ctx.Err() != nil {
			break
		}
		measured := !t.sched.Before(r.measureStart)
		sess = r.execute(ctx, smp, sess, measured)
	}
	// Best-effort cleanup outside the measured window: leaked sessions
	// would distort a subsequent run against the same fleet.
	if sess != nil {
		r.closeSession(ctx, sess, false)
	}
}

// execute issues one request for the next sample, returning the
// worker's session state (advanced by session-class ticks).
func (r *runner) execute(ctx context.Context, smp *Sampler, sess *sessionState, measured bool) *sessionState {
	s := smp.Draw()
	switch s.Class {
	case ClassSolve:
		body, _ := r.gen.SolveBody(s)
		r.do(ctx, ClassSolve, http.MethodPost, r.nextTarget()+"/v1/solve", body, measured, nil)
	case ClassSimulate:
		body, _ := r.gen.SimulateBody(s)
		r.do(ctx, ClassSimulate, http.MethodPost, r.nextTarget()+"/v1/simulate", body, measured, nil)
	case ClassBatch:
		body, _ := r.gen.BatchBody(smp, s)
		r.do(ctx, ClassBatch, http.MethodPost, r.nextTarget()+"/v1/batch", body, measured, nil)
	case ClassSession:
		return r.sessionTick(ctx, smp, s, sess, measured)
	case ClassJobs:
		r.jobTick(ctx, s, measured)
	}
	return sess
}

// jobTick submits one async job and long-polls it to a terminal state.
// The submit and each poll are recorded as their own wire classes — the
// job's server-side runtime is what the polls *wait out*, so each poll
// caps its wait (100ms) rather than absorbing the whole solve into one
// latency sample.
func (r *runner) jobTick(ctx context.Context, smp Draw, measured bool) {
	body, _ := r.gen.JobBody(smp)
	target := r.nextTarget()
	var resp api.JobResponse
	if !r.do(ctx, ClassJobSubmit, http.MethodPost, target+"/v1/jobs", body, measured, &resp) || resp.JobID == "" {
		return
	}
	// Jobs are owner-pinned; polling the submit target follows the 307 to
	// the owner when the submit was forwarded.
	url := target + "/v1/jobs/" + resp.JobID + "?wait=100"
	deadline := time.Now().Add(time.Duration(r.spec.Timeout))
	state := resp.State
	for !jobTerminal(state) {
		if time.Now().After(deadline) || ctx.Err() != nil {
			if measured {
				r.classes[ClassJobPoll].timeouts.Add(1)
			}
			return
		}
		var poll api.JobResponse
		if !r.do(ctx, ClassJobPoll, http.MethodGet, url, nil, measured, &poll) {
			return
		}
		state = poll.State
	}
}

// jobTerminal mirrors jobs.State.Terminal at the wire level.
func jobTerminal(state string) bool {
	switch state {
	case "done", "failed", "canceled", "expired":
		return true
	}
	return false
}

// sessionTick advances the worker's session lifecycle by one wire call:
// open when none is live, mutate+resolve while ops remain, close after.
func (r *runner) sessionTick(ctx context.Context, smp *Sampler, s Draw, sess *sessionState, measured bool) *sessionState {
	if sess == nil {
		body, _ := r.gen.OpenBody(s)
		target := r.nextTarget()
		var opened api.SessionResponse
		ok := r.do(ctx, ClassSessionOpen, http.MethodPost, target+"/v1/session", body, measured, &opened)
		if !ok || opened.Session.SessionID == "" {
			return nil
		}
		return &sessionState{
			id:       opened.Session.SessionID,
			target:   target,
			instance: s.Instance,
			opsLeft:  r.spec.Mix.SessionOps,
		}
	}
	if sess.opsLeft > 0 {
		body, _ := r.gen.MutateBody(smp, sess.instance)
		url := sess.target + "/v1/session/" + sess.id + "/mutate"
		if !r.do(ctx, ClassSessionMutate, http.MethodPost, url, body, measured, nil) {
			return nil // evicted or expired: next session tick re-opens
		}
		sess.opsLeft--
		return sess
	}
	r.closeSession(ctx, sess, measured)
	return nil
}

func (r *runner) closeSession(ctx context.Context, sess *sessionState, measured bool) {
	r.do(ctx, ClassSessionClose, http.MethodDelete, sess.target+"/v1/session/"+sess.id, nil, measured, nil)
}

// nextTarget round-robins the fleet, so even a single-connection client
// exercises cross-node routing.
func (r *runner) nextTarget() string {
	return r.targets[r.rr.Add(1)%uint64(len(r.targets))]
}

// do issues one HTTP call and records it under class. It returns true
// on HTTP 200; when into is non-nil the body is decoded into it.
func (r *runner) do(ctx context.Context, class, method, url string, body []byte, measured bool, into any) bool {
	st := r.classes[class]
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, reader)
	if err != nil {
		if measured {
			r.sent.Add(1)
			st.errors.Add(1)
		}
		return false
	}
	req.Header.Set("Content-Type", "application/json")

	start := time.Now()
	resp, err := r.client.Do(req)
	lat := time.Since(start)
	if measured {
		r.sent.Add(1)
	}
	if err != nil {
		if measured {
			if isTimeout(err) {
				st.timeouts.Add(1)
			} else {
				st.errors.Add(1)
			}
		}
		return false
	}
	defer resp.Body.Close()
	ok := resp.StatusCode == http.StatusOK
	if ok && into != nil {
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(into)
		ok = err == nil
	}
	io.Copy(io.Discard, resp.Body) // drain for connection reuse
	if measured {
		if ok {
			st.hist.Record(lat)
		} else {
			st.errors.Add(1)
		}
	}
	return ok
}

func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
