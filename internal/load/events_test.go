package load

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpecEventsValidate covers the event-spec rules: unknown actions,
// negative offsets and offsets past the measured phase are all caught
// (and reported together), valid events pass, and the field round-trips
// through the strict parser.
func TestSpecEventsValidate(t *testing.T) {
	s := DefaultSpec()
	s.Events = []EventSpec{
		{At: Duration(-time.Second), Action: EventJoin},
		{At: Duration(time.Second), Action: "restart"},
		{At: Duration(time.Hour), Action: EventLeave},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("invalid events accepted")
	}
	for _, want := range []string{"events[0].at", "events[1].action", "events[2].at"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}

	s.Events = []EventSpec{
		{At: 0, Action: EventJoin},
		{At: Duration(5 * time.Second), Action: EventLeave},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid events rejected: %v", err)
	}

	parsed, err := ParseSpec([]byte(`{
		"rps": 10, "duration": "10s",
		"events": [{"at": "5s", "action": "join"}]
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(parsed.Events) != 1 || parsed.Events[0].Action != EventJoin ||
		time.Duration(parsed.Events[0].At) != 5*time.Second {
		t.Fatalf("parsed events = %+v", parsed.Events)
	}
}

// TestEventsFireOnSchedule runs a short self-hosted workload with a
// join and a leave event and checks both reach the OnEvent hook, in
// order, during the measured phase.
func TestEventsFireOnSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a fleet")
	}
	fleet, err := SelfHostFleet(1)
	if err != nil {
		t.Fatalf("SelfHostFleet: %v", err)
	}
	defer fleet.Close()

	spec := &Spec{
		Name:     "events",
		Seed:     3,
		RPS:      60,
		Duration: Duration(700 * time.Millisecond),
		Warmup:   Duration(100 * time.Millisecond),
		Workers:  8,
		Corpus:   CorpusSpec{Instances: 4, MinCRUs: 5, MaxCRUs: 7, Satellites: 3, ZipfS: 1.5},
		Mix:      MixSpec{Classes: map[string]float64{ClassSolve: 1}},
		Events: []EventSpec{
			{At: Duration(100 * time.Millisecond), Action: EventJoin},
			{At: Duration(400 * time.Millisecond), Action: EventLeave},
		},
		ScrapeInterval: Duration(-1),
	}
	spec.ApplyDefaults()

	var mu sync.Mutex
	var fired []string
	hook := FleetEvent(fleet)
	res, err := Run(context.Background(), spec, RunOptions{
		Targets: fleet.URLs(),
		OnEvent: func(action string) error {
			mu.Lock()
			fired = append(fired, action)
			mu.Unlock()
			return hook(action)
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 2 || fired[0] != EventJoin || fired[1] != EventLeave {
		t.Fatalf("fired = %v, want [join leave]", fired)
	}
	if len(fleet.Nodes) != 2 {
		t.Errorf("fleet has %d nodes after join, want 2 (one draining)", len(fleet.Nodes))
	}
	if alive := fleet.Alive(); alive != 1 {
		t.Errorf("fleet alive = %d after leave, want 1", alive)
	}
	if res.Errors != 0 {
		t.Errorf("%d client errors across the join/leave run", res.Errors)
	}
}
