package bench

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/load"
)

// p6Ballast holds the tuned configuration's heap ballast for the run's
// lifetime. Package-level (like crserve's) so no compiler analysis can
// prove it dead and collect it mid-measurement.
var p6Ballast []byte

// p6Config is one GC posture under test, mirroring crserve's
// -gogc/-gc-ballast knobs.
type p6Config struct {
	name       string
	gogc       int
	ballastMiB int64
}

// p6Delta is the GC activity one measured run induced.
type p6Delta struct {
	cycles    uint32
	pause     time.Duration
	heapAfter uint64
}

// P6GCTuning measures the GC-hygiene knobs crserve grew in PR 9
// (-gogc, -gc-ballast) under the load they were built for: a sustained
// elastic fleet run with a node joining and leaving mid-measure. The
// same deterministic workload runs twice against a fresh 2-node
// self-hosted fleet — default pacing (GOGC=100, no ballast), then the
// tuned heap (GOGC=300 + 192 MiB ballast) — and the table compares GC
// cycles, total pause and the client-observed solve tail. Expectation:
// the tuned heap collects a small fraction as often for a modest p95
// change; the join/leave churn is identical in both runs (same spec
// events), so the GC posture is the only variable.
func P6GCTuning() (*Table, error) {
	spec := &load.Spec{
		Name:     "p6-gc",
		Seed:     11,
		RPS:      300,
		Duration: load.Duration(2 * time.Second),
		Warmup:   load.Duration(400 * time.Millisecond),
		Workers:  16,
		Corpus:   load.CorpusSpec{Instances: 24, MinCRUs: 8, MaxCRUs: 16, Satellites: 3, ZipfS: 1.2},
		Mix: load.MixSpec{
			Classes:    map[string]float64{load.ClassSolve: 0.8, load.ClassBatch: 0.1, load.ClassSession: 0.1},
			SessionOps: 3,
		},
		ScrapeInterval: load.Duration(-1), // the table is client-side; skip the scraper
		Events: []load.EventSpec{
			{At: load.Duration(600 * time.Millisecond), Action: load.EventJoin},
			{At: load.Duration(1400 * time.Millisecond), Action: load.EventLeave},
		},
	}
	spec.ApplyDefaults()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("P6: %w", err)
	}

	configs := []p6Config{
		{name: "default", gogc: 100, ballastMiB: 0},
		{name: "tuned", gogc: 300, ballastMiB: 192},
	}

	t := &Table{
		ID:    "P6",
		Title: "perf: GC pacing (gogc + ballast) under elastic fleet load",
		Paper: "engineering extension: serving-tier GC hygiene, not a paper artefact",
		Columns: []string{"config", "gogc", "ballast", "gc_cycles", "pause_total",
			"solve_p95", "req/s", "errors"},
	}

	var pauses []time.Duration
	var cycles []uint32
	for _, cfg := range configs {
		res, delta, err := p6Run(cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("P6 %s: %w", cfg.name, err)
		}
		solve := res.Classes[load.ClassSolve]
		p95 := time.Duration(solve.Latency.P95US * float64(time.Microsecond))
		t.AddRow(cfg.name, cfg.gogc, fmt.Sprintf("%dMiB", cfg.ballastMiB),
			delta.cycles, delta.pause.Round(10*time.Microsecond),
			p95.Round(10*time.Microsecond), fmt.Sprintf("%.0f", res.AchievedRPS),
			res.Errors+res.Timeouts)
		t.AddMetric(cfg.name+"/gc_cycles", float64(delta.cycles), "collections")
		t.AddMetric(cfg.name+"/gc_pause_us", float64(delta.pause.Microseconds()), "us")
		t.AddMetric(cfg.name+"/solve_p95_us", solve.Latency.P95US, "us")
		t.AddMetric(cfg.name+"/rps", res.AchievedRPS, "req/s")
		if res.Errors+res.Timeouts > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %d errors + %d timeouts under membership churn",
				cfg.name, res.Errors, res.Timeouts))
		}
		pauses = append(pauses, delta.pause)
		cycles = append(cycles, delta.cycles)
	}

	if cycles[1] > 0 && cycles[0] > 0 {
		t.AddMetric("cycle_reduction", float64(cycles[0])/float64(cycles[1]), "x")
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("same workload + join@0.6s/leave@1.4s both runs; default %d collections (%v paused) vs tuned %d (%v)",
			cycles[0], pauses[0].Round(10*time.Microsecond), cycles[1], pauses[1].Round(10*time.Microsecond)),
		"in-process measurement: the fleet and the load generator share one runtime, as crload -fleet does")
	return t, nil
}

// p6Run executes the workload once under one GC posture against a fresh
// fleet, returning the client-side result and the GC activity the
// measured run induced. The previous GC percent is always restored and
// the ballast released before returning.
func p6Run(cfg p6Config, spec *load.Spec) (*load.Result, p6Delta, error) {
	fleet, err := load.SelfHostFleet(2)
	if err != nil {
		return nil, p6Delta{}, fmt.Errorf("starting fleet: %w", err)
	}
	defer fleet.Close()

	prev := debug.SetGCPercent(cfg.gogc)
	defer debug.SetGCPercent(prev)
	if cfg.ballastMiB > 0 {
		p6Ballast = make([]byte, cfg.ballastMiB<<20)
		defer func() { p6Ballast = nil }()
	}
	// Settle the pacer at the new target so the first measured collection
	// is driven by the workload, not by the posture change itself.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	res, err := load.Run(context.Background(), spec, load.RunOptions{
		Targets: fleet.URLs(),
		OnEvent: load.FleetEvent(fleet),
	})
	if err != nil {
		return nil, p6Delta{}, err
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return res, p6Delta{
		cycles:    after.NumGC - before.NumGC,
		pause:     time.Duration(after.PauseTotalNs - before.PauseTotalNs),
		heapAfter: after.HeapAlloc,
	}, nil
}
