// Package bench is the experiment harness: one registered experiment per
// paper artefact (figure, worked example, complexity claim) plus the
// extension studies, each regenerating a table that EXPERIMENTS.md records.
// cmd/crbench renders all of them; bench_test.go at the repository root
// exposes each as a testing.B benchmark.
package bench
