package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	_ "repro/internal/algorithms" // every experiment solves through the registry
	"repro/internal/assign"
	"repro/internal/colouring"
	"repro/internal/core"
	"repro/internal/dwg"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E1Figure4 reruns the paper's Figure-4 worked example and tabulates the
// iteration trace next to the figure's printed values.
func E1Figure4() (*Table, error) {
	g, src, dst := workload.Figure4()
	res, err := dwg.SSB(g, src, dst, dwg.Default)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E1", Title: "Figure 4: SSB worked example",
		Paper:   "iteration 1 SSB=29 (candidate ∞→29); iteration 2 SSB=20 (→20); iteration 3 min-S=33 > 20 ⇒ stop; optimum 20 on ⟨5,10⟩–⟨5,10⟩",
		Columns: []string{"iteration", "S", "B", "SSB", "candidate", "removed", "stop"},
	}
	for _, it := range res.Iterations {
		t.AddRow(it.Index, it.S, it.B, it.Objective, it.Candidate, len(it.Removed), it.Stopped)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured optimum %s (S=%s, B=%s) — matches the paper exactly",
			trimFloat(res.Objective), trimFloat(res.S), trimFloat(res.B)))
	if res.Objective != 20 {
		t.Notes = append(t.Notes, "MISMATCH with the published optimum 20")
	}
	return t, nil
}

// E2Colouring reruns the Figure-5 colouring of the paper tree.
func E2Colouring() (*Table, error) {
	tree := workload.PaperTree()
	an := colouring.Analyse(tree)
	t := &Table{
		ID: "E2", Title: "Figure 5: colouring the CRU tree",
		Paper:   "edges ⟨CRU1,CRU2⟩ and ⟨CRU1,CRU3⟩ conflict; CRU1, CRU2, CRU3 must be deployed on the host",
		Columns: []string{"edge", "colour"},
	}
	for _, id := range tree.Preorder() {
		n := tree.Node(id)
		if n.Parent == model.None {
			continue
		}
		colour, conflict := an.EdgeColour(id)
		label := tree.SatelliteName(colour)
		if conflict {
			label = "CONFLICT"
		}
		t.AddRow(fmt.Sprintf("<%s,%s>", tree.Node(n.Parent).Name, n.Name), label)
	}
	var hosts []string
	for _, id := range an.MustHostSet() {
		hosts = append(hosts, tree.Node(id).Name)
	}
	t.Notes = append(t.Notes, "must-host set: "+strings.Join(hosts, " "))
	return t, nil
}

// E3AssignmentGraph rebuilds the Figure-6 coloured assignment graph.
func E3AssignmentGraph() (*Table, error) {
	tree := workload.PaperTree()
	g := assign.Build(tree)
	t := &Table{
		ID: "E3", Title: "Figure 6: coloured assignment graph",
		Paper:   "8 faces (S, F1..F6, T) and one coloured dual edge per non-conflicting tree edge (17 of 19)",
		Columns: []string{"dual edge", "colour", "sigma", "beta", "crossing"},
	}
	for _, e := range g.Edges() {
		child := e.CutChildren[0]
		parent := tree.Node(child).Parent
		t.AddRow(fmt.Sprintf("F%d->F%d", e.From, e.To), tree.SatelliteName(e.Colour),
			e.Sigma, e.Beta, fmt.Sprintf("<%s,%s>", tree.Node(parent).Name, tree.Node(child).Name))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("faces=%d dual edges=%d", g.Faces(), g.NumEdges()))
	return t, nil
}

// E4Labelling verifies every σ label printed in Figure 8 and both §5.3 β
// examples on the symbolic paper tree.
func E4Labelling() (*Table, error) {
	tree := workload.PaperTreeSymbolic()
	g := assign.Build(tree)
	h := workload.SymbolicH
	t := &Table{
		ID: "E4", Title: "Figure 8 + §5.3: σ/β labelling identities",
		Paper:   "σ labels h1+h2, h7, h1+h2+h4+h9, h10, h11, h3+h6+h13, h8, h8+h12; β(⟨CRU3,CRU6⟩)=s6+s13+c63; β(sensor of CRU10)=c_s10",
		Columns: []string{"label", "printed formula", "measured", "expected", "match"},
	}
	check := func(label, formula string, measured, expected float64) {
		match := "yes"
		if math.Abs(measured-expected) > 1e-9 {
			match = "NO"
		}
		t.AddRow(label, formula, measured, expected, match)
	}
	sigmaOf := func(name string) float64 {
		id, _ := tree.NodeByName(name)
		return g.TreeSigma(id)
	}
	check("σ(<CRU2,CRU4>)", "h1+h2", sigmaOf("CRU4"), h(1)+h(2))
	check("σ(sensor of CRU7)", "h7", sigmaOf("sensor7"), h(7))
	check("σ(sensor of CRU9)", "h1+h2+h4+h9", sigmaOf("sensor9"), h(1)+h(2)+h(4)+h(9))
	check("σ(sensor of CRU10)", "h10", sigmaOf("sensor10"), h(10))
	check("σ(sensor of CRU11)", "h11", sigmaOf("sensor11"), h(11))
	check("σ(sensor of CRU13)", "h3+h6+h13", sigmaOf("sensor13"), h(3)+h(6)+h(13))
	check("σ(<CRU8,CRU12>)", "h8", sigmaOf("CRU12"), h(8))
	check("σ(sensor of CRU12)", "h8+h12", sigmaOf("sensor12"), h(8)+h(12))
	cru6, _ := tree.NodeByName("CRU6")
	if e, ok := g.EdgeCrossing(cru6); ok {
		check("β(<CRU3,CRU6>)", "s6+s13+c63", e.Beta,
			workload.SymbolicS(6)+workload.SymbolicS(13)+workload.SymbolicC(6))
	}
	s10, _ := tree.NodeByName("sensor10")
	if e, ok := g.EdgeCrossing(s10); ok {
		check("β(<A,CRU10>)", "c_s10", e.Beta, workload.SymbolicRaw(10))
	}
	return t, nil
}

// E5AdaptedSSB traces the §5.4 adapted algorithm on the paper tree.
func E5AdaptedSSB() (*Table, error) {
	tree := workload.PaperTree()
	sol, err := assign.Solve(tree)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E5", Title: "Figure 9/10: adapted SSB on the paper tree",
		Paper:   "topmost min-S path first (no shortest-path search), expansion when a colour's B spans several edges, runtime O(|E'|)",
		Columns: []string{"iteration", "S", "B", "SSB", "candidate", "bottleneck", "removed", "expanded", "note"},
	}
	for _, e := range sol.Trace {
		expanded := ""
		if e.ExpandedColour != model.NoSatellite {
			expanded = tree.SatelliteName(e.ExpandedColour)
		}
		t.AddRow(e.Iteration, e.S, e.B, e.Objective, e.Candidate,
			tree.SatelliteName(e.BottleneckColour), e.Removed, expanded, e.Note)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("optimal delay %s = host %s + bottleneck %s; |E'|=%d, expansions=%d, super-edges=%d",
			trimFloat(sol.Delay), trimFloat(sol.S), trimFloat(sol.B),
			sol.Stats.FinalEdges, sol.Stats.Expansions, sol.Stats.SuperEdges),
		"optimal assignment:\n"+sol.Assignment.Describe(tree))
	return t, nil
}

// E6Epilepsy compares SSB against the baselines on the motivating scenario.
func E6Epilepsy() (*Table, error) {
	tree := workload.Epilepsy()
	t := &Table{
		ID: "E6", Title: "§1 epilepsy scenario: SSB vs baselines",
		Paper:   "minimising end-to-end delay (SSB) beats both trivial placements and the bottleneck (SB) objective on delay",
		Columns: []string{"policy", "delay", "host time", "max sat load", "vs optimal"},
	}
	opt, err := core.Solve(core.Request{Tree: tree})
	if err != nil {
		return nil, err
	}
	addRow := func(name string, bd *eval.Breakdown) {
		t.AddRow(name, bd.Delay, bd.HostTime, bd.MaxSatLoad,
			fmt.Sprintf("%.2fx", bd.Delay/opt.Delay))
	}
	addRow("adapted-ssb (paper)", opt.Breakdown)
	for _, alg := range []core.Algorithm{core.AllHost, core.MaxDistribution, core.GreedyHost} {
		out, err := core.Solve(core.Request{Tree: tree, Algorithm: alg})
		if err != nil {
			return nil, err
		}
		addRow(string(alg), out.Breakdown)
	}
	// Bokhari's objective: minimise the bottleneck, then report its delay.
	sb, err := exact.BruteForceObjective(tree, exact.BottleneckObjective, 0)
	if err != nil {
		return nil, err
	}
	bd, err := eval.Evaluate(tree, sb.Assignment)
	if err != nil {
		return nil, err
	}
	addRow("bokhari-sb (bottleneck opt)", bd)
	if bd.Delay+1e-9 < opt.Delay {
		t.Notes = append(t.Notes, "MISMATCH: bottleneck optimum beat the SSB optimum on delay")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SSB end-to-end delay %s ≤ SB-optimal assignment's delay %s: the paper's new objective pays off",
			trimFloat(opt.Delay), trimFloat(bd.Delay)))
	}
	return t, nil
}

// E7GenericScaling measures the generic SSB algorithm across graph sizes,
// exercising the O(|V|²·|E|) claim of §4.2.
func E7GenericScaling() (*Table, error) {
	t := &Table{
		ID: "E7", Title: "§4.2 complexity: generic SSB scaling",
		Paper:   "each iteration costs a shortest-path search O(|V|²); at most |E| iterations ⇒ O(|V|²·|E|)",
		Columns: []string{"|V|", "|E|", "iterations", "time/solve"},
	}
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		g, src, dst := workload.RandomDWG(rng, n, 4*n)
		// Warm-up + measure.
		res, err := dwg.SSB(g, src, dst, dwg.Default)
		if err != nil {
			return nil, err
		}
		const reps = 20
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := dwg.SSB(g, src, dst, dwg.Default); err != nil {
				return nil, err
			}
		}
		t.AddRow(n, g.NumEdges(), len(res.Iterations), fmt.Sprintf("%v", time.Since(start)/reps))
	}
	t.Notes = append(t.Notes, "superlinear growth consistent with the bound; wall times are machine-specific, the shape is what the paper predicts")
	return t, nil
}

// E8AdaptedScaling measures the adapted solver across tree sizes,
// exercising the O(|E'|) claim of §5.4.
func E8AdaptedScaling() (*Table, error) {
	t := &Table{
		ID: "E8", Title: "§5.4 complexity: adapted SSB scaling",
		Paper:   "with the topmost-path shortcut and expansion, runtime is O(|E'|), |E'| = edges of the expanded graph",
		Columns: []string{"CRUs", "sensors", "dual edges", "|E'|", "expansions", "time/solve"},
	}
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{15, 31, 63, 127, 255, 511} {
		tree := workload.Random(rng, workload.DefaultRandomSpec(n, 4))
		g := assign.Build(tree)
		sol, err := g.SolveAdapted(assign.Options{})
		if err != nil {
			return nil, err
		}
		const reps = 10
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := assign.Build(tree).SolveAdapted(assign.Options{}); err != nil {
				return nil, err
			}
		}
		t.AddRow(n, tree.SensorCount(), g.NumEdges(), sol.Stats.FinalEdges,
			sol.Stats.Expansions, fmt.Sprintf("%v", time.Since(start)/reps))
	}
	t.Notes = append(t.Notes, "time grows near-linearly in the expanded edge count, matching §5.4")
	return t, nil
}

// E9Agreement cross-validates every exact solver and quantifies heuristic
// quality on a corpus of random instances.
func E9Agreement() (*Table, error) {
	rng := rand.New(rand.NewSource(3))
	const trials = 150
	exactAgree := 0
	maxDiff := 0.0
	gaps := map[core.Algorithm][]float64{}
	heuristicAlgs := []core.Algorithm{core.GreedyHost, core.GreedyTop, core.Annealing, core.Genetic}
	for trial := 0; trial < trials; trial++ {
		spec := workload.RandomSpec{
			CRUs: 1 + rng.Intn(14), MaxArity: 1 + rng.Intn(3), Satellites: 1 + rng.Intn(4),
			Clustered: trial%2 == 0, HostScale: 0.5 + rng.Float64(),
			SatRatio: 0.5 + 3*rng.Float64(), CommScale: rng.Float64() * 2, RawFactor: 0.5 + 4*rng.Float64(),
		}
		tree := workload.Random(rng, spec)
		delays := map[core.Algorithm]float64{}
		for _, alg := range []core.Algorithm{core.AdaptedSSB, core.LabelSearch, core.ParetoDP, core.BranchBound, core.BruteForce} {
			out, err := core.Solve(core.Request{Tree: tree, Algorithm: alg})
			if err != nil {
				return nil, fmt.Errorf("trial %d %s: %w", trial, alg, err)
			}
			delays[alg] = out.Delay
		}
		ref := delays[core.BruteForce]
		agree := true
		for _, d := range delays {
			if diff := math.Abs(d - ref); diff > 1e-9 {
				agree = false
				if diff > maxDiff {
					maxDiff = diff
				}
			}
		}
		if agree {
			exactAgree++
		}
		for _, alg := range heuristicAlgs {
			out, err := core.Solve(core.Request{Tree: tree, Algorithm: alg, Seed: int64(trial)})
			if err != nil {
				return nil, err
			}
			gap := 0.0
			if ref > 0 {
				gap = (out.Delay - ref) / ref
			}
			gaps[alg] = append(gaps[alg], gap)
		}
	}
	t := &Table{
		ID: "E9", Title: "solver agreement on random instances",
		Paper:   "all exact solvers (paper's adapted SSB, label search, Pareto DP, B&B, brute force) must coincide",
		Columns: []string{"solver", "instances", "agreement / mean gap", "max gap"},
	}
	t.AddRow("5 exact solvers", trials, fmt.Sprintf("%d/%d agree", exactAgree, trials), maxDiff)
	for _, alg := range heuristicAlgs {
		mean, worst := 0.0, 0.0
		for _, g := range gaps[alg] {
			mean += g
			if g > worst {
				worst = g
			}
		}
		mean /= float64(len(gaps[alg]))
		t.AddRow(string(alg), trials, fmt.Sprintf("%.2f%% mean gap", 100*mean), fmt.Sprintf("%.2f%%", 100*worst))
	}
	return t, nil
}

// E10FutureWork compares the §6 future-work solvers against the exact
// optimum across sizes.
func E10FutureWork() (*Table, error) {
	t := &Table{
		ID: "E10", Title: "§6 future work: B&B and GA vs exact",
		Paper:   "the paper proposes branch-and-bound and genetic algorithms as future work for harder variants",
		Columns: []string{"CRUs", "search space", "adapted-ssb", "B&B nodes", "B&B time", "GA gap", "GA time"},
	}
	rng := rand.New(rand.NewSource(4))
	const bbBudget = 1 << 22
	for _, n := range []int{15, 31, 63, 127} {
		tree := workload.Random(rng, workload.DefaultRandomSpec(n, 4))
		opt, err := exact.Pareto(tree, 0)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ssb, err := core.Solve(core.Request{Tree: tree, Algorithm: core.AdaptedSSB})
		if err != nil {
			return nil, err
		}
		ssbTime := time.Since(start)
		if math.Abs(ssb.Delay-opt.Delay) > 1e-9 {
			return nil, fmt.Errorf("adapted SSB %v != exact %v at n=%d", ssb.Delay, opt.Delay, n)
		}
		start = time.Now()
		bbNodes, bbTime := "budget", ""
		bb, err := exact.BranchAndBound(tree, bbBudget)
		switch {
		case err == exact.ErrBudget:
			// Generic search dies combinatorially — the very reason the
			// paper builds a polynomial graph algorithm. Report honestly.
			bbNodes = fmt.Sprintf(">%d", bbBudget)
			bbTime = fmt.Sprintf(">%v", time.Since(start).Round(time.Millisecond))
		case err != nil:
			return nil, err
		default:
			if math.Abs(bb.Delay-opt.Delay) > 1e-9 {
				return nil, fmt.Errorf("B&B %v != exact %v at n=%d", bb.Delay, opt.Delay, n)
			}
			bbNodes = fmt.Sprintf("%d", bb.Explored)
			bbTime = fmt.Sprintf("%v", time.Since(start).Round(time.Microsecond))
		}
		start = time.Now()
		ga, err := core.Solve(core.Request{Tree: tree, Algorithm: core.Genetic, Seed: 42})
		if err != nil {
			return nil, err
		}
		gaTime := time.Since(start)
		gap := (ga.Delay - opt.Delay) / opt.Delay
		t.AddRow(n, fmt.Sprintf("%.3g", exact.CountAssignments(tree)),
			fmt.Sprintf("%v", ssbTime.Round(time.Microsecond)), bbNodes, bbTime,
			fmt.Sprintf("%.2f%%", 100*gap), fmt.Sprintf("%v", gaTime.Round(time.Microsecond)))
	}
	t.Notes = append(t.Notes,
		"generic branch-and-bound exhausts its node budget beyond ~60 CRUs while the paper's polynomial algorithm stays in milliseconds — the motivation for §5")
	return t, nil
}

// E11LambdaSweep traces the S/B trade-off of the weighted SSB objective.
func E11LambdaSweep() (*Table, error) {
	tree := workload.PaperTree()
	g := assign.Build(tree)
	t := &Table{
		ID: "E11", Title: "§4.1 weighting coefficient λ sweep",
		Paper:   "SSB(P) = λ·S(P) + (1−λ)·B(P), λ ∈ [0,1]; λ trades host time against satellite bottleneck",
		Columns: []string{"lambda", "S (host)", "B (bottleneck)", "objective", "delay S+B"},
	}
	for _, l := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		sol, err := g.SolveAdapted(assign.Options{Weights: dwg.Lambda(l)})
		if err != nil {
			return nil, err
		}
		t.AddRow(l, sol.S, sol.B, sol.Objective, sol.Delay)
	}
	t.Notes = append(t.Notes, "S is non-increasing and B non-decreasing in λ: λ=1 keeps only the must-host closure hosted, λ=0 minimises the satellite bottleneck alone")
	return t, nil
}

// E12SpeedRatio sweeps the satellite/host speed ratio on the epilepsy
// scenario and reports where offloading stops paying.
func E12SpeedRatio() (*Table, error) {
	base := workload.Epilepsy()
	t := &Table{
		ID: "E12", Title: "heterogeneity: satellite/host speed-ratio sweep",
		Paper:   "§1/§3 motivate exploiting heterogeneous resources; the crossover shows when sensor boxes are too slow to help",
		Columns: []string{"sat slowdown ×", "optimal delay", "all-host", "max-dist", "CRUs offloaded"},
	}
	for _, ratio := range []float64{0.25, 0.5, 1, 2, 4, 8, 16} {
		tree := base.ScaleProfiles(1, ratio, 1)
		opt, err := core.Solve(core.Request{Tree: tree})
		if err != nil {
			return nil, err
		}
		ah, err := core.Solve(core.Request{Tree: tree, Algorithm: core.AllHost})
		if err != nil {
			return nil, err
		}
		md, err := core.Solve(core.Request{Tree: tree, Algorithm: core.MaxDistribution})
		if err != nil {
			return nil, err
		}
		offloaded := 0
		for _, id := range tree.Preorder() {
			if tree.Node(id).Kind == model.Processing && !opt.Assignment.At(id).IsHost() {
				offloaded++
			}
		}
		t.AddRow(ratio, opt.Delay, ah.Delay, md.Delay, offloaded)
	}
	t.Notes = append(t.Notes, "fast satellites (×<1) favour maximal distribution; slow satellites push everything to the host; the optimum tracks the winner and beats both in between")
	return t, nil
}

// E13SimValidation checks the simulator against the analytic objective and
// reports multi-frame behaviour.
func E13SimValidation() (*Table, error) {
	t := &Table{
		ID: "E13", Title: "model validation: simulator vs analytic objective",
		Paper:   "§3's objective assumes satellites serialise processing+uplink and the host starts after the slowest satellite",
		Columns: []string{"scenario", "analytic delay", "barrier sim", "overlapped sim", "4-frame throughput"},
	}
	for _, tc := range []struct {
		name string
		tree *model.Tree
	}{
		{"paper", workload.PaperTree()},
		{"epilepsy", workload.Epilepsy()},
		{"snmp", workload.SNMP()},
	} {
		sol, err := assign.Solve(tc.tree)
		if err != nil {
			return nil, err
		}
		analytic := sol.Delay
		barrier, err := sim.Run(tc.tree, sol.Assignment, sim.Config{Mode: sim.PaperBarrier})
		if err != nil {
			return nil, err
		}
		over, err := sim.Run(tc.tree, sol.Assignment, sim.Config{Mode: sim.Overlapped})
		if err != nil {
			return nil, err
		}
		multi, err := sim.Run(tc.tree, sol.Assignment, sim.Config{Mode: sim.Overlapped, Frames: 4})
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.name, analytic, barrier.Makespan, over.Makespan,
			fmt.Sprintf("%.4f fps", multi.Throughput))
		if math.Abs(barrier.Makespan-analytic) > 1e-9 {
			t.Notes = append(t.Notes, "MISMATCH: barrier simulation deviates from the analytic objective on "+tc.name)
		}
	}
	t.Notes = append(t.Notes,
		"barrier mode equals the analytic delay bit-for-bit; overlapped mode shows the slack in the paper's conservative model")
	return t, nil
}
