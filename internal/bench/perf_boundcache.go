package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/boundcache"
	"repro/internal/exact"
	"repro/internal/incremental"
	"repro/internal/model"
	"repro/internal/workload"
)

// P5BoundMemo measures the PR 9 bound-memoization cache on the dynamic
// re-solve workflow it exists for: solve an instance exactly, apply one
// weight mutation, and solve the new revision again. The cold path is
// the cache-less branch-and-bound of the mutated revision; the warm path
// is the session workflow — the previous optimum projected as the
// incumbent plus the bound cache populated by the previous solve, so
// only the dirty Merkle spine is re-searched. Every warm delay is
// checked against the cold one (and against brute force on the small
// control instances), so the table doubles as an exactness probe.
//
// Explored-node counts are deterministic; wall times are averaged over
// a few primed runs, each against a freshly primed cache so the warm
// measurement never degenerates into the whole-instance replay hit.
func P5BoundMemo() (*Table, error) {
	ctx := context.Background()
	tbl := &Table{
		ID:      "P5",
		Title:   "bound memoization: cold vs warm exact re-solve after one mutation",
		Paper:   "engineering extension: ISSUE 9 incremental-exact, not a paper artefact",
		Columns: []string{"instance", "path", "explored", "ns/op", "reduction"},
	}

	type inst struct {
		name string
		seed int64
		crus int
		sats int
	}
	// The small control instances stay within brute-force reach (the
	// delay parity there is checked against full enumeration); the P5
	// instances are the pinned perf workload the CI smoke asserts on.
	cases := []inst{
		{"ctl-14", 3, 14, 3},
		{"ctl-16", 9, 16, 3},
		{"p5-40a", 4, 40, 4},
		{"p5-40b", 5, 40, 4},
		{"p5-40c", 6, 40, 4},
	}

	const iters = 3
	var geo float64
	var geoN int
	for _, in := range cases {
		tree := workload.Random(rand.New(rand.NewSource(in.seed)), workload.DefaultRandomSpec(in.crus, in.sats))

		// One revision step: the first non-root CRU drifts 2% hostward.
		var target model.NodeID
		for _, id := range tree.Postorder() {
			if tree.Node(id).Kind == model.Processing && id != tree.Root() {
				target = id
				break
			}
		}
		e := tree.Edit()
		nd := tree.Node(target)
		e.SetTimes(target, nd.HostTime*1.02, nd.SatTime*0.99)
		mutated, err := e.Build()
		if err != nil {
			return nil, fmt.Errorf("%s: mutate: %w", in.name, err)
		}

		var coldNS, warmNS int64
		var coldExplored, warmExplored int
		var coldDelay, warmDelay float64
		for it := 0; it < iters; it++ {
			// Prime: the previous revision's solve, outside the timed region.
			bc := boundcache.New(boundcache.Config{})
			prev, err := exact.BranchAndBoundOpts(ctx, tree, exact.BnBOptions{Bounds: bc, MaxNodes: 1 << 28})
			if err != nil {
				return nil, fmt.Errorf("%s: prime: %w", in.name, err)
			}
			warmStart := incremental.Project(tree, prev.Assignment, mutated)

			t0 := time.Now()
			cold, err := exact.BranchAndBound(mutated, 1<<28)
			coldNS += time.Since(t0).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("%s: cold: %w", in.name, err)
			}

			t0 = time.Now()
			warm, err := exact.BranchAndBoundOpts(ctx, mutated, exact.BnBOptions{
				Bounds: bc, Warm: warmStart, MaxNodes: 1 << 28,
			})
			warmNS += time.Since(t0).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("%s: warm: %w", in.name, err)
			}

			tol := 1e-9 * (1 + cold.Delay)
			if d := warm.Delay - cold.Delay; d > tol || d < -tol {
				return nil, fmt.Errorf("%s: warm delay %g != cold %g", in.name, warm.Delay, cold.Delay)
			}
			coldExplored, warmExplored = cold.Explored, warm.Explored
			coldDelay, warmDelay = cold.Delay, warm.Delay
		}

		if exact.CountAssignments(mutated) <= 1<<18 {
			bf, err := exact.BruteForce(mutated, 0)
			if err != nil {
				return nil, fmt.Errorf("%s: brute: %w", in.name, err)
			}
			tol := 1e-9 * (1 + bf.Delay)
			if d := warmDelay - bf.Delay; d > tol || d < -tol {
				return nil, fmt.Errorf("%s: warm delay %g != brute %g", in.name, warmDelay, bf.Delay)
			}
		}

		reduction := float64(coldExplored) / math.Max(float64(warmExplored), 1)
		cold := float64(coldNS) / iters
		warm := float64(warmNS) / iters
		tbl.AddRow(in.name, "cold", coldExplored, fmt.Sprintf("%.0f", cold), "1.0")
		tbl.AddRow(in.name, "warm", warmExplored, fmt.Sprintf("%.0f", warm), fmt.Sprintf("%.1fx", reduction))
		tbl.AddMetric(fmt.Sprintf("%s/cold/explored", in.name), float64(coldExplored), "nodes")
		tbl.AddMetric(fmt.Sprintf("%s/warm/explored", in.name), float64(warmExplored), "nodes")
		tbl.AddMetric(fmt.Sprintf("%s/cold/ns_op", in.name), cold, "ns/op")
		tbl.AddMetric(fmt.Sprintf("%s/warm/ns_op", in.name), warm, "ns/op")
		tbl.AddMetric(fmt.Sprintf("%s/explored_reduction", in.name), reduction, "x")
		_ = coldDelay
		if in.crus >= 40 {
			geo += math.Log(reduction)
			geoN++
		}
	}
	if geoN > 0 {
		tbl.AddMetric("p5/explored_reduction_geomean", math.Exp(geo/float64(geoN)), "x")
	}

	tbl.Notes = append(tbl.Notes,
		"warm = previous optimum projected as incumbent + bound cache primed by the previous solve; cold = cache-less bnb of the same revision",
		"each warm iteration re-primes a fresh cache so the measurement is the dirty-spine re-search, not the whole-instance replay hit",
		"ctl-* rows are brute-force checked; p5-* rows are the pinned ≥5x acceptance workload (TestWarmMemoizedResolveFewerNodes)",
	)
	return tbl, nil
}
