// Package series defines the one versioned perf-run schema every
// measurement tool in this repo writes — crbench experiment runs and
// crload load-harness runs alike — and the append-only series file the
// runs accumulate into. A Run is (schema, tool, commit, timestamp,
// benches[]) plus an opaque tool-specific detail payload; the series
// file (docs/bench/data.js) is the window.BENCHMARK_DATA shape used by
// github-action-benchmark dashboards, so the perf trajectory renders
// with stock tooling and diffing two runs is a jq one-liner.
package series

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// Schema is the run-record version. Consumers reject records whose
// schema they do not know instead of guessing at fields.
const Schema = "cr-perf-run/v1"

// Bench is one scalar measurement: a flat (name, value, unit) triple,
// the least common denominator every dashboard understands.
type Bench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// Run is one tool invocation's record.
type Run struct {
	Schema    string          `json:"schema"`
	Tool      string          `json:"tool"`
	Commit    string          `json:"commit,omitempty"`
	Timestamp string          `json:"timestamp"` // RFC 3339
	Benches   []Bench         `json:"benches"`
	Detail    json.RawMessage `json:"detail,omitempty"` // tool-specific payload (tables, full load result)
}

// New assembles a Run stamped with the current time. detail may be nil;
// anything else is marshalled into the Detail payload.
func New(tool, commit string, benches []Bench, detail any) (*Run, error) {
	r := &Run{
		Schema:    Schema,
		Tool:      tool,
		Commit:    commit,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Benches:   benches,
	}
	if r.Benches == nil {
		r.Benches = []Bench{} // a run always carries an array, never null
	}
	if detail != nil {
		raw, err := json.Marshal(detail)
		if err != nil {
			return nil, fmt.Errorf("series: marshalling detail: %w", err)
		}
		r.Detail = raw
	}
	return r, nil
}

// Validate checks the invariants consumers rely on.
func (r *Run) Validate() error {
	switch {
	case r == nil:
		return fmt.Errorf("series: nil run")
	case r.Schema != Schema:
		return fmt.Errorf("series: unknown schema %q (want %q)", r.Schema, Schema)
	case r.Tool == "":
		return fmt.Errorf("series: missing tool")
	case r.Timestamp == "":
		return fmt.Errorf("series: missing timestamp")
	}
	if _, err := time.Parse(time.RFC3339, r.Timestamp); err != nil {
		return fmt.Errorf("series: bad timestamp %q: %w", r.Timestamp, err)
	}
	for i, b := range r.Benches {
		if b.Name == "" || b.Unit == "" {
			return fmt.Errorf("series: bench %d missing name or unit: %+v", i, b)
		}
	}
	return nil
}

// Write persists the run as indented JSON at path (the BENCH_PRn.json
// form: one run per file).
func (r *Run) Write(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadRun loads and validates a single-run file.
func ReadRun(path string) (*Run, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Run
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("series: parsing %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("series: %s: %w", path, err)
	}
	return &r, nil
}

// Data is the accumulated series: every run ever appended, grouped by
// tool, newest last — the window.BENCHMARK_DATA shape.
type Data struct {
	LastUpdate int64             `json:"lastUpdate"` // unix millis of the newest append
	Entries    map[string][]*Run `json:"entries"`
}

const dataPrefix = "window.BENCHMARK_DATA = "

// Append adds run to the series file at path, creating the file (and
// its directory) on first use. The file is a data.js assignment so a
// static dashboard page can <script src> it directly; Load parses the
// same file back.
func Append(path string, run *Run) error {
	if err := run.Validate(); err != nil {
		return err
	}
	data, err := Load(path)
	if os.IsNotExist(err) {
		data, err = &Data{Entries: map[string][]*Run{}}, nil
	}
	if err != nil {
		return err
	}
	data.Entries[run.Tool] = append(data.Entries[run.Tool], run)
	ts, err := time.Parse(time.RFC3339, run.Timestamp)
	if err != nil {
		return fmt.Errorf("series: %w", err)
	}
	if ms := ts.UnixMilli(); ms > data.LastUpdate {
		data.LastUpdate = ms
	}

	raw, err := json.MarshalIndent(data, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, []byte(dataPrefix+string(raw)+"\n"), 0o644)
}

// Load parses a series file written by Append.
func Load(path string) (*Data, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	body := strings.TrimSpace(string(raw))
	body = strings.TrimPrefix(body, strings.TrimSpace(dataPrefix))
	body = strings.TrimSuffix(body, ";")
	var data Data
	if err := json.Unmarshal([]byte(body), &data); err != nil {
		return nil, fmt.Errorf("series: parsing %s: %w", path, err)
	}
	if data.Entries == nil {
		data.Entries = map[string][]*Run{}
	}
	return &data, nil
}

// GitCommit best-effort resolves the repository's HEAD commit for run
// stamping. It returns "" when git or the repository is unavailable —
// a run without provenance still beats no run.
func GitCommit(dir string) string {
	cmd := exec.Command("git", "rev-parse", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
