package series

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRun(t *testing.T, tool string, benches ...Bench) *Run {
	t.Helper()
	r, err := New(tool, "deadbeef", benches, map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	r := testRun(t, "crload", Bench{Name: "p95", Value: 1.25, Unit: "us"})
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRun(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Tool != "crload" || back.Commit != "deadbeef" {
		t.Fatalf("round trip drifted: %+v", back)
	}
	if len(back.Benches) != 1 || back.Benches[0].Value != 1.25 {
		t.Fatalf("benches: %+v", back.Benches)
	}
	var detail map[string]string
	if err := json.Unmarshal(back.Detail, &detail); err != nil || detail["k"] != "v" {
		t.Fatalf("detail: %s (%v)", back.Detail, err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []*Run{
		nil,
		{Schema: "bogus/v9", Tool: "x", Timestamp: "2026-01-01T00:00:00Z"},
		{Schema: Schema, Timestamp: "2026-01-01T00:00:00Z"},
		{Schema: Schema, Tool: "x"},
		{Schema: Schema, Tool: "x", Timestamp: "yesterday-ish"},
		{Schema: Schema, Tool: "x", Timestamp: "2026-01-01T00:00:00Z", Benches: []Bench{{Value: 1}}},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d should have failed validation: %+v", i, r)
		}
	}
}

func TestAppendAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench", "data.js")

	if err := Append(path, testRun(t, "crbench", Bench{Name: "a", Value: 1, Unit: "ns/op"})); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, testRun(t, "crload", Bench{Name: "b", Value: 2, Unit: "req/s"})); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, testRun(t, "crload", Bench{Name: "c", Value: 3, Unit: "us"})); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "window.BENCHMARK_DATA = {") {
		t.Fatalf("file is not a data.js assignment: %.60s", raw)
	}

	data, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Entries["crbench"]) != 1 || len(data.Entries["crload"]) != 2 {
		t.Fatalf("entries: crbench=%d crload=%d", len(data.Entries["crbench"]), len(data.Entries["crload"]))
	}
	// Append-only: the first crload run is still the first.
	if data.Entries["crload"][0].Benches[0].Name != "b" {
		t.Fatalf("run order lost: %+v", data.Entries["crload"])
	}
	if data.LastUpdate == 0 {
		t.Fatal("lastUpdate not stamped")
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.js")
	if err := Append(path, &Run{Schema: "nope"}); err == nil {
		t.Fatal("invalid run appended")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("file created for invalid run")
	}
}
