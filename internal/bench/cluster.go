package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/api"
	"repro/internal/cluster"
	"repro/internal/httpserve"
	"repro/internal/workload"
)

// P2ClusterScaling drives identical solve workloads through a 1-node and
// a 3-node in-process fleet (real loopback HTTP, consistent-hash
// routing) and reports throughput, tail latency and the fleet-wide cache
// behaviour. Two workloads bound the routing value: "paper" replays one
// instance (pure cache-hit traffic, routing cost dominates) and "random"
// cycles distinct instances with repeats (the sharded-cache regime the
// cluster tier exists for). The cold-solves column is the affinity
// contract: it must equal the distinct instance count on every fleet
// size — each instance solves once, wherever the client connected.
func P2ClusterScaling() (*Table, error) {
	t := &Table{
		ID:    "P2",
		Title: "perf: clustered serving 1-node vs 3-node",
		Columns: []string{"fleet", "workload", "requests", "req/s", "p50", "p95",
			"fleet hits", "cold solves", "forwarded"},
	}

	paper := []*repro.Spec{repro.ToSpec(workload.PaperTree(), "paper")}
	rng := rand.New(rand.NewSource(11))
	random := make([]*repro.Spec, 40)
	for i := range random {
		tree := workload.Random(rng, workload.DefaultRandomSpec(24, 3))
		random[i] = repro.ToSpec(tree, fmt.Sprintf("rand-%d", i))
	}

	for _, nodes := range []int{1, 3} {
		for _, wl := range []struct {
			name  string
			specs []*repro.Spec
			reqs  int
		}{
			{"paper tree", paper, 400},
			{"random x40", random, 400},
		} {
			row, err := runClusterLoad(nodes, wl.specs, wl.reqs, 16)
			if err != nil {
				return nil, fmt.Errorf("P2 %d-node %s: %w", nodes, wl.name, err)
			}
			t.AddRow(fmt.Sprintf("%d-node", nodes), wl.name, wl.reqs,
				fmt.Sprintf("%.0f", row.rps),
				row.p50.Round(10*time.Microsecond), row.p95.Round(10*time.Microsecond),
				row.hits, row.misses, row.forwards)
		}
	}
	t.Notes = append(t.Notes,
		"in-process fleet over loopback HTTP; clients round-robin across nodes",
		"cold solves == distinct instances on every fleet size: consistent-hash routing keeps each instance's cache on one owner",
		"on loopback with warm sub-ms solves the intra-cluster hop dominates latency; the tier pays off when solve cost or working-set size exceeds one node (the affinity columns, not req/s, are the contract here)")
	return t, nil
}

type clusterLoadRow struct {
	rps          float64
	p50, p95     time.Duration
	hits, misses int64
	forwards     int64
}

func runClusterLoad(nodes int, specs []*repro.Spec, requests, clients int) (*clusterLoadRow, error) {
	fleet, err := httpserve.StartFleet(nodes, httpserve.FleetOptions{
		Cluster: cluster.Config{VirtualNodes: 64, ProbeInterval: 200 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()

	urls := fleet.URLs()
	bodies := make([][]byte, len(specs))
	for i, spec := range specs {
		if bodies[i], err = json.Marshal(&api.SolveRequest{Spec: spec}); err != nil {
			return nil, err
		}
	}

	var failed atomic.Int64
	latencies := make([]time.Duration, requests)
	work := make(chan int, requests)
	for i := 0; i < requests; i++ {
		work <- i
	}
	close(work)

	client := &http.Client{}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				t0 := time.Now()
				resp, err := client.Post(urls[i%len(urls)]+"/v1/solve", "application/json",
					bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					failed.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
					continue
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n > 0 {
		return nil, fmt.Errorf("%d/%d requests failed", n, requests)
	}

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	row := &clusterLoadRow{
		rps: float64(requests) / elapsed.Seconds(),
		p50: latencies[requests/2],
		p95: latencies[(requests*95)/100],
	}
	for _, n := range fleet.Nodes {
		st := n.Service.Stats()
		row.hits += st.Hits
		row.misses += st.Misses
		row.forwards += n.Cluster.Stats().Forwards
	}
	return row, nil
}
