package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/assign"
	"repro/internal/bokhari"
	"repro/internal/chain"
	"repro/internal/dagcru"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E14Bokhari runs the §2 related-work baseline: Bokhari's original
// free-satellite, bottleneck-objective mapping next to the paper's pinned,
// delay-objective solution, quantifying both differences the paper lists.
func E14Bokhari() (*Table, error) {
	t := &Table{
		ID: "E14", Title: "§2 baseline: Bokhari's original mapping vs the paper's",
		Paper:   "the paper differs from Bokhari in (1) pinned sensors — a colouring scheme replaces free satellites — and (2) the end-to-end delay objective replacing the bottleneck",
		Columns: []string{"instance", "bokhari bottleneck", "free cut pinned-feasible", "paper delay", "delay of bokhari cut"},
	}
	rng := rand.New(rand.NewSource(14))
	instances := []struct {
		name string
		tree *model.Tree
	}{
		{"paper", workload.PaperTree()},
		{"epilepsy", workload.Epilepsy()},
		{"snmp", workload.SNMP()},
		{"random-32", workload.Random(rng, workload.DefaultRandomSpec(32, 4))},
	}
	infeasible := 0
	for _, inst := range instances {
		free, err := bokhari.SolveSB(inst.tree)
		if err != nil {
			return nil, err
		}
		// Cross-check the baseline's two solvers.
		th, err := bokhari.SolveThreshold(inst.tree)
		if err != nil {
			return nil, err
		}
		if math.Abs(free.Bottleneck-th.Bottleneck) > 1e-9 {
			return nil, fmt.Errorf("bokhari solvers disagree on %s: %v vs %v",
				inst.name, free.Bottleneck, th.Bottleneck)
		}
		sol, err := assign.Solve(inst.tree)
		if err != nil {
			return nil, err
		}
		feasible := "yes"
		delayOfCut := "-"
		if d, ok := bokhari.DelayOfCut(inst.tree, free.Cut); ok {
			delayOfCut = trimFloat(d)
			if d+1e-9 < sol.Delay {
				return nil, fmt.Errorf("bokhari cut beat the optimum on %s", inst.name)
			}
		} else {
			feasible = "no"
			infeasible++
		}
		t.AddRow(inst.name, free.Bottleneck, feasible, sol.Delay, delayOfCut)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("on %d of %d instances Bokhari's free placement is not even feasible once sensors are pinned — the reason the paper introduces the colouring scheme; where feasible, its delay is never below the SSB optimum", infeasible, len(instances)))
	return t, nil
}

// E15Throughput pushes frame streams through the simulator: the
// latency-optimal assignment is compared against the baselines at several
// arrival rates, an extension beyond the paper's single-frame model.
func E15Throughput() (*Table, error) {
	t := &Table{
		ID: "E15", Title: "extension: pipelined throughput by assignment policy",
		Paper:   "(extension — the paper optimises single-frame delay; streams expose the bottleneck-resource view)",
		Columns: []string{"policy", "1-frame delay", "16-frame makespan", "throughput fps", "worst latency"},
	}
	tree := workload.Epilepsy()
	sol, err := assign.Solve(tree)
	if err != nil {
		return nil, err
	}
	policies := []struct {
		name string
		asg  *model.Assignment
	}{
		{"adapted-ssb", sol.Assignment},
		{"all-host", model.NewAssignment(tree)},
		{"max-distribution", assign.Build(tree).Analysis().FeasibleTopmost()},
	}
	const frames = 16
	const interval = 2.0
	for _, pol := range policies {
		one, err := sim.Run(tree, pol.asg, sim.Config{Mode: sim.Overlapped})
		if err != nil {
			return nil, err
		}
		stream, err := sim.Run(tree, pol.asg, sim.Config{Mode: sim.Overlapped, Frames: frames, Interval: interval})
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for _, f := range stream.Frames {
			if l := f.Latency(); l > worst {
				worst = l
			}
		}
		t.AddRow(pol.name, one.Makespan, stream.Makespan,
			fmt.Sprintf("%.4f", stream.Throughput), worst)
	}
	t.Notes = append(t.Notes,
		"the latency-optimal cut also sustains the stream best here; policies that pile work on one resource watch per-frame latency grow with queueing")
	return t, nil
}

// E17DAG exercises the §6 future-work DAG model: tree-shaped DAGs must
// reproduce the tree optimum, and the GA tracks the exact optimum on small
// true DAGs.
func E17DAG() (*Table, error) {
	t := &Table{
		ID: "E17", Title: "§6 future work: DAG-structured reasoning procedures",
		Paper:   "§6 plans a DAG-tasks model solved with heuristics (B&B, GA) since no polynomial algorithm is expected",
		Columns: []string{"instance", "nodes", "exact delay", "GA delay", "gap", "tree-anchored"},
	}
	// Tree-shaped DAGs: anchored to the tree solvers.
	for _, tc := range []struct {
		name string
		tree *model.Tree
	}{
		{"epilepsy-as-dag", workload.Epilepsy()},
		{"snmp-as-dag", workload.SNMP()},
	} {
		g, err := dagcru.FromTree(tc.tree)
		if err != nil {
			return nil, err
		}
		_, exactD, err := dagcru.BruteForce(g, 0)
		if err != nil {
			return nil, err
		}
		treeOpt, err := assign.Solve(tc.tree)
		if err != nil {
			return nil, err
		}
		anchored := "yes"
		if math.Abs(exactD-treeOpt.Delay) > 1e-9 {
			anchored = "NO (MISMATCH)"
		}
		_, gaD := dagcru.Genetic(g, 7, 40, 60)
		t.AddRow(tc.name, g.Len(), exactD, gaD,
			fmt.Sprintf("%.2f%%", 100*(gaD-exactD)/exactD), anchored)
	}
	// A genuine DAG: shared feature extraction feeding two classifiers.
	b := dagcru.NewBuilder()
	box := b.Satellite("box")
	filter := b.CRU("filter", 2, 5, 1)
	fx := b.CRU("featX", 1.5, 4, 0.5)
	fy := b.CRU("featY", 1.5, 4, 0.5)
	fuse := b.CRU("fuse", 1, 3, 0)
	probe := b.Sensor("probe", box, 6)
	b.Feed(probe, filter)
	b.Feed(filter, fx)
	b.Feed(filter, fy)
	b.Feed(fx, fuse)
	b.Feed(fy, fuse)
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	_, exactD, err := dagcru.BruteForce(g, 0)
	if err != nil {
		return nil, err
	}
	_, gaD := dagcru.Genetic(g, 7, 40, 60)
	t.AddRow("shared-filter diamond", g.Len(), exactD, gaD,
		fmt.Sprintf("%.2f%%", 100*(gaD-exactD)/exactD), "n/a (true DAG)")
	t.Notes = append(t.Notes,
		"the diamond shares one filter between two feature CRUs — inexpressible as a tree; its uplink is paid once, which the tree model cannot represent")
	return t, nil
}

// E16Chain runs the §2 chain-partitioning related-work baselines and
// cross-validates the three solvers.
func E16Chain() (*Table, error) {
	t := &Table{
		ID: "E16", Title: "§2 related work: chain-to-chain partitioning",
		Paper:   "Bokhari's chain-on-chain partitioning and its improved algorithms (Hansen–Lih, probe methods) are the other problem family §2 surveys",
		Columns: []string{"tasks", "processors", "comm", "bottleneck", "dp==probe==dwg"},
	}
	rng := rand.New(rand.NewSource(16))
	for _, n := range []int{8, 16, 32, 64} {
		for _, withComm := range []bool{false, true} {
			p := &chain.Problem{Weights: make([]float64, n), K: 4}
			for i := range p.Weights {
				p.Weights[i] = float64(1 + rng.Intn(30))
			}
			comm := "no"
			if withComm {
				comm = "yes"
				p.Comm = make([]float64, n-1)
				for i := range p.Comm {
					p.Comm[i] = float64(rng.Intn(10))
				}
			}
			dp, err := chain.DP(p)
			if err != nil {
				return nil, err
			}
			pr, err := chain.Probe(p)
			if err != nil {
				return nil, err
			}
			dw, err := chain.DWG(p)
			if err != nil {
				return nil, err
			}
			agree := "yes"
			if math.Abs(dp.Bottleneck-pr.Bottleneck) > 1e-9 || math.Abs(dp.Bottleneck-dw.Bottleneck) > 1e-9 {
				agree = "NO (MISMATCH)"
			}
			t.AddRow(n, p.K, comm, dp.Bottleneck, agree)
		}
	}
	return t, nil
}
