package bench

import (
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/assign"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/workload"
)

// P1CompiledVsPointer measures the compiled flat-tree hot paths against
// the pointer-based reference implementations retained for the parity
// tests, on the paper tree: flat delay evaluation, the hill climber,
// branch-and-bound, adapted-SSB graph build+solve, and the warm
// Service.Solve cache-hit path. The allocs/op and bytes/op columns are
// the memory-discipline contract — the compiled rows must stay at 0 for
// the evaluation kernel and the warm serve path.
func P1CompiledVsPointer() (*Table, error) {
	tree := workload.PaperTree()
	c := model.Compile(tree)
	asg := heuristics.MaxDistribution(tree).Assignment
	loc := make([]model.Location, c.Len())
	c.LoadLocations(loc, asg)
	ctx := context.Background()

	svc := repro.NewService(nil, 64)
	if _, _, err := svc.Solve(ctx, tree); err != nil {
		return nil, err
	}

	type variant struct {
		path, impl string
		fn         func(b *testing.B)
	}
	variants := []variant{
		{"eval", "pointer", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.PointerDelay(tree, asg)
			}
		}},
		{"eval", "compiled", func(b *testing.B) {
			b.ReportAllocs()
			fr := eval.GetFrame()
			defer eval.PutFrame(fr)
			for i := 0; i < b.N; i++ {
				eval.FlatDelay(c, loc, fr)
			}
		}},
		{"greedy-host", "pointer", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				heuristics.GreedyPointer(tree, heuristics.FromHost)
			}
		}},
		{"greedy-host", "compiled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				heuristics.Greedy(tree, heuristics.FromHost)
			}
		}},
		{"branch-and-bound", "pointer", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exact.BranchAndBoundPointer(ctx, tree, 0, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"branch-and-bound", "compiled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exact.BranchAndBound(tree, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"adapted-ssb", "pointer", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := assign.BuildPointer(tree).SolveAdapted(assign.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"adapted-ssb", "compiled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := assign.Build(tree).SolveAdapted(assign.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"serve-warm", "compiled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := svc.Solve(ctx, tree); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	tbl := &Table{
		ID:      "P1",
		Title:   "compiled flat-tree plans vs pointer walks (paper tree)",
		Paper:   "engineering extension: ISSUE 4 relayering, not a paper artefact",
		Columns: []string{"path", "impl", "ns/op", "allocs/op", "bytes/op"},
	}
	nsByPath := map[string][2]float64{}
	for _, v := range variants {
		r := testing.Benchmark(v.fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		tbl.AddRow(v.path, v.impl, fmt.Sprintf("%.0f", ns), r.AllocsPerOp(), r.AllocedBytesPerOp())
		tbl.AddMetric(v.path+"/"+v.impl+"/ns_op", ns, "ns/op")
		tbl.AddMetric(v.path+"/"+v.impl+"/allocs_op", float64(r.AllocsPerOp()), "allocs/op")
		pair := nsByPath[v.path]
		if v.impl == "pointer" {
			pair[0] = ns
		} else {
			pair[1] = ns
		}
		nsByPath[v.path] = pair
	}
	for _, v := range []string{"eval", "greedy-host", "branch-and-bound", "adapted-ssb"} {
		pair := nsByPath[v]
		if pair[0] > 0 && pair[1] > 0 {
			tbl.Notes = append(tbl.Notes, fmt.Sprintf("%s: compiled is %.1fx the pointer path", v, pair[0]/pair[1]))
		}
	}
	return tbl, nil
}
