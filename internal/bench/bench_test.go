package bench

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table id %s != %s", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			for _, n := range tbl.Notes {
				if strings.Contains(n, "MISMATCH") {
					t.Errorf("%s reports a mismatch with the paper: %s", e.ID, n)
				}
			}
			if out := tbl.Render(); !strings.Contains(out, e.ID) {
				t.Errorf("render missing id:\n%s", out)
			}
			if md := tbl.Markdown(); !strings.Contains(md, "|") {
				t.Errorf("markdown broken:\n%s", md)
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

func TestE1GoldenValues(t *testing.T) {
	tbl, err := E1Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 iterations", len(tbl.Rows))
	}
	// Iteration 1: SSB 29; iteration 2: SSB 20; iteration 3: S=33, stop.
	if tbl.Rows[0][3] != "29" || tbl.Rows[1][3] != "20" || tbl.Rows[2][1] != "33" {
		t.Fatalf("golden values drifted: %v", tbl.Rows)
	}
}

func TestTableAddRowFormats(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow(1.5, "x")
	tbl.AddRow(2.0, 3)
	if tbl.Rows[0][0] != "1.5" || tbl.Rows[1][0] != "2" {
		t.Fatalf("float trimming broken: %v", tbl.Rows)
	}
}
