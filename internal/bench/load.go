package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/load"
)

// P3LoadHarness runs the trace-driven load harness end to end against a
// self-hosted 2-node fleet: the default 80/10/10 solve/batch/session
// blend over a small Zipfian corpus, open-loop at a modest rate, with
// the /debug/vars collector on. The table is the client-observed
// per-class record; Metrics carries the same scalars crload persists,
// so CI trends one series whether the run came from the experiment
// registry or the standalone tool. Kept short — the experiment suite
// runs this on every `go test ./internal/bench`.
func P3LoadHarness() (*Table, error) {
	spec := &load.Spec{
		Name:     "p3-smoke",
		Seed:     7,
		RPS:      200,
		Duration: load.Duration(1500 * time.Millisecond),
		Warmup:   load.Duration(300 * time.Millisecond),
		Workers:  16,
		Corpus:   load.CorpusSpec{Instances: 16, MinCRUs: 6, MaxCRUs: 12, Satellites: 3, ZipfS: 1.2},
		Mix: load.MixSpec{
			Classes:    map[string]float64{load.ClassSolve: 0.8, load.ClassBatch: 0.1, load.ClassSession: 0.1},
			SessionOps: 3,
		},
		ScrapeInterval: load.Duration(500 * time.Millisecond),
	}
	spec.ApplyDefaults()

	fleet, err := load.SelfHostFleet(2)
	if err != nil {
		return nil, fmt.Errorf("P3: starting fleet: %w", err)
	}
	defer fleet.Close()

	res, err := load.Run(context.Background(), spec, load.RunOptions{Targets: fleet.URLs()})
	if err != nil {
		return nil, fmt.Errorf("P3: %w", err)
	}
	if res.Completed == 0 {
		return nil, fmt.Errorf("P3: no requests completed")
	}

	t := &Table{
		ID:      "P3",
		Title:   "perf: open-loop load harness on a 2-node fleet",
		Paper:   "engineering extension: continuous perf tracking, not a paper artefact",
		Columns: []string{"class", "count", "errors", "p50", "p95", "p99"},
	}
	us := func(v float64) string {
		return time.Duration(v * float64(time.Microsecond)).Round(10 * time.Microsecond).String()
	}
	for _, class := range []string{load.ClassSolve, load.ClassBatch, load.ClassSessionOpen, load.ClassSessionMutate, load.ClassSessionClose} {
		st, ok := res.Classes[class]
		if !ok {
			continue
		}
		t.AddRow(class, st.Count, st.Errors+st.Timeouts,
			us(st.Latency.P50US), us(st.Latency.P95US), us(st.Latency.P99US))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("achieved %.0f of %.0f req/s target over %.1fs measured (open loop, %d dropped)",
			res.AchievedRPS, res.TargetRPS, res.ElapsedSec, res.Dropped),
		fmt.Sprintf("fleet cache hit ratio %.1f%% across %d nodes; %d errors, %d timeouts",
			100*res.CacheHitRatio(), len(res.Nodes), res.Errors, res.Timeouts))

	// Same scalars crload records, prefixed with the experiment id.
	for _, b := range res.Benches() {
		b.Name = "P3/" + b.Name
		t.Metrics = append(t.Metrics, b)
	}
	return t, nil
}
