package bench

import (
	"fmt"
	"strings"

	"repro/internal/bench/series"
)

// Table is one experiment's output.
type Table struct {
	ID      string // experiment id, e.g. "E1"
	Title   string // human title
	Paper   string // what the paper reports / predicts for this artefact
	Columns []string
	Rows    [][]string
	Notes   []string // measured-vs-paper commentary appended below the table
	// Metrics are the experiment's trendable scalars in the shared
	// perf-series schema: perf experiments (P*) fill them so crbench -out
	// and crload persist through the same cr-perf-run/v1 record.
	Metrics []series.Bench
}

// AddMetric appends one trendable scalar under this experiment's id
// (name becomes "<ID>/<name>").
func (t *Table) AddMetric(name string, value float64, unit string) {
	t.Metrics = append(t.Metrics, series.Bench{Name: t.ID + "/" + name, Value: value, Unit: unit})
}

// AddRow appends a row, formatting every cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render draws the table in aligned plain text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&sb, "paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavoured markdown (EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&sb, "**Paper:** %s\n\n", t.Paper)
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// All returns every experiment in id order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Figure 4: SSB worked example", E1Figure4},
		{"E2", "Figure 5: colouring the CRU tree", E2Colouring},
		{"E3", "Figure 6: coloured assignment graph", E3AssignmentGraph},
		{"E4", "Figure 8 + §5.3: σ/β labelling identities", E4Labelling},
		{"E5", "Figure 9/10: adapted SSB on the paper tree", E5AdaptedSSB},
		{"E6", "§1 epilepsy scenario: SSB vs baselines", E6Epilepsy},
		{"E7", "§4.2 complexity: generic SSB scaling", E7GenericScaling},
		{"E8", "§5.4 complexity: adapted SSB scaling", E8AdaptedScaling},
		{"E9", "solver agreement on random instances", E9Agreement},
		{"E10", "§6 future work: B&B and GA vs exact", E10FutureWork},
		{"E11", "§4.1 weighting coefficient λ sweep", E11LambdaSweep},
		{"E12", "heterogeneity: satellite/host speed-ratio sweep", E12SpeedRatio},
		{"E13", "model validation: simulator vs analytic objective", E13SimValidation},
		{"E14", "§2 baseline: Bokhari's original mapping", E14Bokhari},
		{"E15", "extension: pipelined throughput by policy", E15Throughput},
		{"E16", "§2 related work: chain partitioning", E16Chain},
		{"E17", "§6 future work: DAG-structured procedures", E17DAG},
		{"P1", "perf: compiled flat-tree plans vs pointer walks", P1CompiledVsPointer},
		{"P2", "perf: clustered serving 1-node vs 3-node", P2ClusterScaling},
		{"P3", "perf: open-loop load harness on a 2-node fleet", P3LoadHarness},
		{"P4", "perf: parallel branch-and-bound cores + batch eval lanes", P4ParallelCores},
		{"P5", "perf: bound memoization, cold vs warm exact re-solve", P5BoundMemo},
		{"P6", "perf: GC pacing (gogc + ballast) under elastic fleet load", P6GCTuning},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
