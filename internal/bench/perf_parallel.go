package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// P4ParallelCores measures the PR 8 parallel kernels: the work-stealing
// branch-and-bound at increasing worker counts on one large instance
// (cores-vs-wall-time for a single solve), and the batch delay kernel's
// per-assignment cost as the lane width grows (the amortisation the
// genetic population and annealing pack ride on). The sequential
// branch-and-bound is the 0-worker baseline row; every parallel solve is
// checked against its delay, so the table doubles as an exactness probe.
//
// Speedup is only observable when the host exposes >1 core; the
// GOMAXPROCS note records the machine so single-core CI runs are not
// misread as a scaling regression.
func P4ParallelCores() (*Table, error) {
	rng := rand.New(rand.NewSource(11))
	tree := workload.Random(rng, workload.DefaultRandomSpec(48, 3))
	c := model.Compile(tree)
	ctx := context.Background()

	seq, err := exact.BranchAndBound(tree, 1<<28)
	if err != nil {
		return nil, fmt.Errorf("sequential reference: %w", err)
	}

	tbl := &Table{
		ID:      "P4",
		Title:   "parallel kernels: cores vs wall-time, batch lanes vs eval cost",
		Paper:   "engineering extension: ISSUE 8 parallel search, not a paper artefact",
		Columns: []string{"path", "width", "ns/op", "speedup"},
	}

	// Work-stealing branch-and-bound: one large solve at each worker count.
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	// The two implementations accumulate rounding residue in different
	// exploration orders, so delays agree to relative precision, not bits.
	tol := 1e-9 * (1 + seq.Delay)
	var solveErr error
	seqBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.BranchAndBound(tree, 1<<28); err != nil {
				solveErr = err
				return
			}
		}
	})
	if solveErr != nil {
		return nil, solveErr
	}
	seqNS := float64(seqBench.T.Nanoseconds()) / float64(seqBench.N)
	tbl.AddRow("bnb-sequential", 1, fmt.Sprintf("%.0f", seqNS), "1.0")
	tbl.AddMetric("bnb/sequential/ns_op", seqNS, "ns/op")
	for _, w := range counts {
		w := w
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := parallel.BranchAndBound(ctx, tree, parallel.Options{Workers: w, MaxNodes: 1 << 28})
				if err != nil {
					solveErr = err
					return
				}
				if d := res.Delay - seq.Delay; d > tol || d < -tol {
					solveErr = fmt.Errorf("workers=%d delay %g != sequential %g", w, res.Delay, seq.Delay)
					return
				}
			}
		})
		if solveErr != nil {
			return nil, solveErr
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		tbl.AddRow("bnb-parallel", w, fmt.Sprintf("%.0f", ns), fmt.Sprintf("%.2f", seqNS/ns))
		tbl.AddMetric(fmt.Sprintf("bnb/w%d/ns_op", w), ns, "ns/op")
		tbl.AddMetric(fmt.Sprintf("bnb/w%d/speedup", w), seqNS/ns, "x")
	}

	// Batch delay kernel: per-assignment cost at increasing lane widths on
	// the same compiled plan. Lane 1 is the amortisation baseline (the
	// plain FlatDelay loop the heuristics used before batching).
	n := c.Len()
	fr := eval.GetFrame()
	base := make([]model.Location, n)
	c.BaseLocations(base)
	oneNS := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.FlatDelay(c, base, fr)
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}()
	eval.PutFrame(fr)
	tbl.AddRow("eval-single", 1, fmt.Sprintf("%.0f", oneNS), "1.0")
	tbl.AddMetric("eval/single/ns_op", oneNS, "ns/op")
	for _, lanes := range []int{4, 16, 64} {
		locs := make([][]model.Location, lanes)
		for i := range locs {
			locs[i] = make([]model.Location, n)
			if i%2 == 0 {
				c.BaseLocations(locs[i])
			} else {
				c.TopmostLocations(locs[i])
			}
		}
		out := make([]float64, lanes)
		bf := eval.GetBatchFrame()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.FlatDelayBatch(c, locs, out, bf)
			}
		})
		eval.PutBatchFrame(bf)
		perLane := float64(r.T.Nanoseconds()) / float64(r.N) / float64(lanes)
		tbl.AddRow("eval-batch", lanes, fmt.Sprintf("%.0f", perLane), fmt.Sprintf("%.2f", oneNS/perLane))
		tbl.AddMetric(fmt.Sprintf("eval/lanes%d/ns_op", lanes), perLane, "ns/op per lane")
		tbl.AddMetric(fmt.Sprintf("eval/lanes%d/speedup", lanes), oneNS/perLane, "x")
	}

	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; bnb speedup above 1 needs real cores, eval-batch amortisation does not", runtime.GOMAXPROCS(0)),
		fmt.Sprintf("instance: %d tree nodes, %d satellites, optimum delay %s, sequential explored %d nodes",
			len(tree.Preorder()), len(tree.Satellites()), trimFloat(seq.Delay), seq.Explored),
	)
	return tbl, nil
}
