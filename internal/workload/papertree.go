package workload

import (
	"repro/internal/model"
)

// PaperSatellites is the satellite (colour) order of the paper tree:
// R, Y, B, G as painted in Figure 5.
var PaperSatellites = []string{"R", "Y", "B", "G"}

// PaperTree reconstructs the 13-CRU tree of the paper's Figures 2/5/6/8
// with realistic numeric profiles. The structure is fixed by the figure
// evidence (see DESIGN.md):
//
//	CRU1 ── CRU2 ── CRU4 ── CRU9/CRU10/CRU11 (sensors on R)
//	   │       └── CRU5 (sensor on B)
//	   └── CRU3 ── CRU6 ── CRU13 (sensor on B)
//	           ├── CRU7 (sensor on Y)
//	           └── CRU8 ── CRU12 (sensor on G)
//
// Colour propagation makes ⟨CRU1,CRU2⟩ and ⟨CRU1,CRU3⟩ the conflicting
// edges, so exactly {CRU1, CRU2, CRU3} are pinned to the host — the
// configuration the paper describes in §5.1.
func PaperTree() *model.Tree {
	return buildPaperTree(paperProfile{
		h:   map[int]float64{1: 4, 2: 3, 3: 3, 4: 2, 5: 2, 6: 2, 7: 2, 8: 2, 9: 1, 10: 1, 11: 1, 12: 1, 13: 1},
		s:   map[int]float64{1: 10, 2: 7.5, 3: 7.5, 4: 5, 5: 5, 6: 5, 7: 5, 8: 5, 9: 2.5, 10: 2.5, 11: 2.5, 12: 2.5, 13: 2.5},
		c:   map[int]float64{2: 2, 3: 2, 4: 1.5, 5: 1, 6: 1.5, 7: 1, 8: 1, 9: 0.8, 10: 0.8, 11: 0.8, 12: 0.7, 13: 0.7},
		raw: 2.5,
	})
}

// PaperTreeSymbolic builds the same structure with "symbolic" profiles —
// every h_i, s_i and c_ij is a distinct identifiable constant
// (h_i = 2^i, s_i = 1000·i, c_{i,parent} = i, c_{s,i} = i/10) — so the
// Figure-8 σ-label identities and the §5.3 β examples can be asserted as
// exact sums in tests and in experiment E4.
func PaperTreeSymbolic() *model.Tree {
	p := paperProfile{
		h: map[int]float64{}, s: map[int]float64{}, c: map[int]float64{}, rawPerCRU: map[int]float64{},
	}
	for i := 1; i <= 13; i++ {
		p.h[i] = float64(int64(1) << uint(i)) // 2^i: sums are uniquely decodable
		p.s[i] = float64(1000 * i)
		p.c[i] = float64(i)
		p.rawPerCRU[i] = float64(i) / 10
	}
	return buildPaperTree(p)
}

// SymbolicH returns the symbolic host time h_i used by PaperTreeSymbolic.
func SymbolicH(i int) float64 { return float64(int64(1) << uint(i)) }

// SymbolicS returns the symbolic satellite time s_i used by PaperTreeSymbolic.
func SymbolicS(i int) float64 { return float64(1000 * i) }

// SymbolicC returns the symbolic communication cost c_{i,parent}.
func SymbolicC(i int) float64 { return float64(i) }

// SymbolicRaw returns the symbolic raw-frame cost c_{s,i} of the sensor
// feeding CRU i.
func SymbolicRaw(i int) float64 { return float64(i) / 10 }

type paperProfile struct {
	h, s, c   map[int]float64
	raw       float64
	rawPerCRU map[int]float64 // overrides raw when non-nil
}

func (p paperProfile) rawOf(i int) float64 {
	if p.rawPerCRU != nil {
		return p.rawPerCRU[i]
	}
	return p.raw
}

func buildPaperTree(p paperProfile) *model.Tree {
	b := model.NewBuilder()
	r := b.Satellite("R")
	y := b.Satellite("Y")
	blue := b.Satellite("B")
	g := b.Satellite("G")

	cru := make(map[int]model.NodeID, 13)
	cru[1] = b.Root("CRU1", p.h[1], p.s[1])
	cru[2] = b.Child(cru[1], "CRU2", p.h[2], p.s[2], p.c[2])
	cru[3] = b.Child(cru[1], "CRU3", p.h[3], p.s[3], p.c[3])
	cru[4] = b.Child(cru[2], "CRU4", p.h[4], p.s[4], p.c[4])
	cru[5] = b.Child(cru[2], "CRU5", p.h[5], p.s[5], p.c[5])
	cru[6] = b.Child(cru[3], "CRU6", p.h[6], p.s[6], p.c[6])
	cru[7] = b.Child(cru[3], "CRU7", p.h[7], p.s[7], p.c[7])
	cru[8] = b.Child(cru[3], "CRU8", p.h[8], p.s[8], p.c[8])
	cru[9] = b.Child(cru[4], "CRU9", p.h[9], p.s[9], p.c[9])
	cru[10] = b.Child(cru[4], "CRU10", p.h[10], p.s[10], p.c[10])
	cru[11] = b.Child(cru[4], "CRU11", p.h[11], p.s[11], p.c[11])
	cru[12] = b.Child(cru[8], "CRU12", p.h[12], p.s[12], p.c[12])
	cru[13] = b.Child(cru[6], "CRU13", p.h[13], p.s[13], p.c[13])

	b.Sensor(cru[9], "sensor9", r, p.rawOf(9))
	b.Sensor(cru[10], "sensor10", r, p.rawOf(10))
	b.Sensor(cru[11], "sensor11", r, p.rawOf(11))
	b.Sensor(cru[5], "sensor5", blue, p.rawOf(5))
	b.Sensor(cru[13], "sensor13", blue, p.rawOf(13))
	b.Sensor(cru[7], "sensor7", y, p.rawOf(7))
	b.Sensor(cru[12], "sensor12", g, p.rawOf(12))

	return b.MustBuild()
}
