package workload

import (
	"repro/internal/dwg"
	"repro/internal/model"
)

// Figure4 reconstructs the doubly weighted graph of the paper's Figure 4:
// three nodes S→M→T with four parallel ⟨σ,β⟩ edges on each side. Running
// the SSB algorithm on it reproduces the printed trace (candidates ∞ → 29 →
// 20, termination when the min-S weight 33 exceeds the candidate 20, and
// optimum 20 on the ⟨5,10⟩–⟨5,10⟩ path).
func Figure4() (g *dwg.Graph, src, dst int) {
	g = dwg.New(3)
	const s, m, t = 0, 1, 2
	g.AddEdge(s, m, 5, 10)
	g.AddEdge(s, m, 6, 8)
	g.AddEdge(s, m, 15, 10)
	g.AddEdge(s, m, 20, 9)
	g.AddEdge(m, t, 4, 20)
	g.AddEdge(m, t, 5, 10)
	g.AddEdge(m, t, 6, 12)
	g.AddEdge(m, t, 27, 8)
	return g, s, t
}

// Epilepsy builds the epilepsy tele-monitoring procedure of the paper's
// Figure 1: a patient's mobile terminal (host) connected to two sensor
// boxes; box-1 carries the ECG electrode, box-2 two accelerometers. The
// reasoning tree detects epileptic-seizure risk from ECG features fused
// with an activity classification:
//
//	seizure-risk (root, on terminal)
//	├── ecg-features ── qrs-detect ── ecg sensor          @box-1
//	└── activity ── acc-feat-1 ── accelerometer-1 sensor  @box-2
//	           └─── acc-feat-2 ── accelerometer-2 sensor  @box-2
//
// Profile regime (synthetic, see DESIGN.md): the sensor boxes are ~4×
// slower than the terminal, but raw bio-signals (256 Hz ECG, 3-axis
// accelerometers) cost far more to ship than extracted features, so the
// optimal assignment pushes feature extraction onto the boxes — the
// behaviour the paper's introduction motivates.
func Epilepsy() *model.Tree {
	b := model.NewBuilder()
	box1 := b.Satellite("box-1")
	box2 := b.Satellite("box-2")

	root := b.Root("seizure-risk", 3, 12)

	ecgF := b.Child(root, "ecg-features", 2, 8, 0.6)
	qrs := b.Child(ecgF, "qrs-detect", 1.5, 6, 0.8)
	b.Sensor(qrs, "ecg", box1, 9) // raw 256 Hz ECG stream

	act := b.Child(root, "activity", 1.5, 6, 0.5)
	a1 := b.Child(act, "acc-feat-1", 1, 4, 0.7)
	b.Sensor(a1, "accelerometer-1", box2, 5)
	a2 := b.Child(act, "acc-feat-2", 1, 4, 0.7)
	b.Sensor(a2, "accelerometer-2", box2, 5)

	return b.MustBuild()
}

// SNMP builds a network tele-monitoring procedure (§3 names "SNMP based
// network monitoring" as a second source of the model): a management
// station (host) polls three router agents (satellites); per-interface
// counters are smoothed on the agent, aggregated into per-router health,
// then fused into a network status.
func SNMP() *model.Tree {
	b := model.NewBuilder()
	routers := []model.SatelliteID{
		b.Satellite("router-1"),
		b.Satellite("router-2"),
		b.Satellite("router-3"),
	}
	root := b.Root("network-status", 2.5, 10)
	metrics := []struct {
		name string
		raw  float64
	}{
		{"if-octets", 3.0},
		{"cpu-load", 1.2},
		{"mem-usage", 1.2},
	}
	for i, r := range routers {
		health := b.Child(root, "health-"+string('1'+byte(i)), 1.2, 3.6, 0.4)
		for _, m := range metrics {
			smooth := b.Child(health, m.name+"-"+string('1'+byte(i)), 0.6, 1.8, 0.3)
			b.Sensor(smooth, m.name+"-probe-"+string('1'+byte(i)), r, m.raw)
		}
	}
	return b.MustBuild()
}
