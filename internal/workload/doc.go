// Package workload provides every problem instance the experiments run on:
// the canonical reconstruction of the paper's Figure-2/5/6/8 CRU tree, the
// Figure-4 doubly weighted graph, the epilepsy tele-monitoring scenario the
// paper's introduction motivates, an SNMP network-monitoring scenario (named
// in §3 as a second observation source), and parameterised random
// generators used by the property tests and the scaling experiments.
//
// The paper profiles real hardware ("analytical benchmarking or task
// profiling techniques", §5.3); the numeric profiles here are the synthetic
// substitute documented in DESIGN.md — chosen so that satellites are slower
// than the host (sensor boxes vs PDA) and raw sensor streams are bulkier
// than processed context, which is the regime that makes the assignment
// problem non-trivial.
package workload
