package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dwg"
	"repro/internal/model"
)

// RandomSpec parameterises Random. The zero value is not valid; use the
// fields below or DefaultRandomSpec.
type RandomSpec struct {
	CRUs       int  // number of processing CRUs, >= 1
	MaxArity   int  // maximum children per CRU, >= 1
	Satellites int  // number of satellites, >= 1
	Clustered  bool // contiguous satellite blocks (paper regime) vs scattered sensors

	// Profile scales. Host times are U(1,4)·HostScale; satellite times are
	// host·SatRatio·U(0.8,1.2); upward comms are U(0.2,1)·CommScale; raw
	// sensor frames cost RawFactor× their CRU's comm.
	HostScale float64
	SatRatio  float64
	CommScale float64
	RawFactor float64
}

// DefaultRandomSpec returns a sensible spec for n CRUs and k satellites in
// the paper's regime (satellites ~3× slower, raw frames ~4× bulkier).
func DefaultRandomSpec(n, k int) RandomSpec {
	return RandomSpec{
		CRUs: n, MaxArity: 3, Satellites: k, Clustered: true,
		HostScale: 1, SatRatio: 3, CommScale: 1, RawFactor: 4,
	}
}

// Random generates a random valid problem instance. The same rng state
// always yields the same tree (experiments pass seeded generators).
func Random(rng *rand.Rand, spec RandomSpec) *model.Tree {
	if spec.CRUs < 1 || spec.MaxArity < 1 || spec.Satellites < 1 {
		panic(fmt.Sprintf("workload: invalid RandomSpec %+v", spec))
	}
	b := model.NewBuilder()
	sats := make([]model.SatelliteID, spec.Satellites)
	for i := range sats {
		sats[i] = b.Satellite(fmt.Sprintf("sat-%d", i))
	}
	u := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	h := u(1, 4) * spec.HostScale
	root := b.Root("cru-0", h, h*spec.SatRatio*u(0.8, 1.2))
	opens := []model.NodeID{root}
	children := map[model.NodeID][]model.NodeID{}
	comm := map[model.NodeID]float64{root: u(0.2, 1) * spec.CommScale}

	for i := 1; i < spec.CRUs; i++ {
		// Attach to a random open slot; retire slots at MaxArity.
		j := rng.Intn(len(opens))
		parent := opens[j]
		h := u(1, 4) * spec.HostScale
		c := u(0.2, 1) * spec.CommScale
		id := b.Child(parent, fmt.Sprintf("cru-%d", i), h, h*spec.SatRatio*u(0.8, 1.2), c)
		comm[id] = c
		children[parent] = append(children[parent], id)
		if len(children[parent]) >= spec.MaxArity {
			opens[j] = opens[len(opens)-1]
			opens = opens[:len(opens)-1]
		}
		opens = append(opens, id)
	}

	// Every childless CRU gets 1–2 sensors, collected in planar (DFS)
	// order so that clustered satellite blocks produce contiguous colour
	// bands, the paper's regime.
	var leafCRUs []model.NodeID
	var dfs func(id model.NodeID)
	dfs = func(id model.NodeID) {
		if len(children[id]) == 0 {
			leafCRUs = append(leafCRUs, id)
			return
		}
		for _, c := range children[id] {
			dfs(c)
		}
	}
	dfs(root)

	sensorTotal := 0
	counts := make([]int, len(leafCRUs))
	for i := range leafCRUs {
		counts[i] = 1 + rng.Intn(2)
		sensorTotal += counts[i]
	}
	pos := 0
	for i, id := range leafCRUs {
		for k := 0; k < counts[i]; k++ {
			var sat model.SatelliteID
			if spec.Clustered {
				sat = sats[pos*spec.Satellites/sensorTotal]
			} else {
				sat = sats[rng.Intn(len(sats))]
			}
			b.Sensor(id, fmt.Sprintf("sensor-%d-%d", i, k), sat, comm[id]*spec.RawFactor*u(0.8, 1.2))
			pos++
		}
	}
	return b.MustBuild()
}

// RandomDWG generates a layered random doubly weighted graph with the given
// node budget, used by the generic-SSB scaling experiment (E7). It returns
// the graph and its two terminals. Every instance is connected.
func RandomDWG(rng *rand.Rand, nodes, extraEdges int) (g *dwg.Graph, src, dst int) {
	if nodes < 2 {
		nodes = 2
	}
	g = dwg.New(nodes)
	src, dst = 0, nodes-1
	// Hamiltonian spine guarantees connectivity.
	for v := 0; v+1 < nodes; v++ {
		g.AddEdge(v, v+1, float64(1+rng.Intn(20)), float64(1+rng.Intn(30)))
	}
	for k := 0; k < extraEdges; k++ {
		u := rng.Intn(nodes - 1)
		v := u + 1 + rng.Intn(nodes-1-u)
		g.AddEdge(u, v, float64(1+rng.Intn(20)), float64(1+rng.Intn(30)))
	}
	return g, src, dst
}
