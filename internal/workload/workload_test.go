package workload

import (
	"math/rand"
	"testing"

	"repro/internal/dwg"
	"repro/internal/model"
)

func TestPaperTreeShape(t *testing.T) {
	tree := PaperTree()
	if got := tree.ProcessingCount(); got != 13 {
		t.Fatalf("processing CRUs = %d, want 13", got)
	}
	if got := tree.SensorCount(); got != 7 {
		t.Fatalf("sensors = %d, want 7", got)
	}
	if got := len(tree.Satellites()); got != 4 {
		t.Fatalf("satellites = %d, want 4 (R Y B G)", got)
	}
	// Planar leaf order drives the assignment graph: R R R B B Y G.
	want := []string{"R", "R", "R", "B", "B", "Y", "G"}
	for i, leaf := range tree.Leaves() {
		if got := tree.SatelliteName(tree.Node(leaf).Satellite); got != want[i] {
			t.Errorf("leaf %d on %s, want %s", i, got, want[i])
		}
	}
}

func TestPaperTreeSymbolicProfiles(t *testing.T) {
	tree := PaperTreeSymbolic()
	for i := 1; i <= 13; i++ {
		name := "CRU" + itoa(i)
		id, ok := tree.NodeByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		n := tree.Node(id)
		if n.HostTime != SymbolicH(i) || n.SatTime != SymbolicS(i) {
			t.Errorf("%s: h=%v s=%v, want %v/%v", name, n.HostTime, n.SatTime, SymbolicH(i), SymbolicS(i))
		}
		if i > 1 && n.UpComm != SymbolicC(i) {
			t.Errorf("%s: c=%v, want %v", name, n.UpComm, SymbolicC(i))
		}
	}
}

func TestFigure4Workload(t *testing.T) {
	g, src, dst := Figure4()
	res, err := dwg.SSB(g, src, dst, dwg.Default)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 20 || len(res.Iterations) != 3 {
		t.Fatalf("Figure4: obj=%v iters=%d, want 20/3", res.Objective, len(res.Iterations))
	}
}

func TestEpilepsyScenario(t *testing.T) {
	tree := Epilepsy()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.SensorCount() != 3 || len(tree.Satellites()) != 2 {
		t.Fatalf("epilepsy shape: %v", tree)
	}
	// The raw streams must dominate processed context for the offloading
	// story to hold.
	ecg, _ := tree.NodeByName("ecg")
	qrs, _ := tree.NodeByName("qrs-detect")
	if tree.Node(ecg).UpComm <= tree.Node(qrs).UpComm {
		t.Error("raw ECG must be costlier to ship than QRS features")
	}
}

func TestSNMPScenario(t *testing.T) {
	tree := SNMP()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tree.Satellites()) != 3 {
		t.Fatalf("satellites = %d, want 3 routers", len(tree.Satellites()))
	}
	if tree.SensorCount() != 9 {
		t.Fatalf("sensors = %d, want 9 probes", tree.SensorCount())
	}
}

func TestRandomValidityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		spec := RandomSpec{
			CRUs:       1 + rng.Intn(40),
			MaxArity:   1 + rng.Intn(4),
			Satellites: 1 + rng.Intn(6),
			Clustered:  trial%2 == 0,
			HostScale:  0.5 + rng.Float64(),
			SatRatio:   1 + 3*rng.Float64(),
			CommScale:  0.5 + rng.Float64(),
			RawFactor:  1 + 4*rng.Float64(),
		}
		tree := Random(rng, spec)
		if err := tree.Validate(); err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, spec, err)
		}
		if tree.ProcessingCount() != spec.CRUs {
			t.Fatalf("trial %d: CRUs = %d, want %d", trial, tree.ProcessingCount(), spec.CRUs)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	spec := DefaultRandomSpec(20, 3)
	t1 := Random(rand.New(rand.NewSource(7)), spec)
	t2 := Random(rand.New(rand.NewSource(7)), spec)
	if t1.Render() != t2.Render() {
		t.Fatal("same seed must produce the same tree")
	}
}

func TestRandomClusteredContiguity(t *testing.T) {
	// Clustered mode assigns satellites in planar-order blocks, so bands
	// must be contiguous: positions of each satellite form one run.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		tree := Random(rng, DefaultRandomSpec(2+rng.Intn(25), 1+rng.Intn(4)))
		seen := map[model.SatelliteID]int{} // satellite -> last position
		closed := map[model.SatelliteID]bool{}
		prev := model.NoSatellite
		for _, leaf := range tree.Leaves() {
			sat := tree.Node(leaf).Satellite
			if sat != prev {
				if closed[sat] {
					t.Fatalf("trial %d: satellite %d appears in two bands", trial, sat)
				}
				if prev != model.NoSatellite {
					closed[prev] = true
				}
				prev = sat
			}
			seen[sat]++
		}
	}
}

func TestRandomPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Random(rand.New(rand.NewSource(1)), RandomSpec{})
}

func TestRandomDWGConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g, src, dst := RandomDWG(rng, 2+rng.Intn(50), rng.Intn(100))
		if _, err := dwg.SSB(g, src, dst, dwg.Default); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	// Degenerate size is clamped.
	g, src, dst := RandomDWG(rng, 0, 0)
	if g.NumNodes() != 2 || src != 0 || dst != 1 {
		t.Fatal("clamp to 2 nodes failed")
	}
}

func itoa(i int) string {
	if i < 10 {
		return string('0' + byte(i))
	}
	return string('0'+byte(i/10)) + string('0'+byte(i%10))
}
