package bokhari

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func TestSolversAgreeOnPaperTree(t *testing.T) {
	tree := workload.PaperTree()
	sb, err := SolveSB(tree)
	if err != nil {
		t.Fatal(err)
	}
	th, err := SolveThreshold(tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sb.Bottleneck-th.Bottleneck) > 1e-9 {
		t.Fatalf("SB %v != threshold %v", sb.Bottleneck, th.Bottleneck)
	}
	// Both cuts must evaluate to their reported bottleneck.
	for name, r := range map[string]*Result{"sb": sb, "threshold": th} {
		b, _, err := Evaluate(tree, r.Cut)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(b-r.Bottleneck) > 1e-9 {
			t.Fatalf("%s: cut evaluates to %v, reported %v", name, b, r.Bottleneck)
		}
	}
}

func TestSolversAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	for trial := 0; trial < 60; trial++ {
		spec := workload.DefaultRandomSpec(1+rng.Intn(25), 1+rng.Intn(4))
		spec.Clustered = trial%2 == 0
		tree := workload.Random(rng, spec)
		sb, err := SolveSB(tree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		th, err := SolveThreshold(tree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(sb.Bottleneck-th.Bottleneck) > 1e-9 {
			t.Fatalf("trial %d: SB %v != threshold %v\n%s", trial, sb.Bottleneck, th.Bottleneck, tree.Render())
		}
	}
}

func TestBottleneckBelowExhaustive(t *testing.T) {
	// On small trees, compare with exhaustive enumeration of all cuts.
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 30; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(1+rng.Intn(7), 1+rng.Intn(3)))
		want := exhaustiveBest(tree)
		got, err := SolveSB(tree)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Bottleneck-want) > 1e-9 {
			t.Fatalf("trial %d: SB %v != exhaustive %v\n%s", trial, got.Bottleneck, want, tree.Render())
		}
	}
}

// exhaustiveBest enumerates every antichain cut and minimises the
// bottleneck directly.
func exhaustiveBest(tree *model.Tree) float64 {
	best := math.Inf(1)
	var cut []model.NodeID
	var enumerate func(frontier []model.NodeID)
	enumerate = func(frontier []model.NodeID) {
		if len(frontier) == 0 {
			if b, _, err := Evaluate(tree, cut); err == nil && b < best {
				best = b
			}
			return
		}
		id := frontier[len(frontier)-1]
		rest := append([]model.NodeID(nil), frontier[:len(frontier)-1]...)
		n := tree.Node(id)
		// Option 1: cut here (not at the root).
		if n.Parent != model.None {
			cut = append(cut, id)
			enumerate(rest)
			cut = cut[:len(cut)-1]
		}
		// Option 2: host id, descend (sensors must be cut: raw uplink).
		if n.Kind == model.Processing {
			enumerate(append(rest, n.Children...))
		}
	}
	enumerate([]model.NodeID{tree.Root()})
	return best
}

func TestGreedyCutRespectsLimit(t *testing.T) {
	tree := workload.PaperTree()
	for _, limit := range []float64{0, 1, 5, 10, 100} {
		cut, _, maxSat, ok := greedyCut(tree, limit)
		if maxSat > limit {
			t.Fatalf("limit %v: maxSat %v exceeds it", limit, maxSat)
		}
		if !ok {
			continue // infeasible limit: nothing further to verify
		}
		// Cut subtrees must be disjoint (maximality implies it).
		seen := map[model.NodeID]bool{}
		for _, c := range cut {
			if seen[c] {
				t.Fatalf("duplicate cut %d", c)
			}
			seen[c] = true
			for _, d := range cut {
				if c != d && tree.IsAncestorOrSelf(c, d) {
					t.Fatalf("nested cut %d under %d", d, c)
				}
			}
		}
	}
}

func TestEvaluateRejectsPartialCut(t *testing.T) {
	tree := workload.PaperTree()
	cru4, _ := tree.NodeByName("CRU4")
	if _, _, err := Evaluate(tree, []model.NodeID{cru4}); err == nil {
		t.Fatal("partial cut accepted")
	}
}

func TestDelayOfCut(t *testing.T) {
	tree := workload.PaperTree()
	sb, err := SolveSB(tree)
	if err != nil {
		t.Fatal(err)
	}
	// On the paper tree, Bokhari's free cut may or may not be realisable
	// under pinning; if it is, its delay must be >= the paper's optimum.
	if d, ok := DelayOfCut(tree, sb.Cut); ok {
		if d <= 0 {
			t.Fatalf("delay %v", d)
		}
	}
	// A cut through a conflicting node is never realisable.
	cru2, _ := tree.NodeByName("CRU2")
	cru3, _ := tree.NodeByName("CRU3")
	if _, ok := DelayOfCut(tree, []model.NodeID{cru2, cru3}); ok {
		t.Fatal("multi-colour cut reported as realisable")
	}
}

func TestBokhariBeatsOrTiesPinnedOnBottleneck(t *testing.T) {
	// Removing the pinning constraint can only improve (or tie) the
	// bottleneck objective: Bokhari's optimum is a lower bound for any
	// pinned assignment's bottleneck.
	rng := rand.New(rand.NewSource(502))
	for trial := 0; trial < 30; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(1+rng.Intn(12), 1+rng.Intn(4)))
		free, err := SolveSB(tree)
		if err != nil {
			t.Fatal(err)
		}
		// Pinned bottleneck of the all-host assignment.
		asg := model.NewAssignment(tree)
		var maxSat float64
		perSat := map[model.SatelliteID]float64{}
		for _, leaf := range tree.Leaves() {
			n := tree.Node(leaf)
			perSat[n.Satellite] += n.UpComm
		}
		for _, v := range perSat {
			if v > maxSat {
				maxSat = v
			}
		}
		pinnedBottleneck := math.Max(tree.TotalHostTime(), maxSat)
		if free.Bottleneck > pinnedBottleneck+1e-9 {
			t.Fatalf("trial %d: free bottleneck %v worse than a pinned assignment's %v",
				trial, free.Bottleneck, pinnedBottleneck)
		}
		_ = asg
	}
}
