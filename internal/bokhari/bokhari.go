package bokhari

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dwg"
	"repro/internal/eval"
	"repro/internal/model"
)

// Result is an optimal Bokhari-style partition.
type Result struct {
	// Cut lists the children of the cut tree edges; each rooted subtree
	// runs on its own (free) satellite, everything above on the host.
	Cut []model.NodeID
	// Bottleneck is max(host load, max subtree load).
	Bottleneck float64
	// HostLoad is Σ h over the hosted part.
	HostLoad float64
	// Iterations (SB solver) or probes (threshold solver) performed.
	Iterations int
}

// ErrNoPartition is returned when the tree admits no cut (cannot happen
// for valid trees; kept for defensive symmetry).
var ErrNoPartition = errors.New("bokhari: no feasible partition")

// SolveSB finds the minimum-bottleneck partition with Bokhari's own
// method: build the (uncoloured) doubly weighted assignment graph — one
// dual edge per tree edge, σ from the Figure-8 labelling, β = subtree
// satellite load + uplink — and search the min-max(S,B) path with the SB
// algorithm.
func SolveSB(t *model.Tree) (*Result, error) {
	g, edgeChild := buildDWG(t)
	res, err := dwg.SB(g, 0, t.SensorCount())
	if err != nil {
		return nil, fmt.Errorf("bokhari: %w", err)
	}
	out := &Result{
		Bottleneck: res.Objective,
		HostLoad:   res.S,
		Iterations: len(res.Iterations),
	}
	for _, id := range res.PathEdges {
		out.Cut = append(out.Cut, edgeChild[id])
	}
	sort.Slice(out.Cut, func(i, j int) bool { return out.Cut[i] < out.Cut[j] })
	return out, nil
}

// buildDWG constructs the uncoloured assignment graph: identical faces and
// labels to the paper's coloured construction but with *every* tree edge
// represented (free satellites mean no conflicts).
func buildDWG(t *model.Tree) (*dwg.Graph, map[int]model.NodeID) {
	faces := t.SensorCount() + 1
	g := dwg.New(faces)
	edgeChild := make(map[int]model.NodeID)

	// σ labelling (same pre-order scheme as assign; reimplemented here so
	// the baseline stands alone).
	sigma := make([]float64, t.Len())
	wIn := make([]float64, t.Len())
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.Kind != model.Processing {
			continue
		}
		for k, c := range n.Children {
			label := 0.0
			if k == 0 {
				label = wIn[id] + n.HostTime
			}
			sigma[c] = label
			wIn[c] = label
		}
	}
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.Parent == model.None {
			continue
		}
		lo, hi := t.LeafRange(id)
		eid := g.AddEdge(lo, hi+1, sigma[id], t.SubtreeSatTime(id)+n.UpComm)
		edgeChild[eid] = id
	}
	return g, edgeChild
}

// SolveThreshold is the independent cross-check: enumerate candidate
// bottleneck values (all subtree loads and reachable host sums), binary
// search the smallest feasible one, where feasibility is decided by the
// greedy topmost cut: cut every maximal subtree whose satellite load fits
// under the threshold and check the remaining host load.
func SolveThreshold(t *model.Tree) (*Result, error) {
	// Candidate thresholds: subtree loads and the host sums the greedy cut
	// can produce. Host sums are determined by the chosen threshold, so
	// candidates = distinct subtree loads ∪ resulting host sums; iterating
	// over sorted subtree loads and probing each is simpler and exact:
	// the optimal bottleneck is either some subtree load (satellite side
	// binds) or the host sum at one of those cut levels.
	loads := map[float64]bool{}
	for _, id := range t.Preorder() {
		if t.Node(id).Parent == model.None {
			continue
		}
		loads[t.SubtreeSatTime(id)+t.Node(id).UpComm] = true
	}
	candidates := make([]float64, 0, len(loads))
	for v := range loads {
		candidates = append(candidates, v)
	}
	sort.Float64s(candidates)

	best := &Result{Bottleneck: math.Inf(1)}
	probe := func(limit float64) {
		best.Iterations++
		cut, hostLoad, maxSat, ok := greedyCut(t, limit)
		if !ok {
			return // some sensor cannot reach any satellite under this limit
		}
		b := math.Max(hostLoad, maxSat)
		if b < best.Bottleneck {
			best.Bottleneck = b
			best.HostLoad = hostLoad
			best.Cut = cut
		}
	}
	for _, c := range candidates {
		probe(c)
	}
	if math.IsInf(best.Bottleneck, 1) {
		return nil, ErrNoPartition
	}
	sort.Slice(best.Cut, func(i, j int) bool { return best.Cut[i] < best.Cut[j] })
	return best, nil
}

// greedyCut cuts every maximal subtree whose load fits under limit
// (topmost cuts dominate: they shed the most host work for one satellite)
// and returns the cut, the remaining host load and the largest satellite
// load actually used. ok is false when some sensor ends up above the cut —
// sensors can never execute on the host, so such a limit is infeasible.
func greedyCut(t *model.Tree, limit float64) (cut []model.NodeID, hostLoad, maxSat float64, ok bool) {
	ok = true
	var walk func(id model.NodeID)
	walk = func(id model.NodeID) {
		n := t.Node(id)
		if n.Parent != model.None {
			if load := t.SubtreeSatTime(id) + n.UpComm; load <= limit {
				cut = append(cut, id)
				if load > maxSat {
					maxSat = load
				}
				return
			}
		}
		if n.Kind == model.SensorKind {
			ok = false // uncut sensor: raw context cannot originate on the host
			return
		}
		hostLoad += n.HostTime
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root())
	return cut, hostLoad, maxSat, ok
}

// Evaluate computes the bottleneck of an arbitrary cut (for tests): the
// host keeps everything not under a cut edge; every cut subtree gets its
// own satellite.
func Evaluate(t *model.Tree, cut []model.NodeID) (bottleneck, hostLoad float64, err error) {
	inCut := map[model.NodeID]bool{}
	for _, c := range cut {
		inCut[c] = true
	}
	var maxSat float64
	covered := 0
	var walk func(id model.NodeID)
	walk = func(id model.NodeID) {
		n := t.Node(id)
		if inCut[id] {
			load := t.SubtreeSatTime(id) + n.UpComm
			if load > maxSat {
				maxSat = load
			}
			lo, hi := t.LeafRange(id)
			covered += hi - lo + 1
			return
		}
		hostLoad += n.HostTime
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root())
	if covered != t.SensorCount() {
		return 0, 0, fmt.Errorf("bokhari: cut covers %d of %d sensors", covered, t.SensorCount())
	}
	return math.Max(hostLoad, maxSat), hostLoad, nil
}

// DelayOfCut reports the *paper's* end-to-end delay the Bokhari partition
// would achieve if its free-satellite placement were realised on the pinned
// network — when that is even feasible (every cut subtree monochromatic).
// Used by experiment E14 to quantify the cost of ignoring sensor pinning.
func DelayOfCut(t *model.Tree, cut []model.NodeID) (float64, bool) {
	asg := model.NewAssignment(t)
	for _, id := range cut {
		sat, mono := t.CorrespondentSatellite(id)
		if !mono {
			return 0, false // the free placement is infeasible when pinned
		}
		stack := []model.NodeID{id}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if t.Node(v).Kind == model.Processing {
				asg.Set(v, model.OnSatellite(sat))
			}
			stack = append(stack, t.Node(v).Children...)
		}
	}
	d, err := eval.Delay(t, asg)
	if err != nil {
		return 0, false
	}
	return d, true
}
