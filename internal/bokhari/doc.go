// Package bokhari implements the system the paper modifies: Bokhari's
// original tree ↔ host–satellites mapping (IEEE Trans. Computers 1988),
// the §2 related-work baseline. It differs from the paper's problem in
// exactly the two aspects §2 lists:
//
//  1. satellites are *free*: there are as many satellites as cut subtrees
//     and any subtree may be placed on any satellite (sensors are not
//     pinned), so no colouring is needed and no edge ever conflicts;
//  2. the objective is the *bottleneck processing time*
//     max( host load, max over satellites of subtree load + uplink ),
//     not the end-to-end delay.
//
// Two independent solvers are provided and cross-validated: the original
// dual-graph + SB path search (reusing the dwg machinery on an uncoloured
// assignment graph), and a threshold search (binary search over candidate
// bottleneck values with a greedy topmost-cut feasibility test). The
// experiment E14 runs this baseline next to the paper's algorithm to make
// the two §2 differences measurable.
package bokhari
