package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/pool"
)

// Breakdown itemises the delay of one assignment.
type Breakdown struct {
	HostTime   float64                       // Σ h_i over host CRUs
	SatLoad    map[model.SatelliteID]float64 // per satellite: Σ s_i + Σ comm
	SatProc    map[model.SatelliteID]float64 // processing part only
	SatComm    map[model.SatelliteID]float64 // communication part only
	Bottleneck model.SatelliteID             // satellite attaining MaxSatLoad (NoSatellite if none)
	MaxSatLoad float64                       // max over satellites of SatLoad
	Delay      float64                       // HostTime + MaxSatLoad
	CutEdges   [][2]model.NodeID             // host→satellite crossings (parent, child)
}

// Evaluate validates the assignment and computes its delay breakdown.
// The breakdown is the reporting form (itemised maps, cut edges); hot
// loops use Delay or the Frame-based flat kernel instead.
func Evaluate(t *model.Tree, a *model.Assignment) (*Breakdown, error) {
	if err := a.Validate(t); err != nil {
		return nil, err
	}
	return evaluatePointer(t, a), nil
}

// Delay is Evaluate reduced to the scalar objective. It validates the
// assignment, then runs the flat kernel over the tree's compiled plan
// with pooled scratch — no per-call allocation after warm-up.
func Delay(t *model.Tree, a *model.Assignment) (float64, error) {
	if err := a.Validate(t); err != nil {
		return 0, err
	}
	c := model.Compile(t)
	f := frames.Get()
	d := AssignmentDelay(c, a, f)
	frames.Put(f)
	return d, nil
}

// MustDelay panics on invalid assignments; for use with solver outputs that
// are validated by construction.
func MustDelay(t *model.Tree, a *model.Assignment) float64 {
	d, err := Delay(t, a)
	if err != nil {
		panic(fmt.Sprintf("eval: solver produced invalid assignment: %v", err))
	}
	return d
}

// PointerDelay is the pointer-walking reference evaluation: node structs,
// per-satellite maps, no compiled plan. It is retained as the independent
// implementation the flat kernel is parity-tested against (the two are
// bit-identical: the flat sweep replays the same additions in the same
// pre-order) and as the baseline of BenchmarkCompiledVsPointer. The
// assignment must be feasible.
func PointerDelay(t *model.Tree, a *model.Assignment) float64 {
	return evaluatePointer(t, a).Delay
}

// Frame is the pooled scratch of the flat evaluation kernel: one
// per-satellite accumulator pair, checked out per solve and reused across
// every evaluation inside it.
type Frame struct {
	satProc, satComm []float64
}

var frames = pool.NewArena(func() *Frame { return new(Frame) })

// GetFrame checks a Frame out of the shared arena.
func GetFrame() *Frame { return frames.Get() }

// PutFrame returns a Frame to the shared arena.
func PutFrame(f *Frame) { frames.Put(f) }

// FlatDelay computes the delay of a feasible position-indexed location
// vector against the compiled plan, with zero allocation. The sweep runs
// in pre-order and keeps processing and communication accumulators apart,
// replaying the pointer walk's floating-point operations exactly, so
// FlatDelay and PointerDelay agree to the last bit.
func FlatDelay(c *model.Compiled, loc []model.Location, f *Frame) float64 {
	f.satProc = pool.Slice(f.satProc, c.NumSats)
	f.satComm = pool.Slice(f.satComm, c.NumSats)
	var host float64
	for _, p := range c.Pre {
		l := loc[p]
		if c.Proc[p] {
			if l.IsHost() {
				host += c.HostTime[p]
			} else if sat, ok := l.Satellite(); ok {
				f.satProc[sat] += c.SatTime[p]
			}
		}
		if par := c.Parent[p]; par >= 0 && loc[par].IsHost() && !l.IsHost() {
			sat, _ := l.Satellite()
			f.satComm[sat] += c.UpComm[p]
		}
	}
	return host + f.maxLoad()
}

// AssignmentDelay is FlatDelay for a NodeID-indexed assignment: the same
// flat sweep, reading locations through the post-order permutation.
func AssignmentDelay(c *model.Compiled, a *model.Assignment, f *Frame) float64 {
	f.satProc = pool.Slice(f.satProc, c.NumSats)
	f.satComm = pool.Slice(f.satComm, c.NumSats)
	var host float64
	for _, p := range c.Pre {
		l := a.Loc[c.Post[p]]
		if c.Proc[p] {
			if l.IsHost() {
				host += c.HostTime[p]
			} else if sat, ok := l.Satellite(); ok {
				f.satProc[sat] += c.SatTime[p]
			}
		}
		if par := c.Parent[p]; par >= 0 && a.Loc[c.Post[par]].IsHost() && !l.IsHost() {
			sat, _ := l.Satellite()
			f.satComm[sat] += c.UpComm[p]
		}
	}
	return host + f.maxLoad()
}

// maxLoad returns the bottleneck satellite load of the accumulated sweep.
// Satellites the sweep never touched hold 0, which can never exceed a
// touched satellite's non-negative load, so the maximum matches the
// pointer walk's max over its sparse maps.
func (f *Frame) maxLoad() float64 {
	var b float64
	for s := range f.satProc {
		if v := f.satProc[s] + f.satComm[s]; v > b {
			b = v
		}
	}
	return b
}

// evaluatePointer is the pointer-based breakdown walk (the original
// implementation): it itemises per-satellite loads into maps and gathers
// the cut edges, which the reporting paths want and the hot paths do not.
func evaluatePointer(t *model.Tree, a *model.Assignment) *Breakdown {
	b := &Breakdown{
		SatLoad:    map[model.SatelliteID]float64{},
		SatProc:    map[model.SatelliteID]float64{},
		SatComm:    map[model.SatelliteID]float64{},
		Bottleneck: model.NoSatellite,
	}
	for _, id := range t.Preorder() {
		n := t.Node(id)
		loc := a.At(id)
		if n.Kind == model.Processing {
			if loc.IsHost() {
				b.HostTime += n.HostTime
			} else if sat, ok := loc.Satellite(); ok {
				b.SatProc[sat] += n.SatTime
			}
		}
		// Communication: edges crossing from a host parent into a
		// satellite-resident child (processing results or raw frames must
		// travel the satellite's uplink).
		if n.Parent != model.None && a.At(n.Parent).IsHost() && !loc.IsHost() {
			sat, _ := loc.Satellite()
			b.SatComm[sat] += n.UpComm
			b.CutEdges = append(b.CutEdges, [2]model.NodeID{n.Parent, id})
		}
	}
	for sat := range b.SatProc {
		b.SatLoad[sat] += b.SatProc[sat]
	}
	for sat := range b.SatComm {
		b.SatLoad[sat] += b.SatComm[sat]
	}
	for sat, load := range b.SatLoad {
		if load > b.MaxSatLoad || (load == b.MaxSatLoad && (b.Bottleneck == model.NoSatellite || sat < b.Bottleneck)) {
			b.MaxSatLoad = load
			b.Bottleneck = sat
		}
	}
	b.Delay = b.HostTime + b.MaxSatLoad
	return b
}

// Report renders the breakdown for CLIs and experiment tables.
func (b *Breakdown) Report(t *model.Tree) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "host processing: %.4g\n", b.HostTime)
	sats := make([]model.SatelliteID, 0, len(b.SatLoad))
	for sat := range b.SatLoad {
		sats = append(sats, sat)
	}
	sort.Slice(sats, func(i, j int) bool { return sats[i] < sats[j] })
	for _, sat := range sats {
		mark := ""
		if sat == b.Bottleneck {
			mark = "  <- bottleneck"
		}
		fmt.Fprintf(&sb, "satellite %-10s proc %.4g + comm %.4g = %.4g%s\n",
			t.SatelliteName(sat), b.SatProc[sat], b.SatComm[sat], b.SatLoad[sat], mark)
	}
	fmt.Fprintf(&sb, "end-to-end delay: %.6g\n", b.Delay)
	return sb.String()
}
