package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Breakdown itemises the delay of one assignment.
type Breakdown struct {
	HostTime   float64                       // Σ h_i over host CRUs
	SatLoad    map[model.SatelliteID]float64 // per satellite: Σ s_i + Σ comm
	SatProc    map[model.SatelliteID]float64 // processing part only
	SatComm    map[model.SatelliteID]float64 // communication part only
	Bottleneck model.SatelliteID             // satellite attaining MaxSatLoad (NoSatellite if none)
	MaxSatLoad float64                       // max over satellites of SatLoad
	Delay      float64                       // HostTime + MaxSatLoad
	CutEdges   [][2]model.NodeID             // host→satellite crossings (parent, child)
}

// Evaluate validates the assignment and computes its delay breakdown.
func Evaluate(t *model.Tree, a *model.Assignment) (*Breakdown, error) {
	if err := a.Validate(t); err != nil {
		return nil, err
	}
	return evaluateUnchecked(t, a), nil
}

// Delay is Evaluate reduced to the scalar objective.
func Delay(t *model.Tree, a *model.Assignment) (float64, error) {
	b, err := Evaluate(t, a)
	if err != nil {
		return 0, err
	}
	return b.Delay, nil
}

// MustDelay panics on invalid assignments; for use with solver outputs that
// are validated by construction.
func MustDelay(t *model.Tree, a *model.Assignment) float64 {
	d, err := Delay(t, a)
	if err != nil {
		panic(fmt.Sprintf("eval: solver produced invalid assignment: %v", err))
	}
	return d
}

func evaluateUnchecked(t *model.Tree, a *model.Assignment) *Breakdown {
	b := &Breakdown{
		SatLoad:    map[model.SatelliteID]float64{},
		SatProc:    map[model.SatelliteID]float64{},
		SatComm:    map[model.SatelliteID]float64{},
		Bottleneck: model.NoSatellite,
	}
	for _, id := range t.Preorder() {
		n := t.Node(id)
		loc := a.At(id)
		if n.Kind == model.Processing {
			if loc.IsHost() {
				b.HostTime += n.HostTime
			} else if sat, ok := loc.Satellite(); ok {
				b.SatProc[sat] += n.SatTime
			}
		}
		// Communication: edges crossing from a host parent into a
		// satellite-resident child (processing results or raw frames must
		// travel the satellite's uplink).
		if n.Parent != model.None && a.At(n.Parent).IsHost() && !loc.IsHost() {
			sat, _ := loc.Satellite()
			b.SatComm[sat] += n.UpComm
			b.CutEdges = append(b.CutEdges, [2]model.NodeID{n.Parent, id})
		}
	}
	for sat := range b.SatProc {
		b.SatLoad[sat] += b.SatProc[sat]
	}
	for sat := range b.SatComm {
		b.SatLoad[sat] += b.SatComm[sat]
	}
	for sat, load := range b.SatLoad {
		if load > b.MaxSatLoad || (load == b.MaxSatLoad && (b.Bottleneck == model.NoSatellite || sat < b.Bottleneck)) {
			b.MaxSatLoad = load
			b.Bottleneck = sat
		}
	}
	b.Delay = b.HostTime + b.MaxSatLoad
	return b
}

// Report renders the breakdown for CLIs and experiment tables.
func (b *Breakdown) Report(t *model.Tree) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "host processing: %.4g\n", b.HostTime)
	sats := make([]model.SatelliteID, 0, len(b.SatLoad))
	for sat := range b.SatLoad {
		sats = append(sats, sat)
	}
	sort.Slice(sats, func(i, j int) bool { return sats[i] < sats[j] })
	for _, sat := range sats {
		mark := ""
		if sat == b.Bottleneck {
			mark = "  <- bottleneck"
		}
		fmt.Fprintf(&sb, "satellite %-10s proc %.4g + comm %.4g = %.4g%s\n",
			t.SatelliteName(sat), b.SatProc[sat], b.SatComm[sat], b.SatLoad[sat], mark)
	}
	fmt.Fprintf(&sb, "end-to-end delay: %.6g\n", b.Delay)
	return sb.String()
}
