package eval

import (
	"repro/internal/model"
	"repro/internal/pool"
)

// BatchFrame is the pooled scratch of the batch evaluation kernel: K
// lanes of per-satellite accumulator pairs, flattened lane-major so one
// node's K updates touch K strided slots of one backing array. Frames
// live in a striped per-P free list rather than a sync.Pool, so the
// parallel consumers (genetic populations, annealing restart packs,
// worker fleets) stay at zero steady-state allocations across GC cycles.
type BatchFrame struct {
	satProc, satComm []float64 // lane k, satellite s at [k*numSats+s]
	host             []float64 // per-lane host-time accumulator
}

var batchFrames = pool.NewStriped(func() *BatchFrame { return new(BatchFrame) })

// GetBatchFrame checks a BatchFrame out of the striped arena.
func GetBatchFrame() *BatchFrame { return batchFrames.Get() }

// PutBatchFrame returns a BatchFrame to the striped arena.
func PutBatchFrame(f *BatchFrame) { batchFrames.Put(f) }

// FlatDelayBatch evaluates K candidate location vectors against the
// compiled plan in one pre-order traversal, writing each lane's delay to
// out[k]. Every locs[k] must be a feasible position-indexed vector of
// length c.Len(), and out must have length len(locs).
//
// The kernel is the data-parallel form of FlatDelay: the plan's arrays
// are swept once and each node's contribution is applied to all K
// accumulator lanes, so evaluating a population costs one pass over the
// plan instead of K. Per lane the floating-point additions happen in
// exactly the order FlatDelay performs them, so each out[k] is
// bit-identical to FlatDelay(c, locs[k], f) — the property
// FuzzFlatDelayBatch pins and the batch consumers' determinism tests
// (identical results at any lane width) rely on.
func FlatDelayBatch(c *model.Compiled, locs [][]model.Location, out []float64, f *BatchFrame) {
	k := len(locs)
	if k == 0 {
		return
	}
	if len(out) != k {
		panic("eval: FlatDelayBatch out length != lane count")
	}
	ns := c.NumSats
	f.satProc = pool.Slice(f.satProc, k*ns)
	f.satComm = pool.Slice(f.satComm, k*ns)
	f.host = pool.Slice(f.host, k)
	for _, p := range c.Pre {
		// Per-node plan reads hoisted out of the lane loop: the inner body
		// is pure lane-local accumulator traffic.
		par := c.Parent[p]
		proc := c.Proc[p]
		ht, st, up := c.HostTime[p], c.SatTime[p], c.UpComm[p]
		row := 0
		for lane := 0; lane < k; lane++ {
			loc := locs[lane]
			l := loc[p]
			onHost := l.IsHost()
			if proc {
				if onHost {
					f.host[lane] += ht
				} else if sat, ok := l.Satellite(); ok {
					f.satProc[row+int(sat)] += st
				}
			}
			if par >= 0 && !onHost && loc[par].IsHost() {
				sat, _ := l.Satellite()
				f.satComm[row+int(sat)] += up
			}
			row += ns
		}
	}
	for lane := 0; lane < k; lane++ {
		var b float64
		for s := 0; s < ns; s++ {
			if v := f.satProc[lane*ns+s] + f.satComm[lane*ns+s]; v > b {
				b = v
			}
		}
		out[lane] = f.host[lane] + b
	}
}
