// Package eval computes the paper's objective function for a concrete
// assignment: the end-to-end processing and communication delay
//
//	delay(A) = Σ_{CRU on host} h_i
//	         + max over satellites c ( Σ_{CRU on c} s_i + Σ_{cut edges into c} comm )
//
// (§3: "minimize the summation of maximum processing time spent at the
// satellite (including the time to transmit context from the satellite to
// the host) and the processing time required at host machine").
//
// Every solver in this repository is validated against this function: the
// S and coloured-B weights of an S→T path in the assignment graph must add
// up to exactly the value computed here for the decoded assignment.
//
// Two implementations compute the same number: the flat kernel
// (FlatDelay/AssignmentDelay) sweeps the tree's compiled plan with
// pooled scratch and zero allocation, and the pointer walk
// (PointerDelay, Evaluate's breakdown) remains as the itemising
// reporting path and the reference the kernel is parity-tested against.
// The kernel replays the pointer walk's additions in the same pre-order,
// so the two agree bit for bit, not approximately.
package eval
