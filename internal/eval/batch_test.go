package eval

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// decodeCuts fills loc with a feasible assignment derived from an
// arbitrary bit string: walking the plan in pre-order, the subtree of a
// monochromatic non-root CRU sinks to its satellite when its bit is set
// (bits below a cut are skipped), exactly the genetic genome decoding.
// Any byte string therefore maps to a feasible location vector, which is
// what lets the fuzzer drive the kernel with raw input.
func decodeCuts(c *model.Compiled, bits []byte, loc []model.Location) {
	c.BaseLocations(loc)
	if len(bits) == 0 {
		return
	}
	site := 0
	for i := 0; i < len(c.Pre); {
		p := c.Pre[i]
		if c.Proc[p] && p != c.RootPos && c.Colour[p] != model.NoSatellite {
			bit := bits[site%len(bits)]>>(site%8)&1 == 1
			site++
			if bit {
				c.FillSpan(loc, p, model.OnSatellite(c.Colour[p]))
				i += int(p - c.Start[p] + 1)
				continue
			}
		}
		i++
	}
}

// TestFlatDelayBatchParity: for random instances and random feasible
// lane sets of every width, each batch lane is bit-identical to an
// independent FlatDelay call — and, transitively, to PointerDelay.
func TestFlatDelayBatchParity(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := workload.DefaultRandomSpec(8+int(seed)*5, 2+int(seed)%4)
		spec.Clustered = seed%2 == 0
		tree := workload.Random(rng, spec)
		c := model.Compile(tree)

		for _, lanes := range []int{1, 2, 3, 8, 17} {
			locs := make([][]model.Location, lanes)
			bits := make([]byte, 16)
			for k := range locs {
				locs[k] = make([]model.Location, c.Len())
				rng.Read(bits)
				decodeCuts(c, bits, locs[k])
			}
			out := make([]float64, lanes)
			bf := GetBatchFrame()
			FlatDelayBatch(c, locs, out, bf)
			PutBatchFrame(bf)

			fr := GetFrame()
			for k := range locs {
				if want := FlatDelay(c, locs[k], fr); out[k] != want {
					t.Fatalf("seed %d lanes %d lane %d: batch %v != FlatDelay %v", seed, lanes, k, out[k], want)
				}
				asg := model.NewAssignment(tree)
				c.StoreAssignment(asg, locs[k])
				if want := PointerDelay(tree, asg); out[k] != want {
					t.Fatalf("seed %d lanes %d lane %d: batch %v != PointerDelay %v", seed, lanes, k, out[k], want)
				}
			}
			PutFrame(fr)
		}
	}
}

// TestFlatDelayBatchEmptyAndMismatch pins the edge contract: zero lanes
// is a no-op and a mismatched out slice panics loudly.
func TestFlatDelayBatchEmptyAndMismatch(t *testing.T) {
	tree := workload.PaperTree()
	c := model.Compile(tree)
	bf := GetBatchFrame()
	defer PutBatchFrame(bf)
	FlatDelayBatch(c, nil, nil, bf) // no lanes: must not touch anything

	defer func() {
		if recover() == nil {
			t.Fatal("mismatched out length did not panic")
		}
	}()
	loc := make([]model.Location, c.Len())
	c.BaseLocations(loc)
	FlatDelayBatch(c, [][]model.Location{loc}, make([]float64, 2), bf)
}

// FuzzFlatDelayBatch cross-checks the batch kernel against K independent
// FlatDelay calls on assignments decoded from arbitrary fuzz input.
func FuzzFlatDelayBatch(f *testing.F) {
	f.Add(int64(1), uint8(3), []byte{0x00})
	f.Add(int64(7), uint8(1), []byte{0xff, 0x0f})
	f.Add(int64(42), uint8(9), []byte{0xa5, 0x5a, 0x33, 0xcc})
	f.Fuzz(func(t *testing.T, treeSeed int64, lanes uint8, bits []byte) {
		k := int(lanes%16) + 1
		rng := rand.New(rand.NewSource(treeSeed))
		spec := workload.DefaultRandomSpec(6+int(uint64(treeSeed)%30), 2+int(uint64(treeSeed)%3))
		tree := workload.Random(rng, spec)
		c := model.Compile(tree)

		locs := make([][]model.Location, k)
		for i := range locs {
			locs[i] = make([]model.Location, c.Len())
			// Rotate the bit string per lane so lanes differ.
			lane := bits
			if len(bits) > 0 {
				lane = append(append([]byte(nil), bits[i%len(bits):]...), bits[:i%len(bits)]...)
			}
			decodeCuts(c, lane, locs[i])
		}
		out := make([]float64, k)
		bf := GetBatchFrame()
		FlatDelayBatch(c, locs, out, bf)
		PutBatchFrame(bf)

		fr := GetFrame()
		defer PutFrame(fr)
		for i := range locs {
			if want := FlatDelay(c, locs[i], fr); out[i] != want {
				t.Fatalf("lane %d/%d: batch %v != scalar %v", i, k, out[i], want)
			}
		}
	})
}
