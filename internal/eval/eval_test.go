package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/colouring"
	"repro/internal/model"
	"repro/internal/workload"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAllOnHostDelay(t *testing.T) {
	tree := workload.PaperTree()
	a := model.NewAssignment(tree)
	b, err := Evaluate(tree, a)
	if err != nil {
		t.Fatal(err)
	}
	// All CRUs on host: host time = Σ h_i; every sensor edge is cut, so each
	// satellite's load is the sum of its raw frame costs (2.5 each):
	// R has 3 sensors (7.5), B has 2 (5), Y and G one each (2.5).
	if !almost(b.HostTime, tree.TotalHostTime()) {
		t.Errorf("HostTime = %v, want %v", b.HostTime, tree.TotalHostTime())
	}
	if !almost(b.MaxSatLoad, 7.5) {
		t.Errorf("MaxSatLoad = %v, want 7.5 (3 raw frames on R)", b.MaxSatLoad)
	}
	if !almost(b.Delay, tree.TotalHostTime()+7.5) {
		t.Errorf("Delay = %v", b.Delay)
	}
	if got := tree.SatelliteName(b.Bottleneck); got != "R" {
		t.Errorf("bottleneck = %s, want R", got)
	}
	if len(b.CutEdges) != tree.SensorCount() {
		t.Errorf("cut edges = %d, want %d sensor edges", len(b.CutEdges), tree.SensorCount())
	}
}

func TestTopmostDelayHandComputed(t *testing.T) {
	tree := workload.PaperTree()
	an := colouring.Analyse(tree)
	asg := an.FeasibleTopmost()
	b, err := Evaluate(tree, asg)
	if err != nil {
		t.Fatal(err)
	}
	// Host: CRU1+CRU2+CRU3 = 4+3+3 = 10.
	if !almost(b.HostTime, 10) {
		t.Errorf("HostTime = %v, want 10", b.HostTime)
	}
	// R: CRU4,9,10,11 proc = 5+2.5·3 = 12.5; comm = c4 = 1.5 → 14.
	// B: CRU5 (5, comm 1) + CRU6+CRU13 (5+2.5, comm 1.5) → 15.
	// Y: CRU7 5 + 1 = 6.  G: CRU8+CRU12 = 7.5 + 1 = 8.5.
	wantLoads := map[string]float64{"R": 14, "B": 15, "Y": 6, "G": 8.5}
	for _, sat := range tree.Satellites() {
		if !almost(b.SatLoad[sat.ID], wantLoads[sat.Name]) {
			t.Errorf("load(%s) = %v, want %v", sat.Name, b.SatLoad[sat.ID], wantLoads[sat.Name])
		}
	}
	if !almost(b.Delay, 25) {
		t.Errorf("Delay = %v, want 10 + 15 = 25", b.Delay)
	}
	if got := tree.SatelliteName(b.Bottleneck); got != "B" {
		t.Errorf("bottleneck = %s, want B", got)
	}
}

func TestPartialAssignment(t *testing.T) {
	// Sink only region CRU4 (satellite R): host keeps CRU1,2,3,5,6,7,8,12,13.
	tree := workload.PaperTree()
	asg := model.NewAssignment(tree)
	for _, name := range []string{"CRU4", "CRU9", "CRU10", "CRU11"} {
		id, _ := tree.NodeByName(name)
		asg.Set(id, model.OnSatellite(0)) // R is the first registered satellite
	}
	b, err := Evaluate(tree, asg)
	if err != nil {
		t.Fatal(err)
	}
	// Host: all h (25) minus (h4+h9+h10+h11) = 25 - 5 = 20.
	if !almost(b.HostTime, 20) {
		t.Errorf("HostTime = %v, want 20", b.HostTime)
	}
	// R: proc s4 + 3·s9 = 5 + 7.5 = 12.5; comm c4 = 1.5 → 14.
	// B: two raw frames = 5; Y: 2.5; G: 2.5.
	if !almost(b.SatLoad[0], 14) {
		t.Errorf("load(R) = %v, want 14", b.SatLoad[0])
	}
	if !almost(b.Delay, 20+14) {
		t.Errorf("Delay = %v, want 34", b.Delay)
	}
}

func TestEvaluateRejectsInvalid(t *testing.T) {
	tree := workload.PaperTree()
	asg := model.NewAssignment(tree)
	cru2, _ := tree.NodeByName("CRU2")
	asg.Set(cru2, model.OnSatellite(0)) // CRU2 spans R and B: infeasible
	if _, err := Evaluate(tree, asg); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := Delay(tree, asg); err == nil {
		t.Fatal("Delay must propagate validation error")
	}
}

func TestMustDelayPanics(t *testing.T) {
	tree := workload.PaperTree()
	asg := model.NewAssignment(tree)
	cru2, _ := tree.NodeByName("CRU2")
	asg.Set(cru2, model.OnSatellite(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustDelay(tree, asg)
}

func TestBottleneckTieBreak(t *testing.T) {
	// Two satellites with equal load: the smaller ID wins deterministically.
	b := model.NewBuilder()
	s0 := b.Satellite("a")
	s1 := b.Satellite("b")
	root := b.Root("root", 1, 0)
	c0 := b.Child(root, "c0", 1, 2, 0.5)
	b.Sensor(c0, "x0", s0, 1)
	c1 := b.Child(root, "c1", 1, 2, 0.5)
	b.Sensor(c1, "x1", s1, 1)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	asg := model.NewAssignment(tree)
	asg.Set(c0, model.OnSatellite(s0))
	asg.Set(c1, model.OnSatellite(s1))
	bd, err := Evaluate(tree, asg)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Bottleneck != s0 {
		t.Errorf("tie-break bottleneck = %v, want %v", bd.Bottleneck, s0)
	}
	if !almost(bd.Delay, 1+2.5) {
		t.Errorf("Delay = %v, want 3.5", bd.Delay)
	}
}

func TestNoCommWhenParentOnSameSatellite(t *testing.T) {
	tree := workload.Epilepsy()
	// Put the whole ECG chain on box-1: no comm for the raw sensor edge,
	// only the processed ecg-features -> seizure-risk hop.
	asg := model.NewAssignment(tree)
	ecgF, _ := tree.NodeByName("ecg-features")
	qrs, _ := tree.NodeByName("qrs-detect")
	asg.Set(ecgF, model.OnSatellite(0))
	asg.Set(qrs, model.OnSatellite(0))
	bd, err := Evaluate(tree, asg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(bd.SatComm[0], 0.6) {
		t.Errorf("box-1 comm = %v, want just 0.6 (ecg-features uplink)", bd.SatComm[0])
	}
	if !almost(bd.SatProc[0], 14) {
		t.Errorf("box-1 proc = %v, want 8+6", bd.SatProc[0])
	}
}

func TestReport(t *testing.T) {
	tree := workload.PaperTree()
	bd, err := Evaluate(tree, model.NewAssignment(tree))
	if err != nil {
		t.Fatal(err)
	}
	r := bd.Report(tree)
	for _, want := range []string{"host processing", "bottleneck", "end-to-end delay"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}
