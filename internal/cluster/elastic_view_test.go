package cluster

import (
	"testing"
	"time"
)

// TestElasticViewReleasesRemovedPeer is the membership-leak check: a
// peer voted out of the view disappears from the probe snapshot and its
// breaker state is dropped with the old view, while survivors keep
// their failure history.
func TestElasticViewReleasesRemovedPeer(t *testing.T) {
	a, b, c := "http://a:1", "http://b:1", "http://c:1"
	cl := testCluster(t, a, []string{a, b, c}, Config{
		VirtualNodes: 16, Epoch: 1,
		BreakerThreshold: 3, BreakerCooldown: time.Hour,
	})
	defer cl.Stop()

	survivor := cl.breaker(c)
	if survivor == nil || cl.breaker(b) == nil {
		t.Fatal("peers should start with breakers")
	}
	survivor.Failure() // history that must survive the view change

	if _, applied := cl.ApplyView(2, []string{a, c}); !applied {
		t.Fatal("view 2 not applied")
	}

	if got := cl.breaker(b); got != nil {
		t.Errorf("removed peer %s still holds a breaker", b)
	}
	if got := cl.breaker(c); got != survivor {
		t.Errorf("survivor %s got a fresh breaker; failure history amnestied", c)
	}
	for _, n := range cl.Snapshot() {
		if n.ID == b {
			t.Errorf("removed peer %s still in the probe snapshot", b)
		}
	}
	if got := len(cl.Members()); got != 2 {
		t.Errorf("members = %d, want 2", got)
	}

	// Rejoin at a higher epoch: probed again, with a fresh breaker.
	if _, applied := cl.ApplyView(3, []string{a, b, c}); !applied {
		t.Fatal("view 3 not applied")
	}
	if cl.breaker(b) == nil {
		t.Errorf("rejoined peer %s has no breaker", b)
	}
	found := false
	for _, n := range cl.Snapshot() {
		found = found || n.ID == b
	}
	if !found {
		t.Errorf("rejoined peer %s missing from the probe snapshot", b)
	}
}

// TestElasticRetiredTagResolves keeps departed members nameable: a
// drained node serves relocation tombstones for the sessions it pushed
// away, so third nodes routing by ID tag must still reach it after the
// view flip — until a live member reclaims the tag.
func TestElasticRetiredTagResolves(t *testing.T) {
	a, b := "http://a:1", "http://b:1"
	cl := testCluster(t, a, []string{a, b}, Config{VirtualNodes: 16, Epoch: 1})
	defer cl.Stop()

	if _, applied := cl.ApplyView(2, []string{a}); !applied {
		t.Fatal("view 2 not applied")
	}
	if node, ok := cl.NodeByTag(Tag(b)); !ok || node != b {
		t.Fatalf("NodeByTag(departed) = %q, %v; want %q, true", node, ok, b)
	}
	if _, ok := cl.NodeByTag("nosuchtag"); ok {
		t.Error("unknown tag resolved")
	}

	// The node comes back: the live entry wins and the retired one is
	// dropped from the next view.
	if _, applied := cl.ApplyView(3, []string{a, b}); !applied {
		t.Fatal("view 3 not applied")
	}
	if node, ok := cl.NodeByTag(Tag(b)); !ok || node != b {
		t.Fatalf("NodeByTag(rejoined) = %q, %v; want live %q", node, ok, b)
	}
}
