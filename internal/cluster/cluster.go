package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
)

// maxForwardBody caps how much of a peer's response one forward buffers
// (batches can be large; a misbehaving peer must not OOM the proxy).
const maxForwardBody = 64 << 20

// Config parameterises one node's view of the fleet.
type Config struct {
	// Self is this node's advertised base URL (required; it is the node's
	// identity on the ring).
	Self string
	// Peers are the other nodes' base URLs (initial seed list; the view
	// can grow and shrink at runtime via ApplyView).
	Peers []string
	// Epoch numbers the initial membership view (default 0). Any view
	// applied at runtime must carry a strictly higher epoch.
	Epoch uint64
	// VirtualNodes per member on the ring (default 64).
	VirtualNodes int
	// ProbeInterval is the health-probe period (default 2s).
	ProbeInterval time.Duration
	// FailThreshold is the consecutive probe failures declaring a peer
	// dead (default 3).
	FailThreshold int
	// HedgeDelay is how long a forward waits on the primary before racing
	// the next replica (default 50ms).
	HedgeDelay time.Duration
	// BreakerThreshold/BreakerCooldown tune the per-peer circuit breakers
	// (defaults 3 failures / 3s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client issues forwards and probes (default: dedicated client with
	// no global timeout; per-request contexts bound each call).
	Client *http.Client
}

// Stats is a snapshot of the node's routing counters.
type Stats struct {
	Forwards        int64 `json:"forwards"`         // requests answered by a peer
	ForwardFailures int64 `json:"forward_failures"` // per-attempt transport/5xx failures
	Hedges          int64 `json:"hedges"`           // secondary attempts raced against a slow primary
	LocalFallbacks  int64 `json:"local_fallbacks"`  // peer-owned solves served locally (owners down)
	ScatterBatches  int64 `json:"scatter_batches"`  // batches split by owner and fanned out
	Redirects       int64 `json:"redirects"`        // 307s to a session's owner
	ProxiedSessions int64 `json:"proxied_sessions"` // session calls proxied to their owner
	Probes          int64 `json:"probes"`
	ProbeFailures   int64 `json:"probe_failures"`
}

// NodeInfo is one member's introspection record (see httpserve's
// /v1/cluster).
type NodeInfo struct {
	ID         string
	Tag        string
	Self       bool
	State      State
	StateSince time.Time
	Failures   int
	LastSeen   time.Time
}

// view is one immutable epoch of the fleet: the ring, the tag index and
// the per-peer breakers. Forwarding reads the current view lock-free;
// ApplyView swaps the whole thing atomically, carrying surviving peers'
// breakers across so their failure history is not amnestied by a
// membership change — and dropping removed peers' breakers, which is
// what releases their circuit state.
type view struct {
	epoch    uint64
	ring     *Ring
	byTag    map[string]string
	retired  map[string]string // departed members' tags → last-known URL
	breakers map[string]*Breaker
}

// maxRetiredTags bounds the departed-member tag table carried across
// views. Overflow drops arbitrary entries: their ID-pinned calls answer
// not_found, as an evicted session would.
const maxRetiredTags = 64

// Cluster is one node's routing brain: the epoch-numbered ring view, the
// membership prober, and the forwarding client with its breakers.
type Cluster struct {
	cfg    Config
	mem    *Membership
	client *http.Client

	viewMu sync.Mutex // serialises view transitions; reads go via v
	v      atomic.Pointer[view]

	forwards, forwardFailures, hedges atomic.Int64
	localFallbacks, scatters          atomic.Int64
	redirects, proxiedSessions        atomic.Int64
}

// New builds the node's cluster view. Start launches the probe loop;
// a Cluster routes correctly before Start (peers are optimistically
// ready), it just cannot notice dead peers until probing begins.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 50 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Cluster{
		cfg:    cfg,
		mem:    NewMembership(cfg.Self, cfg.Peers, cfg.ProbeInterval, cfg.FailThreshold, client),
		client: client,
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	c.v.Store(c.buildView(cfg.Epoch, members, nil))
	return c, nil
}

// buildView assembles an immutable view, reusing prev's breakers for
// peers that survive the transition.
func (c *Cluster) buildView(epoch uint64, members []string, prev *view) *view {
	ring := NewRing(members, c.cfg.VirtualNodes)
	nv := &view{
		epoch:    epoch,
		ring:     ring,
		byTag:    make(map[string]string, ring.Len()),
		retired:  make(map[string]string),
		breakers: make(map[string]*Breaker, ring.Len()),
	}
	for _, n := range ring.Nodes() {
		nv.byTag[Tag(n)] = n
		if n == c.cfg.Self {
			continue
		}
		if prev != nil {
			if b, ok := prev.breakers[n]; ok {
				nv.breakers[n] = b
				continue
			}
		}
		nv.breakers[n] = NewBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
	}
	// Members that left this view (or an earlier one) keep their tag
	// resolvable: a departed node serves its relocation tombstones while
	// draining, so ID-pinned calls from third nodes — which route by tag,
	// not by tombstone — must still be able to name it. A tag readopted
	// by a live member always wins over its retired entry.
	if prev != nil {
		carry := func(tag, node string) {
			if _, live := nv.byTag[tag]; !live && len(nv.retired) < maxRetiredTags {
				nv.retired[tag] = node
			}
		}
		for t, n := range prev.retired {
			carry(t, n)
		}
		for t, n := range prev.byTag {
			carry(t, n)
		}
	}
	return nv
}

// Start launches the background health probes.
func (c *Cluster) Start() { c.mem.Start() }

// Stop ends the probe loop.
func (c *Cluster) Stop() { c.mem.Stop() }

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.cfg.Self }

// SelfTag returns this node's session-ID tag.
func (c *Cluster) SelfTag() string { return Tag(c.cfg.Self) }

// Epoch returns the current membership view's epoch.
func (c *Cluster) Epoch() uint64 { return c.v.Load().epoch }

// Ring returns the current view's ring (immutable).
func (c *Cluster) Ring() *Ring { return c.v.Load().ring }

// Members returns the current view's member list in ring order (a copy).
func (c *Cluster) Members() []string {
	nodes := c.v.Load().ring.Nodes()
	out := make([]string, len(nodes))
	copy(out, nodes)
	return out
}

// BuildRing previews the ring a member list would produce under this
// cluster's virtual-node setting, without applying anything — the
// elastic layer diffs it against Ring() to find moved ownership before
// flipping routing.
func (c *Cluster) BuildRing(members []string) *Ring {
	return NewRing(members, c.cfg.VirtualNodes)
}

// ApplyView swaps in a new membership view. The epoch must be strictly
// higher than the current one (stale and duplicate views are ignored);
// on success the previous ring is returned so callers can diff. The
// membership prober is reconciled in the same step: removed peers stop
// being probed and their breaker state is dropped with the old view.
// Self need not be in members — a node that has been voted out keeps
// serving (draining) with a ring that routes everything away from it.
func (c *Cluster) ApplyView(epoch uint64, members []string) (prev *Ring, applied bool) {
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	cur := c.v.Load()
	if epoch <= cur.epoch {
		return cur.ring, false
	}
	nv := c.buildView(epoch, members, cur)
	peers := make([]string, 0, len(members))
	for _, n := range members {
		if n != c.cfg.Self {
			peers = append(peers, n)
		}
	}
	c.mem.SetPeers(peers)
	c.v.Store(nv)
	return cur.ring, true
}

// Size returns the fleet size (self included while self is a member).
func (c *Cluster) Size() int { return c.v.Load().ring.Len() }

// VirtualNodes returns the ring's per-node point count.
func (c *Cluster) VirtualNodes() int { return c.v.Load().ring.VirtualNodes() }

// Owner returns the ring owner of key, alive or not — cache-affinity
// ground truth, not a routing decision (use Plan for that).
func (c *Cluster) Owner(key string) string { return c.v.Load().ring.Owner(key) }

// NodeByTag resolves a session-ID tag back to the node it names —
// current members first, then departed ones still answering relocation
// redirects from their draining window.
func (c *Cluster) NodeByTag(tag string) (string, bool) {
	v := c.v.Load()
	if n, ok := v.byTag[tag]; ok {
		return n, true
	}
	n, ok := v.retired[tag]
	return n, ok
}

// OnEpoch registers the gossip callback fed by probe responses (see
// Membership.OnEpoch).
func (c *Cluster) OnEpoch(fn func(peer string, epoch uint64)) { c.mem.OnEpoch(fn) }

// SetDraining flips this node's advertised state, so peers' probes stop
// routing new work here while in-flight requests finish.
func (c *Cluster) SetDraining(on bool) {
	if on {
		c.mem.SetSelfState(StateDraining)
	} else {
		c.mem.SetSelfState(StateReady)
	}
}

// Plan returns the remote forward candidates for key, in ring preference
// order, truncated at self: an empty slice means this node should serve
// the key locally (it is the first routable owner, or every preferred
// peer is unroutable). At most two remotes are returned — the owner and
// its hedge replica; anything beyond that is better served locally than
// through a third network hop.
func (c *Cluster) Plan(key string) []string {
	v := c.v.Load()
	var remotes []string
	for _, n := range v.ring.Replicas(key, v.ring.Len()) {
		if n == c.cfg.Self {
			// Self outranks the remaining replicas: prefer any
			// higher-ranked live remote, else serve locally.
			return remotes
		}
		if c.routableIn(v, n) {
			remotes = append(remotes, n)
			if len(remotes) == 2 {
				return remotes
			}
		}
	}
	return remotes
}

// routableIn reports whether a peer should receive new work now. The
// breaker check is read-only: the half-open trial is claimed only when
// a request is actually sent (forwardOne), never while planning.
func (c *Cluster) routableIn(v *view, n string) bool {
	if c.mem.State(n) != StateReady {
		return false
	}
	b := v.breakers[n]
	return b == nil || b.Routable()
}

// breaker returns node's breaker in the current view (nil for self or
// nodes outside the view — such as one removed mid-flight).
func (c *Cluster) breaker(node string) *Breaker {
	return c.v.Load().breakers[node]
}

// ForwardResult is one successful forward: the peer's verbatim response.
type ForwardResult struct {
	Status int
	Body   []byte
	Node   string
}

// Forward sends the request body to nodes in order with hedging: the
// primary goes out immediately; if it fails fast the next candidate is
// tried at once, and if it is merely slow the next candidate is raced
// against it after HedgeDelay. The first response wins — any HTTP
// response, including 4xx, is authoritative (the peer is alive; the
// request itself was bad), while transport errors and 5xx count against
// the peer's breaker. The request carries the api.ForwardedHeader hop
// guard so the receiving peer always serves it locally.
func (c *Cluster) Forward(ctx context.Context, nodes []string, method, path string, body []byte) (ForwardResult, error) {
	if len(nodes) == 0 {
		return ForwardResult{}, fmt.Errorf("cluster: no forward candidates")
	}
	// One cancel covers every attempt: the winner's body is fully read
	// before Forward returns, so cancelling the losers on return is safe.
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		res ForwardResult
		err error
	}
	ch := make(chan attempt, len(nodes))
	launch := func(node string) {
		go func() {
			res, err := c.forwardOne(actx, node, method, path, body)
			ch <- attempt{res, err}
		}()
	}
	launch(nodes[0])
	launched, pending := 1, 1

	var hedge <-chan time.Time
	if len(nodes) > 1 {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}

	var lastErr error
	for pending > 0 {
		select {
		case a := <-ch:
			pending--
			if a.err == nil {
				c.forwards.Add(1)
				return a.res, nil
			}
			lastErr = a.err
			if launched < len(nodes) {
				launch(nodes[launched])
				launched++
				pending++
			}
		case <-hedge:
			hedge = nil
			if launched < len(nodes) {
				c.hedges.Add(1)
				launch(nodes[launched])
				launched++
				pending++
			}
		case <-ctx.Done():
			return ForwardResult{}, ctx.Err()
		}
	}
	return ForwardResult{}, fmt.Errorf("cluster: all %d forward candidates failed: %w", len(nodes), lastErr)
}

// forwardOne issues a single proxied request and settles the peer's
// breaker on the outcome. A cancelled attempt — the hedge race was won
// by another candidate, or the caller's own context expired — says
// nothing about the peer's health, so it releases any claimed half-open
// trial instead of recording a failure.
func (c *Cluster) forwardOne(ctx context.Context, node, method, path string, body []byte) (ForwardResult, error) {
	if b := c.breaker(node); b != nil && !b.Allow() {
		return ForwardResult{}, fmt.Errorf("cluster: %s circuit open", node)
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, node+path, rd)
	if err != nil {
		c.release(node)
		return ForwardResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.ForwardedHeader, c.cfg.Self)
	resp, err := c.client.Do(req)
	if err != nil {
		c.settle(ctx, node)
		return ForwardResult{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		c.settle(ctx, node)
		return ForwardResult{}, err
	}
	if resp.StatusCode >= 500 {
		c.settle(ctx, node)
		return ForwardResult{}, fmt.Errorf("cluster: %s answered %d", node, resp.StatusCode)
	}
	if b2 := c.breaker(node); b2 != nil {
		b2.Success()
	}
	return ForwardResult{Status: resp.StatusCode, Body: b, Node: node}, nil
}

// settle records a failed attempt: cancelled attempts are neutral (the
// trial is released, nothing is counted), genuine failures feed the
// breaker and the failure counter.
func (c *Cluster) settle(ctx context.Context, node string) {
	if ctx.Err() != nil {
		c.release(node)
		return
	}
	b := c.breaker(node)
	if b == nil {
		return
	}
	c.forwardFailures.Add(1)
	b.Failure()
}

func (c *Cluster) release(node string) {
	if b := c.breaker(node); b != nil {
		b.Release()
	}
}

// CountLocalFallback, CountScatter, CountRedirect and CountProxiedSession
// let the serving layer record routing outcomes it decides itself, so
// every cluster counter lives in one Stats snapshot.
func (c *Cluster) CountLocalFallback()  { c.localFallbacks.Add(1) }
func (c *Cluster) CountScatter()        { c.scatters.Add(1) }
func (c *Cluster) CountRedirect()       { c.redirects.Add(1) }
func (c *Cluster) CountProxiedSession() { c.proxiedSessions.Add(1) }

// Stats snapshots the routing counters.
func (c *Cluster) Stats() Stats {
	probes, probeFailures := c.mem.Probes()
	return Stats{
		Forwards:        c.forwards.Load(),
		ForwardFailures: c.forwardFailures.Load(),
		Hedges:          c.hedges.Load(),
		LocalFallbacks:  c.localFallbacks.Load(),
		ScatterBatches:  c.scatters.Load(),
		Redirects:       c.redirects.Load(),
		ProxiedSessions: c.proxiedSessions.Load(),
		Probes:          probes,
		ProbeFailures:   probeFailures,
	}
}

// Snapshot returns every member's introspection record, self first.
func (c *Cluster) Snapshot() []NodeInfo {
	infos := c.mem.Snapshot()
	out := make([]NodeInfo, len(infos))
	for i, m := range infos {
		out[i] = NodeInfo{
			ID: m.ID, Tag: Tag(m.ID), Self: m.Self,
			State: m.State, StateSince: m.StateSince,
			Failures: m.Failures, LastSeen: m.LastSeen,
		}
	}
	return out
}
