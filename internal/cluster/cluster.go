package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/api"
)

// maxForwardBody caps how much of a peer's response one forward buffers
// (batches can be large; a misbehaving peer must not OOM the proxy).
const maxForwardBody = 64 << 20

// Config parameterises one node's view of the fleet.
type Config struct {
	// Self is this node's advertised base URL (required; it is the node's
	// identity on the ring).
	Self string
	// Peers are the other nodes' base URLs (static seed list).
	Peers []string
	// VirtualNodes per member on the ring (default 64).
	VirtualNodes int
	// ProbeInterval is the health-probe period (default 2s).
	ProbeInterval time.Duration
	// FailThreshold is the consecutive probe failures declaring a peer
	// dead (default 3).
	FailThreshold int
	// HedgeDelay is how long a forward waits on the primary before racing
	// the next replica (default 50ms).
	HedgeDelay time.Duration
	// BreakerThreshold/BreakerCooldown tune the per-peer circuit breakers
	// (defaults 3 failures / 3s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client issues forwards and probes (default: dedicated client with
	// no global timeout; per-request contexts bound each call).
	Client *http.Client
}

// Stats is a snapshot of the node's routing counters.
type Stats struct {
	Forwards        int64 `json:"forwards"`         // requests answered by a peer
	ForwardFailures int64 `json:"forward_failures"` // per-attempt transport/5xx failures
	Hedges          int64 `json:"hedges"`           // secondary attempts raced against a slow primary
	LocalFallbacks  int64 `json:"local_fallbacks"`  // peer-owned solves served locally (owners down)
	ScatterBatches  int64 `json:"scatter_batches"`  // batches split by owner and fanned out
	Redirects       int64 `json:"redirects"`        // 307s to a session's owner
	ProxiedSessions int64 `json:"proxied_sessions"` // session calls proxied to their owner
	Probes          int64 `json:"probes"`
	ProbeFailures   int64 `json:"probe_failures"`
}

// NodeInfo is one member's introspection record (see httpserve's
// /v1/cluster).
type NodeInfo struct {
	ID       string
	Tag      string
	Self     bool
	State    State
	Failures int
	LastSeen time.Time
}

// Cluster is one node's routing brain: the ring, the membership view,
// and the forwarding client with its breakers.
type Cluster struct {
	cfg      Config
	ring     *Ring
	mem      *Membership
	breakers map[string]*Breaker
	client   *http.Client
	byTag    map[string]string

	forwards, forwardFailures, hedges atomic.Int64
	localFallbacks, scatters          atomic.Int64
	redirects, proxiedSessions        atomic.Int64
}

// New builds the node's cluster view. Start launches the probe loop;
// a Cluster routes correctly before Start (peers are optimistically
// ready), it just cannot notice dead peers until probing begins.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 50 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	ring := NewRing(members, cfg.VirtualNodes)
	c := &Cluster{
		cfg:      cfg,
		ring:     ring,
		mem:      NewMembership(cfg.Self, cfg.Peers, cfg.ProbeInterval, cfg.FailThreshold, client),
		breakers: make(map[string]*Breaker, len(ring.Nodes())),
		client:   client,
		byTag:    make(map[string]string, len(ring.Nodes())),
	}
	for _, n := range ring.Nodes() {
		if n != cfg.Self {
			c.breakers[n] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
		c.byTag[Tag(n)] = n
	}
	return c, nil
}

// Start launches the background health probes.
func (c *Cluster) Start() { c.mem.Start() }

// Stop ends the probe loop.
func (c *Cluster) Stop() { c.mem.Stop() }

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.cfg.Self }

// SelfTag returns this node's session-ID tag.
func (c *Cluster) SelfTag() string { return Tag(c.cfg.Self) }

// Size returns the fleet size (self included).
func (c *Cluster) Size() int { return c.ring.Len() }

// VirtualNodes returns the ring's per-node point count.
func (c *Cluster) VirtualNodes() int { return c.ring.VirtualNodes() }

// Owner returns the ring owner of key, alive or not — cache-affinity
// ground truth, not a routing decision (use Plan for that).
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// NodeByTag resolves a session-ID tag back to the node it names.
func (c *Cluster) NodeByTag(tag string) (string, bool) {
	n, ok := c.byTag[tag]
	return n, ok
}

// SetDraining flips this node's advertised state, so peers' probes stop
// routing new work here while in-flight requests finish.
func (c *Cluster) SetDraining(on bool) {
	if on {
		c.mem.SetSelfState(StateDraining)
	} else {
		c.mem.SetSelfState(StateReady)
	}
}

// Plan returns the remote forward candidates for key, in ring preference
// order, truncated at self: an empty slice means this node should serve
// the key locally (it is the first routable owner, or every preferred
// peer is unroutable). At most two remotes are returned — the owner and
// its hedge replica; anything beyond that is better served locally than
// through a third network hop.
func (c *Cluster) Plan(key string) []string {
	var remotes []string
	for _, n := range c.ring.Replicas(key, c.ring.Len()) {
		if n == c.cfg.Self {
			// Self outranks the remaining replicas: prefer any
			// higher-ranked live remote, else serve locally.
			return remotes
		}
		if c.routable(n) {
			remotes = append(remotes, n)
			if len(remotes) == 2 {
				return remotes
			}
		}
	}
	return remotes
}

// routable reports whether a peer should receive new work now. The
// breaker check is read-only: the half-open trial is claimed only when
// a request is actually sent (forwardOne), never while planning.
func (c *Cluster) routable(n string) bool {
	if c.mem.State(n) != StateReady {
		return false
	}
	b := c.breakers[n]
	return b == nil || b.Routable()
}

// ForwardResult is one successful forward: the peer's verbatim response.
type ForwardResult struct {
	Status int
	Body   []byte
	Node   string
}

// Forward sends the request body to nodes in order with hedging: the
// primary goes out immediately; if it fails fast the next candidate is
// tried at once, and if it is merely slow the next candidate is raced
// against it after HedgeDelay. The first response wins — any HTTP
// response, including 4xx, is authoritative (the peer is alive; the
// request itself was bad), while transport errors and 5xx count against
// the peer's breaker. The request carries the api.ForwardedHeader hop
// guard so the receiving peer always serves it locally.
func (c *Cluster) Forward(ctx context.Context, nodes []string, method, path string, body []byte) (ForwardResult, error) {
	if len(nodes) == 0 {
		return ForwardResult{}, fmt.Errorf("cluster: no forward candidates")
	}
	// One cancel covers every attempt: the winner's body is fully read
	// before Forward returns, so cancelling the losers on return is safe.
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		res ForwardResult
		err error
	}
	ch := make(chan attempt, len(nodes))
	launch := func(node string) {
		go func() {
			res, err := c.forwardOne(actx, node, method, path, body)
			ch <- attempt{res, err}
		}()
	}
	launch(nodes[0])
	launched, pending := 1, 1

	var hedge <-chan time.Time
	if len(nodes) > 1 {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}

	var lastErr error
	for pending > 0 {
		select {
		case a := <-ch:
			pending--
			if a.err == nil {
				c.forwards.Add(1)
				return a.res, nil
			}
			lastErr = a.err
			if launched < len(nodes) {
				launch(nodes[launched])
				launched++
				pending++
			}
		case <-hedge:
			hedge = nil
			if launched < len(nodes) {
				c.hedges.Add(1)
				launch(nodes[launched])
				launched++
				pending++
			}
		case <-ctx.Done():
			return ForwardResult{}, ctx.Err()
		}
	}
	return ForwardResult{}, fmt.Errorf("cluster: all %d forward candidates failed: %w", len(nodes), lastErr)
}

// forwardOne issues a single proxied request and settles the peer's
// breaker on the outcome. A cancelled attempt — the hedge race was won
// by another candidate, or the caller's own context expired — says
// nothing about the peer's health, so it releases any claimed half-open
// trial instead of recording a failure.
func (c *Cluster) forwardOne(ctx context.Context, node, method, path string, body []byte) (ForwardResult, error) {
	if b := c.breakers[node]; b != nil && !b.Allow() {
		return ForwardResult{}, fmt.Errorf("cluster: %s circuit open", node)
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, node+path, rd)
	if err != nil {
		c.release(node)
		return ForwardResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.ForwardedHeader, c.cfg.Self)
	resp, err := c.client.Do(req)
	if err != nil {
		c.settle(ctx, node)
		return ForwardResult{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		c.settle(ctx, node)
		return ForwardResult{}, err
	}
	if resp.StatusCode >= 500 {
		c.settle(ctx, node)
		return ForwardResult{}, fmt.Errorf("cluster: %s answered %d", node, resp.StatusCode)
	}
	if b2 := c.breakers[node]; b2 != nil {
		b2.Success()
	}
	return ForwardResult{Status: resp.StatusCode, Body: b, Node: node}, nil
}

// settle records a failed attempt: cancelled attempts are neutral (the
// trial is released, nothing is counted), genuine failures feed the
// breaker and the failure counter.
func (c *Cluster) settle(ctx context.Context, node string) {
	if ctx.Err() != nil {
		c.release(node)
		return
	}
	b := c.breakers[node]
	if b == nil {
		return
	}
	c.forwardFailures.Add(1)
	b.Failure()
}

func (c *Cluster) release(node string) {
	if b := c.breakers[node]; b != nil {
		b.Release()
	}
}

// CountLocalFallback, CountScatter, CountRedirect and CountProxiedSession
// let the serving layer record routing outcomes it decides itself, so
// every cluster counter lives in one Stats snapshot.
func (c *Cluster) CountLocalFallback()  { c.localFallbacks.Add(1) }
func (c *Cluster) CountScatter()        { c.scatters.Add(1) }
func (c *Cluster) CountRedirect()       { c.redirects.Add(1) }
func (c *Cluster) CountProxiedSession() { c.proxiedSessions.Add(1) }

// Stats snapshots the routing counters.
func (c *Cluster) Stats() Stats {
	probes, probeFailures := c.mem.Probes()
	return Stats{
		Forwards:        c.forwards.Load(),
		ForwardFailures: c.forwardFailures.Load(),
		Hedges:          c.hedges.Load(),
		LocalFallbacks:  c.localFallbacks.Load(),
		ScatterBatches:  c.scatters.Load(),
		Redirects:       c.redirects.Load(),
		ProxiedSessions: c.proxiedSessions.Load(),
		Probes:          probes,
		ProbeFailures:   probeFailures,
	}
}

// Snapshot returns every member's introspection record, self first.
func (c *Cluster) Snapshot() []NodeInfo {
	infos := c.mem.Snapshot()
	out := make([]NodeInfo, len(infos))
	for i, m := range infos {
		out[i] = NodeInfo{
			ID: m.ID, Tag: Tag(m.ID), Self: m.Self,
			State: m.State, Failures: m.Failures, LastSeen: m.LastSeen,
		}
	}
	return out
}
