package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is an immutable consistent-hash ring over node IDs. Each node is
// projected onto the ring at VirtualNodes points so ownership spreads
// evenly even for small clusters; a key's owner is the first point
// clockwise from the key's hash. Points that collide onto one hash value
// are ordered by rendezvous score (highest hash(node,key) first), so
// ownership stays deterministic and node-order independent even then.
type Ring struct {
	nodes  []string // sorted, distinct
	points []point  // sorted by (hash, node)
	vnodes int
}

// point is one virtual node: the ring position and the index of the node
// that owns it.
type point struct {
	hash uint64
	node int
}

// NewRing builds the ring over nodes (duplicates are collapsed) with
// virtualNodes points per node (minimum 1; 0 selects the default of 64).
func NewRing(nodes []string, virtualNodes int) *Ring {
	if virtualNodes <= 0 {
		virtualNodes = 64
	}
	distinct := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			distinct = append(distinct, n)
		}
	}
	sort.Strings(distinct)
	r := &Ring{nodes: distinct, vnodes: virtualNodes}
	r.points = make([]point, 0, len(distinct)*virtualNodes)
	for i, n := range distinct {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, point{hash: hashStrings(n, strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the member IDs in sorted order. The slice is shared:
// callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// VirtualNodes returns the per-node point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns up to n distinct nodes in the key's clockwise ring
// order: the owner first, then the nodes a failed-over solve should
// prefer next. n > Len() is clamped.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	kh := hashStrings(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })

	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	add := func(node int) bool {
		if !taken[node] {
			taken[node] = true
			out = append(out, r.nodes[node])
		}
		return len(out) >= n
	}
	// Walk clockwise one collision group at a time: points sharing a hash
	// value are re-ordered by rendezvous score against this key before
	// they are taken, so a collision never makes ownership depend on the
	// incidental node sort order.
	for step := 0; step < len(r.points); {
		i := (start + step) % len(r.points)
		group := 1
		for step+group < len(r.points) {
			j := (start + step + group) % len(r.points)
			if r.points[j].hash != r.points[i].hash {
				break
			}
			group++
		}
		if group == 1 {
			if add(r.points[i].node) {
				return out
			}
		} else {
			members := make([]int, 0, group)
			for g := 0; g < group; g++ {
				members = append(members, r.points[(start+step+g)%len(r.points)].node)
			}
			sort.Slice(members, func(a, b int) bool {
				sa := hashStrings(r.nodes[members[a]], key)
				sb := hashStrings(r.nodes[members[b]], key)
				if sa != sb {
					return sa > sb
				}
				return r.nodes[members[a]] < r.nodes[members[b]]
			})
			for _, m := range members {
				if add(m) {
					return out
				}
			}
		}
		step += group
	}
	return out
}

// hashStrings is the ring's 64-bit hash: FNV-1a over the parts joined
// with a NUL separator (so ("ab","c") and ("a","bc") hash apart).
func hashStrings(parts ...string) uint64 {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	return h.Sum64()
}

// Tag returns the short stable identifier of a node ID, used to encode
// ring ownership inside session IDs ("<tag>-<random>"): 8 hex digits of
// the node's hash, enough to tell fleet members apart without leaking
// the peer URL into client-visible IDs.
func Tag(node string) string {
	const hexdigits = "0123456789abcdef"
	h := hashStrings("tag", node)
	var b [8]byte
	for i := range b {
		b[i] = hexdigits[(h>>(uint(56-8*i)))&0xf]
	}
	return string(b[:])
}
