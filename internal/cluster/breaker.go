package cluster

import (
	"sync/atomic"
	"time"
)

// Breaker is a per-peer circuit breaker: Threshold consecutive failures
// open it for Cooldown, during which Allow reports false and routing
// skips the peer without burning a connection attempt. After the
// cooldown one trial request is let through (half-open); its outcome
// re-closes or re-opens the circuit. The zero value is not usable — use
// NewBreaker.
type Breaker struct {
	threshold int32
	cooldown  time.Duration

	failures atomic.Int32
	openedAt atomic.Int64 // unix nanos; 0 = closed
	trialing atomic.Bool  // a half-open trial is in flight
}

// NewBreaker returns a closed breaker (threshold default 3, cooldown
// default 3s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 3 * time.Second
	}
	return &Breaker{threshold: int32(threshold), cooldown: cooldown}
}

// Routable reports whether the peer may appear in routing plans. It is
// read-only — planning a route must never consume the half-open trial,
// or a plan that ends up not contacting the peer would wedge the
// breaker open forever. The trial is claimed by Allow at send time.
func (b *Breaker) Routable() bool {
	opened := b.openedAt.Load()
	if opened == 0 {
		return true
	}
	return time.Since(time.Unix(0, opened)) >= b.cooldown && !b.trialing.Load()
}

// Allow reports whether a request may actually be sent, claiming the
// half-open trial when the circuit is open past its cooldown: exactly
// one trial is in flight per window. Callers that claim the trial and
// then abandon the attempt without a verdict must call Release.
func (b *Breaker) Allow() bool {
	opened := b.openedAt.Load()
	if opened == 0 {
		return true
	}
	if time.Since(time.Unix(0, opened)) < b.cooldown {
		return false
	}
	// Cooldown elapsed: admit one half-open trial; concurrent callers
	// keep being rejected until its Success/Failure lands.
	return b.trialing.CompareAndSwap(false, true)
}

// Release abandons an in-flight half-open trial without a verdict (the
// attempt was cancelled, not answered): the next Allow may try again.
func (b *Breaker) Release() { b.trialing.CompareAndSwap(true, false) }

// Success records a completed request and closes the circuit.
func (b *Breaker) Success() {
	b.failures.Store(0)
	b.openedAt.Store(0)
	b.trialing.Store(false)
}

// Failure records a failed request, opening (or re-opening) the circuit
// once the consecutive-failure threshold is reached.
func (b *Breaker) Failure() {
	wasTrial := b.trialing.CompareAndSwap(true, false)
	if b.failures.Add(1) >= b.threshold || wasTrial {
		b.openedAt.Store(time.Now().UnixNano())
	}
}

// Open reports whether the circuit is currently open (ignoring the
// half-open trial window).
func (b *Breaker) Open() bool { return b.openedAt.Load() != 0 }
