package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker open after %d failures (threshold 3)", i+1)
		}
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker closed after hitting the threshold")
	}
	if !b.Open() {
		t.Fatal("Open() false while rejecting")
	}
}

func TestBreakerSuccessResets(t *testing.T) {
	b := NewBreaker(2, time.Hour)
	b.Failure()
	b.Success()
	b.Failure()
	if !b.Allow() {
		t.Fatal("consecutive-failure count not reset by success")
	}
}

func TestBreakerHalfOpenTrial(t *testing.T) {
	b := NewBreaker(1, 20*time.Millisecond)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	time.Sleep(30 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no half-open trial after the cooldown")
	}
	if b.Allow() {
		t.Fatal("second trial admitted while the first is in flight")
	}
	// Failed trial re-opens for a fresh cooldown.
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker closed after a failed half-open trial")
	}
	time.Sleep(30 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no second trial after the re-opened cooldown")
	}
	b.Success()
	if !b.Allow() || b.Open() {
		t.Fatal("successful trial did not close the breaker")
	}
}
