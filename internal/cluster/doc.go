// Package cluster turns N crserve processes into one logical solve
// service. It owns the three mechanisms the serving layer composes:
//
//   - Ring: an immutable consistent-hash ring over the member node IDs
//     (base URLs), spread with virtual nodes and made deterministic under
//     hash collisions by a rendezvous (highest-random-weight) tie-break.
//     Every solve is keyed by the instance's canonical model.Fingerprint,
//     so repeat solves of one instance land on one owner node and its
//     compiled-plan and LRU result caches stay hot.
//
//   - Membership: a static seed list of peers probed over HTTP
//     (GET /healthz) on a fixed interval. Peers move between ready,
//     draining (alive, shedding: the node answers in-flight work but must
//     not receive new routes) and dead (consecutive probe failures).
//     Routing only considers ready peers; ownership is re-derived from
//     the full ring on every request, so a node that recovers gets its
//     key range — and its warm caches — back automatically.
//
//   - Forwarding: an HTTP client with one circuit breaker per peer and
//     hedged retries. The primary owner is tried first; if it has not
//     answered within the hedge delay (or fails fast) the next replica
//     on the ring is raced against it and the first answer wins. A 4xx
//     is an authoritative answer (the peer is healthy, the request is
//     not) while transport errors and 5xx trip the breaker. When every
//     candidate is down the caller falls back to solving locally:
//     capacity degrades, correctness never does.
//
// The package is transport-level only: internal/httpserve decides *what*
// to route (solve, batch scatter-gather, ring-pinned sessions) and
// serves the /v1/cluster introspection endpoint from Snapshot and Stats.
package cluster
