package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// healthStub is a peer whose /healthz answer is switchable.
type healthStub struct {
	srv  *httptest.Server
	mode atomic.Int32 // 0 ok, 1 draining, 2 error
}

func newHealthStub(t *testing.T) *healthStub {
	t.Helper()
	h := &healthStub{}
	h.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch h.mode.Load() {
		case 0:
			w.Write([]byte("ok\n"))
		case 1:
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	t.Cleanup(h.srv.Close)
	return h
}

func TestMembershipStates(t *testing.T) {
	peer := newHealthStub(t)
	m := NewMembership("http://self", []string{peer.srv.URL}, 10*time.Millisecond, 2, nil)
	ctx := context.Background()

	m.ProbeNow(ctx)
	if st := m.State(peer.srv.URL); st != StateReady {
		t.Fatalf("healthy peer state %v", st)
	}

	peer.mode.Store(1)
	m.ProbeNow(ctx)
	if st := m.State(peer.srv.URL); st != StateDraining {
		t.Fatalf("draining peer state %v", st)
	}

	// Errors only kill the peer once the consecutive threshold is hit.
	peer.mode.Store(2)
	m.ProbeNow(ctx)
	if st := m.State(peer.srv.URL); st != StateDraining {
		t.Fatalf("one failure flipped state to %v", st)
	}
	m.ProbeNow(ctx)
	if st := m.State(peer.srv.URL); st != StateDead {
		t.Fatalf("peer not dead after threshold: %v", st)
	}

	// Recovery: one good probe brings it straight back.
	peer.mode.Store(0)
	m.ProbeNow(ctx)
	if st := m.State(peer.srv.URL); st != StateReady {
		t.Fatalf("recovered peer state %v", st)
	}

	total, failed := m.Probes()
	if total != 5 || failed != 2 {
		t.Fatalf("probe counters total=%d failed=%d", total, failed)
	}
}

func TestMembershipSelfAndSnapshot(t *testing.T) {
	m := NewMembership("http://self", []string{"http://peer-a", "http://peer-b"}, time.Minute, 3, nil)
	if st := m.State("http://self"); st != StateReady {
		t.Fatalf("self state %v", st)
	}
	m.SetSelfState(StateDraining)
	if st := m.State("http://self"); st != StateDraining {
		t.Fatalf("self state after drain %v", st)
	}
	if st := m.State("http://unknown"); st != StateDead {
		t.Fatalf("unknown node state %v", st)
	}
	snap := m.Snapshot()
	if len(snap) != 3 || !snap[0].Self || snap[0].State != StateDraining {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestMembershipStartStop(t *testing.T) {
	peer := newHealthStub(t)
	m := NewMembership("http://self", []string{peer.srv.URL}, 5*time.Millisecond, 3, nil)
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if total, _ := m.Probes(); total >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe loop never ran")
		}
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
}
