package cluster

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
)

// State is a member's routing eligibility.
type State int32

const (
	// StateReady: the node answers probes and accepts new routes.
	StateReady State = iota
	// StateDraining: the node is alive but shedding — it finishes
	// in-flight work and must not receive new routes.
	StateDraining
	// StateDead: the node failed FailThreshold consecutive probes.
	StateDead
)

// String returns the wire name of the state.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// member is one node's live probe bookkeeping.
type member struct {
	id         string
	state      atomic.Int32
	stateSince atomic.Int64 // unix nanos of the last state transition
	failures   atomic.Int32 // consecutive probe failures
	probes     atomic.Int64 // total probes sent
	lastSeen   atomic.Int64 // unix nanos of the last successful probe
}

func newMember(id string) *member {
	p := &member{id: id}
	p.stateSince.Store(time.Now().UnixNano())
	return p
}

// setState stores s, stamping stateSince only on an actual transition.
func (p *member) setState(s State) {
	if p.state.Swap(int32(s)) != int32(s) {
		p.stateSince.Store(time.Now().UnixNano())
	}
}

// MemberInfo is a read-only snapshot of one member.
type MemberInfo struct {
	ID         string
	Self       bool
	State      State
	StateSince time.Time // when the member last changed state
	Failures   int
	LastSeen   time.Time // zero until the first successful probe
}

// Membership probes the peer list and classifies each peer as ready,
// draining or dead. The peer set is dynamic: SetPeers reconciles it
// against a new membership view, keeping the probe history of surviving
// peers and forgetting removed ones (their probes stop on the next
// round).
type Membership struct {
	self     *member
	client   *http.Client
	interval time.Duration
	failMax  int

	mu    sync.RWMutex
	peers []*member // ring construction order
	byID  map[string]*member

	// onEpoch, when set, receives the epoch a peer advertised in its
	// probe response (the gossip path of the elastic membership layer).
	onEpoch atomic.Pointer[func(peer string, epoch uint64)]

	probesTotal  atomic.Int64
	probesFailed atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewMembership tracks self plus peers (node IDs are base URLs such as
// "http://127.0.0.1:8080"). interval is the probe period (default 2s),
// failThreshold the consecutive failures declaring a peer dead (default
// 3). client defaults to a dedicated client with a probe-sized timeout.
func NewMembership(self string, peers []string, interval time.Duration, failThreshold int, client *http.Client) *Membership {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if failThreshold <= 0 {
		failThreshold = 3
	}
	if client == nil {
		client = &http.Client{Timeout: interval}
	}
	m := &Membership{
		byID:     make(map[string]*member, len(peers)+1),
		client:   client,
		interval: interval,
		failMax:  failThreshold,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	m.self = newMember(self)
	m.byID[self] = m.self
	for _, p := range peers {
		m.addPeerLocked(p)
	}
	return m
}

// addPeerLocked registers one peer (caller holds mu, or is constructing).
func (m *Membership) addPeerLocked(p string) {
	if p == "" || p == m.self.id {
		return
	}
	if _, dup := m.byID[p]; dup {
		return
	}
	// Peers start ready: optimism costs one failed forward (which the
	// breaker absorbs), pessimism would serve everything locally until
	// the first probe round scatters the caches.
	mem := newMember(p)
	m.byID[p] = mem
	m.peers = append(m.peers, mem)
}

// SetPeers reconciles the probe set against a new peer list: surviving
// peers keep their member record (state, failure and probe history),
// new peers start optimistically ready, and removed peers are forgotten
// — they drop out of Snapshot/State immediately and receive no further
// probes. An in-flight probe of a removed peer settles into its orphaned
// record and is garbage collected with it.
func (m *Membership) SetPeers(peers []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keep := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p != "" && p != m.self.id {
			keep[p] = true
		}
	}
	next := m.peers[:0:0]
	for _, p := range m.peers {
		if keep[p.id] {
			next = append(next, p)
			delete(keep, p.id)
		} else {
			delete(m.byID, p.id)
		}
	}
	m.peers = next
	for _, p := range peers {
		m.addPeerLocked(p)
	}
}

// OnEpoch registers the callback invoked with the epoch a peer's probe
// response advertised (api.EpochHeader on /healthz). Safe to call at any
// time; the latest registration wins.
func (m *Membership) OnEpoch(fn func(peer string, epoch uint64)) {
	if fn == nil {
		m.onEpoch.Store(nil)
		return
	}
	m.onEpoch.Store(&fn)
}

// Start launches the background probe loop (an immediate round, then one
// per interval). Stop ends it.
func (m *Membership) Start() {
	if !m.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(m.done)
		ctx := context.Background()
		m.ProbeNow(ctx)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.ProbeNow(ctx)
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit. Safe to call twice,
// and a no-op when Start never ran.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	if !m.started.Load() {
		return
	}
	select {
	case <-m.done:
	case <-time.After(m.interval + time.Second):
	}
}

// ProbeNow runs one synchronous probe round over every current peer
// (self is never probed: its state is set directly by SetSelfState).
func (m *Membership) ProbeNow(ctx context.Context) {
	m.mu.RLock()
	peers := make([]*member, len(m.peers))
	copy(peers, m.peers)
	m.mu.RUnlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *member) {
			defer wg.Done()
			m.probe(ctx, p)
		}(p)
	}
	wg.Wait()
}

// probe classifies one peer from a GET /healthz: 200 "ok" is ready, a
// body containing "draining" (any status: the node is alive, just
// shedding) is draining, anything else is a failure. A live response
// carrying an epoch header feeds the gossip callback, so a node that
// missed a membership broadcast still learns a newer view exists.
func (m *Membership) probe(ctx context.Context, p *member) {
	p.probes.Add(1)
	m.probesTotal.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.id+"/healthz", nil)
	if err != nil {
		m.fail(p)
		return
	}
	resp, err := m.client.Do(req)
	if err != nil {
		m.fail(p)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	switch {
	case strings.Contains(string(body), "draining"):
		m.alive(p, StateDraining)
	case resp.StatusCode == http.StatusOK:
		m.alive(p, StateReady)
	default:
		m.fail(p)
		return
	}
	if h := resp.Header.Get(api.EpochHeader); h != "" {
		if epoch, err := strconv.ParseUint(h, 10, 64); err == nil {
			if fn := m.onEpoch.Load(); fn != nil {
				(*fn)(p.id, epoch)
			}
		}
	}
}

func (m *Membership) alive(p *member, s State) {
	p.failures.Store(0)
	p.lastSeen.Store(time.Now().UnixNano())
	p.setState(s)
}

func (m *Membership) fail(p *member) {
	m.probesFailed.Add(1)
	if int(p.failures.Add(1)) >= m.failMax {
		p.setState(StateDead)
	}
}

// State returns a node's current state; unknown IDs are dead.
func (m *Membership) State(id string) State {
	m.mu.RLock()
	p, ok := m.byID[id]
	m.mu.RUnlock()
	if !ok {
		return StateDead
	}
	return State(p.state.Load())
}

// Known reports whether the membership currently tracks id.
func (m *Membership) Known(id string) bool {
	m.mu.RLock()
	_, ok := m.byID[id]
	m.mu.RUnlock()
	return ok
}

// SetSelfState flips this node's own advertised state (used by the
// serving layer when it starts draining).
func (m *Membership) SetSelfState(s State) { m.self.setState(s) }

// Self returns this node's ID.
func (m *Membership) Self() string { return m.self.id }

// Probes reports (total, failed) probe counts.
func (m *Membership) Probes() (total, failed int64) {
	return m.probesTotal.Load(), m.probesFailed.Load()
}

// Snapshot returns every member's info, self first then peers in
// construction order.
func (m *Membership) Snapshot() []MemberInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]MemberInfo, 0, len(m.peers)+1)
	out = append(out, memberInfo(m.self, true))
	for _, p := range m.peers {
		out = append(out, memberInfo(p, false))
	}
	return out
}

func memberInfo(p *member, self bool) MemberInfo {
	info := MemberInfo{
		ID:       p.id,
		Self:     self,
		State:    State(p.state.Load()),
		Failures: int(p.failures.Load()),
	}
	if ns := p.stateSince.Load(); ns != 0 {
		info.StateSince = time.Unix(0, ns)
	}
	if ns := p.lastSeen.Load(); ns != 0 {
		info.LastSeen = time.Unix(0, ns)
	}
	return info
}
