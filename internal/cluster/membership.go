package cluster

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// State is a member's routing eligibility.
type State int32

const (
	// StateReady: the node answers probes and accepts new routes.
	StateReady State = iota
	// StateDraining: the node is alive but shedding — it finishes
	// in-flight work and must not receive new routes.
	StateDraining
	// StateDead: the node failed FailThreshold consecutive probes.
	StateDead
)

// String returns the wire name of the state.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// member is one node's live probe bookkeeping.
type member struct {
	id       string
	state    atomic.Int32
	failures atomic.Int32 // consecutive probe failures
	probes   atomic.Int64 // total probes sent
	lastSeen atomic.Int64 // unix nanos of the last successful probe
}

// MemberInfo is a read-only snapshot of one member.
type MemberInfo struct {
	ID       string
	Self     bool
	State    State
	Failures int
	LastSeen time.Time // zero until the first successful probe
}

// Membership probes a static peer list and classifies each peer as
// ready, draining or dead. The member set is fixed at construction (the
// ring never changes shape at runtime); only states move.
type Membership struct {
	self     *member
	peers    []*member // sorted by construction order of the ring
	byID     map[string]*member
	client   *http.Client
	interval time.Duration
	failMax  int

	probesTotal  atomic.Int64
	probesFailed atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewMembership tracks self plus peers (node IDs are base URLs such as
// "http://127.0.0.1:8080"). interval is the probe period (default 2s),
// failThreshold the consecutive failures declaring a peer dead (default
// 3). client defaults to a dedicated client with a probe-sized timeout.
func NewMembership(self string, peers []string, interval time.Duration, failThreshold int, client *http.Client) *Membership {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if failThreshold <= 0 {
		failThreshold = 3
	}
	if client == nil {
		client = &http.Client{Timeout: interval}
	}
	m := &Membership{
		byID:     make(map[string]*member, len(peers)+1),
		client:   client,
		interval: interval,
		failMax:  failThreshold,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	m.self = &member{id: self}
	m.byID[self] = m.self
	for _, p := range peers {
		if p == "" || p == self {
			continue
		}
		if _, dup := m.byID[p]; dup {
			continue
		}
		// Peers start ready: optimism costs one failed forward (which the
		// breaker absorbs), pessimism would serve everything locally until
		// the first probe round scatters the caches.
		mem := &member{id: p}
		m.byID[p] = mem
		m.peers = append(m.peers, mem)
	}
	return m
}

// Start launches the background probe loop (an immediate round, then one
// per interval). Stop ends it.
func (m *Membership) Start() {
	if !m.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(m.done)
		ctx := context.Background()
		m.ProbeNow(ctx)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.ProbeNow(ctx)
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit. Safe to call twice,
// and a no-op when Start never ran.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	if !m.started.Load() {
		return
	}
	select {
	case <-m.done:
	case <-time.After(m.interval + time.Second):
	}
}

// ProbeNow runs one synchronous probe round over every peer (self is
// never probed: its state is set directly by SetSelfState).
func (m *Membership) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range m.peers {
		wg.Add(1)
		go func(p *member) {
			defer wg.Done()
			m.probe(ctx, p)
		}(p)
	}
	wg.Wait()
}

// probe classifies one peer from a GET /healthz: 200 "ok" is ready, a
// body containing "draining" (any status: the node is alive, just
// shedding) is draining, anything else is a failure.
func (m *Membership) probe(ctx context.Context, p *member) {
	p.probes.Add(1)
	m.probesTotal.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.id+"/healthz", nil)
	if err != nil {
		m.fail(p)
		return
	}
	resp, err := m.client.Do(req)
	if err != nil {
		m.fail(p)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	switch {
	case strings.Contains(string(body), "draining"):
		m.alive(p, StateDraining)
	case resp.StatusCode == http.StatusOK:
		m.alive(p, StateReady)
	default:
		m.fail(p)
	}
}

func (m *Membership) alive(p *member, s State) {
	p.failures.Store(0)
	p.lastSeen.Store(time.Now().UnixNano())
	p.state.Store(int32(s))
}

func (m *Membership) fail(p *member) {
	m.probesFailed.Add(1)
	if int(p.failures.Add(1)) >= m.failMax {
		p.state.Store(int32(StateDead))
	}
}

// State returns a node's current state; unknown IDs are dead.
func (m *Membership) State(id string) State {
	p, ok := m.byID[id]
	if !ok {
		return StateDead
	}
	return State(p.state.Load())
}

// SetSelfState flips this node's own advertised state (used by the
// serving layer when it starts draining).
func (m *Membership) SetSelfState(s State) { m.self.state.Store(int32(s)) }

// Self returns this node's ID.
func (m *Membership) Self() string { return m.self.id }

// Probes reports (total, failed) probe counts.
func (m *Membership) Probes() (total, failed int64) {
	return m.probesTotal.Load(), m.probesFailed.Load()
}

// Snapshot returns every member's info, self first then peers in
// construction order.
func (m *Membership) Snapshot() []MemberInfo {
	out := make([]MemberInfo, 0, len(m.peers)+1)
	out = append(out, memberInfo(m.self, true))
	for _, p := range m.peers {
		out = append(out, memberInfo(p, false))
	}
	return out
}

func memberInfo(p *member, self bool) MemberInfo {
	info := MemberInfo{
		ID:       p.id,
		Self:     self,
		State:    State(p.state.Load()),
		Failures: int(p.failures.Load()),
	}
	if ns := p.lastSeen.Load(); ns != 0 {
		info.LastSeen = time.Unix(0, ns)
	}
	return info
}
