package cluster

import (
	"fmt"
	"testing"
)

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	nodes := ringNodes(5)
	a := NewRing(nodes, 64)
	reversed := make([]string, len(nodes))
	for i, n := range nodes {
		reversed[len(nodes)-1-i] = n
	}
	b := NewRing(reversed, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fp-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner depends on construction order: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(ringNodes(3), 64)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("fp-%d", i))]++
	}
	for node, c := range counts {
		if c < keys/10 {
			t.Errorf("node %s owns only %d/%d keys — virtual nodes not spreading", node, c, keys)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own keys", len(counts))
	}
}

func TestRingReplicasDistinctAndOwnerFirst(t *testing.T) {
	r := NewRing(ringNodes(4), 32)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fp-%d", i)
		reps := r.Replicas(key, 4)
		if len(reps) != 4 {
			t.Fatalf("key %q: %d replicas", key, len(reps))
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("key %q: owner %q is not Replicas[0] %q", key, r.Owner(key), reps[0])
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("key %q: duplicate replica %q", key, n)
			}
			seen[n] = true
		}
	}
}

// Consistent hashing's defining property: removing one member only moves
// the keys that member owned; everyone else's keys keep their owner (and
// with them, their warm caches).
func TestRingRemovalStability(t *testing.T) {
	nodes := ringNodes(4)
	full := NewRing(nodes, 64)
	without := NewRing(nodes[:3], 64) // drop the last node
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("fp-%d", i)
		was := full.Owner(key)
		now := without.Owner(key)
		if was == nodes[3] {
			continue // its keys must move somewhere
		}
		if was == now {
			kept++
		} else {
			moved++
			t.Errorf("key %q moved %q -> %q though its owner survived", key, was, now)
		}
	}
	if kept == 0 {
		t.Fatal("no keys checked")
	}
	if moved > 0 {
		t.Fatalf("%d keys moved off surviving owners", moved)
	}
}

func TestRingEmptyAndClamp(t *testing.T) {
	empty := NewRing(nil, 8)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner %q", got)
	}
	if reps := empty.Replicas("x", 3); reps != nil {
		t.Fatalf("empty ring replicas %v", reps)
	}
	one := NewRing([]string{"a", "a", ""}, 8) // duplicates and blanks collapse
	if one.Len() != 1 {
		t.Fatalf("len %d", one.Len())
	}
	if reps := one.Replicas("x", 5); len(reps) != 1 || reps[0] != "a" {
		t.Fatalf("replicas %v", reps)
	}
}

func TestTagStableAndDistinct(t *testing.T) {
	nodes := ringNodes(10)
	seen := map[string]string{}
	for _, n := range nodes {
		tag := Tag(n)
		if len(tag) != 8 {
			t.Fatalf("tag %q of %q is not 8 chars", tag, n)
		}
		if Tag(n) != tag {
			t.Fatalf("tag of %q unstable", n)
		}
		if prev, dup := seen[tag]; dup {
			t.Fatalf("tag %q collides: %q and %q", tag, prev, n)
		}
		seen[tag] = n
	}
}
