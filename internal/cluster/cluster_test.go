package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
)

func findKey(t *testing.T, r *Ring, owner string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r.Owner(key) == owner {
			return key
		}
	}
	t.Fatalf("no key owned by %q", owner)
	return ""
}

func testCluster(t *testing.T, self string, peers []string, cfg Config) *Cluster {
	t.Helper()
	cfg.Self = self
	cfg.Peers = peers
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlanOwnership(t *testing.T) {
	self := "http://n1"
	peers := []string{"http://n2", "http://n3"}
	c := testCluster(t, self, peers, Config{})

	selfKey := findKey(t, c.Ring(), self)
	if got := c.Plan(selfKey); len(got) != 0 {
		t.Fatalf("self-owned key planned remotes %v", got)
	}
	for _, peer := range peers {
		key := findKey(t, c.Ring(), peer)
		got := c.Plan(key)
		if len(got) == 0 || got[0] != peer {
			t.Fatalf("key owned by %q planned %v", peer, got)
		}
		for _, n := range got {
			if n == self {
				t.Fatalf("plan %v contains self", got)
			}
		}
	}
}

func TestPlanSkipsDeadAndBrokenPeers(t *testing.T) {
	self := "http://n1"
	owner := "http://n2"
	c := testCluster(t, self, []string{owner, "http://n3"}, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	key := findKey(t, c.Ring(), owner)

	// Dead by membership: the owner disappears from the plan.
	p := c.mem.byID[owner]
	p.state.Store(int32(StateDead))
	for _, n := range c.Plan(key) {
		if n == owner {
			t.Fatalf("dead owner still planned: %v", c.Plan(key))
		}
	}
	p.state.Store(int32(StateReady))

	// Open breaker: same effect, without waiting for a probe round.
	c.breaker(owner).Failure()
	for _, n := range c.Plan(key) {
		if n == owner {
			t.Fatalf("circuit-broken owner still planned: %v", c.Plan(key))
		}
	}
	c.breaker(owner).Success()
	if got := c.Plan(key); len(got) == 0 || got[0] != owner {
		t.Fatalf("recovered owner not planned first: %v", got)
	}
}

// Planning must never consume the breaker's half-open trial: a plan
// that ends up not contacting the peer (hedge never fired, caller
// truncated to the primary) would otherwise wedge the breaker open and
// exile a recovered peer forever.
func TestPlanDoesNotConsumeHalfOpenTrial(t *testing.T) {
	self := "http://n1"
	owner := "http://n2"
	c := testCluster(t, self, []string{owner, "http://n3"}, Config{BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond})
	key := findKey(t, c.Ring(), owner)
	c.breaker(owner).Failure()
	time.Sleep(15 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if got := c.Plan(key); len(got) == 0 || got[0] != owner {
			t.Fatalf("plan %d after cooldown: %v", i, got)
		}
	}
	if !c.breaker(owner).Allow() {
		t.Fatal("half-open trial was consumed by planning")
	}
}

func TestForwardSetsHopGuardAndWins(t *testing.T) {
	var sawGuard atomic.Value
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawGuard.Store(r.Header.Get(api.ForwardedHeader))
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer peer.Close()

	c := testCluster(t, "http://self", []string{peer.URL}, Config{})
	res, err := c.Forward(context.Background(), []string{peer.URL}, http.MethodPost, "/v1/solve", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || res.Node != peer.URL || string(res.Body) != `{"ok":true}` {
		t.Fatalf("forward result %+v", res)
	}
	if got := sawGuard.Load(); got != "http://self" {
		t.Fatalf("hop guard header %v", got)
	}
	if st := c.Stats(); st.Forwards != 1 || st.ForwardFailures != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestForwardFailsOverOn5xx(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fine"))
	}))
	defer good.Close()

	c := testCluster(t, "http://self", []string{bad.URL, good.URL}, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	res, err := c.Forward(context.Background(), []string{bad.URL, good.URL}, http.MethodPost, "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != good.URL || string(res.Body) != "fine" {
		t.Fatalf("result %+v", res)
	}
	if !c.breaker(bad.URL).Open() {
		t.Fatal("5xx did not trip the peer's breaker")
	}
	if st := c.Stats(); st.ForwardFailures != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestForward4xxIsAuthoritative(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"code":"not_found"}`))
	}))
	defer peer.Close()

	c := testCluster(t, "http://self", []string{peer.URL}, Config{})
	res, err := c.Forward(context.Background(), []string{peer.URL}, http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatalf("4xx treated as transport failure: %v", err)
	}
	if res.Status != http.StatusNotFound {
		t.Fatalf("status %d", res.Status)
	}
	if c.breaker(peer.URL).Open() {
		t.Fatal("4xx tripped the breaker")
	}
}

func TestForwardHedgesSlowPrimary(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte("slow"))
	}))
	defer slow.Close()
	defer close(release)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fast"))
	}))
	defer fast.Close()

	c := testCluster(t, "http://self", []string{slow.URL, fast.URL},
		Config{HedgeDelay: 5 * time.Millisecond, BreakerThreshold: 1, BreakerCooldown: time.Hour})
	res, err := c.Forward(context.Background(), []string{slow.URL, fast.URL}, http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != fast.URL || string(res.Body) != "fast" {
		t.Fatalf("hedge did not win: %+v", res)
	}
	if st := c.Stats(); st.Hedges != 1 {
		t.Fatalf("hedge counter %+v", st)
	}
	// Losing the hedge race is not a failure: the cancelled primary must
	// not trip its breaker or inflate the failure counter.
	time.Sleep(50 * time.Millisecond)
	if c.breaker(slow.URL).Open() {
		t.Fatal("hedge loser tripped its breaker")
	}
	if st := c.Stats(); st.ForwardFailures != 0 {
		t.Fatalf("hedge loser counted as forward failure: %+v", st)
	}
}

func TestForwardAllDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // immediately: connection refused
	c := testCluster(t, "http://self", []string{dead.URL}, Config{})
	if _, err := c.Forward(context.Background(), []string{dead.URL}, http.MethodGet, "/x", nil); err == nil {
		t.Fatal("forward to a dead peer succeeded")
	}
}
