// Package algorithms links every built-in solver into the core algorithm
// registry, in the manner of database/sql drivers: importing it for side
// effects populates the registry with the graph-based solvers
// (internal/assign), the independent exact solvers (internal/exact), the
// heuristics (internal/heuristics) and the intra-node parallel kernels
// (internal/parallel). The public repro package imports it, so
// every program built on repro sees the full solver set; internal tools and
// tests that call core.SolveContext directly import it explicitly.
package algorithms

import (
	_ "repro/internal/assign"
	_ "repro/internal/exact"
	_ "repro/internal/heuristics"
	_ "repro/internal/parallel"
)
