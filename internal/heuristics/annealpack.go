package heuristics

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
)

// AnnealPackConfig tunes AnnealRestarts. Zero values select the defaults
// noted below.
type AnnealPackConfig struct {
	Seed int64
	// Restarts is the number of independent walks (default 8). It is part
	// of the configuration, not a performance hint: changing it changes
	// which walks run and therefore the answer, which is why the
	// registered solver pins it to the default instead of consuming
	// Request.Parallelism (the cache identity excludes parallelism on the
	// grounds that it never changes a solver's output).
	Restarts int
	Steps    int     // per walk, default 2000
	StartT   float64 // default: 10% of the all-host delay
	CoolRate float64 // geometric factor per step, default 0.995
	// Init, when non-nil, becomes walk 0's starting assignment (the
	// warm-start hook). It is never modified.
	Init *model.Assignment

	// OnImprove, when set, receives every improvement of the pack-wide
	// best assignment (including the initial one) with a fresh clone.
	// Heuristics carry no bound proof, so Incumbent.LowerBound is 0.
	OnImprove func(core.Incumbent)
	// BestEffort returns the best-so-far with Result.Partial set instead
	// of a context error when the deadline expires mid-pack.
	BestEffort bool
}

// annealLane is one walk of the pack: its own rng, position vector, move
// buffer, temperature and current delay. Lanes never read each other's
// state, so the pack is a pure portfolio — only the best-so-far is shared.
type annealLane struct {
	rng   *rand.Rand
	loc   []model.Location
	moves []cutMove
	mv    cutMove
	old   model.Location
	delay float64
	temp  float64
	done  bool
}

// AnnealRestarts runs a portfolio of independent simulated-annealing
// walks in lockstep: every step each live walk proposes one sink/lift
// move and all proposals are priced together with one batch-kernel
// traversal (eval.FlatDelayBatch), so a pack of K restarts costs one plan
// sweep per step instead of K. Walks differ by seed and start point
// (walk 0 takes Init when given, even walks start all-host, odd walks
// start from the maximal distribution), which is the classic
// restart-diversification defence against a single walk freezing in a
// poor basin. Deterministic for a fixed seed and restart count.
func AnnealRestarts(ctx context.Context, t *model.Tree, cfg AnnealPackConfig) (*Result, error) {
	restarts := core.IntOr(cfg.Restarts, 8)
	steps := core.IntOr(cfg.Steps, 2000)
	cool := cfg.CoolRate
	if cool <= 0 || cool >= 1 {
		cool = 0.995
	}
	c := model.Compile(t)
	n := c.Len()

	bf := eval.GetBatchFrame()
	defer eval.PutBatchFrame(bf)

	// The shared default start temperature prices moves against the
	// all-host delay, exactly like the scalar Anneal.
	baseT := cfg.StartT
	if baseT <= 0 {
		fr := eval.GetFrame()
		scratch := make([]model.Location, n)
		c.BaseLocations(scratch)
		baseT = 0.1 * (eval.FlatDelay(c, scratch, fr) + 1)
		eval.PutFrame(fr)
	}

	lanes := make([]*annealLane, restarts)
	locs := make([][]model.Location, 0, restarts)
	outs := make([]float64, restarts)
	for i := range lanes {
		ln := &annealLane{
			rng:  rand.New(rand.NewSource(cfg.Seed + int64(i)*0x9e3779b9)),
			loc:  make([]model.Location, n),
			temp: baseT,
		}
		switch {
		case i == 0 && cfg.Init != nil:
			c.LoadLocations(ln.loc, cfg.Init)
		case i%2 == 0:
			c.BaseLocations(ln.loc)
		default:
			c.TopmostLocations(ln.loc)
		}
		lanes[i] = ln
		locs = append(locs, ln.loc)
	}
	eval.FlatDelayBatch(c, locs, outs[:len(locs)], bf)
	best := make([]model.Location, n)
	bestDelay := math.Inf(1)
	for i, ln := range lanes {
		ln.delay = outs[i]
		if ln.delay < bestDelay {
			bestDelay = ln.delay
			copy(best, ln.loc)
		}
	}

	evals := len(lanes)
	stream := func() {
		if cfg.OnImprove == nil {
			return
		}
		asg := model.NewAssignment(t)
		c.StoreAssignment(asg, best)
		cfg.OnImprove(core.Incumbent{Assignment: asg, Delay: bestDelay, Work: evals})
	}
	stream()

	partial := false
	proposing := make([]*annealLane, 0, restarts)
	for step := 0; step < steps; step++ {
		if step&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				if !cfg.BestEffort {
					return nil, err
				}
				partial = true
				break
			}
		}
		// Every live lane proposes one move; the proposals are priced with
		// a single batch traversal, then accepted or rejected with each
		// lane's own rng — the same ||-short-circuit as the scalar walk, so
		// rng consumption per lane is identical to running it alone.
		proposing = proposing[:0]
		locs = locs[:0]
		for _, ln := range lanes {
			if ln.done {
				continue
			}
			ln.moves = appendMoves(ln.moves[:0], c, ln.loc)
			if len(ln.moves) == 0 {
				ln.done = true
				continue
			}
			ln.mv = ln.moves[ln.rng.Intn(len(ln.moves))]
			ln.old = ln.loc[ln.mv.pos]
			ln.loc[ln.mv.pos] = ln.mv.to
			proposing = append(proposing, ln)
			locs = append(locs, ln.loc)
		}
		if len(proposing) == 0 {
			break
		}
		eval.FlatDelayBatch(c, locs, outs[:len(locs)], bf)
		evals += len(locs)
		for i, ln := range proposing {
			d := outs[i]
			if delta := d - ln.delay; delta <= 0 || ln.rng.Float64() < math.Exp(-delta/ln.temp) {
				ln.delay = d
				if d < bestDelay {
					bestDelay = d
					copy(best, ln.loc)
					stream()
				}
			} else {
				ln.loc[ln.mv.pos] = ln.old
			}
			ln.temp *= cool
		}
	}
	asg := model.NewAssignment(t)
	c.StoreAssignment(asg, best)
	return &Result{Assignment: asg, Delay: bestDelay, Work: evals, Partial: partial}, nil
}
