package heuristics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/workload"
)

func TestBaselinesValid(t *testing.T) {
	tree := workload.PaperTree()
	for name, r := range map[string]*Result{
		"all-host": AllHost(tree),
		"max-dist": MaxDistribution(tree),
	} {
		if err := r.Assignment.Validate(tree); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if r.Delay <= 0 {
			t.Errorf("%s: delay %v", name, r.Delay)
		}
	}
}

func TestGreedyImprovesOverStart(t *testing.T) {
	tree := workload.PaperTree()
	fromHost := Greedy(tree, FromHost)
	if fromHost.Delay > AllHost(tree).Delay {
		t.Errorf("greedy-from-host %v worse than all-host %v", fromHost.Delay, AllHost(tree).Delay)
	}
	fromTop := Greedy(tree, FromTopmost)
	if fromTop.Delay > MaxDistribution(tree).Delay {
		t.Errorf("greedy-from-top %v worse than max-dist %v", fromTop.Delay, MaxDistribution(tree).Delay)
	}
	for _, r := range []*Result{fromHost, fromTop} {
		if err := r.Assignment.Validate(tree); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGreedyNeverWorseThanBaselinesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		spec := workload.DefaultRandomSpec(1+rng.Intn(20), 1+rng.Intn(4))
		spec.Clustered = trial%2 == 0
		tree := workload.Random(rng, spec)
		opt, err := exact.Pareto(tree, 0)
		if err != nil {
			t.Fatal(err)
		}
		for name, r := range map[string]*Result{
			"greedy-host": Greedy(tree, FromHost),
			"greedy-top":  Greedy(tree, FromTopmost),
		} {
			if err := r.Assignment.Validate(tree); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if r.Delay < opt.Delay-1e-9 {
				t.Fatalf("trial %d %s: heuristic %v beats exact %v", trial, name, r.Delay, opt.Delay)
			}
		}
	}
}

func TestAnnealDeterministicAndValid(t *testing.T) {
	tree := workload.Epilepsy()
	r1 := Anneal(tree, AnnealConfig{Seed: 42, Steps: 500})
	r2 := Anneal(tree, AnnealConfig{Seed: 42, Steps: 500})
	if r1.Delay != r2.Delay {
		t.Fatalf("same seed, different delays: %v vs %v", r1.Delay, r2.Delay)
	}
	if err := r1.Assignment.Validate(tree); err != nil {
		t.Fatal(err)
	}
	opt, _ := exact.Pareto(tree, 0)
	if r1.Delay < opt.Delay-1e-9 {
		t.Fatalf("anneal %v beats exact %v", r1.Delay, opt.Delay)
	}
}

func TestGeneticFindsOptimumOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	hits := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(1+rng.Intn(8), 1+rng.Intn(3)))
		opt, err := exact.BruteForce(tree, 0)
		if err != nil {
			t.Fatal(err)
		}
		ga := Genetic(tree, GeneticConfig{Seed: int64(trial)})
		if err := ga.Assignment.Validate(tree); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ga.Delay < opt.Delay-1e-9 {
			t.Fatalf("trial %d: GA %v beats exact %v", trial, ga.Delay, opt.Delay)
		}
		if math.Abs(ga.Delay-opt.Delay) < 1e-9 {
			hits++
		}
	}
	// On tiny instances the GA should almost always find the optimum.
	if hits < trials*3/4 {
		t.Errorf("GA hit the optimum on %d/%d tiny instances", hits, trials)
	}
}

func TestGeneticDeterministic(t *testing.T) {
	tree := workload.SNMP()
	r1 := Genetic(tree, GeneticConfig{Seed: 9})
	r2 := Genetic(tree, GeneticConfig{Seed: 9})
	if r1.Delay != r2.Delay {
		t.Fatalf("same seed, different results: %v vs %v", r1.Delay, r2.Delay)
	}
}

func TestGeneticSingleSensorDegenerate(t *testing.T) {
	b := model.NewBuilder()
	s := b.Satellite("s")
	root := b.Root("root", 2, 0)
	b.Sensor(root, "x", s, 3)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := Genetic(tree, GeneticConfig{Seed: 1})
	if math.Abs(r.Delay-5) > 1e-9 {
		t.Fatalf("delay = %v, want 5", r.Delay)
	}
}

func TestMovesKeepFeasibilityProperty(t *testing.T) {
	// Applying any legal move to a feasible assignment keeps it feasible.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(1+rng.Intn(15), 1+rng.Intn(4)))
		asg := model.NewAssignment(tree)
		for step := 0; step < 20; step++ {
			moves := legalMoves(tree, asg)
			if len(moves) == 0 {
				break
			}
			moves[rng.Intn(len(moves))].apply(asg)
			if err := asg.Validate(tree); err != nil {
				t.Fatalf("trial %d step %d: move broke feasibility: %v", trial, step, err)
			}
		}
	}
}
