package heuristics

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/pool"
)

// GeneticConfig tunes Genetic. Zero values select the defaults noted below.
type GeneticConfig struct {
	Seed        int64
	Population  int     // default 40
	Generations int     // default 60
	Crossover   float64 // probability per child, default 0.9
	Mutation    float64 // per-gene flip probability, default 0.05
	Elite       int     // survivors copied verbatim, default 2
	Tournament  int     // tournament size, default 3
	// Lanes is the width of the batch evaluation kernel: genomes are
	// scored Lanes at a time with one plan traversal per chunk (default
	// 8). Each lane's delay is bit-identical to a scalar evaluation, so
	// the lane width never changes the result — only the number of plan
	// sweeps per generation.
	Lanes int
	// Init, when non-nil, is a feasible assignment whose cut genome joins
	// the initial population next to the two trivial baselines (the
	// warm-start hook): after a small instance drift the previous
	// revision's solution is usually one mutation from optimal again.
	Init *model.Assignment

	// OnImprove, when set, receives every improvement of the population's
	// best individual (including the initial population's) with a fresh
	// assignment clone. Heuristics carry no bound proof, so
	// Incumbent.LowerBound is 0.
	OnImprove func(core.Incumbent)
	// BestEffort returns the best-so-far with Result.Partial set instead
	// of a context error when the deadline expires between generations.
	BestEffort bool
}

func (c GeneticConfig) withDefaults() GeneticConfig {
	if c.Population <= 1 {
		c.Population = 40
	}
	c.Generations = core.IntOr(c.Generations, 60)
	c.Crossover = core.FloatOr(c.Crossover, 0.9)
	c.Mutation = core.FloatOr(c.Mutation, 0.05)
	c.Elite = core.IntOr(c.Elite, 2)
	if c.Tournament <= 1 {
		c.Tournament = 3
	}
	c.Lanes = core.IntOr(c.Lanes, 8)
	return c
}

// Genetic runs the genetic algorithm the paper's §6 cites (Wang et al.'s
// GA-based matching and scheduling) adapted to the tree problem. A genome
// has one "cut here" bit per monochromatic processing CRU; decoding walks
// the tree top-down and sinks the subtree at the first set bit, which maps
// every genome to a feasible assignment (genes below a cut are ignored, so
// the representation is redundant but never invalid). Deterministic for a
// fixed seed.
func Genetic(t *model.Tree, cfg GeneticConfig) *Result {
	r, _ := GeneticContext(context.Background(), t, cfg)
	return r
}

// GeneticContext is Genetic with cancellation: the context is checked once
// per generation. On cancellation the returned error is the context's and
// the result is nil. Genomes decode into position vectors by pre-order
// span skipping over the compiled plan and each generation is scored with
// the batch kernel, cfg.Lanes genomes per plan traversal — the evaluation
// consumes no randomness and every lane is bit-identical to a scalar
// FlatDelay call, so the result for a fixed seed is independent of the
// lane width (TestGeneticBatchDeterministic pins this).
func GeneticContext(ctx context.Context, t *model.Tree, cfg GeneticConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := model.Compile(t)

	// Gene sites: monochromatic non-root processing CRUs, in pre-order.
	var sites []int32
	siteOf := make([]int32, c.Len())
	for i := range siteOf {
		siteOf[i] = -1
	}
	for _, p := range c.Pre {
		if !c.Proc[p] || p == c.RootPos || c.Colour[p] == model.NoSatellite {
			continue
		}
		siteOf[p] = int32(len(sites))
		sites = append(sites, p)
	}

	st := moveStates.Get()
	defer moveStates.Put(st)
	st.loc = pool.Keep(st.loc, c.Len())

	// decodeInto fills dst with the genome's assignment: scan pre-order,
	// sink the whole span at the first set site bit, and skip the subtree
	// (genes below a cut are ignored). Subtrees are contiguous in
	// pre-order too, so the skip is an index jump, not a walk.
	decodeInto := func(dst []model.Location, genome []bool) {
		c.BaseLocations(dst)
		for i := 0; i < len(c.Pre); {
			p := c.Pre[i]
			if si := siteOf[p]; si >= 0 && genome[si] {
				c.FillSpan(dst, p, model.OnSatellite(c.Colour[p]))
				i += int(p - c.Start[p] + 1)
				continue
			}
			i++
		}
	}
	decode := func(genome []bool) { decodeInto(st.loc, genome) }

	type individual struct {
		genome []bool
		delay  float64
	}

	if len(sites) == 0 {
		asg := model.NewAssignment(t)
		return &Result{Assignment: asg, Delay: eval.MustDelay(t, asg)}, nil
	}

	// scorePop fills in the delays of inds, cfg.Lanes genomes per plan
	// traversal. Decoding and scoring consume no randomness, so deferring
	// evaluation to the end of a generation leaves the rng stream — and
	// therefore the whole run — identical to genome-at-a-time scoring.
	bf := eval.GetBatchFrame()
	defer eval.PutBatchFrame(bf)
	laneLoc := make([][]model.Location, cfg.Lanes)
	for i := range laneLoc {
		laneLoc[i] = make([]model.Location, c.Len())
	}
	laneOut := make([]float64, cfg.Lanes)
	scorePop := func(inds []individual) {
		for lo := 0; lo < len(inds); lo += cfg.Lanes {
			hi := lo + cfg.Lanes
			if hi > len(inds) {
				hi = len(inds)
			}
			k := hi - lo
			for j := 0; j < k; j++ {
				decodeInto(laneLoc[j], inds[lo+j].genome)
			}
			eval.FlatDelayBatch(c, laneLoc[:k], laneOut[:k], bf)
			for j := 0; j < k; j++ {
				inds[lo+j].delay = laneOut[j]
			}
		}
	}

	pop := make([]individual, cfg.Population)
	for i := range pop {
		g := make([]bool, len(sites))
		for j := range g {
			g[j] = rng.Intn(2) == 0
		}
		pop[i] = individual{genome: g}
	}
	// Seed the population with both trivial baselines.
	pop[0].genome = make([]bool, len(sites))
	if len(pop) > 1 {
		topmost := make([]bool, len(sites))
		for j := range topmost {
			topmost[j] = true // redundant bits are ignored below the first cut
		}
		pop[1].genome = topmost
	}
	if cfg.Init != nil && len(pop) > 2 {
		// Encode the warm assignment as a cut genome: a site's bit is set
		// iff it runs on a satellite. Feasibility makes satellite residency
		// upward-contiguous, so decode's first-set-bit walk reproduces the
		// warm cut exactly.
		warm := make([]bool, len(sites))
		for j, p := range sites {
			_, onSat := cfg.Init.At(c.Post[p]).Satellite()
			warm[j] = onSat
		}
		pop[2].genome = warm
	}
	scorePop(pop)

	byDelay := func() { sort.Slice(pop, func(i, j int) bool { return pop[i].delay < pop[j].delay }) }
	tournament := func() individual {
		best := pop[rng.Intn(len(pop))]
		for k := 1; k < cfg.Tournament; k++ {
			cand := pop[rng.Intn(len(pop))]
			if cand.delay < best.delay {
				best = cand
			}
		}
		return best
	}

	// stream clones the current best out to the improvement callback.
	bestSeen := math.Inf(1)
	stream := func(work int) {
		if cfg.OnImprove == nil {
			return
		}
		best := pop[0]
		for _, ind := range pop[1:] {
			if ind.delay < best.delay {
				best = ind
			}
		}
		if best.delay >= bestSeen {
			return
		}
		bestSeen = best.delay
		decode(best.genome)
		asg := model.NewAssignment(t)
		c.StoreAssignment(asg, st.loc)
		cfg.OnImprove(core.Incumbent{Assignment: asg, Delay: best.delay, Work: work})
	}

	evaluations := len(pop)
	stream(evaluations)
	partial := false
	for gen := 0; gen < cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			if !cfg.BestEffort {
				return nil, err
			}
			partial = true
			break
		}
		byDelay()
		next := make([]individual, 0, cfg.Population)
		for e := 0; e < cfg.Elite && e < len(pop); e++ {
			next = append(next, pop[e])
		}
		elites := len(next)
		for len(next) < cfg.Population {
			a, b := tournament(), tournament()
			child := make([]bool, len(sites))
			if rng.Float64() < cfg.Crossover {
				// Uniform crossover.
				for j := range child {
					if rng.Intn(2) == 0 {
						child[j] = a.genome[j]
					} else {
						child[j] = b.genome[j]
					}
				}
			} else {
				copy(child, a.genome)
			}
			for j := range child {
				if rng.Float64() < cfg.Mutation {
					child[j] = !child[j]
				}
			}
			next = append(next, individual{genome: child})
			evaluations++
		}
		scorePop(next[elites:]) // elites keep their scored delays
		pop = next
		stream(evaluations)
	}
	byDelay()
	best := pop[0]
	decode(best.genome)
	asg := model.NewAssignment(t)
	c.StoreAssignment(asg, st.loc)
	return &Result{Assignment: asg, Delay: best.delay, Work: evaluations, Partial: partial}, nil
}
