package heuristics

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/eval"
	"repro/internal/model"
)

// GeneticConfig tunes Genetic. Zero values select the defaults noted below.
type GeneticConfig struct {
	Seed        int64
	Population  int     // default 40
	Generations int     // default 60
	Crossover   float64 // probability per child, default 0.9
	Mutation    float64 // per-gene flip probability, default 0.05
	Elite       int     // survivors copied verbatim, default 2
	Tournament  int     // tournament size, default 3
	// Init, when non-nil, is a feasible assignment whose cut genome joins
	// the initial population next to the two trivial baselines (the
	// warm-start hook): after a small instance drift the previous
	// revision's solution is usually one mutation from optimal again.
	Init *model.Assignment
}

func (c GeneticConfig) withDefaults() GeneticConfig {
	if c.Population <= 1 {
		c.Population = 40
	}
	if c.Generations <= 0 {
		c.Generations = 60
	}
	if c.Crossover <= 0 {
		c.Crossover = 0.9
	}
	if c.Mutation <= 0 {
		c.Mutation = 0.05
	}
	if c.Elite <= 0 {
		c.Elite = 2
	}
	if c.Tournament <= 1 {
		c.Tournament = 3
	}
	return c
}

// Genetic runs the genetic algorithm the paper's §6 cites (Wang et al.'s
// GA-based matching and scheduling) adapted to the tree problem. A genome
// has one "cut here" bit per monochromatic processing CRU; decoding walks
// the tree top-down and sinks the subtree at the first set bit, which maps
// every genome to a feasible assignment (genes below a cut are ignored, so
// the representation is redundant but never invalid). Deterministic for a
// fixed seed.
func Genetic(t *model.Tree, cfg GeneticConfig) *Result {
	r, _ := GeneticContext(context.Background(), t, cfg)
	return r
}

// GeneticContext is Genetic with cancellation: the context is checked once
// per generation. On cancellation the returned error is the context's and
// the result is nil.
func GeneticContext(ctx context.Context, t *model.Tree, cfg GeneticConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Gene sites: monochromatic non-root processing CRUs.
	var sites []model.NodeID
	for _, id := range t.Preorder() {
		n := t.Node(id)
		if n.Kind != model.Processing || id == t.Root() {
			continue
		}
		if _, mono := t.CorrespondentSatellite(id); mono {
			sites = append(sites, id)
		}
	}
	siteIdx := map[model.NodeID]int{}
	for i, id := range sites {
		siteIdx[id] = i
	}

	decode := func(genome []bool) *model.Assignment {
		asg := model.NewAssignment(t)
		var walk func(id model.NodeID)
		walk = func(id model.NodeID) {
			n := t.Node(id)
			if n.Kind != model.Processing {
				return
			}
			if i, isSite := siteIdx[id]; isSite && genome[i] {
				sat, _ := t.CorrespondentSatellite(id)
				stack := []model.NodeID{id}
				for len(stack) > 0 {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if t.Node(v).Kind == model.Processing {
						asg.Set(v, model.OnSatellite(sat))
					}
					stack = append(stack, t.Node(v).Children...)
				}
				return
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(t.Root())
		return asg
	}

	type individual struct {
		genome []bool
		delay  float64
	}
	evalGenome := func(g []bool) individual {
		asg := decode(g)
		return individual{genome: g, delay: eval.MustDelay(t, asg)}
	}

	if len(sites) == 0 {
		asg := model.NewAssignment(t)
		return &Result{Assignment: asg, Delay: eval.MustDelay(t, asg)}, nil
	}

	pop := make([]individual, cfg.Population)
	for i := range pop {
		g := make([]bool, len(sites))
		for j := range g {
			g[j] = rng.Intn(2) == 0
		}
		pop[i] = evalGenome(g)
	}
	// Seed the population with both trivial baselines.
	allHost := make([]bool, len(sites))
	pop[0] = evalGenome(allHost)
	topmost := make([]bool, len(sites))
	for j := range topmost {
		topmost[j] = true // redundant bits are ignored below the first cut
	}
	if len(pop) > 1 {
		pop[1] = evalGenome(topmost)
	}
	if cfg.Init != nil && len(pop) > 2 {
		// Encode the warm assignment as a cut genome: a site's bit is set
		// iff it runs on a satellite. Feasibility makes satellite residency
		// upward-contiguous, so decode's first-set-bit walk reproduces the
		// warm cut exactly.
		warm := make([]bool, len(sites))
		for j, id := range sites {
			_, onSat := cfg.Init.At(id).Satellite()
			warm[j] = onSat
		}
		pop[2] = evalGenome(warm)
	}

	byDelay := func() { sort.Slice(pop, func(i, j int) bool { return pop[i].delay < pop[j].delay }) }
	tournament := func() individual {
		best := pop[rng.Intn(len(pop))]
		for k := 1; k < cfg.Tournament; k++ {
			c := pop[rng.Intn(len(pop))]
			if c.delay < best.delay {
				best = c
			}
		}
		return best
	}

	evaluations := len(pop)
	for gen := 0; gen < cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		byDelay()
		next := make([]individual, 0, cfg.Population)
		for e := 0; e < cfg.Elite && e < len(pop); e++ {
			next = append(next, pop[e])
		}
		for len(next) < cfg.Population {
			a, b := tournament(), tournament()
			child := make([]bool, len(sites))
			if rng.Float64() < cfg.Crossover {
				// Uniform crossover.
				for j := range child {
					if rng.Intn(2) == 0 {
						child[j] = a.genome[j]
					} else {
						child[j] = b.genome[j]
					}
				}
			} else {
				copy(child, a.genome)
			}
			for j := range child {
				if rng.Float64() < cfg.Mutation {
					child[j] = !child[j]
				}
			}
			next = append(next, evalGenome(child))
			evaluations++
		}
		pop = next
	}
	byDelay()
	best := pop[0]
	return &Result{Assignment: decode(best.genome), Delay: best.delay, Work: evaluations}, nil
}
