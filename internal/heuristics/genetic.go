package heuristics

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/pool"
)

// GeneticConfig tunes Genetic. Zero values select the defaults noted below.
type GeneticConfig struct {
	Seed        int64
	Population  int     // default 40
	Generations int     // default 60
	Crossover   float64 // probability per child, default 0.9
	Mutation    float64 // per-gene flip probability, default 0.05
	Elite       int     // survivors copied verbatim, default 2
	Tournament  int     // tournament size, default 3
	// Init, when non-nil, is a feasible assignment whose cut genome joins
	// the initial population next to the two trivial baselines (the
	// warm-start hook): after a small instance drift the previous
	// revision's solution is usually one mutation from optimal again.
	Init *model.Assignment

	// OnImprove, when set, receives every improvement of the population's
	// best individual (including the initial population's) with a fresh
	// assignment clone. Heuristics carry no bound proof, so
	// Incumbent.LowerBound is 0.
	OnImprove func(core.Incumbent)
	// BestEffort returns the best-so-far with Result.Partial set instead
	// of a context error when the deadline expires between generations.
	BestEffort bool
}

func (c GeneticConfig) withDefaults() GeneticConfig {
	if c.Population <= 1 {
		c.Population = 40
	}
	c.Generations = core.IntOr(c.Generations, 60)
	c.Crossover = core.FloatOr(c.Crossover, 0.9)
	c.Mutation = core.FloatOr(c.Mutation, 0.05)
	c.Elite = core.IntOr(c.Elite, 2)
	if c.Tournament <= 1 {
		c.Tournament = 3
	}
	return c
}

// Genetic runs the genetic algorithm the paper's §6 cites (Wang et al.'s
// GA-based matching and scheduling) adapted to the tree problem. A genome
// has one "cut here" bit per monochromatic processing CRU; decoding walks
// the tree top-down and sinks the subtree at the first set bit, which maps
// every genome to a feasible assignment (genes below a cut are ignored, so
// the representation is redundant but never invalid). Deterministic for a
// fixed seed.
func Genetic(t *model.Tree, cfg GeneticConfig) *Result {
	r, _ := GeneticContext(context.Background(), t, cfg)
	return r
}

// GeneticContext is Genetic with cancellation: the context is checked once
// per generation. On cancellation the returned error is the context's and
// the result is nil. Genomes decode into a pooled position vector by
// pre-order span skipping over the compiled plan and are scored with the
// flat kernel, so one decode+evaluation costs two flat passes and zero
// allocation (the genomes themselves are the population's only churn).
func GeneticContext(ctx context.Context, t *model.Tree, cfg GeneticConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := model.Compile(t)

	// Gene sites: monochromatic non-root processing CRUs, in pre-order.
	var sites []int32
	siteOf := make([]int32, c.Len())
	for i := range siteOf {
		siteOf[i] = -1
	}
	for _, p := range c.Pre {
		if !c.Proc[p] || p == c.RootPos || c.Colour[p] == model.NoSatellite {
			continue
		}
		siteOf[p] = int32(len(sites))
		sites = append(sites, p)
	}

	st := moveStates.Get()
	defer moveStates.Put(st)
	fr := eval.GetFrame()
	defer eval.PutFrame(fr)
	st.loc = pool.Keep(st.loc, c.Len())

	// decode fills st.loc with the genome's assignment: scan pre-order,
	// sink the whole span at the first set site bit, and skip the subtree
	// (genes below a cut are ignored). Subtrees are contiguous in
	// pre-order too, so the skip is an index jump, not a walk.
	decode := func(genome []bool) {
		c.BaseLocations(st.loc)
		for i := 0; i < len(c.Pre); {
			p := c.Pre[i]
			if si := siteOf[p]; si >= 0 && genome[si] {
				c.FillSpan(st.loc, p, model.OnSatellite(c.Colour[p]))
				i += int(p - c.Start[p] + 1)
				continue
			}
			i++
		}
	}

	type individual struct {
		genome []bool
		delay  float64
	}
	evalGenome := func(g []bool) individual {
		decode(g)
		return individual{genome: g, delay: eval.FlatDelay(c, st.loc, fr)}
	}

	if len(sites) == 0 {
		asg := model.NewAssignment(t)
		return &Result{Assignment: asg, Delay: eval.MustDelay(t, asg)}, nil
	}

	pop := make([]individual, cfg.Population)
	for i := range pop {
		g := make([]bool, len(sites))
		for j := range g {
			g[j] = rng.Intn(2) == 0
		}
		pop[i] = evalGenome(g)
	}
	// Seed the population with both trivial baselines.
	allHost := make([]bool, len(sites))
	pop[0] = evalGenome(allHost)
	topmost := make([]bool, len(sites))
	for j := range topmost {
		topmost[j] = true // redundant bits are ignored below the first cut
	}
	if len(pop) > 1 {
		pop[1] = evalGenome(topmost)
	}
	if cfg.Init != nil && len(pop) > 2 {
		// Encode the warm assignment as a cut genome: a site's bit is set
		// iff it runs on a satellite. Feasibility makes satellite residency
		// upward-contiguous, so decode's first-set-bit walk reproduces the
		// warm cut exactly.
		warm := make([]bool, len(sites))
		for j, p := range sites {
			_, onSat := cfg.Init.At(c.Post[p]).Satellite()
			warm[j] = onSat
		}
		pop[2] = evalGenome(warm)
	}

	byDelay := func() { sort.Slice(pop, func(i, j int) bool { return pop[i].delay < pop[j].delay }) }
	tournament := func() individual {
		best := pop[rng.Intn(len(pop))]
		for k := 1; k < cfg.Tournament; k++ {
			cand := pop[rng.Intn(len(pop))]
			if cand.delay < best.delay {
				best = cand
			}
		}
		return best
	}

	// stream clones the current best out to the improvement callback.
	bestSeen := math.Inf(1)
	stream := func(work int) {
		if cfg.OnImprove == nil {
			return
		}
		best := pop[0]
		for _, ind := range pop[1:] {
			if ind.delay < best.delay {
				best = ind
			}
		}
		if best.delay >= bestSeen {
			return
		}
		bestSeen = best.delay
		decode(best.genome)
		asg := model.NewAssignment(t)
		c.StoreAssignment(asg, st.loc)
		cfg.OnImprove(core.Incumbent{Assignment: asg, Delay: best.delay, Work: work})
	}

	evaluations := len(pop)
	stream(evaluations)
	partial := false
	for gen := 0; gen < cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			if !cfg.BestEffort {
				return nil, err
			}
			partial = true
			break
		}
		byDelay()
		next := make([]individual, 0, cfg.Population)
		for e := 0; e < cfg.Elite && e < len(pop); e++ {
			next = append(next, pop[e])
		}
		for len(next) < cfg.Population {
			a, b := tournament(), tournament()
			child := make([]bool, len(sites))
			if rng.Float64() < cfg.Crossover {
				// Uniform crossover.
				for j := range child {
					if rng.Intn(2) == 0 {
						child[j] = a.genome[j]
					} else {
						child[j] = b.genome[j]
					}
				}
			} else {
				copy(child, a.genome)
			}
			for j := range child {
				if rng.Float64() < cfg.Mutation {
					child[j] = !child[j]
				}
			}
			next = append(next, evalGenome(child))
			evaluations++
		}
		pop = next
		stream(evaluations)
	}
	byDelay()
	best := pop[0]
	decode(best.genome)
	asg := model.NewAssignment(t)
	c.StoreAssignment(asg, st.loc)
	return &Result{Assignment: asg, Delay: best.delay, Work: evaluations, Partial: partial}, nil
}
