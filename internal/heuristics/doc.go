// Package heuristics implements non-exact solvers for the assignment
// problem: the two trivial baselines (everything on the host, maximal
// distribution), greedy hill-climbing over cut moves, simulated annealing,
// and the genetic algorithm the paper's §6 proposes as future work for the
// general (DAG) problem. They are evaluated against the exact optimum in
// experiment E10.
package heuristics
