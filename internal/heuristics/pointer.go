package heuristics

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/eval"
	"repro/internal/model"
)

// This file retains the original pointer-walking local search — clone an
// assignment per candidate move, evaluate it with the pointer evaluator —
// as the reference implementation the compiled position-space walks are
// parity-tested against (identical delays, identical move counts, and for
// a fixed seed identical annealing trajectories) and as the baseline of
// BenchmarkCompiledVsPointer.

// GreedyPointer is the pointer-based Greedy.
func GreedyPointer(t *model.Tree, start Start) *Result {
	r, _ := GreedyPointerContext(context.Background(), t, start)
	return r
}

// GreedyPointerContext is the pointer-based GreedyContext.
func GreedyPointerContext(ctx context.Context, t *model.Tree, start Start) (*Result, error) {
	asg := startAssignment(t, start).Clone()
	delay := eval.PointerDelay(t, asg)
	moves := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestDelta := -1e-12
		var bestApply func()
		for _, mv := range legalMoves(t, asg) {
			next := asg.Clone()
			mv.apply(next)
			d := eval.PointerDelay(t, next)
			if delta := d - delay; delta < bestDelta {
				bestDelta = delta
				applied := next
				newDelay := d
				bestApply = func() { asg = applied; delay = newDelay }
			}
		}
		if bestApply == nil {
			break
		}
		bestApply()
		moves++
	}
	return &Result{Assignment: asg, Delay: delay, Work: moves}, nil
}

// AnnealPointer is the pointer-based Anneal.
func AnnealPointer(t *model.Tree, cfg AnnealConfig) *Result {
	steps := cfg.Steps
	if steps <= 0 {
		steps = 2000
	}
	cool := cfg.CoolRate
	if cool <= 0 || cool >= 1 {
		cool = 0.995
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	asg := startAssignment(t, cfg.Start)
	if cfg.Init != nil {
		asg = cfg.Init.Clone()
	}
	delay := eval.PointerDelay(t, asg)
	temp := cfg.StartT
	if temp <= 0 {
		temp = 0.1 * (eval.PointerDelay(t, model.NewAssignment(t)) + 1)
	}

	best := asg.Clone()
	bestDelay := delay
	for step := 0; step < steps; step++ {
		moves := legalMoves(t, asg)
		if len(moves) == 0 {
			break
		}
		mv := moves[rng.Intn(len(moves))]
		next := asg.Clone()
		mv.apply(next)
		d := eval.PointerDelay(t, next)
		if delta := d - delay; delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			asg, delay = next, d
			if delay < bestDelay {
				best, bestDelay = asg.Clone(), delay
			}
		}
		temp *= cool
	}
	return &Result{Assignment: best, Delay: bestDelay, Work: steps}
}

// move is a reversible local change of the cut.
type move struct {
	apply func(*model.Assignment)
}

// legalMoves enumerates the sink/lift neighbourhood of asg by walking the
// tree's node structs — the pointer twin of appendMoves, kept for the
// reference implementations and the neighbourhood tests.
func legalMoves(t *model.Tree, asg *model.Assignment) []move {
	var out []move
	for _, id := range t.Preorder() {
		id := id
		n := t.Node(id)
		if n.Kind != model.Processing {
			continue
		}
		if asg.At(id).IsHost() {
			if id == t.Root() {
				continue
			}
			sat, mono := t.CorrespondentSatellite(id)
			if !mono {
				continue
			}
			if !asg.At(n.Parent).IsHost() {
				continue
			}
			ok := true
			for _, c := range n.Children {
				cn := t.Node(c)
				if cn.Kind == model.Processing {
					if s, onSat := asg.At(c).Satellite(); !onSat || s != sat {
						ok = false
						break
					}
				}
			}
			if ok {
				out = append(out, move{apply: func(a *model.Assignment) {
					a.Set(id, model.OnSatellite(sat))
				}})
			}
		} else if n.Parent != model.None && asg.At(n.Parent).IsHost() {
			// lift: v returns to the host; children keep their location.
			out = append(out, move{apply: func(a *model.Assignment) {
				a.Set(id, model.Host)
			}})
		}
	}
	return out
}
