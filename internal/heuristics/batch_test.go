package heuristics

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/workload"
)

// TestGeneticBatchDeterministic: for a fixed seed the GA returns an
// identical result at every batch lane width — the batch kernel is
// bit-identical to scalar evaluation and evaluation consumes no
// randomness, so the lane width is a pure throughput knob.
func TestGeneticBatchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 3; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(10+trial*9, 2+trial))
		ref := Genetic(tree, GeneticConfig{Seed: 7, Lanes: 1})
		for _, lanes := range []int{2, 3, 8, 17, 64} {
			got := Genetic(tree, GeneticConfig{Seed: 7, Lanes: lanes})
			if got.Delay != ref.Delay || got.Work != ref.Work {
				t.Fatalf("trial %d lanes %d: delay/work %v/%d differ from scalar %v/%d",
					trial, lanes, got.Delay, got.Work, ref.Delay, ref.Work)
			}
			if got.Assignment.Key() != ref.Assignment.Key() {
				t.Fatalf("trial %d lanes %d: assignment differs from scalar evaluation", trial, lanes)
			}
		}
	}
}

// TestAnnealPackDeterministicAndValid mirrors the scalar annealing test:
// same seed, same answer; the answer is feasible and never beats the
// exact optimum.
func TestAnnealPackDeterministicAndValid(t *testing.T) {
	tree := workload.Epilepsy()
	r1, err := AnnealRestarts(context.Background(), tree, AnnealPackConfig{Seed: 42, Steps: 500})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := AnnealRestarts(context.Background(), tree, AnnealPackConfig{Seed: 42, Steps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Delay != r2.Delay || r1.Work != r2.Work {
		t.Fatalf("same seed, different runs: %v/%d vs %v/%d", r1.Delay, r1.Work, r2.Delay, r2.Work)
	}
	if err := r1.Assignment.Validate(tree); err != nil {
		t.Fatal(err)
	}
	opt, _ := exact.Pareto(tree, 0)
	if r1.Delay < opt.Delay-1e-9 {
		t.Fatalf("pack %v beats exact %v", r1.Delay, opt.Delay)
	}
}

// TestAnnealPackNeverWorseThanSingleWalk: the pack contains walks from
// both canned start points, so its best can only match or beat the
// better of the two scalar walks with the pack's lane-0 seed.
func TestAnnealPackNeverWorseThanSingleWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		tree := workload.Random(rng, workload.DefaultRandomSpec(6+rng.Intn(20), 1+rng.Intn(3)))
		pack, err := AnnealRestarts(context.Background(), tree, AnnealPackConfig{Seed: 3, Steps: 400})
		if err != nil {
			t.Fatal(err)
		}
		if err := pack.Assignment.Validate(tree); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The pack's baseline floor: its initial population includes both
		// canned starts, so it can never end above either baseline.
		host := AllHost(tree)
		top := MaxDistribution(tree)
		floor := math.Min(host.Delay, top.Delay)
		if pack.Delay > floor+1e-9 {
			t.Fatalf("trial %d: pack %v worse than best baseline %v", trial, pack.Delay, floor)
		}
	}
}

// TestAnnealPackStreamsMonotone: the pack-wide incumbent stream starts
// with the initial best and strictly improves, and the last streamed
// delay is the returned one.
func TestAnnealPackStreamsMonotone(t *testing.T) {
	tree := workload.Random(rand.New(rand.NewSource(2)), workload.DefaultRandomSpec(24, 3))
	var delays []float64
	res, err := AnnealRestarts(context.Background(), tree, AnnealPackConfig{
		Seed:      5,
		OnImprove: func(inc core.Incumbent) { delays = append(delays, inc.Delay) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) == 0 {
		t.Fatal("no incumbents streamed")
	}
	for i := 1; i < len(delays); i++ {
		if delays[i] >= delays[i-1] {
			t.Fatalf("stream not strictly improving at %d: %v after %v", i, delays[i], delays[i-1])
		}
	}
	if last := delays[len(delays)-1]; last != res.Delay {
		t.Fatalf("last incumbent %v != final %v", last, res.Delay)
	}
	bd, err := eval.Evaluate(tree, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Delay != res.Delay {
		t.Fatalf("result evaluates to %v, reported %v", bd.Delay, res.Delay)
	}
}
