package heuristics

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/colouring"
	"repro/internal/eval"
	"repro/internal/model"
)

// Result is a heuristic solution: a feasible assignment, its delay and a
// work counter (moves, iterations or generations depending on the solver).
type Result struct {
	Assignment *model.Assignment
	Delay      float64
	Work       int
}

// AllHost returns the trivial everything-on-host baseline.
func AllHost(t *model.Tree) *Result {
	asg := model.NewAssignment(t)
	return &Result{Assignment: asg, Delay: eval.MustDelay(t, asg)}
}

// MaxDistribution returns the topmost-cut baseline: only the must-host
// closure stays on the host, every region runs on its satellite.
func MaxDistribution(t *model.Tree) *Result {
	asg := colouring.Analyse(t).FeasibleTopmost()
	return &Result{Assignment: asg, Delay: eval.MustDelay(t, asg)}
}

// Start selects the initial assignment of Greedy and Anneal.
type Start int

const (
	// FromHost starts with everything on the host and mostly sinks.
	FromHost Start = iota
	// FromTopmost starts maximally distributed and mostly lifts.
	FromTopmost
)

// Greedy hill-climbs from the given start, applying the single best
// sink/lift move until no move improves the delay. The result is a local
// optimum of the move neighbourhood.
func Greedy(t *model.Tree, start Start) *Result {
	r, _ := GreedyContext(context.Background(), t, start)
	return r
}

// GreedyContext is Greedy with cancellation: the context is checked once
// per hill-climbing round. On cancellation the returned error is the
// context's and the result is nil.
func GreedyContext(ctx context.Context, t *model.Tree, start Start) (*Result, error) {
	return GreedyFromContext(ctx, t, startAssignment(t, start))
}

// GreedyFromContext hill-climbs from an explicit feasible assignment
// instead of one of the canned Start points — the warm-start entry: the
// incremental engine passes the previous revision's solution projected
// onto the mutated tree, so after a small drift the climb starts next to
// the optimum instead of at a cold baseline. The assignment is cloned
// before climbing; the caller's copy is never modified.
func GreedyFromContext(ctx context.Context, t *model.Tree, from *model.Assignment) (*Result, error) {
	asg := from.Clone()
	delay := eval.MustDelay(t, asg)
	moves := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestDelta := -1e-12
		var bestApply func()
		for _, mv := range legalMoves(t, asg) {
			next := asg.Clone()
			mv.apply(next)
			d := eval.MustDelay(t, next)
			if delta := d - delay; delta < bestDelta {
				bestDelta = delta
				applied := next
				newDelay := d
				bestApply = func() { asg = applied; delay = newDelay }
			}
		}
		if bestApply == nil {
			break
		}
		bestApply()
		moves++
	}
	return &Result{Assignment: asg, Delay: delay, Work: moves}, nil
}

// AnnealConfig tunes Anneal. Zero values select the defaults noted below.
type AnnealConfig struct {
	Seed     int64
	Steps    int     // default 2000
	StartT   float64 // default: 10% of the all-host delay
	CoolRate float64 // geometric factor per step, default 0.995
	Start    Start
	// Init, when non-nil, overrides Start with an explicit feasible
	// assignment to anneal from (the warm-start hook). It is cloned; the
	// caller's copy is never modified.
	Init *model.Assignment
}

// Anneal runs simulated annealing over the sink/lift move neighbourhood.
// Deterministic for a fixed seed.
func Anneal(t *model.Tree, cfg AnnealConfig) *Result {
	r, _ := AnnealContext(context.Background(), t, cfg)
	return r
}

// AnnealContext is Anneal with cancellation: the context is checked every
// few annealing steps. On cancellation the returned error is the context's
// and the result is nil.
func AnnealContext(ctx context.Context, t *model.Tree, cfg AnnealConfig) (*Result, error) {
	steps := cfg.Steps
	if steps <= 0 {
		steps = 2000
	}
	cool := cfg.CoolRate
	if cool <= 0 || cool >= 1 {
		cool = 0.995
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	asg := startAssignment(t, cfg.Start)
	if cfg.Init != nil {
		asg = cfg.Init.Clone()
	}
	delay := eval.MustDelay(t, asg)
	temp := cfg.StartT
	if temp <= 0 {
		temp = 0.1 * (eval.MustDelay(t, model.NewAssignment(t)) + 1)
	}

	best := asg.Clone()
	bestDelay := delay
	for step := 0; step < steps; step++ {
		if step&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		moves := legalMoves(t, asg)
		if len(moves) == 0 {
			break
		}
		mv := moves[rng.Intn(len(moves))]
		next := asg.Clone()
		mv.apply(next)
		d := eval.MustDelay(t, next)
		if delta := d - delay; delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			asg, delay = next, d
			if delay < bestDelay {
				best, bestDelay = asg.Clone(), delay
			}
		}
		temp *= cool
	}
	return &Result{Assignment: best, Delay: bestDelay, Work: steps}, nil
}

// move is a reversible local change of the cut.
type move struct {
	apply func(*model.Assignment)
}

// legalMoves enumerates the sink/lift neighbourhood of asg:
//
//   - sink(v): v is hosted, non-root, its subtree is monochromatic, and
//     every processing child of v is already on v's correspondent
//     satellite (or v's children are sensors) → move v to the satellite;
//   - lift(v): v is on a satellite and its parent is hosted → move v (and
//     only v; its children stay) to the host... which requires v's children
//     to move too if they are satellite-resident? No: lifting v alone keeps
//     children on the satellite, which stays feasible (host set stays
//     upward-closed).
func legalMoves(t *model.Tree, asg *model.Assignment) []move {
	var out []move
	for _, id := range t.Preorder() {
		id := id
		n := t.Node(id)
		if n.Kind != model.Processing {
			continue
		}
		if asg.At(id).IsHost() {
			if id == t.Root() {
				continue
			}
			sat, mono := t.CorrespondentSatellite(id)
			if !mono {
				continue
			}
			if !asg.At(n.Parent).IsHost() {
				continue
			}
			ok := true
			for _, c := range n.Children {
				cn := t.Node(c)
				if cn.Kind == model.Processing {
					if s, onSat := asg.At(c).Satellite(); !onSat || s != sat {
						ok = false
						break
					}
				}
			}
			if ok {
				out = append(out, move{apply: func(a *model.Assignment) {
					a.Set(id, model.OnSatellite(sat))
				}})
			}
		} else if n.Parent != model.None && asg.At(n.Parent).IsHost() {
			// lift: v returns to the host; children keep their location.
			out = append(out, move{apply: func(a *model.Assignment) {
				a.Set(id, model.Host)
			}})
		}
	}
	return out
}

func startAssignment(t *model.Tree, s Start) *model.Assignment {
	if s == FromTopmost {
		return colouring.Analyse(t).FeasibleTopmost()
	}
	return model.NewAssignment(t)
}
