package heuristics

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/colouring"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/pool"
)

// Result is a heuristic solution: a feasible assignment, its delay and a
// work counter (moves, iterations or generations depending on the solver).
type Result struct {
	Assignment *model.Assignment
	Delay      float64
	Work       int

	// Partial marks a best-effort result: the deadline expired mid-walk
	// and BestEffort asked for the best-so-far instead of an error.
	Partial bool
}

// AllHost returns the trivial everything-on-host baseline.
func AllHost(t *model.Tree) *Result {
	asg := model.NewAssignment(t)
	return &Result{Assignment: asg, Delay: eval.MustDelay(t, asg)}
}

// MaxDistribution returns the topmost-cut baseline: only the must-host
// closure stays on the host, every region runs on its satellite.
func MaxDistribution(t *model.Tree) *Result {
	asg := colouring.Analyse(t).FeasibleTopmost()
	return &Result{Assignment: asg, Delay: eval.MustDelay(t, asg)}
}

// Start selects the initial assignment of Greedy and Anneal.
type Start int

const (
	// FromHost starts with everything on the host and mostly sinks.
	FromHost Start = iota
	// FromTopmost starts maximally distributed and mostly lifts.
	FromTopmost
)

// cutMove is one legal sink/lift move in position space: set position pos
// to location to. Both move kinds touch exactly one position (a sink
// requires the children to already sit on the satellite; a lift leaves
// them there), which is what makes the neighbourhood scan allocation-free.
type cutMove struct {
	pos int32
	to  model.Location
}

// moveState is the pooled working set of the local-search heuristics: the
// current, best and scratch location vectors plus the move buffer, all in
// post-order position space against the compiled plan.
type moveState struct {
	loc, best []model.Location
	moves     []cutMove
}

var moveStates = pool.NewArena(func() *moveState { return new(moveState) })

// appendMoves appends the legal sink/lift neighbourhood of loc, in
// pre-order of the moved CRU (the same enumeration order as the pointer
// implementation's legalMoves, so tie-breaks and seeded random walks
// coincide):
//
//   - sink(v): v is hosted, non-root, its subtree is monochromatic, its
//     parent is hosted and every processing child of v already sits on
//     v's correspondent satellite → move v to the satellite;
//   - lift(v): v is on a satellite and its parent is hosted → move v (and
//     only v; its children stay) back to the host, which stays feasible
//     because the host set remains upward-closed.
func appendMoves(out []cutMove, c *model.Compiled, loc []model.Location) []cutMove {
	for _, p := range c.Pre {
		if !c.Proc[p] {
			continue
		}
		if loc[p].IsHost() {
			if p == c.RootPos {
				continue
			}
			sat := c.Colour[p]
			if sat == model.NoSatellite {
				continue
			}
			if !loc[c.Parent[p]].IsHost() {
				continue
			}
			ok := true
			for _, ch := range c.Children(p) {
				if c.Proc[ch] {
					if s, onSat := loc[ch].Satellite(); !onSat || s != sat {
						ok = false
						break
					}
				}
			}
			if ok {
				out = append(out, cutMove{pos: p, to: model.OnSatellite(sat)})
			}
		} else if par := c.Parent[p]; par >= 0 && loc[par].IsHost() {
			out = append(out, cutMove{pos: p, to: model.Host})
		}
	}
	return out
}

// Greedy hill-climbs from the given start, applying the single best
// sink/lift move until no move improves the delay. The result is a local
// optimum of the move neighbourhood.
func Greedy(t *model.Tree, start Start) *Result {
	r, _ := GreedyContext(context.Background(), t, start)
	return r
}

// GreedyContext is Greedy with cancellation: the context is checked once
// per hill-climbing round. On cancellation the returned error is the
// context's and the result is nil.
func GreedyContext(ctx context.Context, t *model.Tree, start Start) (*Result, error) {
	return GreedyFromContext(ctx, t, startAssignment(t, start))
}

// GreedyFromContext hill-climbs from an explicit feasible assignment
// instead of one of the canned Start points — the warm-start entry: the
// incremental engine passes the previous revision's solution projected
// onto the mutated tree, so after a small drift the climb starts next to
// the optimum instead of at a cold baseline. The caller's assignment is
// never modified: the climb runs on a pooled position vector against the
// compiled plan, evaluating each candidate move with the flat kernel —
// no cloning, no maps, no per-move allocation.
func GreedyFromContext(ctx context.Context, t *model.Tree, from *model.Assignment) (*Result, error) {
	c := model.Compile(t)
	st := moveStates.Get()
	defer moveStates.Put(st)
	fr := eval.GetFrame()
	defer eval.PutFrame(fr)

	st.loc = pool.Keep(st.loc, c.Len())
	c.LoadLocations(st.loc, from)
	delay := eval.FlatDelay(c, st.loc, fr)
	moves := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestDelta := -1e-12
		bestPos := int32(-1)
		var bestTo model.Location
		var bestDelay float64
		st.moves = appendMoves(st.moves[:0], c, st.loc)
		for _, mv := range st.moves {
			old := st.loc[mv.pos]
			st.loc[mv.pos] = mv.to
			d := eval.FlatDelay(c, st.loc, fr)
			st.loc[mv.pos] = old
			if delta := d - delay; delta < bestDelta {
				bestDelta, bestPos, bestTo, bestDelay = delta, mv.pos, mv.to, d
			}
		}
		if bestPos < 0 {
			break
		}
		st.loc[bestPos] = bestTo
		delay = bestDelay
		moves++
	}
	asg := model.NewAssignment(t)
	c.StoreAssignment(asg, st.loc)
	return &Result{Assignment: asg, Delay: delay, Work: moves}, nil
}

// AnnealConfig tunes Anneal. Zero values select the defaults noted below.
type AnnealConfig struct {
	Seed     int64
	Steps    int     // default 2000
	StartT   float64 // default: 10% of the all-host delay
	CoolRate float64 // geometric factor per step, default 0.995
	Start    Start
	// Init, when non-nil, overrides Start with an explicit feasible
	// assignment to anneal from (the warm-start hook). It is never
	// modified.
	Init *model.Assignment

	// OnImprove, when set, receives every improvement of the walk's best
	// assignment (including the starting point) with a fresh clone the
	// callback may keep. Heuristics have no bound proof, so
	// Incumbent.LowerBound is 0.
	OnImprove func(core.Incumbent)
	// BestEffort returns the best-so-far with Result.Partial set instead
	// of a context error when the deadline expires mid-walk.
	BestEffort bool
}

// Anneal runs simulated annealing over the sink/lift move neighbourhood.
// Deterministic for a fixed seed.
func Anneal(t *model.Tree, cfg AnnealConfig) *Result {
	r, _ := AnnealContext(context.Background(), t, cfg)
	return r
}

// AnnealContext is Anneal with cancellation: the context is checked every
// few annealing steps. On cancellation the returned error is the context's
// and the result is nil. The walk runs in position space with flat
// evaluation, like GreedyFromContext; accepted and rejected moves are
// single-position writes, so steps allocate nothing.
func AnnealContext(ctx context.Context, t *model.Tree, cfg AnnealConfig) (*Result, error) {
	steps := core.IntOr(cfg.Steps, 2000)
	cool := cfg.CoolRate
	if cool <= 0 || cool >= 1 {
		cool = 0.995
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := model.Compile(t)
	st := moveStates.Get()
	defer moveStates.Put(st)
	fr := eval.GetFrame()
	defer eval.PutFrame(fr)

	st.loc = pool.Keep(st.loc, c.Len())
	st.best = pool.Keep(st.best, c.Len())
	if cfg.Init != nil {
		c.LoadLocations(st.loc, cfg.Init)
	} else if cfg.Start == FromTopmost {
		c.TopmostLocations(st.loc)
	} else {
		c.BaseLocations(st.loc)
	}
	delay := eval.FlatDelay(c, st.loc, fr)
	temp := cfg.StartT
	if temp <= 0 {
		c.BaseLocations(st.best) // scratch use; overwritten below
		temp = 0.1 * (eval.FlatDelay(c, st.best, fr) + 1)
	}

	copy(st.best, st.loc)
	bestDelay := delay
	stream := func(work int) {
		if cfg.OnImprove == nil {
			return
		}
		asg := model.NewAssignment(t)
		c.StoreAssignment(asg, st.best)
		cfg.OnImprove(core.Incumbent{Assignment: asg, Delay: bestDelay, Work: work})
	}
	stream(0)
	partial := false
	for step := 0; step < steps; step++ {
		if step&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				if !cfg.BestEffort {
					return nil, err
				}
				partial = true
				break
			}
		}
		st.moves = appendMoves(st.moves[:0], c, st.loc)
		if len(st.moves) == 0 {
			break
		}
		mv := st.moves[rng.Intn(len(st.moves))]
		old := st.loc[mv.pos]
		st.loc[mv.pos] = mv.to
		d := eval.FlatDelay(c, st.loc, fr)
		if delta := d - delay; delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			delay = d
			if delay < bestDelay {
				copy(st.best, st.loc)
				bestDelay = delay
				stream(step + 1)
			}
		} else {
			st.loc[mv.pos] = old
		}
		temp *= cool
	}
	asg := model.NewAssignment(t)
	c.StoreAssignment(asg, st.best)
	return &Result{Assignment: asg, Delay: bestDelay, Work: steps, Partial: partial}, nil
}

func startAssignment(t *model.Tree, s Start) *model.Assignment {
	if s == FromTopmost {
		return colouring.Analyse(t).FeasibleTopmost()
	}
	return model.NewAssignment(t)
}
