package heuristics

import (
	"context"

	"repro/internal/core"
)

// The heuristic solvers register themselves with the core registry;
// importing this package (directly or via repro/internal/algorithms) makes
// them dispatchable by name.
func init() {
	core.Register(core.AllHost, core.Capabilities{
		Summary: "baseline: every CRU stays on the host",
	}, func(ctx context.Context, req core.Request) (core.Finding, error) {
		return finding(AllHost(req.Tree), nil)
	})
	core.Register(core.MaxDistribution, core.Capabilities{
		Summary: "baseline: every region sinks to its satellite",
	}, func(ctx context.Context, req core.Request) (core.Finding, error) {
		return finding(MaxDistribution(req.Tree), nil)
	})
	core.Register(core.GreedyHost, core.Capabilities{
		WarmStart: true,
		Summary:   "hill-climbing over sink/lift moves from the all-host assignment",
	}, greedy(FromHost))
	core.Register(core.GreedyTop, core.Capabilities{
		WarmStart: true,
		Summary:   "hill-climbing over sink/lift moves from the maximal distribution",
	}, greedy(FromTopmost))
	core.Register(core.Annealing, core.Capabilities{
		Seeded:    true,
		WarmStart: true,
		Anytime:   true,
		Summary:   "simulated annealing over the cut-move neighbourhood",
	}, func(ctx context.Context, req core.Request) (core.Finding, error) {
		return finding(AnnealContext(ctx, req.Tree, AnnealConfig{
			Seed:       req.Seed,
			Init:       req.Warm,
			OnImprove:  req.OnIncumbent,
			BestEffort: req.BestEffort,
		}))
	})
	// AnnealingPack deliberately does not declare Parallel: its restart
	// count is configuration (changing it changes the answer), and the
	// serving layers exclude Request.Parallelism from the cache identity
	// on the promise that parallelism never changes a solver's output. The
	// registered form therefore always runs the default pack.
	core.Register(core.AnnealingPack, core.Capabilities{
		Seeded:    true,
		WarmStart: true,
		Anytime:   true,
		Summary:   "portfolio of annealing restarts in lockstep over the batch kernel",
	}, func(ctx context.Context, req core.Request) (core.Finding, error) {
		return finding(AnnealRestarts(ctx, req.Tree, AnnealPackConfig{
			Seed:       req.Seed,
			Init:       req.Warm,
			OnImprove:  req.OnIncumbent,
			BestEffort: req.BestEffort,
		}))
	})
	core.Register(core.Genetic, core.Capabilities{
		Seeded:    true,
		WarmStart: true,
		Anytime:   true,
		Summary:   "genetic algorithm over cut genomes (paper §6 future work)",
	}, func(ctx context.Context, req core.Request) (core.Finding, error) {
		return finding(GeneticContext(ctx, req.Tree, GeneticConfig{
			Seed:       req.Seed,
			Init:       req.Warm,
			OnImprove:  req.OnIncumbent,
			BestEffort: req.BestEffort,
		}))
	})
}

// greedy adapts the hill-climber to the registry's SolveFunc shape: a
// warm hint replaces the canned start point, so a drifting session climbs
// from the previous revision's solution instead of a cold baseline.
func greedy(start Start) core.SolveFunc {
	return func(ctx context.Context, req core.Request) (core.Finding, error) {
		if req.Warm != nil {
			return finding(GreedyFromContext(ctx, req.Tree, req.Warm))
		}
		return finding(GreedyContext(ctx, req.Tree, start))
	}
}

// finding adapts a heuristic Result (and the optional error of the
// context-aware variants) to the registry's Finding shape.
func finding(r *Result, err error) (core.Finding, error) {
	if err != nil {
		return core.Finding{}, err
	}
	return core.Finding{Assignment: r.Assignment, Work: r.Work, Partial: r.Partial}, nil
}
