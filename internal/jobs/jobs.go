// Package jobs is the anytime job tier: a bounded-queue manager for
// asynchronous solves whose long-running algorithms stream improving
// incumbents while they search. A job moves submit → queued → running →
// done/failed/canceled/expired; while it runs, every incumbent the solver
// finds lands in a per-job progress ring that long-poll and SSE consumers
// read by sequence number. The metareasoning front-end (Planner) picks the
// algorithm and budget from instance features, and portfolio mode races
// branch-and-bound against a heuristic, cancelling the race as soon as the
// bound gap closes under the plan's threshold.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// State is a job's lifecycle position.
type State string

// Job states. Expired covers a queued job whose deadline passed before a
// worker picked it up; TTL reaping of finished jobs deletes them instead
// of transitioning them.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	StateExpired  State = "expired"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateExpired:
		return true
	}
	return false
}

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity; clients back off and retry.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager closed")

// Request describes one submitted solve.
type Request struct {
	Tree *repro.Tree
	// Algorithm pins the solver; empty lets the Planner choose.
	Algorithm repro.Algorithm
	Weights   repro.Weights
	Seed      int64
	Budget    int
	// Deadline bounds the whole job (queue wait plus solve) from
	// submission; anytime solvers return their best-so-far when it
	// expires. Zero means no deadline.
	Deadline time.Duration
	// Portfolio forces portfolio mode; the Planner may also select it.
	Portfolio bool
	// Warm optionally seeds the search.
	Warm *repro.Assignment
}

// Incumbent is one ring entry: a streamed improvement stamped with its
// sequence number, source algorithm and arrival time.
type Incumbent struct {
	Seq        int
	Algorithm  repro.Algorithm
	Delay      float64
	LowerBound float64
	Work       int
	Elapsed    time.Duration
}

// Gap reports the relative bound gap, or -1 without a bound.
func (inc Incumbent) Gap() float64 {
	if inc.LowerBound <= 0 {
		return -1
	}
	return (inc.Delay - inc.LowerBound) / inc.LowerBound
}

// Config parameterises a Manager. Service is required.
type Config struct {
	// Service executes the solves (anytime requests bypass its cache).
	Service *repro.Service
	// Workers sizes the worker pool (default 2).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (default 256).
	QueueDepth int
	// ResultTTL reaps finished jobs this long after completion
	// (default 10m; negative disables reaping).
	ResultTTL time.Duration
	// RingSize bounds each job's incumbent ring (default 64): consumers
	// that fall further behind lose the oldest entries, never the newest.
	RingSize int
	// SelfTag, when non-empty, prefixes every job ID ("<tag>-<random>")
	// so cluster peers can route job calls to the owning node from the
	// ID alone, exactly like pinned sessions.
	SelfTag string
	// Planner chooses algorithm and budget for requests that pin neither
	// (default DefaultPlanner).
	Planner *Planner
}

// Stats is a snapshot of the manager's counters for /debug/vars.
type Stats struct {
	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Canceled   int64 `json:"canceled"`
	Expired    int64 `json:"expired"`
	Failed     int64 `json:"failed"`
	Reaped     int64 `json:"reaped"`
	QueueDepth int   `json:"queue_depth"`
	Running    int   `json:"running"`
	Live       int   `json:"live"`

	// Search-node accounting summed over finished solves: nodes explored,
	// branches pruned, and the shared bound cache's hit/miss split. The
	// explored-per-job trend is the live measure of how much the bound
	// memoization is saving the tier.
	Explored    int64 `json:"explored"`
	Pruned      int64 `json:"pruned"`
	BoundHits   int64 `json:"bound_hits"`
	BoundMisses int64 `json:"bound_misses"`
}

// Manager owns the job table, the bounded queue and the worker pool.
type Manager struct {
	cfg    Config
	queue  chan *Job
	ctx    context.Context
	stop   context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool

	mu   sync.Mutex
	jobs map[string]*Job

	submitted, completed, canceled atomic.Int64
	expired, failed, reaped        atomic.Int64
	running                        atomic.Int64

	explored, pruned       atomic.Int64
	boundHits, boundMisses atomic.Int64

	// bounds is the tier-wide bound-memoization cache, attached to every
	// solve: jobs over the same (or mutated copies of the same) instance
	// replay each other's proven subtree bounds, and a resubmitted
	// identical instance — whose anytime solve bypasses the Service's
	// outcome cache by design — is answered by replaying the recorded
	// optimal pattern instead of re-searching.
	bounds *repro.BoundCache
}

// New starts a Manager with cfg.Workers workers.
func New(cfg Config) *Manager {
	if cfg.Service == nil {
		panic("jobs: Config.Service is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.ResultTTL == 0 {
		cfg.ResultTTL = 10 * time.Minute
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 64
	}
	if cfg.Planner == nil {
		cfg.Planner = DefaultPlanner()
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:    cfg,
		queue:  make(chan *Job, cfg.QueueDepth),
		ctx:    ctx,
		stop:   stop,
		jobs:   map[string]*Job{},
		bounds: repro.NewBoundCache(repro.BoundCacheConfig{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Close cancels every running job, stops the workers and waits for them.
// Queued jobs are marked canceled.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	m.stop()
	m.wg.Wait()
	// Drain whatever the workers never picked up.
	for {
		select {
		case j := <-m.queue:
			if j.transition(StateQueued, StateCanceled, nil, nil) {
				m.canceled.Add(1)
			}
		default:
			return
		}
	}
}

// Submit enqueues a job, returning ErrQueueFull when the bounded queue is
// at capacity.
func (m *Manager) Submit(req Request) (*Job, error) {
	if req.Tree == nil {
		return nil, fmt.Errorf("jobs: nil tree")
	}
	if m.closed.Load() {
		return nil, ErrClosed
	}
	m.reap()
	j := &Job{
		ID:        m.mintID(),
		m:         m,
		req:       req,
		state:     StateQueued,
		submitted: time.Now(),
		notify:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.mu.Unlock()
	select {
	case m.queue <- j:
	default:
		m.mu.Lock()
		delete(m.jobs, j.ID)
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.submitted.Add(1)
	return j, nil
}

// Get returns the job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	return j, ok
}

// Cancel stops a queued or running job. It reports whether the job exists;
// cancelling an already-terminal job is a no-op.
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	j.Cancel()
	return j, true
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	m.reap()
	m.mu.Lock()
	live := len(m.jobs)
	m.mu.Unlock()
	return Stats{
		Submitted:   m.submitted.Load(),
		Completed:   m.completed.Load(),
		Canceled:    m.canceled.Load(),
		Expired:     m.expired.Load(),
		Failed:      m.failed.Load(),
		Reaped:      m.reaped.Load(),
		QueueDepth:  len(m.queue),
		Running:     int(m.running.Load()),
		Live:        live,
		Explored:    m.explored.Load(),
		Pruned:      m.pruned.Load(),
		BoundHits:   m.boundHits.Load(),
		BoundMisses: m.boundMisses.Load(),
	}
}

// QueueDepth reports the number of queued-but-not-running jobs; the
// Planner reads it to scale effort under pressure.
func (m *Manager) QueueDepth() int { return len(m.queue) }

func (m *Manager) mintID() string {
	var raw [16]byte
	rand.Read(raw[:])
	id := hex.EncodeToString(raw[:])
	if m.cfg.SelfTag != "" {
		id = m.cfg.SelfTag + "-" + id
	}
	return id
}

// reap deletes finished jobs past the retention TTL.
func (m *Manager) reap() {
	ttl := m.cfg.ResultTTL
	if ttl <= 0 {
		return
	}
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, j := range m.jobs {
		j.mu.Lock()
		gone := j.state.Terminal() && now.Sub(j.finished) > ttl
		j.mu.Unlock()
		if gone {
			delete(m.jobs, id)
			m.reaped.Add(1)
		}
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one dequeued job end to end.
func (m *Manager) run(j *Job) {
	// A queued job may already be canceled, or its whole deadline may have
	// burned in the queue.
	if j.req.Deadline > 0 && time.Since(j.submitted) >= j.req.Deadline {
		if j.transition(StateQueued, StateExpired, nil, context.DeadlineExceeded) {
			m.expired.Add(1)
		}
		return
	}
	ctx, cancel := context.WithCancel(m.ctx)
	if !j.start(cancel) {
		cancel()
		return // canceled while queued
	}
	defer cancel()
	m.running.Add(1)
	defer m.running.Add(-1)

	if j.req.Deadline > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithDeadline(ctx, j.submitted.Add(j.req.Deadline))
		defer tcancel()
	}

	plan := m.cfg.Planner.Plan(FeaturesOf(j.req, len(m.queue)))
	j.setPlan(plan)

	var out *repro.Outcome
	var err error
	if plan.Portfolio {
		out, err = m.portfolio(ctx, j, plan)
	} else {
		out, _, err = m.cfg.Service.Solve(ctx, j.req.Tree, m.solveOpts(j, plan, plan.Algorithm)...)
		m.noteOutcome(out)
	}

	switch {
	// Cancel outranks the result: an anytime solver answers cancellation
	// with a best-effort partial (err == nil), which must not read as a
	// completed job.
	case j.CancelRequested():
		if err == nil {
			err = context.Canceled
		}
		if j.transition(StateRunning, StateCanceled, nil, err) {
			m.canceled.Add(1)
		}
	case err == nil:
		if j.transition(StateRunning, StateDone, out, nil) {
			m.completed.Add(1)
		}
	default:
		if j.transition(StateRunning, StateFailed, nil, err) {
			m.failed.Add(1)
		}
	}
}

// noteOutcome folds one finished solve's node accounting into the
// manager counters (nil outcomes — failed solves — contribute nothing).
func (m *Manager) noteOutcome(out *repro.Outcome) {
	if out == nil {
		return
	}
	m.explored.Add(int64(out.Work))
	m.pruned.Add(int64(out.Pruned))
	m.boundHits.Add(int64(out.BoundHits))
	m.boundMisses.Add(int64(out.BoundMisses))
}

// solveOpts assembles one solve's option list: the request parameters,
// the plan's algorithm and budget, best-effort mode, the shared bound
// cache and the incumbent hook feeding the job's ring.
func (m *Manager) solveOpts(j *Job, plan Plan, alg repro.Algorithm) []repro.Option {
	opts := []repro.Option{
		repro.WithAlgorithm(alg),
		repro.WithSeed(j.req.Seed),
		repro.WithBestEffort(),
		repro.WithBoundCache(m.bounds),
		repro.WithIncumbents(func(inc repro.Incumbent) { j.record(alg, inc) }),
	}
	if budget := j.req.Budget; budget != 0 {
		opts = append(opts, repro.WithBudget(budget))
	} else if plan.Budget != 0 && alg == plan.Algorithm {
		opts = append(opts, repro.WithBudget(plan.Budget))
	}
	if j.req.Weights != (repro.Weights{}) {
		opts = append(opts, repro.WithWeights(j.req.Weights))
	}
	if j.req.Warm != nil {
		opts = append(opts, repro.WithWarmStart(j.req.Warm))
	}
	return opts
}

// portfolio races the plan's exact algorithm against its heuristic on a
// shared incumbent aggregator. The race ends early when the exact side
// completes (its answer is proven) or when any incumbent's delay closes
// within GapThreshold of the best lower bound; the loser is canceled
// through the shared context and its best-effort result merely joins the
// comparison.
func (m *Manager) portfolio(ctx context.Context, j *Job, plan Plan) (*repro.Outcome, error) {
	raceCtx, stopRace := context.WithCancel(ctx)
	defer stopRace()

	var mu sync.Mutex
	bestDelay := math.Inf(1)
	var bound float64
	note := func(inc repro.Incumbent) {
		mu.Lock()
		if inc.Delay < bestDelay {
			bestDelay = inc.Delay
		}
		if inc.LowerBound > bound {
			bound = inc.LowerBound
		}
		closed := bound > 0 && bestDelay <= bound*(1+plan.GapThreshold)
		mu.Unlock()
		if closed {
			stopRace()
		}
	}

	runLane := func(alg repro.Algorithm) lane {
		opts := m.solveOpts(j, plan, alg)
		// Appending a second WithIncumbents overrides the plain ring hook
		// solveOpts installed with one that also feeds the aggregator.
		opts = append(opts, repro.WithIncumbents(func(inc repro.Incumbent) {
			j.record(alg, inc)
			note(inc)
		}))
		out, _, err := m.cfg.Service.Solve(raceCtx, j.req.Tree, opts...)
		m.noteOutcome(out)
		return lane{out: out, err: err}
	}

	heurCh := make(chan lane, 1)
	go func() { heurCh <- runLane(plan.Heuristic) }()
	exact := runLane(plan.Algorithm)
	if exact.err == nil && exact.out.Exact {
		// Proven optimum: the heuristic lane has nothing left to add.
		stopRace()
	}
	heur := <-heurCh

	mu.Lock()
	raceBound := bound
	mu.Unlock()
	winner := pickWinner(exact, heur)
	if winner.err != nil {
		return nil, winner.err
	}
	out := winner.out
	if !out.Exact && raceBound > out.LowerBound {
		// Graft the exact lane's bound onto a heuristic winner so the
		// reported gap reflects everything the race proved.
		clone := *out
		clone.LowerBound = raceBound
		out = &clone
	}
	return out, nil
}

// lane is one side of a portfolio race.
type lane struct {
	out *repro.Outcome
	err error
}

// pickWinner prefers a proven-exact outcome, then the lower delay; a lane
// that errored loses to any lane with a result.
func pickWinner(a, b lane) lane {
	switch {
	case a.err != nil:
		return b
	case b.err != nil:
		return a
	case a.out.Exact != b.out.Exact:
		if a.out.Exact {
			return a
		}
		return b
	case b.out.Delay < a.out.Delay:
		return b
	default:
		return a
	}
}
